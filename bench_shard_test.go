package certsql_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"certsql"
	"certsql/internal/tpch"
)

// The shard speedup matrix runs the certain-answer translations Q⁺1–Q⁺4
// raw (Options.NoOrSplit, the paper-faithful Section 7 shape, under the
// naive planner) at Shards 4 against the unsharded executor. Raw plans
// are the ones whose `A = B OR B IS NULL` unification edges defeat
// hash-key extraction, so the engine pays quadratic scans — exactly the
// work the shard layer's keyed wild-bucket co-partition prunes ~k×.
// That reduction is algorithmic, not concurrent: the ratios below hold
// at Parallelism 1 on a single core, where pure data parallelism buys
// nothing. Q⁺1 and Q⁺3 are the control group: their raw plans still
// extract hash keys (their disjunctions ride on top of a pure equality
// conjunct), nothing is quadratic, and sharding is honest overhead —
// the matrix reports that too.
type shardVariant struct {
	query     string
	db        *certsql.DB
	text      string
	param     certsql.Params
	sharded   certsql.Options
	unsharded certsql.Options
}

// shardStressDB is the instance Q⁺2 is measured on: scale factor 0.02
// with 5% nulls confined to part — a relation Q⁺2 never reads. On the
// planner-benchmark instance Q⁺2's unification antijoin collapses to a
// constant-time short-circuit (any null o_custkey certainly-matches
// every customer, so the first null row ends every probe), leaving
// nothing to measure; confining the nulls keeps the antijoin the
// quadratic orders scan the co-partition targets, at a scale where it
// dominates the query.
var shardStressDB = sync.OnceValues(func() (*certsql.DB, tpch.Sizes) {
	cfg := tpch.Config{ScaleFactor: 0.02, Seed: 42}
	inner := tpch.Generate(cfg)
	tpch.InjectNullsInto(inner, 0.05, rand.New(rand.NewSource(42)), "part")
	return certsql.FromInternal(inner), cfg.Sizes()
})

// shardVariants yields the raw certain-mode appendix queries with
// seeded parameter bindings: Q⁺2 on the shard-stress instance, the
// rest on the planner-benchmark instance (sf 0.004, 5% nulls in orders
// and customer), whose raw Q⁺4 join block is the quadratic
// unification product the co-partition prunes.
func shardVariants(t testing.TB) []shardVariant {
	planDB, planSizes := benchPlanDB()
	stressDB, stressSizes := shardStressDB()
	rng := rand.New(rand.NewSource(7))
	var out []shardVariant
	for _, q := range tpch.AllQueries {
		db, sizes := planDB, planSizes
		if q == tpch.Q2 {
			db, sizes = stressDB, stressSizes
		}
		params := q.Params(rng, sizes)
		text, err := certsql.WithMode(q.SQL(), "certain")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, shardVariant{
			query: q.String(), db: db, text: text, param: params,
			sharded:   certsql.Options{Parallelism: 1, NaivePlanner: true, NoOrSplit: true, Shards: 4},
			unsharded: certsql.Options{Parallelism: 1, NaivePlanner: true, NoOrSplit: true},
		})
	}
	return out
}

// BenchmarkShardSpeedup times the raw certain-answer translations
// Q⁺1–Q⁺4 at Shards 4 against the unsharded executor, on prepared
// statements so the measurement is execution, not planning or
// translation. EXPERIMENTS.md records the measured ratios. Run with:
//
//	make bench-shard
func BenchmarkShardSpeedup(b *testing.B) {
	for _, v := range shardVariants(b) {
		for _, side := range []struct {
			name string
			opts certsql.Options
		}{{"shards=4", v.sharded}, {"shards=1", v.unsharded}} {
			b.Run(fmt.Sprintf("%s/%s", v.query, side.name), func(b *testing.B) {
				stmt, err := v.db.Prepare(v.text)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := stmt.ExecuteWithOptions(v.param, side.opts)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Stats.CostUnits), "cost-units")
				}
			})
		}
	}
}

// TestShardSpeedup is the acceptance check behind the benchmark: on at
// least two of the four appendix queries, Shards 4 must run the raw
// certain-answer translation at least 1.5× faster than the unsharded
// executor (best-of-three wall times on prepared statements), while
// returning byte-identical result tables everywhere — the
// shard-ablation invariant measured rather than fuzzed.
func TestShardSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	best := func(v shardVariant, opts certsql.Options) (time.Duration, string) {
		stmt, err := v.db.Prepare(v.text)
		if err != nil {
			t.Fatal(err)
		}
		min, result := time.Duration(0), ""
		for i := 0; i < 3; i++ {
			start := time.Now()
			res, err := stmt.ExecuteWithOptions(v.param, opts)
			if err != nil {
				t.Fatalf("%s: %v", v.query, err)
			}
			if d := time.Since(start); min == 0 || d < min {
				min = d
			}
			result = res.Table().String()
		}
		return min, result
	}
	fast := 0
	for _, v := range shardVariants(t) {
		sharded, shardedTable := best(v, v.sharded)
		unsharded, unshardedTable := best(v, v.unsharded)
		if shardedTable != unshardedTable {
			t.Errorf("%s: sharding changes result bytes", v.query)
		}
		ratio := float64(unsharded) / float64(sharded)
		t.Logf("%s: shards=1 %v / shards=4 %v = %.2fx", v.query, unsharded, sharded, ratio)
		if ratio >= 1.5 {
			fast++
		}
	}
	if fast < 2 {
		t.Errorf("sharding reached a 1.5x speedup on only %d of 4 appendix queries, want >= 2", fast)
	}
}
