// Package certsql is an in-memory SQL engine with a *certain-answer*
// evaluation mode for incomplete databases (databases with NULLs).
//
// It reproduces Guagliardo & Libkin, "Making SQL Queries Correct on
// Incomplete Databases: A Feasibility Study" (PODS 2016): standard SQL
// evaluation over nulls returns false positives — answers that are not
// certain — for queries with negation, and a syntactic translation
// Q ↦ Q⁺ repairs this at a small cost. The package offers both modes:
//
//	db.Query("SELECT o_orderkey FROM orders WHERE NOT EXISTS (...)", nil)
//	db.Query("SELECT CERTAIN o_orderkey FROM orders WHERE NOT EXISTS (...)", nil)
//
// The second form — the paper's proposed SELECT CERTAIN — evaluates the
// translated query Q⁺, whose answers are guaranteed to be certain: true
// under every interpretation of the missing values.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured reproduction results.
package certsql

import (
	"fmt"

	"certsql/internal/algebra"
	"certsql/internal/analyze"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/rewrite"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/value"
)

// Params binds $name query parameters. Values may be Go scalars (int,
// int64, float64, string, bool), Value, or slices for IN-lists.
type Params = compile.Params

// Value is one database entry: a typed constant or a marked null.
type Value = value.Value

// Convenience constructors for values.
var (
	// Int makes an integer value.
	Int = value.Int
	// Float makes a floating-point value.
	Float = value.Float
	// Str makes a string value.
	Str = value.Str
	// Bool makes a boolean value.
	Bool = value.Bool
)

// Date parses a "YYYY-MM-DD" date value; it panics on malformed input
// (use value-level APIs for checked parsing).
func Date(s string) Value { return value.MustDate(s) }

// NULL is a sentinel accepted by Insert: each occurrence becomes a
// fresh marked null (a Codd null, the model of SQL's NULL).
var NULL = nullSentinel{}

type nullSentinel struct{}

// Options tune evaluation; the zero value is the paper's recommended
// configuration (SQL 3VL semantics with all translation optimizations).
type Options struct {
	// Naive evaluates with naive marked-null semantics (⊥ᵢ = ⊥ᵢ is
	// true) instead of SQL's three-valued logic, and makes SELECT
	// CERTAIN use the original Section 6 condition translations rather
	// than the SQL-adjusted Section 7 ones.
	Naive bool

	// NoOrSplit disables the OR-splitting rewrite of NOT EXISTS
	// conditions (Section 7); NoSimplifyNulls keeps all introduced
	// IS NULL tests even on non-nullable columns; NoKeySimplify keeps
	// unification anti-semijoins instead of set differences under keys.
	// These exist for the ablation experiments.
	NoOrSplit       bool
	NoSimplifyNulls bool
	NoKeySimplify   bool

	// NoHashJoin, NoViewCache and NoShortCircuit disable the respective
	// executor strategies (ablations mirroring the paper's optimizer
	// discussion).
	NoHashJoin     bool
	NoViewCache    bool
	NoShortCircuit bool

	// NoAnalyzerFastPath disables the static-analyzer fast path for
	// SELECT CERTAIN: queries the nullability analysis proves safe —
	// plain evaluation already returns exactly the certain answers —
	// normally skip the Q⁺ translation entirely (Stats.FastPathHits
	// counts this). The flag exists for ablations and for the
	// differential tests that compare both routes.
	NoAnalyzerFastPath bool

	// MaxRows bounds intermediate results (0 = default 4M rows).
	MaxRows int

	// Parallelism sets the number of workers the executor fans the
	// probe side of joins, semijoins and filters out over: 0 uses
	// GOMAXPROCS, 1 forces sequential execution, N>1 uses N workers.
	// Results are deterministic — byte-identical at any setting.
	Parallelism int

	// Trace records an EXPLAIN ANALYZE-style plan trace, retrievable
	// from Result.Trace.
	Trace bool
}

func (o Options) semantics() value.Semantics {
	if o.Naive {
		return value.Naive
	}
	return value.SQL3VL
}

func (o Options) evalOptions() eval.Options {
	return eval.Options{
		Semantics:      o.semantics(),
		MaxRows:        o.MaxRows,
		Parallelism:    o.Parallelism,
		NoHashJoin:     o.NoHashJoin,
		NoSubplanCache: o.NoViewCache,
		NoShortCircuit: o.NoShortCircuit,
		Trace:          o.Trace,
	}
}

func (o Options) translator(db *DB) *certain.Translator {
	mode := certain.ModeSQL
	if o.Naive {
		mode = certain.ModeNaive
	}
	return &certain.Translator{
		Sch:           db.d.Schema,
		Mode:          mode,
		SimplifyNulls: !o.NoSimplifyNulls,
		SplitOrs:      !o.NoOrSplit,
		KeySimplify:   !o.NoKeySimplify,
	}
}

// DB is an in-memory incomplete database.
type DB struct {
	d *table.Database
}

// wrap adopts an internal database (used by the TPC-H constructors).
func wrap(d *table.Database) *DB { return &DB{d: d} }

// FromInternal adopts an internal database, for in-module drivers such
// as the differential-testing oracle that build databases directly.
func FromInternal(d *table.Database) *DB { return wrap(d) }

// Insert appends one row to a table. Use NULL for missing values; each
// NULL becomes a fresh marked null.
func (db *DB) Insert(tableName string, vals ...any) error {
	row := make(table.Row, len(vals))
	for i, v := range vals {
		switch v := v.(type) {
		case nullSentinel:
			row[i] = db.d.FreshNull()
		case Value:
			row[i] = v
		case int:
			row[i] = value.Int(int64(v))
		case int64:
			row[i] = value.Int(v)
		case float64:
			row[i] = value.Float(v)
		case string:
			row[i] = value.Str(v)
		case bool:
			row[i] = value.Bool(v)
		default:
			return fmt.Errorf("certsql: unsupported value %T in insert", v)
		}
	}
	return db.d.Insert(tableName, row)
}

// FreshNull mints a marked null usable in Insert; repeating the same
// returned value expresses that two positions hold the *same* unknown
// value (a marked, non-Codd null).
func (db *DB) FreshNull() Value { return db.d.FreshNull() }

// TableLen returns the number of rows in a table.
func (db *DB) TableLen(tableName string) (int, error) {
	t, err := db.d.Table(tableName)
	if err != nil {
		return 0, err
	}
	return t.Len(), nil
}

// NullCount returns the number of null entries in the database.
func (db *DB) NullCount() int { return db.d.NullCount() }

// Internal returns the underlying database, for the experiment drivers
// in this module.
func (db *DB) Internal() *table.Database { return db.d }

// Query parses and evaluates a SQL query. A `SELECT CERTAIN` query is
// translated to Q⁺ first and therefore returns only certain answers;
// a plain SELECT uses standard SQL (3VL) evaluation.
func (db *DB) Query(text string, params Params) (*Result, error) {
	return db.QueryWithOptions(text, params, Options{})
}

// QueryCertain evaluates the query's certain-answer translation Q⁺
// regardless of whether CERTAIN was written in the query text.
func (db *DB) QueryCertain(text string, params Params) (*Result, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	forceCertain(q)
	return db.runParsed(q, params, Options{})
}

// QueryWithOptions is Query with explicit evaluation options.
func (db *DB) QueryWithOptions(text string, params Params, opts Options) (*Result, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return db.runParsed(q, params, opts)
}

// ErrTooLarge reports that evaluation exceeded the row budget (the
// analogue of running out of memory; the legacy Figure-2 translation
// reliably triggers it).
var ErrTooLarge = eval.ErrTooLarge

// evalMode is how a parsed query should be evaluated.
type evalMode uint8

const (
	modeStandard evalMode = iota
	modeCertain
	modePossible
)

// leadSelect returns the SelectStmt that carries the CERTAIN/POSSIBLE
// flags: the body itself, or the leftmost operand of a set operation
// (where the parser attaches the keyword for e.g. `SELECT CERTAIN ...
// UNION ...`).
func leadSelect(body sql.QueryExpr) *sql.SelectStmt {
	for {
		switch b := body.(type) {
		case *sql.SelectStmt:
			return b
		case sql.SetOp:
			body = b.L
		default:
			return nil
		}
	}
}

func forceCertain(q *sql.Query) {
	if sel := leadSelect(q.Body); sel != nil {
		sel.Certain = true
		sel.Possible = false
	}
}

func forcePossible(q *sql.Query) {
	if sel := leadSelect(q.Body); sel != nil {
		sel.Possible = true
		sel.Certain = false
	}
}

// takeMode reads and strips the CERTAIN/POSSIBLE flags (the compiler
// does not know them).
func takeMode(q *sql.Query) evalMode {
	sel := leadSelect(q.Body)
	if sel == nil {
		return modeStandard
	}
	switch {
	case sel.Certain:
		sel.Certain = false
		return modeCertain
	case sel.Possible:
		sel.Possible = false
		return modePossible
	default:
		return modeStandard
	}
}

func (db *DB) runParsed(q *sql.Query, params Params, opts Options) (*Result, error) {
	mode := takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return nil, err
	}
	expr := compiled.Expr
	if mode != modeStandard {
		if err := certain.CheckTranslatable(expr); err != nil {
			return nil, err
		}
	}
	fastPath := false
	switch mode {
	case modeCertain:
		// Fast path: when the static analyzer proves the query safe —
		// plain evaluation returns exactly the certain answers on every
		// database conforming to the schema — skip the Q⁺ translation
		// and run the query as-is. The verdict leans on the schema's
		// NOT NULL declarations, which Insert does not enforce, so the
		// data is checked for conformance first (one scan of the base
		// relations; the certain answers of a non-conforming database
		// are still correct via the translation route).
		//
		// Identity is NOT a valid potential-answer translation Q⋆ (it
		// under-approximates), so modePossible never takes this path.
		if !opts.NoAnalyzerFastPath && analyze.Plan(expr, db.d.Schema).Safe && db.conformsNonNull(expr) {
			fastPath = true
		} else {
			expr = opts.translator(db).Plus(expr)
		}
	case modePossible:
		expr = opts.translator(db).Star(expr)
	}
	ev := eval.New(db.d, opts.evalOptions())
	t, err := ev.Eval(expr)
	if err != nil {
		return nil, err
	}
	stats := ev.Stats()
	if fastPath {
		stats.FastPathHits = 1
	}
	return &Result{
		Columns:  compiled.Columns,
		rows:     t,
		Certain:  mode == modeCertain,
		Possible: mode == modePossible,
		Stats:    stats,
		trace:    ev.Trace(),
	}, nil
}

// conformsNonNull reports whether every base relation reachable from e
// honours its schema NOT NULL declarations in the actual stored data.
// The analyzer's safe verdict is a proof over conforming databases
// only, and Insert deliberately does not enforce nullability (it is a
// generator-side concern in the paper's setup), so the fast path
// re-checks before trusting the verdict.
func (db *DB) conformsNonNull(e algebra.Expr) bool {
	ok := true
	seen := map[string]bool{}
	algebra.Walk(e, func(sub algebra.Expr) {
		b, isBase := sub.(algebra.Base)
		if !isBase || !ok || seen[b.Name] {
			return
		}
		seen[b.Name] = true
		rel, found := db.d.Schema.Relation(b.Name)
		if !found {
			ok = false
			return
		}
		t, err := db.d.Table(b.Name)
		if err != nil {
			ok = false
			return
		}
		for _, row := range t.Rows() {
			for i, attr := range rel.Attrs {
				if !attr.Nullable && row[i].IsNull() {
					ok = false
					return
				}
			}
		}
	})
	return ok
}

// QueryPossible evaluates the query's potential-answer translation Q⋆:
// a compact over-approximation — every answer the query can produce
// under *some* interpretation of the nulls is an instantiation of a
// returned tuple (Definition 3 / Lemma 2 of the paper). Together with
// QueryCertain this brackets the truth:
//
//	certain answers ⊆ answers under any interpretation ⊆ v(possible)
func (db *DB) QueryPossible(text string, params Params) (*Result, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	forcePossible(q)
	return db.runParsed(q, params, Options{})
}

// Rewrite returns the SQL text of the certain-answer translation Q⁺ of
// the query — direct SQL-to-SQL rewriting. The result is what one would
// run on a conventional DBMS to obtain certain answers (the paper's
// appendix queries Q⁺1–Q⁺4 are reproduced this way).
func (db *DB) Rewrite(text string, params Params) (string, error) {
	return db.RewriteWithOptions(text, params, Options{})
}

// RewriteWithOptions is Rewrite with explicit options.
func (db *DB) RewriteWithOptions(text string, params Params, opts Options) (string, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return "", err
	}
	if err := certain.CheckTranslatable(compiled.Expr); err != nil {
		return "", err
	}
	// A statically safe query is its own certain-answer translation: on
	// a conventional DBMS the schema's NOT NULL constraints are
	// enforced, so the analyzer's verdict applies without a data check.
	if !opts.NoAnalyzerFastPath {
		if rep := analyze.Plan(compiled.Expr, db.d.Schema); rep.Safe {
			return rewrite.ToSQL(compiled.Expr, db.d.Schema)
		}
	}
	plus := opts.translator(db).Plus(compiled.Expr)
	return rewrite.ToSQL(plus, db.d.Schema)
}

// RewritePossible returns the SQL text of the potential-answer
// translation Q⋆ — the dual of Rewrite, usable on a conventional DBMS
// to over-approximate the query under unknown values.
func (db *DB) RewritePossible(text string, params Params) (string, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return "", err
	}
	if err := certain.CheckTranslatable(compiled.Expr); err != nil {
		return "", err
	}
	star := (Options{}).translator(db).Star(compiled.Expr)
	return rewrite.ToSQL(star, db.d.Schema)
}

// CertainGroundTruth computes the exact certain answers cert(Q, D) by
// brute-force valuation enumeration. Computing certain answers is
// coNP-hard, so this is only feasible on small instances; it returns an
// error wrapping certain.ErrBruteForceTooLarge beyond its budget.
func (db *DB) CertainGroundTruth(text string, params Params) (*Result, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return nil, err
	}
	t, err := certain.CertainAnswers(compiled.Expr, db.d, certain.BruteForceOptions{})
	if err != nil {
		return nil, err
	}
	return &Result{Columns: compiled.Columns, rows: t, Certain: true}, nil
}

// Explain returns an EXPLAIN ANALYZE-style trace of the query's plan.
func (db *DB) Explain(text string, params Params, opts Options) (string, error) {
	opts.Trace = true
	res, err := db.QueryWithOptions(text, params, opts)
	if err != nil {
		return "", err
	}
	return res.trace + res.Stats.Summary(), nil
}

// Stats summarizes one execution.
type Stats = eval.Stats

// Result is a query result.
type Result struct {
	// Columns names the output columns.
	Columns []string
	// Certain reports whether the result came from certain-answer
	// evaluation (and is therefore guaranteed free of false positives).
	Certain bool
	// Possible reports whether the result came from potential-answer
	// evaluation (an over-approximation; see QueryPossible).
	Possible bool
	// Stats holds execution counters.
	Stats Stats

	rows  *table.Table
	trace string
}

// Len returns the number of rows.
func (r *Result) Len() int { return r.rows.Len() }

// Row returns the i-th row.
func (r *Result) Row(i int) []Value { return r.rows.Row(i) }

// Rows returns all rows; callers must not mutate them.
func (r *Result) Rows() [][]Value { return r.rows.Rows() }

// SortedStrings renders rows deterministically, for display and tests.
func (r *Result) SortedStrings() []string { return r.rows.SortedStrings() }

// Table exposes the underlying table, for the experiment drivers.
func (r *Result) Table() *table.Table { return r.rows }

// Contains reports whether the result contains the given row.
func (r *Result) Contains(vals ...Value) bool { return r.rows.Contains(vals) }

// Sub reports r minus other as row strings, for diff-style displays.
func (r *Result) Sub(other *Result) []string {
	ok := other.rows.KeySet()
	out := table.New(r.rows.Arity())
	for _, row := range r.rows.Rows() {
		if _, in := ok[value.RowKey(row)]; !in {
			out.Append(row)
		}
	}
	return out.SortedStrings()
}

// ErrBruteForceTooLarge re-exports the brute-force budget error.
var ErrBruteForceTooLarge = certain.ErrBruteForceTooLarge
