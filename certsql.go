// Package certsql is an in-memory SQL engine with a *certain-answer*
// evaluation mode for incomplete databases (databases with NULLs).
//
// It reproduces Guagliardo & Libkin, "Making SQL Queries Correct on
// Incomplete Databases: A Feasibility Study" (PODS 2016): standard SQL
// evaluation over nulls returns false positives — answers that are not
// certain — for queries with negation, and a syntactic translation
// Q ↦ Q⁺ repairs this at a small cost. The package offers both modes:
//
//	db.Query("SELECT o_orderkey FROM orders WHERE NOT EXISTS (...)", nil)
//	db.Query("SELECT CERTAIN o_orderkey FROM orders WHERE NOT EXISTS (...)", nil)
//
// The second form — the paper's proposed SELECT CERTAIN — evaluates the
// translated query Q⁺, whose answers are guaranteed to be certain: true
// under every interpretation of the missing values.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured reproduction results.
package certsql

import (
	"context"
	"errors"
	"fmt"

	"certsql/internal/algebra"
	"certsql/internal/analyze"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/guard"
	"certsql/internal/plan"
	"certsql/internal/plancache"
	"certsql/internal/rewrite"
	"certsql/internal/sql"
	"certsql/internal/stats"
	"certsql/internal/table"
	"certsql/internal/value"
)

// Params binds $name query parameters. Values may be Go scalars (int,
// int64, float64, string, bool), Value, or slices for IN-lists.
type Params = compile.Params

// Value is one database entry: a typed constant or a marked null.
type Value = value.Value

// Convenience constructors for values.
var (
	// Int makes an integer value.
	Int = value.Int
	// Float makes a floating-point value.
	Float = value.Float
	// Str makes a string value.
	Str = value.Str
	// Bool makes a boolean value.
	Bool = value.Bool
)

// Date parses a "YYYY-MM-DD" date value; it panics on malformed input
// (use value-level APIs for checked parsing).
func Date(s string) Value { return value.MustDate(s) }

// NULL is a sentinel accepted by Insert: each occurrence becomes a
// fresh marked null (a Codd null, the model of SQL's NULL).
var NULL = nullSentinel{}

type nullSentinel struct{}

// Options tune evaluation; the zero value is the paper's recommended
// configuration (SQL 3VL semantics with all translation optimizations).
type Options struct {
	// Naive evaluates with naive marked-null semantics (⊥ᵢ = ⊥ᵢ is
	// true) instead of SQL's three-valued logic, and makes SELECT
	// CERTAIN use the original Section 6 condition translations rather
	// than the SQL-adjusted Section 7 ones.
	Naive bool

	// NoOrSplit disables the OR-splitting rewrite of NOT EXISTS
	// conditions (Section 7); NoSimplifyNulls keeps all introduced
	// IS NULL tests even on non-nullable columns; NoKeySimplify keeps
	// unification anti-semijoins instead of set differences under keys.
	// These exist for the ablation experiments.
	NoOrSplit       bool
	NoSimplifyNulls bool
	NoKeySimplify   bool

	// NoHashJoin, NoViewCache and NoShortCircuit disable the respective
	// executor strategies (ablations mirroring the paper's optimizer
	// discussion).
	NoHashJoin     bool
	NoViewCache    bool
	NoShortCircuit bool

	// Materialize runs the legacy operator-at-a-time engine, in which
	// every operator materializes its full output, instead of the
	// default streaming batch-iterator executor. The engines agree
	// byte-for-byte on every query; the differential tests use this
	// toggle as an ablation, and it is the escape hatch should the
	// streaming path ever misbehave. Like the other executor toggles it
	// does not change the compiled plan, so both engines share plan
	// cache entries.
	Materialize bool

	// NaivePlanner disables the cost-based planner and runs the plan
	// exactly as translation produced it — the paper-faithful greedy
	// configuration, kept as an ablation. The planner never changes
	// results (its rewrites are byte-identity-preserving and difftest
	// enforces that), so this toggle only trades plan quality; it is an
	// executor-side concern and shares plan-cache entries with the
	// default configuration.
	NaivePlanner bool

	// NoAnalyzerFastPath disables the static-analyzer fast path for
	// SELECT CERTAIN: queries the nullability analysis proves safe —
	// plain evaluation already returns exactly the certain answers —
	// normally skip the Q⁺ translation entirely (Stats.FastPathHits
	// counts this). The flag exists for ablations and for the
	// differential tests that compare both routes.
	NoAnalyzerFastPath bool

	// MaxRows bounds intermediate results, in rows (0 = default 4M,
	// negative = unlimited).
	MaxRows int

	// MaxCostUnits bounds cumulative elementary row operations, so
	// quadratic corners degrade with an error instead of hanging
	// (0 = default 2³⁰, negative = unlimited).
	MaxCostUnits int64

	// MaxMemBytes bounds the cumulative estimated bytes of materialized
	// intermediate results. Estimation is coarse, so the memory budget
	// is opt-in: zero or negative means unlimited.
	MaxMemBytes int64

	// Degrade opts into the degradation ladder for potential-answer
	// queries: when the Q⋆ translation exceeds a resource budget, the
	// query is re-evaluated on the certain-answer route under a fresh
	// budget and the result carries Degraded plus a machine-readable
	// Warning. Certain answers under-approximate where potential
	// answers over-approximate, so the degraded result is still sound —
	// every returned row is a guaranteed answer. Cancellation and
	// deadline expiry never degrade.
	Degrade bool

	// Guard, when non-nil, supplies the Governor directly — overriding
	// the budget fields above and any context passed to the *Context
	// entry points. A Governor's budgets are cumulative, so sharing one
	// across queries shares the budgets (the experiment runners do this
	// deliberately).
	Guard *guard.Governor

	// Parallelism sets the number of workers the executor fans the
	// probe side of joins, semijoins and filters out over: 0 uses
	// GOMAXPROCS, 1 forces sequential execution, N>1 uses N workers.
	// Results are deterministic — byte-identical at any setting.
	Parallelism int

	// Shards executes the probe-side operators scatter-gather across N
	// in-process engine shards (internal/shard, DESIGN.md §16): probe
	// rows are routed to shards by content hash, each shard runs under
	// a child governor rolled up to the query's governor, and the
	// gather reassembles input order — results are byte-identical to an
	// unsharded run at any setting (difftest's shard-ablation invariant
	// pins this). Unification-semijoin build sides are broadcast to
	// every shard, or co-partitioned when statistics prove the build
	// relation null-free (surfaced in ExplainPlan). 0 or 1 runs
	// unsharded. Orthogonal to Parallelism, which fans contiguous
	// chunks across workers inside one shard-less operator.
	Shards int

	// Trace records an EXPLAIN ANALYZE-style plan trace, retrievable
	// from Result.Trace.
	Trace bool
}

func (o Options) semantics() value.Semantics {
	if o.Naive {
		return value.Naive
	}
	return value.SQL3VL
}

func (o Options) limits() guard.Limits {
	return guard.Limits{MaxRows: o.MaxRows, MaxCostUnits: o.MaxCostUnits, MaxMemBytes: o.MaxMemBytes}
}

// governor resolves the Governor for one query: an explicit Guard wins,
// otherwise a fresh one is built from the context and budget fields.
func (o Options) governor(ctx context.Context) *guard.Governor {
	if o.Guard != nil {
		return o.Guard
	}
	return guard.New(ctx, o.limits())
}

func (o Options) evalOptions(gov *guard.Governor) eval.Options {
	return eval.Options{
		Semantics:      o.semantics(),
		Governor:       gov,
		Parallelism:    o.Parallelism,
		Shards:         o.Shards,
		NoHashJoin:     o.NoHashJoin,
		NoSubplanCache: o.NoViewCache,
		NoShortCircuit: o.NoShortCircuit,
		Materialize:    o.Materialize,
		Trace:          o.Trace,
	}
}

func (o Options) translator(db *DB) *certain.Translator {
	mode := certain.ModeSQL
	if o.Naive {
		mode = certain.ModeNaive
	}
	return &certain.Translator{
		Sch:           db.d.Schema,
		Mode:          mode,
		SimplifyNulls: !o.NoSimplifyNulls,
		SplitOrs:      !o.NoOrSplit,
		KeySimplify:   !o.NoKeySimplify,
	}
}

// DB is an in-memory incomplete database.
//
// A DB also carries the state the prepared-execution path needs: a
// plan cache (see Prepare) and the catalog version the cache keys on.
// A standalone DB stays at version 0 for its lifetime — its schema
// never changes, so its cached plans never go stale. The serving
// layer instead builds a DB view per published snapshot with
// FromSnapshot, sharing one cache across versions so a catalog swap
// implicitly invalidates every older plan.
type DB struct {
	d      *table.Database
	catver uint64
	plans  *plancache.Cache
	stats  *stats.Collector
}

// wrap adopts an internal database (used by the TPC-H constructors).
func wrap(d *table.Database) *DB {
	return &DB{d: d, plans: plancache.New(0), stats: stats.NewCollector()}
}

// FromInternal adopts an internal database, for in-module drivers such
// as the differential-testing oracle that build databases directly.
func FromInternal(d *table.Database) *DB { return wrap(d) }

// FromSnapshot adopts one published snapshot of a table.Store: a
// read-only view of d at the given catalog version, whose prepared
// executions key into the shared plan cache under that version. Plans
// compiled against earlier versions miss and age out of the LRU — the
// snapshot swap is the cache invalidation. A nil cache allocates a
// private one (useful in tests).
func FromSnapshot(d *table.Database, version uint64, plans *plancache.Cache) *DB {
	if plans == nil {
		plans = plancache.New(0)
	}
	return &DB{d: d, catver: version, plans: plans, stats: stats.NewCollector()}
}

// WithStatsCollector rebinds the view to a shared statistics collector
// and returns it. The serving layer passes one collector across every
// snapshot view of a store: statistics are cached per table content
// generation, so a republish only rescans the tables that changed.
func (db *DB) WithStatsCollector(c *stats.Collector) *DB {
	if c != nil {
		db.stats = c
	}
	return db
}

// StatsCollector exposes the view's statistics collector, for catalog
// and metrics endpoints.
func (db *DB) StatsCollector() *stats.Collector { return db.stats }

// collectStats returns the current statistics snapshot for planning,
// rescanning only tables whose content generation changed. The governor
// carries the stats-collect fault site for chaos testing.
func (db *DB) collectStats(gov *guard.Governor) (*stats.DBStats, error) {
	return db.stats.CollectGoverned(gov, db.d)
}

// CatalogVersion returns the snapshot version this DB view was built
// from (0 for a standalone database).
func (db *DB) CatalogVersion() uint64 { return db.catver }

// PlanCache exposes the DB's plan cache, for metrics endpoints.
func (db *DB) PlanCache() *plancache.Cache { return db.plans }

// Insert appends one row to a table. Use NULL for missing values; each
// NULL becomes a fresh marked null.
func (db *DB) Insert(tableName string, vals ...any) error {
	row := make(table.Row, len(vals))
	for i, v := range vals {
		switch v := v.(type) {
		case nullSentinel:
			row[i] = db.d.FreshNull()
		case Value:
			row[i] = v
		case int:
			row[i] = value.Int(int64(v))
		case int64:
			row[i] = value.Int(v)
		case float64:
			row[i] = value.Float(v)
		case string:
			row[i] = value.Str(v)
		case bool:
			row[i] = value.Bool(v)
		default:
			return fmt.Errorf("certsql: unsupported value %T in insert", v)
		}
	}
	return db.d.Insert(tableName, row)
}

// FreshNull mints a marked null usable in Insert; repeating the same
// returned value expresses that two positions hold the *same* unknown
// value (a marked, non-Codd null).
func (db *DB) FreshNull() Value { return db.d.FreshNull() }

// EnforceNonNull toggles enforcement of the schema's NOT NULL
// declarations at insertion time. While enabled, Insert (and therefore
// LoadCSV) rejects rows that put a null in a non-nullable column with
// an error unwrapping to *NotNullViolation. Enforcement is opt-in
// because the paper's setup treats nullability as a generator-side
// concern; without it, violations are only counted, and the analyzer
// fast path consults that count.
func (db *DB) EnforceNonNull(on bool) { db.d.EnforceNonNull(on) }

// ConformsNonNull reports whether the stored data currently honours
// every NOT NULL declaration. It is O(1): the database maintains the
// violation count incrementally.
func (db *DB) ConformsNonNull() bool { return db.d.ConformsNonNull() }

// NotNullViolation is the typed error for a rejected NOT NULL
// violation; retrieve with errors.As.
type NotNullViolation = table.NotNullViolation

// TableLen returns the number of rows in a table.
func (db *DB) TableLen(tableName string) (int, error) {
	t, err := db.d.Table(tableName)
	if err != nil {
		return 0, err
	}
	return t.Len(), nil
}

// NullCount returns the number of null entries in the database.
func (db *DB) NullCount() int { return db.d.NullCount() }

// Internal returns the underlying database, for the experiment drivers
// in this module.
func (db *DB) Internal() *table.Database { return db.d }

// Query parses and evaluates a SQL query. A `SELECT CERTAIN` query is
// translated to Q⁺ first and therefore returns only certain answers;
// a plain SELECT uses standard SQL (3VL) evaluation.
func (db *DB) Query(text string, params Params) (*Result, error) {
	return db.QueryWithOptions(text, params, Options{})
}

// QueryContext is Query bounded by ctx: cancellation or deadline
// expiry aborts the evaluation with an error matching ErrCanceled or
// ErrDeadline. An already-canceled context is detected in O(1), before
// the query is even parsed.
func (db *DB) QueryContext(ctx context.Context, text string, params Params) (*Result, error) {
	return db.QueryWithOptionsContext(ctx, text, params, Options{})
}

// QueryWithOptions is Query with explicit evaluation options.
func (db *DB) QueryWithOptions(text string, params Params, opts Options) (*Result, error) {
	return db.QueryWithOptionsContext(context.Background(), text, params, opts)
}

// QueryWithOptionsContext is the fully general query entry point:
// explicit options, bounded by ctx.
func (db *DB) QueryWithOptionsContext(ctx context.Context, text string, params Params, opts Options) (*Result, error) {
	gov := opts.governor(ctx)
	if err := gov.Poll("query"); err != nil {
		return nil, err
	}
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return db.runParsed(gov, q, params, opts)
}

// QueryCertain evaluates the query's certain-answer translation Q⁺
// regardless of whether CERTAIN was written in the query text.
func (db *DB) QueryCertain(text string, params Params) (*Result, error) {
	return db.QueryCertainWithOptionsContext(context.Background(), text, params, Options{})
}

// QueryCertainContext is QueryCertain bounded by ctx.
func (db *DB) QueryCertainContext(ctx context.Context, text string, params Params) (*Result, error) {
	return db.QueryCertainWithOptionsContext(ctx, text, params, Options{})
}

// QueryCertainWithOptions is QueryCertain with explicit options.
func (db *DB) QueryCertainWithOptions(text string, params Params, opts Options) (*Result, error) {
	return db.QueryCertainWithOptionsContext(context.Background(), text, params, opts)
}

// QueryCertainWithOptionsContext is QueryCertain with explicit options,
// bounded by ctx.
func (db *DB) QueryCertainWithOptionsContext(ctx context.Context, text string, params Params, opts Options) (*Result, error) {
	gov := opts.governor(ctx)
	if err := gov.Poll("query"); err != nil {
		return nil, err
	}
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	forceCertain(q)
	return db.runParsed(gov, q, params, opts)
}

// ErrTooLarge reports that evaluation exceeded a resource budget (the
// analogue of running out of memory; the legacy Figure-2 translation
// reliably triggers it). It is the same sentinel as ErrBudget.
var ErrTooLarge = eval.ErrTooLarge

// Typed failure sentinels, re-exported from internal/guard for
// errors.Is dispatch at call sites:
//
//	ErrBudget matches every resource-budget trip (rows, memory, cost);
//	ErrRowBudget, ErrCostBudget and ErrMemBudget narrow it to the
//	specific budget; ErrCanceled and ErrDeadline report context
//	cancellation and deadline expiry and never match ErrBudget.
var (
	ErrBudget     = guard.ErrBudget
	ErrRowBudget  = guard.ErrRowBudget
	ErrCostBudget = guard.ErrCostBudget
	ErrMemBudget  = guard.ErrMemBudget
	ErrCanceled   = guard.ErrCanceled
	ErrDeadline   = guard.ErrDeadline
)

// ErrUntranslatable reports that a query admits no certain-answer
// translation (aggregation, ORDER BY, LIMIT, or a non-relation divisor
// — see the paper's §8); standard evaluation still works on it.
var ErrUntranslatable = certain.ErrUntranslatable

// InternalError is a recovered engine panic: the public API reports
// bugs as errors carrying the operator path and stack instead of
// crashing the caller. Retrieve with errors.As.
type InternalError = guard.InternalError

// evalMode is how a parsed query should be evaluated.
type evalMode uint8

const (
	modeStandard evalMode = iota
	modeCertain
	modePossible
)

// leadSelect returns the SelectStmt that carries the CERTAIN/POSSIBLE
// flags: the body itself, or the leftmost operand of a set operation
// (where the parser attaches the keyword for e.g. `SELECT CERTAIN ...
// UNION ...`).
func leadSelect(body sql.QueryExpr) *sql.SelectStmt {
	for {
		switch b := body.(type) {
		case *sql.SelectStmt:
			return b
		case sql.SetOp:
			body = b.L
		default:
			return nil
		}
	}
}

func forceCertain(q *sql.Query) {
	if sel := leadSelect(q.Body); sel != nil {
		sel.Certain = true
		sel.Possible = false
	}
}

func forcePossible(q *sql.Query) {
	if sel := leadSelect(q.Body); sel != nil {
		sel.Possible = true
		sel.Certain = false
	}
}

// takeMode reads and strips the CERTAIN/POSSIBLE flags (the compiler
// does not know them).
func takeMode(q *sql.Query) evalMode {
	sel := leadSelect(q.Body)
	if sel == nil {
		return modeStandard
	}
	switch {
	case sel.Certain:
		sel.Certain = false
		return modeCertain
	case sel.Possible:
		sel.Possible = false
		return modePossible
	default:
		return modeStandard
	}
}

func (db *DB) runParsed(gov *guard.Governor, q *sql.Query, params Params, opts Options) (res *Result, err error) {
	// The public API never panics: an engine bug that escapes the
	// executor's own containment surfaces as a *guard.InternalError
	// carrying the recovery point and stack.
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, guard.NewInternalError("certsql/query", v)
		}
	}()
	mode := takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return nil, err
	}
	orig := compiled.Expr
	if mode != modeStandard {
		if err := certain.CheckTranslatable(orig); err != nil {
			return nil, err
		}
	}
	switch mode {
	case modeCertain:
		return db.evalCertain(gov, orig, compiled.Columns, opts)
	case modePossible:
		star := opts.translator(db).Star(orig)
		res, err := db.evalExpr(gov, star, compiled.Columns, opts)
		if err == nil {
			res.Possible = true
			return res, nil
		}
		// Degradation ladder (opt-in): when Q⋆ trips a resource budget
		// — never on cancellation or deadline expiry, which don't match
		// ErrBudget — fall back to the certain route under a fresh
		// governor with the same limits and context. Certain answers
		// under-approximate where potential answers over-approximate,
		// so every returned row is still a guaranteed answer.
		if !opts.Degrade || !errors.Is(err, guard.ErrBudget) {
			return nil, err
		}
		res, derr := db.evalCertain(gov.Fresh(), orig, compiled.Columns, opts)
		if derr != nil {
			return nil, derr
		}
		res.Degraded = true
		res.Warnings = append(res.Warnings, Warning{
			Code: WarnDegradedToCertain,
			Message: fmt.Sprintf("potential-answer translation exceeded its resource budget (%v); "+
				"returning certain answers instead — a sound under-approximation", err),
		})
		return res, nil
	default:
		return db.evalExpr(gov, orig, compiled.Columns, opts)
	}
}

// evalCertain runs the certain-answer route for an already-compiled
// query: the analyzer fast path when it applies, the Q⁺ translation
// otherwise.
func (db *DB) evalCertain(gov *guard.Governor, orig algebra.Expr, cols []string, opts Options) (*Result, error) {
	expr := orig
	fastPath := false
	// Fast path: when the static analyzer proves the query safe —
	// plain evaluation returns exactly the certain answers on every
	// database conforming to the schema — skip the Q⁺ translation and
	// run the query as-is. The verdict leans on the schema's NOT NULL
	// declarations, which Insert enforces only on request, so the
	// database's O(1) conformance counter (maintained incrementally by
	// Insert and ReplaceRow) gates the verdict; a non-conforming
	// database still gets correct certain answers via the translation
	// route.
	//
	// Identity is NOT a valid potential-answer translation Q⋆ (it
	// under-approximates), so the possible route never comes here.
	if !opts.NoAnalyzerFastPath && analyze.Plan(orig, db.d.Schema).Safe && db.d.ConformsNonNull() {
		fastPath = true
	} else {
		expr = opts.translator(db).Plus(orig)
	}
	res, err := db.evalExpr(gov, expr, cols, opts)
	if err != nil {
		return nil, err
	}
	res.Certain = true
	if fastPath {
		res.Stats.FastPathHits = 1
	}
	return res, nil
}

// evalExpr evaluates one algebra expression under the governor.
func (db *DB) evalExpr(gov *guard.Governor, expr algebra.Expr, cols []string, opts Options) (*Result, error) {
	return db.evalExprShaped(gov, expr, nil, cols, opts)
}

// evalExprShaped is evalExpr with a plan-cached iterator-tree
// annotation: prepared executions hand the streaming engine the shape
// captured at compile time, ad-hoc executions pass nil and the engine
// derives pipeline boundaries on the fly.
//
// Ad-hoc executions (shape == nil) run the cost-based planner here,
// against statistics collected from the live data — every premise the
// planner records holds by construction, so no premise re-check is
// needed on this route. Prepared executions plan at compile time
// instead and re-check premises in runPlan.
func (db *DB) evalExprShaped(gov *guard.Governor, expr algebra.Expr, shape *eval.Shape, cols []string, opts Options) (*Result, error) {
	var hints *eval.PlanHints
	if shape == nil && !opts.NaivePlanner {
		st, err := db.collectStats(gov)
		if err != nil {
			return nil, err
		}
		pr, err := plan.Optimize(expr, db.d.Schema, st, gov)
		if err != nil {
			return nil, err
		}
		expr, hints = pr.Expr, pr.Hints
	}
	return db.evalExprPlanned(gov, expr, shape, hints, cols, opts)
}

// evalExprPlanned is the evaluation tail shared by the ad-hoc and
// prepared routes: expression, shape annotation and planner hints are
// all settled, only execution remains — plus, under Shards > 1, the
// shard plan, which is derived here per execution rather than cached:
// its co-partition choices depend on null-rate statistics that a load
// can invalidate, so each run decides against fresh statistics and the
// plan cache stays shard-agnostic (Shards is deliberately absent from
// the plan-cache fingerprint).
func (db *DB) evalExprPlanned(gov *guard.Governor, expr algebra.Expr, shape *eval.Shape, hints *eval.PlanHints, cols []string, opts Options) (*Result, error) {
	eo := opts.evalOptions(gov)
	eo.Shape, eo.Hints = shape, hints
	if opts.Shards > 1 {
		sh, err := db.shardHints(gov, expr, opts)
		if err != nil {
			return nil, err
		}
		if sh != nil {
			eo.Hints = withShardHints(eo.Hints, sh)
		}
	}
	ev := eval.New(db.d, eo)
	t, err := ev.Eval(expr)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: cols, rows: t, Stats: ev.Stats(), trace: ev.Trace()}, nil
}

// shardHints derives the per-operator shard hints for one execution.
// The shard plan is an execution-layer choice, not a logical-plan one,
// so it runs under NaivePlanner too: the naive route keeps the
// paper-faithful plan shape — whose unification semijoins are exactly
// the operators co-partitioning pays off on — while the broadcast-vs-
// co-partition call is still cost-gated by statistics collected now,
// with the null-free premises re-checked against those same statistics.
// A failed re-check (the seam prepared executions rely on when a load
// lands between planning and running) drops to broadcast, never to a
// wrong answer.
func (db *DB) shardHints(gov *guard.Governor, expr algebra.Expr, opts Options) (map[string]eval.ShardHint, error) {
	st, err := db.collectStats(gov)
	if err != nil {
		return nil, err
	}
	sr := plan.ShardPlan(expr, st, opts.Shards)
	if sr == nil || sr.Hints == nil {
		return nil, nil
	}
	if !plan.CheckPremises(sr.Premises, st) {
		return nil, nil
	}
	return sr.Hints, nil
}

// withShardHints returns a copy of h carrying the shard hints. The
// copy matters: h may be owned by the plan cache and shared across
// concurrent executions with different shard counts.
func withShardHints(h *eval.PlanHints, sh map[string]eval.ShardHint) *eval.PlanHints {
	var nh eval.PlanHints
	if h != nil {
		nh = *h
	}
	nh.Shard = sh
	return &nh
}

// QueryPossible evaluates the query's potential-answer translation Q⋆:
// a compact over-approximation — every answer the query can produce
// under *some* interpretation of the nulls is an instantiation of a
// returned tuple (Definition 3 / Lemma 2 of the paper). Together with
// QueryCertain this brackets the truth:
//
//	certain answers ⊆ answers under any interpretation ⊆ v(possible)
func (db *DB) QueryPossible(text string, params Params) (*Result, error) {
	return db.QueryPossibleWithOptionsContext(context.Background(), text, params, Options{})
}

// QueryPossibleContext is QueryPossible bounded by ctx.
func (db *DB) QueryPossibleContext(ctx context.Context, text string, params Params) (*Result, error) {
	return db.QueryPossibleWithOptionsContext(ctx, text, params, Options{})
}

// QueryPossibleWithOptions is QueryPossible with explicit options.
func (db *DB) QueryPossibleWithOptions(text string, params Params, opts Options) (*Result, error) {
	return db.QueryPossibleWithOptionsContext(context.Background(), text, params, opts)
}

// QueryPossibleWithOptionsContext is QueryPossible with explicit
// options, bounded by ctx.
func (db *DB) QueryPossibleWithOptionsContext(ctx context.Context, text string, params Params, opts Options) (*Result, error) {
	gov := opts.governor(ctx)
	if err := gov.Poll("query"); err != nil {
		return nil, err
	}
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	forcePossible(q)
	return db.runParsed(gov, q, params, opts)
}

// Rewrite returns the SQL text of the certain-answer translation Q⁺ of
// the query — direct SQL-to-SQL rewriting. The result is what one would
// run on a conventional DBMS to obtain certain answers (the paper's
// appendix queries Q⁺1–Q⁺4 are reproduced this way).
func (db *DB) Rewrite(text string, params Params) (string, error) {
	return db.RewriteWithOptions(text, params, Options{})
}

// RewriteContext is Rewrite bounded by ctx. Translation is pure CPU
// work with no data-dependent loops, so the context is honored with an
// O(1) pre-check rather than interior polling.
func (db *DB) RewriteContext(ctx context.Context, text string, params Params) (string, error) {
	if err := guard.New(ctx, guard.Limits{}).Poll("rewrite"); err != nil {
		return "", err
	}
	return db.RewriteWithOptions(text, params, Options{})
}

// RewriteWithOptions is Rewrite with explicit options.
func (db *DB) RewriteWithOptions(text string, params Params, opts Options) (string, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return "", err
	}
	if err := certain.CheckTranslatable(compiled.Expr); err != nil {
		return "", err
	}
	// A statically safe query is its own certain-answer translation: on
	// a conventional DBMS the schema's NOT NULL constraints are
	// enforced, so the analyzer's verdict applies without a data check.
	if !opts.NoAnalyzerFastPath {
		if rep := analyze.Plan(compiled.Expr, db.d.Schema); rep.Safe {
			return rewrite.ToSQL(compiled.Expr, db.d.Schema)
		}
	}
	plus := opts.translator(db).Plus(compiled.Expr)
	return rewrite.ToSQL(plus, db.d.Schema)
}

// RewritePossible returns the SQL text of the potential-answer
// translation Q⋆ — the dual of Rewrite, usable on a conventional DBMS
// to over-approximate the query under unknown values.
func (db *DB) RewritePossible(text string, params Params) (string, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return "", err
	}
	if err := certain.CheckTranslatable(compiled.Expr); err != nil {
		return "", err
	}
	star := (Options{}).translator(db).Star(compiled.Expr)
	return rewrite.ToSQL(star, db.d.Schema)
}

// CertainGroundTruth computes the exact certain answers cert(Q, D) by
// brute-force valuation enumeration. Computing certain answers is
// coNP-hard, so this is only feasible on small instances; it returns an
// error wrapping certain.ErrBruteForceTooLarge beyond its budget.
func (db *DB) CertainGroundTruth(text string, params Params) (*Result, error) {
	return db.CertainGroundTruthContext(context.Background(), text, params)
}

// CertainGroundTruthContext is CertainGroundTruth bounded by ctx: the
// valuation enumeration polls once per valuation, so cancellation and
// deadlines interrupt even coNP-hard instances promptly.
func (db *DB) CertainGroundTruthContext(ctx context.Context, text string, params Params) (*Result, error) {
	gov := guard.New(ctx, guard.Limits{})
	if err := gov.Poll("brute-force"); err != nil {
		return nil, err
	}
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return nil, err
	}
	t, err := certain.CertainAnswers(compiled.Expr, db.d, certain.BruteForceOptions{Governor: gov})
	if err != nil {
		return nil, err
	}
	return &Result{Columns: compiled.Columns, rows: t, Certain: true}, nil
}

// Explain returns an EXPLAIN ANALYZE-style trace of the query's plan.
func (db *DB) Explain(text string, params Params, opts Options) (string, error) {
	opts.Trace = true
	res, err := db.QueryWithOptions(text, params, opts)
	if err != nil {
		return "", err
	}
	return res.trace + res.Stats.Summary(), nil
}

// ExplainPlan returns the cost-based planner's EXPLAIN for the query
// without executing it: the costed operator tree for the expression the
// chosen mode would evaluate, the rewrite rules that fired, and the
// statistics premises the plan relies on. With Options.NaivePlanner the
// tree is costed but unrewritten. The output is deterministic for a
// fixed database — the golden EXPLAIN tests pin it for the paper's
// appendix queries.
func (db *DB) ExplainPlan(text string, params Params, opts Options) (string, error) {
	return db.ExplainPlanContext(context.Background(), text, params, opts)
}

// ExplainPlanContext is ExplainPlan bounded by ctx: statistics
// collection and plan optimization are governed work (they scan tables
// and search the rewrite space), so an EXPLAIN issued on a request path
// must stop when its request does.
func (db *DB) ExplainPlanContext(ctx context.Context, text string, params Params, opts Options) (string, error) {
	gov := opts.governor(ctx)
	q, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	mode := takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return "", err
	}
	expr := compiled.Expr
	if mode != modeStandard {
		if err := certain.CheckTranslatable(expr); err != nil {
			return "", err
		}
	}
	switch mode {
	case modeStandard:
		// standard evaluation explains the compiled expression as-is
	case modeCertain:
		// Mirror evalCertain's route choice so the explained plan is the
		// one a query would actually run.
		if opts.NoAnalyzerFastPath || !analyze.Plan(expr, db.d.Schema).Safe || !db.d.ConformsNonNull() {
			expr = opts.translator(db).Plus(expr)
		}
	case modePossible:
		expr = opts.translator(db).Star(expr)
	}
	st, err := db.collectStats(gov)
	if err != nil {
		return "", err
	}
	if opts.NaivePlanner {
		return "plan (naive)\n" + plan.Describe(expr, db.d.Schema, st).Render(), nil
	}
	pr, err := plan.Optimize(expr, db.d.Schema, st, gov)
	if err != nil {
		return "", err
	}
	out := pr.ExplainText()
	if opts.Shards > 1 {
		out += plan.ShardPlan(pr.Expr, st, opts.Shards).Render(opts.Shards)
	}
	return out, nil
}

// Stats summarizes one execution.
type Stats = eval.Stats

// Warning is a machine-readable advisory attached to a Result.
type Warning struct {
	// Code identifies the advisory kind; dispatch on it, not Message.
	Code string
	// Message is the human-readable explanation.
	Message string
}

// WarnDegradedToCertain is the Warning.Code attached when a
// potential-answer query exceeded its resource budget and degraded to
// the certain-answer route (see Options.Degrade).
const WarnDegradedToCertain = "degraded-to-certain"

// Result is a query result.
type Result struct {
	// Columns names the output columns.
	Columns []string
	// Certain reports whether the result came from certain-answer
	// evaluation (and is therefore guaranteed free of false positives).
	Certain bool
	// Possible reports whether the result came from potential-answer
	// evaluation (an over-approximation; see QueryPossible).
	Possible bool
	// Degraded reports that the requested evaluation exceeded its
	// resource budget and the result came from the degradation ladder
	// instead (see Options.Degrade); Warnings carries the details.
	Degraded bool
	// Warnings holds machine-readable advisories about this result.
	Warnings []Warning
	// Stats holds execution counters.
	Stats Stats

	rows  *table.Table
	trace string
}

// Len returns the number of rows.
func (r *Result) Len() int { return r.rows.Len() }

// Row returns the i-th row.
func (r *Result) Row(i int) []Value { return r.rows.Row(i) }

// Rows returns all rows; callers must not mutate them.
func (r *Result) Rows() [][]Value { return r.rows.Rows() }

// SortedStrings renders rows deterministically, for display and tests.
func (r *Result) SortedStrings() []string { return r.rows.SortedStrings() }

// Table exposes the underlying table, for the experiment drivers.
func (r *Result) Table() *table.Table { return r.rows }

// Contains reports whether the result contains the given row.
func (r *Result) Contains(vals ...Value) bool { return r.rows.Contains(vals) }

// Sub reports r minus other as row strings, for diff-style displays.
func (r *Result) Sub(other *Result) []string {
	ok := other.rows.KeySet()
	out := table.New(r.rows.Arity())
	for _, row := range r.rows.Rows() {
		if _, in := ok[value.RowKey(row)]; !in {
			out.Append(row)
		}
	}
	return out.SortedStrings()
}

// ErrBruteForceTooLarge re-exports the brute-force budget error.
var ErrBruteForceTooLarge = certain.ErrBruteForceTooLarge
