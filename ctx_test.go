package certsql_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"certsql"
	"certsql/internal/guard"
	"certsql/internal/guard/faultinject"
)

// ctxDB builds an instance large enough that the Q⁺ anti-semijoin runs
// a long nested loop (the condition below defeats hashing), giving
// mid-flight cancellation plenty of polls to land on.
func ctxDB(t testing.TB, n int) *certsql.DB {
	t.Helper()
	db := certsql.MustOpen(
		certsql.Table{
			Name: "emp",
			Columns: []certsql.Column{
				{Name: "id", Type: certsql.TInt},
				{Name: "dept", Type: certsql.TInt},
			},
		},
		certsql.Table{
			Name: "badge",
			Columns: []certsql.Column{
				{Name: "emp_id", Type: certsql.TInt},
			},
		},
	)
	for i := 0; i < n; i++ {
		if err := db.Insert("emp", i, i%7); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("badge", i+n); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// ctxQuery is hash-defeating (the OR disjunct) so every executor
// configuration runs the quadratic nested-loop strategy.
const ctxQuery = `SELECT CERTAIN id FROM emp WHERE NOT EXISTS (SELECT * FROM badge WHERE emp_id = id OR emp_id IS NULL)`

// TestQueryContextPreCanceled asserts an already-canceled context is
// rejected in O(1), before the query is parsed: even unparseable text
// returns the cancellation error.
func TestQueryContextPreCanceled(t *testing.T) {
	db := ctxDB(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "THIS IS NOT SQL", nil); !errors.Is(err, certsql.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled before parse", err)
	}
	if _, err := db.QueryContext(ctx, ctxQuery, nil); !errors.Is(err, certsql.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

// TestQueryContextDeadline asserts deadline expiry surfaces as
// ErrDeadline, distinct from plain cancellation.
func TestQueryContextDeadline(t *testing.T) {
	db := ctxDB(t, 5)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := db.QueryContext(ctx, ctxQuery, nil); !errors.Is(err, certsql.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

// TestQueryContextCancelMidFlightAblations cancels the evaluation from
// inside the engine (a seeded fault at the first base-table scan) and
// asserts guard.ErrCanceled surfaces through the public API in every
// executor ablation, with no goroutine leak and a correct retry.
func TestQueryContextCancelMidFlightAblations(t *testing.T) {
	db := ctxDB(t, 1500)
	want, err := db.Query(ctxQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	ablations := map[string]certsql.Options{
		"baseline":         {},
		"no-hash-join":     {NoHashJoin: true},
		"no-view-cache":    {NoViewCache: true},
		"no-short-circuit": {NoShortCircuit: true},
		"no-fast-path":     {NoAnalyzerFastPath: true},
	}
	for name, opts := range ablations {
		t.Run(name, func(t *testing.T) {
			baseGoroutines := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inj := faultinject.New(faultinject.Fault{Site: guard.SiteScan, Kind: faultinject.KindCancel, HitNumber: 1})
			inj.SetCancel(cancel)
			gov := guard.New(ctx, guard.Limits{})
			gov.SetFaultHook(inj)
			opts.Guard = gov
			opts.Parallelism = 4

			_, err := db.QueryWithOptionsContext(ctx, ctxQuery, nil, opts)
			if !errors.Is(err, guard.ErrCanceled) {
				t.Fatalf("mid-flight cancel: got %v, want guard.ErrCanceled", err)
			}
			if inj.Fired() == 0 {
				t.Fatal("cancel fault never fired")
			}
			settleCtxGoroutines(t, baseGoroutines)

			opts.Guard = nil
			got, err := db.QueryWithOptions(ctxQuery, nil, opts)
			if err != nil {
				t.Fatalf("retry: %v", err)
			}
			if fmt.Sprint(got.SortedStrings()) != fmt.Sprint(want.SortedStrings()) {
				t.Fatal("retry after cancellation differs from clean run")
			}
		})
	}
}

// TestDegradeLadder asserts the opt-in degradation: a potential-answer
// query whose Q⋆ translation exceeds the cost budget returns the
// certain answers with Degraded set and a machine-readable warning —
// and the degraded rows are exactly what the certain route produces.
func TestDegradeLadder(t *testing.T) {
	db := certsql.MustOpen(
		certsql.Table{Name: "emp", Columns: []certsql.Column{{Name: "id", Type: certsql.TInt}}},
		certsql.Table{Name: "badge", Columns: []certsql.Column{{Name: "emp_id", Type: certsql.TInt}}},
	)
	for i := 0; i < 200; i++ {
		if err := db.Insert("emp", i); err != nil {
			t.Fatal(err)
		}
		// Half the badges reference an employee, half do not.
		if err := db.Insert("badge", 2*i); err != nil {
			t.Fatal(err)
		}
	}
	// Q⋆ of a positive EXISTS runs a quadratic unification semijoin
	// (~200·200 cost units); Q⁺ of the same query is a plain semijoin
	// (~10³). The budget is sized between the two, so the Q⋆ route
	// trips while the certain rerun — under a fresh budget of the same
	// size — completes. NaivePlanner keeps the quadratic shape: the
	// cost-based planner would (correctly) notice this data is
	// null-free and collapse Q⋆'s unifying disjunction into a cheap
	// hash semijoin, deflating the scenario.
	q := `SELECT id FROM emp WHERE EXISTS (SELECT * FROM badge WHERE emp_id = id)`
	opts := certsql.Options{MaxCostUnits: 20_000, NaivePlanner: true}

	if _, err := db.QueryPossibleWithOptions(q, nil, opts); !errors.Is(err, certsql.ErrBudget) {
		t.Fatalf("Q⋆ without Degrade: got %v, want ErrBudget", err)
	}

	opts.Degrade = true
	res, err := db.QueryPossibleWithOptions(q, nil, opts)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if !res.Degraded || !res.Certain || res.Possible {
		t.Fatalf("degraded result flags: Degraded=%v Certain=%v Possible=%v", res.Degraded, res.Certain, res.Possible)
	}
	found := false
	for _, w := range res.Warnings {
		if w.Code == certsql.WarnDegradedToCertain && w.Message != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing %q warning: %+v", certsql.WarnDegradedToCertain, res.Warnings)
	}
	sure, err := db.QueryCertain(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.SortedStrings()) != fmt.Sprint(sure.SortedStrings()) {
		t.Fatal("degraded rows differ from the certain answers")
	}

	// Cancellation must never degrade: the caller has gone away.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryPossibleWithOptionsContext(ctx, q, nil, opts); !errors.Is(err, certsql.ErrCanceled) {
		t.Fatalf("canceled degrade-enabled query: got %v, want ErrCanceled", err)
	}
}

// TestFacadePanicContained asserts an engine panic surfaces from the
// public API as a typed *InternalError, never as a process crash.
func TestFacadePanicContained(t *testing.T) {
	db := ctxDB(t, 300)
	inj := faultinject.New(faultinject.Fault{Site: guard.SiteScan, Kind: faultinject.KindPanic, HitNumber: 1})
	gov := guard.Background(guard.Limits{})
	gov.SetFaultHook(inj)
	_, err := db.QueryWithOptions(ctxQuery, nil, certsql.Options{Guard: gov})
	var ie *certsql.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want *certsql.InternalError", err)
	}
	if ie.Op == "" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError should carry op and stack: %+v", ie)
	}
	// The database is still usable afterwards.
	if _, err := db.Query(ctxQuery, nil); err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
}

// settleCtxGoroutines waits for the goroutine count to drain back to
// at most base.
func settleCtxGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}
