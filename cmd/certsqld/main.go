// Command certsqld serves the certain-answer engine over HTTP: a
// long-running process with per-session catalogs, a compiled-plan
// cache, snapshot-consistent reads and admission control. See
// DESIGN.md §11 for the architecture and the README for a curl
// walkthrough.
//
// Usage:
//
//	certsqld -addr 127.0.0.1:7583 -sf 0.001 -nullrate 0.03
//
// The process prints one "certsqld listening on http://host:port" line
// to stdout once the listener is up (with -addr :0 the kernel picks
// the port, so scripts parse this line), serves until SIGINT/SIGTERM,
// then drains in-flight queries and exits 0.
//
// With -data-dir the default session is backed by the crash-safe
// persistent store (internal/persist): every /v1/load is written ahead
// to a checksummed WAL before it is acknowledged, so acknowledged
// loads survive kill -9. The listener comes up immediately in a
// recovering state — /healthz answers 503 "recovering" and data
// endpoints answer 503 {"code":"recovering"} — while the store opens
// (replaying the WAL) in the background, then flips live. On first
// start the directory is initialized from the usual seed flags
// (-sf/-nullrate/-seed, or -data CSV, or -empty); on later starts
// those flags are ignored and the recovered catalog wins. Inspect a
// data directory offline with `certsql fsck <dir>`.
//
// Endpoints:
//
//	POST /v1/query     ad-hoc SQL (plan-cached under the hood)
//	POST /v1/prepare   register a statement, returns a handle
//	POST /v1/execute   run a prepared handle
//	POST /v1/load      append rows, publishing a new snapshot version
//	GET  /v1/catalog   schema + row counts at the current version
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      text metrics (requests, latencies, cache, queue)
//	GET  /debug/pprof  the standard Go profiler endpoints
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"certsql"
	"certsql/internal/guard"
	"certsql/internal/persist"
	"certsql/internal/server"
	"certsql/internal/table"
	"certsql/internal/tpch"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:7583", "listen address (use :0 for a kernel-assigned port)")
		sf       = flag.Float64("sf", 0.001, "TPC-H scale factor for the seed catalog")
		nullRate = flag.Float64("nullrate", 0.03, "null rate for nullable attributes")
		seed     = flag.Int64("seed", 1, "random seed for the generated instance")
		dataDir  = flag.String("data", "", "load the seed catalog from a directory of CSV files instead of generating")
		empty    = flag.Bool("empty", false, "start with an empty TPC-H schema (load data via /v1/load)")

		persistDir = flag.String("data-dir", "", "durable data directory: back the default session with the crash-safe persistent store (initialized from the seed flags on first start, recovered via WAL replay after)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "WAL records between checkpoints of the persistent store (0 = default 64, negative = only at open)")

		maxConc  = flag.Int("max-concurrent", 4, "queries evaluating at once")
		maxQueue = flag.Int("max-queue", 0, "queries waiting for a slot before 429 (0 = 2x max-concurrent)")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-query evaluation deadline (0 = none)")
		maxTime  = flag.Duration("max-timeout", 0, "ceiling on request timeout overrides (0 = uncapped)")
		rowBudg  = flag.Int("max-rows", 0, "default row budget for intermediate results (0 = guard default 4M)")
		costBudg = flag.Int64("max-cost", 0, "default cost budget in elementary row operations (0 = guard default)")
		memBudg  = flag.Int64("max-mem", 256<<20, "default estimated-bytes memory budget (0 = unlimited)")
		par      = flag.Int("parallelism", 1, "executor workers per query (0 = GOMAXPROCS); cross-query concurrency comes from -max-concurrent")
		shards   = flag.Int("shards", 1, "engine shards queries scatter across (1 = unsharded); dropped to 1 per query while the server is loaded")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for in-flight queries")
	)
	flag.Parse()

	cfg := server.Config{
		MaxConcurrent: *maxConc,
		MaxQueue:      *maxQueue,
		DefaultLimits: guard.Limits{
			MaxRows:      *rowBudg,
			MaxCostUnits: *costBudg,
			MaxMemBytes:  *memBudg,
		},
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTime,
		Parallelism:    *par,
		Shards:         *shards,
	}

	var srv *server.Server
	if *persistDir == "" {
		seedDB, err := seedCatalog(*dataDir, *empty, *sf, *nullRate, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "certsqld:", err)
			return 1
		}
		cfg.Seed = seedDB
		srv = server.New(cfg)
	} else {
		// Durable mode: the listener comes up first in the recovering
		// state, WAL replay runs in the background, and Activate flips
		// the server live — so orchestrators see the port and probe
		// /healthz from the first moment of a cold start.
		srv = server.NewRecovering(cfg)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "certsqld:", err)
		return 1
	}
	fmt.Printf("certsqld listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var storePtr atomic.Pointer[persist.Store]
	recoverErr := make(chan error, 1) // receives only failures; success Activates in place
	if *persistDir != "" {
		fmt.Fprintf(os.Stderr, "certsqld: opening durable catalog in %s...\n", *persistDir)
		go func() {
			start := time.Now()
			store, err := persist.Open(*persistDir, func() (*table.Database, error) {
				return seedCatalog(*dataDir, *empty, *sf, *nullRate, *seed)
			}, persist.Options{
				CheckpointEvery: *ckptEvery,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "certsqld: "+format+"\n", args...)
				},
			})
			if err != nil {
				recoverErr <- err
				return
			}
			storePtr.Store(store)
			// Named sessions start from the recovered catalog; the
			// default session serves straight from the durable store.
			srv.Activate(store.Snapshot().DB, store)
			fmt.Fprintf(os.Stderr, "certsqld: catalog live at v%d after %s\n",
				store.Version(), time.Since(start).Round(time.Millisecond))
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "certsqld:", err)
		return 1
	case err := <-recoverErr:
		fmt.Fprintln(os.Stderr, "certsqld: recovery failed:", err)
		fmt.Fprintln(os.Stderr, "certsqld: inspect the directory with `certsql fsck` before restarting")
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: fail health checks immediately so balancers
	// stop routing, then let in-flight queries finish under the drain
	// deadline. Queries past the deadline are cut off by their own
	// evaluation contexts when the server process exits.
	fmt.Fprintln(os.Stderr, "certsqld: draining...")
	srv.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "certsqld: drain incomplete:", err)
		return 1
	}
	// Close the durable store only after the drain: every acknowledged
	// load is already on disk (WAL-ahead publish), so this just releases
	// the file handles cleanly. A store still mid-recovery is simply
	// abandoned — recovery never writes anything unsynced worth keeping.
	if store := storePtr.Load(); store != nil {
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "certsqld: store close:", err)
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, "certsqld: drained, bye")
	return 0
}

// seedCatalog builds the initial database every session starts from.
func seedCatalog(dataDir string, empty bool, sf, nullRate float64, seed int64) (*table.Database, error) {
	switch {
	case dataDir != "":
		db, err := certsql.OpenTPCHDir(dataDir)
		if err != nil {
			return nil, err
		}
		return db.Internal(), nil
	case empty:
		return table.NewDatabase(tpch.Schema()), nil
	default:
		if sf < 0 || nullRate < 0 || nullRate > 1 {
			return nil, errors.New("bad -sf/-nullrate")
		}
		return tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: seed, NullRate: nullRate}), nil
	}
}
