// Command certsqld serves the certain-answer engine over HTTP: a
// long-running process with per-session catalogs, a compiled-plan
// cache, snapshot-consistent reads and admission control. See
// DESIGN.md §11 for the architecture and the README for a curl
// walkthrough.
//
// Usage:
//
//	certsqld -addr 127.0.0.1:7583 -sf 0.001 -nullrate 0.03
//
// The process prints one "certsqld listening on http://host:port" line
// to stdout once the listener is up (with -addr :0 the kernel picks
// the port, so scripts parse this line), serves until SIGINT/SIGTERM,
// then drains in-flight queries and exits 0.
//
// Endpoints:
//
//	POST /v1/query     ad-hoc SQL (plan-cached under the hood)
//	POST /v1/prepare   register a statement, returns a handle
//	POST /v1/execute   run a prepared handle
//	POST /v1/load      append rows, publishing a new snapshot version
//	GET  /v1/catalog   schema + row counts at the current version
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      text metrics (requests, latencies, cache, queue)
//	GET  /debug/pprof  the standard Go profiler endpoints
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"certsql"
	"certsql/internal/guard"
	"certsql/internal/server"
	"certsql/internal/table"
	"certsql/internal/tpch"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:7583", "listen address (use :0 for a kernel-assigned port)")
		sf       = flag.Float64("sf", 0.001, "TPC-H scale factor for the seed catalog")
		nullRate = flag.Float64("nullrate", 0.03, "null rate for nullable attributes")
		seed     = flag.Int64("seed", 1, "random seed for the generated instance")
		dataDir  = flag.String("data", "", "load the seed catalog from a directory of CSV files instead of generating")
		empty    = flag.Bool("empty", false, "start with an empty TPC-H schema (load data via /v1/load)")

		maxConc  = flag.Int("max-concurrent", 4, "queries evaluating at once")
		maxQueue = flag.Int("max-queue", 0, "queries waiting for a slot before 429 (0 = 2x max-concurrent)")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-query evaluation deadline (0 = none)")
		maxTime  = flag.Duration("max-timeout", 0, "ceiling on request timeout overrides (0 = uncapped)")
		rowBudg  = flag.Int("max-rows", 0, "default row budget for intermediate results (0 = guard default 4M)")
		costBudg = flag.Int64("max-cost", 0, "default cost budget in elementary row operations (0 = guard default)")
		memBudg  = flag.Int64("max-mem", 256<<20, "default estimated-bytes memory budget (0 = unlimited)")
		par      = flag.Int("parallelism", 1, "executor workers per query (0 = GOMAXPROCS); cross-query concurrency comes from -max-concurrent")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for in-flight queries")
	)
	flag.Parse()

	seedDB, err := seedCatalog(*dataDir, *empty, *sf, *nullRate, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "certsqld:", err)
		return 1
	}

	srv := server.New(server.Config{
		Seed:          seedDB,
		MaxConcurrent: *maxConc,
		MaxQueue:      *maxQueue,
		DefaultLimits: guard.Limits{
			MaxRows:      *rowBudg,
			MaxCostUnits: *costBudg,
			MaxMemBytes:  *memBudg,
		},
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTime,
		Parallelism:    *par,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "certsqld:", err)
		return 1
	}
	fmt.Printf("certsqld listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "certsqld:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: fail health checks immediately so balancers
	// stop routing, then let in-flight queries finish under the drain
	// deadline. Queries past the deadline are cut off by their own
	// evaluation contexts when the server process exits.
	fmt.Fprintln(os.Stderr, "certsqld: draining...")
	srv.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "certsqld: drain incomplete:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "certsqld: drained, bye")
	return 0
}

// seedCatalog builds the initial database every session starts from.
func seedCatalog(dataDir string, empty bool, sf, nullRate float64, seed int64) (*table.Database, error) {
	switch {
	case dataDir != "":
		db, err := certsql.OpenTPCHDir(dataDir)
		if err != nil {
			return nil, err
		}
		return db.Internal(), nil
	case empty:
		return table.NewDatabase(tpch.Schema()), nil
	default:
		if sf < 0 || nullRate < 0 || nullRate > 1 {
			return nil, errors.New("bad -sf/-nullrate")
		}
		return tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: seed, NullRate: nullRate}), nil
	}
}
