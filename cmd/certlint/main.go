// Command certlint statically checks SQL files for certainty hazards:
// places where SQL's three-valued evaluation over nullable data can
// return rows that are not certain answers (the paper's central
// false-positive problem). A clean bill means plain evaluation already
// computes exactly the certain answers, so no Q⁺ rewriting is needed.
//
// Usage:
//
//	certlint -schema catalog.sql queries.sql ...
//	certlint -tpch -json q1.sql
//
// The catalog is a script of CREATE TABLE statements (see
// schema.ParseDDL); -tpch uses the built-in TPC-H subset instead. Each
// input file may hold several ';'-terminated queries. Diagnostics are
// reported as file:line:col: [code] message, or as a JSON array with
// -json. Exit status: 0 when every query is certainty-safe, 1 when any
// hazard is flagged, 2 on operational errors (unreadable files, DDL or
// SQL syntax errors).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"certsql/internal/analyze"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/tpch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// stmtReport is the JSON shape for one checked statement.
type stmtReport struct {
	File         string               `json:"file"`
	Statement    int                  `json:"statement"`
	SQL          string               `json:"sql"`
	Safe         bool                 `json:"safe"`
	Translatable bool                 `json:"translatable"`
	Notes        []string             `json:"notes,omitempty"`
	Diagnostics  []analyze.Diagnostic `json:"diagnostics"`
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("certlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		schemaFile = fs.String("schema", "", "catalog file of CREATE TABLE statements")
		useTPCH    = fs.Bool("tpch", false, "use the built-in TPC-H subset schema")
		jsonOut    = fs.Bool("json", false, "emit diagnostics as JSON")
		verbose    = fs.Bool("v", false, "also report safe statements and translatability notes")
	)
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: certlint (-schema catalog.sql | -tpch) [-json] [-v] file.sql ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	var sch *schema.Schema
	switch {
	case *useTPCH && *schemaFile != "":
		fmt.Fprintln(errOut, "certlint: -schema and -tpch are mutually exclusive")
		return 2
	case *useTPCH:
		sch = tpch.Schema()
	case *schemaFile != "":
		src, err := os.ReadFile(*schemaFile)
		if err != nil {
			fmt.Fprintf(errOut, "certlint: %v\n", err)
			return 2
		}
		sch, err = schema.ParseDDL(string(src))
		if err != nil {
			fmt.Fprintf(errOut, "certlint: %s: %v\n", *schemaFile, err)
			return 2
		}
	default:
		fmt.Fprintln(errOut, "certlint: a schema is required (-schema catalog.sql or -tpch)")
		return 2
	}

	var reports []stmtReport
	status := 0
	fail := func(code int) {
		if code > status {
			status = code
		}
	}
	for _, path := range fs.Args() {
		src, err := readInput(path)
		if err != nil {
			fmt.Fprintf(errOut, "certlint: %v\n", err)
			fail(2)
			continue
		}
		for i, st := range splitStatements(src) {
			rep := checkStatement(path, i+1, src, st, sch)
			reports = append(reports, rep)
			switch {
			case hasCode(rep.Diagnostics, "parse"):
				fail(2)
			case !rep.Safe:
				fail(1)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if reports == nil {
			reports = []stmtReport{}
		}
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(errOut, "certlint: %v\n", err)
			return 2
		}
		return status
	}

	total, hazardous, diags := 0, 0, 0
	for _, rep := range reports {
		total++
		if !rep.Safe {
			hazardous++
		}
		diags += len(rep.Diagnostics)
		for _, d := range rep.Diagnostics {
			fmt.Fprintf(out, "%s:%s\n", rep.File, d.String())
		}
		if *verbose {
			for _, n := range rep.Notes {
				fmt.Fprintf(out, "%s: statement %d: note: %s\n", rep.File, rep.Statement, n)
			}
			if rep.Safe {
				fmt.Fprintf(out, "%s: statement %d: safe — plain evaluation returns exactly the certain answers\n",
					rep.File, rep.Statement)
			}
		}
	}
	fmt.Fprintf(out, "certlint: %d statement(s), %d hazardous, %d diagnostic(s)\n", total, hazardous, diags)
	return status
}

// readInput loads one input file; "-" means standard input.
func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

// statement is one ';'-delimited chunk of an input file.
type statement struct {
	text   string
	offset int // byte offset of text within the file
}

// splitStatements cuts a file into ';'-terminated statements, skipping
// string literals and -- comments, and dropping blank chunks.
func splitStatements(src string) []statement {
	var out []statement
	start := 0
	flush := func(end int) {
		text := src[start:end]
		trimmed := strings.TrimSpace(text)
		// Drop leading comment-only lines so statement text (and JSON
		// output) starts at the query itself.
		for strings.HasPrefix(trimmed, "--") {
			nl := strings.IndexByte(trimmed, '\n')
			if nl < 0 {
				trimmed = ""
				break
			}
			trimmed = strings.TrimSpace(trimmed[nl+1:])
		}
		if trimmed != "" {
			lead := strings.Index(text, trimmed)
			out = append(out, statement{text: trimmed, offset: start + lead})
		}
		start = end + 1
	}
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\'':
			for i++; i < len(src); i++ {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						i++
						continue
					}
					break
				}
			}
		case '-':
			if i+1 < len(src) && src[i+1] == '-' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
			}
		case ';':
			flush(i)
		}
	}
	flush(len(src))
	return out
}

// checkStatement lints one query: AST-level certainty analysis for
// positioned diagnostics, plus the plan-level analyzer (when the query
// compiles) as a second opinion, and a translatability note.
func checkStatement(path string, n int, fileSrc string, st statement, sch *schema.Schema) stmtReport {
	rep := stmtReport{File: path, Statement: n, SQL: st.text, Diagnostics: []analyze.Diagnostic{}}
	relocate := func(d analyze.Diagnostic) analyze.Diagnostic {
		if d.Pos >= 0 {
			d.Pos += st.offset
			d.Line, d.Col = sql.LineCol(fileSrc, d.Pos)
		}
		return d
	}

	q, err := sql.Parse(st.text)
	if err != nil {
		d := analyze.Diagnostic{Code: "parse", Pos: -1, Msg: err.Error()}
		if se, ok := err.(*sql.Error); ok {
			d.Pos = se.Pos
			d.Msg = se.Msg
		}
		rep.Diagnostics = append(rep.Diagnostics, relocate(d))
		return rep
	}

	qr := analyze.Query(st.text, q, sch)
	rep.Safe = qr.Safe
	for _, d := range qr.Diagnostics {
		rep.Diagnostics = append(rep.Diagnostics, relocate(d))
	}

	// Plan-level second opinion: the compiled algebra sees through
	// shapes the AST walker treats conservatively, and vice versa. Only
	// report codes the AST pass did not already flag, as plan-level
	// diagnostics carry no source position.
	compiled, err := compile.Compile(q, sch, nil)
	if err != nil {
		rep.Notes = append(rep.Notes, "not compiled (plan-level check skipped): "+err.Error())
		return rep
	}
	pr := analyze.Plan(compiled.Expr, sch)
	for _, h := range pr.Hazards {
		if !hasCode(rep.Diagnostics, h.Code) {
			rep.Diagnostics = append(rep.Diagnostics,
				analyze.Diagnostic{Code: h.Code, Pos: -1, Msg: h.Msg + " (plan-level)"})
		}
	}
	if !pr.Safe {
		rep.Safe = false
	}
	if err := certain.CheckTranslatable(compiled.Expr); err == nil {
		rep.Translatable = true
	} else {
		rep.Notes = append(rep.Notes, "certain-answer translation unavailable: "+err.Error())
	}
	return rep
}

func hasCode(ds []analyze.Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}
