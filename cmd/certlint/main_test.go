package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"certsql/internal/tpch"
)

func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testCatalog = `
CREATE TABLE dept (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL);
CREATE TABLE emp  (id INT PRIMARY KEY, dept_id INT);
`

func TestLintSafeAndHazardous(t *testing.T) {
	cat := writeFile(t, "catalog.sql", testCatalog)
	queries := writeFile(t, "queries.sql", `
-- safe: only NOT NULL data is read
SELECT id FROM dept WHERE name = 'sales';

SELECT id FROM dept
WHERE NOT EXISTS (SELECT * FROM emp WHERE dept_id = dept.id);
`)
	code, out, _ := runLint(t, "-schema", cat, queries)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (hazard found)", code)
	}
	if !strings.Contains(out, "[not-exists-nullable]") {
		t.Errorf("missing hazard code in output:\n%s", out)
	}
	// The NOT EXISTS sits on line 6 of the file: positions must be
	// file-relative, not statement-relative.
	if !strings.Contains(out, queries+":6:7:") {
		t.Errorf("diagnostic not relocated to file coordinates:\n%s", out)
	}
	if !strings.Contains(out, "2 statement(s), 1 hazardous") {
		t.Errorf("summary wrong:\n%s", out)
	}
}

func TestLintAllSafeExitsZero(t *testing.T) {
	cat := writeFile(t, "catalog.sql", testCatalog)
	queries := writeFile(t, "queries.sql", `SELECT id FROM dept WHERE name <> 'x'`)
	code, out, _ := runLint(t, "-schema", cat, "-v", queries)
	if code != 0 {
		t.Errorf("exit = %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "safe — plain evaluation") {
		t.Errorf("verbose mode should report safe statements:\n%s", out)
	}
}

func TestLintParseErrorExitsTwo(t *testing.T) {
	cat := writeFile(t, "catalog.sql", testCatalog)
	queries := writeFile(t, "broken.sql", `SELECT FROM WHERE`)
	code, out, _ := runLint(t, "-schema", cat, queries)
	if code != 2 {
		t.Errorf("exit = %d, want 2 (parse error):\n%s", code, out)
	}
	if !strings.Contains(out, "[parse]") {
		t.Errorf("missing parse diagnostic:\n%s", out)
	}
}

func TestLintUsageErrors(t *testing.T) {
	cat := writeFile(t, "catalog.sql", testCatalog)
	q := writeFile(t, "q.sql", "SELECT id FROM dept")
	for name, args := range map[string][]string{
		"no files":       {"-schema", cat},
		"no schema":      {q},
		"both schemas":   {"-schema", cat, "-tpch", q},
		"missing file":   {"-schema", cat, filepath.Join(t.TempDir(), "nope.sql")},
		"bad catalog":    {"-schema", q, q},
		"unknown schema": {"-schema", filepath.Join(t.TempDir(), "nope.sql"), q},
	} {
		if code, _, _ := runLint(t, args...); code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
	}
}

// TestLintAppendixQueries runs certlint -tpch over the four queries of
// the paper's experiment and checks the CLI flags every one of them,
// with the same diagnostics the analyzer goldens pin down
// (internal/analyze/testdata/q*.diag).
func TestLintAppendixQueries(t *testing.T) {
	dir := t.TempDir()
	var files []string
	for _, id := range tpch.AllQueries {
		path := filepath.Join(dir, strings.ToLower(id.String())+".sql")
		if err := os.WriteFile(path, []byte(id.SQL()+";\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}
	code, out, _ := runLint(t, append([]string{"-tpch", "-json"}, files...)...)
	if code != 1 {
		t.Errorf("exit = %d, want 1 (all four queries are hazardous)", code)
	}
	var reports []stmtReport
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}
	for i, rep := range reports {
		if rep.Safe {
			t.Errorf("%s flagged safe; the experiment queries all have certainty hazards", files[i])
		}
		if len(rep.Diagnostics) == 0 {
			t.Errorf("%s has no diagnostics", files[i])
			continue
		}
		found := false
		for _, d := range rep.Diagnostics {
			if d.Code == "not-exists-nullable" || d.Code == "not-in-nullable" {
				found = true
			}
			if d.Pos >= 0 && (d.Line < 1 || d.Col < 1) {
				t.Errorf("%s: positioned diagnostic without line/col: %+v", files[i], d)
			}
		}
		if !found {
			t.Errorf("%s: no negation hazard among %v", files[i], rep.Diagnostics)
		}
	}
}

// TestLintGoldenCorpus runs certlint over the translated Q⁺ texts of
// the experiment queries (internal/certain/testdata/golden). They are
// the rewritten, *correct* forms — but they still read nullable TPC-H
// columns under negation, so the linter reports them hazardous rather
// than crashing or mis-parsing. This mirrors the `make lint` wiring.
func TestLintGoldenCorpus(t *testing.T) {
	matches, err := filepath.Glob("../../internal/certain/testdata/golden/*.sql")
	if err != nil || len(matches) == 0 {
		t.Fatalf("golden corpus missing: %v (%d files)", err, len(matches))
	}
	code, out, errOut := runLint(t, append([]string{"-tpch"}, matches...)...)
	if code == 2 {
		t.Fatalf("operational error on golden corpus:\n%s\n%s", out, errOut)
	}
	if !strings.Contains(out, "statement(s)") {
		t.Errorf("no summary line:\n%s", out)
	}
}

func TestSplitStatements(t *testing.T) {
	src := "SELECT a FROM r; -- trailing; comment ; here\nSELECT ';' FROM r;\n\n  SELECT b FROM r"
	sts := splitStatements(src)
	if len(sts) != 3 {
		t.Fatalf("got %d statements: %+v", len(sts), sts)
	}
	if sts[1].text != "SELECT ';' FROM r" {
		t.Errorf("semicolon in string split: %q", sts[1].text)
	}
	for _, st := range sts {
		if !strings.HasPrefix(src[st.offset:], st.text) {
			t.Errorf("offset %d does not locate %q", st.offset, st.text)
		}
	}
}
