package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesAllTables(t *testing.T) {
	dir := t.TempDir()
	if err := run(0.0003, 0.05, 1, dir, false); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"} {
		path := filepath.Join(dir, name+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	// Nulls appear as \N in plain mode.
	data, _ := os.ReadFile(filepath.Join(dir, "lineitem.csv"))
	if !strings.Contains(string(data), `\N`) {
		t.Error("no \\N tokens in lineitem.csv at 5% null rate")
	}
}

func TestRunMarksMode(t *testing.T) {
	dir := t.TempDir()
	if err := run(0.0003, 0.05, 2, dir, true); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "lineitem.csv"))
	if !strings.Contains(string(data), "⊥") {
		t.Error("no ⊥ marks in marked mode")
	}
	if strings.Contains(string(data), `\N`) {
		t.Error("\\N tokens present in marked mode")
	}
}

func TestRunBadDir(t *testing.T) {
	if err := run(0.0003, 0, 1, string([]byte{0}), false); err == nil {
		t.Error("invalid output directory accepted")
	}
}
