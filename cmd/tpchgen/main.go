// Command tpchgen generates TPC-H instances with injected nulls — the
// DBGen/DataFiller replacement of this reproduction (Section 3 of the
// paper) — and writes them as one CSV file per table.
//
// Usage:
//
//	tpchgen -sf 0.001 -nullrate 0.02 -seed 1 -out ./data
//	tpchgen -sf 0.002 -nullrate 0.05 -marks -out ./data   # keep ⊥id marks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"certsql/internal/tpch"
)

func main() {
	var (
		sf       = flag.Float64("sf", 0.001, "scale factor (1.0 ≈ the paper's 1 GB instance)")
		nullRate = flag.Float64("nullrate", 0.02, "probability that a nullable attribute value becomes NULL")
		seed     = flag.Int64("seed", 1, "random seed (generation is deterministic)")
		out      = flag.String("out", ".", "output directory for the CSV files")
		marks    = flag.Bool("marks", false, "write nulls as ⊥id (marked nulls) instead of \\N")
	)
	flag.Parse()

	if err := run(*sf, *nullRate, *seed, *out, *marks); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
}

func run(sf, nullRate float64, seed int64, out string, marks bool) error {
	db := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: seed, NullRate: nullRate})
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	total := 0
	for _, name := range db.Schema.Names() {
		t := db.MustTable(name)
		path := filepath.Join(out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		var werr error
		if marks {
			werr = t.WriteCSVWithMarks(f)
		} else {
			werr = t.WriteCSV(f)
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", path, werr)
		}
		fmt.Printf("%-10s %8d rows -> %s\n", name, t.Len(), path)
		total += t.Len()
	}
	fmt.Printf("total      %8d rows, %d nulls\n", total, db.NullCount())
	return nil
}
