package main

import (
	"os"
	"strings"
	"testing"

	"certsql"
)

func testDB() *certsql.DB {
	return certsql.OpenTPCH(certsql.TPCHConfig{ScaleFactor: 0.0003, Seed: 1, NullRate: 0.05})
}

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out, err := os.ReadFile(pipeToFile(t, r))
	if err != nil {
		t.Fatal(err)
	}
	if ferr != nil {
		t.Fatalf("execute: %v\noutput: %s", ferr, out)
	}
	return string(out)
}

// pipeToFile drains a pipe into a temp file (keeps capture simple).
func pipeToFile(t *testing.T, r *os.File) string {
	t.Helper()
	path := t.TempDir() + "/out"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			f.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	f.Close()
	return path
}

func TestExecuteQueryModes(t *testing.T) {
	db := testDB()
	out := capture(t, func() error {
		return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, `SELECT o_orderkey FROM orders WHERE o_orderkey < 3;`)
	})
	if !strings.Contains(out, "sql evaluation") {
		t.Errorf("output: %s", out)
	}
	out2 := capture(t, func() error {
		return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, `SELECT CERTAIN o_orderkey FROM orders WHERE o_orderkey < 3`)
	})
	if !strings.Contains(out2, "certain evaluation") {
		t.Errorf("output: %s", out2)
	}
	out3 := capture(t, func() error {
		return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, `SELECT POSSIBLE o_orderkey FROM orders WHERE o_orderkey < 3`)
	})
	if !strings.Contains(out3, "possible evaluation") {
		t.Errorf("output: %s", out3)
	}
}

func TestExecuteCommands(t *testing.T) {
	db := testDB()
	if out := capture(t, func() error { return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, `\schema`) }); !strings.Contains(out, "lineitem") {
		t.Errorf("\\schema output: %s", out)
	}
	if out := capture(t, func() error { return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, `\queries`) }); !strings.Contains(out, "NOT EXISTS") {
		t.Errorf("\\queries output: %s", out)
	}
	rewriteCmd := `\rewrite SELECT o_orderkey FROM orders WHERE NOT EXISTS (SELECT * FROM lineitem WHERE l_orderkey = o_orderkey AND l_suppkey <> 1)`
	if out := capture(t, func() error { return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, rewriteCmd) }); !strings.Contains(out, "IS NULL") {
		t.Errorf("\\rewrite output: %s", out)
	}
	explainCmd := `\explain SELECT o_orderkey FROM orders WHERE o_orderkey = 1`
	if out := capture(t, func() error { return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, explainCmd) }); !strings.Contains(out, "cost=") {
		t.Errorf("\\explain output: %s", out)
	}
	if out := capture(t, func() error { return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, ``) }); out != "" {
		t.Errorf("empty statement printed %q", out)
	}
}

func TestExecuteTruncation(t *testing.T) {
	db := testDB()
	out := capture(t, func() error {
		return (&shell{maxRows: 3, opts: certsql.Options{}}).execute(db, `SELECT o_orderkey FROM orders`)
	})
	if !strings.Contains(out, "more)") {
		t.Errorf("no truncation marker: %s", out)
	}
}

func TestExecuteError(t *testing.T) {
	db := testDB()
	if err := (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, `SELECT nope FROM orders`); err == nil {
		t.Error("bad query accepted")
	}
}

func TestExecuteFullQueries(t *testing.T) {
	db := testDB()
	out := capture(t, func() error { return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, `\full`) })
	if !strings.Contains(out, "GROUP BY") || !strings.Contains(out, "COUNT(*)") {
		t.Errorf("\\full output: %s", out)
	}
	// And a full-form query actually runs in standard mode.
	out2 := capture(t, func() error {
		return (&shell{maxRows: 10, opts: certsql.Options{}}).execute(db, `SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus ORDER BY 2 DESC`)
	})
	if !strings.Contains(out2, "sql evaluation") {
		t.Errorf("aggregate query output: %s", out2)
	}
}
