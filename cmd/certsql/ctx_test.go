package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"certsql/internal/guard"
	"certsql/internal/server"
	"certsql/internal/server/client"
	"certsql/internal/tpch"
)

// TestInterruptCancelsQuery: a canceled base context (what
// signal.NotifyContext produces on SIGINT) stops the query through the
// evaluation context and surfaces as the documented exit code 4, not a
// killed process.
func TestInterruptCancelsQuery(t *testing.T) {
	db := testDB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the "signal already arrived" case
	sh := shell{ctx: ctx, maxRows: 10}
	err := sh.execute(db, `SELECT s_suppkey, o_orderkey FROM supplier, orders`)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	if exitCode(err) != 4 {
		t.Errorf("exit code: %d, want 4", exitCode(err))
	}
}

// TestQueryTimeout: -timeout flows into per-query deadlines with exit
// code 4.
func TestQueryTimeout(t *testing.T) {
	db := testDB()
	sh := shell{ctx: context.Background(), maxRows: 10, timeout: time.Microsecond}
	err := sh.execute(db, `SELECT s1.s_suppkey FROM supplier s1, supplier s2, orders`)
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("want guard.ErrDeadline, got %v", err)
	}
	if exitCode(err) != 4 {
		t.Errorf("exit code: %d, want 4", exitCode(err))
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{guard.ErrRowBudget, 3},
		{guard.ErrMemBudget, 3},
		{guard.ErrBudget, 3},
		{guard.ErrCanceled, 4},
		{guard.ErrDeadline, 4},
		{errors.New("anything"), 1},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestParamFlags(t *testing.T) {
	p := paramFlags{}
	for _, s := range []string{"nation=FRANCE", "k=7", "bal=1.5"} {
		if err := p.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	if p["nation"] != "FRANCE" || p["k"] != int64(7) || p["bal"] != 1.5 {
		t.Errorf("parsed: %v", p)
	}
	if err := p.Set("missing-equals"); err == nil {
		t.Error("want error for missing =")
	}
	if err := p.Set("=v"); err == nil {
		t.Error("want error for empty name")
	}
}

// TestExecuteRemote drives the -remote path against an in-process
// certsqld, checking the plan cache is visible from the shell output.
func TestExecuteRemote(t *testing.T) {
	seed := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 1, NullRate: 0.05})
	ts := httptest.NewServer(server.New(server.Config{Seed: seed}).Handler())
	defer ts.Close()

	sh := shell{
		ctx:     context.Background(),
		maxRows: 10,
		mode:    "certain",
		remote:  client.New(ts.URL, client.WithHTTPClient(ts.Client())),
	}
	run := func() string {
		return capture(t, func() error {
			return sh.executeRemote(`SELECT n_name FROM nation WHERE n_regionkey = $r`,
				map[string]any{"r": int64(1)})
		})
	}
	first := run()
	if !strings.Contains(first, "certain evaluation") || !strings.Contains(first, "remote v1") {
		t.Errorf("first remote run:\n%s", first)
	}
	if !strings.Contains(first, "misses=1") {
		t.Errorf("first remote run should compile a plan:\n%s", first)
	}
	second := run()
	if !strings.Contains(second, "hits=1") {
		t.Errorf("second remote run should hit the plan cache:\n%s", second)
	}
}
