// Command certsql is an interactive SQL shell over an in-memory TPC-H
// instance with nulls, offering both standard SQL evaluation and the
// certain-answer mode of the paper.
//
// Usage:
//
//	certsql -sf 0.001 -nullrate 0.03
//
// Then type SQL terminated by a semicolon. Write `SELECT CERTAIN …` to
// get only certain answers (the paper's proposed syntax) or
// `SELECT POSSIBLE …` for the potential-answer over-approximation.
// Shell commands:
//
//	\rewrite <sql>;   show the SQL text of the certain translation Q+
//	\explain <sql>;   show the executed plan with strategies and costs
//	\schema;          list the tables
//	\queries;         print the paper's Q1–Q4
//	\full;            print their aggregate-bearing full forms
//	\q                quit
//
// Resource governance: -timeout bounds each query's evaluation,
// -max-rows and -max-mem bound its intermediate results, and -degrade
// lets over-budget potential-answer queries fall back to their certain
// answers (flagged in the output) instead of failing.
//
// Exit codes (for -query mode):
//
//	0  success
//	1  operational error
//	2  bad flags or usage
//	3  a resource budget was exceeded (raise -max-rows / -max-mem, or
//	   pass -degrade to accept certain answers for SELECT queries)
//	4  the -timeout deadline expired
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"certsql"
	"certsql/internal/guard"
	"certsql/internal/tpch"
)

func main() {
	var (
		sf       = flag.Float64("sf", 0.001, "TPC-H scale factor")
		nullRate = flag.Float64("nullrate", 0.03, "null rate for nullable attributes")
		seed     = flag.Int64("seed", 1, "random seed")
		query    = flag.String("query", "", "run one query and exit (instead of the interactive shell)")
		maxRows  = flag.Int("maxrows", 50, "maximum result rows to print")
		dataDir  = flag.String("data", "", "load the instance from a directory of CSV files (as written by tpchgen) instead of generating")
		par      = flag.Int("parallelism", 0, "executor worker count (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		timeout  = flag.Duration("timeout", 0, "per-query evaluation deadline (0 = none)")
		rowBudg  = flag.Int("max-rows", 0, "row budget for intermediate results (0 = default 4M, negative = unlimited)")
		memBudg  = flag.Int64("max-mem", 0, "estimated-bytes memory budget for intermediate results (0 = unlimited)")
		degrade  = flag.Bool("degrade", false, "when a potential-answer query exceeds a budget, return its certain answers (flagged) instead of failing")
	)
	flag.Parse()
	opts := certsql.Options{
		Parallelism: *par,
		MaxRows:     *rowBudg,
		MaxMemBytes: *memBudg,
		Degrade:     *degrade,
	}
	sh := shell{maxRows: *maxRows, opts: opts, timeout: *timeout}

	var db *certsql.DB
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "loading TPC-H instance from %s...\n", *dataDir)
		var err error
		db, err = certsql.OpenTPCHDir(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "certsql:", err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "generating TPC-H instance (sf=%g, null rate=%g, seed=%d)...\n", *sf, *nullRate, *seed)
		db = certsql.OpenTPCH(certsql.TPCHConfig{ScaleFactor: *sf, Seed: *seed, NullRate: *nullRate})
	}
	fmt.Fprintf(os.Stderr, "ready: %d nulls; type \\q to quit, SELECT CERTAIN ... for certain answers\n", db.NullCount())

	if *query != "" {
		if err := sh.execute(db, *query); err != nil {
			fmt.Fprintln(os.Stderr, "certsql:", err)
			os.Exit(exitCode(err))
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("certsql> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			return
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("      -> ")
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		buf.Reset()
		if err := sh.execute(db, stmt); err != nil {
			fmt.Println("error:", err)
		}
		fmt.Print("certsql> ")
	}
}

// exitCode maps the guard error taxonomy onto the documented exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, guard.ErrBudget):
		return 3
	case errors.Is(err, guard.ErrCanceled), errors.Is(err, guard.ErrDeadline):
		return 4
	default:
		return 1
	}
}

// shell carries the per-invocation display and governance settings.
type shell struct {
	maxRows int
	opts    certsql.Options
	timeout time.Duration
}

// queryCtx derives the evaluation context for one statement: the
// -timeout deadline applies per query, so an interactive session
// survives an over-long statement.
func (sh *shell) queryCtx() (context.Context, context.CancelFunc) {
	if sh.timeout > 0 {
		return context.WithTimeout(context.Background(), sh.timeout)
	}
	return context.Background(), func() {}
}

func (sh *shell) execute(db *certsql.DB, stmt string) error {
	maxRows, opts := sh.maxRows, sh.opts
	stmt = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	switch {
	case stmt == `\schema`:
		for _, name := range []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"} {
			n, err := db.TableLen(name)
			if err != nil {
				return err
			}
			fmt.Printf("  %-10s %8d rows\n", name, n)
		}
		return nil

	case strings.HasPrefix(stmt, `\rewrite `):
		out, err := db.Rewrite(strings.TrimPrefix(stmt, `\rewrite `), nil)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil

	case strings.HasPrefix(stmt, `\explain `):
		out, err := db.Explain(strings.TrimPrefix(stmt, `\explain `), nil, opts)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil

	case stmt == `\queries`:
		for _, q := range tpch.AllQueries {
			fmt.Printf("-- %s\n%s\n\n", q, strings.TrimSpace(q.SQL()))
		}
		return nil

	case stmt == `\full`:
		for _, q := range tpch.AllQueries {
			fmt.Printf("-- %s (aggregate-bearing full form; standard mode only)\n%s\n\n", q, strings.TrimSpace(q.FullSQL()))
		}
		return nil

	case stmt == "":
		return nil
	}

	ctx, cancel := sh.queryCtx()
	defer cancel()
	res, err := db.QueryWithOptionsContext(ctx, stmt, nil, opts)
	if err != nil {
		return err
	}
	mode := "sql"
	switch {
	case res.Certain:
		mode = "certain"
	case res.Possible:
		mode = "possible"
	}
	if res.Degraded {
		mode += ", DEGRADED"
	}
	fmt.Printf("-- %d rows (%s evaluation)\n", res.Len(), mode)
	for _, w := range res.Warnings {
		fmt.Printf("-- warning [%s]: %s\n", w.Code, w.Message)
	}
	if len(res.Columns) > 0 {
		fmt.Println("   " + strings.Join(res.Columns, " | "))
	}
	for i, row := range res.SortedStrings() {
		if i >= maxRows {
			fmt.Printf("   ... (%d more)\n", res.Len()-maxRows)
			break
		}
		fmt.Println("   " + row)
	}
	return nil
}
