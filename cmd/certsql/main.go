// Command certsql is an interactive SQL shell over an in-memory TPC-H
// instance with nulls, offering both standard SQL evaluation and the
// certain-answer mode of the paper.
//
// Usage:
//
//	certsql -sf 0.001 -nullrate 0.03
//
// Then type SQL terminated by a semicolon. Write `SELECT CERTAIN …` to
// get only certain answers (the paper's proposed syntax) or
// `SELECT POSSIBLE …` for the potential-answer over-approximation.
// Shell commands:
//
//	\rewrite <sql>;   show the SQL text of the certain translation Q+
//	\explain <sql>;   show the executed plan with strategies and costs
//	\plan <sql>;      show the cost-based planner's EXPLAIN (rules,
//	                  premises, hints, cost estimates) without executing
//	\schema;          list the tables
//	\queries;         print the paper's Q1–Q4
//	\full;            print their aggregate-bearing full forms
//	\q                quit
//
// One-shot mode: -query runs a single statement and exits; -tpchq N
// runs appendix query QN with parameters drawn from -seed. With
// -remote http://host:port the statement is sent to a running certsqld
// instead of evaluated locally (see cmd/certsqld), exercising the
// serving layer's plan cache; -param name=value binds $name parameters
// (repeatable), and -mode forces certain/possible/standard evaluation.
// -explain prints the planner's EXPLAIN for the statement instead of
// executing it (local evaluation only); -naive-planner disables the
// cost-based planner and runs the paper-faithful naive plans, which by
// the planner's contract return byte-identical results.
//
// Resource governance: -timeout bounds each query's evaluation,
// -max-rows and -max-mem bound its intermediate results, and -degrade
// lets over-budget potential-answer queries fall back to their certain
// answers (flagged in the output) instead of failing. SIGINT/SIGTERM
// cancel the running query through the same context machinery, so
// Ctrl-C in -query mode yields the documented exit code instead of a
// killed process.
//
// Exit codes (for -query / -tpchq mode):
//
//	0  success
//	1  operational error
//	2  bad flags or usage
//	3  a resource budget was exceeded (raise -max-rows / -max-mem, or
//	   pass -degrade to accept certain answers for SELECT queries)
//	4  the -timeout deadline expired or the query was interrupted
//
// Subcommands:
//
//	certsql fsck <data-dir>   verify a certsqld -data-dir directory
//	                          offline: every checksum, cross-reference
//	                          and WAL record, reported as file:offset
//	                          diagnostics. Exit 0 clean, 1 findings,
//	                          2 unreadable.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"certsql"
	"certsql/internal/guard"
	"certsql/internal/persist"
	"certsql/internal/server/client"
	"certsql/internal/tpch"
)

// params collects repeated -param name=value flags.
type paramFlags map[string]any

func (p paramFlags) String() string { return fmt.Sprint(map[string]any(p)) }

func (p paramFlags) Set(s string) error {
	name, raw, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		p[name] = i
	} else if f, err := strconv.ParseFloat(raw, 64); err == nil {
		p[name] = f
	} else {
		p[name] = raw
	}
	return nil
}

func main() {
	// Subcommand dispatch happens before flag parsing so `certsql fsck
	// <dir>` keeps its own small flag surface.
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		os.Exit(runFsck(os.Args[2:]))
	}
	var (
		sf       = flag.Float64("sf", 0.001, "TPC-H scale factor")
		nullRate = flag.Float64("nullrate", 0.03, "null rate for nullable attributes")
		seed     = flag.Int64("seed", 1, "random seed")
		query    = flag.String("query", "", "run one query and exit (instead of the interactive shell)")
		tpchq    = flag.Int("tpchq", 0, "run appendix query QN (1-4) with seeded parameters and exit")
		mode     = flag.String("mode", "", "force evaluation mode: certain, possible, or standard")
		remote   = flag.String("remote", "", "send queries to a running certsqld at this base URL instead of evaluating locally")
		maxRows  = flag.Int("maxrows", 50, "maximum result rows to print")
		dataDir  = flag.String("data", "", "load the instance from a directory of CSV files (as written by tpchgen) instead of generating")
		par      = flag.Int("parallelism", 0, "executor worker count (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		timeout  = flag.Duration("timeout", 0, "per-query evaluation deadline (0 = none)")
		rowBudg  = flag.Int("max-rows", 0, "row budget for intermediate results (0 = default 4M, negative = unlimited)")
		memBudg  = flag.Int64("max-mem", 0, "estimated-bytes memory budget for intermediate results (0 = unlimited)")
		degrade  = flag.Bool("degrade", false, "when a potential-answer query exceeds a budget, return its certain answers (flagged) instead of failing")
		explain  = flag.Bool("explain", false, "print the cost-based planner's EXPLAIN for -query/-tpchq instead of executing (local only)")
		naive    = flag.Bool("naive-planner", false, "disable the cost-based planner; run the paper-faithful naive plans")
	)
	params := paramFlags{}
	flag.Var(params, "param", "bind $name (repeatable): -param nation=FRANCE -param supp_key=7")
	flag.Parse()

	// SIGINT/SIGTERM flow into every query's evaluation context, so an
	// interrupt surfaces as guard.ErrCanceled (exit code 4 in one-shot
	// mode) instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := certsql.Options{
		Parallelism:  *par,
		MaxRows:      *rowBudg,
		MaxMemBytes:  *memBudg,
		Degrade:      *degrade,
		NaivePlanner: *naive,
	}
	sh := shell{ctx: ctx, maxRows: *maxRows, opts: opts, timeout: *timeout, mode: *mode}

	stmt, stmtParams := *query, map[string]any(params)
	if *tpchq != 0 {
		if *tpchq < 1 || *tpchq > len(tpch.AllQueries) {
			fmt.Fprintf(os.Stderr, "certsql: -tpchq wants 1..%d\n", len(tpch.AllQueries))
			os.Exit(2)
		}
		if stmt != "" {
			fmt.Fprintln(os.Stderr, "certsql: -query and -tpchq are mutually exclusive")
			os.Exit(2)
		}
		q := tpch.AllQueries[*tpchq-1]
		stmt = q.SQL()
		if len(stmtParams) == 0 {
			sz := tpch.Config{ScaleFactor: *sf}.Sizes()
			stmtParams = q.Params(rand.New(rand.NewSource(*seed)), sz)
		}
	}

	if *remote != "" {
		if stmt == "" {
			fmt.Fprintln(os.Stderr, "certsql: -remote needs -query or -tpchq")
			os.Exit(2)
		}
		if *explain {
			fmt.Fprintln(os.Stderr, "certsql: -explain plans locally and cannot be combined with -remote")
			os.Exit(2)
		}
		sh.remote = client.New(*remote)
		if err := sh.executeRemote(stmt, stmtParams); err != nil {
			fmt.Fprintln(os.Stderr, "certsql:", err)
			os.Exit(exitCode(err))
		}
		return
	}

	var db *certsql.DB
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "loading TPC-H instance from %s...\n", *dataDir)
		var err error
		db, err = certsql.OpenTPCHDir(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "certsql:", err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "generating TPC-H instance (sf=%g, null rate=%g, seed=%d)...\n", *sf, *nullRate, *seed)
		db = certsql.OpenTPCH(certsql.TPCHConfig{ScaleFactor: *sf, Seed: *seed, NullRate: *nullRate})
	}
	fmt.Fprintf(os.Stderr, "ready: %d nulls; type \\q to quit, SELECT CERTAIN ... for certain answers\n", db.NullCount())

	if stmt != "" {
		sh.params = stmtParams
		if *explain {
			stmt = `\plan ` + stmt
		}
		if err := sh.execute(db, stmt); err != nil {
			fmt.Fprintln(os.Stderr, "certsql:", err)
			os.Exit(exitCode(err))
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("certsql> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			return
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("      -> ")
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		buf.Reset()
		if err := sh.execute(db, stmt); err != nil {
			fmt.Println("error:", err)
		}
		fmt.Print("certsql> ")
		if ctx.Err() != nil {
			return
		}
	}
}

// runFsck verifies a certsqld data directory offline and prints each
// problem as a file:offset diagnostic. Exit codes: 0 the directory is
// clean, 1 fsck found problems (even recoverable ones — the point of
// running fsck is to know), 2 the directory could not be examined.
func runFsck(args []string) int {
	fs := flag.NewFlagSet("certsql fsck", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "print findings only, no summary")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: certsql fsck [-q] <data-dir>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	rep, err := persist.Fsck(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "certsql fsck:", err)
		return 2
	}
	if !*quiet {
		fmt.Printf("%s: version %d (checkpoint %d + %d wal records), %d tables, %d rows verified\n",
			rep.Dir, rep.Version, rep.Checkpoint, rep.WALRecords, rep.Tables, rep.Rows)
		for _, o := range rep.Orphans {
			fmt.Printf("%s: orphan (unreferenced; swept at next open)\n", o)
		}
	}
	for _, f := range rep.Findings {
		fmt.Println(f)
	}
	if rep.Clean() {
		if !*quiet {
			fmt.Println("clean")
		}
		return 0
	}
	if rep.Healthy() {
		fmt.Println("recoverable damage only: open will repair it")
	} else {
		fmt.Println("unrecoverable damage: open will refuse this directory")
	}
	return 1
}

// exitCode maps the guard error taxonomy onto the documented exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, guard.ErrRowBudget), errors.Is(err, guard.ErrMemBudget),
		errors.Is(err, guard.ErrCostBudget), errors.Is(err, guard.ErrBudget):
		return 3
	case errors.Is(err, guard.ErrCanceled), errors.Is(err, guard.ErrDeadline):
		return 4
	default:
		return 1
	}
}

// shell carries the per-invocation display and governance settings.
type shell struct {
	ctx     context.Context
	maxRows int
	opts    certsql.Options
	timeout time.Duration
	mode    string
	params  map[string]any
	remote  *client.Client
}

// queryCtx derives the evaluation context for one statement: the
// -timeout deadline applies per query (so an interactive session
// survives an over-long statement), layered on the signal context so
// Ctrl-C cancels promptly.
func (sh *shell) queryCtx() (context.Context, context.CancelFunc) {
	base := sh.ctx
	if base == nil {
		base = context.Background()
	}
	if sh.timeout > 0 {
		return context.WithTimeout(base, sh.timeout)
	}
	return context.WithCancel(base)
}

// executeRemote runs one statement against a certsqld instance.
func (sh *shell) executeRemote(stmt string, params map[string]any) error {
	ctx, cancel := sh.queryCtx()
	defer cancel()
	ropts := client.QueryOptions{Degrade: sh.opts.Degrade}
	if sh.opts.MaxRows > 0 {
		ropts.MaxRows = sh.opts.MaxRows
	}
	if sh.opts.MaxMemBytes > 0 {
		ropts.MaxMemBytes = sh.opts.MaxMemBytes
	}
	if sh.timeout > 0 {
		ropts.TimeoutMillis = sh.timeout.Milliseconds()
	}
	res, err := sh.remote.Query(ctx, stmt, params, sh.mode, ropts)
	if err != nil {
		return err
	}
	mode := "sql"
	switch {
	case res.Certain:
		mode = "certain"
	case res.Possible:
		mode = "possible"
	}
	if res.Degraded {
		mode += ", DEGRADED"
	}
	fmt.Printf("-- %d rows (%s evaluation, remote v%d, cache hits=%d misses=%d)\n",
		len(res.Rows), mode, res.Version, res.Stats.PlanCacheHits, res.Stats.PlanCacheMisses)
	for _, w := range res.Warnings {
		fmt.Printf("-- warning [%s]: %s\n", w.Code, w.Message)
	}
	if len(res.Columns) > 0 {
		fmt.Println("   " + strings.Join(res.Columns, " | "))
	}
	for i, row := range res.SortedStrings() {
		if i >= sh.maxRows {
			fmt.Printf("   ... (%d more)\n", len(res.Rows)-sh.maxRows)
			break
		}
		fmt.Println("   " + row)
	}
	return nil
}

func (sh *shell) execute(db *certsql.DB, stmt string) error {
	maxRows, opts := sh.maxRows, sh.opts
	stmt = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	switch {
	case stmt == `\schema`:
		for _, name := range []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"} {
			n, err := db.TableLen(name)
			if err != nil {
				return err
			}
			fmt.Printf("  %-10s %8d rows\n", name, n)
		}
		return nil

	case strings.HasPrefix(stmt, `\rewrite `):
		out, err := db.Rewrite(strings.TrimPrefix(stmt, `\rewrite `), nil)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil

	case strings.HasPrefix(stmt, `\explain `):
		out, err := db.Explain(strings.TrimPrefix(stmt, `\explain `), nil, opts)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil

	case strings.HasPrefix(stmt, `\plan `):
		text := strings.TrimPrefix(stmt, `\plan `)
		if sh.mode != "" {
			var err error
			text, err = certsql.WithMode(text, sh.mode)
			if err != nil {
				return err
			}
		}
		out, err := db.ExplainPlan(text, sh.params, opts)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil

	case stmt == `\queries`:
		for _, q := range tpch.AllQueries {
			fmt.Printf("-- %s\n%s\n\n", q, strings.TrimSpace(q.SQL()))
		}
		return nil

	case stmt == `\full`:
		for _, q := range tpch.AllQueries {
			fmt.Printf("-- %s (aggregate-bearing full form; standard mode only)\n%s\n\n", q, strings.TrimSpace(q.FullSQL()))
		}
		return nil

	case stmt == "":
		return nil
	}

	if sh.mode != "" {
		var err error
		stmt, err = certsql.WithMode(stmt, sh.mode)
		if err != nil {
			return err
		}
	}
	ctx, cancel := sh.queryCtx()
	defer cancel()
	res, err := db.QueryWithOptionsContext(ctx, stmt, sh.params, opts)
	if err != nil {
		return err
	}
	mode := "sql"
	switch {
	case res.Certain:
		mode = "certain"
	case res.Possible:
		mode = "possible"
	}
	if res.Degraded {
		mode += ", DEGRADED"
	}
	fmt.Printf("-- %d rows (%s evaluation)\n", res.Len(), mode)
	for _, w := range res.Warnings {
		fmt.Printf("-- warning [%s]: %s\n", w.Code, w.Message)
	}
	if len(res.Columns) > 0 {
		fmt.Println("   " + strings.Join(res.Columns, " | "))
	}
	for i, row := range res.SortedStrings() {
		if i >= maxRows {
			fmt.Printf("   ... (%d more)\n", res.Len()-maxRows)
			break
		}
		fmt.Println("   " + row)
	}
	return nil
}
