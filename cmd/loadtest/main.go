// Command loadtest is the closed-loop load generator and soak harness
// for certsqld: N concurrent workers replay the paper's Q1–Q4 (certain
// mode, seeded parameters) against a running server for a fixed
// duration, then report throughput, latency percentiles and the error
// budget. `make loadtest` drives it against `certsqld -shards N` via
// scripts/loadtest.sh and EXPERIMENTS.md records the measured tables.
//
// Usage:
//
//	loadtest -url http://127.0.0.1:7583 [-duration 30s] [-concurrency 8] [-sf 0.001]
//
// The exit status is non-zero when any request ended in a 5xx (an
// unmapped error escaped the server's typed-failure taxonomy) or when
// every request failed — a soak that cannot complete a single query is
// a harness bug, not a quiet success.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"certsql/internal/server/api"
	"certsql/internal/server/client"
	"certsql/internal/tpch"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// result is one request's outcome.
type result struct {
	latency time.Duration
	status  int // 0 on transport errors, HTTP status otherwise
	err     bool
}

func run(args []string) int {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	var (
		url      = fs.String("url", "", "base URL of the certsqld instance (required)")
		duration = fs.Duration("duration", 30*time.Second, "soak duration")
		workers  = fs.Int("concurrency", 8, "concurrent closed-loop workers")
		sf       = fs.Float64("sf", 0.001, "scale factor the server was seeded with (sizes the query parameters)")
		seed     = fs.Int64("seed", 1, "parameter seed; worker i uses seed+i")
		maxRows  = fs.Int("maxrows", 0, "per-request row-budget override (0 = server default)")
	)
	fs.Parse(args)
	if *url == "" {
		fmt.Fprintln(os.Stderr, "loadtest: -url is required")
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var (
		mu      sync.Mutex
		results []result
	)
	sizes := tpch.Config{ScaleFactor: *sf}.Sizes()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Retries are disabled: a 429/503 must count against the soak,
			// not be papered over — admission behaviour under saturation is
			// part of what the harness measures.
			c := client.New(*url, client.WithRetries(1))
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for ctx.Err() == nil {
				qid := tpch.AllQueries[rng.Intn(len(tpch.AllQueries))]
				params := qid.Params(rng, sizes)
				t0 := time.Now()
				_, err := c.Query(ctx, qid.SQL(), params, "certain", client.QueryOptions{MaxRows: *maxRows})
				r := result{latency: time.Since(t0)}
				if err != nil {
					if ctx.Err() != nil {
						break // the soak deadline, not a server failure
					}
					r.err = true
					var ae *api.Error
					if errors.As(err, &ae) {
						r.status = ae.Status
					}
				}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: no request completed within the soak window")
		return 1
	}
	var (
		errs, fivexx int
		lats         []time.Duration
	)
	for _, r := range results {
		if r.err {
			errs++
			if r.status >= 500 {
				fivexx++
			}
			continue
		}
		lats = append(lats, r.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	qps := float64(len(lats)) / elapsed.Seconds()
	fmt.Printf("loadtest: %d requests in %v (%d workers)\n", len(results), elapsed.Round(time.Millisecond), *workers)
	fmt.Printf("  ok:   %d (%.1f qps)\n", len(lats), qps)
	fmt.Printf("  p50:  %v\n", pct(0.50).Round(time.Microsecond))
	fmt.Printf("  p95:  %v\n", pct(0.95).Round(time.Microsecond))
	fmt.Printf("  p99:  %v\n", pct(0.99).Round(time.Microsecond))
	fmt.Printf("  errors: %d (5xx: %d)\n", errs, fivexx)
	if fivexx > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: FAIL — %d responses were 5xx\n", fivexx)
		return 1
	}
	if len(lats) == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: FAIL — every request failed")
		return 1
	}
	return 0
}
