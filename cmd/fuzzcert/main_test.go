package main

import (
	"strings"
	"testing"
)

func TestRunClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-cases", "60", "-seed", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d on a clean range:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{"fuzzcert: 60 cases", "violations:    0", "translatable:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunVerboseProgress(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-cases", "1000", "-seed", "500", "-v", "-parallelism", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "1000/1000 cases") {
		t.Errorf("verbose mode printed no progress: %q", errOut.String())
	}
}
