// Command fuzzcert runs the differential-testing oracle over a range of
// generator seeds: each case is a random incomplete database plus a
// random SQL query, checked end to end against the brute-force certain
// answers and the pipeline's internal cross-checks (see
// internal/difftest).
//
// Usage:
//
//	fuzzcert [-seed 1] [-cases 1000] [-parallelism 0] [-shrink]
//	fuzzcert -chaos [-seed 1] [-cases 500]
//
// A failing case is reported with its seed (sufficient to reproduce),
// and with -shrink it is first minimized and emitted as a ready-to-paste
// Go regression test. The exit status is non-zero when any case fails.
//
// With -chaos each case is instead replayed under seeded injected
// faults (errors and panics at engine hook points), one random-point
// cancellation, and a budget-degradation probe, checking the pipeline's
// failure semantics: errors — never panics — surface through the public
// API, partial results are never passed off as complete, degraded
// results are still sound, and the database answers correctly on retry.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"certsql/internal/difftest"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("fuzzcert", flag.ExitOnError)
	var (
		seed        = fs.Uint64("seed", 1, "first generator seed; case i uses seed+i")
		cases       = fs.Int("cases", 1000, "number of cases to check")
		parallelism = fs.Int("parallelism", 0, "worker count (0 = GOMAXPROCS)")
		shrink      = fs.Bool("shrink", true, "minimize failing cases and emit Go repro tests")
		verbose     = fs.Bool("v", false, "print progress every 1000 cases")
		chaos       = fs.Bool("chaos", false, "replay cases under injected faults and cancellation, checking failure semantics")
	)
	fs.Parse(args)

	if *chaos {
		return runChaos(*seed, *cases, *parallelism, out, errOut, *verbose)
	}

	start := time.Now()
	done, failed := 0, 0
	sum := difftest.Run(*seed, *cases, *parallelism, difftest.Options{}, func(r *difftest.Report) {
		done++
		if r.Failed() {
			failed++
		}
		if *verbose && done%1000 == 0 {
			fmt.Fprintf(errOut, "... %d/%d cases, %d failed\n", done, *cases, failed)
		}
	})

	fmt.Fprintf(out, "fuzzcert: %d cases in %v (seeds %d..%d)\n",
		sum.Cases, time.Since(start).Round(time.Millisecond), *seed, *seed+uint64(*cases)-1)
	fmt.Fprintf(out, "  translatable:  %d\n", sum.Translatable)
	fmt.Fprintf(out, "  brute-forced:  %d\n", sum.BruteForced)
	fmt.Fprintf(out, "  recall exact:  %d/%d\n", sum.RecallExact, sum.BruteForced)
	fmt.Fprintf(out, "  analyzer safe: %d (fast path taken: %d)\n", sum.AnalyzerSafe, sum.FastPath)
	if len(sum.Skips) > 0 {
		fmt.Fprintf(out, "  skipped invariants: %v\n", sum.Skips)
	}
	if sum.Failed == 0 {
		fmt.Fprintln(out, "  violations:    0")
		return 0
	}

	fmt.Fprintf(out, "  VIOLATIONS:    %d case(s)\n\n", sum.Failed)
	for _, rep := range sum.Failures {
		fmt.Fprintln(out, rep.Summary())
		if *shrink {
			inv := rep.Violations[0].Invariant
			fmt.Fprintf(out, "shrinking seed %d on invariant %q ...\n", rep.Seed, inv)
			db, text := difftest.Minimize(rep.DB, rep.SQL, difftest.FailurePredicate(difftest.Options{}, inv))
			small := difftest.Check(db, text, difftest.Options{RequireValid: true})
			small.Seed = rep.Seed
			fmt.Fprintln(out, small.Summary())
			fmt.Fprintln(out, difftest.GoRepro(fmt.Sprintf("Seed%d", rep.Seed), db, text))
		}
	}
	return 1
}

// runChaos drives difftest chaos mode: failure semantics, not answers.
func runChaos(seed uint64, cases, parallelism int, out, errOut io.Writer, verbose bool) int {
	start := time.Now()
	done := 0
	sum := difftest.ChaosRun(seed, cases, parallelism, difftest.Options{}, func(r *difftest.ChaosReport) {
		done++
		if verbose && done%1000 == 0 {
			fmt.Fprintf(errOut, "... %d/%d cases\n", done, cases)
		}
	})
	fmt.Fprintf(out, "fuzzcert -chaos: %d cases in %v (seeds %d..%d)\n",
		sum.Cases, time.Since(start).Round(time.Millisecond), seed, seed+uint64(cases)-1)
	fmt.Fprintf(out, "  skipped:       %d (baseline over budget)\n", sum.Skipped)
	fmt.Fprintf(out, "  fault runs:    %d (%d fired)\n", sum.FaultRuns, sum.FaultsFired)
	fmt.Fprintf(out, "  cancels fired: %d\n", sum.CancelsFired)
	fmt.Fprintf(out, "  degraded:      %d\n", sum.Degraded)
	if sum.Failed == 0 {
		fmt.Fprintln(out, "  violations:    0")
		return 0
	}
	fmt.Fprintf(out, "  VIOLATIONS:    %d case(s)\n\n", sum.Failed)
	for _, rep := range sum.Failures {
		fmt.Fprintln(out, rep.Summary())
	}
	return 1
}
