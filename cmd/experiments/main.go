// Command experiments regenerates the tables and figures of the paper's
// evaluation (Guagliardo & Libkin, PODS 2016). Each experiment prints a
// text rendition of the corresponding figure or table; see EXPERIMENTS.md
// for the recorded paper-versus-measured comparison.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig1 -instances 20 -draws 5
//	experiments -run fig4 -scale 0.004
//	experiments -run table1|recall|fig2|orsplit
//	experiments -run all -timeout 10m -max-rows 1000000 -degrade
//
// Resource governance: -timeout bounds the whole invocation, -max-rows
// and -max-mem bound every individual evaluation, and -degrade makes
// per-query budget trips non-fatal — the sample is dropped and the trip
// reported in the output table — instead of aborting the experiment.
//
// Exit codes:
//
//	0  success
//	1  operational error
//	2  bad flags or usage
//	3  a resource budget was exceeded (run again with -degrade to
//	   tolerate per-query trips, or raise -max-rows / -max-mem)
//	4  the -timeout deadline expired (or the run was canceled)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"certsql/internal/experiment"
	"certsql/internal/guard"
	"certsql/internal/tpch"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment to run: fig1, fig2, fig4, table1, recall, orsplit, ablation, all")
		scale     = flag.Float64("scale", 0, "TPC-H scale factor override (0 = per-experiment default)")
		instances = flag.Int("instances", 0, "instances per configuration (0 = default)")
		draws     = flag.Int("draws", 0, "parameter draws per instance (0 = default)")
		seed      = flag.Int64("seed", 1, "random seed")
		quick     = flag.Bool("quick", false, "use reduced settings for a fast smoke run")
		csvDir    = flag.String("csv", "", "also write plot-ready CSV files into this directory")
		par       = flag.Int("parallelism", 0, "executor worker count (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		timeout   = flag.Duration("timeout", 0, "abort the whole invocation after this long (0 = no deadline)")
		maxRows   = flag.Int("max-rows", 0, "row budget per evaluation (0 = governed default, negative = unlimited)")
		maxMem    = flag.Int64("max-mem", 0, "estimated-bytes memory budget per evaluation (0 = unlimited)")
		degrade   = flag.Bool("degrade", false, "tolerate per-query budget trips: drop the sample and report the trip in the output table instead of aborting")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	limits := guard.Limits{MaxRows: *maxRows, MaxMemBytes: *maxMem}
	if limits == (guard.Limits{}) {
		limits = experiment.DefaultLimits
	}

	if err := dispatch(ctx, *run, *scale, *instances, *draws, *seed, *quick, *csvDir, *par, limits, *degrade); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps the guard error taxonomy onto the documented exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, guard.ErrRowBudget), errors.Is(err, guard.ErrMemBudget),
		errors.Is(err, guard.ErrCostBudget), errors.Is(err, guard.ErrBudget):
		return 3
	case errors.Is(err, guard.ErrCanceled), errors.Is(err, guard.ErrDeadline):
		return 4
	default:
		return 1
	}
}

func dispatch(ctx context.Context, run string, scale float64, instances, draws int, seed int64, quick bool, csvDir string, par int, limits guard.Limits, degrade bool) error {
	all := run == "all"
	ran := false

	// writeCSV writes one series file when -csv is set.
	writeCSV := func(name string, write func(w io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		werr := write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr == nil {
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
		return werr
	}

	if all || run == "fig1" {
		ran = true
		cfg := experiment.Figure1Config{Scale: scale, Instances: instances, ParamDraws: draws, Seed: seed, Parallelism: par,
			Limits: limits, TolerateBudget: degrade}
		if quick {
			cfg.NullRates = []float64{0.01, 0.03, 0.05, 0.08, 0.10}
			if cfg.Instances == 0 {
				cfg.Instances = 2
			}
			if cfg.ParamDraws == 0 {
				cfg.ParamDraws = 3
			}
		}
		rows, err := experiment.Figure1(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFigure1(rows))
		if err := writeCSV("figure1.csv", func(w io.Writer) error { return experiment.WriteFigure1CSV(w, rows) }); err != nil {
			return err
		}
	}

	if all || run == "fig2" {
		ran = true
		cfg := experiment.LegacyConfig{Seed: seed, MaxRows: limits.MaxRows}
		if quick {
			cfg.Sizes = []int{8, 32, 128, 512}
		}
		points, err := experiment.LegacyBlowup(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderLegacy(points))
		if err := writeCSV("section5_legacy.csv", func(w io.Writer) error { return experiment.WriteLegacyCSV(w, points) }); err != nil {
			return err
		}
		adom, lerr := experiment.LegacyOnQ3(ctx, 0.001, seed)
		fmt.Printf("Legacy translation of the real Q3 (|adom| = %d): %v\n\n", adom, lerr)
	}

	if all || run == "fig4" {
		ran = true
		cfg := experiment.Figure4Config{Scale: scale, Instances: instances, ParamDraws: draws, Seed: seed, Parallelism: par,
			Limits: limits, TolerateBudget: degrade}
		if quick {
			cfg.Instances, cfg.ParamDraws, cfg.Repeats = 1, 2, 2
		}
		rows, err := experiment.Figure4(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFigure4(rows))
		if err := writeCSV("figure4.csv", func(w io.Writer) error { return experiment.WriteFigure4CSV(w, rows) }); err != nil {
			return err
		}
	}

	if all || run == "table1" {
		ran = true
		cfg := experiment.Table1Config{BaseScale: scale, Seed: seed, Parallelism: par,
			Limits: limits, TolerateBudget: degrade}
		if quick {
			cfg.ScaleMultipliers = []float64{1, 3}
			cfg.NullRates = []float64{0.02, 0.04}
		}
		rows, err := experiment.Table1(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderTable1(rows))
		if err := writeCSV("table1.csv", func(w io.Writer) error { return experiment.WriteTable1CSV(w, rows) }); err != nil {
			return err
		}
	}

	if all || run == "recall" {
		ran = true
		cfg := experiment.RecallConfig{Scale: scale, Instances: instances, ParamDraws: draws, Seed: seed, Parallelism: par,
			Limits: limits, TolerateBudget: degrade}
		results, err := experiment.Recall(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderRecall(results))
		if err := writeCSV("recall.csv", func(w io.Writer) error { return experiment.WriteRecallCSV(w, results) }); err != nil {
			return err
		}
	}

	if all || run == "ablation" {
		ran = true
		rows, err := experiment.Ablation(ctx, experiment.AblationConfig{Seed: seed, Scale: scale, Parallelism: par, Limits: limits})
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderAblation(rows))
		if err := writeCSV("ablation.csv", func(w io.Writer) error { return experiment.WriteAblationCSV(w, rows) }); err != nil {
			return err
		}
	}

	if all || run == "orsplit" {
		ran = true
		for _, qid := range []tpch.QueryID{tpch.Q2, tpch.Q4} {
			r, err := experiment.OrSplit(ctx, qid, 0.004, 0.03, seed)
			if err != nil {
				return err
			}
			fmt.Println(experiment.RenderOrSplit(r))
		}
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig1, fig2, fig4, table1, recall, orsplit, all)", run)
	}
	return nil
}
