package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"certsql/internal/guard"
)

// capture redirects stdout while f runs.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 1<<16)
		var b strings.Builder
		for {
			n, err := r.Read(buf)
			if n > 0 {
				b.Write(buf[:n])
			}
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("dispatch: %v\noutput: %s", ferr, out)
	}
	return out
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch(context.Background(), "nope", 0, 0, 0, 1, false, "", 0, guard.Limits{}, false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDispatchOrSplit(t *testing.T) {
	out := capture(t, func() error {
		return dispatch(context.Background(), "orsplit", 0, 0, 0, 1, true, "", 0, guard.Limits{}, false)
	})
	if !strings.Contains(out, "OR-splitting on Q2") || !strings.Contains(out, "OR-splitting on Q4") {
		t.Errorf("orsplit output:\n%s", out)
	}
}

func TestDispatchFig1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := capture(t, func() error {
		return dispatch(context.Background(), "fig1", 0.001, 1, 2, 1, true, t.TempDir(), 0, guard.Limits{}, false)
	})
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Q4") {
		t.Errorf("fig1 output:\n%s", out)
	}
}

func TestDispatchFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := capture(t, func() error {
		return dispatch(context.Background(), "fig4", 0.001, 1, 1, 1, true, "", 2, guard.Limits{}, false)
	})
	if !strings.Contains(out, "Figure 4") {
		t.Errorf("fig4 output:\n%s", out)
	}
}
