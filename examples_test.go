package certsql_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesBuildAndRun compiles, vets and executes every example
// program. The examples double as living documentation (README links
// into them), so they must keep working as the API evolves — a broken
// example is an API regression even when the library tests pass.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := "./" + filepath.Join("examples", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			vet := exec.Command("go", "vet", dir)
			if out, err := vet.CombinedOutput(); err != nil {
				t.Fatalf("go vet %s: %v\n%s", dir, err, out)
			}
			run := exec.Command("go", "run", dir)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s printed nothing; examples should demonstrate their output", dir)
			}
		})
	}
}
