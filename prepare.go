package certsql

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"certsql/internal/algebra"
	"certsql/internal/analyze"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/guard"
	"certsql/internal/plan"
	"certsql/internal/plancache"
	"certsql/internal/sql"
)

// Prepared is a statement readied for repeated execution. Prepare
// validates and canonicalizes the query text once; each Execute then
// looks the full plan up in the DB's plan cache — on a hit the parse,
// compile, static analysis and Q⁺/Q⋆ translation are all skipped and
// evaluation starts immediately (Stats.PlanCacheHits reports which
// route a result took). Plans are keyed by canonical text, catalog
// version, parameter fingerprint and translation options, so reuse
// can never change an answer: a different parameter binding or a
// republished catalog simply compiles (and caches) a fresh plan.
//
// A Prepared is safe for concurrent use; it is a value object holding
// no per-execution state.
type Prepared struct {
	db   *DB
	text string // canonical rendering (parse → render fixpoint)
	mode plancache.Mode
}

// Prepare parses and canonicalizes a query for repeated execution.
// The evaluation mode is the one written in the text (SELECT, SELECT
// CERTAIN, SELECT POSSIBLE), exactly as with Query.
func (db *DB) Prepare(text string) (*Prepared, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	mode := plancache.ModeStandard
	if sel := leadSelect(q.Body); sel != nil {
		switch {
		case sel.Certain:
			mode = plancache.ModeCertain
		case sel.Possible:
			mode = plancache.ModePossible
		}
	}
	return &Prepared{db: db, text: q.SQL(), mode: mode}, nil
}

// Text returns the canonical statement text.
func (p *Prepared) Text() string { return p.text }

// Mode reports the evaluation mode baked into the statement.
func (p *Prepared) Mode() plancache.Mode { return p.mode }

// Rebind returns the same statement bound to another DB view, without
// re-parsing. The serving layer uses it to point session statements at
// the newest published snapshot: the rebound statement keys into that
// view's plan cache under its catalog version.
func (p *Prepared) Rebind(db *DB) *Prepared {
	return &Prepared{db: db, text: p.text, mode: p.mode}
}

// Explain renders the cost-based planner's EXPLAIN of the statement
// under the given parameter binding. Parameters are folded into the
// compiled algebra, so they are part of what is planned: a statement
// that references parameters cannot be explained without a binding.
func (p *Prepared) Explain(params Params, opts Options) (string, error) {
	return p.db.ExplainPlan(p.text, params, opts)
}

// ExplainContext is Explain bounded by ctx — the form request paths
// must use, so an abandoned request stops paying for planning.
func (p *Prepared) ExplainContext(ctx context.Context, params Params, opts Options) (string, error) {
	return p.db.ExplainPlanContext(ctx, p.text, params, opts)
}

// Execute runs the statement with the given parameters.
func (p *Prepared) Execute(params Params) (*Result, error) {
	return p.ExecuteWithOptionsContext(context.Background(), params, Options{})
}

// ExecuteContext is Execute bounded by ctx.
func (p *Prepared) ExecuteContext(ctx context.Context, params Params) (*Result, error) {
	return p.ExecuteWithOptionsContext(ctx, params, Options{})
}

// ExecuteWithOptions is Execute with explicit evaluation options.
func (p *Prepared) ExecuteWithOptions(params Params, opts Options) (*Result, error) {
	return p.ExecuteWithOptionsContext(context.Background(), params, opts)
}

// ExecuteWithOptionsContext is the fully general prepared entry point:
// explicit options, bounded by ctx.
func (p *Prepared) ExecuteWithOptionsContext(ctx context.Context, params Params, opts Options) (*Result, error) {
	gov := opts.governor(ctx)
	if err := gov.Poll("execute"); err != nil {
		return nil, err
	}
	key := plancache.Key{
		SQL:            p.text,
		CatalogVersion: p.db.catver,
		Params:         fingerprintParams(params),
		Options:        fingerprintPlanOptions(opts),
	}
	pl, hit := p.db.plans.Get(key)
	if !hit {
		var err error
		pl, err = p.db.compilePlan(gov, p.text, params, opts)
		if err != nil {
			return nil, err
		}
		p.db.plans.Put(key, pl)
	}
	res, err := p.db.runPlan(gov, pl, opts)
	if err != nil {
		return nil, err
	}
	if hit {
		res.Stats.PlanCacheHits = 1
	} else {
		res.Stats.PlanCacheMisses = 1
	}
	return res, nil
}

// compilePlan performs the cacheable part of one query: parse, compile,
// translatability check, static analysis, the Q⁺/Q⋆ translations its
// mode needs, and the cost-based planner's optimized variant of each.
// Everything but the optimized variants is data-independent; the
// variants may lean on data-dependent premises, which runPlan re-checks
// against current statistics before using one.
func (db *DB) compilePlan(gov *guard.Governor, text string, params Params, opts Options) (pl *plancache.Plan, err error) {
	defer func() {
		if v := recover(); v != nil {
			pl, err = nil, guard.NewInternalError("certsql/compile-plan", v)
		}
	}()
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	mode := takeMode(q)
	compiled, err := compile.Compile(q, db.d.Schema, params)
	if err != nil {
		return nil, err
	}
	pl = &plancache.Plan{Columns: compiled.Columns, Orig: compiled.Expr,
		OrigShape: eval.ShapeOf(compiled.Expr)}
	// The original expression is executed in every mode (standard
	// evaluation, the certain route's analyzer fast path), so its
	// optimized variant is always worth caching.
	if pl.OrigOpt, err = db.optimizeFor(gov, compiled.Expr); err != nil {
		return nil, err
	}
	switch mode {
	case modeCertain:
		pl.Mode = plancache.ModeCertain
	case modePossible:
		pl.Mode = plancache.ModePossible
	default:
		pl.Mode = plancache.ModeStandard
		return pl, nil
	}
	if err := certain.CheckTranslatable(compiled.Expr); err != nil {
		return nil, err
	}
	// Both translated forms are data-independent, so the plan carries
	// everything any future execution can need: Plus serves the certain
	// route (and the degradation ladder of the possible route), Star
	// the potential route. The analyzer verdict is cached too; whether
	// the fast path actually fires is re-decided per execution against
	// the O(1) NOT NULL conformance counter — data may change between
	// executions of one cached plan.
	pl.AnalyzerSafe = analyze.Plan(compiled.Expr, db.d.Schema).Safe
	tr := opts.translator(db)
	pl.Plus = tr.Plus(compiled.Expr)
	pl.PlusShape = eval.ShapeOf(pl.Plus)
	if pl.PlusOpt, err = db.optimizeFor(gov, pl.Plus); err != nil {
		return nil, err
	}
	if pl.Mode == plancache.ModePossible {
		pl.Star = tr.Star(compiled.Expr)
		pl.StarShape = eval.ShapeOf(pl.Star)
		if pl.StarOpt, err = db.optimizeFor(gov, pl.Star); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

// optimizeFor runs the cost-based planner over one cached expression
// variant. It returns nil — cache the baseline alone — when the planner
// neither rewrote the expression nor produced hints.
func (db *DB) optimizeFor(gov *guard.Governor, e algebra.Expr) (*plancache.Optimized, error) {
	st, err := db.collectStats(gov)
	if err != nil {
		return nil, err
	}
	pr, err := plan.Optimize(e, db.d.Schema, st, gov)
	if err != nil {
		return nil, err
	}
	if !pr.Changed && pr.Hints == nil {
		return nil, nil
	}
	return &plancache.Optimized{Expr: pr.Expr, Shape: eval.ShapeOf(pr.Expr),
		Hints: pr.Hints, Premises: pr.Premises, Explain: pr.ExplainText()}, nil
}

// optApplies decides whether a cached optimized variant may serve this
// execution: the planner must be enabled and every premise the variant
// relies on must still hold under current statistics. With no premises
// the check is free; otherwise statistics are re-collected, which the
// generation cache makes O(1) on unchanged data.
func (db *DB) optApplies(gov *guard.Governor, o *plancache.Optimized, opts Options) (bool, error) {
	if o == nil || opts.NaivePlanner {
		return false, nil
	}
	if len(o.Premises) == 0 {
		return true, nil
	}
	st, err := db.collectStats(gov)
	if err != nil {
		return false, err
	}
	return plan.CheckPremises(o.Premises, st), nil
}

// runPlan evaluates a cached plan, mirroring runParsed's mode switch.
func (db *DB) runPlan(gov *guard.Governor, pl *plancache.Plan, opts Options) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, guard.NewInternalError("certsql/execute", v)
		}
	}()
	switch pl.Mode {
	case plancache.ModeCertain:
		return db.evalCertainPlan(gov, pl, opts)
	case plancache.ModePossible:
		expr, shape, hints, verr := db.pickVariant(gov, pl.Star, pl.StarShape, pl.StarOpt, opts)
		if verr != nil {
			return nil, verr
		}
		res, err := db.evalExprPlanned(gov, expr, shape, hints, pl.Columns, opts)
		if err == nil {
			res.Possible = true
			return res, nil
		}
		// The same opt-in degradation ladder as the ad-hoc route: a
		// budget trip (never cancellation) falls back to the certain
		// answers under a fresh governor.
		if !opts.Degrade || !errors.Is(err, guard.ErrBudget) {
			return nil, err
		}
		res, derr := db.evalCertainPlan(gov.Fresh(), pl, opts)
		if derr != nil {
			return nil, derr
		}
		res.Degraded = true
		res.Warnings = append(res.Warnings, Warning{
			Code: WarnDegradedToCertain,
			Message: fmt.Sprintf("potential-answer translation exceeded its resource budget (%v); "+
				"returning certain answers instead — a sound under-approximation", err),
		})
		return res, nil
	default:
		expr, shape, hints, err := db.pickVariant(gov, pl.Orig, pl.OrigShape, pl.OrigOpt, opts)
		if err != nil {
			return nil, err
		}
		return db.evalExprPlanned(gov, expr, shape, hints, pl.Columns, opts)
	}
}

// pickVariant resolves which plan an execution runs: the cached
// optimized variant when it applies (see optApplies), the baseline
// otherwise.
func (db *DB) pickVariant(gov *guard.Governor, e algebra.Expr, s *eval.Shape, o *plancache.Optimized, opts Options) (algebra.Expr, *eval.Shape, *eval.PlanHints, error) {
	ok, err := db.optApplies(gov, o, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	if ok {
		return o.Expr, o.Shape, o.Hints, nil
	}
	return e, s, nil, nil
}

// evalCertainPlan is the certain-answer route over a cached plan: the
// analyzer fast path when the cached verdict applies to the current
// data, the cached Q⁺ otherwise.
func (db *DB) evalCertainPlan(gov *guard.Governor, pl *plancache.Plan, opts Options) (*Result, error) {
	expr, shape, opt, fastPath := pl.Plus, pl.PlusShape, pl.PlusOpt, false
	if !opts.NoAnalyzerFastPath && pl.AnalyzerSafe && db.d.ConformsNonNull() {
		expr, shape, opt, fastPath = pl.Orig, pl.OrigShape, pl.OrigOpt, true
	}
	expr, shape, hints, err := db.pickVariant(gov, expr, shape, opt, opts)
	if err != nil {
		return nil, err
	}
	res, err := db.evalExprPlanned(gov, expr, shape, hints, pl.Columns, opts)
	if err != nil {
		return nil, err
	}
	res.Certain = true
	if fastPath {
		res.Stats.FastPathHits = 1
	}
	return res, nil
}

// fingerprintParams renders a parameter binding deterministically.
// Parameters are folded into the compiled algebra (IN-lists expand,
// constants propagate), so they are part of the plan identity.
func fingerprintParams(params Params) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		v := params[k]
		fmt.Fprintf(&b, "%s=%T:%v;", k, v, v)
	}
	return b.String()
}

// fingerprintPlanOptions encodes the options that change the compiled
// or translated plan. Executor strategy toggles, budgets, parallelism
// and the analyzer fast path are runtime concerns and deliberately
// excluded — varying them reuses the same cached plan.
func fingerprintPlanOptions(o Options) string {
	flags := [...]bool{o.Naive, o.NoOrSplit, o.NoSimplifyNulls, o.NoKeySimplify}
	var b [len(flags)]byte
	for i, f := range flags {
		if f {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b[:])
}

// WithMode returns the canonical text of a query with its evaluation
// mode forced: "certain" and "possible" rewrite the leading select's
// keyword, "" (or "standard") strips it. The serving layer uses this
// to implement mode overrides without a second parser.
func WithMode(text, mode string) (string, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	sel := leadSelect(q.Body)
	if sel == nil {
		return "", fmt.Errorf("certsql: no select statement to set mode on")
	}
	switch mode {
	case "certain":
		sel.Certain, sel.Possible = true, false
	case "possible":
		sel.Certain, sel.Possible = false, true
	case "", "standard":
		sel.Certain, sel.Possible = false, false
	default:
		return "", fmt.Errorf("certsql: unknown mode %q (want certain, possible, or standard)", mode)
	}
	return q.SQL(), nil
}
