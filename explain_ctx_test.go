package certsql_test

import (
	"context"
	"errors"
	"testing"

	"certsql"
)

// These pin the context-threading fixes surfaced by the vetcert ctxflow
// rule: EXPLAIN plans statistics collection and rewrite search under a
// governor, so the planning work must stop with the caller's context —
// previously ExplainPlan always governed itself with
// context.Background(), and the server's prepare handler planned
// abandoned requests to completion.

func TestExplainPlanContextPreCanceled(t *testing.T) {
	db := ctxDB(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExplainPlanContext(ctx, ctxQuery, nil, certsql.Options{})
	if !errors.Is(err, certsql.ErrCanceled) {
		t.Fatalf("ExplainPlanContext with canceled ctx: err = %v, want ErrCanceled", err)
	}
}

func TestPreparedExplainContextPreCanceled(t *testing.T) {
	db := ctxDB(t, 8)
	stmt, err := db.Prepare(ctxQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := stmt.ExplainContext(ctx, nil, certsql.Options{}); !errors.Is(err, certsql.ErrCanceled) {
		t.Fatalf("ExplainContext with canceled ctx: err = %v, want ErrCanceled", err)
	}
	// The context-free forms still work after the shim split.
	if _, err := stmt.Explain(nil, certsql.Options{}); err != nil {
		t.Fatalf("Explain after shim split: %v", err)
	}
}
