#!/usr/bin/env bash
# crash_smoke.sh — kill -9 recovery smoke test of certsqld -data-dir.
#
# The in-process chaos suite (make chaos-crash, TestCrashRecovery)
# simulates crashes at every durability seam with fault injection; this
# script is the out-of-process complement: a real certsqld, real SIGKILL
# at arbitrary moments, real WAL replay across process boundaries.
#
# Per round: start certsqld over one persistent data directory, wait
# for recovery to finish (healthz flips 503 "recovering" → 200), push
# acknowledged loads through /v1/load, fire one more load and SIGKILL
# the server while it may still be in flight. After every kill the
# invariants are checked on restart:
#
#   - the server recovers (healthz reaches 200),
#   - the catalog version is monotone: >= the last acknowledged version
#     (WAL-ahead publish: an acked load is a durable load),
#   - every previously acknowledged row is still countable via SQL.
#
# The final round shuts down cleanly (SIGTERM) and runs `certsql fsck`,
# which must report the directory clean (exit 0).
#
# Run via `make chaos-crash`; CI runs it on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
ROUNDS=${ROUNDS:-3}
LOADS=${LOADS:-15}
workdir=$(mktemp -d)
datadir="$workdir/data"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "crash-smoke: building..."
$GO build -o "$workdir/certsqld" ./cmd/certsqld
$GO build -o "$workdir/certsql" ./cmd/certsql

url=""
start_server() {
    : >"$workdir/stdout.log"
    "$workdir/certsqld" -addr 127.0.0.1:0 -sf 0.0005 -nullrate 0.03 -seed 1 \
        -data-dir "$datadir" -checkpoint-every 4 \
        >"$workdir/stdout.log" 2>>"$workdir/stderr.log" &
    pid=$!
    url=""
    for _ in $(seq 1 100); do
        url=$(sed -n 's/^certsqld listening on //p' "$workdir/stdout.log" | head -n 1)
        [ -n "$url" ] && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if [ -z "$url" ]; then
        echo "crash-smoke: FAIL — server never announced its address" >&2
        cat "$workdir/stderr.log" >&2
        exit 1
    fi
    # Recovery runs in the background; wait for the 503 "recovering"
    # phase to end.
    for _ in $(seq 1 200); do
        if curl -fsS "$url/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    echo "crash-smoke: FAIL — server never became healthy after recovery" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
}

# load_row label → prints the acknowledged version, fails on any error.
seq_no=0
load_row() {
    seq_no=$((seq_no + 1))
    curl -fsS -X POST "$url/v1/load" -H 'Content-Type: application/json' \
        -d "{\"table\":\"nation\",\"rows\":[[$((1000 + seq_no)),\"smoke-$seq_no\",1,\"crash smoke row\"]]}" |
        sed -n 's/.*"version":\([0-9]*\).*/\1/p'
}

count_smoke_rows() {
    "$workdir/certsql" -remote "$url" \
        -query "SELECT n_nationkey FROM nation WHERE n_comment = 'crash smoke row'" \
        -maxrows 100000 2>/dev/null | sed -n 's/^-- \([0-9]*\) rows.*/\1/p'
}

acked_version=0
acked_rows=0
for round in $(seq 1 "$ROUNDS"); do
    start_server
    echo "crash-smoke: round $round at $url"

    got_version=$(curl -fsS "$url/v1/catalog" | sed -n 's/.*"version":\([0-9]*\).*/\1/p')
    if [ -z "$got_version" ] || [ "$got_version" -lt "$acked_version" ]; then
        echo "crash-smoke: FAIL — recovered version '${got_version:-none}' < acked $acked_version" >&2
        exit 1
    fi
    rows=$(count_smoke_rows)
    if [ -z "$rows" ] || [ "$rows" -lt "$acked_rows" ]; then
        echo "crash-smoke: FAIL — recovered $rows smoke rows, acked $acked_rows" >&2
        cat "$workdir/stderr.log" >&2
        exit 1
    fi
    echo "crash-smoke: recovered at v$got_version with $rows/$acked_rows acked rows"

    for _ in $(seq 1 "$LOADS"); do
        v=$(load_row)
        if [ -z "$v" ]; then
            echo "crash-smoke: FAIL — load not acknowledged" >&2
            exit 1
        fi
        acked_version=$v
        acked_rows=$((acked_rows + 1))
    done

    # One more load racing the kill: it may or may not land — either
    # way the next recovery must be consistent (that's the point).
    curl -fsS -X POST "$url/v1/load" -H 'Content-Type: application/json' \
        -d "{\"table\":\"nation\",\"rows\":[[9999,\"racer\",1,\"unacked racer\"]]}" \
        >/dev/null 2>&1 &
    racer=$!
    kill -9 "$pid"
    pid=""
    wait "$racer" 2>/dev/null || true
    echo "crash-smoke: killed -9 after $acked_rows acked loads (v$acked_version)"
done

# Final round: recover once more, verify, shut down cleanly, fsck.
start_server
rows=$(count_smoke_rows)
if [ -z "$rows" ] || [ "$rows" -lt "$acked_rows" ]; then
    echo "crash-smoke: FAIL — final recovery lost rows: $rows < $acked_rows" >&2
    exit 1
fi
echo "crash-smoke: final recovery holds $rows/$acked_rows acked rows"

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "crash-smoke: FAIL — clean shutdown exited $status" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi

if ! "$workdir/certsql" fsck "$datadir"; then
    echo "crash-smoke: FAIL — fsck found problems after a clean shutdown" >&2
    exit 1
fi

echo "crash-smoke: PASS ($ROUNDS kills, $acked_rows acked loads, fsck clean)"
