#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the certsqld serving layer.
#
# Builds certsqld and the certsql shell, starts the server on a
# kernel-assigned port over a generated TPC-H instance, runs the
# paper's Q1–Q4 twice each through the remote client (the repetition is
# what exercises the plan cache), then asserts from /metrics that:
#
#   - at least one query was served from the plan cache,
#   - no request ended in a 5xx (every failure must map to a typed
#     4xx/507 status — a 500 means an unmapped error escaped),
#   - the admission gauges are exposed,
#
# and finally that SIGTERM drains the server to a clean exit 0.
#
# Run via `make serve-smoke`; CI runs it on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building..."
$GO build -o "$workdir/certsqld" ./cmd/certsqld
$GO build -o "$workdir/certsql" ./cmd/certsql

"$workdir/certsqld" -addr 127.0.0.1:0 -sf 0.001 -nullrate 0.03 -seed 1 \
    >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
pid=$!

# The server prints one "certsqld listening on http://host:port" line
# once the listener is up; with -addr :0 this is how the port is found.
url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's/^certsqld listening on //p' "$workdir/stdout.log" | head -n 1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$url" ]; then
    echo "serve-smoke: FAIL — server never announced its address" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi
echo "serve-smoke: server at $url"

curl -fsS "$url/healthz" >/dev/null

# Q1–Q4, twice each: the second run of every query must hit the plan
# cache (same SQL, same seeded parameters, same catalog version).
for q in 1 2 3 4; do
    for rep in 1 2; do
        if ! "$workdir/certsql" -remote "$url" -tpchq "$q" -mode certain -maxrows 3 \
            >>"$workdir/queries.log" 2>&1; then
            echo "serve-smoke: FAIL — Q$q (run $rep) failed:" >&2
            tail -n 20 "$workdir/queries.log" >&2
            exit 1
        fi
    done
done
echo "serve-smoke: Q1-Q4 ran twice each"

curl -fsS "$url/metrics" >"$workdir/metrics.txt"

hits=$(awk '$1 == "certsqld_plan_cache_hits_total" {print $2}' "$workdir/metrics.txt")
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
    echo "serve-smoke: FAIL — expected plan-cache hits, got '${hits:-none}'" >&2
    cat "$workdir/metrics.txt" >&2
    exit 1
fi
echo "serve-smoke: plan cache hits: $hits"

if grep -E 'certsqld_requests_total\{[^}]*status="5[0-9]{2}"' "$workdir/metrics.txt"; then
    echo "serve-smoke: FAIL — 5xx responses recorded (unmapped error escaped)" >&2
    exit 1
fi

for gauge in certsqld_queue_depth certsqld_in_flight certsqld_sessions; do
    grep -q "^$gauge " "$workdir/metrics.txt" || {
        echo "serve-smoke: FAIL — metrics missing $gauge" >&2
        exit 1
    }
done

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: FAIL — server exited $status on SIGTERM" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi
grep -q "drained" "$workdir/stderr.log" || {
    echo "serve-smoke: FAIL — no drain confirmation in server log" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
}

echo "serve-smoke: PASS"
