#!/usr/bin/env bash
# loadtest.sh — soak the certsqld serving layer under sharded execution.
#
# Builds certsqld and the loadtest generator, starts the server on a
# kernel-assigned port with -shards (default 4) over a generated TPC-H
# instance, soaks it with concurrent closed-loop workers replaying the
# paper's Q1–Q4 in certain mode, then asserts from /metrics that:
#
#   - no request ended in a 5xx (typed-failure taxonomy held under load),
#   - the shard gauge reports the configured count and the per-shard
#     partition-row gauges are exposed,
#
# and finally that SIGTERM drains the server to a clean exit 0.
#
# Run via `make loadtest` (30s soak) or `make loadtest-smoke` (3s, the
# CI setting). DURATION, SHARDS and CONCURRENCY override the defaults.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
DURATION=${DURATION:-30s}
SHARDS=${SHARDS:-4}
CONCURRENCY=${CONCURRENCY:-8}
workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "loadtest: building..."
$GO build -o "$workdir/certsqld" ./cmd/certsqld
$GO build -o "$workdir/loadtest" ./cmd/loadtest

"$workdir/certsqld" -addr 127.0.0.1:0 -sf 0.001 -nullrate 0.03 -seed 1 -shards "$SHARDS" \
    >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
pid=$!

url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's/^certsqld listening on //p' "$workdir/stdout.log" | head -n 1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$url" ]; then
    echo "loadtest: FAIL — server never announced its address" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi
echo "loadtest: server at $url (shards=$SHARDS), soaking for $DURATION..."

"$workdir/loadtest" -url "$url" -duration "$DURATION" -concurrency "$CONCURRENCY"

curl -fsS "$url/metrics" >"$workdir/metrics.txt"

if grep -E 'certsqld_requests_total\{[^}]*status="5[0-9]{2}"' "$workdir/metrics.txt"; then
    echo "loadtest: FAIL — 5xx responses recorded (unmapped error escaped)" >&2
    exit 1
fi

shards=$(awk '$1 == "certsqld_shards" {print $2}' "$workdir/metrics.txt")
if [ "$shards" != "$SHARDS" ]; then
    echo "loadtest: FAIL — certsqld_shards reports '${shards:-none}', want $SHARDS" >&2
    exit 1
fi
grep -q '^certsqld_shard_partition_rows{' "$workdir/metrics.txt" || {
    echo "loadtest: FAIL — per-shard partition gauges missing from /metrics" >&2
    exit 1
}
echo "loadtest: shard gauges verified"

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "loadtest: FAIL — server exited $status on SIGTERM" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi

echo "loadtest: PASS"
