// CRM: a win-back campaign built on the paper's query Q2 (TPC-H query
// 22) — customers from target countries with above-average positive
// balance who have never placed an order.
//
// One order with an unknown customer makes *every* campaign target a
// potentially wrong answer: that anonymous order could belong to any of
// them. The paper finds SQL's false-positive rate for this query near
// 100%, and finds the certain translation not only correct but over a
// thousand times faster — it detects early that no answer is certain.
// This example shows both effects.
package main

import (
	"fmt"
	"log"
	"time"

	"certsql"
)

const q2 = `
SELECT c_custkey, c_nationkey
FROM customer
WHERE c_nationkey IN ($countries)
  AND c_acctbal > (
        SELECT AVG(c_acctbal)
        FROM customer
        WHERE c_acctbal > 0.00
          AND c_nationkey IN ($countries) )
  AND NOT EXISTS (
        SELECT *
        FROM orders
        WHERE o_custkey = c_custkey )`

func main() {
	db := certsql.OpenTPCH(certsql.TPCHConfig{ScaleFactor: 0.004, Seed: 22, NullRate: 0.02})
	params := certsql.Params{"countries": []int64{0, 3, 6, 9, 12, 15, 18}}

	start := time.Now()
	campaign, err := db.Query(q2, params)
	if err != nil {
		log.Fatal(err)
	}
	tSQL := time.Since(start)

	start = time.Now()
	safe, err := db.QueryCertain(q2, params)
	if err != nil {
		log.Fatal(err)
	}
	tCertain := time.Since(start)

	fmt.Printf("win-back targets (SQL):      %4d customers  (%v)\n", campaign.Len(), tSQL)
	fmt.Printf("win-back targets (certain):  %4d customers  (%v)\n", safe.Len(), tCertain)
	if tCertain > 0 {
		fmt.Printf("speedup of the correct query: %.0fx\n\n", float64(tSQL)/float64(tCertain))
	}

	if safe.Len() == 0 && campaign.Len() > 0 {
		fmt.Println("every SQL answer is unreliable: some order in the database has an")
		fmt.Println("unknown customer, who might be any of the 'never ordered' targets.")
	}

	// The rewritten query shows why certain evaluation is so fast here:
	// the OR-split produces a decorrelated NOT EXISTS — one probe for a
	// null o_custkey answers the whole query.
	rewritten, err := db.Rewrite(q2, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrewritten query Q2+:")
	fmt.Println(rewritten)
}
