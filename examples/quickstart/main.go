// Quickstart: the paper's introductory example.
//
// R = {1} and S = {NULL}. The query
//
//	SELECT r.a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE r.a = s.a)
//
// computes R − S. SQL returns {1}, but 1 is not a certain answer: if
// the NULL stands for 1, the difference is empty. SELECT CERTAIN
// returns only answers that hold under every interpretation of the
// missing value.
package main

import (
	"fmt"
	"log"

	"certsql"
)

func main() {
	db := certsql.MustOpen(
		certsql.Table{Name: "r", Columns: []certsql.Column{{Name: "a", Type: certsql.TInt}}},
		certsql.Table{Name: "s", Columns: []certsql.Column{{Name: "a", Type: certsql.TInt}}},
	)
	if err := db.Insert("r", 1); err != nil {
		log.Fatal(err)
	}
	if err := db.Insert("s", certsql.NULL); err != nil {
		log.Fatal(err)
	}

	const q = `SELECT r.a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE r.a = s.a)`

	sqlRes, err := db.Query(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL evaluation:     ", sqlRes.SortedStrings(), "  <- contains a false positive")

	certRes, err := db.Query("SELECT CERTAIN"+q[len("SELECT"):], nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SELECT CERTAIN:     ", certRes.SortedStrings(), " <- correct: no certain answers")

	// Cross-check against the brute-force ground truth (feasible here:
	// one null, tiny domain).
	truth, err := db.CertainGroundTruth(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact cert(Q,D):    ", truth.SortedStrings())

	// The rewriting that made it correct, as SQL.
	rewritten, err := db.Rewrite(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrewritten query Q+:")
	fmt.Println(rewritten)
}
