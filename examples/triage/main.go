// Triage: bracketing the truth with SELECT CERTAIN and SELECT POSSIBLE.
//
// An ops team must find servers missing a critical patch. The patch log
// is incomplete: some entries have an unknown server id (the agent
// crashed mid-report). Plain SQL gives one answer set with both kinds
// of errors baked in. The certain/possible pair brackets reality:
//
//   - SELECT CERTAIN  — servers missing the patch under EVERY
//     interpretation of the unknowns: page someone now;
//   - SELECT POSSIBLE — servers missing it under SOME interpretation:
//     everything outside this set is provably patched, everything in
//     the gap between the two sets needs investigation.
//
// The certain side is the paper's Q⁺; the possible side is its Q⋆
// companion (Definition 3), which the paper uses internally and this
// library also exposes as query syntax.
package main

import (
	"fmt"
	"log"

	"certsql"
)

func main() {
	db := certsql.MustOpen(
		certsql.Table{
			Name: "server",
			Columns: []certsql.Column{
				{Name: "host", Type: certsql.TString},
				{Name: "env", Type: certsql.TString},
			},
			Key: []string{"host"},
		},
		certsql.Table{
			Name: "patchlog",
			Columns: []certsql.Column{
				{Name: "host", Type: certsql.TString},
				{Name: "patch", Type: certsql.TString},
			},
		},
	)
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, h := range []string{"web-1", "web-2", "db-1", "db-2", "cache-1"} {
		env := "prod"
		if h == "web-2" {
			env = "staging"
		}
		must(db.Insert("server", h, env))
	}
	// Patch log: web-1 and db-1 definitely patched; two crashed reports
	// with unknown hosts; cache-1 got a different patch.
	must(db.Insert("patchlog", "web-1", "CVE-2026-001"))
	must(db.Insert("patchlog", "db-1", "CVE-2026-001"))
	must(db.Insert("patchlog", certsql.NULL, "CVE-2026-001"))
	must(db.Insert("patchlog", certsql.NULL, "CVE-2026-001"))
	must(db.Insert("patchlog", "cache-1", "CVE-2025-999"))

	const q = `SELECT host FROM server WHERE NOT EXISTS (
	               SELECT * FROM patchlog
	               WHERE patchlog.host = server.host AND patch = 'CVE-2026-001')`

	sqlRes, err := db.Query(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	certain, err := db.QueryCertain(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	possible, err := db.QueryPossible(q, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("servers missing CVE-2026-001:")
	fmt.Println("  plain SQL says:      ", sqlRes.SortedStrings())
	fmt.Println("  certainly missing:   ", certain.SortedStrings(), " <- page the on-call")
	fmt.Println("  possibly missing:    ", possible.SortedStrings(), " <- investigate the rest")
	fmt.Println("  provably patched:    ", complement(db, possible))

	// The gap exists because two patch reports lost their host: those
	// could cover any two of the unpatched-looking servers — but not
	// all three of db-2, web-2 and cache-1 at once. Only counting-style
	// reasoning could see that; tuple-level certainty cannot, which is
	// exactly why SELECT CERTAIN stays conservative (sound, possibly
	// incomplete), as Theorem 1 prescribes.
	fmt.Println("\nwhy the gap: two anonymous patch reports may cover any of the")
	fmt.Println("unaccounted servers, so none of them is *certainly* unpatched.")
}

// complement lists the hosts not in res.
func complement(db *certsql.DB, res *certsql.Result) []string {
	all, err := db.Query(`SELECT host FROM server`, nil)
	if err != nil {
		log.Fatal(err)
	}
	return all.Sub(res)
}
