// Marked nulls: the data-exchange scenario of Section 8 of the paper.
//
// SQL's nulls are Codd nulls — each occurrence is independent, and a
// null is not even equal to itself (SELECT R1.A FROM R R1, R R2 WHERE
// R1.A = R2.A returns nothing for R = {NULL}). Marked nulls ⊥ᵢ, which
// arise in data integration and exchange, can repeat: two occurrences
// of ⊥₁ denote the *same* unknown value. The library supports both;
// this example shows where they differ and how naive evaluation over
// marked nulls recovers certain answers that SQL loses.
package main

import (
	"fmt"
	"log"

	"certsql"
)

func main() {
	// A schema-mapping target: person(name, city) and office(city),
	// populated by an exchange system that invented the value ⊥₁ for
	// Ada's unknown city and *reused* it for the office she was
	// assigned to — the two unknowns are the same value by provenance.
	db := certsql.MustOpen(
		certsql.Table{Name: "person", Columns: []certsql.Column{
			{Name: "name", Type: certsql.TString},
			{Name: "city", Type: certsql.TString},
		}},
		certsql.Table{Name: "office", Columns: []certsql.Column{
			{Name: "city", Type: certsql.TString},
		}},
	)
	sharedCity := db.FreshNull() // ⊥₁ — one unknown value, used twice
	must(db.Insert("person", "Ada", sharedCity))
	must(db.Insert("person", "Bob", "Paris"))
	must(db.Insert("office", sharedCity))
	must(db.Insert("office", "Oslo"))

	const q = `SELECT p.name FROM person p WHERE EXISTS (
	               SELECT * FROM office o WHERE o.city = p.city)`

	// SQL 3VL cannot see that ⊥₁ = ⊥₁: it loses Ada.
	sqlRes, err := db.Query(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("people with an office in their city (SQL 3VL):       ", sqlRes.SortedStrings())

	// Naive evaluation over marked nulls compares marks: Ada is kept,
	// and soundly so — whatever city ⊥₁ is, it appears in office.
	naiveRes, err := db.QueryWithOptions(q, nil, certsql.Options{Naive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("people with an office in their city (marked nulls):  ", naiveRes.SortedStrings())

	// The brute-force ground truth confirms Ada is a certain answer.
	truth, err := db.CertainGroundTruth(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact certain answers:                               ", truth.SortedStrings())

	// The Section 7 self-join pitfall: with SQL's nulls, R ⋈ R over
	// R = {NULL} is empty although every valuation makes it non-empty.
	db2 := certsql.MustOpen(
		certsql.Table{Name: "r", Columns: []certsql.Column{{Name: "a", Type: certsql.TInt}}},
	)
	must(db2.Insert("r", certsql.NULL))
	const selfJoin = `SELECT r1.a FROM r r1, r r2 WHERE r1.a = r2.a`

	sqlSelf, err := db2.Query(selfJoin, nil)
	if err != nil {
		log.Fatal(err)
	}
	naiveSelf, err := db2.QueryWithOptions(selfJoin, nil, certsql.Options{Naive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nself-join of R = {⊥} (SQL 3VL):      ", sqlSelf.SortedStrings(), " <- SQL loses the certain answer")
	fmt.Println("self-join of R = {⊥} (marked nulls): ", naiveSelf.SortedStrings())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
