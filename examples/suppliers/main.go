// Suppliers: a late-shipment audit on TPC-H data with missing values —
// the scenario behind the paper's queries Q1 and Q3.
//
// An analyst asks for orders supplied entirely by supplier 3 (the
// textbook query Q3 of the paper). On a database where some lineitem
// supplier keys are unknown, plain SQL reports orders whose lineitems
// *might* have come from other suppliers — wrong answers that could
// trigger mistaken follow-ups. The certain mode returns only orders for
// which the claim holds no matter what the missing suppliers are.
package main

import (
	"fmt"
	"log"

	"certsql"
)

func main() {
	db := certsql.OpenTPCH(certsql.TPCHConfig{ScaleFactor: 0.0005, Seed: 11, NullRate: 0.05})
	fmt.Printf("TPC-H instance with %d missing values\n\n", db.NullCount())

	const q3 = `
SELECT o_orderkey
FROM orders
WHERE NOT EXISTS (
    SELECT *
    FROM lineitem
    WHERE l_orderkey = o_orderkey
      AND l_suppkey <> $supp_key )`
	params := certsql.Params{"supp_key": 3}

	sqlRes, err := db.Query(q3, params)
	if err != nil {
		log.Fatal(err)
	}
	certRes, err := db.QueryCertain(q3, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("orders 'supplied entirely by supplier 3':\n")
	fmt.Printf("  SQL evaluation:     %3d orders\n", sqlRes.Len())
	fmt.Printf("  certain evaluation: %3d orders\n\n", certRes.Len())

	wrong := sqlRes.Sub(certRes)
	if len(wrong) > 0 {
		fmt.Printf("answers SQL got wrong (possibly supplied by someone else):\n")
		for i, w := range wrong {
			if i == 8 {
				fmt.Printf("  ... and %d more\n", len(wrong)-8)
				break
			}
			fmt.Println("  order", w)
		}
	}

	// A stricter audit: the paper's Q1 — suppliers who were the *only*
	// one to miss the committed delivery date in a multi-supplier
	// finalized order. Negation again, so SQL again overclaims.
	const q1 = `
SELECT s_suppkey, o_orderkey
FROM supplier, lineitem l1, orders, nation
WHERE s_suppkey = l1.l_suppkey
  AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
        SELECT * FROM lineitem l2
        WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey )
  AND NOT EXISTS (
        SELECT * FROM lineitem l3
        WHERE l3.l_orderkey = l1.l_orderkey
          AND l3.l_suppkey <> l1.l_suppkey
          AND l3.l_receiptdate > l3.l_commitdate )
  AND s_nationkey = n_nationkey
  AND n_name = $nation`

	nations := []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	fmt.Println("\nblame audit (paper's Q1): suppliers solely responsible for a late multi-supplier order")
	totalSQL, totalCertain := 0, 0
	for _, nation := range nations {
		p := certsql.Params{"nation": nation}
		blamedSQL, err := db.Query(q1, p)
		if err != nil {
			log.Fatal(err)
		}
		blamedCertain, err := db.QueryCertain(q1, p)
		if err != nil {
			log.Fatal(err)
		}
		totalSQL += blamedSQL.Len()
		totalCertain += blamedCertain.Len()
		for _, unfair := range blamedSQL.Sub(blamedCertain) {
			fmt.Printf("  (supplier, order) %s blamed by SQL [%s], but an unknown supplier may share the fault\n",
				unfair, nation)
		}
	}
	fmt.Printf("across all nations: SQL blames %d supplier/order pairs, only %d are certain\n",
		totalSQL, totalCertain)
}
