package certsql_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"certsql"
	"certsql/internal/tpch"
)

// benchPlanDB is the instance the planner benchmarks run on: a complete
// TPC-H generation with 5% nulls injected into orders and customer
// only. Restricting injection mirrors the paper's per-scenario choice
// of null attributes and is what gives the statistics something to
// prove: lineitem, part, supplier and nation stay null-free in the
// data, so the planner's null-test-elimination premises actually hold
// and are re-checked against live statistics on each prepared
// execution.
func benchPlanDB() (*certsql.DB, tpch.Sizes) {
	cfg := tpch.Config{ScaleFactor: 0.004, Seed: 42}
	inner := tpch.Generate(cfg)
	tpch.InjectNullsInto(inner, 0.05, rand.New(rand.NewSource(42)), "orders", "customer")
	return certsql.FromInternal(inner), cfg.Sizes()
}

// planVariant is one (translation, planner) cell of the speedup matrix.
// Raw keeps the Section 7 translation's `A = B OR B IS NULL`
// disjunctions intact (Options.NoOrSplit) — the hash-hostile shape the
// paper reports confusing a production optimizer — so the cost-based
// planner's anti-split rule is doing the rescue instead of the
// translator. Parallelism is pinned to 1: the ratios measure plan
// quality, not scheduler behaviour.
type planVariant struct {
	query string
	label string // "default" or "raw"
	text  string
	param certsql.Params
	cost  certsql.Options
	naive certsql.Options
}

// plannerVariants yields the certain-mode appendix queries with seeded
// parameter bindings, under both the default and the raw translation.
// Raw Q4 is excluded: its translation's join block has only
// `= OR IS NULL` join edges, so the greedy runtime planner finds no
// equality edges and the block degenerates to a 20M-row Cartesian
// product under the naive AND the cost-based planner alike — the
// planner cannot rescue a query it is forbidden to reorder.
func plannerVariants(t testing.TB) []planVariant {
	_, sizes := benchPlanDB()
	rng := rand.New(rand.NewSource(7))
	var out []planVariant
	for _, q := range tpch.AllQueries {
		params := q.Params(rng, sizes)
		text, err := certsql.WithMode(q.SQL(), "certain")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, planVariant{
			query: q.String(), label: "default", text: text, param: params,
			cost:  certsql.Options{Parallelism: 1},
			naive: certsql.Options{Parallelism: 1, NaivePlanner: true},
		})
		if q.String() == "Q4" {
			continue
		}
		out = append(out, planVariant{
			query: q.String(), label: "raw", text: text, param: params,
			cost:  certsql.Options{Parallelism: 1, NoOrSplit: true},
			naive: certsql.Options{Parallelism: 1, NoOrSplit: true, NaivePlanner: true},
		})
	}
	return out
}

// BenchmarkPlannerSpeedup times the certain-answer translations
// Q⁺1–Q⁺4 under the cost-based planner against the paper-faithful
// naive plans (Options.NaivePlanner), on prepared statements so the
// measurement is execution, not planning. The planner's anti-split,
// null-test elimination, fused builds and hash hints turn the
// translations' nested-loop antijoins back into hash joins — the
// entire point of the subsystem; EXPERIMENTS.md records the measured
// ratios. Run with:
//
//	make bench-plan
func BenchmarkPlannerSpeedup(b *testing.B) {
	db, _ := benchPlanDB()
	for _, v := range plannerVariants(b) {
		for _, side := range []struct {
			name string
			opts certsql.Options
		}{{"cost-based", v.cost}, {"naive", v.naive}} {
			b.Run(fmt.Sprintf("%s/%s/%s", v.query, v.label, side.name), func(b *testing.B) {
				stmt, err := db.Prepare(v.text)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := stmt.ExecuteWithOptions(v.param, side.opts)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Stats.CostUnits), "cost-units")
				}
			})
		}
	}
}

// TestPlannerSpeedup is the acceptance check behind the benchmark: on
// at least two of the four appendix queries the cost-based planner
// must run the certain-answer translation at least 1.5× faster than
// the naive planner (best-of-five wall times on prepared statements, a
// query counting if it clears the bar under either translation), while
// returning byte-identical results everywhere. The measured ratios are
// far above the margin — Q3 ~2.6× under the default translation, Q2
// ~3.7× under the raw one (see EXPERIMENTS.md) — so scheduler noise
// cannot flake it.
func TestPlannerSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	db, _ := benchPlanDB()
	best := func(v planVariant, opts certsql.Options) (time.Duration, string) {
		stmt, err := db.Prepare(v.text)
		if err != nil {
			t.Fatal(err)
		}
		min, result := time.Duration(0), ""
		for i := 0; i < 5; i++ {
			start := time.Now()
			res, err := stmt.ExecuteWithOptions(v.param, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", v.query, v.label, err)
			}
			if d := time.Since(start); min == 0 || d < min {
				min = d
			}
			result = res.Table().String()
		}
		return min, result
	}
	fast := map[string]bool{}
	for _, v := range plannerVariants(t) {
		opt, optTable := best(v, v.cost)
		naive, naiveTable := best(v, v.naive)
		if optTable != naiveTable {
			t.Errorf("%s/%s: planner changes result bytes", v.query, v.label)
		}
		ratio := float64(naive) / float64(opt)
		t.Logf("%s/%-7s: naive %v / cost-based %v = %.2fx", v.query, v.label, naive, opt, ratio)
		if ratio >= 1.5 {
			fast[v.query] = true
		}
	}
	if len(fast) < 2 {
		t.Errorf("cost-based planner reached a 1.5x speedup on only %d of 4 appendix queries, want >= 2", len(fast))
	}
}
