// Package qgen generates random test instances for the differential
// tester: random schemas, random incomplete databases over them, and
// random SQL text inside the engine's supported fragment.
//
// Everything is driven by a caller-supplied *rand.Rand, so a case is a
// pure function of its seed — the fuzzing harness (internal/difftest,
// cmd/fuzzcert) records only seeds and regenerates cases on demand.
//
// The generators respect the semantic contracts the certain-answer
// pipeline relies on, mirroring the paper's Section 3 setup:
//
//   - nulls occur only in attributes declared nullable (the nullability
//     simplification removes IS NULL tests on non-nullable columns);
//   - declared primary keys hold: key attributes are non-null and key
//     values are distinct (the key-based simplification rewrites
//     anti-unification-semijoins into set differences under keys);
//   - a null mark is reused only within one column kind (a mark valued
//     in two kinds would be unsatisfiable), and reuse is occasional, so
//     both Codd nulls and repeated marked nulls are exercised;
//   - generated SQL uses only constructs the compiler accepts, with
//     correlation restricted to the immediately enclosing block.
package qgen

import (
	"fmt"
	"math/rand"

	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/value"
)

// Tuning bounds the generated instances. The zero value selects
// defaults small enough for the brute-force certain-answer oracle: the
// valuation space grows exponentially in the null count, so MaxNulls is
// the knob that matters most.
type Tuning struct {
	// MaxRelations bounds the relation count (default 3, min 1).
	MaxRelations int
	// MaxArity bounds attributes per relation (default 3, min 1).
	MaxArity int
	// MaxRowsPerRelation bounds rows per relation (default 3).
	MaxRowsPerRelation int
	// MaxNulls bounds the total marked nulls in the database (default 3).
	MaxNulls int
	// MarkReuseProb is the probability that a new null reuses the
	// previous mark of the same kind (default 0.3).
	MarkReuseProb float64
	// NullFreeProb is the probability that the whole schema is declared
	// NOT NULL (default 0.15). Null-free schemas are the boundary the
	// static analyzer cares about: they make safe verdicts — and hence
	// the evaluation fast path — reachable, so the analyzer-soundness
	// invariant gets exercised.
	NullFreeProb float64
	// MaxDepth bounds subquery nesting (default 2).
	MaxDepth int
	// AggProb is the probability that the top-level block is an
	// aggregate query — GROUP BY / HAVING / aggregate select items
	// (default 0.15). Aggregate queries exercise the standard-evaluation
	// invariants only: the certain translation refuses them (paper §8).
	AggProb float64
	// SetOpProb is the probability of a set operation at each query-
	// expression level (default 0.25).
	SetOpProb float64
	// WithProb is the probability of a WITH clause (default 0.2).
	WithProb float64
	// DecorationProb is the probability of ORDER BY / LIMIT on a
	// non-aggregate top-level query (default 0.1); like aggregation,
	// decorations confine a case to the standard-evaluation checks.
	DecorationProb float64
}

func (t Tuning) withDefaults() Tuning {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&t.MaxRelations, 3)
	def(&t.MaxArity, 3)
	def(&t.MaxRowsPerRelation, 3)
	def(&t.MaxNulls, 3)
	def(&t.MaxDepth, 2)
	deff(&t.MarkReuseProb, 0.3)
	deff(&t.NullFreeProb, 0.15)
	deff(&t.AggProb, 0.15)
	deff(&t.SetOpProb, 0.25)
	deff(&t.WithProb, 0.2)
	deff(&t.DecorationProb, 0.1)
	return t
}

// kindWeights: integers dominate (they join and compare most richly);
// strings exercise LIKE; floats exercise numeric cross-kind comparison;
// bools keep the small-domain corner alive.
var kindChoices = []value.Kind{
	value.KindInt, value.KindInt, value.KindInt, value.KindInt,
	value.KindString, value.KindString,
	value.KindFloat,
	value.KindBool,
}

// attrLetters names attributes globally uniquely across relations, so
// unqualified column references are unambiguous in generated joins.
var attrLetters = "abcdefghijklmnopqrstuvwxyz"

// Schema draws a random schema: 1..MaxRelations relations named r0,
// r1, …, each with 1..MaxArity attributes of random kinds. About a
// third of the relations declare their first attribute as primary key.
func Schema(rng *rand.Rand, tn Tuning) *schema.Schema {
	tn = tn.withDefaults()
	s := schema.New()
	nRel := 1 + rng.Intn(tn.MaxRelations)
	nullFree := rng.Float64() < tn.NullFreeProb
	next := 0
	for ri := 0; ri < nRel; ri++ {
		arity := 1 + rng.Intn(tn.MaxArity)
		rel := &schema.Relation{Name: fmt.Sprintf("r%d", ri)}
		keyed := rng.Float64() < 0.35
		for ai := 0; ai < arity; ai++ {
			attr := schema.Attribute{
				Name: string(attrLetters[next%len(attrLetters)]),
				Type: kindChoices[rng.Intn(len(kindChoices))],
			}
			next++
			if keyed && ai == 0 {
				// Key columns are non-null and must offer enough distinct
				// values; bools cap out at two rows.
				attr.Nullable = false
				if attr.Type == value.KindBool || attr.Type == value.KindFloat {
					attr.Type = value.KindInt
				}
			} else {
				attr.Nullable = !nullFree && rng.Float64() < 0.6
			}
			rel.Attrs = append(rel.Attrs, attr)
		}
		if keyed {
			rel.Key = []int{0}
		}
		s.MustAdd(rel)
	}
	return s
}

// constPool returns the small constant domain for a kind. Small domains
// force value collisions, which is where null semantics bite.
func constPool(kind value.Kind) []value.Value {
	switch kind {
	case value.KindInt:
		return []value.Value{value.Int(0), value.Int(1), value.Int(2), value.Int(3)}
	case value.KindFloat:
		// Exactly representable, so text round trips are bit-identical.
		return []value.Value{value.Float(0.5), value.Float(1.5), value.Float(2.5)}
	case value.KindString:
		return []value.Value{value.Str("x"), value.Str("y"), value.Str("z"), value.Str("xy")}
	case value.KindBool:
		return []value.Value{value.Bool(false), value.Bool(true)}
	default:
		panic(fmt.Sprintf("qgen: no constant pool for kind %s", kind))
	}
}

// Database draws a random incomplete instance of sch: up to
// MaxRowsPerRelation rows per relation, constants from small per-kind
// domains, and up to MaxNulls marked nulls confined to nullable
// attributes. Marks are occasionally repeated within a kind (non-Codd
// nulls); keyed relations get distinct, non-null key values.
func Database(rng *rand.Rand, sch *schema.Schema, tn Tuning) *table.Database {
	tn = tn.withDefaults()
	db := table.NewDatabase(sch)
	// The generator promises nulls only in nullable attributes; strict
	// enforcement turns any violation of that promise into a loud
	// generator bug instead of a silently non-conforming instance.
	db.EnforceNonNull(true)
	nulls := 0
	lastMark := map[value.Kind]value.Value{}
	mkVal := func(attr schema.Attribute) value.Value {
		if attr.Nullable && nulls < tn.MaxNulls && rng.Float64() < 0.25 {
			nulls++
			if prev, ok := lastMark[attr.Type]; ok && rng.Float64() < tn.MarkReuseProb {
				return prev
			}
			mark := db.FreshNull()
			lastMark[attr.Type] = mark
			return mark
		}
		pool := constPool(attr.Type)
		return pool[rng.Intn(len(pool))]
	}
	for _, name := range sch.Names() {
		rel, _ := sch.Relation(name)
		n := rng.Intn(tn.MaxRowsPerRelation + 1)
		for i := 0; i < n; i++ {
			row := make(table.Row, rel.Arity())
			for ai, attr := range rel.Attrs {
				if rel.HasKey() && ai == rel.Key[0] {
					row[ai] = keyValue(attr.Type, i)
					continue
				}
				row[ai] = mkVal(attr)
			}
			if err := db.Insert(name, row); err != nil {
				panic(fmt.Sprintf("qgen: %v", err)) // generator bug, not user error
			}
		}
	}
	return db
}

// keyValue returns the i-th distinct constant of a kind, for primary-key
// positions. Key values deliberately overlap the constant pools (0..3,
// x/y/z…) so keys still join against non-key columns.
func keyValue(kind value.Kind, i int) value.Value {
	switch kind {
	case value.KindInt:
		return value.Int(int64(i))
	case value.KindFloat:
		return value.Float(0.5 + float64(i))
	case value.KindString:
		return value.Str(string(attrLetters[23-i%24])) // x, w, v, …
	case value.KindBool:
		return value.Bool(i%2 == 1) // at most 2 rows can be keyed on a bool
	default:
		panic(fmt.Sprintf("qgen: no key values for kind %s", kind))
	}
}

// Query draws random SQL text over sch. The text always parses and
// compiles (the differential oracle treats a failure to do so as a
// finding in itself). Queries mix joins, set operations, WITH views,
// (NOT) EXISTS and (NOT) IN subqueries with one level of correlation,
// scalar aggregate subqueries, IS NULL tests, LIKE, and — with
// probability AggProb — grouping and aggregation.
func Query(rng *rand.Rand, sch *schema.Schema, tn Tuning) string {
	g := &gen{rng: rng, sch: sch, tn: tn.withDefaults()}
	return g.query().SQL()
}

// Case draws a full differential-test case: schema, database, query.
func Case(rng *rand.Rand, tn Tuning) (*table.Database, string) {
	sch := Schema(rng, tn)
	db := Database(rng, sch, tn)
	return db, Query(rng, sch, tn)
}

// gen carries the generator state for one query.
type gen struct {
	rng     *rand.Rand
	sch     *schema.Schema
	tn      Tuning
	views   []viewInfo
	aliasID int
}

// viewInfo records a WITH view's output signature for later FROM use.
type viewInfo struct {
	name  string
	attrs []colInfo
}

// colInfo is one column visible in a scope: how to reference it and its
// kind.
type colInfo struct {
	qual string // table alias / name to qualify with
	name string
	kind value.Kind
}

func (c colInfo) ref(rng *rand.Rand) sql.ColRef {
	// Qualify about half the time; attribute names are globally unique,
	// so both forms resolve identically.
	if rng.Float64() < 0.5 {
		return sql.ColRef{Qualifier: c.qual, Name: c.name}
	}
	return sql.ColRef{Name: c.name}
}

func (g *gen) query() *sql.Query {
	q := &sql.Query{}
	if g.rng.Float64() < g.tn.WithProb {
		// One WITH view over a base relation; the body may then use it.
		body := g.selectStmt(selOpts{wantArity: 1 + g.rng.Intn(2), depth: 1})
		name := fmt.Sprintf("v%d", len(g.views))
		q.With = append(q.With, sql.CTE{Name: name, Body: body})
		g.views = append(g.views, viewInfo{name: name, attrs: g.outputCols(name, body)})
	}
	q.Body = g.queryExpr(0)
	return q
}

// queryExpr draws a select statement or a set operation over selects of
// matching arity.
func (g *gen) queryExpr(level int) sql.QueryExpr {
	if level < 2 && g.rng.Float64() < g.tn.SetOpProb {
		// Set operations nest on the left only: the grammar has no
		// parenthesized query expressions, so "A OP B OP C" is the one
		// (left-associative) nested form that round-trips.
		arity := 1 + g.rng.Intn(2)
		op := []sql.SetOpKind{sql.OpUnion, sql.OpIntersect, sql.OpExcept}[g.rng.Intn(3)]
		return sql.SetOp{
			Op: op,
			L:  g.setOperand(level, arity),
			R:  g.selectStmt(selOpts{wantArity: arity, depth: g.tn.MaxDepth - 1}),
		}
	}
	opts := selOpts{depth: g.tn.MaxDepth, top: true}
	if g.rng.Float64() < 0.15 {
		opts.star = true
	} else {
		opts.wantArity = 1 + g.rng.Intn(2)
	}
	return g.selectStmt(opts)
}

func (g *gen) setOperand(level int, arity int) sql.QueryExpr {
	if level+1 < 2 && g.rng.Float64() < g.tn.SetOpProb/2 {
		op := []sql.SetOpKind{sql.OpUnion, sql.OpIntersect, sql.OpExcept}[g.rng.Intn(3)]
		return sql.SetOp{
			Op: op,
			L:  g.setOperand(level+1, arity),
			R:  g.selectStmt(selOpts{wantArity: arity, depth: g.tn.MaxDepth - 1}),
		}
	}
	return g.selectStmt(selOpts{wantArity: arity, depth: g.tn.MaxDepth - 1})
}

// selOpts shape one SELECT block.
type selOpts struct {
	wantArity int       // explicit select-item count (ignored when star)
	star      bool      // SELECT *
	depth     int       // remaining subquery depth budget
	outer     []colInfo // columns of the enclosing block (correlation)
	top       bool      // top-level block: aggregation/decoration allowed
}

// selectStmt draws one SELECT-FROM-WHERE block.
func (g *gen) selectStmt(opts selOpts) *sql.SelectStmt {
	s := &sql.SelectStmt{}
	cols := g.fromClause(s)

	if opts.top && g.rng.Float64() < g.tn.AggProb {
		g.aggregate(s, cols)
	} else {
		if opts.star {
			s.Star = true
		} else {
			n := opts.wantArity
			if n <= 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				c := cols[g.rng.Intn(len(cols))]
				s.Items = append(s.Items, sql.SelectItem{Expr: c.ref(g.rng)})
			}
		}
		s.Distinct = g.rng.Float64() < 0.25
		if opts.top && g.rng.Float64() < g.tn.DecorationProb {
			g.decorate(s)
		}
	}

	if g.rng.Float64() < 0.75 {
		s.Where = g.where(cols, opts.outer, opts.depth)
	}
	return s
}

// fromClause draws 1..2 FROM items (base relations or views) and
// returns the visible columns.
func (g *gen) fromClause(s *sql.SelectStmt) []colInfo {
	n := 1
	if g.rng.Float64() < 0.4 {
		n = 2
	}
	var cols []colInfo
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		ref, attrs := g.fromItem()
		if seen[ref.Name()] || g.rng.Float64() < 0.25 {
			g.aliasID++
			ref.Alias = fmt.Sprintf("t%d", g.aliasID)
		}
		seen[ref.Name()] = true
		for _, a := range attrs {
			cols = append(cols, colInfo{qual: ref.Name(), name: a.name, kind: a.kind})
		}
		s.From = append(s.From, ref)
	}
	return cols
}

func (g *gen) fromItem() (sql.TableRef, []colInfo) {
	names := g.sch.Names()
	// Views are rarer FROM items than base relations.
	if len(g.views) > 0 && g.rng.Float64() < 0.3 {
		v := g.views[g.rng.Intn(len(g.views))]
		return sql.TableRef{Table: v.name}, v.attrs
	}
	name := names[g.rng.Intn(len(names))]
	rel, _ := g.sch.Relation(name)
	attrs := make([]colInfo, rel.Arity())
	for i, a := range rel.Attrs {
		attrs[i] = colInfo{qual: name, name: a.Name, kind: a.Type}
	}
	return sql.TableRef{Table: name}, attrs
}

// outputCols computes the column signature a view exposes: the select
// items' names (views are generated with plain column items).
func (g *gen) outputCols(viewName string, body *sql.SelectStmt) []colInfo {
	var out []colInfo
	for _, item := range body.Items {
		ref := item.Expr.(sql.ColRef)
		kind := value.KindInt
		for _, name := range g.sch.Names() {
			rel, _ := g.sch.Relation(name)
			if i := rel.AttrIndex(ref.Name); i >= 0 {
				kind = rel.Attrs[i].Type
				break
			}
		}
		out = append(out, colInfo{qual: viewName, name: ref.Name, kind: kind})
	}
	return out
}

// aggregate turns s into a GROUP BY query over cols.
func (g *gen) aggregate(s *sql.SelectStmt, cols []colInfo) {
	nKeys := 1 + g.rng.Intn(2)
	if nKeys > len(cols) {
		nKeys = len(cols)
	}
	perm := g.rng.Perm(len(cols))[:nKeys]
	for _, i := range perm {
		ref := cols[i].ref(g.rng)
		s.GroupBy = append(s.GroupBy, ref)
		s.Items = append(s.Items, sql.SelectItem{Expr: ref})
	}
	nAggs := 1 + g.rng.Intn(2)
	for i := 0; i < nAggs; i++ {
		s.Items = append(s.Items, sql.SelectItem{Expr: g.aggCall(cols)})
	}
	if g.rng.Float64() < 0.3 {
		s.Having = sql.CmpExpr{
			Op: cmpOps[g.rng.Intn(len(cmpOps))],
			L:  sql.AggCall{Func: "COUNT"},
			R:  sql.NumLit{Text: fmt.Sprintf("%d", g.rng.Intn(3))},
		}
	}
	if g.rng.Float64() < 0.4 {
		s.OrderBy = append(s.OrderBy, sql.OrderItem{Pos: 1 + g.rng.Intn(len(s.Items)), Desc: g.rng.Intn(2) == 0})
	}
}

// aggCall draws an aggregate call valid for the available columns.
func (g *gen) aggCall(cols []colInfo) sql.AggCall {
	if g.rng.Float64() < 0.3 {
		return sql.AggCall{Func: "COUNT"} // COUNT(*)
	}
	// SUM/AVG need numeric input; MIN/MAX work on any ordered kind.
	var numeric []colInfo
	for _, c := range cols {
		if c.kind == value.KindInt || c.kind == value.KindFloat {
			numeric = append(numeric, c)
		}
	}
	fns := []string{"MIN", "MAX", "COUNT"}
	pool := cols
	if len(numeric) > 0 && g.rng.Float64() < 0.5 {
		fns = []string{"SUM", "AVG"}
		pool = numeric
	}
	c := pool[g.rng.Intn(len(pool))]
	return sql.AggCall{Func: fns[g.rng.Intn(len(fns))], Arg: c.ref(g.rng)}
}

// decorate adds ORDER BY (by output position, always unambiguous) and
// sometimes LIMIT.
func (g *gen) decorate(s *sql.SelectStmt) {
	n := len(s.Items)
	if s.Star || n == 0 {
		return
	}
	s.OrderBy = append(s.OrderBy, sql.OrderItem{Pos: 1 + g.rng.Intn(n), Desc: g.rng.Intn(2) == 0})
	if g.rng.Float64() < 0.5 {
		lim := 1 + g.rng.Intn(3)
		s.Limit = &lim
	}
}

var cmpOps = []string{"=", "<>", "<", "<=", ">", ">="}

// where draws a WHERE clause: a conjunction of 1..3 conjuncts, some of
// which may be subquery conjuncts (the only positions the compiler
// accepts them in).
func (g *gen) where(cols, outer []colInfo, depth int) sql.Expr {
	n := 1 + g.rng.Intn(3)
	var out sql.Expr
	for i := 0; i < n; i++ {
		c := g.conjunct(cols, outer, depth)
		if out == nil {
			out = c
		} else {
			out = sql.AndExpr{L: out, R: c}
		}
	}
	return out
}

func (g *gen) conjunct(cols, outer []colInfo, depth int) sql.Expr {
	if depth > 0 {
		switch {
		case g.rng.Float64() < 0.3:
			return g.existsConjunct(cols, depth)
		case g.rng.Float64() < 0.15:
			return g.inSubConjunct(cols, depth)
		}
	}
	return g.cond(cols, outer, 2)
}

// existsConjunct draws [NOT] EXISTS (SELECT * FROM …), usually
// correlated with the enclosing block through one comparison.
func (g *gen) existsConjunct(cols []colInfo, depth int) sql.Expr {
	sub := g.selectStmt(selOpts{star: true, depth: depth - 1, outer: cols})
	return sql.ExistsExpr{
		Sub:     &sql.Query{Body: sub},
		Negated: g.rng.Intn(2) == 0,
	}
}

// inSubConjunct draws E [NOT] IN (SELECT col FROM …) with matching
// kinds.
func (g *gen) inSubConjunct(cols []colInfo, depth int) sql.Expr {
	lhs := cols[g.rng.Intn(len(cols))]
	sub := &sql.SelectStmt{}
	innerCols := g.fromClause(sub)
	// Select one inner column of the lhs kind; fall back to any column
	// (cross-kind IN is legal — comparisons just never hold).
	pick := innerCols[g.rng.Intn(len(innerCols))]
	for _, c := range innerCols {
		if c.kind == lhs.kind {
			pick = c
			break
		}
	}
	sub.Items = []sql.SelectItem{{Expr: pick.ref(g.rng)}}
	if g.rng.Float64() < 0.5 {
		sub.Where = g.where(innerCols, cols, depth-1)
	}
	return sql.InExpr{
		E:       lhs.ref(g.rng),
		Sub:     &sql.Query{Body: sub},
		Negated: g.rng.Intn(2) == 0,
	}
}

// cond draws a plain (subquery-free, except scalar aggregates)
// condition over cols, with the enclosing block's columns available for
// one level of correlation.
func (g *gen) cond(cols, outer []colInfo, depth int) sql.Expr {
	if depth > 0 && g.rng.Float64() < 0.35 {
		l := g.cond(cols, outer, depth-1)
		r := g.cond(cols, outer, depth-1)
		switch g.rng.Intn(3) {
		case 0:
			return sql.AndExpr{L: l, R: r}
		case 1:
			return sql.OrExpr{L: l, R: r}
		default:
			return sql.NotExpr{E: l}
		}
	}
	c := cols[g.rng.Intn(len(cols))]
	roll := g.rng.Float64()
	switch {
	case roll < 0.12:
		return sql.IsNullExpr{E: c.ref(g.rng), Negated: g.rng.Intn(2) == 0}
	case roll < 0.24 && (c.kind == value.KindInt || c.kind == value.KindString):
		// IN value list.
		pool := constPool(c.kind)
		n := 1 + g.rng.Intn(2)
		list := make([]sql.Expr, n)
		for i := range list {
			list[i] = litExpr(pool[g.rng.Intn(len(pool))])
		}
		return sql.InExpr{E: c.ref(g.rng), List: list, Negated: g.rng.Intn(2) == 0}
	case roll < 0.34 && c.kind == value.KindString:
		pats := []string{"%", "x%", "%y", "_", "%x%"}
		return sql.LikeExpr{
			L:       c.ref(g.rng),
			Pattern: sql.StrLit{Text: pats[g.rng.Intn(len(pats))]},
			Negated: g.rng.Intn(2) == 0,
		}
	case roll < 0.42 && len(outer) > 0:
		// Correlation: compare with an enclosing-block column of the
		// same kind when one exists.
		for _, o := range shuffled(g.rng, outer) {
			if o.kind == c.kind {
				return sql.CmpExpr{Op: cmpOps[g.rng.Intn(len(cmpOps))], L: c.ref(g.rng), R: o.ref(g.rng)}
			}
		}
		fallthrough
	case roll < 0.52 && (c.kind == value.KindInt || c.kind == value.KindFloat):
		// Scalar aggregate subquery operand (uncorrelated; the paper
		// treats these as black-box constants).
		if depth > 0 && g.rng.Float64() < 0.3 {
			return sql.CmpExpr{
				Op: cmpOps[g.rng.Intn(len(cmpOps))],
				L:  c.ref(g.rng),
				R:  sql.SubqueryExpr{Q: g.scalarAggQuery()},
			}
		}
		fallthrough
	default:
		// Plain comparison against a same-kind column or a literal.
		if g.rng.Float64() < 0.5 {
			for _, o := range shuffled(g.rng, cols) {
				if o.kind == c.kind {
					return sql.CmpExpr{Op: cmpOps[g.rng.Intn(len(cmpOps))], L: c.ref(g.rng), R: o.ref(g.rng)}
				}
			}
		}
		if c.kind == value.KindBool {
			// No boolean literals in the dialect; test via IS NULL.
			return sql.IsNullExpr{E: c.ref(g.rng), Negated: g.rng.Intn(2) == 0}
		}
		pool := constPool(c.kind)
		return sql.CmpExpr{
			Op: cmpOps[g.rng.Intn(len(cmpOps))],
			L:  c.ref(g.rng),
			R:  litExpr(pool[g.rng.Intn(len(pool))]),
		}
	}
}

// scalarAggQuery draws an uncorrelated scalar aggregate subquery over a
// numeric column (or COUNT(*)) of a random relation.
func (g *gen) scalarAggQuery() *sql.Query {
	names := g.sch.Names()
	name := names[g.rng.Intn(len(names))]
	rel, _ := g.sch.Relation(name)
	sub := &sql.SelectStmt{From: []sql.TableRef{{Table: name}}}
	var numeric []colInfo
	cols := make([]colInfo, rel.Arity())
	for i, a := range rel.Attrs {
		cols[i] = colInfo{qual: name, name: a.Name, kind: a.Type}
		if a.Type == value.KindInt || a.Type == value.KindFloat {
			numeric = append(numeric, cols[i])
		}
	}
	if len(numeric) == 0 || g.rng.Float64() < 0.3 {
		sub.Items = []sql.SelectItem{{Expr: sql.AggCall{Func: "COUNT"}}}
	} else {
		c := numeric[g.rng.Intn(len(numeric))]
		fn := []string{"MIN", "MAX", "SUM", "AVG"}[g.rng.Intn(4)]
		sub.Items = []sql.SelectItem{{Expr: sql.AggCall{Func: fn, Arg: c.ref(g.rng)}}}
	}
	if g.rng.Float64() < 0.4 {
		sub.Where = g.cond(cols, nil, 1)
	}
	return &sql.Query{Body: sub}
}

// litExpr renders a constant value as a literal AST node.
func litExpr(v value.Value) sql.Expr {
	switch v.Kind() {
	case value.KindInt:
		return sql.NumLit{Text: fmt.Sprintf("%d", v.AsInt())}
	case value.KindFloat:
		return sql.NumLit{Text: fmt.Sprintf("%g", v.AsFloat())}
	case value.KindString:
		return sql.StrLit{Text: v.AsString()}
	default:
		panic(fmt.Sprintf("qgen: no literal syntax for kind %s", v.Kind()))
	}
}

func shuffled(rng *rand.Rand, cols []colInfo) []colInfo {
	out := make([]colInfo, len(cols))
	for i, p := range rng.Perm(len(cols)) {
		out[i] = cols[p]
	}
	return out
}
