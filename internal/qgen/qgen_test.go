package qgen_test

import (
	"math/rand"
	"testing"

	"certsql/internal/compile"
	"certsql/internal/qgen"
	"certsql/internal/sql"
	"certsql/internal/value"
)

// TestGeneratedSQLCompiles is the generator's core contract: every
// generated query parses, renders stably, and compiles against its
// schema.
func TestGeneratedSQLCompiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		sch := qgen.Schema(rng, qgen.Tuning{})
		text := qgen.Query(rng, sch, qgen.Tuning{})
		q, err := sql.Parse(text)
		if err != nil {
			t.Fatalf("iter %d: generated SQL does not parse: %v\n%s", i, err, text)
		}
		if rendered := q.SQL(); rendered != text {
			// The generator emits via the AST renderer, so the text must
			// already be in canonical form.
			t.Fatalf("iter %d: generated SQL not canonical:\ngen:      %s\nrendered: %s", i, text, rendered)
		}
		if _, err := compile.Compile(q, sch, nil); err != nil {
			t.Fatalf("iter %d: generated SQL does not compile: %v\n%s", i, err, text)
		}
	}
}

// TestGeneratedDatabaseContracts checks the semantic contracts the
// pipeline relies on: nulls only in nullable columns, keys unique and
// non-null, null marks consistent within one kind.
func TestGeneratedDatabaseContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		sch := qgen.Schema(rng, qgen.Tuning{})
		db := qgen.Database(rng, sch, qgen.Tuning{})
		markKind := map[int64]value.Kind{}
		for _, name := range sch.Names() {
			rel, _ := sch.Relation(name)
			tab := db.MustTable(name)
			keys := map[string]bool{}
			for _, row := range tab.Rows() {
				for ai, v := range row {
					if !v.IsNull() {
						continue
					}
					if !rel.Attrs[ai].Nullable {
						t.Fatalf("iter %d: null in non-nullable %s.%s", i, name, rel.Attrs[ai].Name)
					}
					want := rel.Attrs[ai].Type
					if prev, ok := markKind[v.NullID()]; ok && prev != want {
						t.Fatalf("iter %d: mark ⊥%d reused across kinds %s and %s", i, v.NullID(), prev, want)
					}
					markKind[v.NullID()] = want
				}
				if rel.HasKey() {
					kv := row[rel.Key[0]]
					if kv.IsNull() {
						t.Fatalf("iter %d: null key in %s", i, name)
					}
					if keys[kv.String()] {
						t.Fatalf("iter %d: duplicate key %s in %s", i, kv, name)
					}
					keys[kv.String()] = true
				}
			}
		}
		if got, want := db.NullCount(), 3; got > want {
			t.Fatalf("iter %d: %d nulls exceed the default budget %d", i, got, want)
		}
	}
}

// TestDeterministicFromSeed: a case is a pure function of its seed.
func TestDeterministicFromSeed(t *testing.T) {
	gen := func() (string, string) {
		rng := rand.New(rand.NewSource(99))
		db, q := qgen.Case(rng, qgen.Tuning{})
		return db.MustTable(db.Schema.Names()[0]).String(), q
	}
	d1, q1 := gen()
	d2, q2 := gen()
	if d1 != d2 || q1 != q2 {
		t.Fatal("the same seed must generate the same case")
	}
}
