package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull reports that a request was rejected at admission: every
// execution slot was busy and the bounded wait queue was already at
// capacity. The HTTP layer maps it to 429 Too Many Requests — shedding
// load at the door is what keeps tail latency bounded under overload.
var ErrQueueFull = errors.New("server: admission queue full")

// admission is the concurrency gate in front of query evaluation: at
// most `slots` queries evaluate at once, at most `maxQueue` more wait
// for a slot, and everything beyond that is rejected immediately with
// ErrQueueFull. Waiting is cancellation-aware — a caller whose context
// expires leaves the queue with the context's error, so the guard
// taxonomy (408/499) applies to queued requests too.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
}

// newAdmission sizes the gate; both arguments must be positive.
func newAdmission(slots, maxQueue int) *admission {
	a := &admission{slots: make(chan struct{}, slots), maxQueue: int64(maxQueue)}
	for i := 0; i < slots; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire takes an execution slot, waiting in the bounded queue when
// none is free. It returns the release function on success; the caller
// must invoke it exactly once.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	// Fast path: a slot is free, skip the queue accounting entirely.
	select {
	case <-a.slots:
		return a.releaseFunc(), nil
	default:
	}
	// Slow path: join the bounded wait queue. The increment-then-check
	// pattern over-admits by at most the number of concurrent arrivals
	// in the race window, which is the usual semaphore tradeoff — the
	// bound is enforced exactly against the post-increment count.
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return nil, ErrQueueFull
	}
	defer a.waiting.Add(-1)
	select {
	case <-a.slots:
		return a.releaseFunc(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) releaseFunc() func() {
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			a.slots <- struct{}{}
		}
	}
}

// queueDepth reports how many requests are currently waiting for a
// slot, for the /metrics gauge.
func (a *admission) queueDepth() int64 { return a.waiting.Load() }

// loaded reports that the gate is saturated — every execution slot is
// held, or requests are waiting for one. Shard-aware admission uses it
// to trade intra-query fan-out for inter-query concurrency; the read
// is racy by design, a heuristic snapshot, never a correctness gate.
func (a *admission) loaded() bool { return len(a.slots) == 0 || a.waiting.Load() > 0 }

// inFlight reports how many execution slots are currently held.
func (a *admission) inFlight() int64 { return int64(cap(a.slots) - len(a.slots)) }
