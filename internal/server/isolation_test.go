package server

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"certsql/internal/server/client"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// TestSnapshotIsolationUnderConcurrentLoads is the serving-layer
// counterpart of the table.Store race tests: readers running the
// paper's Q1–Q4 plus an invariant probe while a writer republished the
// catalog must each observe exactly one snapshot — never a torn mix of
// two versions — and versions must be monotone per reader.
//
// The checkable invariant: the writer appends a nation row *before* the
// region row that references it, in separate publishes. Any snapshot
// therefore satisfies "every synthetic region has its nation", and a
// reader evaluating the anti-join inside one query would only see a
// violation if its evaluation straddled two snapshots. Run with -race.
func TestSnapshotIsolationUnderConcurrentLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency soak")
	}
	ts, _ := newTestServer(t, Config{MaxConcurrent: 8, MaxQueue: 64})
	ctx := context.Background()

	const (
		writers  = 16   // publishes by the writer goroutine
		readers  = 4    // concurrent reader goroutines
		baseKey  = 1000 // synthetic keys live above the generated data
		probeSQL = `SELECT CERTAIN r.r_regionkey
FROM region r
WHERE r.r_regionkey >= 1000
  AND NOT EXISTS (SELECT * FROM nation n WHERE n.n_regionkey = r.r_regionkey)`
	)

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers*8)

	// Writer: nation first, then the region row referencing it, each
	// publish a separate snapshot version.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
		for i := 0; i < writers; i++ {
			key := int64(baseKey + i)
			if _, err := w.Load(ctx, "nation", [][]value.Value{
				{value.Int(key), value.Str("N"), value.Int(key), value.Str("")},
			}); err != nil {
				errs <- err
				return
			}
			if _, err := w.Load(ctx, "region", [][]value.Value{
				{value.Int(key), value.Str("R"), value.Str("")},
			}); err != nil {
				errs <- err
				return
			}
		}
	}()

	sz := tpch.Config{ScaleFactor: 0.001}.Sizes()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
			rng := rand.New(rand.NewSource(int64(r)))
			var lastVersion uint64
			for i := 0; i < 12; i++ {
				// The invariant probe: must always be empty.
				res, err := c.Query(ctx, probeSQL, nil, "", client.QueryOptions{})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 0 {
					t.Errorf("reader %d: snapshot tear: region rows without nations: %v",
						r, res.SortedStrings())
				}
				if res.Version < lastVersion {
					t.Errorf("reader %d: version went backwards: %d after %d", r, res.Version, lastVersion)
				}
				lastVersion = res.Version

				// One of the paper's queries, exercising the real
				// translation pipeline and plan cache under the race.
				q := tpch.AllQueries[i%len(tpch.AllQueries)]
				wire, err := c.Query(ctx, q.SQL(), q.Params(rng, sz), "certain", client.QueryOptions{})
				if err != nil {
					errs <- err
					return
				}
				if wire.Version < lastVersion {
					t.Errorf("reader %d: version went backwards on %s", r, q)
				}
				lastVersion = wire.Version
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
