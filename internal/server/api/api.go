// Package api defines the JSON wire format of the certsqld serving
// layer: request and response shapes for the /v1 endpoints and the
// value codec shared by the server and the typed client.
//
// Database entries travel as JSON scalars where JSON has a faithful
// representation, and as small tagged objects where it does not:
//
//	int, float  -> JSON number
//	string      -> JSON string
//	bool        -> JSON bool
//	date        -> {"date": "YYYY-MM-DD"}
//	marked null -> {"null": <mark>}
//
// Marked nulls keep their marks across the wire, so a client can
// observe that two positions hold the *same* unknown value — the
// paper's marked-null model survives serialization. Decoding accepts
// json.Number (the client and server both decode with UseNumber, so
// 64-bit integers round-trip exactly) as well as float64 for callers
// using plain json.Unmarshal.
package api

import (
	"encoding/json"
	"fmt"
	"strings"

	"certsql/internal/compile"
	"certsql/internal/value"
)

// QueryRequest is the body of POST /v1/query: one ad-hoc statement.
type QueryRequest struct {
	// SQL is the statement text; SELECT CERTAIN / SELECT POSSIBLE are
	// honored exactly as in the library API.
	SQL string `json:"sql"`
	// Params binds $name parameters (wire-encoded values; lists for
	// IN-list parameters).
	Params map[string]any `json:"params,omitempty"`
	// Mode optionally forces the evaluation mode ("certain",
	// "possible", "standard"), overriding the keyword in the text.
	Mode string `json:"mode,omitempty"`
	// Session names the session catalog to run against; empty means
	// the default session.
	Session string `json:"session,omitempty"`
	// Options carries per-request governance overrides.
	Options QueryOptions `json:"options,omitempty"`
}

// QueryOptions are the per-request governance and executor overrides.
// Zero values inherit the server's configured defaults; the server
// clamps every budget to its own ceiling, so a request can tighten but
// never loosen the server's limits.
type QueryOptions struct {
	// MaxRows bounds materialized intermediate results, in rows.
	MaxRows int `json:"max_rows,omitempty"`
	// MaxCostUnits bounds cumulative elementary row operations.
	MaxCostUnits int64 `json:"max_cost_units,omitempty"`
	// MaxMemBytes bounds estimated bytes of materialized results.
	MaxMemBytes int64 `json:"max_mem_bytes,omitempty"`
	// TimeoutMillis bounds wall-clock evaluation time.
	TimeoutMillis int64 `json:"timeout_millis,omitempty"`
	// Degrade opts into the degrade-to-certain ladder for
	// potential-answer queries that trip a budget.
	Degrade bool `json:"degrade,omitempty"`
}

// QueryResponse is the result of /v1/query and /v1/execute.
type QueryResponse struct {
	Columns []string `json:"columns"`
	// Rows are wire-encoded result rows (see the package comment).
	Rows [][]any `json:"rows"`
	// Certain / Possible / Degraded mirror certsql.Result.
	Certain  bool      `json:"certain,omitempty"`
	Possible bool      `json:"possible,omitempty"`
	Degraded bool      `json:"degraded,omitempty"`
	Warnings []Warning `json:"warnings,omitempty"`
	// Version is the catalog snapshot version the query ran against.
	Version uint64 `json:"version"`
	Stats   Stats  `json:"stats"`
}

// Warning mirrors certsql.Warning.
type Warning struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stats carries the execution counters a client can dispatch on.
type Stats struct {
	CostUnits       int64 `json:"cost_units,omitempty"`
	NestedLoopJoins int   `json:"nested_loop_joins,omitempty"`
	HashJoins       int   `json:"hash_joins,omitempty"`
	ShortCircuits   int   `json:"short_circuits,omitempty"`
	CacheHits       int   `json:"cache_hits,omitempty"`
	FastPathHits    int   `json:"fast_path_hits,omitempty"`
	PlanCacheHits   int   `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses int   `json:"plan_cache_misses,omitempty"`
	// MemHighWaterBytes is the execution's peak estimated intermediate
	// memory, as charged to the request's resource governor.
	MemHighWaterBytes int64 `json:"mem_highwater_bytes,omitempty"`
}

// PrepareRequest is the body of POST /v1/prepare.
type PrepareRequest struct {
	SQL string `json:"sql"`
	// Mode optionally forces the evaluation mode before preparing.
	Mode    string `json:"mode,omitempty"`
	Session string `json:"session,omitempty"`
}

// PrepareResponse names the server-side prepared statement.
type PrepareResponse struct {
	// ID is the handle /v1/execute takes.
	ID string `json:"id"`
	// SQL is the canonical statement text the server prepared.
	SQL string `json:"sql"`
	// Mode is the evaluation mode baked into the statement.
	Mode string `json:"mode"`
	// Explain is the cost-based planner's EXPLAIN of the statement as
	// prepared (no parameter binding), against the catalog snapshot
	// current at prepare time. Empty for statements that cannot be
	// planned without parameters; executions against later snapshots
	// may plan differently.
	Explain string `json:"explain,omitempty"`
}

// ExecuteRequest is the body of POST /v1/execute.
type ExecuteRequest struct {
	ID      string         `json:"id"`
	Params  map[string]any `json:"params,omitempty"`
	Session string         `json:"session,omitempty"`
	Options QueryOptions   `json:"options,omitempty"`
}

// LoadRequest is the body of POST /v1/load: rows to append to one
// table of the session catalog. The load publishes a new snapshot —
// concurrent readers keep their version; cached plans for older
// versions miss from then on.
type LoadRequest struct {
	Table   string  `json:"table"`
	Rows    [][]any `json:"rows"`
	Session string  `json:"session,omitempty"`
}

// LoadResponse reports the snapshot version the load published.
type LoadResponse struct {
	Version uint64 `json:"version"`
	Rows    int    `json:"rows"`
}

// CatalogResponse describes the session catalog at its current version.
type CatalogResponse struct {
	Version uint64      `json:"version"`
	Tables  []TableInfo `json:"tables"`
}

// TableInfo describes one relation.
type TableInfo struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"`
	Columns []ColumnInfo `json:"columns"`
}

// ColumnInfo describes one attribute, including the planner's current
// statistics for it.
type ColumnInfo struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Nullable bool   `json:"nullable"`
	// NullRate is the fraction of rows whose value is a marked null
	// (0 on an empty table).
	NullRate float64 `json:"null_rate"`
	// Distinct estimates the number of distinct non-null values;
	// DistinctExact reports whether it is an exact count rather than a
	// sketch estimate.
	Distinct      int64 `json:"distinct"`
	DistinctExact bool  `json:"distinct_exact"`
}

// Error is the body of every non-2xx response.
type Error struct {
	// Status is the HTTP status the server sent.
	Status int `json:"status"`
	// Code is the machine-readable cause ("queue-full", "deadline",
	// "canceled", "untranslatable", "budget", "mem-budget", …).
	Code string `json:"code"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("certsqld: %s (http %d): %s", e.Code, e.Status, e.Message)
}

// EncodeValue renders one database value in the wire encoding.
func EncodeValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return map[string]any{"null": v.NullID()}
	case value.KindDate:
		return map[string]any{"date": v.String()}
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		return v.AsBool()
	default:
		return v.String()
	}
}

// EncodeRow renders one result row.
func EncodeRow(row []value.Value) []any {
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = EncodeValue(v)
	}
	return out
}

// EncodeRows renders a whole result.
func EncodeRows(rows [][]value.Value) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		out[i] = EncodeRow(r)
	}
	return out
}

// DecodeValue parses one wire-encoded value. It accepts the output of
// json.Unmarshal both with and without UseNumber; integers decoded as
// float64 are accepted when exact.
func DecodeValue(raw any) (value.Value, error) {
	switch raw := raw.(type) {
	case nil:
		return value.Value{}, fmt.Errorf("api: bare JSON null is not a value; marked nulls are {\"null\": mark}")
	case bool:
		return value.Bool(raw), nil
	case string:
		return value.Str(raw), nil
	case json.Number:
		return decodeNumber(raw)
	case float64:
		if i := int64(raw); float64(i) == raw && !strings.ContainsAny(fmt.Sprint(raw), ".eE") {
			return value.Int(i), nil
		}
		return value.Float(raw), nil
	case map[string]any:
		if len(raw) != 1 {
			return value.Value{}, fmt.Errorf("api: tagged value must have exactly one key, got %d", len(raw))
		}
		if d, ok := raw["date"]; ok {
			s, ok := d.(string)
			if !ok {
				return value.Value{}, fmt.Errorf("api: date tag wants a string, got %T", d)
			}
			v, err := value.ParseDate(s)
			if err != nil {
				return value.Value{}, fmt.Errorf("api: bad date %q: %v", s, err)
			}
			return v, nil
		}
		if n, ok := raw["null"]; ok {
			id, err := decodeInt(n)
			if err != nil {
				return value.Value{}, fmt.Errorf("api: bad null mark: %v", err)
			}
			return value.Null(id), nil
		}
		return value.Value{}, fmt.Errorf("api: unknown value tag in %v", raw)
	default:
		return value.Value{}, fmt.Errorf("api: unsupported wire value of type %T", raw)
	}
}

func decodeNumber(n json.Number) (value.Value, error) {
	if !strings.ContainsAny(n.String(), ".eE") {
		if i, err := n.Int64(); err == nil {
			return value.Int(i), nil
		}
	}
	f, err := n.Float64()
	if err != nil {
		return value.Value{}, fmt.Errorf("api: bad number %q: %v", n, err)
	}
	return value.Float(f), nil
}

func decodeInt(raw any) (int64, error) {
	switch raw := raw.(type) {
	case json.Number:
		return raw.Int64()
	case float64:
		i := int64(raw)
		if float64(i) != raw {
			return 0, fmt.Errorf("not an integer: %v", raw)
		}
		return i, nil
	default:
		return 0, fmt.Errorf("not a number: %T", raw)
	}
}

// DecodeRow parses one wire-encoded row.
func DecodeRow(raw []any) ([]value.Value, error) {
	out := make([]value.Value, len(raw))
	for i, rv := range raw {
		v, err := DecodeValue(rv)
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// DecodeParams turns wire-encoded parameters into a binding the
// compiler accepts. Scalars decode to values; JSON arrays decode to
// IN-list bindings.
func DecodeParams(raw map[string]any) (compile.Params, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(compile.Params, len(raw))
	for name, rv := range raw {
		if list, ok := rv.([]any); ok {
			vals := make([]value.Value, len(list))
			for i, item := range list {
				v, err := DecodeValue(item)
				if err != nil {
					return nil, fmt.Errorf("api: parameter $%s[%d]: %w", name, i, err)
				}
				vals[i] = v
			}
			out[name] = vals
			continue
		}
		v, err := DecodeValue(rv)
		if err != nil {
			return nil, fmt.Errorf("api: parameter $%s: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

// EncodeParams renders a compiler parameter binding in the wire
// encoding; it accepts every kind compile.Params documents.
func EncodeParams(params compile.Params) (map[string]any, error) {
	if len(params) == 0 {
		return nil, nil
	}
	out := make(map[string]any, len(params))
	for name, raw := range params {
		switch raw := raw.(type) {
		case value.Value:
			out[name] = EncodeValue(raw)
		case []value.Value:
			list := make([]any, len(raw))
			for i, v := range raw {
				list[i] = EncodeValue(v)
			}
			out[name] = list
		case string, bool, int64, float64:
			out[name] = raw
		case int:
			out[name] = int64(raw)
		case []int64:
			list := make([]any, len(raw))
			for i, v := range raw {
				list[i] = v
			}
			out[name] = list
		case []int:
			list := make([]any, len(raw))
			for i, v := range raw {
				list[i] = int64(v)
			}
			out[name] = list
		case []string:
			list := make([]any, len(raw))
			for i, v := range raw {
				list[i] = v
			}
			out[name] = list
		default:
			return nil, fmt.Errorf("api: parameter $%s has unsupported type %T", name, raw)
		}
	}
	return out, nil
}
