package api

import (
	"bytes"
	"encoding/json"
	"testing"

	"certsql/internal/compile"
	"certsql/internal/value"
)

// TestValueRoundTrip pushes every value kind through encode → JSON →
// decode and demands exact identity, including null marks and int64
// extremes (the reason both sides decode with UseNumber).
func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Int(0),
		value.Int(-7),
		value.Int(1<<62 + 12345), // would lose precision through float64
		value.Float(3.25),
		value.Float(-0.5),
		value.Str(""),
		value.Str("FRANCE"),
		value.Str("quotes \" and unicode ⊥"),
		value.Bool(true),
		value.Bool(false),
		value.MustDate("1995-03-15"),
		value.Null(1),
		value.Null(42),
	}
	// Serialize through real JSON, as the wire does.
	payload, err := json.Marshal(EncodeRow(vals))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.UseNumber()
	var raw []any
	if err := dec.Decode(&raw); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got, err := DecodeRow(raw)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values, want %d", len(got), len(vals))
	}
	for i, want := range vals {
		if got[i].Kind() != want.Kind() || got[i].String() != want.String() {
			t.Errorf("value %d: got %s (%v), want %s (%v)", i, got[i], got[i].Kind(), want, want.Kind())
		}
	}
	// Marks must survive: same mark = same unknown.
	if got[11].NullID() != 1 || got[12].NullID() != 42 {
		t.Errorf("null marks did not survive: %d, %d", got[11].NullID(), got[12].NullID())
	}
}

// TestValueRoundTripWithoutUseNumber covers callers using plain
// json.Unmarshal, where numbers arrive as float64.
func TestValueRoundTripWithoutUseNumber(t *testing.T) {
	payload, err := json.Marshal(EncodeRow([]value.Value{value.Int(77), value.Float(1.5)}))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var raw []any
	if err := json.Unmarshal(payload, &raw); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got, err := DecodeRow(raw)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if got[0].Kind() != value.KindInt || got[0].AsInt() != 77 {
		t.Errorf("int via float64: got %v %s", got[0].Kind(), got[0])
	}
	if got[1].Kind() != value.KindFloat || got[1].AsFloat() != 1.5 {
		t.Errorf("float via float64: got %v %s", got[1].Kind(), got[1])
	}
}

// TestDecodeValueRejections: bare JSON null, multi-key tags and unknown
// tags are errors, never silently coerced.
func TestDecodeValueRejections(t *testing.T) {
	bad := []any{
		nil, // bare null is not a marked null
		map[string]any{"null": json.Number("1"), "date": "1995-01-01"},
		map[string]any{"mystery": json.Number("1")},
		map[string]any{"date": json.Number("3")},
		map[string]any{"null": "not-a-number"},
		[]byte("x"),
	}
	for i, raw := range bad {
		if _, err := DecodeValue(raw); err == nil {
			t.Errorf("case %d (%v): want error, got none", i, raw)
		}
	}
}

// TestParamsRoundTrip: scalar and IN-list parameters survive the wire
// in shapes the compiler accepts.
func TestParamsRoundTrip(t *testing.T) {
	in := compile.Params{
		"nation":  value.Str("FRANCE"),
		"size":    value.Int(15),
		"date":    value.MustDate("1994-01-01"),
		"keys":    []value.Value{value.Int(1), value.Int(2)},
		"plain":   "GERMANY", // raw Go scalars are accepted too
		"n":       7,
		"ids":     []int{3, 4},
		"names":   []string{"a", "b"},
		"ratio":   0.5,
		"enabled": true,
	}
	wire, err := EncodeParams(in)
	if err != nil {
		t.Fatalf("EncodeParams: %v", err)
	}
	payload, err := json.Marshal(wire)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.UseNumber()
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	out, err := DecodeParams(raw)
	if err != nil {
		t.Fatalf("DecodeParams: %v", err)
	}
	if v := out["nation"].(value.Value); v.AsString() != "FRANCE" {
		t.Errorf("nation: %v", v)
	}
	if v := out["size"].(value.Value); v.AsInt() != 15 {
		t.Errorf("size: %v", v)
	}
	if v := out["date"].(value.Value); v.Kind() != value.KindDate || v.String() != "1994-01-01" {
		t.Errorf("date: %v", v)
	}
	if list := out["keys"].([]value.Value); len(list) != 2 || list[1].AsInt() != 2 {
		t.Errorf("keys: %v", list)
	}
	if list := out["ids"].([]value.Value); len(list) != 2 || list[0].AsInt() != 3 {
		t.Errorf("ids: %v", list)
	}
	if list := out["names"].([]value.Value); len(list) != 2 || list[1].AsString() != "b" {
		t.Errorf("names: %v", list)
	}
	if v := out["ratio"].(value.Value); v.AsFloat() != 0.5 {
		t.Errorf("ratio: %v", v)
	}
	if v := out["enabled"].(value.Value); !v.AsBool() {
		t.Errorf("enabled: %v", v)
	}

	// Unsupported parameter types fail loudly.
	if _, err := EncodeParams(compile.Params{"bad": struct{}{}}); err == nil {
		t.Errorf("EncodeParams with struct{}: want error")
	}
}
