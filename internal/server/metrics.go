package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics aggregates the server's observability counters. The text
// rendering follows the Prometheus exposition conventions (name,
// optional {labels}, value) using only the stdlib — close enough for
// scraping and for the smoke tests to assert on, with no dependency.
type metrics struct {
	mu sync.Mutex
	// requests counts finished requests by endpoint and HTTP status.
	requests map[reqKey]int64
	// latency accumulates per-endpoint wall time of finished requests.
	latency map[string]*latencySum

	planCacheHits   int64
	planCacheMisses int64
	fastPathHits    int64
	degraded        int64
	admissionDrops  int64
	// memHighWater is the largest per-request peak estimated
	// intermediate memory (bytes) any query has reported.
	memHighWater int64
}

type reqKey struct {
	endpoint string
	status   int
}

type latencySum struct {
	count   int64
	seconds float64
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[reqKey]int64{},
		latency:  map[string]*latencySum{},
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, status}]++
	l := m.latency[endpoint]
	if l == nil {
		l = &latencySum{}
		m.latency[endpoint] = l
	}
	l.count++
	l.seconds += d.Seconds()
	if status == 429 {
		m.admissionDrops++
	}
}

// observeQuery folds one successful query result into the aggregate
// engine counters.
func (m *metrics) observeQuery(planHits, planMisses, fastPath int, degraded bool, memHW int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.planCacheHits += int64(planHits)
	m.planCacheMisses += int64(planMisses)
	m.fastPathHits += int64(fastPath)
	if degraded {
		m.degraded++
	}
	if memHW > m.memHighWater {
		m.memHighWater = memHW
	}
}

// gauges are the live values rendered alongside the counters; the
// server supplies them at render time.
type gauges struct {
	queueDepth   int64
	inFlight     int64
	sessions     int
	planEntries  int
	catalogVers  map[string]uint64 // session name -> version
	tableStats   []tableStatsGauge
	shards       int
	shardRows    []shardRowsGauge
	shuttingDown bool
	recovering   bool
}

// shardRowsGauge is one relation's row count on one engine shard under
// hash partitioning, from the owning session's partitioned store.
type shardRowsGauge struct {
	session, table string
	part           int
	rows           int64
}

// tableStatsGauge is one relation's row and marked-null counts from the
// owning session's last statistics collection.
type tableStatsGauge struct {
	session, table string
	rows, nulls    int64
}

// render writes the exposition text. Lines are sorted so the output is
// deterministic — tests and scripts can grep it.
func (m *metrics) render(g gauges) string {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	lines := make([]string, 0, len(m.requests)+len(m.latency)*2)
	for k, n := range m.requests {
		lines = append(lines, fmt.Sprintf("certsqld_requests_total{endpoint=%q,status=\"%d\"} %d", k.endpoint, k.status, n))
	}
	for ep, l := range m.latency {
		lines = append(lines, fmt.Sprintf("certsqld_request_seconds_count{endpoint=%q} %d", ep, l.count))
		lines = append(lines, fmt.Sprintf("certsqld_request_seconds_sum{endpoint=%q} %g", ep, l.seconds))
	}
	for session, v := range g.catalogVers {
		lines = append(lines, fmt.Sprintf("certsqld_catalog_version{session=%q} %d", session, v))
	}
	for _, ts := range g.tableStats {
		lines = append(lines, fmt.Sprintf("certsqld_stats_rows{session=%q,table=%q} %d", ts.session, ts.table, ts.rows))
		lines = append(lines, fmt.Sprintf("certsqld_stats_nulls{session=%q,table=%q} %d", ts.session, ts.table, ts.nulls))
	}
	for _, sr := range g.shardRows {
		lines = append(lines, fmt.Sprintf("certsqld_shard_partition_rows{session=%q,table=%q,shard=\"%d\"} %d", sr.session, sr.table, sr.part, sr.rows))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}

	hitRatio := 0.0
	if total := m.planCacheHits + m.planCacheMisses; total > 0 {
		hitRatio = float64(m.planCacheHits) / float64(total)
	}
	fmt.Fprintf(&b, "certsqld_admission_rejected_total %d\n", m.admissionDrops)
	fmt.Fprintf(&b, "certsqld_degraded_total %d\n", m.degraded)
	fmt.Fprintf(&b, "certsqld_fast_path_hits_total %d\n", m.fastPathHits)
	fmt.Fprintf(&b, "certsqld_in_flight %d\n", g.inFlight)
	fmt.Fprintf(&b, "certsqld_plan_cache_entries %d\n", g.planEntries)
	fmt.Fprintf(&b, "certsqld_plan_cache_hit_ratio %g\n", hitRatio)
	fmt.Fprintf(&b, "certsqld_plan_cache_hits_total %d\n", m.planCacheHits)
	fmt.Fprintf(&b, "certsqld_plan_cache_misses_total %d\n", m.planCacheMisses)
	fmt.Fprintf(&b, "certsqld_query_mem_highwater_bytes %d\n", m.memHighWater)
	fmt.Fprintf(&b, "certsqld_queue_depth %d\n", g.queueDepth)
	recovering := 0
	if g.recovering {
		recovering = 1
	}
	fmt.Fprintf(&b, "certsqld_recovering %d\n", recovering)
	fmt.Fprintf(&b, "certsqld_sessions %d\n", g.sessions)
	fmt.Fprintf(&b, "certsqld_shards %d\n", g.shards)
	shutdown := 0
	if g.shuttingDown {
		shutdown = 1
	}
	fmt.Fprintf(&b, "certsqld_shutting_down %d\n", shutdown)
	return b.String()
}
