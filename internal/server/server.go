// Package server is the HTTP serving layer of the certain-answer
// engine: a long-running certsqld process exposes the library's
// Q ↦ (Q⁺, Q⋆) evaluation over a JSON API with sessions, compiled-plan
// reuse, snapshot-consistent reads, admission control and metrics.
//
// The request path is deliberately thin over the library:
//
//	admission (bounded queue) → session snapshot pin → Prepare/Execute
//	(plan cache keyed by canonical SQL + catalog version) → wire encode
//
// Every failure surfaces as a typed guard/certain error, and errmap.go
// translates that taxonomy onto HTTP statuses — the server never maps
// a governed stop to 500. See DESIGN.md §11 for the architecture.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"certsql"
	"certsql/internal/guard"
	"certsql/internal/server/api"
	"certsql/internal/table"
)

// Config sizes one server.
type Config struct {
	// Seed is the initial catalog every session starts from. Required
	// by New (NewRecovering defers it to Activate); the server takes
	// ownership (the seed must not be mutated after).
	Seed *table.Database

	// Durable, when non-nil, backs the default session with a durable
	// catalog (normally a persist.Store) instead of an in-memory store,
	// so loads against it survive restarts. Named sessions remain
	// in-memory scratch catalogs seeded from Seed.
	Durable Catalog

	// MaxConcurrent bounds queries evaluating at once (default 4).
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a slot; arrivals beyond it
	// are rejected with 429 (default 2×MaxConcurrent).
	MaxQueue int

	// DefaultLimits are the per-query budgets applied when a request
	// carries no override; MaxLimits are the ceilings requests cannot
	// exceed (zero fields of MaxLimits mean "no ceiling beyond the
	// guard defaults").
	DefaultLimits guard.Limits
	MaxLimits     guard.Limits

	// DefaultTimeout bounds each query's evaluation wall time when the
	// request does not set one (0 = none); MaxTimeout caps request
	// overrides (0 = uncapped).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// Parallelism is the executor worker count per query (0 =
	// GOMAXPROCS). Concurrency across queries comes from MaxConcurrent,
	// so serving deployments usually set this low.
	Parallelism int

	// Shards is the engine shard count queries scatter across (0 or 1 =
	// unsharded). Session catalogs are wrapped in shard.PartitionedStore
	// so /metrics reports per-shard partition row counts, and admission
	// is shard-aware: while the server is loaded — every execution slot
	// held or requests queueing — queries run unsharded, spending the
	// cores on inter-query concurrency instead of intra-query fan-out.
	// Results are byte-identical either way.
	Shards int
}

// shards pins the configured shard count to at least 1.
func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent <= 0 {
		return 4
	}
	return c.MaxConcurrent
}

func (c Config) maxQueue() int {
	if c.MaxQueue <= 0 {
		return 2 * c.maxConcurrent()
	}
	return c.MaxQueue
}

// Server is the HTTP serving layer. Create with New, expose with
// Handler, and flip Drain before http.Server.Shutdown so health checks
// fail fast while in-flight queries finish.
//
// A server can also start before its catalog is ready: NewRecovering
// returns a listener-ready server in the recovering state, where data
// endpoints answer 503 {"code":"recovering"} and /healthz reports
// "recovering", and Activate flips it live once the durable store has
// replayed its log. That keeps cold-start observable — the process
// accepts probes immediately while WAL replay runs in the background.
type Server struct {
	cfg        Config
	sess       atomic.Pointer[sessions] // nil while recovering
	adm        *admission
	metrics    *metrics
	mux        *http.ServeMux
	draining   atomic.Bool
	recovering atomic.Bool
}

// New builds a server over cfg.Seed, live immediately.
func New(cfg Config) *Server {
	if cfg.Seed == nil {
		panic("server: Config.Seed is required")
	}
	s := newServer(cfg)
	s.sess.Store(newSessions(cfg.Seed, cfg.Durable, cfg.shards()))
	return s
}

// NewRecovering builds a server with no catalog yet: it serves
// /healthz (503 "recovering") and /metrics immediately, answers every
// data endpoint with 503 {"code":"recovering"}, and becomes live when
// Activate is called. cfg.Seed and cfg.Durable are ignored here — they
// arrive with Activate, after recovery decides what the catalog is.
func NewRecovering(cfg Config) *Server {
	s := newServer(cfg)
	s.recovering.Store(true)
	return s
}

// Activate installs the recovered catalog and flips the server live.
// seed is the catalog named sessions start from; durable, when
// non-nil, backs the default session. Calling Activate on an already
// live server panics — sessions must not be silently discarded.
func (s *Server) Activate(seed *table.Database, durable Catalog) {
	if seed == nil {
		panic("server: Activate requires a seed catalog")
	}
	if !s.sess.CompareAndSwap(nil, newSessions(seed, durable, s.cfg.shards())) {
		panic("server: Activate on a live server")
	}
	s.recovering.Store(false)
}

// Recovering reports whether the server is still waiting for Activate.
func (s *Server) Recovering() bool { return s.recovering.Load() }

// sessions returns the live registry, or nil while recovering.
func (s *Server) sessions() *sessions { return s.sess.Load() }

// ready gates a data handler: while recovering it answers 503 with a
// Retry-After hint (the same shape admission rejections use, so the
// client's retry loop applies unchanged) and reports false.
func (s *Server) ready(w http.ResponseWriter) bool {
	if s.sessions() != nil {
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, &api.Error{
		Status:  http.StatusServiceUnavailable,
		Code:    "recovering",
		Message: "server: catalog is recovering; retry shortly",
	})
	return false
}

func newServer(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		adm:     newAdmission(cfg.maxConcurrent(), cfg.maxQueue()),
		metrics: newMetrics(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.instrument("/v1/query", s.handleQuery))
	mux.HandleFunc("/v1/prepare", s.instrument("/v1/prepare", s.handlePrepare))
	mux.HandleFunc("/v1/execute", s.instrument("/v1/execute", s.handleExecute))
	mux.HandleFunc("/v1/load", s.instrument("/v1/load", s.handleLoad))
	mux.HandleFunc("/v1/catalog", s.instrument("/v1/catalog", s.handleCatalog))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain marks the server as shutting down: /healthz starts failing so
// load balancers stop routing, while the HTTP server's own Shutdown
// keeps serving in-flight requests to completion.
func (s *Server) Drain() { s.draining.Store(true) }

// instrument wraps a handler with latency/status accounting.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.observe(endpoint, sw.status, time.Since(start))
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// --- request plumbing ---------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeErr renders err through the status mapping.
func writeErr(w http.ResponseWriter, err error) {
	status, code := statusFor(err)
	writeJSON(w, status, &api.Error{Status: status, Code: code, Message: err.Error()})
}

// decodeBody parses a JSON request body with UseNumber (so int64
// values survive exactly) into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.UseNumber()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &api.Error{
			Status: http.StatusMethodNotAllowed, Code: "method", Message: "use POST"})
		return false
	}
	return true
}

// options derives the evaluation options and context for one request:
// server defaults overlaid with the request's overrides, each clamped
// to the server's ceiling — a request can tighten the budgets but
// never loosen them past MaxLimits.
func (s *Server) options(ctx context.Context, o api.QueryOptions) (context.Context, context.CancelFunc, certsql.Options, error) {
	if o.MaxRows < 0 || o.MaxCostUnits < 0 || o.MaxMemBytes < 0 || o.TimeoutMillis < 0 {
		return nil, nil, certsql.Options{}, errors.New("server: negative limits are not allowed; budgets are mandatory in serving mode")
	}
	lim := s.cfg.DefaultLimits
	if o.MaxRows > 0 {
		lim.MaxRows = o.MaxRows
	}
	if o.MaxCostUnits > 0 {
		lim.MaxCostUnits = o.MaxCostUnits
	}
	if o.MaxMemBytes > 0 {
		lim.MaxMemBytes = o.MaxMemBytes
	}
	lim = clampLimits(lim, s.cfg.MaxLimits)

	timeout := s.cfg.DefaultTimeout
	if o.TimeoutMillis > 0 {
		timeout = time.Duration(o.TimeoutMillis) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	opts := certsql.Options{
		MaxRows:      lim.MaxRows,
		MaxCostUnits: lim.MaxCostUnits,
		MaxMemBytes:  lim.MaxMemBytes,
		Degrade:      o.Degrade,
		Parallelism:  s.cfg.Parallelism,
		Shards:       s.shardCount(),
	}
	return ctx, cancel, opts, nil
}

// shardCount resolves the shard count for one admitted query: the
// configured value, dropped to an unsharded run while the server is
// loaded. Scatter-gather spends cores on one query; when every
// execution slot is held (options runs after admission, so "every slot
// but ours" means saturation) or requests are queueing, those cores
// serve concurrent queries instead. The drop is invisible in results —
// sharding is byte-identical by construction — and shows up only in
// latency, which is exactly what the loadtest harness measures.
func (s *Server) shardCount() int {
	if s.cfg.shards() > 1 && s.adm.loaded() {
		return 1
	}
	return s.cfg.shards()
}

// clampLimits caps each budget at the configured ceiling. A zero
// ceiling field leaves that budget unclamped.
func clampLimits(lim, max guard.Limits) guard.Limits {
	if max.MaxRows > 0 && (lim.MaxRows <= 0 || lim.MaxRows > max.MaxRows) {
		lim.MaxRows = max.MaxRows
	}
	if max.MaxCostUnits > 0 && (lim.MaxCostUnits <= 0 || lim.MaxCostUnits > max.MaxCostUnits) {
		lim.MaxCostUnits = max.MaxCostUnits
	}
	if max.MaxMemBytes > 0 && (lim.MaxMemBytes <= 0 || lim.MaxMemBytes > max.MaxMemBytes) {
		lim.MaxMemBytes = max.MaxMemBytes
	}
	return lim
}

// --- handlers -----------------------------------------------------------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if !s.ready(w) {
		return
	}
	var req api.QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	text := req.SQL
	if req.Mode != "" {
		var err error
		text, err = certsql.WithMode(text, req.Mode)
		if err != nil {
			writeErr(w, err)
			return
		}
	}
	sess := s.sessions().get(req.Session)
	// Ad-hoc queries run through the prepared path too: Prepare is one
	// parse + canonical render, and everything after it — compile,
	// analysis, translation — is served from the session's plan cache
	// on repeat, which is where a serving workload spends its life.
	view := sess.view()
	stmt, err := view.Prepare(text)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.execute(w, r, req.Params, req.Options, stmt, view.CatalogVersion())
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if !s.ready(w) {
		return
	}
	var req api.PrepareRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	text := req.SQL
	if req.Mode != "" {
		var err error
		text, err = certsql.WithMode(text, req.Mode)
		if err != nil {
			writeErr(w, err)
			return
		}
	}
	sess := s.sessions().get(req.Session)
	stmt, err := sess.view().Prepare(text)
	if err != nil {
		writeErr(w, err)
		return
	}
	id := sess.register(stmt)
	resp := &api.PrepareResponse{ID: id, SQL: stmt.Text(), Mode: stmt.Mode().String()}
	// Best-effort EXPLAIN: parameterized statements cannot be planned
	// until a binding arrives, so a failure just leaves the field empty.
	if ex, err := stmt.ExplainContext(r.Context(), nil, certsql.Options{}); err == nil {
		resp.Explain = ex
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if !s.ready(w) {
		return
	}
	var req api.ExecuteRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	sess := s.sessions().get(req.Session)
	stmt, ok := sess.statement(req.ID)
	if !ok {
		writeErr(w, fmt.Errorf("server: unknown statement %q", req.ID))
		return
	}
	// Rebind to the freshest snapshot: the statement text is immutable,
	// but each execution pins the catalog current at arrival and keys
	// the plan cache under that snapshot's version.
	view := sess.view()
	s.execute(w, r, req.Params, req.Options, stmt.Rebind(view), view.CatalogVersion())
}

// execute is the shared tail of /v1/query and /v1/execute: admission,
// governance, evaluation, wire encoding.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, rawParams map[string]any, ropts api.QueryOptions, stmt *certsql.Prepared, version uint64) {
	params, err := api.DecodeParams(rawParams)
	if err != nil {
		writeErr(w, err)
		return
	}
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	ctx, cancel, opts, err := s.options(r.Context(), ropts)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancel()
	res, err := stmt.ExecuteWithOptionsContext(ctx, params, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.metrics.observeQuery(res.Stats.PlanCacheHits, res.Stats.PlanCacheMisses, res.Stats.FastPathHits, res.Degraded, res.Stats.MemHighWaterBytes)
	resp := &api.QueryResponse{
		Columns:  res.Columns,
		Rows:     api.EncodeRows(res.Rows()),
		Certain:  res.Certain,
		Possible: res.Possible,
		Degraded: res.Degraded,
		Version:  version,
		Stats: api.Stats{
			CostUnits:         res.Stats.CostUnits,
			NestedLoopJoins:   res.Stats.NestedLoopJoins,
			HashJoins:         res.Stats.HashJoins,
			ShortCircuits:     res.Stats.ShortCircuits,
			CacheHits:         res.Stats.CacheHits,
			FastPathHits:      res.Stats.FastPathHits,
			PlanCacheHits:     res.Stats.PlanCacheHits,
			PlanCacheMisses:   res.Stats.PlanCacheMisses,
			MemHighWaterBytes: res.Stats.MemHighWaterBytes,
		},
	}
	if resp.Rows == nil {
		resp.Rows = [][]any{}
	}
	for _, warn := range res.Warnings {
		resp.Warnings = append(resp.Warnings, api.Warning{Code: warn.Code, Message: warn.Message})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if !s.ready(w) {
		return
	}
	var req api.LoadRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	rows := make([]table.Row, len(req.Rows))
	for i, raw := range req.Rows {
		row, err := api.DecodeRow(raw)
		if err != nil {
			writeErr(w, fmt.Errorf("server: row %d: %w", i, err))
			return
		}
		rows[i] = row
	}
	sess := s.sessions().get(req.Session)
	version, err := sess.store.Update(func(db *table.Database) error {
		for _, row := range rows {
			if err := db.Insert(req.Table, row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &api.LoadResponse{Version: version, Rows: len(rows)})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	if !s.ready(w) {
		return
	}
	sess := s.sessions().get(r.URL.Query().Get("session"))
	snap := sess.store.Snapshot()
	// One collection serves the whole response; the session collector's
	// generation cache makes this O(1) for tables unchanged since the
	// last query planned against them.
	st := sess.stats.Collect(snap.DB)
	resp := &api.CatalogResponse{Version: snap.Version}
	for _, name := range snap.DB.Schema.Names() {
		rel, _ := snap.DB.Schema.Relation(name)
		info := api.TableInfo{Name: name, Rows: snap.DB.MustTable(name).Len()}
		ts := st.Table(name)
		for i, a := range rel.Attrs {
			ci := api.ColumnInfo{Name: a.Name, Type: a.Type.String(), Nullable: a.Nullable}
			if ts != nil && i < len(ts.Cols) {
				ci.NullRate = ts.NullRate(i)
				ci.Distinct = ts.Cols[i].Distinct
				ci.DistinctExact = ts.Cols[i].DistinctExact
			}
			info.Columns = append(info.Columns, ci)
		}
		resp.Tables = append(resp.Tables, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.sessions() == nil {
		http.Error(w, "recovering", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g := gauges{
		queueDepth:   s.adm.queueDepth(),
		inFlight:     s.adm.inFlight(),
		shards:       s.cfg.shards(),
		shuttingDown: s.draining.Load(),
	}
	if ss := s.sessions(); ss != nil {
		g.sessions = ss.count()
		g.planEntries = ss.planEntries()
		g.catalogVers = ss.snapshotVersions()
		g.tableStats = ss.statsGauges()
		g.shardRows = ss.partitionGauges()
	} else {
		g.recovering = true
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.metrics.render(g))
}
