package server

import (
	"context"
	"errors"
	"net/http"

	"certsql/internal/certain"
	"certsql/internal/guard"
)

// statusClientClosedRequest is the de-facto standard status (nginx's
// 499) for a request whose client went away before the response: the
// guard reports it as ErrCanceled, and no IANA status fits.
const statusClientClosedRequest = 499

// statusFor maps the engine's error taxonomy onto HTTP statuses and
// machine-readable codes. The switch names every guard sentinel
// individually — including each member under the ErrBudget umbrella —
// and tools/astlint enforces that it stays exhaustive as sentinels are
// added, so a future failure mode can never silently fall through to
// the catch-all. The ErrBudget case itself remains as the safety net
// for an unnamed budget sentinel: resource exhaustion must never be
// reported as a client error.
func statusFor(err error) (status int, code string) {
	var internal *guard.InternalError
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue-full"
	case errors.Is(err, guard.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, "deadline"
	case errors.Is(err, guard.ErrCanceled), errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "canceled"
	case errors.Is(err, certain.ErrUntranslatable):
		return http.StatusUnprocessableEntity, "untranslatable"
	case errors.Is(err, guard.ErrMemBudget):
		return http.StatusInsufficientStorage, "mem-budget"
	case errors.Is(err, guard.ErrRowBudget):
		return http.StatusInsufficientStorage, "row-budget"
	case errors.Is(err, guard.ErrCostBudget):
		return http.StatusInsufficientStorage, "cost-budget"
	case errors.Is(err, guard.ErrBudget):
		return http.StatusInsufficientStorage, "budget"
	case errors.As(err, &internal):
		return http.StatusInternalServerError, "internal"
	default:
		return http.StatusBadRequest, "bad-request"
	}
}
