package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"certsql/internal/certain"
	"certsql/internal/guard"
	"certsql/internal/server/api"
	"certsql/internal/server/client"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// testSeed is a small generated TPC-H instance shared by the tests
// (each session copy-on-writes, so sharing the seed is safe).
var testSeed = tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 7, NullRate: 0.05})

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *client.Client) {
	t.Helper()
	if cfg.Seed == nil {
		cfg.Seed = testSeed
	}
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

func TestQueryBasic(t *testing.T) {
	_, c := newTestServer(t, Config{})
	res, err := c.Query(context.Background(), `SELECT CERTAIN n_name FROM nation WHERE n_regionkey = $r`,
		map[string]any{"r": 1}, "", client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain || res.Possible {
		t.Errorf("mode flags: certain=%v possible=%v", res.Certain, res.Possible)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "n_name" {
		t.Errorf("columns: %v", res.Columns)
	}
	if res.Version != 1 {
		t.Errorf("version: %d, want 1 (seed snapshot)", res.Version)
	}
	for _, row := range res.Rows {
		if len(row) != 1 || row[0].Kind() != value.KindString {
			t.Errorf("bad row %v", row)
		}
	}
}

// TestAdHocQueriesShareThePlanCache: /v1/query routes through the
// prepared path, so the second identical ad-hoc request is a cache hit.
func TestAdHocQueriesShareThePlanCache(t *testing.T) {
	_, c := newTestServer(t, Config{})
	const q = `SELECT CERTAIN n_name FROM nation WHERE n_regionkey = 2`
	r1, err := c.Query(context.Background(), q, nil, "", client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Query(context.Background(), q, nil, "", client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.PlanCacheMisses != 1 || r1.Stats.PlanCacheHits != 0 {
		t.Errorf("first run: %+v", r1.Stats)
	}
	if r2.Stats.PlanCacheHits != 1 || r2.Stats.PlanCacheMisses != 0 {
		t.Errorf("second run: %+v", r2.Stats)
	}
}

func TestPrepareExecuteFlow(t *testing.T) {
	_, c := newTestServer(t, Config{})
	stmt, err := c.Prepare(context.Background(), `SELECT n_name FROM nation WHERE n_nationkey = $k`, "certain")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Mode != "certain" {
		t.Errorf("mode: %q", stmt.Mode)
	}
	// A statement referencing $k cannot be planned without a binding,
	// so its prepare-time EXPLAIN is empty.
	if stmt.Explain != "" {
		t.Errorf("parameterized statement should have no prepare-time EXPLAIN:\n%s", stmt.Explain)
	}
	free, err := c.Prepare(context.Background(), `SELECT n_name FROM nation WHERE n_regionkey = 1`, "certain")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(free.Explain, "plan (") {
		t.Errorf("parameterless statement should carry a prepare-time EXPLAIN, got %q", free.Explain)
	}
	r1, err := stmt.Execute(context.Background(), map[string]any{"k": 3}, client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := stmt.Execute(context.Background(), map[string]any{"k": 3}, client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.PlanCacheMisses != 1 {
		t.Errorf("first execute should compile: %+v", r1.Stats)
	}
	if r2.Stats.PlanCacheHits != 1 || r2.Stats.PlanCacheMisses != 0 {
		t.Errorf("second execute should hit the plan cache: %+v", r2.Stats)
	}
	if strings.Join(r1.SortedStrings(), "|") != strings.Join(r2.SortedStrings(), "|") {
		t.Errorf("cached plan changed the answer:\n%v\n%v", r1.SortedStrings(), r2.SortedStrings())
	}
}

// TestLoadPublishesVersionAndInvalidatesPlans: a load bumps the
// snapshot version, queries observe the new rows, and cached plans for
// the old version miss (version is part of the cache key).
func TestLoadPublishesVersionAndInvalidatesPlans(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	const q = `SELECT CERTAIN n_name FROM nation WHERE n_nationkey = 99`

	r1, err := c.Query(ctx, q, nil, "", client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 0 || r1.Version != 1 {
		t.Fatalf("fresh catalog: %d rows at v%d", len(r1.Rows), r1.Version)
	}

	version, err := c.Load(ctx, "nation", [][]value.Value{
		{value.Int(99), value.Str("ATLANTIS"), value.Int(1), value.Str("sunk")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Errorf("load version: %d, want 2", version)
	}

	r2, err := c.Query(ctx, q, nil, "", client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Version != 2 {
		t.Errorf("post-load version: %d", r2.Version)
	}
	if len(r2.Rows) != 1 || r2.Rows[0][0].AsString() != "ATLANTIS" {
		t.Errorf("post-load rows: %v", r2.SortedStrings())
	}
	// Old-version plan exists in the cache, but the new version must
	// compile its own plan: a miss, not a stale hit.
	if r2.Stats.PlanCacheMisses != 1 || r2.Stats.PlanCacheHits != 0 {
		t.Errorf("post-load stats: %+v (stale plan served?)", r2.Stats)
	}

	// Loading a row that violates the schema is a client error.
	if _, err := c.Load(ctx, "nation", [][]value.Value{{value.Int(1)}}); err == nil {
		t.Errorf("short row: want error")
	}
}

// TestSessionsAreIsolated: a load in one session is invisible to
// another; each keeps its own version counter.
func TestSessionsAreIsolated(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	a := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithSession("alice"))
	b := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithSession("bob"))
	ctx := context.Background()

	if _, err := a.Load(ctx, "region", [][]value.Value{
		{value.Int(77), value.Str("MU"), value.Str("lost")},
	}); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT CERTAIN r_name FROM region WHERE r_regionkey = 77`
	ra, err := a.Query(ctx, q, nil, "", client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Query(ctx, q, nil, "", client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Rows) != 1 || len(rb.Rows) != 0 {
		t.Errorf("isolation: alice sees %d rows, bob sees %d", len(ra.Rows), len(rb.Rows))
	}
	if ra.Version != 2 || rb.Version != 1 {
		t.Errorf("versions: alice v%d, bob v%d", ra.Version, rb.Version)
	}
}

// --- error mapping -------------------------------------------------------

// apiStatus extracts the mapped HTTP status from a client error.
func apiStatus(t *testing.T, err error) (int, string) {
	t.Helper()
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *api.Error, got %T: %v", err, err)
	}
	return apiErr.Status, apiErr.Code
}

func TestStatusMappingOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{
		// Unlimited defaults so only the per-request overrides trip.
		DefaultLimits: guard.Limits{MaxRows: -1, MaxCostUnits: -1, MaxMemBytes: -1},
	})
	ctx := context.Background()

	t.Run("bad SQL is 400", func(t *testing.T) {
		_, err := c.Query(ctx, `SELEKT banana`, nil, "", client.QueryOptions{})
		if s, code := apiStatus(t, err); s != http.StatusBadRequest || code != "bad-request" {
			t.Errorf("got %d/%s", s, code)
		}
	})

	t.Run("untranslatable is 422", func(t *testing.T) {
		_, err := c.Query(ctx, `SELECT CERTAIN n_regionkey FROM nation ORDER BY n_regionkey`,
			nil, "", client.QueryOptions{})
		if s, code := apiStatus(t, err); s != http.StatusUnprocessableEntity || code != "untranslatable" {
			t.Errorf("got %d/%s", s, code)
		}
	})

	t.Run("row budget is 507", func(t *testing.T) {
		_, err := c.Query(ctx, `SELECT s_suppkey, o_orderkey FROM supplier, orders`,
			nil, "", client.QueryOptions{MaxRows: 2})
		if s, code := apiStatus(t, err); s != http.StatusInsufficientStorage || code != "row-budget" {
			t.Errorf("got %d/%s", s, code)
		}
	})

	t.Run("deadline is 408", func(t *testing.T) {
		_, err := c.Query(ctx, `SELECT l1.l_orderkey FROM lineitem l1, lineitem l2, lineitem l3, orders`,
			nil, "", client.QueryOptions{TimeoutMillis: 1})
		if s, code := apiStatus(t, err); s != http.StatusRequestTimeout || code != "deadline" {
			t.Errorf("got %d/%s", s, code)
		}
	})

	t.Run("negative limits are 400", func(t *testing.T) {
		_, err := c.Query(ctx, `SELECT n_name FROM nation`, nil, "", client.QueryOptions{MaxRows: -1})
		if s, _ := apiStatus(t, err); s != http.StatusBadRequest {
			t.Errorf("got %d", s)
		}
	})

	t.Run("unknown statement is 400", func(t *testing.T) {
		stmt, err := c.Prepare(ctx, `SELECT n_name FROM nation`, "")
		if err != nil {
			t.Fatal(err)
		}
		stmt.ID = "s999999"
		_, err = stmt.Execute(ctx, nil, client.QueryOptions{})
		if s, _ := apiStatus(t, err); s != http.StatusBadRequest {
			t.Errorf("got %d", s)
		}
	})

	t.Run("GET on a POST endpoint is 405", func(t *testing.T) {
		ts, _ := newTestServer(t, Config{})
		res, err := ts.Client().Get(ts.URL + "/v1/query")
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("got %d", res.StatusCode)
		}
	})
}

// TestStatusForTaxonomy pins the full sentinel → status mapping,
// including the branches that are awkward to provoke over HTTP
// (cancellation, internal errors, queue overflow).
func TestStatusForTaxonomy(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{ErrQueueFull, http.StatusTooManyRequests, "queue-full"},
		{guard.ErrDeadline, http.StatusRequestTimeout, "deadline"},
		{context.DeadlineExceeded, http.StatusRequestTimeout, "deadline"},
		{guard.ErrCanceled, statusClientClosedRequest, "canceled"},
		{context.Canceled, statusClientClosedRequest, "canceled"},
		{certain.ErrUntranslatable, http.StatusUnprocessableEntity, "untranslatable"},
		{guard.ErrRowBudget, http.StatusInsufficientStorage, "row-budget"},
		{guard.ErrCostBudget, http.StatusInsufficientStorage, "cost-budget"},
		{guard.ErrMemBudget, http.StatusInsufficientStorage, "mem-budget"},
		{guard.ErrBudget, http.StatusInsufficientStorage, "budget"},
		{&guard.InternalError{}, http.StatusInternalServerError, "internal"},
		{errors.New("anything else"), http.StatusBadRequest, "bad-request"},
	}
	for _, tc := range cases {
		status, code := statusFor(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("statusFor(%v) = %d/%s, want %d/%s", tc.err, status, code, tc.status, tc.code)
		}
	}
}

// --- admission -----------------------------------------------------------

func TestAdmissionQueueBounds(t *testing.T) {
	adm := newAdmission(1, 1)

	rel1, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := adm.inFlight(); got != 1 {
		t.Errorf("inFlight: %d", got)
	}

	// Second arrival queues; third must bounce with ErrQueueFull.
	type res struct {
		rel func()
		err error
	}
	queued := make(chan res, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		r, err := adm.acquire(context.Background())
		queued <- res{r, err}
	}()
	<-entered
	// Wait until the queued goroutine is counted as waiting.
	for i := 0; adm.queueDepth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if adm.queueDepth() != 1 {
		t.Fatalf("queueDepth: %d", adm.queueDepth())
	}
	if _, err := adm.acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third arrival: %v, want ErrQueueFull", err)
	}

	// Releasing the slot admits the queued waiter.
	rel1()
	got := <-queued
	if got.err != nil {
		t.Fatalf("queued waiter: %v", got.err)
	}
	got.rel()
	got.rel() // release is idempotent
	if adm.inFlight() != 0 || adm.queueDepth() != 0 {
		t.Errorf("after drain: inFlight=%d queueDepth=%d", adm.inFlight(), adm.queueDepth())
	}

	// A queued waiter whose context dies leaves cleanly.
	rel2, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := adm.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter: %v", err)
	}
	rel2()
}

// --- lifecycle -----------------------------------------------------------

func TestDrainFailsHealthz(t *testing.T) {
	srv := New(Config{Seed: testSeed})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthy server: %v", err)
	}
	srv.Drain()
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("draining server must fail /healthz")
	}
	// Metrics report the drain.
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "certsqld_shutting_down 1") {
		t.Errorf("metrics missing shutdown gauge:\n%s", m)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	const q = `SELECT CERTAIN n_name FROM nation WHERE n_regionkey = 0`
	for i := 0; i < 3; i++ {
		if _, err := c.Query(ctx, q, nil, "", client.QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query(ctx, `nonsense`, nil, "", client.QueryOptions{}); err == nil {
		t.Fatal("want parse error")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`certsqld_requests_total{endpoint="/v1/query",status="200"} 3`,
		`certsqld_requests_total{endpoint="/v1/query",status="400"} 1`,
		`certsqld_plan_cache_hits_total 2`,
		`certsqld_plan_cache_misses_total 1`,
		`certsqld_sessions 1`,
		`certsqld_catalog_version{session="default"} 1`,
		// The queries above planned against session statistics, so the
		// collector's snapshot backs the stats gauges.
		`certsqld_stats_rows{session="default",table="nation"}`,
		`certsqld_stats_nulls{session="default",table="nation"}`,
		`certsqld_in_flight 0`,
		`certsqld_queue_depth 0`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestCatalogEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cat, err := c.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cat.Version != 1 || len(cat.Tables) != 8 {
		t.Fatalf("catalog: v%d, %d tables", cat.Version, len(cat.Tables))
	}
	byName := map[string]api.TableInfo{}
	for _, ti := range cat.Tables {
		byName[ti.Name] = ti
	}
	nation, ok := byName["nation"]
	if !ok || len(nation.Columns) != 4 {
		t.Fatalf("nation: %+v", nation)
	}
	if nation.Columns[0].Name != "n_nationkey" || nation.Columns[0].Nullable {
		t.Errorf("nation key column: %+v", nation.Columns[0])
	}
	if !nation.Columns[1].Nullable {
		t.Errorf("n_name should be nullable in the generated schema")
	}
	// The catalog carries per-column planner statistics: the key column
	// is dense and null-free, and its distinct count is exact at this
	// scale.
	key := nation.Columns[0]
	if key.NullRate != 0 {
		t.Errorf("n_nationkey null rate: %g", key.NullRate)
	}
	if key.Distinct != int64(nation.Rows) || !key.DistinctExact {
		t.Errorf("n_nationkey distinct: %d (exact=%v), table has %d rows", key.Distinct, key.DistinctExact, nation.Rows)
	}
	for _, col := range nation.Columns {
		if col.NullRate < 0 || col.NullRate > 1 {
			t.Errorf("%s null rate out of range: %g", col.Name, col.NullRate)
		}
	}
}

// TestNoGoroutineLeaks: a burst of queries (including failures) leaves
// no goroutines behind once responses are consumed.
func TestNoGoroutineLeaks(t *testing.T) {
	ts, c := newTestServer(t, Config{MaxConcurrent: 2})
	ctx := context.Background()
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := c.Query(ctx, `SELECT CERTAIN n_name FROM nation WHERE n_regionkey = 1`, nil, "", client.QueryOptions{}); err != nil {
			t.Fatal(err)
		}
		_, _ = c.Query(ctx, `bogus`, nil, "", client.QueryOptions{})
	}
	ts.CloseClientConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}
