package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"certsql/internal/persist"
	"certsql/internal/server/api"
	"certsql/internal/server/client"
	"certsql/internal/table"
	"certsql/internal/value"
)

// TestRecoveringLifecycle walks a server through the cold-start state
// machine: born recovering (healthz 503, data endpoints 503
// "recovering", metrics gauge set), then Activate flips everything
// live atomically.
func TestRecoveringLifecycle(t *testing.T) {
	srv := NewRecovering(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithRetries(1))

	if !srv.Recovering() {
		t.Fatal("NewRecovering server must report Recovering")
	}
	if err := c.Health(context.Background()); err == nil || !strings.Contains(err.Error(), "recovering") {
		t.Fatalf("healthz while recovering: want 503 recovering, got %v", err)
	}
	_, err := c.Query(context.Background(), "SELECT n_name FROM nation", nil, "", client.QueryOptions{})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != "recovering" {
		t.Fatalf("query while recovering: want 503 code=recovering, got %v", err)
	}
	if _, err := c.Catalog(context.Background()); err == nil {
		t.Fatal("catalog while recovering must fail")
	}
	if body, err := c.Metrics(context.Background()); err != nil || !strings.Contains(body, "certsqld_recovering 1") {
		t.Fatalf("metrics while recovering: err=%v, want certsqld_recovering 1 in:\n%s", err, body)
	}

	srv.Activate(testSeed, nil)
	if srv.Recovering() {
		t.Fatal("server still Recovering after Activate")
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz after Activate: %v", err)
	}
	if _, err := c.Query(context.Background(), "SELECT n_name FROM nation", nil, "", client.QueryOptions{}); err != nil {
		t.Fatalf("query after Activate: %v", err)
	}
	if body, err := c.Metrics(context.Background()); err != nil || !strings.Contains(body, "certsqld_recovering 0") {
		t.Fatalf("metrics after Activate: err=%v, want certsqld_recovering 0 in:\n%s", err, body)
	}

	defer func() {
		if recover() == nil {
			t.Error("second Activate must panic instead of discarding live sessions")
		}
	}()
	srv.Activate(testSeed, nil)
}

// TestRecoveringRetryAfterHint: the 503 carries a Retry-After header so
// the client's retry loop (and any off-the-shelf one) paces itself.
func TestRecoveringRetryAfterHint(t *testing.T) {
	ts := httptest.NewServer(NewRecovering(Config{}).Handler())
	defer ts.Close()
	res, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{"sql":"SELECT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("recovering 503 is missing its Retry-After hint")
	}
}

// TestDurableDefaultSession: with Config.Durable set, loads against the
// default session go through the persistent store and survive a full
// close-and-reopen of the data directory, while named sessions remain
// in-memory scratch catalogs that never touch it.
func TestDurableDefaultSession(t *testing.T) {
	dir := t.TempDir()
	seed := func() (*table.Database, error) { return testSeed, nil }
	store, err := persist.Open(dir, seed, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(Config{Seed: testSeed, Durable: store}).Handler())
	defer ts.Close()
	def := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	scratch := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithSession("scratch"))

	row := []value.Value{value.Int(99), value.Str("durabilia"), value.Int(1), value.Str("persisted row")}
	v, err := def.Load(context.Background(), "nation", [][]value.Value{row})
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Version(); got != v {
		t.Fatalf("store version %d after default-session load, want %d: load bypassed the durable catalog", got, v)
	}
	if _, err := scratch.Load(context.Background(), "nation", [][]value.Value{row}); err != nil {
		t.Fatal(err)
	}
	if got := store.Version(); got != v {
		t.Fatalf("store version moved to %d after a named-session load: scratch sessions must stay in-memory", got)
	}

	ts.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := persist.Open(dir, seed, persist.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	if got := reopened.Version(); got != v {
		t.Fatalf("recovered version %d, want %d", got, v)
	}
	found := false
	for _, r := range reopened.Snapshot().DB.MustTable("nation").Rows() {
		if len(r) > 1 && r[1].String() == "'durabilia'" {
			found = true
		}
	}
	if !found {
		t.Fatal("acknowledged load did not survive close-and-reopen")
	}
}
