// Package client is the typed Go client of the certsqld HTTP API. It
// speaks the wire format defined in internal/server/api and decodes
// result rows back into engine values (marked nulls keep their marks,
// dates round-trip through their ISO rendering). The cmd/certsql
// -remote mode and the server's own tests are its two consumers.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"certsql/internal/compile"
	"certsql/internal/server/api"
	"certsql/internal/value"
)

// Client talks to one certsqld instance.
//
// Idempotent requests (query, prepare, execute, catalog) are retried
// on 429 (admission queue full) and 503 (draining, or a durable server
// still replaying its WAL at cold start) with exponential backoff and
// jitter, honoring the server's Retry-After hint, bounded by the
// caller's context. /v1/load is never retried: a load that timed out
// after the server committed it would duplicate rows on replay, and
// the client cannot tell that apart from a load that never arrived.
type Client struct {
	base    string
	httpc   *http.Client
	session string
	retry   retryPolicy
}

// retryPolicy shapes the backoff loop for retryable statuses.
type retryPolicy struct {
	attempts int           // total attempts, including the first (<=1 disables retry)
	base     time.Duration // first backoff step
	cap      time.Duration // ceiling on computed backoff (Retry-After may exceed it)
}

func defaultRetry() retryPolicy {
	return retryPolicy{attempts: 4, base: 100 * time.Millisecond, cap: 2 * time.Second}
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (tests inject
// one bound to httptest servers; callers can set transport timeouts).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithSession pins every request to a named session catalog.
func WithSession(name string) Option { return func(c *Client) { c.session = name } }

// WithRetries sets the total attempt budget for idempotent requests
// that hit 429/503 (default 4; n <= 1 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retry.attempts = n } }

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:7583").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		httpc: &http.Client{Timeout: 5 * time.Minute},
		retry: defaultRetry(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Result is a decoded query response.
type Result struct {
	Columns  []string
	Rows     [][]value.Value
	Certain  bool
	Possible bool
	Degraded bool
	Warnings []api.Warning
	// Version is the catalog snapshot version the query ran against.
	Version uint64
	Stats   api.Stats
}

// SortedStrings renders rows deterministically, mirroring
// certsql.Result for display and tests.
func (r *Result) SortedStrings() []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, "("+strings.Join(parts, ", ")+")")
	}
	sort.Strings(out)
	return out
}

// QueryOptions re-exports the per-request governance overrides.
type QueryOptions = api.QueryOptions

// Query runs one ad-hoc statement. mode may force "certain",
// "possible" or "standard" ("" keeps the keyword in the text).
func (c *Client) Query(ctx context.Context, sql string, params compile.Params, mode string, opts QueryOptions) (*Result, error) {
	wire, err := api.EncodeParams(params)
	if err != nil {
		return nil, err
	}
	var resp api.QueryResponse
	err = c.post(ctx, "/v1/query", &api.QueryRequest{
		SQL: sql, Params: wire, Mode: mode, Session: c.session, Options: opts,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return decodeResult(&resp)
}

// Stmt is a server-side prepared statement handle.
type Stmt struct {
	c    *Client
	ID   string
	SQL  string
	Mode string
	// Explain is the planner's EXPLAIN at prepare time; empty for
	// statements that cannot be planned without a parameter binding.
	Explain string
}

// Prepare registers a statement on the server.
func (c *Client) Prepare(ctx context.Context, sql, mode string) (*Stmt, error) {
	var resp api.PrepareResponse
	err := c.post(ctx, "/v1/prepare", &api.PrepareRequest{SQL: sql, Mode: mode, Session: c.session}, &resp)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, ID: resp.ID, SQL: resp.SQL, Mode: resp.Mode, Explain: resp.Explain}, nil
}

// Execute runs a prepared statement.
func (s *Stmt) Execute(ctx context.Context, params compile.Params, opts QueryOptions) (*Result, error) {
	wire, err := api.EncodeParams(params)
	if err != nil {
		return nil, err
	}
	var resp api.QueryResponse
	err = s.c.post(ctx, "/v1/execute", &api.ExecuteRequest{
		ID: s.ID, Params: wire, Session: s.c.session, Options: opts,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return decodeResult(&resp)
}

// Load appends rows to one table of the session catalog, publishing a
// new snapshot version. Load is NOT retried on failure (see the Client
// doc comment): callers who retry must be prepared for duplicates.
func (c *Client) Load(ctx context.Context, tableName string, rows [][]value.Value) (uint64, error) {
	var resp api.LoadResponse
	err := c.post(ctx, "/v1/load", &api.LoadRequest{
		Table: tableName, Rows: api.EncodeRows(rows), Session: c.session,
	}, &resp)
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Catalog describes the session catalog at its current version.
func (c *Client) Catalog(ctx context.Context) (*api.CatalogResponse, error) {
	u := c.base + "/v1/catalog"
	if c.session != "" {
		u += "?session=" + url.QueryEscape(c.session)
	}
	var resp api.CatalogResponse
	err := c.retrying(ctx, true, func() (int, time.Duration, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return 0, 0, err
		}
		return c.do(req, &resp)
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes /healthz; nil means the server is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(res.Body, 1024))
		return fmt.Errorf("client: health %d: %s", res.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	res, err := c.httpc.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: metrics %d", res.StatusCode)
	}
	return string(body), nil
}

// post sends one JSON request and decodes the response or the mapped
// API error. Every endpoint but /v1/load is idempotent and joins the
// retry loop.
func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.retrying(ctx, path != "/v1/load", func() (int, time.Duration, error) {
		// The request is rebuilt per attempt: a body reader is consumed
		// by the transport, so reuse would send an empty retry.
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return 0, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		return c.do(req, dst)
	})
}

// retrying runs attempt until it succeeds, fails non-retryably, or the
// budget/context runs out. Only HTTP 429 and 503 are retryable — they
// are the two statuses that mean "the server is healthy but cannot
// take this right now" (queue full, draining, recovering). Transport
// errors are not retried: a request that never got a response may
// still have been executed.
func (c *Client) retrying(ctx context.Context, idempotent bool, attempt func() (int, time.Duration, error)) error {
	for try := 1; ; try++ {
		status, retryAfter, err := attempt()
		if err == nil || !idempotent || try >= c.retry.attempts {
			return err
		}
		if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			return err
		}
		delay := c.backoff(try)
		if retryAfter > 0 {
			// The server knows better than our schedule; honor its hint
			// even past the backoff cap (it is still context-bounded).
			delay = retryAfter
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("client: %w (last response: %v)", ctx.Err(), err)
		case <-t.C:
		}
	}
}

// backoff computes the try-th delay: exponential from the base, capped,
// with "equal jitter" (half fixed, half uniform) so a thundering herd
// of clients spreads out instead of re-colliding.
func (c *Client) backoff(try int) time.Duration {
	d := c.retry.base << (try - 1)
	if d > c.retry.cap || d <= 0 {
		d = c.retry.cap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// do executes one attempt. It reports the HTTP status and any
// Retry-After hint alongside the decoded error so the retry loop can
// classify the failure without poking at error internals.
func (c *Client) do(req *http.Request, dst any) (status int, retryAfter time.Duration, err error) {
	res, err := c.httpc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer res.Body.Close()
	dec := json.NewDecoder(res.Body)
	dec.UseNumber()
	if res.StatusCode != http.StatusOK {
		retryAfter = parseRetryAfter(res.Header.Get("Retry-After"))
		var apiErr api.Error
		if err := dec.Decode(&apiErr); err != nil || apiErr.Status == 0 {
			return res.StatusCode, retryAfter, fmt.Errorf("client: http %d from %s", res.StatusCode, req.URL.Path)
		}
		return res.StatusCode, retryAfter, &apiErr
	}
	return res.StatusCode, 0, dec.Decode(dst)
}

// parseRetryAfter understands both Retry-After forms: delay-seconds
// and an HTTP-date. Unparseable or past values yield 0 (no hint).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

func decodeResult(resp *api.QueryResponse) (*Result, error) {
	rows := make([][]value.Value, len(resp.Rows))
	for i, raw := range resp.Rows {
		row, err := api.DecodeRow(raw)
		if err != nil {
			return nil, fmt.Errorf("client: row %d: %w", i, err)
		}
		rows[i] = row
	}
	return &Result{
		Columns:  resp.Columns,
		Rows:     rows,
		Certain:  resp.Certain,
		Possible: resp.Possible,
		Degraded: resp.Degraded,
		Warnings: resp.Warnings,
		Version:  resp.Version,
		Stats:    resp.Stats,
	}, nil
}
