// Package client is the typed Go client of the certsqld HTTP API. It
// speaks the wire format defined in internal/server/api and decodes
// result rows back into engine values (marked nulls keep their marks,
// dates round-trip through their ISO rendering). The cmd/certsql
// -remote mode and the server's own tests are its two consumers.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"certsql/internal/compile"
	"certsql/internal/server/api"
	"certsql/internal/value"
)

// Client talks to one certsqld instance.
type Client struct {
	base    string
	httpc   *http.Client
	session string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (tests inject
// one bound to httptest servers; callers can set transport timeouts).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithSession pins every request to a named session catalog.
func WithSession(name string) Option { return func(c *Client) { c.session = name } }

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:7583").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), httpc: &http.Client{Timeout: 5 * time.Minute}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Result is a decoded query response.
type Result struct {
	Columns  []string
	Rows     [][]value.Value
	Certain  bool
	Possible bool
	Degraded bool
	Warnings []api.Warning
	// Version is the catalog snapshot version the query ran against.
	Version uint64
	Stats   api.Stats
}

// SortedStrings renders rows deterministically, mirroring
// certsql.Result for display and tests.
func (r *Result) SortedStrings() []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, "("+strings.Join(parts, ", ")+")")
	}
	sort.Strings(out)
	return out
}

// QueryOptions re-exports the per-request governance overrides.
type QueryOptions = api.QueryOptions

// Query runs one ad-hoc statement. mode may force "certain",
// "possible" or "standard" ("" keeps the keyword in the text).
func (c *Client) Query(ctx context.Context, sql string, params compile.Params, mode string, opts QueryOptions) (*Result, error) {
	wire, err := api.EncodeParams(params)
	if err != nil {
		return nil, err
	}
	var resp api.QueryResponse
	err = c.post(ctx, "/v1/query", &api.QueryRequest{
		SQL: sql, Params: wire, Mode: mode, Session: c.session, Options: opts,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return decodeResult(&resp)
}

// Stmt is a server-side prepared statement handle.
type Stmt struct {
	c    *Client
	ID   string
	SQL  string
	Mode string
	// Explain is the planner's EXPLAIN at prepare time; empty for
	// statements that cannot be planned without a parameter binding.
	Explain string
}

// Prepare registers a statement on the server.
func (c *Client) Prepare(ctx context.Context, sql, mode string) (*Stmt, error) {
	var resp api.PrepareResponse
	err := c.post(ctx, "/v1/prepare", &api.PrepareRequest{SQL: sql, Mode: mode, Session: c.session}, &resp)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, ID: resp.ID, SQL: resp.SQL, Mode: resp.Mode, Explain: resp.Explain}, nil
}

// Execute runs a prepared statement.
func (s *Stmt) Execute(ctx context.Context, params compile.Params, opts QueryOptions) (*Result, error) {
	wire, err := api.EncodeParams(params)
	if err != nil {
		return nil, err
	}
	var resp api.QueryResponse
	err = s.c.post(ctx, "/v1/execute", &api.ExecuteRequest{
		ID: s.ID, Params: wire, Session: s.c.session, Options: opts,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return decodeResult(&resp)
}

// Load appends rows to one table of the session catalog, publishing a
// new snapshot version.
func (c *Client) Load(ctx context.Context, tableName string, rows [][]value.Value) (uint64, error) {
	var resp api.LoadResponse
	err := c.post(ctx, "/v1/load", &api.LoadRequest{
		Table: tableName, Rows: api.EncodeRows(rows), Session: c.session,
	}, &resp)
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// Catalog describes the session catalog at its current version.
func (c *Client) Catalog(ctx context.Context) (*api.CatalogResponse, error) {
	u := c.base + "/v1/catalog"
	if c.session != "" {
		u += "?session=" + url.QueryEscape(c.session)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	var resp api.CatalogResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes /healthz; nil means the server is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(res.Body, 1024))
		return fmt.Errorf("client: health %d: %s", res.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	res, err := c.httpc.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: metrics %d", res.StatusCode)
	}
	return string(body), nil
}

// post sends one JSON request and decodes the response or the mapped
// API error.
func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, dst)
}

func (c *Client) do(req *http.Request, dst any) error {
	res, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	dec := json.NewDecoder(res.Body)
	dec.UseNumber()
	if res.StatusCode != http.StatusOK {
		var apiErr api.Error
		if err := dec.Decode(&apiErr); err != nil || apiErr.Status == 0 {
			return fmt.Errorf("client: http %d from %s", res.StatusCode, req.URL.Path)
		}
		return &apiErr
	}
	return dec.Decode(dst)
}

func decodeResult(resp *api.QueryResponse) (*Result, error) {
	rows := make([][]value.Value, len(resp.Rows))
	for i, raw := range resp.Rows {
		row, err := api.DecodeRow(raw)
		if err != nil {
			return nil, fmt.Errorf("client: row %d: %w", i, err)
		}
		rows[i] = row
	}
	return &Result{
		Columns:  resp.Columns,
		Rows:     rows,
		Certain:  resp.Certain,
		Possible: resp.Possible,
		Degraded: resp.Degraded,
		Warnings: resp.Warnings,
		Version:  resp.Version,
		Stats:    resp.Stats,
	}, nil
}
