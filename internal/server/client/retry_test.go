package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"certsql/internal/server/api"
)

// fastRetry keeps test backoffs in the microsecond range.
func fastRetry(c *Client) {
	c.retry.base = 100 * time.Microsecond
	c.retry.cap = time.Millisecond
}

// unavailableThenOK answers 503 (with the given Retry-After header) n
// times, then succeeds with an empty query response.
func unavailableThenOK(n int, retryAfter string, hits *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":503,"code":"recovering","message":"not yet"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"columns":[],"rows":[]}`))
	}
}

func TestRetrySucceedsAfter503(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(unavailableThenOK(2, "", &hits))
	defer ts.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	fastRetry(c)
	if _, err := c.Query(context.Background(), "SELECT 1", nil, "", QueryOptions{}); err != nil {
		t.Fatalf("query after retries: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two 503s then success)", got)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(unavailableThenOK(1000, "", &hits))
	defer ts.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	fastRetry(c)
	_, err := c.Query(context.Background(), "SELECT 1", nil, "", QueryOptions{})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("want the final 503 api error, got %v", err)
	}
	if got := hits.Load(); got != int64(c.retry.attempts) {
		t.Errorf("attempts = %d, want the full budget %d", got, c.retry.attempts)
	}
}

func TestRetryHonorsRetryAfterSeconds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(unavailableThenOK(1, "1", &hits))
	defer ts.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	fastRetry(c) // backoff would be ~100µs; Retry-After: 1 must win
	start := time.Now()
	if _, err := c.Query(context.Background(), "SELECT 1", nil, "", QueryOptions{}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if d := time.Since(start); d < time.Second {
		t.Errorf("retried after %v, want >= 1s (the server's Retry-After hint)", d)
	}
}

func TestRetryBoundedByContext(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(unavailableThenOK(1000, "30", &hits))
	defer ts.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	fastRetry(c)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Query(ctx, "SELECT 1", nil, "", QueryOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the caller's deadline to cut the retry loop, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (the 30s hint outlives the 50ms context)", got)
	}
}

func TestLoadIsNeverRetried(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(unavailableThenOK(1000, "", &hits))
	defer ts.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	fastRetry(c)
	if _, err := c.Load(context.Background(), "nation", nil); err == nil {
		t.Fatal("load against a 503 server must fail")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("attempts = %d, want exactly 1: /v1/load is not idempotent", got)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"status":400,"code":"parse","message":"no"}`))
	}))
	defer ts.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	fastRetry(c)
	if _, err := c.Query(context.Background(), "SELEKT", nil, "", QueryOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no") {
		t.Fatalf("want the 400 surfaced unretried, got err=%v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (400 is not retryable)", got)
	}
}

func TestRetryRebuildsRequestBody(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL != "SELECT 1" {
			t.Errorf("attempt %d: body did not survive the retry: sql=%q err=%v", hits.Load()+1, req.SQL, err)
		}
		unavailableThenOK(1, "", &hits)(w, r)
	}))
	defer ts.Close()
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	fastRetry(c)
	if _, err := c.Query(context.Background(), "SELECT 1", nil, "", QueryOptions{}); err != nil {
		t.Fatalf("query: %v", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"-1", 0},
		{"soon", 0},
		{time.Now().UTC().Add(-time.Hour).Format(http.TimeFormat), 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// An HTTP-date in the future yields roughly the remaining interval.
	in := time.Now().UTC().Add(10 * time.Second).Format(http.TimeFormat)
	if got := parseRetryAfter(in); got <= 8*time.Second || got > 10*time.Second {
		t.Errorf("parseRetryAfter(future date) = %v, want ~10s", got)
	}
}
