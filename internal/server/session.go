package server

import (
	"fmt"
	"sync"

	"certsql"
	"certsql/internal/plancache"
	"certsql/internal/shard"
	"certsql/internal/stats"
	"certsql/internal/table"
)

// Catalog is the snapshot-store seam a session serves from. Both the
// in-memory table.Store and the durable persist.Store satisfy it, so
// the serving layer is identical whether the catalog lives in RAM or
// behind a write-ahead log: readers pin immutable snapshots, writers
// publish monotone versions.
type Catalog interface {
	// Snapshot returns the current published snapshot; never nil.
	Snapshot() *table.Snapshot
	// Version returns the current snapshot's version.
	Version() uint64
	// Update applies mutate to a private clone and publishes it as the
	// next version (see table.Store.Update for the exact contract).
	Update(mutate func(db *table.Database) error) (uint64, error)
}

// session is one named catalog: a snapshot store, the plan cache
// shared by every snapshot version of the catalog, and the prepared
// statements clients registered against it.
//
// The store gives readers lock-free consistent views: each request
// pins the current snapshot once and evaluates entirely against it,
// so a concurrent load republishing the catalog never tears a result.
// The plan cache is shared across versions on purpose — plans are
// keyed by catalog version, so a publish implicitly invalidates every
// older plan (it misses and ages out of the LRU) with no cache sweep.
// The statistics collector is shared across snapshots the same way:
// its per-table generation cache makes re-collection O(1) on tables a
// publish did not touch, so every request's planner sees fresh
// statistics at amortized zero scan cost.
type session struct {
	name  string
	store Catalog
	plans *plancache.Cache
	stats *stats.Collector

	mu       sync.Mutex
	prepared map[string]*certsql.Prepared
	nextID   int
}

// view builds the certsql facade over the current published snapshot.
// Two requests racing a publish may get different views; each view is
// internally consistent and immutable.
func (s *session) view() *certsql.DB {
	snap := s.store.Snapshot()
	return certsql.FromSnapshot(snap.DB, snap.Version, s.plans).WithStatsCollector(s.stats)
}

// register stores a prepared statement and returns its handle.
func (s *session) register(p *certsql.Prepared) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.prepared[id] = p
	return id
}

// statement resolves a handle.
func (s *session) statement(id string) (*certsql.Prepared, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.prepared[id]
	return p, ok
}

// sessions is the named-catalog registry. Sessions are created on
// first use; every new session starts from the server's seed database
// (shared structurally — the seed is immutable, and copy-on-write
// updates clone before mutating, so sessions never observe each
// other's loads).
type sessions struct {
	seed *table.Database
	// durable, when non-nil, is the catalog backing the default
	// session — in the durable deployment (certsqld -data-dir) that is
	// a persist.Store, so loads against the default session survive
	// restarts. Named sessions stay in-memory scratch catalogs: they
	// start from the seed and die with the process by design.
	durable Catalog
	// shards is the engine shard count; above 1, every session catalog
	// is wrapped in a shard.PartitionedStore so /metrics can report how
	// each relation's rows spread across the shards.
	shards int

	mu   sync.Mutex
	byID map[string]*session
}

func newSessions(seed *table.Database, durable Catalog, shards int) *sessions {
	return &sessions{seed: seed, durable: durable, shards: shards, byID: map[string]*session{}}
}

// defaultSession is the catalog used when a request names none.
const defaultSession = "default"

// get returns the named session, creating it on first use. An empty
// name means the default session.
func (ss *sessions) get(name string) *session {
	if name == "" {
		name = defaultSession
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.byID[name]
	if !ok {
		var store Catalog = table.NewStore(ss.seed)
		if name == defaultSession && ss.durable != nil {
			store = ss.durable
		}
		if ss.shards > 1 {
			store = shard.NewPartitionedStore(store, ss.shards)
		}
		s = &session{
			name:     name,
			store:    store,
			plans:    plancache.New(0),
			stats:    stats.NewCollector(),
			prepared: map[string]*certsql.Prepared{},
		}
		ss.byID[name] = s
	}
	return s
}

// snapshotVersions reports each live session's current catalog
// version, for /metrics.
func (ss *sessions) snapshotVersions() map[string]uint64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make(map[string]uint64, len(ss.byID))
	for name, s := range ss.byID {
		out[name] = s.store.Version()
	}
	return out
}

// planEntries sums the plan-cache sizes across sessions.
func (ss *sessions) planEntries() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	n := 0
	for _, s := range ss.byID {
		n += s.plans.Len()
	}
	return n
}

// statsGauges reports, per session and relation, the row and total
// marked-null counts of the most recently collected statistics
// snapshot, for /metrics. Sessions that never collected statistics
// report nothing — the metrics endpoint never forces a table scan.
func (ss *sessions) statsGauges() []tableStatsGauge {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var out []tableStatsGauge
	for name, s := range ss.byID {
		st := s.stats.Current()
		if st == nil {
			continue
		}
		for tbl, ts := range st.Tables {
			var nulls int64
			for _, c := range ts.Cols {
				nulls += c.Nulls
			}
			out = append(out, tableStatsGauge{session: name, table: tbl, rows: ts.Rows, nulls: nulls})
		}
	}
	return out
}

// partitionGauges reports, per session, relation and shard, how many
// rows the shard owns under hash partitioning, for /metrics. Sessions
// without a partitioned store (Shards <= 1) report nothing. The counts
// are generation-cached inside the store, so steady-state scrapes cost
// no table scans.
func (ss *sessions) partitionGauges() []shardRowsGauge {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var out []shardRowsGauge
	for name, s := range ss.byID {
		ps, ok := s.store.(*shard.PartitionedStore)
		if !ok {
			continue
		}
		for tbl, counts := range ps.PartitionCounts() {
			for part, n := range counts {
				out = append(out, shardRowsGauge{session: name, table: tbl, part: part, rows: n})
			}
		}
	}
	return out
}

// count reports the number of live sessions.
func (ss *sessions) count() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.byID)
}
