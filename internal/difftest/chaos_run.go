package difftest

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// ChaosSummary aggregates a batch of seed-driven chaos runs.
type ChaosSummary struct {
	// Cases is the number of cases replayed; Skipped how many were not
	// chaos-checked (their clean baseline already exceeds the budget).
	Cases   int
	Skipped int
	// Failed counts cases with at least one broken failure-semantics
	// invariant; Failures holds their reports (up to MaxFailures).
	Failed   int
	Failures []*ChaosReport
	// FaultRuns is the total number of fault-injected runs executed;
	// FaultsFired how many of them actually hit their planned fault.
	FaultRuns   int
	FaultsFired int
	// CancelsFired counts cases whose random-point cancellation landed
	// mid-flight; Degraded those where the degradation ladder engaged.
	CancelsFired int
	Degraded     int
}

// Summary renders the aggregate for logs.
func (s ChaosSummary) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d cases (%d skipped), %d fault runs (%d fired), %d cancels landed, %d degraded\n",
		s.Cases, s.Skipped, s.FaultRuns, s.FaultsFired, s.CancelsFired, s.Degraded)
	fmt.Fprintf(&b, "chaos: %d case(s) violated failure-semantics invariants\n", s.Failed)
	return b.String()
}

// ChaosRun replays the seeds start … start+cases-1 in chaos mode over
// the given number of workers (0 = GOMAXPROCS). Each case is
// independent and fully seed-determined, so the summary does not depend
// on the worker count. The optional progress callback receives each
// finished report (serialized).
func ChaosRun(start uint64, cases, workers int, opts Options, progress func(*ChaosReport)) ChaosSummary {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sum := ChaosSummary{Cases: cases}
	reports := make([]*ChaosReport, cases)
	var wg sync.WaitGroup
	var mu sync.Mutex
	next := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= cases {
					return
				}
				rep := ChaosSeed(start+uint64(i), opts)
				mu.Lock()
				reports[i] = rep
				if progress != nil {
					progress(rep)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, rep := range reports {
		if rep.Skipped != "" {
			sum.Skipped++
		}
		if rep.Failed() {
			sum.Failed++
			if len(sum.Failures) < MaxFailures {
				sum.Failures = append(sum.Failures, rep)
			}
		}
		sum.FaultRuns += rep.FaultRuns
		sum.FaultsFired += rep.FaultsFired
		if rep.CancelFired {
			sum.CancelsFired++
		}
		if rep.Degraded {
			sum.Degraded++
		}
	}
	return sum
}
