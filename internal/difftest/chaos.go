package difftest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"certsql"
	"certsql/internal/guard"
	"certsql/internal/guard/faultinject"
	"certsql/internal/qgen"
)

// Chaos mode replays seeded qgen cases under injected faults and
// random-point cancellation, asserting the pipeline's failure
// semantics rather than its answers:
//
//   - an injected fault surfaces as an error through the public API —
//     never a panic (panic-kind faults must come back as
//     *guard.InternalError) — or does not fire at all;
//   - a run that reports success returns the complete, correct result:
//     partial results are never passed off as complete;
//   - after any fault or cancellation, the same database answers
//     correctly on a clean retry (no poisoned shared state);
//   - the opt-in degradation ladder only ever returns sound results:
//     a Degraded result equals the certain answers exactly;
//   - the streaming and materializing engines render byte-identical
//     results on every clean chaos case;
//   - a panic injected at the view-materialization site never poisons
//     a cache: the next clean execution of the same prepared statement
//     serves the cached plan and the baseline answer.
//
// Goroutine-baseline checks live in the chaos test, not here: the
// per-case runs share the process, so only a suite-level settle is
// meaningful.

// ChaosReport is the outcome of one chaos case.
type ChaosReport struct {
	// Seed is the qgen seed of the case.
	Seed uint64
	// SQL is the query text of the case.
	SQL string
	// Violations lists broken failure-semantics invariants.
	Violations []Violation
	// FaultRuns counts fault-injected runs executed; FaultsFired how
	// many of them actually hit their planned fault.
	FaultRuns   int
	FaultsFired int
	// CancelFired reports whether the random-point cancellation landed.
	CancelFired bool
	// Degraded reports whether the degradation ladder engaged.
	Degraded bool
	// Skipped, when non-empty, explains why the case was not chaos-
	// checked (e.g. its clean run already exceeds the budget).
	Skipped string
}

// Failed reports whether any invariant broke.
func (r *ChaosReport) Failed() bool { return len(r.Violations) > 0 }

func (r *ChaosReport) violate(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Summary renders the report for logs and t.Fatal messages.
func (r *ChaosReport) Summary() string {
	var b strings.Builder
	if r.Failed() {
		fmt.Fprintf(&b, "chaos: %d invariant(s) violated (seed %d)\n", len(r.Violations), r.Seed)
	} else {
		fmt.Fprintf(&b, "chaos: ok (seed %d)\n", r.Seed)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  [%s] %s\n", v.Invariant, v.Detail)
	}
	fmt.Fprintf(&b, "  query: %s\n", r.SQL)
	fmt.Fprintf(&b, "  fault runs: %d (%d fired), cancel fired: %v, degraded: %v\n",
		r.FaultRuns, r.FaultsFired, r.CancelFired, r.Degraded)
	return b.String()
}

// chaosFaults is the number of distinct-site faults per case.
const chaosFaults = 3

// ChaosSeed generates the case for one seed and replays it under a
// seeded fault plan (chaosFaults distinct sites, each in its own run),
// one random-point cancellation, and one budget-degradation probe.
func ChaosSeed(seed uint64, opts Options) *ChaosReport {
	rng := rand.New(rand.NewSource(int64(seed)))
	db, text := qgen.Case(rng, opts.Tuning)
	rep := &ChaosReport{Seed: seed, SQL: text}
	fdb := certsql.FromInternal(db)
	par := opts.parallelism()

	// Clean baselines. Budget-bound cases are skipped, not failed: the
	// chaos invariants compare against a known-good answer.
	base, err := fdb.QueryWithOptions(text, nil, certsql.Options{Parallelism: par})
	if err != nil {
		if budgetErr(err) {
			rep.Skipped = "baseline: " + err.Error()
			return rep
		}
		rep.violate("baseline", "clean run failed: %v", err)
		return rep
	}
	// Engine cross-check: the chaos corpus doubles as an ablation
	// corpus — the materializing engine must render the streaming
	// baseline's exact bytes.
	if resM, merr := fdb.QueryWithOptions(text, nil, certsql.Options{Parallelism: par, Materialize: true}); merr != nil {
		if !budgetErr(merr) {
			rep.violate("engine-ablation", "materializing clean run failed: %v", merr)
		}
	} else if got, want := resM.Table().String(), base.Table().String(); got != want {
		rep.violate("engine-ablation", "streaming and materializing engines differ:\nstreaming:    %s\nmaterializing: %s", want, got)
	}
	plus, perr := fdb.QueryCertainWithOptions(text, nil, certsql.Options{Parallelism: par})
	if perr != nil && !budgetErr(perr) && !errors.Is(perr, certsql.ErrUntranslatable) {
		rep.violate("baseline", "clean Q⁺ run failed: %v", perr)
		return rep
	}

	// Fault-injected runs: each planned fault gets its own injector and
	// run, over both the standard and (when available) certain routes —
	// the certain route exercises translation-only operators such as
	// view materialization.
	for _, f := range faultinject.Plan(rng, chaosFaults) {
		rep.chaosFaultRun(fdb, text, par, f, "standard", base.SortedStrings(),
			func(o certsql.Options) (*certsql.Result, error) {
				return fdb.QueryWithOptions(text, nil, o)
			})
		if perr == nil {
			rep.chaosFaultRun(fdb, text, par, f, "certain", plus.SortedStrings(),
				func(o certsql.Options) (*certsql.Result, error) {
					return fdb.QueryCertainWithOptions(text, nil, o)
				})
		}
	}

	rep.chaosCachePoison(fdb, text, par)

	// Random-point cancellation: the cancel fault flips the context
	// mid-run. Success means the cancellation landed after the last
	// poll — then the result must be the complete baseline answer.
	cancelFault := faultinject.CancelPlan(rng)
	// vetcert:ignore ctxflow: the chaos harness owns the run's lifecycle —
	// this context exists to be cancelled by the injected fault.
	ctx, cancel := context.WithCancel(context.Background())
	inj := faultinject.New(cancelFault)
	inj.SetCancel(cancel)
	gov := guard.New(ctx, guard.Limits{})
	gov.SetFaultHook(inj)
	// Sharded like the fault runs: cancellation must interrupt a
	// mid-scatter gather without leaking workers or surfacing a partial
	// result, which is exactly the all-or-nothing gather contract.
	res, cerr := fdb.QueryWithOptionsContext(ctx, text, nil, certsql.Options{Parallelism: par, Guard: gov, Shards: 2})
	cancel()
	rep.CancelFired = inj.Fired() > 0
	// vetcert:ignore sentinelswitch: budgetErr covers the whole budget
	// family via the ErrBudget umbrella, and no deadline is set here —
	// a deadline trip would be a violation, which default reports.
	switch {
	case cerr == nil:
		if got, want := fmt.Sprint(res.SortedStrings()), fmt.Sprint(base.SortedStrings()); got != want {
			rep.violate("cancel-partial-result", "%v: run reported success with a partial result:\ngot  %v\nwant %v",
				cancelFault, got, want)
		}
	case errors.Is(cerr, guard.ErrCanceled):
		if !rep.CancelFired {
			rep.violate("cancel-spurious", "%v: ErrCanceled without the cancel fault firing", cancelFault)
		}
	case budgetErr(cerr):
		// A budget trip can race the cancellation; either error is a
		// legitimate stop.
	default:
		rep.violate("cancel-error", "%v: got %v, want guard.ErrCanceled", cancelFault, cerr)
	}
	rep.chaosRetry(fdb, text, par, base.SortedStrings(), "cancellation")

	// Degradation soundness: size the cost budget to roughly half of
	// what the potential-answer route spends, so Q⋆ trips when it has
	// any budget-sensitive operator at all. Whatever happens, a result
	// flagged Degraded must equal the certain answers exactly.
	starGov := guard.Background(guard.Limits{})
	star, serr := fdb.QueryPossibleWithOptions(text, nil, certsql.Options{Parallelism: par, Guard: starGov})
	if serr != nil || perr != nil {
		return rep // no clean Q⋆ or Q⁺ baseline to compare against
	}
	budget := starGov.CostSpent()/2 + 1
	dres, derr := fdb.QueryPossibleWithOptions(text, nil, certsql.Options{
		Parallelism: par, Degrade: true, MaxCostUnits: budget,
	})
	switch {
	case derr != nil:
		// Both Q⋆ and the certain rerun exceeded the budget: a typed
		// budget error is the contract.
		if !errors.Is(derr, guard.ErrBudget) {
			rep.violate("degrade-error", "degraded run failed with a non-budget error: %v", derr)
		}
	case dres.Degraded:
		rep.Degraded = true
		if got, want := fmt.Sprint(dres.SortedStrings()), fmt.Sprint(plus.SortedStrings()); got != want {
			rep.violate("degrade-soundness", "degraded result differs from the certain answers:\ngot  %v\nwant %v", got, want)
		}
		found := false
		for _, w := range dres.Warnings {
			if w.Code == certsql.WarnDegradedToCertain {
				found = true
			}
		}
		if !found {
			rep.violate("degrade-warning", "degraded result carries no %q warning", certsql.WarnDegradedToCertain)
		}
	default:
		// The whole Q⋆ run fit in half its measured cost (nothing
		// budget-sensitive); it must then be the full answer.
		if got, want := fmt.Sprint(dres.SortedStrings()), fmt.Sprint(star.SortedStrings()); got != want {
			rep.violate("degrade-partial-result", "un-degraded run differs from clean Q⋆:\ngot  %v\nwant %v", got, want)
		}
	}
	return rep
}

// chaosFaultRun executes one route under one injected fault and checks
// the failure-semantics invariants, then retries cleanly.
func (rep *ChaosReport) chaosFaultRun(fdb *certsql.DB, text string, par int, f faultinject.Fault,
	route string, want []string, run func(certsql.Options) (*certsql.Result, error)) {
	rep.FaultRuns++
	inj := faultinject.New(f)
	gov := guard.Background(guard.Limits{})
	gov.SetFaultHook(inj)
	// Fault runs execute sharded (Shards: 2): the scatter/gather fault
	// sites only fire on sharded runs, and a sharded result is
	// byte-identical to the unsharded baseline by construction — so the
	// same `want` serves both. Clean retries below run unsharded,
	// pinning that a disturbed sharded run poisons nothing.
	res, err := run(certsql.Options{Parallelism: par, Guard: gov, Shards: 2})
	fired := inj.Fired() > 0
	if fired {
		rep.FaultsFired++
	}
	switch {
	case err == nil && fired:
		rep.violate("fault-swallowed", "%v (%s): fault fired %d time(s) but the run reported success",
			f, route, inj.Fired())
	case err == nil:
		if got := fmt.Sprint(res.SortedStrings()); got != fmt.Sprint(want) {
			rep.violate("fault-partial-result", "%v (%s): unfired fault changed the result:\ngot  %v\nwant %v",
				f, route, got, want)
		}
	case fired && f.Kind == faultinject.KindPanic:
		var ie *guard.InternalError
		if !errors.As(err, &ie) {
			rep.violate("panic-containment", "%v (%s): injected panic surfaced as %v, want *guard.InternalError",
				f, route, err)
		} else if ie.Op == "" || len(ie.Stack) == 0 {
			rep.violate("panic-containment", "%v (%s): InternalError without op/stack: %+v", f, route, ie)
		}
	case fired && f.Kind == faultinject.KindError:
		if !errors.Is(err, faultinject.ErrInjected) && !budgetErr(err) {
			rep.violate("fault-error", "%v (%s): injected error surfaced as %v, want ErrInjected", f, route, err)
		}
	default:
		// err != nil with the fault never firing: only a budget trip is
		// a legitimate spontaneous failure.
		if !budgetErr(err) {
			rep.violate("spurious-error", "%v (%s): unfired fault run failed: %v", f, route, err)
		}
	}
	// Clean retry on the same route and database.
	after := fmt.Sprintf("%v (%s)", f, route)
	rres, rerr := run(certsql.Options{Parallelism: par})
	if rerr != nil {
		rep.violate("retry", "clean retry after %s failed: %v", after, rerr)
		return
	}
	if got := fmt.Sprint(rres.SortedStrings()); got != fmt.Sprint(want) {
		rep.violate("retry", "clean retry after %s differs from baseline:\ngot  %v\nwant %v", after, got, want)
	}
}

// chaosCachePoison asserts the cache-poisoning invariant: a panic
// injected at the view-materialization site during a prepared execution
// surfaces as *guard.InternalError and leaves no partially built entry
// behind — the next clean Execute of the same statement serves the
// cached plan (PlanCacheHits == 1, the poisoned run compiled and
// published a complete plan before evaluation began) and renders the
// baseline bytes.
func (rep *ChaosReport) chaosCachePoison(fdb *certsql.DB, text string, par int) {
	prep, err := fdb.Prepare(text)
	if err != nil {
		return // parse invariants are the oracle's concern, not chaos's
	}
	base, err := prep.ExecuteWithOptions(nil, certsql.Options{Parallelism: par})
	if err != nil {
		return // budget-bound: no known-good answer to compare against
	}
	f := faultinject.Fault{Site: guard.SiteViewMaterialize, Kind: faultinject.KindPanic, HitNumber: 1}
	inj := faultinject.New(f)
	gov := guard.Background(guard.Limits{})
	gov.SetFaultHook(inj)
	_, perr := prep.ExecuteWithOptions(nil, certsql.Options{Parallelism: par, Guard: gov})
	if inj.Fired() == 0 {
		if perr != nil && !budgetErr(perr) {
			rep.violate("cache-poison", "%v: unfired fault run failed: %v", f, perr)
		}
		return // the plan publishes no view; nothing to poison
	}
	rep.FaultRuns++
	rep.FaultsFired++
	var ie *guard.InternalError
	if !errors.As(perr, &ie) {
		rep.violate("cache-poison", "%v: injected panic surfaced as %v, want *guard.InternalError", f, perr)
	}
	res, rerr := prep.ExecuteWithOptions(nil, certsql.Options{Parallelism: par})
	if rerr != nil {
		rep.violate("cache-poison", "clean Execute after %v failed: %v", f, rerr)
		return
	}
	if res.Stats.PlanCacheHits != 1 {
		rep.violate("cache-poison", "clean Execute after %v missed the plan cache, stats %+v", f, res.Stats)
	}
	if got, want := res.Table().String(), base.Table().String(); got != want {
		rep.violate("cache-poison", "clean Execute after %v differs from baseline:\ngot  %s\nwant %s", f, got, want)
	}
}

// chaosRetry asserts the same database still answers the standard
// query correctly after a disturbed run.
func (rep *ChaosReport) chaosRetry(fdb *certsql.DB, text string, par int, want []string, after string) {
	res, err := fdb.QueryWithOptions(text, nil, certsql.Options{Parallelism: par})
	if err != nil {
		rep.violate("retry", "clean retry after %s failed: %v", after, err)
		return
	}
	if got := fmt.Sprint(res.SortedStrings()); got != fmt.Sprint(want) {
		rep.violate("retry", "clean retry after %s differs from baseline:\ngot  %v\nwant %v", after, got, want)
	}
}
