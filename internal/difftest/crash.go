package difftest

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"certsql"
	"certsql/internal/guard"
	"certsql/internal/guard/faultinject"
	"certsql/internal/persist"
	"certsql/internal/table"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// Crash-recovery mode kills the persistent store at seeded crash
// points — a panic injected at one of the durability seams
// (guard.PersistSites), treated as a process death: the store is
// abandoned without any flush and the data directory reopened cold —
// and asserts the recovery contract:
//
//   - recovery succeeds and lands on a valid version: at least the
//     last acknowledged update, at most the last attempted one, never
//     anything else (the on-disk state is a prefix of the published
//     version sequence);
//   - the recovered catalog is byte-identical to an in-RAM oracle of
//     that version: every table, every row, every marked null, and the
//     fresh-null counter;
//   - TPC-H Q1–Q4 answer byte-identically on the recovered catalog and
//     the oracle — recovery is invisible to query results;
//   - the recovered store accepts further updates, and fsck finds a
//     clean directory afterwards;
//   - no panic other than the injected PanicValue ever escapes.
//
// Error-kind faults at the same seams additionally assert the rollback
// path: a refused append leaves the store on its current version and
// usable, and a contained checkpoint failure never loses an update.

// CrashReport is the outcome of one crash-recovery case.
type CrashReport struct {
	Seed uint64
	// Site and Kind describe the injected fault.
	Site guard.Site
	Kind faultinject.Kind
	// Fired reports whether the fault actually landed.
	Fired bool
	// Crashed reports whether the case simulated a process death (an
	// injected panic, as opposed to an injected error).
	Crashed bool
	// Acked and Attempted are the last acknowledged and last attempted
	// versions before the crash; Recovered is the version recovery
	// landed on.
	Acked, Attempted, Recovered uint64
	// Violations lists broken recovery invariants.
	Violations []Violation
}

// Failed reports whether any invariant broke.
func (r *CrashReport) Failed() bool { return len(r.Violations) > 0 }

func (r *CrashReport) violate(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Summary renders the report for logs and t.Fatal messages.
func (r *CrashReport) Summary() string {
	var b strings.Builder
	status := "ok"
	if r.Failed() {
		status = fmt.Sprintf("%d invariant(s) violated", len(r.Violations))
	}
	fmt.Fprintf(&b, "crash-recovery: %s (seed %d, %s@%s, fired %v, crashed %v)\n",
		status, r.Seed, r.Kind, r.Site, r.Fired, r.Crashed)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  [%s] %s\n", v.Invariant, v.Detail)
	}
	fmt.Fprintf(&b, "  versions: acked %d, attempted %d, recovered %d\n", r.Acked, r.Attempted, r.Recovered)
	return b.String()
}

// crashBase is the shared base instance: tiny but with every relation
// populated and nulls present. Cases clone it (rows are shared and
// immutable), so generation cost is paid once per process.
var crashBaseOnce = sync.OnceValue(func() *table.Database {
	return tpch.Generate(tpch.Config{ScaleFactor: 0.0001, Seed: 424242, NullRate: 0.04})
})

// crashMutOp is one concrete, pre-generated catalog mutation. Ops are
// generated as literal rows (not as random draws inside the mutation
// closure) so the exact same bytes can be applied to the store's clone
// and to the in-RAM oracle.
type crashMutOp struct {
	replace bool
	tbl     string
	idx     int
	row     table.Row
}

// crashMutation is one update's worth of ops plus the fresh-null
// counter the database must end on.
type crashMutation struct {
	ops      []crashMutOp
	nextNull int64
}

func (m crashMutation) apply(db *table.Database) error {
	for _, op := range m.ops {
		var err error
		if op.replace {
			err = db.ReplaceRow(op.tbl, op.idx, op.row)
		} else {
			err = db.Insert(op.tbl, op.row)
		}
		if err != nil {
			return err
		}
	}
	db.SetNextNullMark(m.nextNull)
	return nil
}

// genCrashMutation draws 1–3 ops against the current state: duplicate
// inserts, inserts carrying a fresh marked null, and in-place row
// replacements — the full recorded-op surface the WAL must replay.
func genCrashMutation(rng *rand.Rand, db *table.Database) crashMutation {
	m := crashMutation{nextNull: db.NextNullMark()}
	names := db.Schema.Names()
	nops := 1 + rng.Intn(3)
	for i := 0; i < nops; i++ {
		var tbl string
		var t *table.Table
		for {
			tbl = names[rng.Intn(len(names))]
			t = db.MustTable(tbl)
			if t.Len() > 0 {
				break
			}
		}
		rel, _ := db.Schema.Relation(tbl)
		row := append(table.Row{}, t.Row(rng.Intn(t.Len()))...)
		// Half the rows get a fresh null in a nullable attribute.
		if rng.Intn(2) == 0 {
			nullable := []int{}
			for c, a := range rel.Attrs {
				if a.Nullable {
					nullable = append(nullable, c)
				}
			}
			if len(nullable) > 0 {
				row[nullable[rng.Intn(len(nullable))]] = value.Null(m.nextNull)
				m.nextNull++
			}
		}
		op := crashMutOp{tbl: tbl, row: row}
		if rng.Intn(3) == 0 {
			op.replace = true
			op.idx = rng.Intn(t.Len())
		}
		m.ops = append(m.ops, op)
	}
	return m
}

// runGuarded runs fn, converting an injected PanicValue into a
// non-nil return and reporting any other panic as a violation (also
// returned as a crash, so the case stops instead of cascading).
func runGuarded(rep *CrashReport, what string, fn func()) (pv *faultinject.PanicValue) {
	defer func() {
		if rec := recover(); rec != nil {
			if v, ok := rec.(faultinject.PanicValue); ok {
				pv = &v
				return
			}
			rep.violate("panic-escape", "%s: non-injected panic escaped: %v", what, rec)
			pv = &faultinject.PanicValue{}
		}
	}()
	fn()
	return nil
}

// sameCatalogs asserts got is byte-identical to want.
func sameCatalogs(rep *CrashReport, want, got *table.Database) bool {
	ok := true
	for _, name := range want.Schema.Names() {
		w, g := want.MustTable(name), got.MustTable(name)
		if w.Len() != g.Len() {
			rep.violate("byte-identity", "relation %q: %d rows, want %d", name, g.Len(), w.Len())
			ok = false
			continue
		}
		for i, row := range w.Rows() {
			if value.RowKey(row) != value.RowKey(g.Row(i)) {
				rep.violate("byte-identity", "relation %q row %d: %v, want %v", name, i, g.Row(i), row)
				ok = false
				break
			}
		}
	}
	if w, g := want.NextNullMark(), got.NextNullMark(); w != g {
		rep.violate("byte-identity", "next null mark %d, want %d", g, w)
		ok = false
	}
	return ok
}

// checkQueries asserts Q1–Q4 answer byte-identically on the oracle and
// the recovered catalog, under seeded parameters.
func checkQueries(rep *CrashReport, seed uint64, want, got *table.Database) {
	prng := rand.New(rand.NewSource(int64(seed) ^ 0x5deece66d))
	sz := tpch.Config{ScaleFactor: 0.0001}.Sizes()
	wdb, gdb := certsql.FromInternal(want), certsql.FromInternal(got)
	for _, q := range tpch.AllQueries {
		params := q.Params(prng, sz)
		wres, werr := wdb.Query(q.SQL(), params)
		gres, gerr := gdb.Query(q.SQL(), params)
		if (werr == nil) != (gerr == nil) {
			rep.violate("query-identity", "%s: oracle err %v, recovered err %v", q, werr, gerr)
			continue
		}
		if werr != nil {
			rep.violate("query-identity", "%s failed on the oracle: %v", q, werr)
			continue
		}
		w := strings.Join(wres.Table().SortedStrings(), "\n")
		g := strings.Join(gres.Table().SortedStrings(), "\n")
		if w != g {
			rep.violate("query-identity", "%s differs after recovery:\noracle:\n%s\nrecovered:\n%s", q, w, g)
		}
	}
}

// crashUpdates is the number of update attempts per case — enough for
// the largest planned hit number to land at every seam, including the
// once-per-checkpoint ones (CheckpointEvery is 2 in this suite).
const crashUpdates = 12

// CrashSeed runs one seeded crash-recovery case in dir (which must be
// empty). The fault site cycles with the seed so a contiguous seed
// range covers every durability seam; kind and hit number are drawn
// from the seed's rng (two thirds simulated crashes, one third
// injected I/O errors).
func CrashSeed(seed uint64, dir string) *CrashReport {
	rng := rand.New(rand.NewSource(int64(seed)))
	site := guard.PersistSites[int(seed)%len(guard.PersistSites)]
	kind := faultinject.KindPanic
	if rng.Intn(3) == 0 {
		kind = faultinject.KindError
	}
	fault := faultinject.PersistPlan(rng, site, kind)
	rep := &CrashReport{Seed: seed, Site: site, Kind: kind, Acked: 1, Attempted: 1}

	base := crashBaseOnce()
	seedFn := func() (*table.Database, error) { return base.Clone(), nil }
	inj := faultinject.New(fault)

	// One case in five arms the fault before the very first Open, so
	// crashes land inside the initial checkpoint as well.
	armEarly := seed%5 == 0
	var openHook guard.FaultHook
	if armEarly {
		openHook = inj
	}
	opts := func(h guard.FaultHook) persist.Options {
		return persist.Options{CheckpointEvery: 2, Hook: h}
	}

	var st *persist.Store
	var openErr error
	pv := runGuarded(rep, "open", func() { st, openErr = persist.Open(dir, seedFn, opts(openHook)) })
	if pv != nil || openErr != nil {
		rep.Fired = true
		rep.Crashed = pv != nil
		if openErr != nil && !errors.Is(openErr, faultinject.ErrInjected) {
			rep.violate("open", "fresh open failed with a non-injected error: %v", openErr)
			return rep
		}
		if st != nil {
			st.Abandon()
		}
		// The manifest was never published (the fault fired before the
		// commit point), so the reopen must seed again at version 1.
		recoverAndCheck(rep, seed, dir, base, nil, seedFn)
		return rep
	}

	// Main loop: seeded updates against the store and a parallel in-RAM
	// oracle; the fault is armed after open unless it already was.
	oracle := map[uint64]*table.Database{1: base}
	cur := base
	if !armEarly {
		// Hooks are consulted under the store's writer lock; swapping
		// the option in is not possible, so the store was opened with
		// no hook and updates run against a re-opened handle. Cheaper:
		// the store is opened armed but with the fault's hit counters
		// starting only now — PersistPlan hit numbers are small, and
		// the fresh-open checkpoint would eat them. So: reopen armed.
		st.Close()
		pv = runGuarded(rep, "rearm-open", func() { st, openErr = persist.Open(dir, seedFn, opts(inj)) })
		if pv != nil || openErr != nil {
			rep.violate("open", "re-opening with the armed hook must not fault before any update (err %v, panic %v)", openErr, pv)
			return rep
		}
	}

	crashed := false
	for i := 0; i < crashUpdates && !crashed; i++ {
		mut := genCrashMutation(rng, cur)
		next := cur.Clone()
		if err := mut.apply(next); err != nil {
			rep.violate("harness", "oracle mutation failed: %v", err)
			return rep
		}
		rep.Attempted = rep.Acked + 1
		oracle[rep.Attempted] = next

		var v uint64
		var err error
		pv = runGuarded(rep, fmt.Sprintf("update %d", i), func() { v, err = st.Update(mut.apply) })
		switch {
		case pv != nil:
			rep.Fired, rep.Crashed, crashed = true, true, true
		case err != nil:
			if !errors.Is(err, faultinject.ErrInjected) {
				rep.violate("update-error", "update %d failed with a non-injected error: %v", i, err)
				return rep
			}
			rep.Fired = true
			// Rolled back: the store must still be on the acked version.
			if got := st.Version(); got != rep.Acked {
				rep.violate("rollback", "after a refused update the store is at version %d, want %d", got, rep.Acked)
			}
			delete(oracle, rep.Attempted)
			rep.Attempted = rep.Acked
		default:
			if v != rep.Acked+1 {
				rep.violate("monotone", "update %d published version %d, want %d", i, v, rep.Acked+1)
				return rep
			}
			if inj.Fired() > 0 {
				// An error fault inside the checkpoint path is contained
				// and the update still acks — that is the contract.
				rep.Fired = true
			}
			rep.Acked = v
			cur = next
		}
	}

	if crashed {
		st.Abandon()
	} else if err := st.Close(); err != nil {
		rep.violate("close", "clean close failed: %v", err)
		return rep
	}
	recoverAndCheck(rep, seed, dir, cur, oracle, seedFn)
	return rep
}

// recoverAndCheck reopens dir with no fault hook and asserts the full
// recovery contract. oracle maps versions to expected catalogs; nil
// means "only version 1 = base is valid" (crash before first publish).
func recoverAndCheck(rep *CrashReport, seed uint64, dir string, base *table.Database, oracle map[uint64]*table.Database, seedFn func() (*table.Database, error)) {
	var st *persist.Store
	var err error
	if pv := runGuarded(rep, "recovery", func() { st, err = persist.Open(dir, seedFn, persist.Options{CheckpointEvery: 2}) }); pv != nil {
		rep.violate("recovery", "recovery panicked")
		return
	}
	if err != nil {
		rep.violate("recovery", "recovery failed: %v", err)
		return
	}
	defer st.Abandon() // release handles; the dir is torn down by the test

	rep.Recovered = st.Version()
	if oracle == nil {
		oracle = map[uint64]*table.Database{1: base}
		rep.Acked, rep.Attempted = 1, 1
	}
	if rep.Recovered < rep.Acked || rep.Recovered > rep.Attempted {
		rep.violate("monotone", "recovered to version %d, outside [acked %d, attempted %d]",
			rep.Recovered, rep.Acked, rep.Attempted)
		return
	}
	want := oracle[rep.Recovered]
	if want == nil {
		rep.violate("monotone", "recovered to version %d, which was never a candidate", rep.Recovered)
		return
	}
	got := st.Snapshot().DB
	if !sameCatalogs(rep, want, got) {
		return
	}
	checkQueries(rep, seed, want, got)

	// The recovered store must accept updates…
	mut := genCrashMutation(rand.New(rand.NewSource(int64(seed)+1)), want)
	if v, err := st.Update(mut.apply); err != nil || v != rep.Recovered+1 {
		rep.violate("post-recovery", "update after recovery: version %d, err %v", v, err)
		return
	}
	// …and leave a directory fsck calls clean.
	report, err := persist.Fsck(dir)
	if err != nil {
		rep.violate("post-recovery", "fsck: %v", err)
		return
	}
	if !report.Clean() {
		details := make([]string, 0, len(report.Findings))
		for _, f := range report.Findings {
			details = append(details, f.String())
		}
		rep.violate("post-recovery", "fsck found %d problem(s) after recovery:\n%s",
			len(report.Findings), strings.Join(details, "\n"))
	}
}
