package difftest

import (
	"testing"

	"certsql/internal/qgen"
)

// FuzzShardAblation explores the seed space for cases where sharded
// scatter-gather execution diverges from the unsharded run — any byte
// of difference, at any shard count, on any route, under either engine
// or planner, is a bug.
func FuzzShardAblation(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if rep := CheckShardSeed(seed, qgen.Tuning{}); rep.Failed() {
			t.Fatal(rep.Summary())
		}
	})
}

// TestShardAblationSmoke is the CI smoke sweep: 200 seeded cases with
// the default generator plus 100 biased towards null-free schemas — on
// those the statistics prove build sides null-free, so the co-partition
// path (not just broadcast) actually executes — all of which must pass
// the shard-ablation invariant.
func TestShardAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	t.Parallel()
	for seed := uint64(1); seed <= 200; seed++ {
		if rep := CheckShardSeed(seed, qgen.Tuning{}); rep.Failed() {
			t.Fatal(rep.Summary())
		}
	}
	for seed := uint64(1); seed <= 100; seed++ {
		if rep := CheckShardSeed(seed, qgen.Tuning{NullFreeProb: 0.6}); rep.Failed() {
			t.Fatal(rep.Summary())
		}
	}
}
