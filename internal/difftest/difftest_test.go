package difftest

import (
	"strings"
	"testing"

	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/value"
)

// TestOracleClean: the pipeline passes the oracle on a seed range. Any
// failure here is a real bug in the pipeline (or the oracle) and comes
// with a seed to reproduce it.
func TestOracleClean(t *testing.T) {
	sum := Run(1, 150, 0, Options{}, nil)
	if sum.Failed > 0 {
		for _, rep := range sum.Failures {
			t.Error(rep.Summary())
		}
		t.Fatalf("%d of %d cases violated invariants", sum.Failed, sum.Cases)
	}
	if sum.Translatable == 0 || sum.BruteForced == 0 {
		t.Fatalf("oracle exercised nothing: %+v", sum)
	}
}

func totalRows(db *table.Database) int {
	n := 0
	for _, name := range db.Schema.Names() {
		n += db.MustTable(name).Len()
	}
	return n
}

// falsePositivePred holds on cases where plain SQL evaluation returns a
// non-certain answer — the paper's headline phenomenon. It plays the
// role of an injected bug for exercising the minimizer end to end: the
// "buggy pipeline" is standard evaluation posing as certain-answer
// evaluation.
func falsePositivePred(db *table.Database, text string) bool {
	q, err := sql.Parse(text)
	if err != nil {
		return false
	}
	compiled, err := compile.Compile(q, db.Schema, nil)
	if err != nil {
		return false
	}
	if certain.CheckTranslatable(compiled.Expr) != nil {
		return false
	}
	std, err := eval.New(db, eval.Options{Parallelism: 1}).Eval(compiled.Expr)
	if err != nil {
		return false
	}
	fp, err := certain.FalsePositives(compiled.Expr, db, std, certain.BruteForceOptions{})
	if err != nil {
		return false
	}
	return fp.Len() > 0
}

// TestMinimizeShrinksFalsePositiveCase finds a generated case where
// standard evaluation has false positives and shrinks it to the
// acceptance bound: at most 3 rows over at most 2 relations.
func TestMinimizeShrinksFalsePositiveCase(t *testing.T) {
	for seed := uint64(1); seed <= 300; seed++ {
		rep := CheckSeed(seed, Options{})
		if rep.Failed() {
			t.Fatal(rep.Summary())
		}
		if !falsePositivePred(rep.DB, rep.SQL) {
			continue
		}
		db, text := Minimize(rep.DB, rep.SQL, falsePositivePred)
		if !falsePositivePred(db, text) {
			t.Fatalf("minimization lost the failure\nquery: %s", text)
		}
		if rows := totalRows(db); rows > 3 {
			t.Errorf("shrunken case has %d rows, want <= 3\nquery: %s", rows, text)
		}
		if rels := len(db.Schema.Names()); rels > 2 {
			t.Errorf("shrunken case has %d relations, want <= 2\nquery: %s", rels, text)
		}
		if len(text) >= len(rep.SQL) && totalRows(db) >= totalRows(rep.DB) {
			t.Errorf("minimizer made no progress:\nbefore: %s\nafter:  %s", rep.SQL, text)
		}
		t.Logf("seed %d shrank to %d rows, %d relations: %s",
			seed, totalRows(db), len(db.Schema.Names()), text)
		return
	}
	t.Fatal("no generated case with standard-evaluation false positives in 300 seeds")
}

// TestMinimizeRespectsContracts: the minimizer must not shrink into a
// database that breaks the pipeline's preconditions (here: a duplicate
// primary key), even when a predicate would accept it.
func TestMinimizeRespectsContracts(t *testing.T) {
	rep := CheckSeed(1, Options{})
	greedy := func(db *table.Database, text string) bool { return !contractsHold(db) }
	db, _ := Minimize(rep.DB, rep.SQL, greedy)
	if !contractsHold(db) {
		t.Fatal("minimizer produced a contract-breaking database")
	}
}

// TestGoReproShape: the emitted repro is a complete test function that
// rebuilds the database values and query verbatim.
func TestGoReproShape(t *testing.T) {
	rep := CheckSeed(3, Options{})
	src := GoRepro("Sample", rep.DB, rep.SQL)
	for _, want := range []string{
		"func TestReproSample(t *testing.T)",
		"schema.New()",
		"table.NewDatabase(sch)",
		"difftest.Check(db, ",
		"rep.Failed()",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("repro missing %q:\n%s", want, src)
		}
	}
	if rep.DB.NullCount() > 0 && !strings.Contains(src, "value.Null(") {
		t.Errorf("repro lost the null marks:\n%s", src)
	}
}

// TestCheckInvalidText: arbitrary strings are skips by default and
// violations under RequireValid.
func TestCheckInvalidText(t *testing.T) {
	rep := CheckSeed(1, Options{})
	if r := Check(rep.DB, "NOT SQL AT ALL", Options{}); r.Failed() {
		t.Fatalf("arbitrary text must skip, got %s", r.Summary())
	}
	if r := Check(rep.DB, "NOT SQL AT ALL", Options{RequireValid: true}); !r.Has("parse") {
		t.Fatalf("RequireValid must flag a parse violation, got %s", r.Summary())
	}
}

// TestSetOpCertainForcing: QueryCertain on a set-operation query must
// actually evaluate the translation (regression for the facade ignoring
// the flags on non-SelectStmt bodies).
func TestSetOpCertainForcing(t *testing.T) {
	q, err := sql.Parse("SELECT CERTAIN a FROM r0 EXCEPT SELECT a FROM r0")
	if err != nil {
		t.Fatal(err)
	}
	sel := leadSelect(q.Body)
	if sel == nil || !sel.Certain {
		t.Fatal("CERTAIN flag not reachable on a set-op body")
	}
}

func TestValueLit(t *testing.T) {
	for _, tc := range []struct {
		v    value.Value
		want string
	}{
		{value.Int(-7), "value.Int(-7)"},
		{value.Float(0.5), "value.Float(0.5)"},
		{value.Str("a'b"), `value.Str("a'b")`},
		{value.Bool(true), "value.Bool(true)"},
		{value.Null(12), "value.Null(12)"},
	} {
		if got := valueLit(tc.v); got != tc.want {
			t.Errorf("valueLit(%s) = %s, want %s", tc.v, got, tc.want)
		}
	}
}
