// Package difftest is the differential-testing oracle for the whole
// certain-answer pipeline. It runs one (database, SQL text) case through
// the full certsql facade — parser, compiler, Q⁺/Q⋆ translations,
// SQL-to-SQL rewriting and the executor — and cross-checks the results
// against each other and against the brute-force ground truth:
//
//   - round-trip: parsing the rendered SQL reproduces the same text;
//   - soundness: Q⁺(D) ⊆ cert(Q, D), computed by brute-force valuation
//     enumeration (Theorem 1), in both SQL-3VL and naive modes;
//   - representation: Q(v(D)) ⊆ v(Q⋆(D)) for every valuation v in the
//     brute-force pool (Lemma 2);
//   - optimization equivalence: the OR-split, null-simplification and
//     key-simplification passes leave the Q⁺ result unchanged;
//   - rewrite re-execution: when the database has no repeated marks,
//     running the SQL text of Q⁺ produced by rewrite.ToSQL gives the
//     same result as evaluating the translation directly;
//   - executor agreement: Parallelism=1 and Parallelism=N render
//     byte-identical results, the streaming and materializing engines
//     render byte-identical results (and agree on fast-path hits), and
//     the hash-join / subplan-cache / short-circuit ablations give the
//     same result sets;
//   - planner ablation: the cost-based planner and the paper-faithful
//     naive planner render byte-identical results on the standard and
//     certain routes, agree on fast-path hits, and share plan-cache
//     entries on the prepared path;
//   - cost audit: the planner's estimates are internally consistent and
//     its rewrites invent no predicate atoms.
//
// Cases come from internal/qgen and are pure functions of a seed, so a
// failure is reproduced by its seed alone; Minimize shrinks a failing
// case and GoRepro prints it as a ready-to-paste Go test.
package difftest

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"certsql"
	"certsql/internal/algebra"
	"certsql/internal/analyze"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/plan"
	"certsql/internal/qgen"
	"certsql/internal/sql"
	"certsql/internal/stats"
	"certsql/internal/table"
	"certsql/internal/value"
)

// Options configure one oracle run.
type Options struct {
	// Tuning sets the generator knobs for seed-driven cases (CheckSeed);
	// the zero value uses qgen's defaults.
	Tuning qgen.Tuning
	// BruteForce bounds the ground-truth computation; cases beyond the
	// budget skip the brute-force invariants instead of failing.
	BruteForce certain.BruteForceOptions
	// Parallelism is the worker count for the P=1 vs P=N executor
	// comparison (default 4).
	Parallelism int
	// RequireValid treats SQL that does not parse or compile as a
	// violation instead of a skip. CheckSeed sets it: generated SQL must
	// be inside the supported fragment, arbitrary fuzz strings need not.
	RequireValid bool
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return 4
	}
	return o.Parallelism
}

// Violation is one broken invariant.
type Violation struct {
	// Invariant is the short machine-readable name ("plus-soundness",
	// "parallel-agreement", …).
	Invariant string
	// Detail is the human-readable evidence.
	Detail string
}

// Report is the outcome of checking one case.
type Report struct {
	// Seed is the generator seed, when the case came from CheckSeed.
	Seed uint64
	// SQL is the query text of the case.
	SQL string
	// DB is the database of the case.
	DB *table.Database
	// Violations lists every broken invariant (empty = case passed).
	Violations []Violation
	// Skips names invariants not checked on this case and why
	// ("brute-force: budget", "certain: not translatable", …).
	Skips []string
	// Translatable reports whether the query admits the certain-answer
	// translation (aggregate queries do not — Section 8 of the paper).
	Translatable bool
	// BruteForced reports whether the ground truth fit in the budget.
	BruteForced bool
	// RecallExact reports Q⁺(D) = cert(Q, D) on this case (the paper
	// measures 100% recall; the translation only guarantees ⊆).
	RecallExact bool
	// AnalyzerSafe reports the static analyzer's verdict on the plain
	// plan: safe means plain evaluation provably returns exactly the
	// certain answers (checked against the brute force below).
	AnalyzerSafe bool
	// FastPath reports whether the default SELECT CERTAIN evaluation
	// actually took the analyzer fast path on this case.
	FastPath bool
}

// Failed reports whether any invariant broke.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Has reports whether the named invariant broke.
func (r *Report) Has(invariant string) bool {
	for _, v := range r.Violations {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

func (r *Report) violate(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

func (r *Report) skip(reason string) {
	r.Skips = append(r.Skips, reason)
}

// Summary renders the report for logs and t.Fatal messages.
func (r *Report) Summary() string {
	var b strings.Builder
	if r.Failed() {
		fmt.Fprintf(&b, "difftest: %d invariant(s) violated (seed %d)\n", len(r.Violations), r.Seed)
	} else {
		fmt.Fprintf(&b, "difftest: ok (seed %d)\n", r.Seed)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  [%s] %s\n", v.Invariant, v.Detail)
	}
	fmt.Fprintf(&b, "  query: %s\n", r.SQL)
	fmt.Fprintf(&b, "  analyzer: safe=%v fast-path=%v\n", r.AnalyzerSafe, r.FastPath)
	if r.DB != nil {
		for _, name := range r.DB.Schema.Names() {
			rel, _ := r.DB.Schema.Relation(name)
			fmt.Fprintf(&b, "  %s: %s\n", rel, strings.Join(r.DB.MustTable(name).SortedStrings(), " "))
		}
	}
	return b.String()
}

// CheckSeed generates the case for one seed and checks it.
func CheckSeed(seed uint64, opts Options) *Report {
	rng := rand.New(rand.NewSource(int64(seed)))
	db, text := qgen.Case(rng, opts.Tuning)
	opts.RequireValid = true
	rep := Check(db, text, opts)
	rep.Seed = seed
	return rep
}

// budgetErr reports errors that mean "case too expensive", which skip an
// invariant rather than violate it.
func budgetErr(err error) bool {
	return errors.Is(err, eval.ErrTooLarge) || errors.Is(err, certain.ErrBruteForceTooLarge)
}

// Check runs every oracle invariant on one case.
func Check(db *table.Database, text string, opts Options) *Report {
	rep := &Report{SQL: text, DB: db}

	q, err := sql.Parse(text)
	if err != nil {
		if opts.RequireValid {
			rep.violate("parse", "generated SQL does not parse: %v", err)
		} else {
			rep.skip("parse: " + err.Error())
		}
		return rep
	}

	// Round-trip stability: render → parse → render is a fixpoint.
	rendered := q.SQL()
	q2, err := sql.Parse(rendered)
	switch {
	case err != nil:
		rep.violate("roundtrip", "rendered SQL does not reparse: %v\nrendered: %s", err, rendered)
	case q2.SQL() != rendered:
		rep.violate("roundtrip", "render/parse not a fixpoint:\nfirst:  %s\nsecond: %s", rendered, q2.SQL())
	}

	compiled, err := compile.Compile(q2, db.Schema, nil)
	if err != nil {
		if opts.RequireValid {
			rep.violate("compile", "generated SQL does not compile: %v", err)
		} else {
			rep.skip("compile: " + err.Error())
		}
		return rep
	}
	expr := compiled.Expr
	rep.AnalyzerSafe = analyze.Plan(expr, db.Schema).Safe

	fdb := certsql.FromInternal(db)

	// Standard evaluation, sequential baseline.
	base, err := fdb.QueryWithOptions(text, nil, certsql.Options{Parallelism: 1})
	if err != nil {
		if budgetErr(err) {
			rep.skip("eval: " + err.Error())
			return rep
		}
		rep.violate("eval", "standard evaluation failed: %v", err)
		return rep
	}

	// Executor agreement: P=N must be byte-identical, strategy ablations
	// must give the same result set (row order may differ).
	if resN, err := fdb.QueryWithOptions(text, nil, certsql.Options{Parallelism: opts.parallelism()}); err != nil {
		rep.violate("parallel-agreement", "P=%d evaluation failed: %v", opts.parallelism(), err)
	} else if got, want := resN.Table().String(), base.Table().String(); got != want {
		rep.violate("parallel-agreement", "P=1 and P=%d differ:\nP=1: %s\nP=N: %s", opts.parallelism(), want, got)
	}
	// Engine ablation: the materializing executor must render the exact
	// bytes of the streaming default — not just the same set. Row order,
	// duplicate handling and mark minting all have to agree.
	if resM, err := fdb.QueryWithOptions(text, nil, certsql.Options{Materialize: true, Parallelism: 1}); err != nil {
		if budgetErr(err) {
			rep.skip("engine-ablation: " + err.Error())
		} else {
			rep.violate("engine-ablation", "materializing evaluation failed: %v", err)
		}
	} else if got, want := resM.Table().String(), base.Table().String(); got != want {
		rep.violate("engine-ablation", "streaming and materializing engines differ:\nstreaming:    %s\nmaterializing: %s", want, got)
	}
	// Planner ablation: the cost-based planner must be invisible in the
	// result bytes — same rows, same order, same duplicates, same mark
	// minting — so the paper-faithful naive plan and the optimized plan
	// are compared raw, not as sets. A budget trip on either side only
	// skips (the planner legitimately changes what fits in a budget).
	if resP, err := fdb.QueryWithOptions(text, nil, certsql.Options{NaivePlanner: true, Parallelism: 1}); err != nil {
		if budgetErr(err) {
			rep.skip("planner-ablation: " + err.Error())
		} else {
			rep.violate("planner-ablation", "naive-planner evaluation failed: %v", err)
		}
	} else if got, want := resP.Table().String(), base.Table().String(); got != want {
		rep.violate("planner-ablation", "cost-based and naive planner differ:\ncost-based: %s\nnaive:      %s", want, got)
	}
	// Shard ablation: scatter-gather execution must be invisible in the
	// result bytes — same rows, same order, same mark minting — at any
	// shard count, on both engines and both planners. CheckShardSeed
	// runs the full route × shard-count matrix; this block keeps the
	// main oracle sensitive to shard regressions too.
	for name, o := range map[string]certsql.Options{
		"shards-2":       {Shards: 2, Parallelism: 1},
		"shards-3":       {Shards: 3, Parallelism: 1},
		"shards-8":       {Shards: 8, Parallelism: 1},
		"shards-2-mat":   {Shards: 2, Materialize: true, Parallelism: 1},
		"shards-2-naive": {Shards: 2, NaivePlanner: true, Parallelism: 1},
	} {
		res, err := fdb.QueryWithOptions(text, nil, o)
		if err != nil {
			if budgetErr(err) {
				rep.skip("shard-ablation " + name + ": " + err.Error())
			} else {
				rep.violate("shard-ablation", "%s evaluation failed: %v", name, err)
			}
			continue
		}
		if got, want := res.Table().String(), base.Table().String(); got != want {
			rep.violate("shard-ablation", "%s differs from the unsharded run:\nunsharded: %s\nsharded:   %s", name, want, got)
		}
	}

	// Cost audit: the planner's estimates satisfy their internal
	// consistency invariants and its rewrites invented no predicates.
	checkPlanAudit(rep, db, expr)

	for name, o := range map[string]certsql.Options{
		"no-hash-join":     {NoHashJoin: true, Parallelism: 1},
		"no-view-cache":    {NoViewCache: true, Parallelism: 1},
		"no-short-circuit": {NoShortCircuit: true, Parallelism: 1},
	} {
		res, err := fdb.QueryWithOptions(text, nil, o)
		if err != nil {
			rep.violate("executor-ablation", "%s evaluation failed: %v", name, err)
			continue
		}
		if !sameSet(res.Table(), base.Table()) {
			rep.violate("executor-ablation", "%s changes the result:\nbase:     %v\nablation: %v",
				name, base.SortedStrings(), res.SortedStrings())
		}
	}

	if err := certain.CheckTranslatable(expr); err != nil {
		rep.skip("certain: " + err.Error())
		return rep
	}
	rep.Translatable = true

	// The certain-answer translation and its ablations.
	plus, err := fdb.QueryCertain(text, nil)
	if err != nil {
		if budgetErr(err) {
			rep.skip("plus: " + err.Error())
			return rep
		}
		rep.violate("plus-eval", "Q⁺ evaluation failed: %v", err)
		return rep
	}
	rep.FastPath = plus.Stats.FastPathHits > 0
	// The fast path must fire exactly when the analyzer proves the plan
	// safe on conforming data — and never change the answer (the
	// no-fast-path ablation below compares the results).
	if want := rep.AnalyzerSafe && dbConformsNonNull(db); rep.FastPath != want {
		rep.violate("fast-path-taken", "analyzer safe=%v, data conforms=%v, but fast path taken=%v",
			rep.AnalyzerSafe, dbConformsNonNull(db), rep.FastPath)
	}
	for name, o := range map[string]certsql.Options{
		"no-or-split":       {NoOrSplit: true},
		"no-simplify-nulls": {NoSimplifyNulls: true},
		"no-key-simplify":   {NoKeySimplify: true},
		"no-fast-path":      {NoAnalyzerFastPath: true},
		"all-off":           {NoOrSplit: true, NoSimplifyNulls: true, NoKeySimplify: true, NoAnalyzerFastPath: true},
	} {
		res, err := queryCertainWithOptions(fdb, text, o)
		if err != nil {
			if budgetErr(err) {
				rep.skip("translation-ablation " + name + ": " + err.Error())
				continue
			}
			rep.violate("translation-ablation", "%s Q⁺ evaluation failed: %v", name, err)
			continue
		}
		if !sameSet(res.Table(), plus.Table()) {
			rep.violate("translation-ablation", "%s changes Q⁺:\nfull: %v\n%s: %v",
				name, plus.SortedStrings(), name, res.SortedStrings())
		}
	}
	// Planner ablation on the certain route: byte-identical Q⁺ bytes and
	// the same fast-path decision (the analyzer verdict precedes the
	// planner, so it can never depend on it).
	if resP, err := queryCertainWithOptions(fdb, text, certsql.Options{NaivePlanner: true}); err != nil {
		if budgetErr(err) {
			rep.skip("planner-ablation plus: " + err.Error())
		} else {
			rep.violate("planner-ablation", "naive-planner Q⁺ evaluation failed: %v", err)
		}
	} else {
		if got, want := resP.Table().String(), plus.Table().String(); got != want {
			rep.violate("planner-ablation", "cost-based and naive planner differ on Q⁺:\ncost-based: %s\nnaive:      %s", want, got)
		}
		if resP.Stats.FastPathHits != plus.Stats.FastPathHits {
			rep.violate("planner-ablation", "fast-path hits differ across planners: cost-based=%d naive=%d",
				plus.Stats.FastPathHits, resP.Stats.FastPathHits)
		}
	}

	// Engine ablation on the certain route: the materializing executor
	// must reproduce Q⁺ byte-for-byte AND take the analyzer fast path on
	// exactly the same cases — the fast-path decision is data- and
	// plan-dependent, never engine-dependent.
	if resM, err := queryCertainWithOptions(fdb, text, certsql.Options{Materialize: true}); err != nil {
		if budgetErr(err) {
			rep.skip("engine-ablation plus: " + err.Error())
		} else {
			rep.violate("engine-ablation", "materializing Q⁺ evaluation failed: %v", err)
		}
	} else {
		if got, want := resM.Table().String(), plus.Table().String(); got != want {
			rep.violate("engine-ablation", "streaming and materializing engines differ on Q⁺:\nstreaming:    %s\nmaterializing: %s", want, got)
		}
		if resM.Stats.FastPathHits != plus.Stats.FastPathHits {
			rep.violate("engine-ablation", "fast-path hits differ across engines: streaming=%d materializing=%d",
				plus.Stats.FastPathHits, resM.Stats.FastPathHits)
		}
	}
	// Prepared-statement reuse: Prepare on the certain-forced text and
	// Execute twice — the first execution compiles exactly one plan, the
	// second must serve it from the plan cache, and both must agree
	// byte-for-byte with the ad-hoc Q⁺ evaluation. The serving layer
	// leans on this invariant: every certsqld query (ad-hoc included)
	// runs through the prepared path.
	checkPreparedReuse(rep, fdb, text, plus)

	naive, err := queryCertainWithOptions(fdb, text, certsql.Options{Naive: true})
	if err != nil && !budgetErr(err) {
		rep.violate("plus-eval", "naive-mode Q⁺ evaluation failed: %v", err)
		naive = nil
	}

	// Rewrite re-execution: exact only without repeated marks, because
	// SQL's Codd nulls cannot express mark equality (Section 7).
	if !hasRepeatedMarks(db) {
		checkRewrite(rep, fdb, text, plus)
	} else {
		rep.skip("rewrite: repeated marks")
	}

	// The brute-force invariants only apply when every scalar aggregate
	// subquery is rigid: the translation treats scalars as black-box
	// constants (paper §7), which forfeits the certain-answer guarantee
	// over valuation-dependent aggregate input.
	if !certain.RigidScalars(expr, db.Schema) {
		rep.skip("brute-force: non-rigid scalar aggregate subquery (black-box constant, paper §7)")
		return rep
	}

	// Ground truth: brute-force certain answers.
	cert, err := certain.CertainAnswers(expr, db, opts.BruteForce)
	if err != nil {
		if budgetErr(err) {
			rep.skip("brute-force: " + err.Error())
			return rep
		}
		rep.violate("brute-force", "ground truth failed: %v", err)
		return rep
	}
	rep.BruteForced = true

	// Analyzer soundness: a safe verdict promises that plain evaluation —
	// under SQL and naive semantics alike — returns exactly the certain
	// answers on data that honours the schema's NOT NULL declarations.
	// Evaluate the compiled plan directly (the case text may itself say
	// SELECT CERTAIN, which the facade would translate again).
	if rep.AnalyzerSafe && dbConformsNonNull(db) {
		for _, sem := range []value.Semantics{value.SQL3VL, value.Naive} {
			res, err := eval.New(db, eval.Options{Semantics: sem, Parallelism: 1}).Eval(expr)
			if err != nil {
				if budgetErr(err) {
					rep.skip(fmt.Sprintf("analyzer-soundness (%v): %v", sem, err))
					continue
				}
				rep.violate("analyzer-soundness", "plain evaluation (%v) of a safe plan failed: %v", sem, err)
				continue
			}
			if !sameSet(res, cert) {
				rep.violate("analyzer-soundness",
					"analyzer calls the plan safe, but plain evaluation (%v) ≠ cert:\nplain: %v\ncert:  %v",
					sem, res.SortedStrings(), cert.SortedStrings())
			}
		}
	}

	// Soundness (Theorem 1): Q⁺(D) ⊆ cert(Q, D), in both modes.
	if row, ok := firstExtra(plus.Table(), cert); !ok {
		rep.violate("plus-soundness", "Q⁺ returned a non-certain answer %s\nQ⁺:   %v\ncert: %v",
			value.RowKey(row), plus.SortedStrings(), cert.SortedStrings())
	}
	if naive != nil {
		if row, ok := firstExtra(naive.Table(), cert); !ok {
			rep.violate("plus-soundness", "naive-mode Q⁺ returned a non-certain answer %s", value.RowKey(row))
		}
	}
	rep.RecallExact = len(plus.Table().KeySet()) == len(cert.KeySet()) && !rep.Has("plus-soundness")

	// Representation (Lemma 2): Q(v(D)) ⊆ v(Q⋆(D)) for every valuation.
	star, err := fdb.QueryPossible(text, nil)
	if err != nil {
		if budgetErr(err) {
			rep.skip("star: " + err.Error())
			return rep
		}
		rep.violate("star-eval", "Q⋆ evaluation failed: %v", err)
		return rep
	}
	ok, missing, witness, err := certain.RepresentsPotentialAnswers(expr, db, star.Table(), opts.BruteForce)
	switch {
	case err != nil && budgetErr(err):
		rep.skip("star: " + err.Error())
	case err != nil:
		rep.violate("star-representation", "representation check failed: %v", err)
	case !ok:
		rep.violate("star-representation",
			"Q⋆ misses answer %s under valuation %v\nQ⋆: %v", value.RowKey(missing), witness, star.SortedStrings())
	}
	return rep
}

// queryCertainWithOptions is QueryCertain with explicit options (the
// facade couples the two only through the query text).
// checkPreparedReuse verifies the plan-cache contract: a prepared
// certain-answer query compiles once, hits the cache on re-execution,
// and the cached plan's answer is byte-identical to ad-hoc evaluation.
func checkPreparedReuse(rep *Report, fdb *certsql.DB, text string, plus *certsql.Result) {
	q, err := sql.Parse(text)
	if err != nil {
		return // the roundtrip invariant already reports parse failures
	}
	sel := leadSelect(q.Body)
	if sel == nil {
		return
	}
	sel.Certain = true
	sel.Possible = false
	prep, err := fdb.Prepare(q.SQL())
	if err != nil {
		rep.violate("prepared-reuse", "Prepare failed on certain-forced text: %v", err)
		return
	}
	exec := func(which string) *certsql.Result {
		res, err := prep.Execute(nil)
		if err != nil {
			if budgetErr(err) {
				rep.skip("prepared-reuse: " + err.Error())
				return nil
			}
			rep.violate("prepared-reuse", "%s Execute failed: %v", which, err)
			return nil
		}
		return res
	}
	r1 := exec("first")
	if r1 == nil {
		return
	}
	r2 := exec("second")
	if r2 == nil {
		return
	}
	if r1.Stats.PlanCacheMisses != 1 || r1.Stats.PlanCacheHits != 0 {
		rep.violate("prepared-reuse", "first execution should compile exactly one plan, stats %+v", r1.Stats)
	}
	if r2.Stats.PlanCacheHits != 1 || r2.Stats.PlanCacheMisses != 0 {
		rep.violate("prepared-reuse", "second execution should reuse the cached plan, stats %+v", r2.Stats)
	}
	if got, want := r2.Table().String(), plus.Table().String(); got != want {
		rep.violate("prepared-reuse", "cached-plan result differs from ad-hoc Q⁺:\nad-hoc: %s\ncached: %s", want, got)
	}
	// NaivePlanner shares the same cache entry (it is an executor-side
	// toggle, excluded from the plan fingerprint) and must fall back to
	// the baseline expression with byte-identical results.
	r3, err := prep.ExecuteWithOptions(nil, certsql.Options{NaivePlanner: true})
	if err != nil {
		if !budgetErr(err) {
			rep.violate("prepared-reuse", "naive-planner Execute failed: %v", err)
		}
		return
	}
	if r3.Stats.PlanCacheHits != 1 || r3.Stats.PlanCacheMisses != 0 {
		rep.violate("prepared-reuse", "naive-planner execution should reuse the cached plan, stats %+v", r3.Stats)
	}
	if got, want := r3.Table().String(), plus.Table().String(); got != want {
		rep.violate("prepared-reuse", "naive-planner cached-plan result differs:\ndefault: %s\nnaive:   %s", want, got)
	}
}

func queryCertainWithOptions(fdb *certsql.DB, text string, o certsql.Options) (*certsql.Result, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel := leadSelect(q.Body)
	if sel == nil {
		return nil, fmt.Errorf("difftest: no select statement in %q", text)
	}
	sel.Certain = true
	sel.Possible = false
	return fdb.QueryWithOptions(q.SQL(), nil, o)
}

func leadSelect(body sql.QueryExpr) *sql.SelectStmt {
	for {
		switch b := body.(type) {
		case *sql.SelectStmt:
			return b
		case sql.SetOp:
			body = b.L
		default:
			return nil
		}
	}
}

// checkPlanAudit runs the cost-based planner directly over the compiled
// expression — and, when translatable, its Q⁺ and Q⋆ translations — and
// checks the audit invariants: cost estimates are internally consistent
// (non-negative, finite, monotone over children, covering output
// cardinality) and the rewritten plan's conditions contain no atom
// absent from the input plan.
func checkPlanAudit(rep *Report, db *table.Database, expr algebra.Expr) {
	st := stats.NewCollector().Collect(db)
	exprs := []algebra.Expr{expr}
	if certain.CheckTranslatable(expr) == nil {
		tr := &certain.Translator{Sch: db.Schema, Mode: certain.ModeSQL,
			SimplifyNulls: true, SplitOrs: true, KeySimplify: true}
		exprs = append(exprs, tr.Plus(expr), tr.Star(expr))
	}
	for _, e := range exprs {
		pr, err := plan.Optimize(e, db.Schema, st, nil)
		if err != nil {
			rep.violate("cost-audit", "planner failed: %v", err)
			continue
		}
		if err := plan.AuditCost(pr.Explain); err != nil {
			rep.violate("cost-audit", "%v\nplan:\n%s", err, pr.Explain.Render())
		}
		if err := plan.AuditConds(e, pr.Expr); err != nil {
			rep.violate("cost-audit", "%v", err)
		}
	}
}

func checkRewrite(rep *Report, fdb *certsql.DB, text string, plus *certsql.Result) {
	rewritten, err := fdb.Rewrite(text, nil)
	if err != nil {
		// Some translated shapes have no SQL rendering; that limits the
		// rewriter, not the pipeline.
		rep.skip("rewrite: " + err.Error())
		return
	}
	res, err := fdb.QueryWithOptions(rewritten, nil, certsql.Options{Parallelism: 1})
	if err != nil {
		// The rendered SQL targets conventional DBMSs and may fall
		// outside this engine's accepted fragment.
		rep.skip("rewrite-eval: " + err.Error())
		return
	}
	if !sameSet(res.Table(), plus.Table()) {
		rep.violate("rewrite-agreement", "re-executing rewrite.ToSQL(Q⁺) differs from Q⁺:\ndirect:  %v\nrewrite: %v\nsql: %s",
			plus.SortedStrings(), res.SortedStrings(), rewritten)
	}
}

// sameSet compares two tables as sets of rows.
func sameSet(a, b *table.Table) bool {
	ka, kb := a.KeySet(), b.KeySet()
	if len(ka) != len(kb) {
		return false
	}
	for k := range ka {
		if _, ok := kb[k]; !ok {
			return false
		}
	}
	return true
}

// firstExtra returns a row of a that is not in b (ok=false), or ok=true
// when a ⊆ b.
func firstExtra(a, b *table.Table) (table.Row, bool) {
	keys := b.KeySet()
	for _, row := range a.Rows() {
		if _, in := keys[value.RowKey(row)]; !in {
			return row, false
		}
	}
	return nil, true
}

// dbConformsNonNull reports whether the data honours every NOT NULL
// declaration in the schema. The database maintains the violation
// count incrementally (the analyzer's verdict is only binding on
// conforming databases), so this is O(1) — no per-case scan.
func dbConformsNonNull(db *table.Database) bool {
	return db.ConformsNonNull()
}

// hasRepeatedMarks reports whether any null mark occurs twice in the
// database (a non-Codd null).
func hasRepeatedMarks(db *table.Database) bool {
	seen := map[int64]bool{}
	for _, name := range db.Schema.Names() {
		for _, row := range db.MustTable(name).Rows() {
			for _, v := range row {
				if !v.IsNull() {
					continue
				}
				if seen[v.NullID()] {
					return true
				}
				seen[v.NullID()] = true
			}
		}
	}
	return false
}
