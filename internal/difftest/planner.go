package difftest

import (
	"fmt"
	"math/rand"

	"certsql"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/qgen"
	"certsql/internal/sql"
)

// CheckPlannerSeed checks only the planner invariants for one generated
// case: the cost-based planner and the naive planner must render
// byte-identical results at sequential and parallel settings, on the
// standard, certain and possible routes, and the planner's estimates
// must pass the cost audit. It skips the brute-force ground truth, so
// thousands of cases run in seconds — this is the planner-ablation
// smoke check CI runs, and FuzzPlannerAblation's body.
func CheckPlannerSeed(seed uint64, tuning qgen.Tuning) *Report {
	rng := rand.New(rand.NewSource(int64(seed)))
	db, text := qgen.Case(rng, tuning)
	rep := &Report{Seed: seed, SQL: text, DB: db}

	q, err := sql.Parse(text)
	if err != nil {
		rep.violate("parse", "generated SQL does not parse: %v", err)
		return rep
	}
	compiled, err := compile.Compile(q, db.Schema, nil)
	if err != nil {
		rep.violate("compile", "generated SQL does not compile: %v", err)
		return rep
	}

	fdb := certsql.FromInternal(db)
	translatable := certain.CheckTranslatable(compiled.Expr) == nil
	for _, par := range []int{1, 4} {
		comparePlanner(rep, fdb, text, "standard", par, func(o certsql.Options) (*certsql.Result, error) {
			return fdb.QueryWithOptions(text, nil, o)
		})
		if translatable {
			comparePlanner(rep, fdb, text, "certain", par, func(o certsql.Options) (*certsql.Result, error) {
				return fdb.QueryCertainWithOptions(text, nil, o)
			})
			comparePlanner(rep, fdb, text, "possible", par, func(o certsql.Options) (*certsql.Result, error) {
				return fdb.QueryPossibleWithOptions(text, nil, o)
			})
		}
	}
	checkPlanAudit(rep, db, compiled.Expr)
	return rep
}

// comparePlanner runs one route with the cost-based planner and the
// naive ablation and demands byte-identical outcomes: same error
// classification, or the exact same result bytes. Budget trips on
// either side skip — the planner legitimately changes what fits in a
// budget.
func comparePlanner(rep *Report, fdb *certsql.DB, text, route string, par int,
	query func(certsql.Options) (*certsql.Result, error)) {
	label := fmt.Sprintf("%s P=%d", route, par)
	opt, oerr := query(certsql.Options{Parallelism: par})
	naive, nerr := query(certsql.Options{Parallelism: par, NaivePlanner: true})
	if budgetErr(oerr) || budgetErr(nerr) {
		rep.skip("planner-ablation " + label + ": budget")
		return
	}
	switch {
	case oerr != nil && nerr != nil:
		return // both routes reject the case the same way
	case oerr != nil:
		rep.violate("planner-ablation", "%s: cost-based planner failed where naive succeeds: %v", label, oerr)
		return
	case nerr != nil:
		rep.violate("planner-ablation", "%s: naive planner failed where cost-based succeeds: %v", label, nerr)
		return
	}
	if got, want := opt.Table().String(), naive.Table().String(); got != want {
		rep.violate("planner-ablation", "%s: planners differ:\ncost-based: %s\nnaive:      %s", label, got, want)
	}
}
