package difftest

import (
	"flag"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"certsql/internal/guard"
)

// crashCases overrides the number of crash-recovery cases (0 =
// automatic: 200 normally — the acceptance floor — or a smoke slice
// under -short). The `make chaos-crash` target runs the full sweep
// under the race detector.
var crashCases = flag.Int("crash-cases", 0, "number of crash-recovery cases (0 = 200, or 40 with -short)")

// TestCrashRecovery is the kill-point recovery suite: seeded runs
// crash the persistent store at every durability seam (in-process
// panic treated as a process death — no flush, cold reopen) and assert
// that recovery lands on a valid monotone version whose catalog and
// Q1–Q4 answers are byte-identical to an in-RAM oracle, that the
// recovered store accepts updates, and that fsck finds the directory
// clean. Error-kind faults exercise the rollback path the same way.
func TestCrashRecovery(t *testing.T) {
	cases := *crashCases
	if cases == 0 {
		cases = 200
		if testing.Short() {
			cases = 40
		}
	}
	if cases < len(guard.PersistSites) {
		t.Fatalf("%d cases cannot cover %d durability seams", cases, len(guard.PersistSites))
	}

	var mu sync.Mutex
	firedBySite := map[guard.Site]int{}
	crashes, recoveries := 0, 0

	root := t.TempDir()
	for seed := uint64(0); seed < uint64(cases); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			rep := CrashSeed(seed, filepath.Join(root, fmt.Sprintf("case%03d", seed)))
			if rep.Failed() {
				t.Error("\n" + rep.Summary())
			}
			mu.Lock()
			defer mu.Unlock()
			if rep.Fired {
				firedBySite[rep.Site]++
			}
			if rep.Crashed {
				crashes++
			}
			if rep.Recovered > 0 {
				recoveries++
			}
		})
	}

	// Coverage assertions run after all parallel subtests.
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, site := range guard.PersistSites {
			if firedBySite[site] == 0 {
				t.Errorf("no fault ever fired at durability seam %s — the suite is not covering it", site)
			}
		}
		if crashes == 0 {
			t.Error("no simulated crash ever landed")
		}
		if recoveries == 0 {
			t.Error("no recovery was ever exercised")
		}
		t.Logf("crash-recovery: %d cases, %d crashes, %d recoveries, fired per site: %v",
			cases, crashes, recoveries, firedBySite)
	})
}
