package difftest

import (
	"fmt"
	"math/rand"

	"certsql"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/qgen"
	"certsql/internal/sql"
)

// CheckShardSeed checks only the shard-ablation invariant for one
// generated case: scatter-gather execution across k ∈ {2, 3, 8} engine
// shards must render the exact bytes of the unsharded run — same rows,
// same order, same mark minting — on the standard, certain and possible
// routes, under both executor engines and both planners. It skips the
// brute-force ground truth so thousands of cases run in seconds; this
// is FuzzShardAblation's body and the shard smoke check CI runs.
func CheckShardSeed(seed uint64, tuning qgen.Tuning) *Report {
	rng := rand.New(rand.NewSource(int64(seed)))
	db, text := qgen.Case(rng, tuning)
	rep := &Report{Seed: seed, SQL: text, DB: db}

	q, err := sql.Parse(text)
	if err != nil {
		rep.violate("parse", "generated SQL does not parse: %v", err)
		return rep
	}
	compiled, err := compile.Compile(q, db.Schema, nil)
	if err != nil {
		rep.violate("compile", "generated SQL does not compile: %v", err)
		return rep
	}

	fdb := certsql.FromInternal(db)
	translatable := certain.CheckTranslatable(compiled.Expr) == nil
	compareShards(rep, "standard", func(o certsql.Options) (*certsql.Result, error) {
		return fdb.QueryWithOptions(text, nil, o)
	})
	if translatable {
		compareShards(rep, "certain", func(o certsql.Options) (*certsql.Result, error) {
			return fdb.QueryCertainWithOptions(text, nil, o)
		})
		compareShards(rep, "possible", func(o certsql.Options) (*certsql.Result, error) {
			return fdb.QueryPossibleWithOptions(text, nil, o)
		})
	}
	return rep
}

// compareShards runs one route unsharded and across the shard-count ×
// engine × planner matrix, demanding byte-identical outcomes: the same
// error classification, or the exact same result bytes. Budget trips on
// either side skip — per-shard sub-governors legitimately change where
// inside a run a budget trips, never whether results agree.
func compareShards(rep *Report, route string, query func(certsql.Options) (*certsql.Result, error)) {
	base, berr := query(certsql.Options{Parallelism: 1})
	if budgetErr(berr) {
		rep.skip("shard-ablation " + route + ": budget")
		return
	}
	variants := []struct {
		label string
		opts  certsql.Options
	}{
		{"k=2", certsql.Options{Shards: 2, Parallelism: 1}},
		{"k=3", certsql.Options{Shards: 3, Parallelism: 1}},
		{"k=8", certsql.Options{Shards: 8, Parallelism: 1}},
		{"k=2 P=4", certsql.Options{Shards: 2, Parallelism: 4}},
		{"k=2 materialize", certsql.Options{Shards: 2, Materialize: true, Parallelism: 1}},
		{"k=2 naive-planner", certsql.Options{Shards: 2, NaivePlanner: true, Parallelism: 1}},
	}
	for _, v := range variants {
		label := fmt.Sprintf("%s %s", route, v.label)
		// The naive-planner variant compares against its own unsharded
		// naive baseline: the planner ablation owns planner-vs-planner
		// agreement, this invariant isolates sharded-vs-unsharded.
		want, werr := base, berr
		if v.opts.NaivePlanner {
			want, werr = query(certsql.Options{NaivePlanner: true, Parallelism: 1})
			if budgetErr(werr) {
				rep.skip("shard-ablation " + label + ": budget")
				continue
			}
		}
		got, gerr := query(v.opts)
		if budgetErr(gerr) {
			rep.skip("shard-ablation " + label + ": budget")
			continue
		}
		switch {
		case werr != nil && gerr != nil:
			continue // both reject the case the same way
		case gerr != nil:
			rep.violate("shard-ablation", "%s: sharded run failed where unsharded succeeds: %v", label, gerr)
			continue
		case werr != nil:
			rep.violate("shard-ablation", "%s: unsharded run failed where sharded succeeds: %v", label, werr)
			continue
		}
		if g, w := got.Table().String(), want.Table().String(); g != w {
			rep.violate("shard-ablation", "%s: sharded and unsharded runs differ:\nunsharded: %s\nsharded:   %s", label, w, g)
		}
	}
}
