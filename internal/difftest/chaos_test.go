package difftest

import (
	"flag"
	"runtime"
	"testing"
	"time"
)

// chaosCases overrides the number of chaos cases (0 = automatic: the
// acceptance sweep of 500 normally, a smoke slice under -short). The
// `make chaos` target runs the full sweep under the race detector.
var chaosCases = flag.Int("chaos-cases", 0, "number of chaos-mode cases (0 = 500, or 60 with -short)")

// TestChaosSweep is chaos mode: every seeded qgen case is replayed
// under three distinct injected faults (errors and panics at seeded
// sites), one random-point cancellation, and one budget-degradation
// probe. It asserts the pipeline's failure semantics — no panic escapes
// the public API, partial results are never passed off as complete,
// degradation is sound, the database answers correctly on retry — and,
// at suite level, that the goroutine count returns to baseline.
func TestChaosSweep(t *testing.T) {
	cases := *chaosCases
	if cases == 0 {
		cases = 500
		if testing.Short() {
			cases = 60
		}
	}
	baseGoroutines := runtime.NumGoroutine()

	sum := ChaosRun(1, cases, 0, Options{}, nil)
	t.Log("\n" + sum.Summary())

	for _, rep := range sum.Failures {
		t.Error("\n" + rep.Summary())
	}
	// The sweep must actually exercise the machinery it claims to: on
	// 60+ seeded cases a dead injector or never-landing cancellation is
	// a harness bug, not bad luck.
	if sum.Skipped >= sum.Cases {
		t.Fatalf("all %d cases skipped", sum.Cases)
	}
	if sum.FaultsFired == 0 {
		t.Error("no injected fault ever fired")
	}
	if sum.CancelsFired == 0 {
		t.Error("no random-point cancellation ever landed mid-flight")
	}
	if sum.Degraded == 0 {
		t.Error("the degradation ladder never engaged")
	}

	// Suite-level goroutine baseline: disturbed evaluations must not
	// leak workers. Allow the runtime a moment to reap finished ones.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after chaos sweep: %d goroutines, baseline %d",
				runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
