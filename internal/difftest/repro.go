package difftest

import (
	"fmt"
	"strconv"
	"strings"

	"certsql/internal/analyze"
	"certsql/internal/compile"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/value"
)

// GoRepro renders a failing case as a ready-to-paste Go test function
// named TestRepro<name>. The emitted test rebuilds the database with the
// internal packages and re-runs the oracle, so a minimized fuzz failure
// turns into a permanent regression test in one paste.
func GoRepro(name string, db *table.Database, sqlText string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// TestRepro%s reproduces a differential-testing failure.\n", name)
	if v := analyzerVerdict(db, sqlText); v != "" {
		fmt.Fprintf(&b, "// Analyzer verdict: %s.\n", v)
	}
	b.WriteString("// Imports: certsql/internal/{difftest,schema,table,value}.\n")
	fmt.Fprintf(&b, "func TestRepro%s(t *testing.T) {\n", name)
	b.WriteString("\tsch := schema.New()\n")
	for _, rn := range db.Schema.Names() {
		rel, _ := db.Schema.Relation(rn)
		b.WriteString("\tsch.MustAdd(&schema.Relation{\n")
		fmt.Fprintf(&b, "\t\tName: %q,\n", rel.Name)
		b.WriteString("\t\tAttrs: []schema.Attribute{\n")
		for _, a := range rel.Attrs {
			fmt.Fprintf(&b, "\t\t\t{Name: %q, Type: %s", a.Name, kindLit(a.Type))
			if a.Nullable {
				b.WriteString(", Nullable: true")
			}
			b.WriteString("},\n")
		}
		b.WriteString("\t\t},\n")
		if rel.HasKey() {
			fmt.Fprintf(&b, "\t\tKey: %s,\n", intsLit(rel.Key))
		}
		b.WriteString("\t})\n")
	}
	b.WriteString("\tdb := table.NewDatabase(sch)\n")
	for _, rn := range db.Schema.Names() {
		tab := db.MustTable(rn)
		if tab.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "\tfor _, r := range []table.Row{\n")
		for _, row := range tab.Rows() {
			b.WriteString("\t\t{")
			for i, v := range row {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(valueLit(v))
			}
			b.WriteString("},\n")
		}
		fmt.Fprintf(&b, "\t} {\n\t\tif err := db.Insert(%q, r); err != nil {\n\t\t\tt.Fatal(err)\n\t\t}\n\t}\n", rn)
	}
	fmt.Fprintf(&b, "\trep := difftest.Check(db, %q, difftest.Options{RequireValid: true})\n", sqlText)
	b.WriteString("\tif rep.Failed() {\n\t\tt.Fatal(rep.Summary())\n\t}\n")
	b.WriteString("}\n")
	return b.String()
}

// analyzerVerdict summarizes the static analyzer's view of the case for
// the repro header: "safe", or "hazardous (code, code, …)". Empty when
// the text does not reach the analyzer (parse or compile failure).
func analyzerVerdict(db *table.Database, sqlText string) string {
	q, err := sql.Parse(sqlText)
	if err != nil {
		return ""
	}
	compiled, err := compile.Compile(q, db.Schema, nil)
	if err != nil {
		return ""
	}
	rep := analyze.Plan(compiled.Expr, db.Schema)
	if rep.Safe {
		return "safe"
	}
	codes := map[string]bool{}
	var order []string
	for _, h := range rep.Hazards {
		if !codes[h.Code] {
			codes[h.Code] = true
			order = append(order, h.Code)
		}
	}
	return "hazardous (" + strings.Join(order, ", ") + ")"
}

func kindLit(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "value.KindInt"
	case value.KindFloat:
		return "value.KindFloat"
	case value.KindString:
		return "value.KindString"
	case value.KindBool:
		return "value.KindBool"
	case value.KindDate:
		return "value.KindDate"
	default:
		return fmt.Sprintf("value.Kind(%d)", uint8(k))
	}
}

func intsLit(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return "[]int{" + strings.Join(parts, ", ") + "}"
}

func valueLit(v value.Value) string {
	if v.IsNull() {
		return fmt.Sprintf("value.Null(%d)", v.NullID())
	}
	switch v.Kind() {
	case value.KindInt:
		return fmt.Sprintf("value.Int(%d)", v.AsInt())
	case value.KindFloat:
		return "value.Float(" + strconv.FormatFloat(v.AsFloat(), 'g', -1, 64) + ")"
	case value.KindString:
		return fmt.Sprintf("value.Str(%q)", v.AsString())
	case value.KindBool:
		return fmt.Sprintf("value.Bool(%v)", v.AsBool())
	case value.KindDate:
		return fmt.Sprintf("value.Date(%d)", v.AsDate())
	default:
		return fmt.Sprintf("value.Value{} /* unsupported kind %s */", v.Kind())
	}
}
