package difftest

import (
	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/value"
)

// Predicate reports whether a candidate case still exhibits the failure
// being minimized. Candidates that fail to compile or evaluate simply
// make the predicate false; the minimizer never assumes a candidate is
// well-formed.
type Predicate func(db *table.Database, text string) bool

// FailurePredicate keeps candidates on which Check still violates the
// given invariant (any invariant when the name is empty).
func FailurePredicate(opts Options, invariant string) Predicate {
	opts.RequireValid = false
	return func(db *table.Database, text string) bool {
		rep := Check(db, text, opts)
		if invariant == "" {
			return rep.Failed()
		}
		return rep.Has(invariant)
	}
}

// Minimize greedily shrinks a failing case to a local minimum: no single
// relation, row, null mark, or query clause can be removed without
// losing the failure. The input case must satisfy keep; the result does.
func Minimize(db *table.Database, text string, keep Predicate) (*table.Database, string) {
	if !keep(db, text) {
		return db, text
	}
	for changed := true; changed; {
		changed = false
		if d, ok := shrinkRelations(db, text, keep); ok {
			db, changed = d, true
			continue
		}
		if d, ok := shrinkRows(db, text, keep); ok {
			db, changed = d, true
			continue
		}
		if t, ok := shrinkQuery(db, text, keep); ok {
			text, changed = t, true
			continue
		}
		if d, ok := shrinkNulls(db, text, keep); ok {
			db, changed = d, true
		}
	}
	return db, text
}

// shrinkRelations tries dropping one whole relation.
func shrinkRelations(db *table.Database, text string, keep Predicate) (*table.Database, bool) {
	for _, name := range db.Schema.Names() {
		cand := rebuildDB(db, name, nil, nil)
		if cand != nil && keep(cand, text) {
			return cand, true
		}
	}
	return nil, false
}

// shrinkRows tries dropping one row of one relation.
func shrinkRows(db *table.Database, text string, keep Predicate) (*table.Database, bool) {
	for _, name := range db.Schema.Names() {
		n := db.MustTable(name).Len()
		for i := 0; i < n; i++ {
			drop := map[int]bool{i: true}
			cand := rebuildDB(db, "", map[string]map[int]bool{name: drop}, nil)
			if cand != nil && keep(cand, text) {
				return cand, true
			}
		}
	}
	return nil, false
}

// shrinkNulls tries replacing one null mark (all its occurrences, to
// keep repeated marks consistent) with a plain constant of the column's
// kind.
func shrinkNulls(db *table.Database, text string, keep Predicate) (*table.Database, bool) {
	for _, name := range db.Schema.Names() {
		rel, _ := db.Schema.Relation(name)
		for _, row := range db.MustTable(name).Rows() {
			for ai, v := range row {
				if !v.IsNull() {
					continue
				}
				id, c := v.NullID(), constOfKind(rel.Attrs[ai].Type)
				cand := rebuildDB(db, "", nil, func(v value.Value) value.Value {
					if v.IsNull() && v.NullID() == id {
						return c
					}
					return v
				})
				if cand != nil && keep(cand, text) {
					return cand, true
				}
			}
		}
	}
	return nil, false
}

func constOfKind(k value.Kind) value.Value {
	switch k {
	case value.KindInt:
		return value.Int(0)
	case value.KindFloat:
		return value.Float(0.5)
	case value.KindString:
		return value.Str("x")
	case value.KindBool:
		return value.Bool(false)
	case value.KindDate:
		return value.Date(0)
	default:
		return value.Int(0)
	}
}

// rebuildDB copies db without the dropped relation, without the dropped
// rows, mapping every value through mapVal (all three optional). It
// returns nil when the copy is rejected (e.g. a key constraint no longer
// holds).
func rebuildDB(db *table.Database, dropRel string, dropRows map[string]map[int]bool, mapVal func(value.Value) value.Value) *table.Database {
	ns := schema.New()
	for _, name := range db.Schema.Names() {
		if name == dropRel {
			continue
		}
		rel, _ := db.Schema.Relation(name)
		ns.MustAdd(rel)
	}
	nd := table.NewDatabase(ns)
	maxMark := int64(0)
	for _, name := range ns.Names() {
		for i, row := range db.MustTable(name).Rows() {
			if dropRows[name][i] {
				continue
			}
			nr := make(table.Row, len(row))
			for j, v := range row {
				if mapVal != nil {
					v = mapVal(v)
				}
				if v.IsNull() && v.NullID() > maxMark {
					maxMark = v.NullID()
				}
				nr[j] = v
			}
			if err := nd.Insert(name, nr); err != nil {
				return nil
			}
		}
	}
	nd.SetNextNullMark(maxMark + 1)
	if !contractsHold(nd) {
		return nil
	}
	return nd
}

// contractsHold re-checks the semantic contracts the pipeline relies on
// (declared keys unique and non-null, nulls only in nullable columns):
// a shrunken database that breaks them could fail invariants for the
// wrong reason, e.g. make the key-based simplification unsound.
func contractsHold(db *table.Database) bool {
	for _, name := range db.Schema.Names() {
		rel, _ := db.Schema.Relation(name)
		keys := map[string]bool{}
		for _, row := range db.MustTable(name).Rows() {
			for ai, v := range row {
				if v.IsNull() && !rel.Attrs[ai].Nullable {
					return false
				}
			}
			if rel.HasKey() {
				kv := make(table.Row, 0, len(rel.Key))
				for _, ki := range rel.Key {
					if row[ki].IsNull() {
						return false
					}
					kv = append(kv, row[ki])
				}
				k := value.RowKey(kv)
				if keys[k] {
					return false
				}
				keys[k] = true
			}
		}
	}
	return true
}

// shrinkQuery tries one structural simplification of the SQL text:
// replacing a set operation by one operand, dropping a CTE, a WHERE (or
// one of its conjuncts), a HAVING, ORDER BY, LIMIT, DISTINCT, or a FROM
// item. Candidates that no longer parse or compile are rejected by the
// predicate.
func shrinkQuery(db *table.Database, text string, keep Predicate) (string, bool) {
	q, err := sql.Parse(text)
	if err != nil {
		return "", false
	}
	n := len(queryMutations(q))
	for k := 0; k < n; k++ {
		// Re-parse for every candidate: mutations destroy the AST, and
		// the walk order is deterministic for a given text.
		qq, err := sql.Parse(text)
		if err != nil {
			return "", false
		}
		muts := queryMutations(qq)
		if k >= len(muts) {
			break
		}
		muts[k]()
		if cand := qq.SQL(); cand != text && keep(db, cand) {
			return cand, true
		}
	}
	return "", false
}

// queryMutations enumerates single-step simplifications as closures over
// the given AST, in a deterministic order.
func queryMutations(q *sql.Query) []func() {
	var muts []func()
	if op, ok := q.Body.(sql.SetOp); ok {
		muts = append(muts,
			func() { q.Body = op.L },
			func() { q.Body = op.R },
		)
	}
	for i := range q.With {
		i := i
		muts = append(muts, func() { q.With = append(q.With[:i:i], q.With[i+1:]...) })
	}
	for _, sel := range collectSelects(q) {
		sel := sel
		if sel.Where != nil {
			muts = append(muts, func() { sel.Where = nil })
			if cs := conjuncts(sel.Where); len(cs) > 1 {
				for i := range cs {
					i := i
					muts = append(muts, func() {
						rest := append(append([]sql.Expr{}, cs[:i]...), cs[i+1:]...)
						sel.Where = andJoin(rest)
					})
				}
			}
		}
		if sel.Having != nil {
			muts = append(muts, func() { sel.Having = nil })
		}
		if len(sel.OrderBy) > 0 {
			muts = append(muts, func() { sel.OrderBy = nil })
		}
		if sel.Limit != nil {
			muts = append(muts, func() { sel.Limit = nil })
		}
		if sel.Distinct {
			muts = append(muts, func() { sel.Distinct = false })
		}
		if len(sel.From) > 1 {
			for i := range sel.From {
				i := i
				muts = append(muts, func() { sel.From = append(sel.From[:i:i], sel.From[i+1:]...) })
			}
		}
	}
	return muts
}

// collectSelects walks every SELECT block of the query, including CTE
// bodies, set-operation operands and condition subqueries, in a
// deterministic order.
func collectSelects(q *sql.Query) []*sql.SelectStmt {
	var out []*sql.SelectStmt
	var walkQuery func(q *sql.Query)
	var walkQE func(qe sql.QueryExpr)
	var walkCond func(e sql.Expr)
	walkQuery = func(q *sql.Query) {
		for i := range q.With {
			walkQE(q.With[i].Body)
		}
		walkQE(q.Body)
	}
	walkQE = func(qe sql.QueryExpr) {
		switch b := qe.(type) {
		case *sql.SelectStmt:
			out = append(out, b)
			if b.Where != nil {
				walkCond(b.Where)
			}
			if b.Having != nil {
				walkCond(b.Having)
			}
		case sql.SetOp:
			walkQE(b.L)
			walkQE(b.R)
		}
	}
	walkCond = func(e sql.Expr) {
		// vetcert:ignore famexhaustive: collects subqueries, so only
		// composite condition shapes are entered; value-shaped leaves
		// (literals, column refs, params) cannot contain one.
		switch c := e.(type) {
		case sql.AndExpr:
			walkCond(c.L)
			walkCond(c.R)
		case sql.OrExpr:
			walkCond(c.L)
			walkCond(c.R)
		case sql.NotExpr:
			walkCond(c.E)
		case sql.CmpExpr:
			walkCond(c.L)
			walkCond(c.R)
		case sql.LikeExpr:
			walkCond(c.L)
			walkCond(c.Pattern)
		case sql.IsNullExpr:
			walkCond(c.E)
		case sql.ExistsExpr:
			walkQuery(c.Sub)
		case sql.InExpr:
			if c.Sub != nil {
				walkQuery(c.Sub)
			}
		case sql.SubqueryExpr:
			walkQuery(c.Q)
		}
	}
	walkQuery(q)
	return out
}

// conjuncts flattens nested ANDs into the list of top-level conjuncts.
func conjuncts(e sql.Expr) []sql.Expr {
	if and, ok := e.(sql.AndExpr); ok {
		return append(conjuncts(and.L), conjuncts(and.R)...)
	}
	return []sql.Expr{e}
}

// andJoin rebuilds a conjunction from a non-empty conjunct list.
func andJoin(list []sql.Expr) sql.Expr {
	e := list[0]
	for _, c := range list[1:] {
		e = sql.AndExpr{L: e, R: c}
	}
	return e
}
