package difftest

import (
	"testing"

	"certsql/internal/qgen"
	"certsql/internal/schema"
	"certsql/internal/table"
	"certsql/internal/value"
)

// FuzzCertainPipeline drives the full oracle from a generator seed: the
// fuzzer explores the seed space, the generators map each seed to a
// (database, query) case, and every invariant of Check must hold.
// Failures are reproduced from the seed alone:
//
//	go run ./cmd/fuzzcert -seed <seed> -cases 1
func FuzzCertainPipeline(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rep := CheckSeed(seed, Options{})
		if rep.Failed() {
			t.Fatal(rep.Summary())
		}
	})
}

// FuzzAnalyzerSoundness biases the generator towards fully NOT NULL
// schemas so the analyzer's safe verdict — and with it the evaluation
// fast path and the analyzer-soundness invariant (plain evaluation =
// cert on safe plans) — is exercised on most cases rather than rarely.
func FuzzAnalyzerSoundness(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	opts := Options{Tuning: qgen.Tuning{NullFreeProb: 0.6}}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rep := CheckSeed(seed, opts)
		if rep.Failed() {
			t.Fatal(rep.Summary())
		}
	})
}

// fuzzDB is the fixed incomplete database FuzzCompileEval runs arbitrary
// SQL against: two relations, a key, nullable columns, a Codd null and a
// repeated mark.
func fuzzDB() *table.Database {
	sch := schema.New()
	sch.MustAdd(&schema.Relation{
		Name: "r0",
		Attrs: []schema.Attribute{
			{Name: "a", Type: value.KindInt},
			{Name: "b", Type: value.KindString, Nullable: true},
		},
		Key: []int{0},
	})
	sch.MustAdd(&schema.Relation{
		Name: "r1",
		Attrs: []schema.Attribute{
			{Name: "c", Type: value.KindInt, Nullable: true},
			{Name: "d", Type: value.KindFloat, Nullable: true},
		},
	})
	db := table.NewDatabase(sch)
	rows := map[string][]table.Row{
		"r0": {
			{value.Int(1), value.Str("x")},
			{value.Int(2), value.Null(1)},
		},
		"r1": {
			{value.Int(1), value.Float(0.5)},
			{value.Null(2), value.Null(3)},
			{value.Null(2), value.Float(1.5)}, // repeated mark ⊥2
		},
	}
	for _, name := range []string{"r0", "r1"} {
		for _, r := range rows[name] {
			if err := db.Insert(name, r); err != nil {
				panic(err)
			}
		}
	}
	db.SetNextNullMark(4)
	return db
}

// FuzzCompileEval feeds arbitrary SQL text to the whole pipeline over a
// fixed incomplete database. Text outside the supported fragment is
// skipped; text inside it must satisfy every oracle invariant, and
// nothing may panic.
func FuzzCompileEval(f *testing.F) {
	for _, s := range []string{
		"SELECT a FROM r0",
		"SELECT CERTAIN b FROM r0 WHERE NOT EXISTS (SELECT * FROM r1 WHERE c = a)",
		"SELECT POSSIBLE a FROM r0 WHERE b IS NULL",
		"SELECT DISTINCT d FROM r1 WHERE c IN (SELECT a FROM r0)",
		"SELECT a FROM r0 UNION SELECT c FROM r1",
		"SELECT a FROM r0 WHERE a > (SELECT COUNT(*) FROM r1)",
		"WITH v AS (SELECT c FROM r1) SELECT * FROM v EXCEPT SELECT a FROM r0",
		"SELECT c, SUM(d) FROM r1 GROUP BY c HAVING COUNT(*) > 1 ORDER BY 1 LIMIT 2",
		"SELECT b FROM r0 WHERE b LIKE 'x%' OR b IS NOT NULL",
	} {
		f.Add(s)
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 4096 {
			t.Skip("pathologically long input")
		}
		rep := Check(db, text, Options{})
		if rep.Failed() {
			t.Fatal(rep.Summary())
		}
	})
}
