package difftest

import (
	"testing"

	"certsql/internal/qgen"
)

// FuzzPlannerAblation explores the seed space for cases where the
// cost-based planner diverges from the paper-faithful naive planner —
// any byte of difference, on any route, at any parallelism, is a bug.
func FuzzPlannerAblation(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if rep := CheckPlannerSeed(seed, qgen.Tuning{}); rep.Failed() {
			t.Fatal(rep.Summary())
		}
	})
}

// TestPlannerAblationSmoke is the CI smoke sweep: 200 seeded cases with
// the default generator plus 100 biased towards null-free schemas (so
// statistics premises and null-test elimination actually fire), all of
// which must pass the planner invariants.
func TestPlannerAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	t.Parallel()
	for seed := uint64(1); seed <= 200; seed++ {
		if rep := CheckPlannerSeed(seed, qgen.Tuning{}); rep.Failed() {
			t.Fatal(rep.Summary())
		}
	}
	for seed := uint64(1); seed <= 100; seed++ {
		if rep := CheckPlannerSeed(seed, qgen.Tuning{NullFreeProb: 0.6}); rep.Failed() {
			t.Fatal(rep.Summary())
		}
	}
}
