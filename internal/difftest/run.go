package difftest

import (
	"runtime"
	"strings"
	"sync"
)

// RunSummary aggregates a batch of seed-driven oracle runs.
type RunSummary struct {
	// Cases is the number of cases checked.
	Cases int
	// Failed counts cases with at least one violation; Failures holds
	// their reports (up to MaxFailures each run).
	Failed   int
	Failures []*Report
	// Translatable counts cases whose query admits the certain-answer
	// translation; BruteForced those where the ground truth fit in the
	// budget; RecallExact those with Q⁺(D) = cert(Q, D).
	Translatable int
	BruteForced  int
	RecallExact  int
	// AnalyzerSafe counts cases the static analyzer proved safe;
	// FastPath those where SELECT CERTAIN actually skipped the
	// translation.
	AnalyzerSafe int
	FastPath     int
	// Skips counts skipped invariants by reason prefix.
	Skips map[string]int
}

// MaxFailures bounds the reports kept by Run; the count is exact either
// way.
const MaxFailures = 10

// Run checks the seeds start … start+cases-1 over the given number of
// workers (0 = GOMAXPROCS). Each case is independent, so the summary is
// deterministic regardless of worker count. The optional progress
// callback receives each finished report (serialized).
func Run(start uint64, cases, workers int, opts Options, progress func(*Report)) RunSummary {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sum := RunSummary{Cases: cases, Skips: map[string]int{}}
	reports := make([]*Report, cases)
	var wg sync.WaitGroup
	var mu sync.Mutex
	next := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= cases {
					return
				}
				rep := CheckSeed(start+uint64(i), opts)
				mu.Lock()
				reports[i] = rep
				if progress != nil {
					progress(rep)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, rep := range reports {
		if rep.Failed() {
			sum.Failed++
			if len(sum.Failures) < MaxFailures {
				sum.Failures = append(sum.Failures, rep)
			}
		}
		if rep.Translatable {
			sum.Translatable++
		}
		if rep.BruteForced {
			sum.BruteForced++
		}
		if rep.RecallExact {
			sum.RecallExact++
		}
		if rep.AnalyzerSafe {
			sum.AnalyzerSafe++
		}
		if rep.FastPath {
			sum.FastPath++
		}
		for _, s := range rep.Skips {
			if i := strings.IndexByte(s, ':'); i > 0 {
				s = s[:i]
			}
			sum.Skips[s]++
		}
	}
	return sum
}
