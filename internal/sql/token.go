// Package sql provides a lexer, AST, and recursive-descent parser for
// the SQL fragment studied in the paper: first-order SELECT-FROM-WHERE
// queries with (correlated) subqueries under IN / EXISTS and their
// negations, set operations (UNION / INTERSECT / EXCEPT), WITH views,
// LIKE and order comparisons, scalar aggregate subqueries, `$name`
// parameters, and `||` string concatenation.
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokParam  // $name
	TokSymbol // punctuation and operators; Text holds the lexeme
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	case TokParam:
		return "$" + t.Text
	default:
		return t.Text
	}
}

// Error is a syntax error with position information.
type Error struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("sql: at offset %d: %s", e.Pos, e.Msg)
}

func errorf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// LineCol converts a byte offset in src into 1-based line and column
// numbers for diagnostics. Offsets outside src are clamped.
func LineCol(src string, pos int) (line, col int) {
	if pos < 0 {
		pos = 0
	}
	if pos > len(src) {
		pos = len(src)
	}
	line, col = 1, 1
	for _, b := range []byte(src[:pos]) {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
