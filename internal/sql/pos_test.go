package sql

import (
	"strings"
	"testing"
)

// findCond walks the WHERE clause of the lead select and returns the
// first node matching pred in a pre-order traversal.
func findCond(t *testing.T, src string, pred func(Expr) bool) Expr {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	var body QueryExpr = q.Body
	for {
		if s, ok := body.(SetOp); ok {
			body = s.L
			continue
		}
		break
	}
	sel := body.(*SelectStmt)
	var found Expr
	var walk func(e Expr)
	walk = func(e Expr) {
		if e == nil || found != nil {
			return
		}
		if pred(e) {
			found = e
			return
		}
		switch n := e.(type) {
		case AndExpr:
			walk(n.L)
			walk(n.R)
		case OrExpr:
			walk(n.L)
			walk(n.R)
		case NotExpr:
			walk(n.E)
		}
	}
	walk(sel.Where)
	if found == nil {
		t.Fatalf("no matching node in %q", src)
	}
	return found
}

// TestPositionsPointAtOperator checks that the byte offsets the parser
// records on predicate nodes point exactly at the offending operator
// token in the source text — this is what certlint diagnostics rely on.
func TestPositionsPointAtOperator(t *testing.T) {
	cases := []struct {
		src  string
		want string // the operator text expected at the recorded offset
		pick func(Expr) (int, bool)
	}{
		{
			src:  "SELECT a FROM r WHERE a = 1",
			want: "=",
			pick: func(e Expr) (int, bool) { n, ok := e.(CmpExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE a <> b",
			want: "<>",
			pick: func(e Expr) (int, bool) { n, ok := e.(CmpExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE b IS NOT NULL",
			want: "IS NOT NULL",
			pick: func(e Expr) (int, bool) { n, ok := e.(IsNullExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE a LIKE 'x%'",
			want: "LIKE",
			pick: func(e Expr) (int, bool) { n, ok := e.(LikeExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE a NOT LIKE 'x%'",
			want: "NOT LIKE",
			pick: func(e Expr) (int, bool) { n, ok := e.(LikeExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE a NOT IN (1, 2)",
			want: "NOT IN",
			pick: func(e Expr) (int, bool) { n, ok := e.(InExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE a IN (SELECT b FROM s)",
			want: "IN",
			pick: func(e Expr) (int, bool) { n, ok := e.(InExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE NOT EXISTS (SELECT b FROM s)",
			want: "NOT EXISTS",
			pick: func(e Expr) (int, bool) { n, ok := e.(ExistsExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE EXISTS (SELECT b FROM s)",
			want: "EXISTS",
			pick: func(e Expr) (int, bool) { n, ok := e.(ExistsExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE NOT (a = 1)",
			want: "NOT",
			pick: func(e Expr) (int, bool) { n, ok := e.(NotExpr); return n.Pos, ok },
		},
		{
			src:  "SELECT a FROM r WHERE a BETWEEN 1 AND 3",
			want: "BETWEEN",
			pick: func(e Expr) (int, bool) { n, ok := e.(CmpExpr); return n.Pos, ok },
		},
	}
	for _, tc := range cases {
		var pos int
		findCond(t, tc.src, func(e Expr) bool {
			p, ok := tc.pick(e)
			if ok {
				pos = p
			}
			return ok
		})
		if pos <= 0 || pos >= len(tc.src) {
			t.Errorf("%q: recorded offset %d out of range", tc.src, pos)
			continue
		}
		if !strings.HasPrefix(tc.src[pos:], tc.want) {
			t.Errorf("%q: offset %d points at %q, want %q", tc.src, pos, tc.src[pos:], tc.want)
		}
	}
}

// TestSetOpPosition checks set-operation keywords get offsets too.
func TestSetOpPosition(t *testing.T) {
	src := "SELECT a FROM r EXCEPT SELECT b FROM s"
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	op, ok := q.Body.(SetOp)
	if !ok {
		t.Fatalf("got %T, want SetOp", q.Body)
	}
	if !strings.HasPrefix(src[op.Pos:], "EXCEPT") {
		t.Errorf("offset %d points at %q, want EXCEPT", op.Pos, src[op.Pos:])
	}
}

// TestLineCol exercises the offset-to-line:col conversion.
func TestLineCol(t *testing.T) {
	src := "SELECT a\nFROM r\nWHERE a = 1"
	pos := strings.Index(src, "=")
	line, col := LineCol(src, pos)
	if line != 3 || col != 9 {
		t.Errorf("LineCol = %d:%d, want 3:9", line, col)
	}
	if l, c := LineCol(src, -5); l != 1 || c != 1 {
		t.Errorf("clamped LineCol = %d:%d, want 1:1", l, c)
	}
}
