package sql

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics, and that anything it
// accepts renders to text it accepts again, stably (render-reparse
// convergence). Seeds cover every syntactic construct.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT a FROM t`,
		`SELECT CERTAIN a FROM t WHERE NOT EXISTS (SELECT * FROM s WHERE s.x = t.a)`,
		`SELECT POSSIBLE * FROM t`,
		`WITH v AS (SELECT a FROM t UNION SELECT b FROM u) SELECT a FROM v WHERE a IN (1, 2)`,
		`SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 2 DESC LIMIT 5`,
		`SELECT a FROM t WHERE x LIKE '%'||$p||'%' AND y IS NOT NULL OR NOT z <> 3.5`,
		`SELECT a FROM t WHERE b > (SELECT AVG(x) FROM u WHERE u.k NOT IN (SELECT j FROM w))`,
		`select distinct t1.a from t t1, t as t2 where t1.a >= t2.b -- comment`,
		`SELECT 'it''s' FROM t`,
		`((((`,
		`SELECT FROM WHERE`,
		"SELECT a FROM t WHERE a = 'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		text1 := q.SQL()
		q2, err := Parse(text1)
		if err != nil {
			t.Fatalf("rendering of accepted input rejected:\ninput: %q\nrendered: %q\nerror: %v", src, text1, err)
		}
		if text2 := q2.SQL(); text2 != text1 {
			t.Fatalf("render not stable:\n1: %q\n2: %q", text1, text2)
		}
	})
}

// FuzzLex checks the lexer never panics and always terminates.
func FuzzLex(f *testing.F) {
	f.Add("SELECT * FROM t -- x")
	f.Add("'a''b' $p 1.2.3 <> != <= || (")
	f.Add(string([]byte{0, 255, '\'', '-', '-'}))
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream must end in EOF")
		}
		if len(toks) > len(src)+1 {
			t.Fatalf("more tokens (%d) than bytes (%d)", len(toks), len(src))
		}
		_ = strings.Join(nil, "")
	})
}
