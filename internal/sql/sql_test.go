package sql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT a, t.b FROM t WHERE a <> 'it''s' AND b >= 1.5 OR x LIKE '%'||$color -- comment
	AND c != 2`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"SELECT", "<>", "it's", ">=", "1.5", "||", "color", "!=", ","} {
		if !strings.Contains(joined, want) {
			t.Errorf("token stream misses %q: %s", want, joined)
		}
	}
	if strings.Contains(joined, "comment") {
		t.Error("comment not skipped")
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("stream must end in EOF")
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "$", "#"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
	// ';' lexes (it is the DDL statement terminator) but cannot appear
	// mid-query.
	if _, err := Parse("SELECT a FROM r WHERE a ; = 1"); err == nil {
		t.Error("Parse with interior ';' succeeded, want error")
	}
	if _, err := Parse("SELECT a FROM r;"); err != nil {
		t.Errorf("Parse with trailing ';' failed: %v", err)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 4 {
		t.Errorf("positions %d, %d; want 0, 4", toks[0].Pos, toks[1].Pos)
	}
}

// roundTrip parses, renders, and re-parses, requiring the two renders
// to agree — a solid structural-equality proxy.
func roundTrip(t *testing.T, src string) *Query {
	t.Helper()
	q1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	text1 := q1.SQL()
	q2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse %q: %v", text1, err)
	}
	if text2 := q2.SQL(); text2 != text1 {
		t.Fatalf("round trip unstable:\n1: %s\n2: %s", text1, text2)
	}
	return q1
}

func TestParseRoundTrips(t *testing.T) {
	sources := []string{
		`SELECT a FROM t`,
		`SELECT DISTINCT a, b FROM t, u WHERE a = b`,
		`SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.x = t.a)`,
		`SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.a AND u.y <> 3)`,
		`SELECT a FROM t WHERE a IN (1, 2, 3)`,
		`SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)`,
		`SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL`,
		`SELECT a FROM t WHERE name LIKE '%red%' AND name NOT LIKE '_x%'`,
		`SELECT a FROM t WHERE a > (SELECT AVG(b) FROM u WHERE b > 0)`,
		`SELECT a FROM t WHERE NOT (a = 1 AND b = 2) OR c < 3`,
		`SELECT a FROM t UNION SELECT b FROM u`,
		`SELECT a FROM t INTERSECT SELECT b FROM u EXCEPT SELECT c FROM v`,
		`WITH w AS (SELECT a FROM t UNION SELECT b FROM u) SELECT a FROM w`,
		`SELECT CERTAIN a FROM t WHERE a = $p`,
		`SELECT a FROM t t1, t t2 WHERE t1.a = t2.a`,
		`SELECT a FROM t WHERE s LIKE '%'||$color||'%'`,
		`SELECT COUNT(*) FROM t`,
		`SELECT a FROM t WHERE a = NULL`,
		`SELECT a, COUNT(*) FROM t GROUP BY a`,
		`SELECT a, AVG(b) FROM t WHERE b > 0 GROUP BY a ORDER BY a DESC LIMIT 10`,
		`SELECT a FROM t ORDER BY 1`,
		`SELECT a, b FROM t ORDER BY b DESC, a ASC LIMIT 0`,
		`SELECT a FROM t GROUP BY t.a`,
		`SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a`,
		`SELECT COUNT(*) FROM t HAVING SUM(b) >= 10 OR MIN(b) IS NULL`,
	}
	for _, src := range sources {
		roundTrip(t, src)
	}
}

func TestParseCertainKeyword(t *testing.T) {
	q := roundTrip(t, `SELECT CERTAIN a FROM t`)
	if !q.Body.(*SelectStmt).Certain {
		t.Error("CERTAIN flag not set")
	}
	// A column actually named `certain` must still parse as a column.
	q2 := roundTrip(t, `SELECT certain FROM t`)
	sel := q2.Body.(*SelectStmt)
	if sel.Certain {
		t.Error("bare column `certain` misparsed as the keyword")
	}
	if len(sel.Items) != 1 {
		t.Fatalf("items: %d", len(sel.Items))
	}
	if ref, ok := sel.Items[0].Expr.(ColRef); !ok || ref.Name != "certain" {
		t.Errorf("item = %#v", sel.Items[0].Expr)
	}
	// `SELECT certain, a FROM t` — comma also disambiguates.
	q3 := roundTrip(t, `SELECT certain, a FROM t`)
	if q3.Body.(*SelectStmt).Certain {
		t.Error("column list starting with `certain` misparsed")
	}
	// And CERTAIN combined with a star.
	q4 := roundTrip(t, `SELECT CERTAIN * FROM t`)
	if !q4.Body.(*SelectStmt).Certain || !q4.Body.(*SelectStmt).Star {
		t.Error("SELECT CERTAIN * misparsed")
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than OR.
	q := roundTrip(t, `SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3`)
	or, ok := q.Body.(*SelectStmt).Where.(OrExpr)
	if !ok {
		t.Fatalf("top is %T, want OrExpr", q.Body.(*SelectStmt).Where)
	}
	if _, ok := or.R.(AndExpr); !ok {
		t.Errorf("right of OR is %T, want AndExpr", or.R)
	}
	// NOT binds tighter than AND.
	q2 := roundTrip(t, `SELECT a FROM t WHERE NOT x = 1 AND y = 2`)
	and, ok := q2.Body.(*SelectStmt).Where.(AndExpr)
	if !ok {
		t.Fatalf("top is %T, want AndExpr", q2.Body.(*SelectStmt).Where)
	}
	if _, ok := and.L.(NotExpr); !ok {
		t.Errorf("left of AND is %T, want NotExpr", and.L)
	}
}

func TestParseNotExists(t *testing.T) {
	q := roundTrip(t, `SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u)`)
	ex, ok := q.Body.(*SelectStmt).Where.(ExistsExpr)
	if !ok || !ex.Negated {
		t.Fatalf("NOT EXISTS parsed as %#v", q.Body.(*SelectStmt).Where)
	}
}

func TestParseAliases(t *testing.T) {
	q := roundTrip(t, `SELECT a FROM lineitem l1, orders AS o WHERE l1.x = o.y`)
	from := q.Body.(*SelectStmt).From
	if from[0].Alias != "l1" || from[1].Alias != "o" {
		t.Errorf("aliases = %q, %q", from[0].Alias, from[1].Alias)
	}
	if from[0].Name() != "l1" {
		t.Errorf("Name() = %q", from[0].Name())
	}
	if (TableRef{Table: "t"}).Name() != "t" {
		t.Error("Name() without alias")
	}
}

// Reserved words are not aliases, with or without AS. Accepting one
// broke the render/re-parse round trip (the renderer drops AS, turning
// `t AS where` into `t where`); found by FuzzParse.
func TestParseReservedAliasRejected(t *testing.T) {
	for _, q := range []string{
		`SELECT a FROM t AS where`,
		`SELECT a FROM t AS Select WHERE a = 1`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted a reserved word as alias", q)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT a`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t WHERE a`,
		`SELECT a FROM t WHERE a =`,
		`SELECT a FROM t WHERE a = 1 extra`,
		`SELECT a FROM t UNION ALL SELECT b FROM u`,
		`SELECT a FROM t WHERE a IN ()`,
		`SELECT a FROM t WHERE EXISTS SELECT * FROM u`,
		`WITH w AS SELECT a FROM t SELECT a FROM w`,
		`SELECT a FROM t WHERE (a = 1`,
		`SELECT a FROM t WHERE a IS 1`,
		`SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND`,
		`SELECT a FROM t GROUP a`,
		`SELECT a FROM t ORDER BY`,
		`SELECT a FROM t LIMIT`,
		`SELECT a FROM t LIMIT x`,
		`SELECT a FROM t ORDER BY 0`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Parse(`SELECT a FROM t WHERE a = `)
	if err == nil {
		t.Fatal("no error")
	}
	var perr *Error
	if !asError(err, &perr) {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos == 0 {
		t.Error("error position is 0")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error lacks position info: %v", err)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestParamAndConcat(t *testing.T) {
	q := roundTrip(t, `SELECT a FROM t WHERE p_name LIKE '%'||$color||'%'`)
	like := q.Body.(*SelectStmt).Where.(LikeExpr)
	cat, ok := like.Pattern.(Concat)
	if !ok || len(cat.Parts) != 3 {
		t.Fatalf("pattern = %#v", like.Pattern)
	}
	if _, ok := cat.Parts[1].(Param); !ok {
		t.Errorf("middle part = %#v", cat.Parts[1])
	}
}

func TestSetOpAssociativity(t *testing.T) {
	q := roundTrip(t, `SELECT a FROM t UNION SELECT b FROM u EXCEPT SELECT c FROM v`)
	top, ok := q.Body.(SetOp)
	if !ok || top.Op != OpExcept {
		t.Fatalf("top = %#v, want EXCEPT (left associative)", q.Body)
	}
	if inner, ok := top.L.(SetOp); !ok || inner.Op != OpUnion {
		t.Fatalf("left = %#v, want UNION", top.L)
	}
}

func TestTokenString(t *testing.T) {
	cases := map[string]Token{
		"end of input": {Kind: TokEOF},
		"'abc'":        {Kind: TokString, Text: "abc"},
		"$p":           {Kind: TokParam, Text: "p"},
		"foo":          {Kind: TokIdent, Text: "foo"},
	}
	for want, tok := range cases {
		if tok.String() != want {
			t.Errorf("Token.String() = %q, want %q", tok.String(), want)
		}
	}
}

func TestParseBetween(t *testing.T) {
	q := roundTrip(t, `SELECT a FROM t WHERE a BETWEEN 1 AND 5`)
	and, ok := q.Body.(*SelectStmt).Where.(AndExpr)
	if !ok {
		t.Fatalf("BETWEEN desugared to %T", q.Body.(*SelectStmt).Where)
	}
	if cmp, ok := and.L.(CmpExpr); !ok || cmp.Op != ">=" {
		t.Errorf("lower bound: %#v", and.L)
	}
	if cmp, ok := and.R.(CmpExpr); !ok || cmp.Op != "<=" {
		t.Errorf("upper bound: %#v", and.R)
	}

	q2 := roundTrip(t, `SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5`)
	or, ok := q2.Body.(*SelectStmt).Where.(OrExpr)
	if !ok {
		t.Fatalf("NOT BETWEEN desugared to %T", q2.Body.(*SelectStmt).Where)
	}
	if cmp, ok := or.L.(CmpExpr); !ok || cmp.Op != "<" {
		t.Errorf("negated lower: %#v", or.L)
	}

	// BETWEEN binds tighter than AND: a BETWEEN 1 AND 5 AND b = 2.
	q3 := roundTrip(t, `SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b = 2`)
	top, ok := q3.Body.(*SelectStmt).Where.(AndExpr)
	if !ok {
		t.Fatalf("top: %T", q3.Body.(*SelectStmt).Where)
	}
	if _, ok := top.R.(CmpExpr); !ok {
		t.Errorf("right conjunct: %#v", top.R)
	}
	if _, err := Parse(`SELECT a FROM t WHERE a BETWEEN 1`); err == nil {
		t.Error("incomplete BETWEEN accepted")
	}
}
