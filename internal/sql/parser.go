package sql

import (
	"strconv"
	"strings"
)

// Parse parses one SQL query.
func Parse(src string) (*Query, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	// Tolerate a trailing statement terminator (files fed to certlint
	// usually have one); the renderer never emits it.
	for p.at(TokSymbol) && p.cur().Text == ";" {
		p.i++
	}
	if !p.at(TokEOF) {
		return nil, errorf(p.cur().Pos, "unexpected %s after query", p.cur())
	}
	return q, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) peek() Token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) at(k TokenKind) bool { return p.cur().Kind == k }

// atKeyword reports whether the current token is the given keyword
// (identifiers are case-insensitive).
func (p *parser) atKeyword(kw string) bool {
	return p.cur().Kind == TokIdent && strings.EqualFold(p.cur().Text, kw)
}

func (p *parser) atSymbol(s string) bool {
	return p.cur().Kind == TokSymbol && p.cur().Text == s
}

func (p *parser) advance() Token {
	t := p.cur()
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return errorf(p.cur().Pos, "expected %s, found %s", strings.ToUpper(kw), p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if !p.atSymbol(s) {
		return errorf(p.cur().Pos, "expected %q, found %s", s, p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if !p.at(TokIdent) {
		return "", errorf(p.cur().Pos, "expected identifier, found %s", p.cur())
	}
	return p.advance().Text, nil
}

// reserved keywords cannot be used as table aliases.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"not": true, "exists": true, "in": true, "like": true, "is": true,
	"null": true, "union": true, "intersect": true, "except": true,
	"with": true, "as": true, "distinct": true, "on": true, "between": true,
	"group": true, "order": true, "by": true, "limit": true,
	"asc": true, "desc": true, "having": true,
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.atKeyword("with") {
		p.advance()
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("as"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			body, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			q.With = append(q.With, CTE{Name: name, Body: body})
			if p.atSymbol(",") {
				p.advance()
				continue
			}
			break
		}
	}
	body, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	q.Body = body
	return q, nil
}

func (p *parser) parseQueryExpr() (QueryExpr, error) {
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	var out QueryExpr = left
	for {
		var op SetOpKind
		switch {
		case p.atKeyword("union"):
			op = OpUnion
		case p.atKeyword("intersect"):
			op = OpIntersect
		case p.atKeyword("except"):
			op = OpExcept
		default:
			return out, nil
		}
		pos := p.cur().Pos
		p.advance()
		if p.atKeyword("all") {
			return nil, errorf(p.cur().Pos, "bag semantics (UNION ALL) is outside the studied fragment")
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		out = SetOp{Op: op, L: out, R: right, Pos: pos}
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	// SELECT CERTAIN — the correct-evaluation mode the paper's
	// conclusion proposes — and its dual SELECT POSSIBLE. Either may
	// also name a column, so they are keywords only when not
	// immediately followed by FROM or a comma.
	modeKeyword := func(kw string) bool {
		return p.atKeyword(kw) && !p.peekKeywordIs("from") &&
			!(p.peek().Kind == TokSymbol && p.peek().Text == ",")
	}
	switch {
	case modeKeyword("certain"):
		p.advance()
		s.Certain = true
	case modeKeyword("possible"):
		p.advance()
		s.Possible = true
	}
	if p.atKeyword("distinct") {
		p.advance()
		s.Distinct = true
	}
	if p.atSymbol("*") {
		p.advance()
		s.Star = true
	} else {
		for {
			e, err := p.parseSelectExpr()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, SelectItem{Expr: e})
			if p.atSymbol(",") {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: name}
		if p.atKeyword("as") {
			p.advance()
			pos := p.cur().Pos
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if reserved[strings.ToLower(alias)] {
				return nil, errorf(pos, "reserved word %q cannot be a table alias", alias)
			}
			ref.Alias = alias
		} else if p.at(TokIdent) && !reserved[strings.ToLower(p.cur().Text)] {
			ref.Alias = p.advance().Text
		}
		s.From = append(s.From, ref)
		if p.atSymbol(",") {
			p.advance()
			continue
		}
		break
	}
	if p.atKeyword("where") {
		p.advance()
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.atKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, ref)
			if p.atSymbol(",") {
				p.advance()
				continue
			}
			break
		}
	}
	if p.atKeyword("having") {
		p.advance()
		h, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.atKeyword("order") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			var item OrderItem
			if p.at(TokNumber) {
				n, err := strconv.Atoi(p.advance().Text)
				if err != nil || n < 1 {
					return nil, errorf(p.cur().Pos, "ORDER BY position must be a positive integer")
				}
				item.Pos = n
			} else {
				ref, err := p.parseColRef()
				if err != nil {
					return nil, err
				}
				item.Ref = ref
			}
			switch {
			case p.atKeyword("desc"):
				p.advance()
				item.Desc = true
			case p.atKeyword("asc"):
				p.advance()
			}
			s.OrderBy = append(s.OrderBy, item)
			if p.atSymbol(",") {
				p.advance()
				continue
			}
			break
		}
	}
	if p.atKeyword("limit") {
		p.advance()
		if !p.at(TokNumber) {
			return nil, errorf(p.cur().Pos, "expected a number after LIMIT")
		}
		n, err := strconv.Atoi(p.advance().Text)
		if err != nil || n < 0 {
			return nil, errorf(p.cur().Pos, "LIMIT must be a non-negative integer")
		}
		s.Limit = &n
	}
	return s, nil
}

// parseColRef parses `name` or `qualifier.name`.
func (p *parser) parseColRef() (ColRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.atSymbol(".") {
		p.advance()
		col, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: name, Name: col}, nil
	}
	return ColRef{Name: name}, nil
}

// parseSelectExpr parses a select-list item: a column reference or an
// aggregate call.
func (p *parser) parseSelectExpr() (Expr, error) {
	return p.parseOperand()
}

// parseAggCall parses AVG(col), COUNT(*) and friends when the cursor
// sits on an aggregate function name followed by '('; ok is false
// otherwise.
func (p *parser) parseAggCall() (Expr, bool, error) {
	if !(p.at(TokIdent) && p.peek().Kind == TokSymbol && p.peek().Text == "(") {
		return nil, false, nil
	}
	fn := strings.ToUpper(p.cur().Text)
	switch fn {
	case "AVG", "SUM", "COUNT", "MIN", "MAX":
	default:
		return nil, false, nil
	}
	p.advance()
	p.advance() // (
	var arg Expr
	if p.atSymbol("*") {
		p.advance()
	} else {
		a, err := p.parseOperand()
		if err != nil {
			return nil, false, err
		}
		arg = a
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, false, err
	}
	return AggCall{Func: fn, Arg: arg}, true, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = OrExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = AndExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("not") && !p.peekIsExistsFollowing() {
		// NOT EXISTS is handled in parsePredicate so the Negated flag
		// lands on the ExistsExpr; plain NOT wraps a predicate.
		pos := p.cur().Pos
		p.advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e, Pos: pos}, nil
	}
	return p.parsePredicate()
}

func (p *parser) peekIsExistsFollowing() bool {
	n := p.peek()
	return n.Kind == TokIdent && strings.EqualFold(n.Text, "exists")
}

func (p *parser) parsePredicate() (Expr, error) {
	// [NOT] EXISTS (subquery); the diagnostic position points at NOT
	// when present, else at EXISTS.
	negated := false
	pos := p.cur().Pos
	if p.atKeyword("not") && p.peekIsExistsFollowing() {
		p.advance()
		negated = true
	}
	if p.atKeyword("exists") {
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return ExistsExpr{Sub: sub, Negated: negated, Pos: pos}, nil
	}

	// Parenthesized condition (but not a scalar subquery, which is an
	// operand and handled in parseOperand).
	if p.atSymbol("(") && !(p.peek().Kind == TokIdent && strings.EqualFold(p.peek().Text, "select")) {
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}

	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return p.parsePredicateRest(left)
}

func (p *parser) parsePredicateRest(left Expr) (Expr, error) {
	// Every branch records the operator token's byte offset on the node
	// it builds; for NOT LIKE / NOT IN / NOT BETWEEN the position points
	// at the NOT.
	pos := p.cur().Pos
	switch {
	case p.atKeyword("between"):
		p.advance()
		return p.parseBetweenRest(left, false, pos)

	case p.atKeyword("not") && p.peekKeywordIs("between"):
		p.advance()
		p.advance()
		return p.parseBetweenRest(left, true, pos)

	case p.atKeyword("is"):
		p.advance()
		neg := false
		if p.atKeyword("not") {
			p.advance()
			neg = true
		}
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return IsNullExpr{E: left, Negated: neg, Pos: pos}, nil

	case p.atKeyword("like"):
		p.advance()
		pat, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return LikeExpr{L: left, Pattern: pat, Pos: pos}, nil

	case p.atKeyword("not") && (p.peekKeywordIs("like") || p.peekKeywordIs("in")):
		p.advance()
		if p.atKeyword("like") {
			p.advance()
			pat, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return LikeExpr{L: left, Pattern: pat, Negated: true, Pos: pos}, nil
		}
		p.advance() // IN
		return p.parseInRest(left, true, pos)

	case p.atKeyword("in"):
		p.advance()
		return p.parseInRest(left, false, pos)

	case p.atSymbol("=") || p.atSymbol("<>") || p.atSymbol("!=") ||
		p.atSymbol("<") || p.atSymbol("<=") || p.atSymbol(">") || p.atSymbol(">="):
		op := p.advance().Text
		if op == "!=" {
			op = "<>"
		}
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return CmpExpr{Op: op, L: left, R: right, Pos: pos}, nil

	default:
		return nil, errorf(p.cur().Pos, "expected predicate, found %s", p.cur())
	}
}

// parseBetweenRest parses `lo AND hi` after [NOT] BETWEEN and desugars
// it into the conjunction left >= lo AND left <= hi (negated: left < lo
// OR left > hi), matching SQL's definition. The desugared comparisons
// all carry the BETWEEN keyword's position.
func (p *parser) parseBetweenRest(left Expr, negated bool, pos int) (Expr, error) {
	lo, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("and"); err != nil {
		return nil, err
	}
	hi, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if negated {
		return OrExpr{
			L: CmpExpr{Op: "<", L: left, R: lo, Pos: pos},
			R: CmpExpr{Op: ">", L: left, R: hi, Pos: pos},
		}, nil
	}
	return AndExpr{
		L: CmpExpr{Op: ">=", L: left, R: lo, Pos: pos},
		R: CmpExpr{Op: "<=", L: left, R: hi, Pos: pos},
	}, nil
}

func (p *parser) peekKeywordIs(kw string) bool {
	n := p.peek()
	return n.Kind == TokIdent && strings.EqualFold(n.Text, kw)
}

func (p *parser) parseInRest(left Expr, negated bool, pos int) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.atKeyword("select") || p.atKeyword("with") {
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return InExpr{E: left, Sub: sub, Negated: negated, Pos: pos}, nil
	}
	var list []Expr
	for {
		v, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		list = append(list, v)
		if p.atSymbol(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return InExpr{E: left, List: list, Negated: negated, Pos: pos}, nil
}

// parseOperand parses a scalar operand, including `||` concatenations.
func (p *parser) parseOperand() (Expr, error) {
	left, err := p.parsePrimaryOperand()
	if err != nil {
		return nil, err
	}
	if !p.atSymbol("||") {
		return left, nil
	}
	parts := []Expr{left}
	for p.atSymbol("||") {
		p.advance()
		next, err := p.parsePrimaryOperand()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	return Concat{Parts: parts}, nil
}

func (p *parser) parsePrimaryOperand() (Expr, error) {
	if agg, ok, err := p.parseAggCall(); err != nil {
		return nil, err
	} else if ok {
		return agg, nil
	}
	switch {
	case p.at(TokNumber):
		return NumLit{Text: p.advance().Text}, nil
	case p.at(TokString):
		return StrLit{Text: p.advance().Text}, nil
	case p.at(TokParam):
		return Param{Name: p.advance().Text}, nil
	case p.atKeyword("null"):
		p.advance()
		return NullLit{}, nil
	case p.atSymbol("("):
		p.advance()
		if !p.atKeyword("select") && !p.atKeyword("with") {
			return nil, errorf(p.cur().Pos, "expected scalar subquery after '(' in operand position")
		}
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return SubqueryExpr{Q: sub}, nil
	case p.at(TokIdent):
		name := p.advance().Text
		if p.atSymbol(".") {
			p.advance()
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return ColRef{Qualifier: name, Name: col}, nil
		}
		return ColRef{Name: name}, nil
	default:
		return nil, errorf(p.cur().Pos, "expected operand, found %s", p.cur())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
