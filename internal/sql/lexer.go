package sql

import (
	"strings"
	"unicode"
)

// lexer splits SQL text into tokens. Identifiers and keywords are
// case-insensitive (keywords are recognized by the parser, not the
// lexer). Strings use single quotes with ” as the escape for a quote.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// Lex tokenizes the whole input, returning the token stream ending in
// TokEOF, or an error for malformed input.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) next() (Token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		lx.pos++
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		return Token{Kind: TokIdent, Text: lx.src[start:lx.pos], Pos: start}, nil

	case c >= '0' && c <= '9':
		lx.pos++
		for lx.pos < len(lx.src) && (isDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.') {
			lx.pos++
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Pos: start}, nil

	case c == '\'':
		lx.pos++
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, errorf(start, "unterminated string literal")
			}
			if lx.src[lx.pos] == '\'' {
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
					b.WriteByte('\'')
					lx.pos += 2
					continue
				}
				lx.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(lx.src[lx.pos])
			lx.pos++
		}

	case c == '$':
		lx.pos++
		s := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		if lx.pos == s {
			return Token{}, errorf(start, "expected parameter name after $")
		}
		return Token{Kind: TokParam, Text: lx.src[s:lx.pos], Pos: start}, nil

	default:
		for _, sym := range multiCharSymbols {
			if strings.HasPrefix(lx.src[lx.pos:], sym) {
				lx.pos += len(sym)
				return Token{Kind: TokSymbol, Text: sym, Pos: start}, nil
			}
		}
		if strings.ContainsRune("()+-*/,.=<>;", rune(c)) {
			lx.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, errorf(start, "unexpected character %q", c)
	}
}

// multiCharSymbols must be checked longest-first.
var multiCharSymbols = []string{"<>", "!=", "<=", ">=", "||"}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			lx.pos++
		case strings.HasPrefix(lx.src[lx.pos:], "--"):
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
