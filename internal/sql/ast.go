package sql

import (
	"fmt"
	"strings"
)

// Query is a full query: optional WITH views followed by a query
// expression (a select or a set operation over selects).
type Query struct {
	With []CTE
	Body QueryExpr
}

// CTE is one WITH view.
type CTE struct {
	Name string
	Body QueryExpr
}

// QueryExpr is a select statement or a set operation.
type QueryExpr interface {
	isQueryExpr()
	sqlText(b *strings.Builder)
}

// SetOpKind distinguishes the three set operations.
type SetOpKind uint8

// Set operation kinds.
const (
	OpUnion SetOpKind = iota
	OpIntersect
	OpExcept
)

// String renders the SQL keyword.
func (k SetOpKind) String() string {
	switch k {
	case OpUnion:
		return "UNION"
	case OpIntersect:
		return "INTERSECT"
	default:
		return "EXCEPT"
	}
}

// SetOp is L op R (set semantics, as in relational algebra).
type SetOp struct {
	Op   SetOpKind
	L, R QueryExpr
	// Pos is the byte offset of the operator keyword in the source
	// text, for diagnostics; 0 on synthesized nodes.
	Pos int
}

// SelectStmt is a SELECT-FROM-WHERE block.
type SelectStmt struct {
	// Certain marks the `SELECT CERTAIN` evaluation mode — the syntax
	// the paper's conclusion envisions for a second, fully correct
	// evaluation mode. The engine then evaluates the query's Q⁺
	// translation instead of the query itself.
	Certain bool
	// Possible marks the dual `SELECT POSSIBLE` mode: the engine
	// evaluates Q⋆, a compact representation of the potential answers
	// (Definition 3 of the paper) — every answer obtainable under some
	// interpretation of the nulls is an instantiation of a returned
	// tuple.
	Possible bool
	Distinct bool
	Star     bool // SELECT *
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent
	// GroupBy lists the grouping columns (standard evaluation mode
	// only; certain-answer evaluation of aggregates is open theory —
	// Section 8 of the paper). Having filters the groups.
	GroupBy []ColRef
	Having  Expr // nil when absent
	// OrderBy sorts the output; Limit (when non-nil) truncates it.
	OrderBy []OrderItem
	Limit   *int
}

// OrderItem is one ORDER BY key: an output column by name, or a
// 1-based output position when Pos > 0.
type OrderItem struct {
	Ref  ColRef
	Pos  int
	Desc bool
}

// SelectItem is one output expression (a column or an aggregate call).
type SelectItem struct {
	Expr Expr
}

// TableRef is one FROM entry: a base table or WITH-view name with an
// optional alias.
type TableRef struct {
	Table string
	Alias string // empty when none; resolution falls back to Table
}

// Name returns the name the reference is known by in scope.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

func (SetOp) isQueryExpr()       {}
func (*SelectStmt) isQueryExpr() {}

// Expr is a scalar expression or condition in the AST. The SQL grammar
// mixes these freely; the compiler sorts them out.
type Expr interface {
	isExpr()
	sqlText(b *strings.Builder)
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Qualifier string // "" when unqualified
	Name      string
}

// NumLit is a numeric literal; Text preserves the source form.
type NumLit struct{ Text string }

// StrLit is a string literal.
type StrLit struct{ Text string }

// NullLit is the literal NULL.
type NullLit struct{}

// Param is a $name parameter, bound at compile time.
type Param struct{ Name string }

// Concat is `a || b || …` string concatenation.
type Concat struct{ Parts []Expr }

// AggCall is an aggregate call AVG(col), COUNT(*), …, legal only in the
// select list of a scalar subquery.
type AggCall struct {
	Func string // upper-cased
	Arg  Expr   // nil for COUNT(*)
}

// CmpExpr is a comparison L op R, with op in =, <>, <, <=, >, >=.
// Pos is the byte offset of the operator symbol in the source text
// (0 on synthesized nodes), kept for diagnostics.
type CmpExpr struct {
	Op   string
	L, R Expr
	Pos  int
}

// LikeExpr is L [NOT] LIKE pattern. Pos points at LIKE (or the NOT
// preceding it).
type LikeExpr struct {
	L, Pattern Expr
	Negated    bool
	Pos        int
}

// IsNullExpr is E IS [NOT] NULL. Pos points at the IS keyword.
type IsNullExpr struct {
	E       Expr
	Negated bool
	Pos     int
}

// InExpr is E [NOT] IN (list) or E [NOT] IN (subquery). Pos points at
// IN (or the NOT preceding it).
type InExpr struct {
	E       Expr
	List    []Expr // non-nil for a value list
	Sub     *Query // non-nil for a subquery
	Negated bool
	Pos     int
}

// ExistsExpr is [NOT] EXISTS (subquery). Pos points at EXISTS (or the
// NOT preceding it).
type ExistsExpr struct {
	Sub     *Query
	Negated bool
	Pos     int
}

// SubqueryExpr is a scalar subquery used as a comparison operand.
type SubqueryExpr struct{ Q *Query }

// AndExpr, OrExpr and NotExpr are the Boolean connectives.
type (
	// AndExpr is L AND R.
	AndExpr struct{ L, R Expr }
	// OrExpr is L OR R.
	OrExpr struct{ L, R Expr }
	// NotExpr is NOT E; Pos is the byte offset of the NOT keyword.
	NotExpr struct {
		E   Expr
		Pos int
	}
)

func (ColRef) isExpr()       {}
func (NumLit) isExpr()       {}
func (StrLit) isExpr()       {}
func (NullLit) isExpr()      {}
func (Param) isExpr()        {}
func (Concat) isExpr()       {}
func (AggCall) isExpr()      {}
func (CmpExpr) isExpr()      {}
func (LikeExpr) isExpr()     {}
func (IsNullExpr) isExpr()   {}
func (InExpr) isExpr()       {}
func (ExistsExpr) isExpr()   {}
func (SubqueryExpr) isExpr() {}
func (AndExpr) isExpr()      {}
func (OrExpr) isExpr()       {}
func (NotExpr) isExpr()      {}

// SQL renders the query back to SQL text; round-tripping is used by the
// rewriter and by tests.
func (q *Query) SQL() string {
	var b strings.Builder
	if len(q.With) > 0 {
		b.WriteString("WITH ")
		for i, cte := range q.With {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(cte.Name)
			b.WriteString(" AS (")
			cte.Body.sqlText(&b)
			b.WriteString(")")
		}
		b.WriteString(" ")
	}
	q.Body.sqlText(&b)
	return b.String()
}

func (s SetOp) sqlText(b *strings.Builder) {
	s.L.sqlText(b)
	fmt.Fprintf(b, " %s ", s.Op)
	if _, nested := s.R.(SetOp); nested {
		b.WriteString("(")
		s.R.sqlText(b)
		b.WriteString(")")
	} else {
		s.R.sqlText(b)
	}
}

func (s *SelectStmt) sqlText(b *strings.Builder) {
	b.WriteString("SELECT ")
	if s.Certain {
		b.WriteString("CERTAIN ")
	}
	if s.Possible {
		b.WriteString("POSSIBLE ")
	}
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			it.Expr.sqlText(b)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" {
			b.WriteString(" ")
			b.WriteString(t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		s.Where.sqlText(b)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			g.sqlText(b)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		s.Having.sqlText(b)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			if o.Pos > 0 {
				fmt.Fprintf(b, "%d", o.Pos)
			} else {
				o.Ref.sqlText(b)
			}
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(b, " LIMIT %d", *s.Limit)
	}
}

func (e ColRef) sqlText(b *strings.Builder) {
	if e.Qualifier != "" {
		b.WriteString(e.Qualifier)
		b.WriteString(".")
	}
	b.WriteString(e.Name)
}

func (e NumLit) sqlText(b *strings.Builder) { b.WriteString(e.Text) }
func (e StrLit) sqlText(b *strings.Builder) {
	b.WriteString("'" + strings.ReplaceAll(e.Text, "'", "''") + "'")
}
func (e NullLit) sqlText(b *strings.Builder) { b.WriteString("NULL") }
func (e Param) sqlText(b *strings.Builder)   { b.WriteString("$" + e.Name) }

func (e Concat) sqlText(b *strings.Builder) {
	for i, p := range e.Parts {
		if i > 0 {
			b.WriteString("||")
		}
		p.sqlText(b)
	}
}

func (e AggCall) sqlText(b *strings.Builder) {
	b.WriteString(e.Func)
	b.WriteString("(")
	if e.Arg == nil {
		b.WriteString("*")
	} else {
		e.Arg.sqlText(b)
	}
	b.WriteString(")")
}

func (e CmpExpr) sqlText(b *strings.Builder) {
	e.L.sqlText(b)
	b.WriteString(" " + e.Op + " ")
	if sub, ok := e.R.(SubqueryExpr); ok {
		sub.sqlText(b)
		return
	}
	e.R.sqlText(b)
}

func (e LikeExpr) sqlText(b *strings.Builder) {
	e.L.sqlText(b)
	if e.Negated {
		b.WriteString(" NOT LIKE ")
	} else {
		b.WriteString(" LIKE ")
	}
	e.Pattern.sqlText(b)
}

func (e IsNullExpr) sqlText(b *strings.Builder) {
	e.E.sqlText(b)
	if e.Negated {
		b.WriteString(" IS NOT NULL")
	} else {
		b.WriteString(" IS NULL")
	}
}

func (e InExpr) sqlText(b *strings.Builder) {
	e.E.sqlText(b)
	if e.Negated {
		b.WriteString(" NOT IN (")
	} else {
		b.WriteString(" IN (")
	}
	if e.Sub != nil {
		b.WriteString(e.Sub.SQL())
	} else {
		for i, v := range e.List {
			if i > 0 {
				b.WriteString(", ")
			}
			v.sqlText(b)
		}
	}
	b.WriteString(")")
}

func (e ExistsExpr) sqlText(b *strings.Builder) {
	if e.Negated {
		b.WriteString("NOT ")
	}
	b.WriteString("EXISTS (")
	b.WriteString(e.Sub.SQL())
	b.WriteString(")")
}

func (e SubqueryExpr) sqlText(b *strings.Builder) {
	b.WriteString("(")
	b.WriteString(e.Q.SQL())
	b.WriteString(")")
}

func (e AndExpr) sqlText(b *strings.Builder) {
	andOperand(b, e.L)
	b.WriteString(" AND ")
	andOperand(b, e.R)
}

func andOperand(b *strings.Builder, e Expr) {
	if _, ok := e.(OrExpr); ok {
		b.WriteString("(")
		e.sqlText(b)
		b.WriteString(")")
		return
	}
	e.sqlText(b)
}

func (e OrExpr) sqlText(b *strings.Builder) {
	e.L.sqlText(b)
	b.WriteString(" OR ")
	e.R.sqlText(b)
}

func (e NotExpr) sqlText(b *strings.Builder) {
	b.WriteString("NOT (")
	e.E.sqlText(b)
	b.WriteString(")")
}
