package plan

import (
	"fmt"

	"certsql/internal/algebra"
)

// AuditCost checks the internal consistency invariants of a costed
// plan tree, recursively: estimates are finite and non-negative, a
// node's cost covers the sum of its children's costs (cost is
// cumulative, hence monotone in subtree cardinality), and a node's
// cost covers its own output cardinality (emitting a row costs at
// least one unit). difftest runs this over every planned query.
func AuditCost(n *ExplainNode) error {
	if n == nil {
		return nil
	}
	if n.EstRows < 0 || n.EstCost < 0 {
		return fmt.Errorf("plan: %s: negative estimate (rows=%v cost=%v)", n.Op, n.EstRows, n.EstCost)
	}
	if n.EstRows > 1e300 || n.EstCost > 1e300 {
		return fmt.Errorf("plan: %s: non-finite estimate (rows=%v cost=%v)", n.Op, n.EstRows, n.EstCost)
	}
	childCost := 0.0
	for _, c := range n.Children {
		if err := AuditCost(c); err != nil {
			return err
		}
		childCost += c.EstCost
	}
	// Allow a whisker of float slack on the comparisons.
	const slack = 1e-6
	if n.EstCost+slack < childCost {
		return fmt.Errorf("plan: %s: cost %v below children's %v", n.Op, n.EstCost, childCost)
	}
	if n.EstCost+slack < n.EstRows {
		return fmt.Errorf("plan: %s: cost %v below own cardinality %v", n.Op, n.EstCost, n.EstRows)
	}
	return nil
}

// AuditConds checks that a rewrite invented no predicates: every
// atomic comparison in the optimized plan's conditions must appear in
// the original plan, up to NNF, column renumbering (pushdown remaps
// positions) and polarity (anti-split negates null tests). Atoms are
// compared by shape: operator and operand structure with column
// positions wildcarded.
func AuditConds(orig, opt algebra.Expr) error {
	have := map[string]bool{}
	for _, a := range condAtoms(orig) {
		have[a] = true
	}
	for _, a := range condAtoms(opt) {
		if !have[a] {
			return fmt.Errorf("plan: rewritten plan contains atom %q absent from the original", a)
		}
	}
	return nil
}

// condAtoms collects the atom shapes of every condition in e,
// including inside scalar subqueries.
func condAtoms(e algebra.Expr) []string {
	var atoms []string
	algebra.Walk(e, func(x algebra.Expr) {
		for _, c := range algebra.Conds(x) {
			collectAtoms(algebra.NNF(c), &atoms)
		}
	})
	return atoms
}

func collectAtoms(c algebra.Cond, out *[]string) {
	switch c := c.(type) {
	case algebra.TrueCond, algebra.FalseCond:
	case algebra.And:
		for _, sub := range c.Conds {
			collectAtoms(sub, out)
		}
	case algebra.Or:
		for _, sub := range c.Conds {
			collectAtoms(sub, out)
		}
	case algebra.Not:
		collectAtoms(c.C, out)
	case algebra.Cmp:
		*out = append(*out, "cmp:"+c.Op.String()+"("+opShape(c.L)+","+opShape(c.R)+")")
	case algebra.Like:
		*out = append(*out, "like("+opShape(c.Operand)+","+opShape(c.Pattern)+")")
	case algebra.NullTest:
		*out = append(*out, "null("+opShape(c.Operand)+")")
	}
}

// opShape renders an operand with column positions wildcarded, so
// pushdown's renumbering does not disturb the comparison.
func opShape(o algebra.Operand) string {
	switch o := o.(type) {
	case algebra.Col:
		return "#"
	case algebra.Lit:
		return "lit:" + o.Val.String()
	case algebra.Scalar:
		return "scalar"
	default:
		return "?"
	}
}
