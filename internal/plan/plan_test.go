package plan_test

import (
	"math/rand"
	"strings"
	"testing"

	"certsql/internal/algebra"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/plan"
	"certsql/internal/qgen"
	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/stats"
	"certsql/internal/table"
	"certsql/internal/value"
)

// planDB builds a two-relation database: r.a is declared nullable but
// holds no nulls (the data-tier premise case), r.b is a string, s.c is
// nullable and actually holds a null.
func planDB(t *testing.T) *table.Database {
	t.Helper()
	sch := schema.New()
	sch.MustAdd(&schema.Relation{
		Name: "r",
		Attrs: []schema.Attribute{
			{Name: "a", Type: value.KindInt, Nullable: true},
			{Name: "b", Type: value.KindString},
		},
	})
	sch.MustAdd(&schema.Relation{
		Name: "s",
		Attrs: []schema.Attribute{
			{Name: "c", Type: value.KindInt, Nullable: true},
		},
	})
	db := table.NewDatabase(sch)
	for i := int64(0); i < 8; i++ {
		if err := db.Insert("r", table.Row{value.Int(i), value.Str(strings.Repeat("x", int(i%3)+1))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("s", table.Row{value.Int(3)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("s", table.Row{db.FreshNull()}); err != nil {
		t.Fatal(err)
	}
	return db
}

func collect(db *table.Database) *stats.DBStats {
	return stats.NewCollector().Collect(db)
}

// TestRuleFamily checks the Rule family's self-consistency: Rules and
// RuleKinds align one-to-one in order, names are distinct and stable,
// and every rule describes itself.
func TestRuleFamily(t *testing.T) {
	if len(plan.Rules) != len(plan.RuleKinds) {
		t.Fatalf("Rules has %d entries, RuleKinds %d", len(plan.Rules), len(plan.RuleKinds))
	}
	seen := map[string]bool{}
	for i, r := range plan.Rules {
		if r.Kind() != plan.RuleKinds[i] {
			t.Errorf("Rules[%d].Kind() = %v, want %v", i, r.Kind(), plan.RuleKinds[i])
		}
		name := r.Kind().String()
		if name == "" || name == "unknown-rule" {
			t.Errorf("rule %d has no stable name", i)
		}
		if seen[name] {
			t.Errorf("duplicate rule name %q", name)
		}
		seen[name] = true
		if r.Describe() == "" {
			t.Errorf("rule %s has no description", name)
		}
	}
}

// TestNullTestElimPremise checks the data-tier null-test elimination:
// a filter on a nullable-but-null-free column simplifies under a
// recorded premise, and the premise stops holding once a null lands in
// the column.
func TestNullTestElimPremise(t *testing.T) {
	db := planDB(t)
	st := collect(db)
	// σ[a IS NOT NULL](r): statically undecidable (a is nullable),
	// decided by the statistics.
	e := algebra.Select{
		Child: algebra.Base{Name: "r", Cols: 2},
		Cond:  algebra.NullTest{Operand: algebra.Col{Idx: 0}, Negated: true},
	}
	res, err := plan.Optimize(e, db.Schema, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Expr.(algebra.Base); !ok {
		t.Fatalf("vacuous filter not removed: %T", res.Expr)
	}
	want := plan.Premise{Kind: plan.PremiseNullFree, Table: "r", Col: 0}
	if len(res.Premises) != 1 || res.Premises[0] != want {
		t.Fatalf("premises = %v, want [%v]", res.Premises, want)
	}
	if !plan.CheckPremises(res.Premises, st) {
		t.Fatal("premise must hold on the stats it was derived from")
	}
	// A null arriving in r.a invalidates the premise on fresh stats.
	if err := db.Insert("r", table.Row{db.FreshNull(), value.Str("y")}); err != nil {
		t.Fatal(err)
	}
	if plan.CheckPremises(res.Premises, collect(db)) {
		t.Fatal("premise must fail after a null lands in r.a")
	}
	if plan.CheckPremises(res.Premises, nil) {
		t.Fatal("premises must fail without statistics")
	}
}

// TestAntiSplitShape checks the anti-split rewrite's output shape on
// L ▷[(θ ∨ ρ) ∧ rest] R: two stacked antijoins over complementary
// selections of R, with the IS NULL disjunction gone from both
// conditions. Neither conjunct carries an extractable equality, so the
// unsplit antijoin would nested-loop and the cost model approves the
// split (L is grown so the quadratic term dominates).
func TestAntiSplitShape(t *testing.T) {
	db := planDB(t)
	for i := int64(8); i < 64; i++ {
		if err := db.Insert("r", table.Row{value.Int(i), value.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	st := collect(db)
	cond := algebra.NewAnd(
		algebra.NewOr(
			algebra.Cmp{Op: algebra.NE, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 2}},
			algebra.NullTest{Operand: algebra.Col{Idx: 2}},
		),
		algebra.Cmp{Op: algebra.LT, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 2}},
	)
	e := algebra.SemiJoin{L: algebra.Base{Name: "r", Cols: 2}, R: algebra.Base{Name: "s", Cols: 1}, Cond: cond, Anti: true}
	res, err := plan.Optimize(e, db.Schema, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := map[plan.RuleKind]bool{}
	for _, k := range res.Fired {
		fired[k] = true
	}
	if !fired[plan.RuleAntiSplit] {
		t.Fatalf("anti-split did not fire; rules: %v", res.Fired)
	}
	outer, ok := res.Expr.(algebra.SemiJoin)
	if !ok || !outer.Anti {
		t.Fatalf("want outer antijoin, got %T", res.Expr)
	}
	inner, ok := outer.L.(algebra.SemiJoin)
	if !ok || !inner.Anti {
		t.Fatalf("want inner antijoin on L, got %T", outer.L)
	}
	for side, e := range map[string]algebra.Expr{"inner": inner.R, "outer": outer.R} {
		sel, ok := e.(algebra.Select)
		if !ok {
			t.Fatalf("%s right side is %T, want selection over s", side, e)
		}
		if _, ok := sel.Child.(algebra.Base); !ok {
			t.Fatalf("%s selection child is %T, want base", side, sel.Child)
		}
	}
	for _, c := range algebra.Conjuncts(outer.Cond) {
		if or, ok := c.(algebra.Or); ok {
			for _, d := range or.Conds {
				if _, ok := d.(algebra.NullTest); ok {
					t.Fatalf("outer condition still carries an IS NULL disjunct: %v", outer.Cond)
				}
			}
		}
	}
}

// TestAntiSplitCostGate checks the cost gate on the same split: when
// the residual conjunct carries an extractable equality, the runtime
// hashes the unsplit antijoin anyway, so splitting only adds a second
// build pass and the planner must refuse it.
func TestAntiSplitCostGate(t *testing.T) {
	db := planDB(t)
	st := collect(db)
	cond := algebra.NewAnd(
		algebra.NewOr(
			algebra.Cmp{Op: algebra.NE, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 2}},
			algebra.NullTest{Operand: algebra.Col{Idx: 2}},
		),
		algebra.Cmp{Op: algebra.EQ, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 2}},
	)
	e := algebra.SemiJoin{L: algebra.Base{Name: "r", Cols: 2}, R: algebra.Base{Name: "s", Cols: 1}, Cond: cond, Anti: true}
	res, err := plan.Optimize(e, db.Schema, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Fired {
		if k == plan.RuleAntiSplit {
			t.Fatalf("anti-split fired on a hash-friendly antijoin; rules: %v\n%s", res.Fired, res.ExplainText())
		}
	}
	if _, ok := res.Expr.(algebra.SemiJoin); !ok {
		t.Fatalf("antijoin shape changed: %T", res.Expr)
	}
}

// TestSemiHints checks hint derivation on a hash semijoin with a
// numeric key: slim verification and the numeric-key specialization
// both require the num-range premise, and pre-sizing uses the distinct
// estimate.
func TestSemiHints(t *testing.T) {
	db := planDB(t)
	st := collect(db)
	e := algebra.SemiJoin{
		L:    algebra.Base{Name: "r", Cols: 2},
		R:    algebra.Base{Name: "s", Cols: 1},
		Cond: algebra.Cmp{Op: algebra.EQ, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 2}},
	}
	res, err := plan.Optimize(e, db.Schema, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hints == nil {
		t.Fatal("no hints derived for a keyed semijoin")
	}
	h, ok := res.Hints.Semi[e.Key()]
	if !ok {
		t.Fatalf("no hint under the semijoin's key; hints: %v", res.Hints.Semi)
	}
	if !h.SlimVerify || !h.NumKey {
		t.Fatalf("hint = %+v, want SlimVerify and NumKey", h)
	}
	if h.BuildDistinct != 1 { // s.c holds one non-null distinct value
		t.Fatalf("BuildDistinct = %d, want 1", h.BuildDistinct)
	}
	hasRange := false
	for _, p := range res.Premises {
		if p.Kind == plan.PremiseNumRange {
			hasRange = true
		}
	}
	if !hasRange {
		t.Fatalf("numeric slim-verify must record a num-range premise; got %v", res.Premises)
	}
}

// TestAuditRejectsTampering checks that the audits actually bite:
// an inconsistent cost tree and an invented predicate atom both fail.
func TestAuditRejectsTampering(t *testing.T) {
	good := &plan.ExplainNode{Op: "select", EstRows: 10, EstCost: 120,
		Children: []*plan.ExplainNode{{Op: "scan", EstRows: 100, EstCost: 101}}}
	if err := plan.AuditCost(good); err != nil {
		t.Fatalf("consistent tree rejected: %v", err)
	}
	cheap := &plan.ExplainNode{Op: "select", EstRows: 10, EstCost: 50,
		Children: []*plan.ExplainNode{{Op: "scan", EstRows: 100, EstCost: 101}}}
	if err := plan.AuditCost(cheap); err == nil {
		t.Fatal("cost below children's sum must fail the audit")
	}
	negative := &plan.ExplainNode{Op: "scan", EstRows: -1, EstCost: 5}
	if err := plan.AuditCost(negative); err == nil {
		t.Fatal("negative estimate must fail the audit")
	}

	orig := algebra.Select{Child: algebra.Base{Name: "r", Cols: 2},
		Cond: algebra.Cmp{Op: algebra.EQ, L: algebra.Col{Idx: 0}, R: algebra.Lit{Val: value.Int(1)}}}
	invented := algebra.Select{Child: algebra.Base{Name: "r", Cols: 2},
		Cond: algebra.Cmp{Op: algebra.LT, L: algebra.Col{Idx: 0}, R: algebra.Lit{Val: value.Int(1)}}}
	if err := plan.AuditConds(orig, orig); err != nil {
		t.Fatalf("identical plans rejected: %v", err)
	}
	if err := plan.AuditConds(orig, invented); err == nil {
		t.Fatal("an invented atom must fail the audit")
	}
}

// TestOptimizeByteIdentity is the planner's core property, checked
// directly at the eval layer over generated cases: for the compiled
// query and (when translatable) its Q⁺ and Q⋆ translations, evaluating
// the optimized plan with its hints renders byte-identical tables to
// the unoptimized plan, under both semantics, at P=1 and P=4 — and the
// audits pass.
func TestOptimizeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	t.Parallel()
	for seed := uint64(1); seed <= 400; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		db, text := qgen.Case(rng, qgen.Tuning{})
		q, err := sql.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		compiled, err := compile.Compile(q, db.Schema, nil)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		exprs := []algebra.Expr{compiled.Expr}
		if certain.CheckTranslatable(compiled.Expr) == nil {
			tr := &certain.Translator{Sch: db.Schema, Mode: certain.ModeSQL,
				SimplifyNulls: true, SplitOrs: true, KeySimplify: true}
			exprs = append(exprs, tr.Plus(compiled.Expr), tr.Star(compiled.Expr))
		}
		st := collect(db)
		for ei, e := range exprs {
			res, err := plan.Optimize(e, db.Schema, st, nil)
			if err != nil {
				t.Fatalf("seed %d expr %d: optimize: %v", seed, ei, err)
			}
			if err := plan.AuditCost(res.Explain); err != nil {
				t.Fatalf("seed %d expr %d: %v\n%s", seed, ei, err, res.Explain.Render())
			}
			if err := plan.AuditConds(e, res.Expr); err != nil {
				t.Fatalf("seed %d expr %d: %v", seed, ei, err)
			}
			for _, sem := range []value.Semantics{value.SQL3VL, value.Naive} {
				for _, par := range []int{1, 4} {
					naive, nerr := eval.New(db, eval.Options{Semantics: sem, Parallelism: par}).Eval(e)
					opt, oerr := eval.New(db, eval.Options{Semantics: sem, Parallelism: par,
						Hints: res.Hints}).Eval(res.Expr)
					if (nerr == nil) != (oerr == nil) {
						t.Fatalf("seed %d expr %d (%v, P=%d): error mismatch: naive=%v optimized=%v",
							seed, ei, sem, par, nerr, oerr)
					}
					if nerr != nil {
						continue
					}
					if got, want := opt.String(), naive.String(); got != want {
						t.Fatalf("seed %d expr %d (%v, P=%d): planner changes bytes\nquery: %s\nnaive:     %s\noptimized: %s",
							seed, ei, sem, par, text, want, got)
					}
				}
			}
		}
	}
}

// TestExplainDeterministic pins the EXPLAIN rendering contract: two
// optimizations of the same expression over the same statistics render
// identical text, and the header names the fired rules.
func TestExplainDeterministic(t *testing.T) {
	db := planDB(t)
	st := collect(db)
	e := algebra.Select{
		Child: algebra.Base{Name: "r", Cols: 2},
		Cond:  algebra.NullTest{Operand: algebra.Col{Idx: 0}, Negated: true},
	}
	r1, err := plan.Optimize(e, db.Schema, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plan.Optimize(e, db.Schema, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExplainText() != r2.ExplainText() {
		t.Fatalf("EXPLAIN not deterministic:\n%s\n---\n%s", r1.ExplainText(), r2.ExplainText())
	}
	out := r1.ExplainText()
	for _, want := range []string{"plan (cost=", "rules: null-test-elim", "premises: null-free(r.0)", "scan [r]"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
}
