package plan

import (
	"certsql/internal/algebra"
	"certsql/internal/analyze"
	"certsql/internal/eval"
	"certsql/internal/schema"
	"certsql/internal/stats"
	"certsql/internal/value"
)

// optimizer is one Optimize invocation's state: the catalog, the
// statistics snapshot, the rules fired so far and the premises the
// rewrites have come to rely on.
type optimizer struct {
	sch      *schema.Schema
	st       *stats.DBStats
	fired    map[RuleKind]bool
	premises map[Premise]struct{}
}

// rewrite rebuilds e bottom-up, applying every rewrite rule whose
// byte-identity gates hold. Scalar subqueries inside conditions are
// left untouched.
func (o *optimizer) rewrite(e algebra.Expr) algebra.Expr {
	switch n := e.(type) {
	case algebra.Base:
		return n
	case algebra.AdomPower:
		return n
	case algebra.Select:
		return o.rewriteSelect(algebra.Select{Child: o.rewrite(n.Child), Cond: n.Cond})
	case algebra.Project:
		child := o.rewrite(n.Child)
		if inner, ok := child.(algebra.Project); ok {
			composed := make([]int, len(n.Cols))
			for i, c := range n.Cols {
				composed[i] = inner.Cols[c]
			}
			o.fired[RuleProjectCollapse] = true
			return algebra.Project{Child: inner.Child, Cols: composed}
		}
		return algebra.Project{Child: child, Cols: n.Cols}
	case algebra.Product:
		return algebra.Product{L: o.rewrite(n.L), R: o.rewrite(n.R)}
	case algebra.Union:
		return algebra.Union{L: o.rewrite(n.L), R: o.rewrite(n.R)}
	case algebra.Intersect:
		return algebra.Intersect{L: o.rewrite(n.L), R: o.rewrite(n.R)}
	case algebra.Diff:
		return algebra.Diff{L: o.rewrite(n.L), R: o.rewrite(n.R)}
	case algebra.SemiJoin:
		return o.rewriteSemi(algebra.SemiJoin{L: o.rewrite(n.L), R: o.rewrite(n.R), Cond: n.Cond, Anti: n.Anti})
	case algebra.UnifySemi:
		return algebra.UnifySemi{L: o.rewrite(n.L), R: o.rewrite(n.R), Anti: n.Anti}
	case algebra.Distinct:
		return algebra.Distinct{Child: o.rewrite(n.Child)}
	case algebra.Division:
		return algebra.Division{L: o.rewrite(n.L), R: o.rewrite(n.R)}
	case algebra.GroupBy:
		return algebra.GroupBy{Child: o.rewrite(n.Child), Keys: n.Keys, Aggs: n.Aggs}
	case algebra.Sort:
		return algebra.Sort{Child: o.rewrite(n.Child), Keys: n.Keys}
	case algebra.Limit:
		return algebra.Limit{Child: o.rewrite(n.Child), N: n.N}
	default:
		return e // unknown operator: leave it alone
	}
}

// isProductChain reports whether e is a chain of Cartesian products —
// the SELECT-FROM-WHERE block shape the runtime's greedy equi-join
// planner owns. The planner never alters a selection directly over a
// product chain and never creates a new one: the greedy planner's join
// (and hence row) order depends on the condition's conjunct structure,
// which byte-identity does not allow us to perturb.
func isProductChain(e algebra.Expr) bool {
	_, ok := e.(algebra.Product)
	return ok
}

// rewriteSelect applies merge-select, null-test elimination and
// selection pushdown to a Select whose child is already rewritten.
func (o *optimizer) rewriteSelect(s algebra.Select) algebra.Expr {
	if condHasScalar(s.Cond) || isProductChain(s.Child) {
		return s
	}
	// Null-test elimination against the child's provable nullability.
	cond := s.Cond
	if sc, changed := o.simplifyCond(cond, o.nullFreeIn(s.Child)); changed {
		o.fired[RuleNullTestElim] = true
		cond = sc
	}
	if _, ok := cond.(algebra.TrueCond); ok {
		return s.Child // filter proved vacuous
	}
	// astlint:partial — only the operators a selection commutes with;
	// anything else keeps the filter where it is.
	switch child := s.Child.(type) {
	case algebra.Select:
		// merge-select: σc1(σc2(X)) → σ[c2∧c1](X).
		if !condHasScalar(child.Cond) && !isProductChain(child.Child) {
			o.fired[RuleMergeSelect] = true
			return o.rewriteSelect(algebra.Select{Child: child.Child, Cond: algebra.NewAnd(child.Cond, cond)})
		}
	case algebra.Project:
		// σc(π(X)) → π(σc'(X)) with c's columns remapped through π.
		if !isProductChain(child.Child) {
			o.fired[RulePushdownSelect] = true
			remapped := algebra.MapCols(cond, func(i int) int { return child.Cols[i] })
			return algebra.Project{Child: o.rewriteSelect(algebra.Select{Child: child.Child, Cond: remapped}), Cols: child.Cols}
		}
	case algebra.Distinct:
		// σc(δ(X)) → δ(σc(X)): filtering commutes with first-
		// occurrence deduplication because the predicate depends only
		// on the row's values.
		if !isProductChain(child.Child) {
			o.fired[RulePushdownSelect] = true
			return algebra.Distinct{Child: o.rewriteSelect(algebra.Select{Child: child.Child, Cond: cond})}
		}
	case algebra.Union:
		if !isProductChain(child.L) && !isProductChain(child.R) {
			o.fired[RulePushdownSelect] = true
			return algebra.Union{
				L: o.rewriteSelect(algebra.Select{Child: child.L, Cond: cond}),
				R: o.rewriteSelect(algebra.Select{Child: child.R, Cond: cond}),
			}
		}
	case algebra.Diff:
		// Output rows come from L, so the filter applies to L alone.
		if !isProductChain(child.L) {
			o.fired[RulePushdownSelect] = true
			return algebra.Diff{L: o.rewriteSelect(algebra.Select{Child: child.L, Cond: cond}), R: child.R}
		}
	case algebra.Intersect:
		if !isProductChain(child.L) {
			o.fired[RulePushdownSelect] = true
			return algebra.Intersect{L: o.rewriteSelect(algebra.Select{Child: child.L, Cond: cond}), R: child.R}
		}
	case algebra.SemiJoin:
		// σc(L ⋉θ R) → σc(L) ⋉θ R: the semijoin's output is a subset
		// of L, and θ is untouched, so strategy and short-circuit
		// behaviour are unchanged.
		if !isProductChain(child.L) {
			o.fired[RulePushdownSelect] = true
			return o.rewriteSemi(algebra.SemiJoin{
				L: o.rewriteSelect(algebra.Select{Child: child.L, Cond: cond}),
				R: child.R, Cond: child.Cond, Anti: child.Anti,
			})
		}
	case algebra.UnifySemi:
		if !isProductChain(child.L) {
			o.fired[RulePushdownSelect] = true
			return algebra.UnifySemi{
				L:    o.rewriteSelect(algebra.Select{Child: child.L, Cond: cond}),
				R:    child.R,
				Anti: child.Anti,
			}
		}
	}
	return algebra.Select{Child: s.Child, Cond: cond}
}

// rewriteSemi simplifies a semijoin's condition and, for antijoins,
// splits the right side on IS NULL disjuncts. Children are already
// rewritten.
func (o *optimizer) rewriteSemi(n algebra.SemiJoin) algebra.Expr {
	if condHasScalar(n.Cond) {
		return n
	}
	nL := n.L.Arity()
	cond := algebra.NNF(n.Cond)
	free := o.nullFreeJoin(n.L, n.R)
	if sc, changed := o.simplifyCond(cond, free); changed {
		// Losing every left-column reference flips the operator onto
		// the uncorrelated short-circuit path, which may skip
		// evaluating one side entirely — illegal if a skipped subtree
		// would have minted marked nulls that appear in the output.
		if algebra.UsesColBelow(cond, nL) && !algebra.UsesColBelow(sc, nL) &&
			(hasMinters(n.L) || hasMinters(n.R)) {
			// keep the original condition
		} else {
			o.fired[RuleNullTestElim] = true
			n.Cond = sc
		}
	}
	var out algebra.Expr = n
	for range [4]struct{}{} {
		sj, ok := out.(algebra.SemiJoin)
		if !ok {
			break
		}
		split, ok := o.antiSplit(sj)
		if !ok {
			break
		}
		o.fired[RuleAntiSplit] = true
		out = split
	}
	return out
}

// antiSplit rewrites L ▷[(θ∨ρ)∧rest] R, where ρ is a non-empty set of
// IS NULL disjuncts on right-side columns, into two stacked antijoins
// over complementary selections of R:
//
//	(L ▷[rest] σρ'(R)) ▷[(θ∨False)∧rest] σ¬ρ'(R)
//
// (or the same pair in the other order — see the minter note below).
// ρ is two-valued on every R row under both semantics, so the two
// selections partition R exactly; on the ρ-part the disjunction is
// constantly true and on the ¬ρ-part it reduces to θ. A left row
// survives the original antijoin iff it survives both split antijoins,
// each split antijoin keeps a subset of its left input in input order,
// and set intersection does not care which filter runs first — so
// results are byte-identical either way. When θ is empty the θ-part is
// vacuous and dropped; when rest is empty the ρ-part is uncorrelated
// and short-circuits.
//
// The split is kept only when the cost model prices it below the
// original antijoin. It wins when the unsplit condition is
// hash-hostile (the `= OR IS NULL` shape the certain-answer
// translation produces buries its equality inside the disjunction, so
// the runtime nested-loops it) and loses when `rest` already carries
// extractable hash keys — there the runtime hashes the unsplit
// antijoin anyway and splitting only adds a second build pass.
func (o *optimizer) antiSplit(sj algebra.SemiJoin) (algebra.Expr, bool) {
	if !sj.Anti || condHasScalar(sj.Cond) {
		return nil, false
	}
	nL := sj.L.Arity()
	conjs := algebra.Conjuncts(algebra.NNF(sj.Cond))
	for ci, c := range conjs {
		or, ok := c.(algebra.Or)
		if !ok {
			continue
		}
		var rho, rhoNeg, theta []algebra.Cond
		for _, d := range or.Conds {
			if nt, ok := d.(algebra.NullTest); ok && !nt.Negated {
				if col, ok := nt.Operand.(algebra.Col); ok && col.Idx >= nL {
					local := algebra.Col{Idx: col.Idx - nL}
					rho = append(rho, algebra.NullTest{Operand: local})
					rhoNeg = append(rhoNeg, algebra.NullTest{Operand: local, Negated: true})
					continue
				}
			}
			theta = append(theta, d)
		}
		if len(rho) == 0 {
			continue
		}
		// The split evaluates R's two parts separately, so R must not
		// mint marked nulls: minting draws from one sequential counter
		// and a second evaluation would shift every later identity.
		if hasMinters(sj.R) {
			return nil, false
		}
		rest := make([]algebra.Cond, 0, len(conjs)-1)
		rest = append(rest, conjs[:ci]...)
		rest = append(rest, conjs[ci+1:]...)
		var thetaCond algebra.Cond
		if len(theta) > 0 {
			thetaCond = algebra.NewAnd(append([]algebra.Cond{algebra.NewOr(theta...)}, rest...)...)
		}
		// A minting L must be evaluated exactly once in both plans. With
		// θ empty both conditions lose their left references together, so
		// original and split short-circuit (and skip L) under the same
		// criterion: a ρ∧rest row exists in R. With θ present we put the
		// θ-antijoin innermost; if it is correlated it always evaluates
		// L, like the original. An uncorrelated θ over a minting L could
		// skip it where the original would not — refuse.
		if hasMinters(sj.L) && thetaCond != nil && !algebra.UsesColBelow(thetaCond, nL) {
			return nil, false
		}
		var split algebra.Expr
		if thetaCond == nil {
			split = algebra.SemiJoin{
				L:    sj.L,
				R:    algebra.Select{Child: sj.R, Cond: algebra.NewOr(rho...)},
				Cond: algebra.NewAnd(rest...),
				Anti: true,
			}
		} else if hasMinters(sj.L) {
			// θ-part innermost: the correlated antijoin pins L's single
			// evaluation; the uncorrelated ρ-part then filters its rows.
			split = algebra.SemiJoin{
				L: algebra.SemiJoin{
					L:    sj.L,
					R:    algebra.Select{Child: sj.R, Cond: algebra.NewAnd(rhoNeg...)},
					Cond: thetaCond,
					Anti: true,
				},
				R:    algebra.Select{Child: sj.R, Cond: algebra.NewOr(rho...)},
				Cond: algebra.NewAnd(rest...),
				Anti: true,
			}
		} else {
			// ρ-part innermost: when any ρ∧rest row exists the inner
			// antijoin can empty the pipeline before the θ-part builds.
			split = algebra.SemiJoin{
				L: algebra.SemiJoin{
					L:    sj.L,
					R:    algebra.Select{Child: sj.R, Cond: algebra.NewOr(rho...)},
					Cond: algebra.NewAnd(rest...),
					Anti: true,
				},
				R:    algebra.Select{Child: sj.R, Cond: algebra.NewAnd(rhoNeg...)},
				Cond: thetaCond,
				Anti: true,
			}
		}
		if o.estimate(split).cost >= o.estimate(sj).cost {
			continue // splitting this disjunction doesn't pay
		}
		return split, true
	}
	return nil, false
}

// nullFreeIn returns the null-free oracle for the output columns of e:
// first the static tier (schema nullability propagated by
// analyze.NonNullCols under naive strength, valid for both semantics),
// then the data tier (a base column whose statistics show zero nulls,
// recorded as a premise).
func (o *optimizer) nullFreeIn(e algebra.Expr) func(int) bool {
	static := analyze.NonNullCols(e, o.sch, analyze.StrengthNaive)
	return func(col int) bool {
		if col >= 0 && col < len(static) && static[col] {
			return true
		}
		ts, bcol, ok := originStats(e, o.st, col)
		if ok && ts.NullFree(bcol) {
			o.premises[Premise{Kind: PremiseNullFree, Table: ts.Name, Col: bcol}] = struct{}{}
			return true
		}
		return false
	}
}

// nullFreeJoin is nullFreeIn for a semijoin condition, whose columns
// 0..nL-1 refer to L and the rest to R.
func (o *optimizer) nullFreeJoin(l, r algebra.Expr) func(int) bool {
	nL := l.Arity()
	lFree, rFree := o.nullFreeIn(l), o.nullFreeIn(r)
	return func(col int) bool {
		if col < nL {
			return lFree(col)
		}
		return rFree(col - nL)
	}
}

// simplifyCond eliminates null tests decided by the null-free oracle.
// The truth of the condition on every actual row is unchanged (the
// oracle's facts hold for the data under the recorded premises), so
// filters and joins keep and drop exactly the same rows.
func (o *optimizer) simplifyCond(c algebra.Cond, free func(int) bool) (algebra.Cond, bool) {
	c = algebra.NNF(c)
	var rec func(c algebra.Cond) (algebra.Cond, bool)
	rec = func(c algebra.Cond) (algebra.Cond, bool) {
		switch c := c.(type) {
		case algebra.And:
			parts := make([]algebra.Cond, len(c.Conds))
			changed := false
			for i, sub := range c.Conds {
				var ch bool
				parts[i], ch = rec(sub)
				changed = changed || ch
			}
			if !changed {
				return c, false
			}
			return algebra.NewAnd(parts...), true
		case algebra.Or:
			parts := make([]algebra.Cond, len(c.Conds))
			changed := false
			for i, sub := range c.Conds {
				var ch bool
				parts[i], ch = rec(sub)
				changed = changed || ch
			}
			if !changed {
				return c, false
			}
			return algebra.NewOr(parts...), true
		case algebra.NullTest:
			// astlint:partial — scalar operands are unreachable here
			// (condHasScalar gates every caller) and stay untouched.
			switch op := c.Operand.(type) {
			case algebra.Col:
				if free(op.Idx) {
					if c.Negated {
						return algebra.TrueCond{}, true
					}
					return algebra.FalseCond{}, true
				}
			case algebra.Lit:
				if op.Val.IsNull() == !c.Negated {
					return algebra.TrueCond{}, true
				}
				return algebra.FalseCond{}, true
			}
			return c, false
		default:
			return c, false
		}
	}
	return rec(c)
}

// condHasScalar reports whether c contains a scalar-subquery operand
// anywhere. No rewrite rule touches such conditions: resolving a
// scalar evaluates its subquery and may mint marked nulls, so even
// re-associating the condition risks observable changes.
func condHasScalar(c algebra.Cond) bool {
	opScalar := func(op algebra.Operand) bool {
		_, ok := op.(algebra.Scalar)
		return ok
	}
	// astlint:partial — True/False carry no operands; the fallthrough
	// `return false` is their answer.
	switch c := c.(type) {
	case algebra.Cmp:
		return opScalar(c.L) || opScalar(c.R)
	case algebra.Like:
		return opScalar(c.Operand) || opScalar(c.Pattern)
	case algebra.NullTest:
		return opScalar(c.Operand)
	case algebra.And:
		for _, sub := range c.Conds {
			if condHasScalar(sub) {
				return true
			}
		}
	case algebra.Or:
		for _, sub := range c.Conds {
			if condHasScalar(sub) {
				return true
			}
		}
	case algebra.Not:
		return condHasScalar(c.C)
	}
	return false
}

// hasMinters reports whether evaluating e can mint fresh marked nulls:
// any GroupBy (empty-group aggregates) or any scalar subquery operand.
// Rules that change whether or how often a subtree is evaluated must
// not fire near minters, since mark identities appear in result bytes.
func hasMinters(e algebra.Expr) bool {
	mint := false
	algebra.Walk(e, func(x algebra.Expr) {
		// astlint:partial — only the operators that can mint marks
		// matter; Walk already visits every node.
		switch n := x.(type) {
		case algebra.GroupBy:
			mint = true
		case algebra.Select:
			if condHasScalar(n.Cond) {
				mint = true
			}
		case algebra.SemiJoin:
			if condHasScalar(n.Cond) {
				mint = true
			}
		}
	})
	return mint
}

// hints walks the final expression and derives per-operator execution
// hints: slim verification, the numeric key specialization, and hash
// pre-sizing.
func (o *optimizer) hints(e algebra.Expr) *eval.PlanHints {
	semi := map[string]eval.SemiHint{}
	algebra.Walk(e, func(x algebra.Expr) {
		sj, ok := x.(algebra.SemiJoin)
		if !ok {
			return
		}
		if h, ok := o.semiHintFor(sj); ok {
			semi[sj.Key()] = h
		}
	})
	if len(semi) == 0 {
		return nil
	}
	return &eval.PlanHints{Semi: semi}
}

// semiKeyPairs extracts the hash-key column pairs exactly as the
// evaluator's prepSemi does: pure column-to-column equality conjuncts
// spanning both sides, right columns in right-local positions.
func semiKeyPairs(sj algebra.SemiJoin) (lCols, rCols []int) {
	nL := sj.L.Arity()
	for _, c := range algebra.Conjuncts(algebra.NNF(sj.Cond)) {
		cmp, ok := c.(algebra.Cmp)
		if !ok || cmp.Op != algebra.EQ {
			continue
		}
		a, aok := cmp.L.(algebra.Col)
		b, bok := cmp.R.(algebra.Col)
		if !aok || !bok {
			continue
		}
		switch {
		case a.Idx < nL && b.Idx >= nL:
			lCols = append(lCols, a.Idx)
			rCols = append(rCols, b.Idx-nL)
		case b.Idx < nL && a.Idx >= nL:
			lCols = append(lCols, b.Idx)
			rCols = append(rCols, a.Idx-nL)
		}
	}
	return lCols, rCols
}

// semiHintFor derives the execution hint for one semijoin.
func (o *optimizer) semiHintFor(sj algebra.SemiJoin) (eval.SemiHint, bool) {
	lCols, rCols := semiKeyPairs(sj)
	if len(lCols) == 0 {
		return eval.SemiHint{}, false
	}
	var h eval.SemiHint
	rEst := o.estimate(sj.R)
	h.BuildRows = clampInt64(rEst.rows)
	if len(rCols) == 1 {
		if ts, bcol, ok := originStats(sj.R, o.st, rCols[0]); ok {
			h.BuildDistinct = ts.Cols[bcol].Distinct
			o.fired[RuleHashPresize] = true
		}
	}
	// Slim verification: sound when, for every key pair, hash-bucket
	// equality implies the dropped `=` is true. String, bool and date
	// keys have injective encodings and exact comparisons; numeric
	// keys need every value within ±2⁵³ (premise) so the float64
	// encoding is exact.
	slim := true
	for i := range lCols {
		if !o.slimSafeCol(sj.L, lCols[i]) || !o.slimSafeCol(sj.R, rCols[i]) {
			slim = false
			break
		}
	}
	if slim {
		h.SlimVerify = true
		o.fired[RuleSlimVerify] = true
	}
	// Numeric-key specialization: a single key pair where both sides
	// are numeric-typed base columns, mirroring the tuple-key encoding
	// exactly (no premise needed — bucketing is bit-identical).
	if len(lCols) == 1 {
		lk, lok := originType(sj.L, o.sch, lCols[0])
		rk, rok := originType(sj.R, o.sch, rCols[0])
		if lok && rok && isNumericKind(lk) && isNumericKind(rk) {
			h.NumKey = true
			o.fired[RuleNumKey] = true
		}
	}
	// Fused build: a selection directly over a stored relation can be
	// applied inside the hash build loop, never materializing the
	// filtered table. Restricted to scalar-free conditions over Base
	// children, so the fused subtree cannot mint marked nulls and a
	// lost view-cache entry costs at most a recomputation of identical
	// bytes (the runtime additionally skips fusion on shared views).
	if sel, ok := sj.R.(algebra.Select); ok {
		if _, isBase := sel.Child.(algebra.Base); isBase && !condHasScalar(sel.Cond) {
			h.FuseBuild = true
			o.fired[RuleFuseBuild] = true
		}
	}
	return h, true
}

// slimSafeCol reports whether dropping an extracted key equality on
// this column is sound, recording the numeric-range premise when the
// safety is data-dependent.
func (o *optimizer) slimSafeCol(side algebra.Expr, col int) bool {
	kind, ok := originType(side, o.sch, col)
	if !ok {
		return false
	}
	if !isNumericKind(kind) {
		return true // injective encoding, exact comparison
	}
	ts, bcol, ok := originStats(side, o.st, col)
	if !ok || !numRangeOK(ts.Cols[bcol]) {
		return false
	}
	o.premises[Premise{Kind: PremiseNumRange, Table: ts.Name, Col: bcol}] = struct{}{}
	return true
}

func isNumericKind(k value.Kind) bool {
	return k == value.KindInt || k == value.KindFloat
}

func clampInt64(f float64) int64 {
	if f < 0 {
		return 0
	}
	if f > 1<<62 {
		return 1 << 62
	}
	return int64(f)
}
