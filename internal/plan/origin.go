package plan

import (
	"strings"

	"certsql/internal/algebra"
	"certsql/internal/schema"
	"certsql/internal/stats"
	"certsql/internal/value"
)

// colOrigin traces output column col of e back to a base-table column
// through operators that pass column values along unchanged: filters,
// projections, products, the left side of (anti-)semijoins and set
// differences, grouping keys, sorts and limits. It reports !ok for
// columns that are computed (aggregates), merged from two inputs
// (unions), or otherwise not attributable to a single stored column —
// statistics-based rules simply do not fire there.
func colOrigin(e algebra.Expr, col int) (tbl string, bcol int, ok bool) {
	for {
		if col < 0 || col >= e.Arity() {
			return "", 0, false
		}
		switch n := e.(type) {
		case algebra.Base:
			return strings.ToLower(n.Name), col, true
		case algebra.Select:
			e = n.Child
		case algebra.Project:
			col = n.Cols[col]
			e = n.Child
		case algebra.Product:
			if col < n.L.Arity() {
				e = n.L
			} else {
				col -= n.L.Arity()
				e = n.R
			}
		case algebra.SemiJoin:
			e = n.L
		case algebra.UnifySemi:
			e = n.L
		case algebra.Diff:
			e = n.L
		case algebra.Intersect:
			e = n.L
		case algebra.Distinct:
			e = n.Child
		case algebra.Sort:
			e = n.Child
		case algebra.Limit:
			e = n.Child
		case algebra.GroupBy:
			if col >= len(n.Keys) {
				return "", 0, false // aggregate output, not a stored column
			}
			col = n.Keys[col]
			e = n.Child
		default:
			return "", 0, false
		}
	}
}

// originType returns the declared type of the base column that output
// column col of e traces to.
func originType(e algebra.Expr, sch *schema.Schema, col int) (value.Kind, bool) {
	tbl, bcol, ok := colOrigin(e, col)
	if !ok || sch == nil {
		return 0, false
	}
	rel, ok := sch.Relation(tbl)
	if !ok || bcol >= rel.Arity() {
		return 0, false
	}
	return rel.Attrs[bcol].Type, true
}

// originStats returns the statistics of the base column that output
// column col of e traces to.
func originStats(e algebra.Expr, st *stats.DBStats, col int) (*stats.TableStats, int, bool) {
	tbl, bcol, ok := colOrigin(e, col)
	if !ok || st == nil {
		return nil, 0, false
	}
	ts := st.Table(tbl)
	if ts == nil || bcol >= len(ts.Cols) {
		return nil, 0, false
	}
	return ts, bcol, true
}

// numRangeOK reports whether every value the column statistics cover
// lies within ±2⁵³, so the float64 hash-key encoding is exact.
func numRangeOK(c stats.ColStats) bool {
	if !c.HasMinMax {
		return false
	}
	for _, v := range []value.Value{c.Min, c.Max} {
		switch v.Kind() {
		case value.KindInt:
			f := float64(v.AsInt())
			if f < -numRangeLimit || f > numRangeLimit {
				return false
			}
		case value.KindFloat:
			f := v.AsFloat()
			if f < -numRangeLimit || f > numRangeLimit {
				return false
			}
		default:
			return false
		}
	}
	return true
}
