// Package plan is the cost-based planner. It sits between translation
// (internal/certain producing Q⁺/Q⋆ algebra) and evaluation
// (internal/eval), rewriting plans and attaching execution hints using
// per-table statistics (internal/stats) and nullability inference
// (internal/analyze).
//
// The planner's contract is strict: an optimized plan must produce a
// byte-identical result table to the paper-faithful naive plan, under
// both semantics, at any parallelism. difftest's planner-ablation
// invariant enforces this over seeded generated databases. The
// contract shapes every rule:
//
//   - Rules never reorder the rows any operator emits. Join-order
//     selection therefore stays in the runtime's greedy equi-join
//     planner (which sees exact cardinalities); the planner costs it
//     for EXPLAIN but does not override it.
//   - Rules never fire on conditions containing scalar subqueries, and
//     rules that can change which subtrees are evaluated (or how
//     often) never fire when the subtrees mint fresh marked nulls
//     (GroupBy aggregates over empty groups), since mark identities
//     appear in the output bytes.
//   - Rules that rely on the current data — a nullable column that
//     happens to contain no nulls, a numeric column within exact
//     float64 range — record a Premise. Prepared plans re-check their
//     premises against current statistics before each execution and
//     fall back to the naive plan when one no longer holds.
package plan

import (
	"sort"
	"strconv"

	"certsql/internal/algebra"
	"certsql/internal/eval"
	"certsql/internal/guard"
	"certsql/internal/schema"
	"certsql/internal/stats"
)

// RuleKind identifies one planner rule. tools/astlint checks that any
// switch over RuleKind names every Rule* constant.
type RuleKind uint8

// Planner rule kinds.
const (
	// RulePushdownSelect moves a selection below Project, Distinct,
	// Union, Diff, Intersect and (anti-)semijoin operators so filters
	// run on fewer or narrower rows.
	RulePushdownSelect RuleKind = iota
	// RuleMergeSelect fuses adjacent selections into one conjunction,
	// saving a filter pass.
	RuleMergeSelect
	// RuleNullTestElim removes IS NULL / IS NOT NULL tests on columns
	// proved null-free — statically by analyze.NonNullCols, or from
	// statistics under a recorded premise. This is the 2VL
	// simplification that turns the paper's Section 7 hash-hostile
	// `A = B OR B IS NULL` conditions back into plain equalities.
	RuleNullTestElim
	// RuleAntiSplit partitions an antijoin's right side on its
	// IS NULL disjuncts: L ▷[(θ∨ρ)∧rest] R becomes two antijoins over
	// σρ(R) and σ¬ρ(R) whose conditions are free of the disjunction,
	// re-enabling hash keys and short circuits.
	RuleAntiSplit
	// RuleProjectCollapse composes adjacent projections.
	RuleProjectCollapse
	// RuleSlimVerify drops extracted hash-key equalities from a
	// semijoin's per-candidate verify condition (bucket co-membership
	// already proves them).
	RuleSlimVerify
	// RuleNumKey selects the specialized numeric hash index for
	// single-column numeric semijoin keys.
	RuleNumKey
	// RuleHashPresize pre-sizes semijoin hash indexes from the
	// statistics' distinct-value estimates.
	RuleHashPresize
	// RuleFuseBuild filters a semijoin's select-fed build side during
	// the hash build itself, skipping the filtered intermediate.
	RuleFuseBuild
)

// RuleKinds lists every rule kind, in declaration order.
var RuleKinds = []RuleKind{
	RulePushdownSelect, RuleMergeSelect, RuleNullTestElim, RuleAntiSplit,
	RuleProjectCollapse, RuleSlimVerify, RuleNumKey, RuleHashPresize,
	RuleFuseBuild,
}

// String returns the rule's stable lower-case name, used in EXPLAIN
// output and golden files.
func (k RuleKind) String() string {
	switch k {
	case RulePushdownSelect:
		return "pushdown-select"
	case RuleMergeSelect:
		return "merge-select"
	case RuleNullTestElim:
		return "null-test-elim"
	case RuleAntiSplit:
		return "anti-split"
	case RuleProjectCollapse:
		return "project-collapse"
	case RuleSlimVerify:
		return "slim-verify"
	case RuleNumKey:
		return "num-key"
	case RuleHashPresize:
		return "hash-presize"
	case RuleFuseBuild:
		return "fuse-build"
	default:
		return "unknown-rule"
	}
}

// Rule is the planner-rule family: one implementation per RuleKind,
// carrying the rule's self-description for EXPLAIN and documentation.
// The marker method keeps the family closed so astlint can check
// switches over it for exhaustiveness.
type Rule interface {
	isRule()
	Kind() RuleKind
	// Describe states what the rule does and why it preserves
	// byte-identical results.
	Describe() string
}

// PushdownSelect implements RulePushdownSelect.
type PushdownSelect struct{}

// MergeSelect implements RuleMergeSelect.
type MergeSelect struct{}

// NullTestElim implements RuleNullTestElim.
type NullTestElim struct{}

// AntiSplit implements RuleAntiSplit.
type AntiSplit struct{}

// ProjectCollapse implements RuleProjectCollapse.
type ProjectCollapse struct{}

// SlimVerify implements RuleSlimVerify.
type SlimVerify struct{}

// NumKey implements RuleNumKey.
type NumKey struct{}

// HashPresize implements RuleHashPresize.
type HashPresize struct{}

// FuseBuild implements RuleFuseBuild.
type FuseBuild struct{}

func (PushdownSelect) isRule()  {}
func (MergeSelect) isRule()     {}
func (NullTestElim) isRule()    {}
func (AntiSplit) isRule()       {}
func (ProjectCollapse) isRule() {}
func (SlimVerify) isRule()      {}
func (NumKey) isRule()          {}
func (HashPresize) isRule()     {}
func (FuseBuild) isRule()       {}

// Kind returns RulePushdownSelect.
func (PushdownSelect) Kind() RuleKind { return RulePushdownSelect }

// Kind returns RuleMergeSelect.
func (MergeSelect) Kind() RuleKind { return RuleMergeSelect }

// Kind returns RuleNullTestElim.
func (NullTestElim) Kind() RuleKind { return RuleNullTestElim }

// Kind returns RuleAntiSplit.
func (AntiSplit) Kind() RuleKind { return RuleAntiSplit }

// Kind returns RuleProjectCollapse.
func (ProjectCollapse) Kind() RuleKind { return RuleProjectCollapse }

// Kind returns RuleSlimVerify.
func (SlimVerify) Kind() RuleKind { return RuleSlimVerify }

// Kind returns RuleNumKey.
func (NumKey) Kind() RuleKind { return RuleNumKey }

// Kind returns RuleHashPresize.
func (HashPresize) Kind() RuleKind { return RuleHashPresize }

// Kind returns RuleFuseBuild.
func (FuseBuild) Kind() RuleKind { return RuleFuseBuild }

// Describe implements Rule.
func (PushdownSelect) Describe() string {
	return "push filters below projections, set operations and semijoins; filters commute with per-row operators without reordering rows"
}

// Describe implements Rule.
func (MergeSelect) Describe() string {
	return "fuse stacked filters into one conjunctive pass over the same rows"
}

// Describe implements Rule.
func (NullTestElim) Describe() string {
	return "drop null tests on provably null-free columns; truth of every condition is unchanged on the actual data"
}

// Describe implements Rule.
func (AntiSplit) Describe() string {
	return "partition an antijoin's build side on its IS NULL disjuncts; the disjunct is constant on each part, so the union of the two antijoins filters exactly the same left rows"
}

// Describe implements Rule.
func (ProjectCollapse) Describe() string {
	return "compose adjacent projections into one column remap"
}

// Describe implements Rule.
func (SlimVerify) Describe() string {
	return "verify only the residual condition per hash candidate; shared buckets already prove the extracted key equalities"
}

// Describe implements Rule.
func (NumKey) Describe() string {
	return "hash single numeric join keys by their float64 encoding instead of a string tuple key; bucketing is bit-identical"
}

// Describe implements Rule.
func (HashPresize) Describe() string {
	return "pre-size semijoin hash indexes from distinct-value estimates"
}

// Describe implements Rule.
func (FuseBuild) Describe() string {
	return "filter a select-fed build side inside the hash build loop; the index holds exactly the rows the standalone filter would keep"
}

// Rules holds one instance of every planner rule, in RuleKinds order.
var Rules = []Rule{
	PushdownSelect{}, MergeSelect{}, NullTestElim{}, AntiSplit{},
	ProjectCollapse{}, SlimVerify{}, NumKey{}, HashPresize{}, FuseBuild{},
}

// PremiseKind classifies what a premise asserts about current data.
type PremiseKind uint8

// Premise kinds.
const (
	// PremiseNullFree asserts a base-table column currently contains
	// no nulls (marked or otherwise).
	PremiseNullFree PremiseKind = iota
	// PremiseNumRange asserts a base-table column's values all lie
	// within ±2⁵³, where the float64 key encoding is exact — the
	// condition under which hash-bucket equality implies `=`.
	PremiseNumRange
)

// numRangeLimit is 2⁵³, the largest magnitude below which every
// integer is exactly representable as a float64.
const numRangeLimit = float64(1 << 53)

// Premise is one data-dependent fact an optimized plan relies on.
// Premises are recorded only when they hold at plan time; prepared
// plans re-check them against current statistics before reuse.
type Premise struct {
	Kind  PremiseKind
	Table string
	Col   int
}

// Holds reports whether the premise is true under st.
func (p Premise) Holds(st *stats.DBStats) bool {
	ts := st.Table(p.Table)
	if ts == nil || p.Col < 0 || p.Col >= len(ts.Cols) {
		return false
	}
	switch p.Kind {
	case PremiseNullFree:
		return ts.NullFree(p.Col)
	case PremiseNumRange:
		return numRangeOK(ts.Cols[p.Col])
	default:
		return false
	}
}

// String renders the premise for EXPLAIN output.
func (p Premise) String() string {
	var kind string
	switch p.Kind {
	case PremiseNullFree:
		kind = "null-free"
	case PremiseNumRange:
		kind = "num-range"
	default:
		// An unknown kind must not masquerade as an existing one in
		// EXPLAIN output (the golden tests diff it verbatim).
		kind = "unknown-premise-" + strconv.Itoa(int(p.Kind))
	}
	return kind + "(" + p.Table + "." + strconv.Itoa(p.Col) + ")"
}

// CheckPremises reports whether every premise holds under st.
func CheckPremises(ps []Premise, st *stats.DBStats) bool {
	if len(ps) == 0 {
		return true
	}
	if st == nil {
		return false
	}
	for _, p := range ps {
		if !p.Holds(st) {
			return false
		}
	}
	return true
}

// Result is an optimized plan: the rewritten expression, the execution
// hints for its operators, the premises its rewrites rely on, the
// rules that fired, and the costed EXPLAIN tree.
type Result struct {
	// Expr is the rewritten expression. When Changed is false it is
	// the input expression unchanged.
	Expr algebra.Expr
	// Hints are the per-operator execution hints (nil when none).
	Hints *eval.PlanHints
	// Premises are the data-dependent facts the plan relies on.
	Premises []Premise
	// Fired lists the distinct rule kinds that fired, in declaration
	// order.
	Fired []RuleKind
	// Explain is the costed plan tree for the rewritten expression.
	Explain *ExplainNode
	// Changed reports whether any rewrite or hint was produced.
	Changed bool
}

// Optimize rewrites e under the byte-identity contract and attaches
// execution hints, using sch for types, st for cardinalities and null
// rates (nil disables every statistics-dependent rule), and gov for
// fault injection at guard.SitePlanRewrite (nil allowed).
func Optimize(e algebra.Expr, sch *schema.Schema, st *stats.DBStats, gov *guard.Governor) (*Result, error) {
	if err := gov.Fault(guard.SitePlanRewrite); err != nil {
		return nil, err
	}
	o := &optimizer{sch: sch, st: st, fired: map[RuleKind]bool{}, premises: map[Premise]struct{}{}}
	out := o.rewrite(e)
	hints := o.hints(out)
	res := &Result{Expr: out, Hints: hints}
	for _, k := range RuleKinds {
		if o.fired[k] {
			res.Fired = append(res.Fired, k)
		}
	}
	for p := range o.premises {
		res.Premises = append(res.Premises, p)
	}
	sort.Slice(res.Premises, func(i, j int) bool {
		a, b := res.Premises[i], res.Premises[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Kind < b.Kind
	})
	res.Changed = len(res.Fired) > 0
	res.Explain = o.describe(out, hints)
	return res, nil
}

// Describe costs e without rewriting it — the EXPLAIN tree for the
// naive planner's plan.
func Describe(e algebra.Expr, sch *schema.Schema, st *stats.DBStats) *ExplainNode {
	o := &optimizer{sch: sch, st: st, fired: map[RuleKind]bool{}, premises: map[Premise]struct{}{}}
	return o.describe(e, nil)
}
