package plan

import (
	"fmt"
	"strings"

	"certsql/internal/algebra"
	"certsql/internal/eval"
	"certsql/internal/stats"
)

// Sharded-execution planning (DESIGN.md §16). ShardPlan decides, per
// unification (anti-)semijoin, whether the build side is broadcast to
// every engine shard or wild-bucket co-partitioned (shard.BuildUnify).
// The decision is a pure performance choice — both modes are
// unconditionally sound, and difftest's shard-ablation invariant holds
// them to byte-identical results — so the planner's only job is to
// avoid building per-shard buckets that cannot pay for themselves:
//
//   - a build side that is not a stored relation has no statistics to
//     consult, and is broadcast;
//   - a build relation with nullable content would push its rows into
//     the wild bucket every shard scans anyway, so co-partitioning is
//     gated on statistics proving every column null-free — recorded as
//     PremiseNullFree premises, re-checked against fresh statistics
//     before each prepared execution exactly like the optimizer's own
//     premises (a load that introduces nulls flips the plan back to
//     broadcast, never to a wrong answer);
//   - a build relation with fewer distinct values than shards would
//     leave most buckets empty, so co-partitioning also requires the
//     best per-column distinct-count estimate to reach the shard count.

// ShardHint is re-exported so callers configure sharding without
// importing the executor.
type ShardHint = eval.ShardHint

// ShardDecision records one broadcast-vs-co-partition choice, for
// EXPLAIN output.
type ShardDecision struct {
	// Op names the operator ("unify-semijoin" or "unify-antijoin").
	Op string
	// Build names the build side: the relation name, or "(subplan)".
	Build string
	// CoPartition reports the chosen mode.
	CoPartition bool
	// Reason states why, in EXPLAIN-ready prose.
	Reason string
}

// ShardResult is the sharded-execution plan for one expression: the
// per-operator hints, the premises the co-partition choices rely on,
// and the decisions for EXPLAIN.
type ShardResult struct {
	// Hints maps UnifySemi node keys to their hints; nil when the plan
	// contains no unification semijoins.
	Hints map[string]ShardHint
	// Premises are the null-free facts the co-partition hints rely on.
	// Callers must re-check them (CheckPremises) against current
	// statistics before reusing the hints and fall back to broadcast —
	// dropping the hints — when any fails.
	Premises []Premise
	// Decisions lists every choice in plan-tree order.
	Decisions []ShardDecision
}

// ShardPlan walks e and derives the shard-execution hints for running
// it across the given shard count. st may be nil (no statistics), in
// which case every build side is broadcast. shards < 2 yields nil: an
// unsharded run has no decisions to make.
func ShardPlan(e algebra.Expr, st *stats.DBStats, shards int) *ShardResult {
	if shards < 2 {
		return nil
	}
	r := &ShardResult{}
	seen := map[string]bool{}
	walkExprs(e, func(sub algebra.Expr) {
		us, ok := sub.(algebra.UnifySemi)
		if !ok {
			return
		}
		key := us.Key()
		if seen[key] {
			return
		}
		seen[key] = true
		d := r.decide(us, st, shards)
		r.Decisions = append(r.Decisions, d)
		if d.CoPartition {
			if r.Hints == nil {
				r.Hints = map[string]ShardHint{}
			}
			r.Hints[key] = ShardHint{CoPartition: true}
		}
	})
	return r
}

// decide makes the broadcast-vs-co-partition call for one operator,
// recording the premises a co-partition choice depends on. The build
// side need not be a bare stored relation: any subplan whose output
// nulls are bounded by its input relations' (selections, projections,
// products, set operations — the shapes the certain translation
// produces) co-partitions when statistics prove every contributing
// relation null-free. A wrong guess would still be sound — surprise
// nulls land in the wild bucket at execution — but the premises keep
// the prediction honest: a load that introduces nulls fails the
// re-check and drops the plan back to broadcast.
func (r *ShardResult) decide(us algebra.UnifySemi, st *stats.DBStats, shards int) ShardDecision {
	d := ShardDecision{Op: "unify-semijoin", Build: "(subplan)"}
	if us.Anti {
		d.Op = "unify-antijoin"
	}
	bases, opaque := buildBases(us.R)
	if opaque != "" {
		d.Reason = fmt.Sprintf("broadcast: build side contains %s, whose output nulls no base statistic bounds", opaque)
		return d
	}
	if len(bases) == 0 {
		d.Reason = "broadcast: build side reads no stored relation"
		return d
	}
	d.Build = strings.Join(bases, "+")
	var maxDistinct int64
	var premises []Premise
	for _, name := range bases {
		ts := st.Table(name)
		if ts == nil {
			d.Reason = "broadcast: no statistics for " + name
			return d
		}
		for col := range ts.Cols {
			if !ts.NullFree(col) {
				d.Reason = fmt.Sprintf("broadcast: %s.%d has nulls (rate %.2f), rows would fall in the wild bucket",
					name, col, ts.NullRate(col))
				return d
			}
			if n := ts.Cols[col].Distinct; n > maxDistinct {
				maxDistinct = n
			}
			premises = append(premises, Premise{Kind: PremiseNullFree, Table: name, Col: col})
		}
	}
	if maxDistinct < int64(shards) {
		d.Reason = fmt.Sprintf("broadcast: ~%d distinct values < %d shards, buckets would sit empty",
			maxDistinct, shards)
		return d
	}
	r.Premises = append(r.Premises, premises...)
	d.CoPartition = true
	d.Reason = fmt.Sprintf("co-partition: null-free build side, ~%d distinct values across %d shards",
		maxDistinct, shards)
	return d
}

// buildBases collects the stored relations feeding a build side, in
// first-visit order, walking only through operators whose output nulls
// are bounded by their inputs' (a selection, projection, product, set
// operation, semijoin, distinct, sort, limit or division can reorder,
// drop or concatenate values but never mint a null). The first operator
// outside that set — an aggregate, which emits NULL over an empty
// group, or an adom power, which draws nulls from the whole database —
// is returned as opaque, and the build is broadcast: co-partitioning
// would still be sound, but the statistics cannot price it.
func buildBases(e algebra.Expr) (bases []string, opaque string) {
	seen := map[string]bool{}
	var walk func(e algebra.Expr)
	walk = func(e algebra.Expr) {
		if opaque != "" {
			return
		}
		switch e := e.(type) { // astlint:partial — anything unlisted is opaque by default
		case algebra.Base:
			if !seen[e.Name] {
				seen[e.Name] = true
				bases = append(bases, e.Name)
			}
		case algebra.Select:
			walk(e.Child) // the condition only filters; subquery scalars never land in the output row
		case algebra.Project:
			walk(e.Child)
		case algebra.Product:
			walk(e.L)
			walk(e.R)
		case algebra.Union:
			walk(e.L)
			walk(e.R)
		case algebra.Intersect:
			walk(e.L)
			walk(e.R)
		case algebra.Diff:
			walk(e.L)
			walk(e.R)
		case algebra.SemiJoin:
			walk(e.L) // output rows are rows of L; R only filters
		case algebra.UnifySemi:
			walk(e.L)
		case algebra.Distinct:
			walk(e.Child)
		case algebra.Sort:
			walk(e.Child)
		case algebra.Limit:
			walk(e.Child)
		case algebra.Division:
			walk(e.L) // output tuples are prefixes of L's
		default:
			opaque = strings.TrimPrefix(fmt.Sprintf("%T", e), "algebra.")
		}
	}
	walk(e)
	return bases, opaque
}

// Render returns the EXPLAIN section for the sharded plan, one
// decision per line; empty when there were no decisions.
func (r *ShardResult) Render(shards int) string {
	if r == nil || len(r.Decisions) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shard plan (%d shards)\n", shards)
	for _, d := range r.Decisions {
		fmt.Fprintf(&b, "  %s build %s: %s\n", d.Op, d.Build, d.Reason)
	}
	return b.String()
}

// walkExprs visits every expression node of e in tree order, including
// scalar-subquery bodies inside conditions.
func walkExprs(e algebra.Expr, visit func(algebra.Expr)) {
	var walk func(e algebra.Expr)
	var walkCond func(c algebra.Cond)
	walkOperand := func(o algebra.Operand) {
		if s, ok := o.(algebra.Scalar); ok {
			walk(s.Sub)
		}
	}
	walkCond = func(c algebra.Cond) {
		switch c := c.(type) { // astlint:partial — only scalar carriers matter
		case algebra.Cmp:
			walkOperand(c.L)
			walkOperand(c.R)
		case algebra.Like:
			walkOperand(c.Operand)
			walkOperand(c.Pattern)
		case algebra.NullTest:
			walkOperand(c.Operand)
		case algebra.And:
			for _, sub := range c.Conds {
				walkCond(sub)
			}
		case algebra.Or:
			for _, sub := range c.Conds {
				walkCond(sub)
			}
		case algebra.Not:
			walkCond(c.C)
		}
	}
	walk = func(e algebra.Expr) {
		visit(e)
		switch e := e.(type) { // astlint:partial — leaves have no children
		case algebra.Select:
			walkCond(e.Cond)
			walk(e.Child)
		case algebra.Project:
			walk(e.Child)
		case algebra.Product:
			walk(e.L)
			walk(e.R)
		case algebra.Union:
			walk(e.L)
			walk(e.R)
		case algebra.Intersect:
			walk(e.L)
			walk(e.R)
		case algebra.Diff:
			walk(e.L)
			walk(e.R)
		case algebra.SemiJoin:
			walkCond(e.Cond)
			walk(e.L)
			walk(e.R)
		case algebra.UnifySemi:
			walk(e.L)
			walk(e.R)
		case algebra.Distinct:
			walk(e.Child)
		case algebra.Division:
			walk(e.L)
			walk(e.R)
		case algebra.GroupBy:
			walk(e.Child)
		case algebra.Sort:
			walk(e.Child)
		case algebra.Limit:
			walk(e.Child)
		}
	}
	walk(e)
}
