package plan_test

import (
	"strings"
	"testing"

	"certsql/internal/plan"
)

// TestPremiseStringUnknownKind pins the rendering fix surfaced by the
// vetcert enumswitch rule: an unrecognized premise kind used to render
// as "null-free", silently mislabeling it in EXPLAIN output.
func TestPremiseStringUnknownKind(t *testing.T) {
	known := []struct {
		p    plan.Premise
		want string
	}{
		{plan.Premise{Kind: plan.PremiseNullFree, Table: "t", Col: 2}, "null-free(t.2)"},
		{plan.Premise{Kind: plan.PremiseNumRange, Table: "t", Col: 0}, "num-range(t.0)"},
	}
	for _, tc := range known {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	got := plan.Premise{Kind: plan.PremiseKind(99), Table: "t", Col: 1}.String()
	if strings.Contains(got, "null-free") || strings.Contains(got, "num-range") {
		t.Fatalf("unknown premise kind rendered as a known one: %q", got)
	}
	if !strings.Contains(got, "99") {
		t.Fatalf("unknown premise kind should identify itself: %q", got)
	}
}
