package plan_test

import (
	"strings"
	"testing"

	"certsql/internal/algebra"
	"certsql/internal/plan"
	"certsql/internal/table"
	"certsql/internal/value"
)

// shardExpr is a unification semijoin whose build side is the given
// relation, probing r.
func shardExpr(build string, cols int) algebra.UnifySemi {
	return algebra.UnifySemi{
		L: algebra.Base{Name: "r", Cols: 2},
		R: algebra.Base{Name: build, Cols: cols},
	}
}

// TestShardPlanDecisions walks the broadcast-vs-co-partition decision
// table: null-free build sides with enough distinct values co-partition
// (recording null-free premises), everything else broadcasts with a
// stated reason.
func TestShardPlanDecisions(t *testing.T) {
	db := planDB(t) // r: 8 rows, null-free in the data; s: holds a null
	st := collect(db)

	// r is null-free with 8 distinct values: co-partition at 2 shards.
	sr := plan.ShardPlan(shardExpr("r", 2), st, 2)
	if sr == nil || len(sr.Decisions) != 1 {
		t.Fatalf("expected one decision, got %+v", sr)
	}
	d := sr.Decisions[0]
	if !d.CoPartition {
		t.Fatalf("null-free build side should co-partition: %+v", d)
	}
	if len(sr.Premises) == 0 {
		t.Fatal("co-partition decision recorded no premises")
	}
	for _, p := range sr.Premises {
		if p.Kind != plan.PremiseNullFree || p.Table != "r" {
			t.Fatalf("unexpected premise %+v", p)
		}
	}
	if sr.Hints[shardExpr("r", 2).Key()] != (plan.ShardHint{CoPartition: true}) {
		t.Fatalf("hint missing for the co-partitioned operator: %+v", sr.Hints)
	}

	// s holds a null: broadcast, with the wild-bucket reason.
	sr = plan.ShardPlan(shardExpr("s", 1), st, 2)
	if d := sr.Decisions[0]; d.CoPartition || !strings.Contains(d.Reason, "wild bucket") {
		t.Fatalf("nullable build side should broadcast with the wild-bucket reason: %+v", d)
	}
	if sr.Hints != nil {
		t.Fatalf("broadcast decisions must produce no hints: %+v", sr.Hints)
	}

	// More shards than distinct values: broadcast.
	sr = plan.ShardPlan(shardExpr("r", 2), st, 64)
	if d := sr.Decisions[0]; d.CoPartition || !strings.Contains(d.Reason, "distinct") {
		t.Fatalf("sparse build side should broadcast with the distinct-count reason: %+v", d)
	}

	// No statistics at all: broadcast.
	sr = plan.ShardPlan(shardExpr("r", 2), nil, 2)
	if d := sr.Decisions[0]; d.CoPartition {
		t.Fatalf("missing statistics should broadcast: %+v", d)
	}

	// Unsharded: no plan at all.
	if plan.ShardPlan(shardExpr("r", 2), st, 1) != nil {
		t.Fatal("shards < 2 should yield a nil plan")
	}

	// Render surfaces every decision for EXPLAIN.
	sr = plan.ShardPlan(shardExpr("r", 2), st, 4)
	out := sr.Render(4)
	if !strings.Contains(out, "shard plan (4 shards)") || !strings.Contains(out, "unify-semijoin build r") {
		t.Fatalf("Render missing the decision line:\n%s", out)
	}
}

// TestShardPlanPremiseFallback exercises the staleness seam: a shard
// plan decided against old statistics must be droppable by re-checking
// its premises against fresh statistics after a load introduced nulls —
// the prepared path's broadcast fallback.
func TestShardPlanPremiseFallback(t *testing.T) {
	db := planDB(t)
	stale := collect(db)
	e := shardExpr("r", 2)
	sr := plan.ShardPlan(e, stale, 2)
	if sr == nil || sr.Hints == nil {
		t.Fatalf("expected a co-partition plan against the stale statistics: %+v", sr)
	}
	if !plan.CheckPremises(sr.Premises, stale) {
		t.Fatal("premises must hold against the statistics that produced them")
	}
	// A load introduces a null into r.a.
	if err := db.Insert("r", table.Row{db.FreshNull(), value.Str("x")}); err != nil {
		t.Fatal(err)
	}
	fresh := collect(db)
	if plan.CheckPremises(sr.Premises, fresh) {
		t.Fatal("null-free premises must fail after a load introduced a null")
	}
}
