package plan

import (
	"fmt"
	"strconv"
	"strings"

	"certsql/internal/algebra"
	"certsql/internal/eval"
)

// ExplainNode is one operator of the costed plan tree surfaced by
// EXPLAIN: the operator, its condition or column detail, the planner's
// cardinality and cost estimates, and strategy/hint annotations.
type ExplainNode struct {
	Op       string
	Detail   string
	EstRows  float64
	EstCost  float64
	Notes    []string
	Children []*ExplainNode
}

// Render returns the deterministic indented tree used by golden
// EXPLAIN tests.
func (n *ExplainNode) Render() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *ExplainNode) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteString(" [")
		b.WriteString(n.Detail)
		b.WriteString("]")
	}
	fmt.Fprintf(b, " (rows=%s cost=%s)", fnum(n.EstRows), fnum(n.EstCost))
	if len(n.Notes) > 0 {
		b.WriteString(" {")
		b.WriteString(strings.Join(n.Notes, ", "))
		b.WriteString("}")
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// fnum renders an estimate with 4 significant digits, deterministically.
func fnum(f float64) string {
	return strconv.FormatFloat(f, 'g', 4, 64)
}

// ExplainText renders the whole plan: a header with total cost, the
// fired rules, the premises, and the costed operator tree.
func (r *Result) ExplainText() string {
	var b strings.Builder
	if r.Explain != nil {
		fmt.Fprintf(&b, "plan (cost=%s rows=%s)\n", fnum(r.Explain.EstCost), fnum(r.Explain.EstRows))
	}
	names := make([]string, len(r.Fired))
	for i, k := range r.Fired {
		names[i] = k.String()
	}
	if len(names) > 0 {
		b.WriteString("rules: " + strings.Join(names, ", ") + "\n")
	} else {
		b.WriteString("rules: (none)\n")
	}
	if len(r.Premises) > 0 {
		ps := make([]string, len(r.Premises))
		for i, p := range r.Premises {
			ps[i] = p.String()
		}
		b.WriteString("premises: " + strings.Join(ps, ", ") + "\n")
	}
	if r.Explain != nil {
		b.WriteString(r.Explain.Render())
	}
	return b.String()
}

// describe builds the costed EXPLAIN tree for e, annotating semijoins
// with their strategy and any execution hints.
func (o *optimizer) describe(e algebra.Expr, hints *eval.PlanHints) *ExplainNode {
	est := o.estimate(e)
	n := &ExplainNode{EstRows: est.rows, EstCost: est.cost}
	switch x := e.(type) {
	case algebra.Base:
		n.Op, n.Detail = "scan", x.Name
	case algebra.Select:
		if isProductChain(x.Child) {
			n.Op, n.Detail = "join-block", x.Cond.String()
			for _, leaf := range flattenProduct(x.Child) {
				n.Children = append(n.Children, o.describe(leaf, hints))
			}
			return n
		}
		n.Op, n.Detail = "select", x.Cond.String()
		n.Children = append(n.Children, o.describe(x.Child, hints))
	case algebra.Project:
		cols := make([]string, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = strconv.Itoa(c)
		}
		n.Op, n.Detail = "project", strings.Join(cols, ",")
		n.Children = append(n.Children, o.describe(x.Child, hints))
	case algebra.Product:
		n.Op = "product"
		n.Children = append(n.Children, o.describe(x.L, hints), o.describe(x.R, hints))
	case algebra.Union:
		n.Op = "union"
		n.Children = append(n.Children, o.describe(x.L, hints), o.describe(x.R, hints))
	case algebra.Intersect:
		n.Op = "intersect"
		n.Children = append(n.Children, o.describe(x.L, hints), o.describe(x.R, hints))
	case algebra.Diff:
		n.Op = "diff"
		n.Children = append(n.Children, o.describe(x.L, hints), o.describe(x.R, hints))
	case algebra.SemiJoin:
		n.Op = "semijoin"
		if x.Anti {
			n.Op = "antijoin"
		}
		n.Detail = x.Cond.String()
		n.Notes = append(n.Notes, "strategy="+semiStrategy(x))
		if hints != nil && hints.Semi != nil {
			if h, ok := hints.Semi[x.Key()]; ok {
				if h.SlimVerify {
					n.Notes = append(n.Notes, "slim-verify")
				}
				if h.NumKey {
					n.Notes = append(n.Notes, "num-key")
				}
				if h.BuildDistinct > 0 {
					n.Notes = append(n.Notes, "presize="+strconv.FormatInt(h.BuildDistinct, 10))
				}
				if h.FuseBuild {
					n.Notes = append(n.Notes, "fuse-build")
				}
			}
		}
		n.Children = append(n.Children, o.describe(x.L, hints), o.describe(x.R, hints))
	case algebra.UnifySemi:
		n.Op = "unify-semijoin"
		if x.Anti {
			n.Op = "unify-antijoin"
		}
		n.Children = append(n.Children, o.describe(x.L, hints), o.describe(x.R, hints))
	case algebra.Distinct:
		n.Op = "distinct"
		n.Children = append(n.Children, o.describe(x.Child, hints))
	case algebra.Division:
		n.Op = "division"
		n.Children = append(n.Children, o.describe(x.L, hints), o.describe(x.R, hints))
	case algebra.AdomPower:
		n.Op, n.Detail = "adom-power", strconv.Itoa(x.K)
	case algebra.GroupBy:
		parts := make([]string, 0, len(x.Keys)+len(x.Aggs))
		for _, k := range x.Keys {
			parts = append(parts, "#"+strconv.Itoa(k))
		}
		for _, a := range x.Aggs {
			parts = append(parts, a.String())
		}
		n.Op, n.Detail = "group-by", strings.Join(parts, ",")
		n.Children = append(n.Children, o.describe(x.Child, hints))
	case algebra.Sort:
		n.Op = "sort"
		n.Children = append(n.Children, o.describe(x.Child, hints))
	case algebra.Limit:
		n.Op, n.Detail = "limit", strconv.Itoa(x.N)
		n.Children = append(n.Children, o.describe(x.Child, hints))
	default:
		n.Op = fmt.Sprintf("%T", e)
	}
	return n
}
