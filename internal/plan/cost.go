package plan

import (
	"math"
	"strings"

	"certsql/internal/algebra"
)

// defaultRows is the cardinality assumed for a relation with no
// statistics.
const defaultRows = 1000.0

// estimate is a per-node cardinality and cumulative cost estimate.
// Costs are in the evaluator's cost units (elementary row operations);
// every formula adds a node's own work to the sum of its children's
// costs, so AuditCost's monotonicity invariants hold by construction.
type estimate struct {
	rows, cost float64
}

// estimate costs e bottom-up from the statistics snapshot.
func (o *optimizer) estimate(e algebra.Expr) estimate {
	switch n := e.(type) {
	case algebra.Base:
		rows := defaultRows
		if o.st != nil {
			if ts := o.st.Table(strings.ToLower(n.Name)); ts != nil {
				rows = float64(ts.Rows)
			}
		}
		return estimate{rows: rows, cost: rows + 1}
	case algebra.Select:
		if isProductChain(n.Child) {
			return o.joinBlockEstimate(n)
		}
		child := o.estimate(n.Child)
		rows := child.rows * o.selectivity(n.Cond, o.colInfo(n.Child))
		return estimate{rows: rows, cost: child.cost + child.rows + 1}
	case algebra.Project:
		child := o.estimate(n.Child)
		return estimate{rows: child.rows, cost: child.cost + child.rows + 1}
	case algebra.Product:
		l, r := o.estimate(n.L), o.estimate(n.R)
		rows := l.rows * r.rows
		return estimate{rows: rows, cost: l.cost + r.cost + rows + 1}
	case algebra.Union:
		l, r := o.estimate(n.L), o.estimate(n.R)
		return estimate{rows: l.rows + r.rows, cost: l.cost + r.cost + l.rows + r.rows + 1}
	case algebra.Intersect:
		l, r := o.estimate(n.L), o.estimate(n.R)
		return estimate{rows: 0.5 * math.Min(l.rows, r.rows), cost: l.cost + r.cost + l.rows + r.rows + 1}
	case algebra.Diff:
		l, r := o.estimate(n.L), o.estimate(n.R)
		return estimate{rows: 0.5 * l.rows, cost: l.cost + r.cost + l.rows + r.rows + 1}
	case algebra.SemiJoin:
		l, r := o.estimate(n.L), o.estimate(n.R)
		rows := 0.5 * l.rows
		var work float64
		switch semiStrategy(n) {
		case "short-circuit":
			work = r.rows
		case "nested-loop":
			// The quadratic probe the paper's Section 7 conditions
			// force on a confused optimizer.
			work = l.rows * r.rows
		default: // hash
			work = l.rows + r.rows
		}
		return estimate{rows: rows, cost: l.cost + r.cost + work + 1}
	case algebra.UnifySemi:
		l, r := o.estimate(n.L), o.estimate(n.R)
		return estimate{rows: 0.5 * l.rows, cost: l.cost + r.cost + l.rows*r.rows + 1}
	case algebra.Distinct:
		child := o.estimate(n.Child)
		return estimate{rows: 0.9 * child.rows, cost: child.cost + child.rows + 1}
	case algebra.Division:
		l, r := o.estimate(n.L), o.estimate(n.R)
		return estimate{rows: l.rows / math.Max(r.rows, 1), cost: l.cost + r.cost + l.rows*r.rows + 1}
	case algebra.AdomPower:
		adom := defaultRows
		if o.st != nil {
			total := 0.0
			for _, ts := range o.st.Tables {
				total += float64(ts.Rows) * float64(len(ts.Cols))
			}
			if total > 0 {
				adom = total
			}
		}
		rows := math.Min(math.Pow(adom, float64(n.K)), 1e18)
		return estimate{rows: rows, cost: rows + 1}
	case algebra.GroupBy:
		child := o.estimate(n.Child)
		rows := math.Max(1, 0.1*child.rows)
		if len(n.Keys) == 0 {
			rows = 1
		}
		return estimate{rows: rows, cost: child.cost + child.rows + rows + 1}
	case algebra.Sort:
		child := o.estimate(n.Child)
		return estimate{rows: child.rows, cost: child.cost + child.rows*math.Log2(child.rows+2) + 1}
	case algebra.Limit:
		child := o.estimate(n.Child)
		return estimate{rows: math.Min(child.rows, float64(n.N)), cost: child.cost + child.rows + 1}
	default:
		return estimate{rows: defaultRows, cost: defaultRows + 1}
	}
}

// joinBlockEstimate costs σ_cond(leaf₀ × …): the runtime plans this as
// a greedy equi-join over the condition's equality edges, so the cost
// is linear in the leaves when an edge connects them and the output is
// discounted by the condition's selectivity.
func (o *optimizer) joinBlockEstimate(s algebra.Select) estimate {
	leaves := flattenProduct(s.Child)
	rows, cost := 1.0, 1.0
	for _, leaf := range leaves {
		le := o.estimate(leaf)
		rows *= le.rows
		cost += le.cost + le.rows
	}
	rows *= o.selectivity(s.Cond, o.colInfo(s.Child))
	return estimate{rows: rows, cost: cost + rows}
}

// flattenProduct mirrors the evaluator's product-chain flattening.
func flattenProduct(e algebra.Expr) []algebra.Expr {
	if p, ok := e.(algebra.Product); ok {
		return append(flattenProduct(p.L), flattenProduct(p.R)...)
	}
	return []algebra.Expr{e}
}

// semiStrategy names the strategy the evaluator will pick for a
// semijoin: "short-circuit" (uncorrelated), "hash" (extractable
// equality keys) or "nested-loop".
func semiStrategy(sj algebra.SemiJoin) string {
	cond := sj.Cond
	if !algebra.NNFIsIdentity(cond) {
		cond = algebra.NNF(cond)
	}
	if !algebra.UsesColBelow(cond, sj.L.Arity()) {
		return "short-circuit"
	}
	if l, _ := semiKeyPairs(sj); len(l) > 0 {
		return "hash"
	}
	return "nested-loop"
}

// colInfo returns the selectivity oracle for conditions over e's
// output columns: per-column distinct counts and null rates from the
// statistics of the base column each output column traces to.
func (o *optimizer) colInfo(e algebra.Expr) func(col int) (distinct, nullRate float64, ok bool) {
	return func(col int) (float64, float64, bool) {
		ts, bcol, found := originStats(e, o.st, col)
		if !found {
			return 0, 0, false
		}
		c := ts.Cols[bcol]
		d := float64(c.Distinct)
		if d < 1 {
			d = 1
		}
		return d, ts.NullRate(bcol), true
	}
}

// selectivity estimates the fraction of rows a condition keeps, using
// textbook independence assumptions refined with distinct counts and
// null rates where the operand columns trace to statistics.
func (o *optimizer) selectivity(c algebra.Cond, info func(int) (float64, float64, bool)) float64 {
	s := o.rawSelectivity(c, info)
	return math.Min(1, math.Max(0, s))
}

func (o *optimizer) rawSelectivity(c algebra.Cond, info func(int) (float64, float64, bool)) float64 {
	switch c := c.(type) {
	case algebra.TrueCond:
		return 1
	case algebra.FalseCond:
		return 0
	case algebra.And:
		s := 1.0
		for _, sub := range c.Conds {
			s *= o.selectivity(sub, info)
		}
		return s
	case algebra.Or:
		miss := 1.0
		for _, sub := range c.Conds {
			miss *= 1 - o.selectivity(sub, info)
		}
		return 1 - miss
	case algebra.Not:
		return 1 - o.selectivity(c.C, info)
	case algebra.Cmp:
		lc, lIsCol := c.L.(algebra.Col)
		rc, rIsCol := c.R.(algebra.Col)
		switch c.Op {
		case algebra.EQ:
			switch {
			case lIsCol && rIsCol:
				dl, _, lok := info(lc.Idx)
				dr, _, rok := info(rc.Idx)
				switch {
				case lok && rok:
					return 1 / math.Max(dl, dr)
				case lok:
					return 1 / dl
				case rok:
					return 1 / dr
				}
				return 0.1
			case lIsCol:
				if d, _, ok := info(lc.Idx); ok {
					return 1 / d
				}
				return 0.1
			case rIsCol:
				if d, _, ok := info(rc.Idx); ok {
					return 1 / d
				}
				return 0.1
			}
			return 0.1
		case algebra.NE:
			return 0.9
		case algebra.LT, algebra.LE, algebra.GT, algebra.GE:
			return 1.0 / 3
		}
		return 0.5
	case algebra.Like:
		if c.Negated {
			return 0.75
		}
		return 0.25
	case algebra.NullTest:
		rate := 0.1
		if col, ok := c.Operand.(algebra.Col); ok {
			if _, r, ok := info(col.Idx); ok {
				rate = r
			}
		}
		if c.Negated {
			return 1 - rate
		}
		return rate
	default:
		return 0.5
	}
}
