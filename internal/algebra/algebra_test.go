package algebra_test

import (
	"math/rand"
	"strings"
	"testing"

	"certsql/internal/algebra"
	"certsql/internal/eval"
	"certsql/internal/schema"
	"certsql/internal/table"
	"certsql/internal/tvl"
	"certsql/internal/value"
)

// condEval evaluates a condition over a single row through the public
// evaluator, by selecting from a one-row relation.
func condEval(t *testing.T, c algebra.Cond, row table.Row, sem value.Semantics) tvl.TV {
	t.Helper()
	s := schema.New()
	attrs := make([]schema.Attribute, len(row))
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: string(rune('a' + i)), Type: value.KindInt, Nullable: true}
	}
	s.MustAdd(&schema.Relation{Name: "one", Attrs: attrs})
	db := table.NewDatabase(s)
	if err := db.Insert("one", row); err != nil {
		t.Fatal(err)
	}
	res, err := eval.New(db, eval.Options{Semantics: sem}).Eval(algebra.Select{
		Child: algebra.Base{Name: "one", Cols: len(row)},
		Cond:  c,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 1 {
		return tvl.True
	}
	// The evaluator does not distinguish false from unknown in output;
	// re-evaluate the negation to tell them apart.
	resNeg, err := eval.New(db, eval.Options{Semantics: sem}).Eval(algebra.Select{
		Child: algebra.Base{Name: "one", Cols: len(row)},
		Cond:  algebra.Not{C: c},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resNeg.Len() == 1 {
		return tvl.False
	}
	return tvl.Unknown
}

func randCond(rng *rand.Rand, n, depth int) algebra.Cond {
	if depth > 0 && rng.Float64() < 0.5 {
		switch rng.Intn(3) {
		case 0:
			return algebra.NewAnd(randCond(rng, n, depth-1), randCond(rng, n, depth-1))
		case 1:
			return algebra.NewOr(randCond(rng, n, depth-1), randCond(rng, n, depth-1))
		default:
			return algebra.Not{C: randCond(rng, n, depth-1)}
		}
	}
	col := algebra.Col{Idx: rng.Intn(n)}
	ops := []algebra.CmpOp{algebra.EQ, algebra.NE, algebra.LT, algebra.LE, algebra.GT, algebra.GE}
	switch rng.Intn(3) {
	case 0:
		return algebra.Cmp{Op: ops[rng.Intn(6)], L: col, R: algebra.Col{Idx: rng.Intn(n)}}
	case 1:
		return algebra.Cmp{Op: ops[rng.Intn(6)], L: col, R: algebra.Lit{Val: value.Int(int64(rng.Intn(3)))}}
	default:
		return algebra.NullTest{Operand: col, Negated: rng.Intn(2) == 0}
	}
}

func randRow(rng *rand.Rand, n int) table.Row {
	row := make(table.Row, n)
	for i := range row {
		if rng.Float64() < 0.3 {
			row[i] = value.Null(int64(rng.Intn(2) + 1))
		} else {
			row[i] = value.Int(int64(rng.Intn(3)))
		}
	}
	return row
}

// TestNNFPreservesSemantics: NNF(c) evaluates identically to c on random
// rows, under both semantics — the property the paper's condition
// language relies on ("conditions are closed under negation, which can
// simply be propagated to atoms").
func TestNNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		n := 2 + rng.Intn(2)
		c := randCond(rng, n, 3)
		nnf := algebra.NNF(c)
		// No Not nodes may remain.
		assertNoNot(t, nnf)
		row := randRow(rng, n)
		for _, sem := range []value.Semantics{value.SQL3VL, value.Naive} {
			if got, want := condEval(t, nnf, row, sem), condEval(t, c, row, sem); got != want {
				t.Fatalf("NNF changed semantics (%v) on %v:\n%s\n-> %s\ngot %v want %v",
					sem, row, c, nnf, got, want)
			}
		}
	}
}

// TestDNFPreservesSemantics: DNF(NNF(c)) evaluates identically to c.
func TestDNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		n := 2 + rng.Intn(2)
		c := randCond(rng, n, 3)
		dnf := algebra.DNF(algebra.NNF(c))
		assertDNFShape(t, dnf)
		row := randRow(rng, n)
		for _, sem := range []value.Semantics{value.SQL3VL, value.Naive} {
			if got, want := condEval(t, dnf, row, sem), condEval(t, c, row, sem); got != want {
				t.Fatalf("DNF changed semantics (%v) on %v:\n%s\n-> %s", sem, row, c, dnf)
			}
		}
	}
}

func assertNoNot(t *testing.T, c algebra.Cond) {
	t.Helper()
	switch c := c.(type) {
	case algebra.Not:
		t.Fatalf("NNF left a Not node: %s", c)
	case algebra.And:
		for _, sub := range c.Conds {
			assertNoNot(t, sub)
		}
	case algebra.Or:
		for _, sub := range c.Conds {
			assertNoNot(t, sub)
		}
	}
}

func assertDNFShape(t *testing.T, c algebra.Cond) {
	t.Helper()
	for _, d := range algebra.Disjuncts(c) {
		for _, conj := range algebra.Conjuncts(d) {
			switch conj.(type) {
			case algebra.And, algebra.Or, algebra.Not:
				t.Fatalf("not in DNF: %s", c)
			}
		}
	}
}

func TestDNFPanicsOnNonNNF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DNF accepted a Not node")
		}
	}()
	algebra.DNF(algebra.Not{C: algebra.TrueCond{}})
}

func TestCondConstructorsSimplify(t *testing.T) {
	tr, fa := algebra.TrueCond{}, algebra.FalseCond{}
	atom := algebra.NullTest{Operand: algebra.Col{Idx: 0}}
	if _, ok := algebra.NewAnd(tr, tr).(algebra.TrueCond); !ok {
		t.Error("AND of trues")
	}
	if _, ok := algebra.NewAnd(atom, fa).(algebra.FalseCond); !ok {
		t.Error("AND with false")
	}
	if _, ok := algebra.NewOr(fa, fa).(algebra.FalseCond); !ok {
		t.Error("OR of falses")
	}
	if _, ok := algebra.NewOr(atom, tr).(algebra.TrueCond); !ok {
		t.Error("OR with true")
	}
	if got := algebra.NewAnd(atom); got != algebra.Cond(atom) {
		t.Error("singleton AND")
	}
	// Nested constructors flatten.
	nested := algebra.NewAnd(algebra.NewAnd(atom, atom), atom)
	if len(algebra.Conjuncts(nested)) != 3 {
		t.Errorf("flattening: %s", nested)
	}
}

func TestMapColsAndColsUsed(t *testing.T) {
	c := algebra.NewAnd(
		algebra.Cmp{Op: algebra.EQ, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 3}},
		algebra.NewOr(
			algebra.NullTest{Operand: algebra.Col{Idx: 5}},
			algebra.Like{Operand: algebra.Col{Idx: 3}, Pattern: algebra.Lit{Val: value.Str("%")}},
		),
		algebra.Not{C: algebra.Cmp{Op: algebra.LT, L: algebra.Col{Idx: 1}, R: algebra.Lit{Val: value.Int(2)}}},
	)
	used := algebra.ColsUsed(c)
	want := []int{0, 1, 3, 5}
	if len(used) != len(want) {
		t.Fatalf("ColsUsed = %v", used)
	}
	for i := range want {
		if used[i] != want[i] {
			t.Fatalf("ColsUsed = %v, want %v", used, want)
		}
	}
	shifted := algebra.MapCols(c, func(i int) int { return i + 10 })
	usedShifted := algebra.ColsUsed(shifted)
	for i := range want {
		if usedShifted[i] != want[i]+10 {
			t.Fatalf("MapCols: ColsUsed = %v", usedShifted)
		}
	}
}

func TestCmpOpHelpers(t *testing.T) {
	pairs := map[algebra.CmpOp]algebra.CmpOp{
		algebra.EQ: algebra.NE, algebra.LT: algebra.GE, algebra.LE: algebra.GT,
	}
	for op, neg := range pairs {
		if op.Negate() != neg || neg.Negate() != op {
			t.Errorf("Negate(%v)", op)
		}
	}
	flips := map[algebra.CmpOp]algebra.CmpOp{
		algebra.EQ: algebra.EQ, algebra.NE: algebra.NE,
		algebra.LT: algebra.GT, algebra.LE: algebra.GE,
	}
	for op, f := range flips {
		if op.Flip() != f {
			t.Errorf("Flip(%v) = %v", op, op.Flip())
		}
	}
}

func TestExprKeysAndArity(t *testing.T) {
	r := algebra.Base{Name: "r", Cols: 2}
	s := algebra.Base{Name: "s", Cols: 2}
	exprs := []struct {
		e     algebra.Expr
		arity int
		key   string
	}{
		{r, 2, "r"},
		{algebra.Product{L: r, R: s}, 4, "(r × s)"},
		{algebra.Project{Child: r, Cols: []int{1}}, 1, "π[1](r)"},
		{algebra.Union{L: r, R: s}, 2, "(r ∪ s)"},
		{algebra.Diff{L: r, R: s}, 2, "(r − s)"},
		{algebra.Intersect{L: r, R: s}, 2, "(r ∩ s)"},
		{algebra.UnifySemi{L: r, R: s, Anti: true}, 2, "(r ▷⇑ s)"},
		{algebra.Distinct{Child: r}, 2, "δ(r)"},
		{algebra.AdomPower{K: 3}, 3, "adom^3"},
	}
	for _, c := range exprs {
		if c.e.Arity() != c.arity {
			t.Errorf("%s: arity %d, want %d", c.key, c.e.Arity(), c.arity)
		}
		if c.e.Key() != c.key {
			t.Errorf("Key() = %q, want %q", c.e.Key(), c.key)
		}
	}
	// Structurally equal expressions share keys; different ones do not.
	a := algebra.Select{Child: r, Cond: algebra.TrueCond{}}
	b := algebra.Select{Child: r, Cond: algebra.TrueCond{}}
	if a.Key() != b.Key() {
		t.Error("equal plans with different keys")
	}
	cDiff := algebra.Select{Child: s, Cond: algebra.TrueCond{}}
	if a.Key() == cDiff.Key() {
		t.Error("different plans share a key")
	}
}

func TestWalkAndConds(t *testing.T) {
	r := algebra.Base{Name: "r", Cols: 2}
	inner := algebra.Select{Child: r, Cond: algebra.TrueCond{}}
	scalar := algebra.Scalar{Sub: inner, Agg: algebra.AggAvg, Col: 0}
	e := algebra.Select{
		Child: algebra.SemiJoin{L: r, R: r, Cond: algebra.FalseCond{}, Anti: true},
		Cond:  algebra.Cmp{Op: algebra.GT, L: algebra.Col{Idx: 0}, R: scalar},
	}
	count := 0
	algebra.Walk(e, func(algebra.Expr) { count++ })
	// e, the scalar's subquery (select + r), semijoin, r, r = 6 nodes.
	if count != 6 {
		t.Errorf("Walk visited %d nodes, want 6", count)
	}
	conds := algebra.Conds(e)
	if len(conds) != 3 { // outer select cond, semijoin cond, scalar's select cond
		t.Errorf("Conds found %d, want 3: %v", len(conds), conds)
	}
	if !strings.Contains(algebra.Format(e), "AntiJoin") {
		t.Errorf("Format misses AntiJoin:\n%s", algebra.Format(e))
	}
}

func TestAggAndStringers(t *testing.T) {
	if algebra.AggAvg.String() != "AVG" || algebra.AggCount.String() != "COUNT" {
		t.Error("AggFunc names")
	}
	c := algebra.Like{Operand: algebra.Col{Idx: 1}, Pattern: algebra.Lit{Val: value.Str("x%")}, Negated: true}
	if c.String() != "#1 NOT LIKE 'x%'" {
		t.Errorf("Like.String = %q", c.String())
	}
	nt := algebra.NullTest{Operand: algebra.Col{Idx: 0}, Negated: true}
	if nt.String() != "const(#0)" {
		t.Errorf("NullTest.String = %q", nt.String())
	}
}

func TestDecisionSupportOperatorBasics(t *testing.T) {
	r := algebra.Base{Name: "r", Cols: 2}
	gb := algebra.GroupBy{Child: r, Keys: []int{0}, Aggs: []algebra.AggSpec{
		{Func: algebra.AggCount, Col: -1},
		{Func: algebra.AggAvg, Col: 1},
	}}
	if gb.Arity() != 3 {
		t.Errorf("GroupBy arity %d", gb.Arity())
	}
	if gb.Key() != "γ[0;COUNT(*),AVG(#1)](r)" {
		t.Errorf("GroupBy key %q", gb.Key())
	}
	srt := algebra.Sort{Child: gb, Keys: []algebra.SortKey{{Col: 1, Desc: true}, {Col: 0}}}
	if srt.Arity() != 3 || srt.Key() != "sort[1 desc,0 asc](γ[0;COUNT(*),AVG(#1)](r))" {
		t.Errorf("Sort key %q", srt.Key())
	}
	lim := algebra.Limit{Child: srt, N: 5}
	if lim.Arity() != 3 || lim.Key() != "limit[5](sort[1 desc,0 asc](γ[0;COUNT(*),AVG(#1)](r)))" {
		t.Errorf("Limit key %q", lim.Key())
	}
	div := algebra.Division{L: r, R: algebra.Project{Child: r, Cols: []int{1}}}
	if div.Arity() != 1 || div.Key() != "(r ÷ π[1](r))" {
		t.Errorf("Division key %q, arity %d", div.Key(), div.Arity())
	}

	// Children and Format cover the new operators.
	for _, e := range []algebra.Expr{gb, srt, lim, div} {
		if len(algebra.Children(e)) == 0 {
			t.Errorf("%T has no children", e)
		}
		if algebra.Format(e) == "" {
			t.Errorf("%T formats empty", e)
		}
	}
	count := 0
	algebra.Walk(lim, func(algebra.Expr) { count++ })
	if count != 4 { // limit, sort, groupby, r
		t.Errorf("Walk visited %d nodes, want 4", count)
	}
}
