package algebra

import (
	"fmt"
	"strconv"
	"strings"
)

// This file adds the operators needed by full decision-support queries
// — grouping/aggregation, sorting and limits. They are engine features
// for the *standard* evaluation mode only: certain answers for
// aggregate queries have no established theory (Section 8 of the paper
// lists them as future work), so the certain translation rejects them
// with a clear error instead of guessing.

// AggSpec is one aggregate computed by a GroupBy: Func over column Col
// of the input (Col = -1 for COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Col  int
}

// String renders the spec in SQL syntax.
func (a AggSpec) String() string {
	if a.Col < 0 {
		return a.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(#%d)", a.Func, a.Col)
}

// GroupBy groups Child on the Keys columns and computes the Aggs per
// group; its output is the key columns followed by the aggregate
// values. With no keys it computes global aggregates (one output row,
// even over empty input, per SQL).
type GroupBy struct {
	Child Expr
	Keys  []int
	Aggs  []AggSpec
}

// SortKey orders by one column, optionally descending; nulls sort last
// on ascending keys (SQL's default NULLS LAST) and first on descending.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort orders Child's rows by the given keys (stable).
type Sort struct {
	Child Expr
	Keys  []SortKey
}

// Limit keeps the first N rows of Child.
type Limit struct {
	Child Expr
	N     int
}

// Arity implementations.

func (g GroupBy) Arity() int { return len(g.Keys) + len(g.Aggs) }
func (s Sort) Arity() int    { return s.Child.Arity() }
func (l Limit) Arity() int   { return l.Child.Arity() }

// Key implementations.

func (g GroupBy) Key() string {
	keys := make([]string, len(g.Keys))
	for i, k := range g.Keys {
		keys[i] = strconv.Itoa(k)
	}
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.String()
	}
	return "γ[" + strings.Join(keys, ",") + ";" + strings.Join(aggs, ",") + "](" + g.Child.Key() + ")"
}

func (s Sort) Key() string {
	keys := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		keys[i] = fmt.Sprintf("%d %s", k.Col, dir)
	}
	return "sort[" + strings.Join(keys, ",") + "](" + s.Child.Key() + ")"
}

func (l Limit) Key() string {
	return fmt.Sprintf("limit[%d](%s)", l.N, l.Child.Key())
}
