// Package algebra defines the relational-algebra operator tree and the
// selection-condition language used throughout the system.
//
// Conditions are Boolean combinations of comparison atoms over the
// columns of (concatenated) tuples, constant literals, and scalar
// aggregate subqueries; the atoms are =, ≠, <, ≤, >, ≥, LIKE, and the
// const(A)/null(A) predicates of the paper (SQL's IS NOT NULL / IS
// NULL). Columns are positional: condition trees reference the columns
// of their operator's input by index, with a binary operator's right
// input following the left input's columns.
package algebra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

import "certsql/internal/value"

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// Negate returns the complementary operator (=↔≠, <↔≥, ≤↔>).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default: // GE
		return LT
	}
}

// Flip returns the operator with swapped operands (a op b ≡ b flip(op) a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	default:
		return ">="
	}
}

// AggFunc is an aggregate function usable in scalar subqueries.
type AggFunc uint8

// Aggregate functions.
const (
	AggAvg AggFunc = iota
	AggSum
	AggCount
	AggMin
	AggMax
)

// String renders the aggregate's SQL name.
func (f AggFunc) String() string {
	switch f {
	case AggAvg:
		return "AVG"
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	default:
		return "MAX"
	}
}

// Operand is the operand of a comparison atom: a column reference, a
// literal, or a scalar aggregate subquery.
type Operand interface {
	isOperand()
	String() string
}

// Col references the column at position Idx of the input tuple.
type Col struct{ Idx int }

// Lit is a constant (or, exceptionally, marked-null) literal.
type Lit struct{ Val value.Value }

// Scalar is an uncorrelated scalar aggregate subquery — the paper treats
// these as black-box constants (Section 7, "Translating additional
// features"). The evaluator computes Agg over column Col of Sub's result
// once per query execution.
type Scalar struct {
	Sub Expr
	Agg AggFunc
	Col int
}

func (Col) isOperand()    {}
func (Lit) isOperand()    {}
func (Scalar) isOperand() {}

// String renders the column as #idx. These renderers back the
// evaluator's subplan-cache keys, so they avoid fmt: keying re-renders
// subtrees at every recursion level and the reflective path dominated
// execution profiles.
func (c Col) String() string { return "#" + strconv.Itoa(c.Idx) }

// String renders the literal.
func (l Lit) String() string { return l.Val.String() }

// String renders the scalar subquery compactly.
func (s Scalar) String() string {
	return "scalar[" + s.Agg.String() + "(#" + strconv.Itoa(s.Col) + ") of " + s.Sub.Key() + "]"
}

// Cond is a selection condition.
type Cond interface {
	isCond()
	String() string
}

// TrueCond and FalseCond are the constant conditions.
type (
	// TrueCond always holds.
	TrueCond struct{}
	// FalseCond never holds.
	FalseCond struct{}
)

// Cmp is a comparison atom L op R.
type Cmp struct {
	Op   CmpOp
	L, R Operand
}

// Like is a LIKE atom (or NOT LIKE when Negated).
type Like struct {
	Operand Operand
	Pattern Operand
	Negated bool
}

// NullTest is null(A) (IS NULL) or, when Negated, const(A) (IS NOT NULL).
type NullTest struct {
	Operand Operand
	Negated bool
}

// And is an n-ary conjunction. An empty And is true.
type And struct{ Conds []Cond }

// Or is an n-ary disjunction. An empty Or is false.
type Or struct{ Conds []Cond }

// Not is negation; NNF pushes it down to atoms.
type Not struct{ C Cond }

func (TrueCond) isCond()  {}
func (FalseCond) isCond() {}
func (Cmp) isCond()       {}
func (Like) isCond()      {}
func (NullTest) isCond()  {}
func (And) isCond()       {}
func (Or) isCond()        {}
func (Not) isCond()       {}

// String implementations render conditions in a SQL-ish syntax.

func (TrueCond) String() string  { return "true" }
func (FalseCond) String() string { return "false" }

func (c Cmp) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

func (l Like) String() string {
	if l.Negated {
		return l.Operand.String() + " NOT LIKE " + l.Pattern.String()
	}
	return l.Operand.String() + " LIKE " + l.Pattern.String()
}

func (n NullTest) String() string {
	if n.Negated {
		return "const(" + n.Operand.String() + ")"
	}
	return "null(" + n.Operand.String() + ")"
}

func (a And) String() string { return joinConds(a.Conds, " AND ", "true") }
func (o Or) String() string  { return joinConds(o.Conds, " OR ", "false") }

func joinConds(cs []Cond, sep, empty string) string {
	if len(cs) == 0 {
		return empty
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		s := c.String()
		switch c.(type) {
		case And, Or:
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

func (n Not) String() string { return "NOT (" + n.C.String() + ")" }

// NewAnd builds a conjunction, flattening nested Ands and simplifying
// constants.
func NewAnd(cs ...Cond) Cond {
	var flat []Cond
	for _, c := range cs {
		switch c := c.(type) {
		case TrueCond:
		case FalseCond:
			return FalseCond{}
		case And:
			flat = append(flat, c.Conds...)
		default:
			flat = append(flat, c)
		}
	}
	switch len(flat) {
	case 0:
		return TrueCond{}
	case 1:
		return flat[0]
	}
	return And{Conds: flat}
}

// NewOr builds a disjunction, flattening nested Ors and simplifying
// constants.
func NewOr(cs ...Cond) Cond {
	var flat []Cond
	for _, c := range cs {
		switch c := c.(type) {
		case FalseCond:
		case TrueCond:
			return TrueCond{}
		case Or:
			flat = append(flat, c.Conds...)
		default:
			flat = append(flat, c)
		}
	}
	switch len(flat) {
	case 0:
		return FalseCond{}
	case 1:
		return flat[0]
	}
	return Or{Conds: flat}
}

// NNF pushes negations down to the atoms, returning an equivalent
// condition in negation normal form. Negated comparison atoms flip their
// operator; negated LIKE and null tests toggle their Negated flag. The
// result contains no Not nodes.
//
// Note the equivalence ¬(A = B) ≡ A ≠ B used here is the one from the
// paper's condition language (Section 2): conditions are closed under
// negation with negation propagated to atoms. Under SQL 3VL this maps
// unknown to unknown, which is exactly Kleene negation.
func NNF(c Cond) Cond {
	return nnf(c, false)
}

func nnf(c Cond, neg bool) Cond {
	switch c := c.(type) {
	case TrueCond:
		if neg {
			return FalseCond{}
		}
		return c
	case FalseCond:
		if neg {
			return TrueCond{}
		}
		return c
	case Cmp:
		if neg {
			return Cmp{Op: c.Op.Negate(), L: c.L, R: c.R}
		}
		return c
	case Like:
		if neg {
			return Like{Operand: c.Operand, Pattern: c.Pattern, Negated: !c.Negated}
		}
		return c
	case NullTest:
		if neg {
			return NullTest{Operand: c.Operand, Negated: !c.Negated}
		}
		return c
	case Not:
		return nnf(c.C, !neg)
	case And:
		parts := make([]Cond, len(c.Conds))
		for i, sub := range c.Conds {
			parts[i] = nnf(sub, neg)
		}
		if neg {
			return NewOr(parts...)
		}
		return NewAnd(parts...)
	case Or:
		parts := make([]Cond, len(c.Conds))
		for i, sub := range c.Conds {
			parts[i] = nnf(sub, neg)
		}
		if neg {
			return NewAnd(parts...)
		}
		return NewOr(parts...)
	default:
		panic(fmt.Sprintf("algebra: nnf: unknown condition %T", c))
	}
}

// NNFIsIdentity reports whether NNF(c) would return c structurally
// unchanged: no Not nodes anywhere, and every And/Or already flat
// (two or more children, none of which is a same-kind connective or a
// constant that NewAnd/NewOr would simplify away). Evaluation-time
// callers use it to skip rebuilding conditions that the translation
// pipeline already emitted in normal form — the common case — since
// the rebuild allocates a full copy of the condition tree on every
// execution.
func NNFIsIdentity(c Cond) bool {
	switch c := c.(type) {
	case TrueCond, FalseCond, Cmp, Like, NullTest:
		return true
	case Not:
		return false
	case And:
		if len(c.Conds) < 2 {
			return false
		}
		for _, sub := range c.Conds {
			switch sub.(type) {
			case And, TrueCond, FalseCond:
				return false
			}
			if !NNFIsIdentity(sub) {
				return false
			}
		}
		return true
	case Or:
		if len(c.Conds) < 2 {
			return false
		}
		for _, sub := range c.Conds {
			switch sub.(type) {
			case Or, TrueCond, FalseCond:
				return false
			}
			if !NNFIsIdentity(sub) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// UsesColBelow reports whether c references any column with index < n.
// Scalar subqueries are ignored: they are uncorrelated by construction.
// This is the allocation-free form of the correlation test
// `min(ColsUsed(c)) < n` that the semijoin executor runs per operator.
func UsesColBelow(c Cond, n int) bool {
	below := func(o Operand) bool {
		col, ok := o.(Col)
		return ok && col.Idx < n
	}
	switch c := c.(type) {
	case Cmp:
		return below(c.L) || below(c.R)
	case Like:
		return below(c.Operand) || below(c.Pattern)
	case NullTest:
		return below(c.Operand)
	case And:
		for _, sub := range c.Conds {
			if UsesColBelow(sub, n) {
				return true
			}
		}
	case Or:
		for _, sub := range c.Conds {
			if UsesColBelow(sub, n) {
				return true
			}
		}
	case Not:
		return UsesColBelow(c.C, n)
	case TrueCond, FalseCond:
		// no operands
	}
	return false
}

// Conjuncts returns the top-level conjuncts of c (c itself when it is
// not a conjunction).
func Conjuncts(c Cond) []Cond {
	if a, ok := c.(And); ok {
		return a.Conds
	}
	if _, ok := c.(TrueCond); ok {
		return nil
	}
	return []Cond{c}
}

// Disjuncts returns the top-level disjuncts of c.
func Disjuncts(c Cond) []Cond {
	if o, ok := c.(Or); ok {
		return o.Conds
	}
	if _, ok := c.(FalseCond); ok {
		return nil
	}
	return []Cond{c}
}

// DNF converts an NNF condition into disjunctive normal form: a
// disjunction of conjunctions of atoms. Exponential in the worst case;
// the translated queries in this study have a handful of disjuncts.
// The input must already be in NNF (no Not nodes).
func DNF(c Cond) Cond {
	switch c := c.(type) {
	case And:
		// Distribute: DNF(a) × DNF(b) × …
		cubes := [][]Cond{nil} // start with one empty conjunction
		for _, sub := range c.Conds {
			d := DNF(sub)
			var next [][]Cond
			for _, disj := range Disjuncts(d) {
				add := Conjuncts(disj)
				for _, cube := range cubes {
					merged := make([]Cond, 0, len(cube)+len(add))
					merged = append(merged, cube...)
					merged = append(merged, add...)
					next = append(next, merged)
				}
			}
			cubes = next
		}
		out := make([]Cond, 0, len(cubes))
		for _, cube := range cubes {
			out = append(out, NewAnd(cube...))
		}
		return NewOr(out...)
	case Or:
		parts := make([]Cond, len(c.Conds))
		for i, sub := range c.Conds {
			parts[i] = DNF(sub)
		}
		return NewOr(parts...)
	case Not:
		panic("algebra: DNF requires NNF input (call NNF first)")
	default:
		return c
	}
}

// MapOperand applies f to every column index in the operand.
func MapOperand(o Operand, f func(int) int) Operand {
	switch o := o.(type) {
	case Col:
		return Col{Idx: f(o.Idx)}
	default:
		return o
	}
}

// MapCols returns a copy of c with every column index rewritten by f.
// Scalar subqueries are left untouched (they are uncorrelated).
func MapCols(c Cond, f func(int) int) Cond {
	switch c := c.(type) {
	case TrueCond, FalseCond:
		return c
	case Cmp:
		return Cmp{Op: c.Op, L: MapOperand(c.L, f), R: MapOperand(c.R, f)}
	case Like:
		return Like{Operand: MapOperand(c.Operand, f), Pattern: MapOperand(c.Pattern, f), Negated: c.Negated}
	case NullTest:
		return NullTest{Operand: MapOperand(c.Operand, f), Negated: c.Negated}
	case And:
		parts := make([]Cond, len(c.Conds))
		for i, sub := range c.Conds {
			parts[i] = MapCols(sub, f)
		}
		return And{Conds: parts}
	case Or:
		parts := make([]Cond, len(c.Conds))
		for i, sub := range c.Conds {
			parts[i] = MapCols(sub, f)
		}
		return Or{Conds: parts}
	case Not:
		return Not{C: MapCols(c.C, f)}
	default:
		panic(fmt.Sprintf("algebra: MapCols: unknown condition %T", c))
	}
}

// ColsUsed returns the sorted set of column indexes referenced by c.
func ColsUsed(c Cond) []int {
	set := map[int]struct{}{}
	collectCols(c, set)
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func collectOperandCols(o Operand, set map[int]struct{}) {
	if col, ok := o.(Col); ok {
		set[col.Idx] = struct{}{}
	}
}

func collectCols(c Cond, set map[int]struct{}) {
	switch c := c.(type) {
	case Cmp:
		collectOperandCols(c.L, set)
		collectOperandCols(c.R, set)
	case Like:
		collectOperandCols(c.Operand, set)
		collectOperandCols(c.Pattern, set)
	case NullTest:
		collectOperandCols(c.Operand, set)
	case And:
		for _, sub := range c.Conds {
			collectCols(sub, set)
		}
	case Or:
		for _, sub := range c.Conds {
			collectCols(sub, set)
		}
	case Not:
		collectCols(c.C, set)
	}
}
