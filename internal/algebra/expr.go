package algebra

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a relational-algebra expression. Columns are positional; a
// binary operator's output is the concatenation of its inputs' columns
// where applicable (Product, Join), or the left input's columns for
// semijoin-shaped operators.
type Expr interface {
	// Arity is the number of output columns.
	Arity() int
	// Key is a canonical string for the expression, used for shared-
	// subplan (view) caching and for test assertions. Structurally
	// equal plans have equal keys.
	Key() string
}

// Base is a reference to a database relation.
type Base struct {
	Name string
	Cols int
}

// Select filters Child by Cond (columns of Cond refer to Child's output).
type Select struct {
	Child Expr
	Cond  Cond
}

// Project projects Child onto the listed column positions (which may
// repeat or reorder columns).
type Project struct {
	Child Expr
	Cols  []int
}

// Product is the Cartesian product; output is L's columns then R's.
type Product struct {
	L, R Expr
}

// Union, Intersect and Diff are the set operations (duplicate-
// eliminating, as in relational algebra; the SQL fragment studied in the
// paper is evaluated under set semantics).
type (
	// Union is L ∪ R.
	Union struct{ L, R Expr }
	// Intersect is L ∩ R.
	Intersect struct{ L, R Expr }
	// Diff is L − R.
	Diff struct{ L, R Expr }
)

// SemiJoin is L ⋉θ R (Anti=false) or L ▷θ R (Anti=true): the rows of L
// for which some (no) row of R satisfies Cond over the concatenated
// tuple. This is how EXISTS / NOT EXISTS subqueries compile; the
// condition's columns 0..L.Arity()-1 refer to L and the rest to R.
type SemiJoin struct {
	L, R Expr
	Cond Cond
	Anti bool
}

// UnifySemi is the unification (anti-)semijoin of Definition 4:
// L ⋉⇑ R keeps the rows of L that unify with some row of R; the anti
// version keeps those that unify with none. L and R must have equal
// arity.
type UnifySemi struct {
	L, R Expr
	Anti bool
}

// Distinct eliminates duplicate rows.
type Distinct struct {
	Child Expr
}

// Division is the derived relational-algebra operator L ÷ R ("students
// taking all courses"): the tuples x̄ over the first
// L.Arity()−R.Arity() columns of L such that x̄·r̄ ∈ L for every
// r̄ ∈ R. Fact 1 of the paper extends naive evaluation's exact
// certain-answer guarantee to positive algebra with division, provided
// the divisor R is a database relation; the certain translation imposes
// the same proviso.
type Division struct {
	L, R Expr
}

// AdomPower is adomᵏ: the k-fold Cartesian power of the active domain of
// the database. It exists only to express the translation of
// [Libkin, TODS 2016] (paper Figure 2), whose practical infeasibility
// Section 5 of the paper demonstrates — and which this reproduction
// demonstrates too (see BenchmarkFigure2LegacyTranslation).
type AdomPower struct {
	K int
}

// Arity implementations.

func (b Base) Arity() int      { return b.Cols }
func (s Select) Arity() int    { return s.Child.Arity() }
func (p Project) Arity() int   { return len(p.Cols) }
func (p Product) Arity() int   { return p.L.Arity() + p.R.Arity() }
func (u Union) Arity() int     { return u.L.Arity() }
func (i Intersect) Arity() int { return i.L.Arity() }
func (d Diff) Arity() int      { return d.L.Arity() }
func (s SemiJoin) Arity() int  { return s.L.Arity() }
func (u UnifySemi) Arity() int { return u.L.Arity() }
func (d Distinct) Arity() int  { return d.Child.Arity() }
func (d Division) Arity() int  { return d.L.Arity() - d.R.Arity() }
func (a AdomPower) Arity() int { return a.K }

// Key implementations build canonical, parenthesized forms.

func (b Base) Key() string { return b.Name }

func (s Select) Key() string {
	return "σ[" + s.Cond.String() + "](" + s.Child.Key() + ")"
}

func (p Project) Key() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = strconv.Itoa(c)
	}
	return "π[" + strings.Join(parts, ",") + "](" + p.Child.Key() + ")"
}

func (p Product) Key() string   { return "(" + p.L.Key() + " × " + p.R.Key() + ")" }
func (u Union) Key() string     { return "(" + u.L.Key() + " ∪ " + u.R.Key() + ")" }
func (i Intersect) Key() string { return "(" + i.L.Key() + " ∩ " + i.R.Key() + ")" }
func (d Diff) Key() string      { return "(" + d.L.Key() + " − " + d.R.Key() + ")" }

func (s SemiJoin) Key() string {
	op := "⋉"
	if s.Anti {
		op = "▷"
	}
	return "(" + s.L.Key() + " " + op + "[" + s.Cond.String() + "] " + s.R.Key() + ")"
}

func (u UnifySemi) Key() string {
	op := "⋉⇑"
	if u.Anti {
		op = "▷⇑"
	}
	return "(" + u.L.Key() + " " + op + " " + u.R.Key() + ")"
}

func (d Distinct) Key() string  { return "δ(" + d.Child.Key() + ")" }
func (d Division) Key() string  { return "(" + d.L.Key() + " ÷ " + d.R.Key() + ")" }
func (a AdomPower) Key() string { return fmt.Sprintf("adom^%d", a.K) }

// Children returns the sub-expressions of e, for generic traversals.
func Children(e Expr) []Expr {
	switch e := e.(type) {
	case Base, AdomPower:
		return nil
	case Select:
		return []Expr{e.Child}
	case Project:
		return []Expr{e.Child}
	case Product:
		return []Expr{e.L, e.R}
	case Union:
		return []Expr{e.L, e.R}
	case Intersect:
		return []Expr{e.L, e.R}
	case Diff:
		return []Expr{e.L, e.R}
	case SemiJoin:
		return []Expr{e.L, e.R}
	case UnifySemi:
		return []Expr{e.L, e.R}
	case Distinct:
		return []Expr{e.Child}
	case Division:
		return []Expr{e.L, e.R}
	case GroupBy:
		return []Expr{e.Child}
	case Sort:
		return []Expr{e.Child}
	case Limit:
		return []Expr{e.Child}
	default:
		panic(fmt.Sprintf("algebra: Children: unknown expression %T", e))
	}
}

// Walk calls f on e and all of its descendants, pre-order. It also
// descends into scalar subqueries referenced from selection and
// semijoin conditions.
func Walk(e Expr, f func(Expr)) {
	f(e)
	switch e := e.(type) {
	case Select:
		walkCondSubs(e.Cond, f)
	case SemiJoin:
		walkCondSubs(e.Cond, f)
	}
	for _, c := range Children(e) {
		Walk(c, f)
	}
}

func walkCondSubs(c Cond, f func(Expr)) {
	switch c := c.(type) {
	case Cmp:
		walkOperandSub(c.L, f)
		walkOperandSub(c.R, f)
	case Like:
		walkOperandSub(c.Operand, f)
		walkOperandSub(c.Pattern, f)
	case NullTest:
		walkOperandSub(c.Operand, f)
	case And:
		for _, sub := range c.Conds {
			walkCondSubs(sub, f)
		}
	case Or:
		for _, sub := range c.Conds {
			walkCondSubs(sub, f)
		}
	case Not:
		walkCondSubs(c.C, f)
	}
}

func walkOperandSub(o Operand, f func(Expr)) {
	if s, ok := o.(Scalar); ok {
		Walk(s.Sub, f)
	}
}

// Conds returns every condition appearing in the expression tree
// (selection and semijoin conditions, including inside scalar
// subqueries), in pre-order.
func Conds(e Expr) []Cond {
	var out []Cond
	Walk(e, func(sub Expr) {
		switch sub := sub.(type) {
		case Select:
			out = append(out, sub.Cond)
		case SemiJoin:
			out = append(out, sub.Cond)
		}
	})
	return out
}

// Format renders the expression as an indented tree, for debugging and
// EXPLAIN-style output.
func Format(e Expr) string {
	var b strings.Builder
	format(&b, e, 0)
	return b.String()
}

func format(b *strings.Builder, e Expr, depth int) {
	indent := strings.Repeat("  ", depth)
	switch e := e.(type) {
	case Base:
		fmt.Fprintf(b, "%sBase %s/%d\n", indent, e.Name, e.Cols)
	case AdomPower:
		fmt.Fprintf(b, "%sAdom^%d\n", indent, e.K)
	case Select:
		fmt.Fprintf(b, "%sSelect %s\n", indent, e.Cond)
		format(b, e.Child, depth+1)
	case Project:
		fmt.Fprintf(b, "%sProject %v\n", indent, e.Cols)
		format(b, e.Child, depth+1)
	case Product:
		fmt.Fprintf(b, "%sProduct\n", indent)
		format(b, e.L, depth+1)
		format(b, e.R, depth+1)
	case Union:
		fmt.Fprintf(b, "%sUnion\n", indent)
		format(b, e.L, depth+1)
		format(b, e.R, depth+1)
	case Intersect:
		fmt.Fprintf(b, "%sIntersect\n", indent)
		format(b, e.L, depth+1)
		format(b, e.R, depth+1)
	case Diff:
		fmt.Fprintf(b, "%sDiff\n", indent)
		format(b, e.L, depth+1)
		format(b, e.R, depth+1)
	case SemiJoin:
		name := "SemiJoin"
		if e.Anti {
			name = "AntiJoin"
		}
		fmt.Fprintf(b, "%s%s %s\n", indent, name, e.Cond)
		format(b, e.L, depth+1)
		format(b, e.R, depth+1)
	case UnifySemi:
		name := "UnifySemiJoin"
		if e.Anti {
			name = "UnifyAntiJoin"
		}
		fmt.Fprintf(b, "%s%s\n", indent, name)
		format(b, e.L, depth+1)
		format(b, e.R, depth+1)
	case Distinct:
		fmt.Fprintf(b, "%sDistinct\n", indent)
		format(b, e.Child, depth+1)
	case Division:
		fmt.Fprintf(b, "%sDivision\n", indent)
		format(b, e.L, depth+1)
		format(b, e.R, depth+1)
	case GroupBy:
		fmt.Fprintf(b, "%sGroupBy keys=%v aggs=%v\n", indent, e.Keys, e.Aggs)
		format(b, e.Child, depth+1)
	case Sort:
		fmt.Fprintf(b, "%sSort %v\n", indent, e.Keys)
		format(b, e.Child, depth+1)
	case Limit:
		fmt.Fprintf(b, "%sLimit %d\n", indent, e.N)
		format(b, e.Child, depth+1)
	default:
		fmt.Fprintf(b, "%s%T?\n", indent, e)
	}
}
