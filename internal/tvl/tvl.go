// Package tvl implements SQL's three-valued (Kleene) logic.
//
// SQL condition evaluation over databases with nulls produces one of
// three truth values: true, false, or unknown. Comparisons involving a
// null evaluate to unknown, which then propagates through the Boolean
// connectives by Kleene's rules: ¬u = u, u ∧ t = u, u ∧ f = f, and
// dually for ∨ (see Section 2 of Guagliardo & Libkin, PODS 2016).
package tvl

// TV is a three-valued truth value.
type TV int8

// The three truth values. False is the zero value.
const (
	False TV = iota
	Unknown
	True
)

// FromBool lifts a Boolean into three-valued logic.
func FromBool(b bool) TV {
	if b {
		return True
	}
	return False
}

// And returns the Kleene conjunction of a and b.
// It is the minimum under the order False < Unknown < True.
func (a TV) And(b TV) TV {
	if a < b {
		return a
	}
	return b
}

// Or returns the Kleene disjunction of a and b.
// It is the maximum under the order False < Unknown < True.
func (a TV) Or(b TV) TV {
	if a > b {
		return a
	}
	return b
}

// Not returns the Kleene negation of a: ¬t = f, ¬f = t, ¬u = u.
func (a TV) Not() TV {
	switch a {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// IsTrue reports whether a is True. SQL's WHERE clause keeps a row only
// when its condition is true; both false and unknown rows are dropped.
func (a TV) IsTrue() bool { return a == True }

// IsFalse reports whether a is False.
func (a TV) IsFalse() bool { return a == False }

// IsUnknown reports whether a is Unknown.
func (a TV) IsUnknown() bool { return a == Unknown }

// String returns "true", "false" or "unknown".
func (a TV) String() string {
	switch a {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}
