package tvl

import (
	"testing"
	"testing/quick"
)

var all = []TV{False, Unknown, True}

func TestTruthTables(t *testing.T) {
	type row struct{ a, b, and, or TV }
	rows := []row{
		{True, True, True, True},
		{True, Unknown, Unknown, True},
		{True, False, False, True},
		{Unknown, Unknown, Unknown, Unknown},
		{Unknown, False, False, Unknown},
		{False, False, False, False},
	}
	for _, r := range rows {
		for _, swap := range []bool{false, true} {
			a, b := r.a, r.b
			if swap {
				a, b = b, a
			}
			if got := a.And(b); got != r.and {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, r.and)
			}
			if got := a.Or(b); got != r.or {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, r.or)
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("negation table wrong")
	}
}

func TestPredicatesAndString(t *testing.T) {
	if !True.IsTrue() || True.IsFalse() || True.IsUnknown() {
		t.Error("True predicates wrong")
	}
	if !False.IsFalse() || False.IsTrue() {
		t.Error("False predicates wrong")
	}
	if !Unknown.IsUnknown() {
		t.Error("Unknown predicates wrong")
	}
	want := map[TV]string{True: "true", False: "false", Unknown: "unknown"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("String(%d) = %q, want %q", v, v.String(), s)
		}
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != True || FromBool(false) != False {
		t.Error("FromBool wrong")
	}
}

// TestDeMorgan checks ¬(a ∧ b) = ¬a ∨ ¬b over all of 3VL — the law the
// paper relies on to propagate negation through conditions.
func TestDeMorgan(t *testing.T) {
	for _, a := range all {
		for _, b := range all {
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan fails for %v, %v", a, b)
			}
			if a.Or(b).Not() != a.Not().And(b.Not()) {
				t.Errorf("dual De Morgan fails for %v, %v", a, b)
			}
		}
	}
}

// TestKleeneLattice property-checks that And/Or are min/max in the
// order False < Unknown < True, hence associative, commutative,
// idempotent, and monotone.
func TestKleeneLattice(t *testing.T) {
	norm := func(x uint8) TV { return all[int(x)%3] }
	if err := quick.Check(func(x, y, z uint8) bool {
		a, b, c := norm(x), norm(y), norm(z)
		return a.And(b) == b.And(a) &&
			a.Or(b) == b.Or(a) &&
			a.And(a) == a && a.Or(a) == a &&
			a.And(b.And(c)) == a.And(b).And(c) &&
			a.Or(b.Or(c)) == a.Or(b).Or(c) &&
			a.And(b.Or(a)) == a && // absorption
			a.Not().Not() == a
	}, nil); err != nil {
		t.Error(err)
	}
}
