package compile_test

import (
	"strings"
	"testing"

	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/value"
)

func testSchema() *schema.Schema {
	s := schema.New()
	s.MustAdd(&schema.Relation{Name: "t", Attrs: []schema.Attribute{
		{Name: "a", Type: value.KindInt, Nullable: true},
		{Name: "b", Type: value.KindInt, Nullable: true},
	}})
	s.MustAdd(&schema.Relation{Name: "u", Attrs: []schema.Attribute{
		{Name: "x", Type: value.KindInt, Nullable: true},
		{Name: "y", Type: value.KindString, Nullable: true},
	}})
	return s
}

func mustCompile(t *testing.T, src string, params compile.Params) *compile.Compiled {
	t.Helper()
	q, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := compile.Compile(q, testSchema(), params)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return c
}

func TestCompileShapes(t *testing.T) {
	cases := []struct {
		src      string
		params   compile.Params
		contains []string
		arity    int
	}{
		{
			src:      `SELECT a FROM t`,
			contains: []string{"π[0](t)"},
			arity:    1,
		},
		{
			src:      `SELECT a, b FROM t WHERE a = 1`,
			contains: []string{"σ[#0 = 1]"},
			arity:    2,
		},
		{
			src:      `SELECT a FROM t, u WHERE a = x`,
			contains: []string{"(t × u)", "#0 = #2"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.a)`,
			contains: []string{"⋉[#2 = #0]"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.x = t.a)`,
			contains: []string{"▷[#2 = #0]"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t WHERE a IN (SELECT x FROM u)`,
			contains: []string{"⋉[#0 = #2]"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t WHERE a IN (1, 2)`,
			contains: []string{"#0 = 1 OR #0 = 2"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t WHERE a NOT IN (1, 2)`,
			contains: []string{"#0 <> 1 AND #0 <> 2"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t WHERE a IN ($keys)`,
			params:   compile.Params{"keys": []int64{5, 6, 7}},
			contains: []string{"#0 = 5 OR #0 = 6 OR #0 = 7"},
			arity:    1,
		},
		{
			src:      `SELECT DISTINCT a FROM t`,
			contains: []string{"δ(π[0](t))"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t UNION SELECT x FROM u`,
			contains: []string{"∪"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t EXCEPT SELECT x FROM u`,
			contains: []string{"−"},
			arity:    1,
		},
		{
			src:      `SELECT a FROM t WHERE b > (SELECT AVG(x) FROM u)`,
			contains: []string{"scalar[AVG(#0)"},
			arity:    1,
		},
		{
			src:      `WITH v AS (SELECT x FROM u WHERE x = 1) SELECT a FROM t, v WHERE a = x`,
			contains: []string{"π[0](σ[#0 = 1](u))"},
			arity:    1,
		},
		{
			src:      `SELECT * FROM t`,
			contains: []string{"π[0,1](t)"},
			arity:    2,
		},
		{
			src:      `SELECT y FROM u WHERE y LIKE '%'||$c||'%'`,
			params:   compile.Params{"c": "red"},
			contains: []string{"#1 LIKE '%red%'"},
			arity:    1,
		},
	}
	for _, c := range cases {
		got := mustCompile(t, c.src, c.params)
		key := got.Expr.Key()
		for _, want := range c.contains {
			if !strings.Contains(key, want) {
				t.Errorf("%s\n  compiled to %s\n  missing %q", c.src, key, want)
			}
		}
		if got.Expr.Arity() != c.arity {
			t.Errorf("%s: arity %d, want %d", c.src, got.Expr.Arity(), c.arity)
		}
	}
}

func TestCompileColumnNames(t *testing.T) {
	c := mustCompile(t, `SELECT b, a FROM t`, nil)
	if len(c.Columns) != 2 || c.Columns[0] != "b" || c.Columns[1] != "a" {
		t.Errorf("Columns = %v", c.Columns)
	}
	star := mustCompile(t, `SELECT * FROM t, u`, nil)
	if len(star.Columns) != 4 || star.Columns[2] != "x" {
		t.Errorf("star Columns = %v", star.Columns)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []struct {
		src    string
		params compile.Params
		want   string
	}{
		{`SELECT a FROM nope`, nil, "unknown table"},
		{`SELECT z FROM t`, nil, "unknown column"},
		{`SELECT nope.a FROM t`, nil, "unknown table or alias"},
		{`SELECT t.z FROM t`, nil, "not found"},
		{`SELECT a FROM t WHERE a = $p`, nil, "unbound parameter"},
		{`SELECT a FROM t UNION SELECT x, y FROM u`, nil, "arities"},
		{`SELECT a FROM t WHERE a = 1 OR EXISTS (SELECT * FROM u)`, nil, "top-level WHERE conjunct"},
		{`SELECT a FROM t WHERE a IN (SELECT x, y FROM u)`, nil, "exactly one column"},
		{`SELECT a FROM t WHERE a > (SELECT x FROM u)`, nil, "aggregate"},
		{`SELECT a, AVG(b) FROM t`, nil, "GROUP BY"},
		{`SELECT a FROM t GROUP BY a ORDER BY b`, nil, "not in the select list"},
		{`SELECT a FROM t ORDER BY 5`, nil, "out of range"},
		{`SELECT a FROM t WHERE EXISTS (SELECT x FROM u GROUP BY x)`, nil, "GROUP BY is not supported"},
		{`SELECT a FROM t WHERE a IN (SELECT x FROM u LIMIT 1)`, nil, "LIMIT is not supported"},
		{`SELECT a FROM t WHERE a = $list`, compile.Params{"list": []int64{1, 2}}, "scalar position"},
		{`SELECT a FROM t WHERE b IN ($x)`, compile.Params{"x": struct{}{}}, "unsupported type"},
	}
	for _, c := range bad {
		q, err := sql.Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		_, err = compile.Compile(q, testSchema(), c.params)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestCompileTwoLevelCorrelationRejected(t *testing.T) {
	src := `SELECT a FROM t WHERE NOT EXISTS (
	            SELECT * FROM u WHERE EXISTS (
	                SELECT * FROM u u2 WHERE u2.x = t.a))`
	q, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Compile(q, testSchema(), nil); err == nil {
		t.Error("correlation across two block levels accepted")
	}
}

// runSQL compiles and evaluates under SQL 3VL.
func runSQL(t *testing.T, db *table.Database, src string, params compile.Params) *table.Table {
	t.Helper()
	q, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile.Compile(q, db.Schema, params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.New(db, eval.Options{Semantics: value.SQL3VL}).Eval(c.Expr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestNotInVsNotExistsNullSemantics captures SQL's classic trap, which
// the compiler must preserve: with U = {NULL}, `a NOT IN (SELECT x FROM
// u)` filters everything out (the comparison is unknown) while the
// equivalent-looking NOT EXISTS keeps the row.
func TestNotInVsNotExistsNullSemantics(t *testing.T) {
	db := table.NewDatabase(testSchema())
	if err := db.Insert("t", table.Row{value.Int(1), value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("u", table.Row{db.FreshNull(), value.Str("s")}); err != nil {
		t.Fatal(err)
	}

	notIn := runSQL(t, db, `SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)`, nil)
	if notIn.Len() != 0 {
		t.Errorf("NOT IN with a null in the subquery returned %v, want empty", notIn.SortedStrings())
	}
	notExists := runSQL(t, db, `SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.x = t.a)`, nil)
	if notExists.Len() != 1 {
		t.Errorf("NOT EXISTS returned %v, want one row", notExists.SortedStrings())
	}
	// And IN with a null neither matches nor excludes.
	in := runSQL(t, db, `SELECT a FROM t WHERE a IN (SELECT x FROM u)`, nil)
	if in.Len() != 0 {
		t.Errorf("IN over {NULL} returned %v, want empty", in.SortedStrings())
	}
	// NOT IN with an empty subquery keeps the row.
	db2 := table.NewDatabase(testSchema())
	if err := db2.Insert("t", table.Row{value.Int(1), value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if got := runSQL(t, db2, `SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)`, nil); got.Len() != 1 {
		t.Errorf("NOT IN over empty subquery returned %v, want one row", got.SortedStrings())
	}
	// NOT IN where the *outer* operand is null also excludes the row.
	db3 := table.NewDatabase(testSchema())
	if err := db3.Insert("t", table.Row{db3.FreshNull(), value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db3.Insert("u", table.Row{value.Int(7), value.Str("s")}); err != nil {
		t.Fatal(err)
	}
	if got := runSQL(t, db3, `SELECT b FROM t WHERE a NOT IN (SELECT x FROM u)`, nil); got.Len() != 0 {
		t.Errorf("NULL NOT IN {7} returned %v, want empty", got.SortedStrings())
	}
}

func TestCompileParamKinds(t *testing.T) {
	db := table.NewDatabase(testSchema())
	if err := db.Insert("t", table.Row{value.Int(5), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]compile.Params{
		"int":   {"p": 5},
		"int64": {"p": int64(5)},
		"value": {"p": value.Int(5)},
		"float": {"p": 5.0},
	} {
		got := runSQL(t, db, `SELECT a FROM t WHERE a = $p`, p)
		if got.Len() != 1 {
			t.Errorf("param kind %s: got %d rows", name, got.Len())
		}
	}
	// String and bool params compile too.
	if err := db.Insert("u", table.Row{value.Int(1), value.Str("red")}); err != nil {
		t.Fatal(err)
	}
	got := runSQL(t, db, `SELECT x FROM u WHERE y = $s`, compile.Params{"s": "red"})
	if got.Len() != 1 {
		t.Errorf("string param: %d rows", got.Len())
	}
}

func TestScalarSubqueryBehavior(t *testing.T) {
	db := table.NewDatabase(testSchema())
	for _, v := range []int64{2, 4, 6} {
		if err := db.Insert("u", table.Row{value.Int(v), value.Str("s")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("t", table.Row{value.Int(5), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", table.Row{value.Int(3), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	// AVG(x) = 4: only a = 5 exceeds it.
	got := runSQL(t, db, `SELECT a FROM t WHERE a > (SELECT AVG(x) FROM u)`, nil)
	if got.Len() != 1 || got.Row(0)[0] != value.Int(5) {
		t.Errorf("AVG comparison: %v", got.SortedStrings())
	}
	// Aggregate over the empty set is NULL: comparison unknown, no rows.
	got2 := runSQL(t, db, `SELECT a FROM t WHERE a > (SELECT AVG(x) FROM u WHERE x > 100)`, nil)
	if got2.Len() != 0 {
		t.Errorf("comparison against empty AVG returned %v", got2.SortedStrings())
	}
	// COUNT over the empty set is 0.
	got3 := runSQL(t, db, `SELECT a FROM t WHERE a > (SELECT COUNT(*) FROM u WHERE x > 100)`, nil)
	if got3.Len() != 2 {
		t.Errorf("comparison against empty COUNT returned %v", got3.SortedStrings())
	}
	// MIN and MAX.
	if got := runSQL(t, db, `SELECT a FROM t WHERE a > (SELECT MIN(x) FROM u)`, nil); got.Len() != 2 {
		t.Errorf("MIN: %v", got.SortedStrings())
	}
	if got := runSQL(t, db, `SELECT a FROM t WHERE a > (SELECT MAX(x) FROM u)`, nil); got.Len() != 0 {
		t.Errorf("MAX: %v", got.SortedStrings())
	}
	if got := runSQL(t, db, `SELECT a FROM t WHERE a < (SELECT SUM(x) FROM u)`, nil); got.Len() != 2 {
		t.Errorf("SUM: %v", got.SortedStrings())
	}
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	db := table.NewDatabase(testSchema())
	if err := db.Insert("u", table.Row{value.Int(10), value.Str("s")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("u", table.Row{db.FreshNull(), value.Str("s")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", table.Row{value.Int(9), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	// AVG ignores the null: avg = 10, so 9 < 10 keeps the row.
	got := runSQL(t, db, `SELECT a FROM t WHERE a < (SELECT AVG(x) FROM u)`, nil)
	if got.Len() != 1 {
		t.Errorf("AVG over {10, NULL}: %v", got.SortedStrings())
	}
	// COUNT(*) counts rows (2), COUNT semantics on the starred form.
	got2 := runSQL(t, db, `SELECT a FROM t WHERE a > (SELECT COUNT(*) FROM u)`, nil)
	if got2.Len() != 1 {
		t.Errorf("COUNT(*) = 2 expected: %v", got2.SortedStrings())
	}
}

func TestViewsAreVisibleOnlyInScope(t *testing.T) {
	// A WITH view must not leak into a sibling query compilation.
	q1, err := sql.Parse(`WITH v AS (SELECT x FROM u) SELECT a FROM t, v WHERE a = x`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Compile(q1, testSchema(), nil); err != nil {
		t.Fatalf("view compile: %v", err)
	}
	q2, err := sql.Parse(`SELECT a FROM t, v WHERE a = x`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Compile(q2, testSchema(), nil); err == nil {
		t.Error("view leaked across compilations")
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := table.NewDatabase(testSchema())
	if err := db.Insert("t", table.Row{value.Int(1), value.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", table.Row{value.Int(2), value.Int(3)}); err != nil {
		t.Fatal(err)
	}
	// Chain: t1.b = t2.a.
	got := runSQL(t, db, `SELECT t1.a, t2.b FROM t t1, t t2 WHERE t1.b = t2.a`, nil)
	if got.Len() != 1 || got.Row(0)[0] != value.Int(1) || got.Row(0)[1] != value.Int(3) {
		t.Errorf("self join: %v", got.SortedStrings())
	}
}

func TestDateLiteralComparison(t *testing.T) {
	s := schema.New()
	s.MustAdd(&schema.Relation{Name: "d", Attrs: []schema.Attribute{
		{Name: "when", Type: value.KindDate, Nullable: true},
	}})
	db := table.NewDatabase(s)
	if err := db.Insert("d", table.Row{value.MustDate("1995-06-15")}); err != nil {
		t.Fatal(err)
	}
	got := runSQL(t, db, `SELECT when FROM d WHERE when > $cutoff`,
		compile.Params{"cutoff": value.MustDate("1995-01-01")})
	if got.Len() != 1 {
		t.Errorf("date comparison: %v", got.SortedStrings())
	}
}
