package compile_test

import (
	"strings"
	"testing"

	"certsql/internal/compile"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/value"
)

// Aggregation, ORDER BY and LIMIT behaviour tests (standard evaluation
// mode; the certain mode rejects these — see the root API tests).

func aggDB(t *testing.T) *table.Database {
	t.Helper()
	db := table.NewDatabase(testSchema())
	rows := []struct {
		a int64
		b any // int64 or nil for NULL
	}{
		{1, int64(10)},
		{1, int64(20)},
		{1, nil},
		{2, int64(5)},
		{2, int64(7)},
		{3, nil},
	}
	for _, r := range rows {
		var bv value.Value
		if r.b == nil {
			bv = db.FreshNull()
		} else {
			bv = value.Int(r.b.(int64))
		}
		if err := db.Insert("t", table.Row{value.Int(r.a), bv}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestGroupByAggregates(t *testing.T) {
	db := aggDB(t)
	got := runSQL(t, db, `SELECT a, COUNT(*), COUNT(b), SUM(b), AVG(b), MIN(b), MAX(b)
	                      FROM t GROUP BY a ORDER BY a`, nil)
	if got.Len() != 3 {
		t.Fatalf("groups: %v", got.SortedStrings())
	}
	// Group a=1: count(*)=3, count(b)=2 (null ignored), sum=30, avg=15.
	g1 := got.Row(0)
	want1 := []string{"1", "3", "2", "30", "15", "10", "20"}
	for i, w := range want1 {
		if g1[i].String() != w {
			t.Errorf("group 1 col %d = %s, want %s", i, g1[i], w)
		}
	}
	// Group a=3: only a null value — count(b)=0, SUM/AVG/MIN/MAX NULL.
	g3 := got.Row(2)
	if g3[1].String() != "1" || g3[2].String() != "0" {
		t.Errorf("group 3 counts: %v", g3)
	}
	for _, i := range []int{3, 4, 5, 6} {
		if !g3[i].IsNull() {
			t.Errorf("group 3 col %d = %v, want NULL", i, g3[i])
		}
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	db := table.NewDatabase(testSchema())
	got := runSQL(t, db, `SELECT COUNT(*), SUM(a) FROM t`, nil)
	if got.Len() != 1 {
		t.Fatalf("global aggregate over empty input: %d rows, want 1", got.Len())
	}
	if got.Row(0)[0].String() != "0" || !got.Row(0)[1].IsNull() {
		t.Errorf("empty input aggregates: %v", got.Row(0))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := aggDB(t)
	got := runSQL(t, db, `SELECT a, b FROM t ORDER BY b DESC, a LIMIT 3`, nil)
	if got.Len() != 3 {
		t.Fatalf("limit: %d rows", got.Len())
	}
	// DESC puts nulls first (reverse of NULLS LAST), then 20, 10.
	if !got.Row(0)[1].IsNull() || !got.Row(1)[1].IsNull() {
		t.Errorf("DESC null placement: %v", got.Rows())
	}
	// Ties on b (both null) break by a ascending: 1 before 3.
	if got.Row(0)[0].String() != "1" || got.Row(1)[0].String() != "3" {
		t.Errorf("tie-break order: %v, %v", got.Row(0), got.Row(1))
	}

	asc := runSQL(t, db, `SELECT b FROM t ORDER BY b`, nil)
	if asc.Row(0)[0].IsNull() {
		t.Errorf("ASC must put nulls last: %v", asc.Rows())
	}
	last := asc.Row(asc.Len() - 1)[0]
	if !last.IsNull() {
		t.Errorf("ASC last value = %v, want NULL", last)
	}

	// Positional ORDER BY.
	pos := runSQL(t, db, `SELECT a, b FROM t ORDER BY 1 DESC LIMIT 1`, nil)
	if pos.Row(0)[0].String() != "3" {
		t.Errorf("ORDER BY 1 DESC: %v", pos.Row(0))
	}

	// LIMIT 0 and LIMIT beyond the result size.
	if z := runSQL(t, db, `SELECT a FROM t LIMIT 0`, nil); z.Len() != 0 {
		t.Errorf("LIMIT 0: %d rows", z.Len())
	}
	if all := runSQL(t, db, `SELECT a FROM t LIMIT 100`, nil); all.Len() != 6 {
		t.Errorf("LIMIT 100: %d rows", all.Len())
	}
}

func TestAggregateWithWhereAndJoin(t *testing.T) {
	db := aggDB(t)
	for _, x := range []int64{1, 2} {
		if err := db.Insert("u", table.Row{value.Int(x), value.Str("s")}); err != nil {
			t.Fatal(err)
		}
	}
	got := runSQL(t, db, `SELECT a, COUNT(*) FROM t, u WHERE a = x AND b IS NOT NULL GROUP BY a ORDER BY a`, nil)
	if got.Len() != 2 {
		t.Fatalf("join+aggregate: %v", got.SortedStrings())
	}
	if got.Row(0)[1].String() != "2" || got.Row(1)[1].String() != "2" {
		t.Errorf("counts: %v", got.SortedStrings())
	}
}

func TestGroupByColumnNames(t *testing.T) {
	db := aggDB(t)
	c := mustCompile(t, `SELECT a, COUNT(*), AVG(b) FROM t GROUP BY a`, nil)
	want := []string{"a", "count", "avg"}
	if len(c.Columns) != 3 {
		t.Fatalf("Columns = %v", c.Columns)
	}
	for i, w := range want {
		if c.Columns[i] != w {
			t.Errorf("Columns[%d] = %q, want %q", i, c.Columns[i], w)
		}
	}
	_ = db
}

func TestOrderByIsDeterministicAndStable(t *testing.T) {
	db := aggDB(t)
	a := runSQL(t, db, `SELECT a, b FROM t ORDER BY a`, nil)
	b := runSQL(t, db, `SELECT a, b FROM t ORDER BY a`, nil)
	if strings.Join(rowsAsStrings(a), "|") != strings.Join(rowsAsStrings(b), "|") {
		t.Error("ORDER BY result not deterministic")
	}
	// Stability: within a = 1, insertion order 10, 20, NULL preserved.
	if a.Row(0)[1].String() != "10" || a.Row(1)[1].String() != "20" {
		t.Errorf("stable sort violated: %v", rowsAsStrings(a))
	}
}

func rowsAsStrings(t *table.Table) []string {
	out := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

func TestHaving(t *testing.T) {
	db := aggDB(t)
	// Groups: a=1 (count 3), a=2 (count 2), a=3 (count 1).
	got := runSQL(t, db, `SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= 2 ORDER BY a`, nil)
	if got.Len() != 2 {
		t.Fatalf("HAVING filtered to %v", got.SortedStrings())
	}
	if got.Row(0)[0].String() != "1" || got.Row(1)[0].String() != "2" {
		t.Errorf("groups kept: %v", got.SortedStrings())
	}

	// HAVING may use aggregates absent from the select list.
	got2 := runSQL(t, db, `SELECT a FROM t GROUP BY a HAVING SUM(b) > 10 AND COUNT(*) > 0`, nil)
	// sum(b): a=1 -> 30, a=2 -> 12, a=3 -> NULL (comparison unknown).
	if got2.Len() != 2 {
		t.Fatalf("HAVING with hidden aggregates: %v", got2.SortedStrings())
	}

	// HAVING on a key column.
	got3 := runSQL(t, db, `SELECT a, COUNT(*) FROM t GROUP BY a HAVING a <> 2`, nil)
	if got3.Len() != 2 {
		t.Errorf("HAVING on key: %v", got3.SortedStrings())
	}

	// HAVING without GROUP BY: global aggregate filtered.
	got4 := runSQL(t, db, `SELECT COUNT(*) FROM t HAVING COUNT(*) > 100`, nil)
	if got4.Len() != 0 {
		t.Errorf("global HAVING: %v", got4.SortedStrings())
	}
	got5 := runSQL(t, db, `SELECT COUNT(*) FROM t HAVING COUNT(*) > 1`, nil)
	if got5.Len() != 1 {
		t.Errorf("global HAVING keep: %v", got5.SortedStrings())
	}

	// HAVING over a non-grouped bare column is rejected.
	q, err := sql.Parse(`SELECT a, COUNT(*) FROM t GROUP BY a HAVING b > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Compile(q, db.Schema, nil); err == nil {
		t.Error("HAVING on a non-grouped column accepted")
	}
	// Aggregates remain illegal in WHERE.
	q2, err := sql.Parse(`SELECT a FROM t WHERE COUNT(*) > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Compile(q2, db.Schema, nil); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
}
