// Package compile translates SQL ASTs into relational algebra.
//
// The translation follows the standard textbook scheme (the paper cites
// Van den Bussche & Vansummeren's course notes for the full version):
// each SELECT-FROM-WHERE block becomes a selection over the Cartesian
// product of its FROM items, (NOT) EXISTS and (NOT) IN subqueries become
// (anti-)semijoins whose condition spans the concatenated outer and
// inner tuples, and the select list becomes a projection. WITH views
// compile once and are referenced structurally (the evaluator's subplan
// cache makes repeated references cheap, mirroring the paper's use of
// WITH to factor shared subqueries in Q⁺4).
//
// NOT IN receives SQL's actual semantics: `x NOT IN (sub)` keeps a row
// only when every comparison is false, which the compiler expresses as
// an antijoin on the weakened condition (x = y OR x IS NULL OR y IS
// NULL) — an antijoin finding a true disjunct is exactly a comparison
// that is true or unknown.
package compile

import (
	"fmt"
	"strconv"
	"strings"

	"certsql/internal/algebra"
	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/value"
)

// Params binds $name parameters to values. Accepted kinds per entry:
// value.Value, []value.Value (for IN lists), string, int, int64,
// float64, bool.
type Params map[string]any

// Compiled is the result of compiling a query.
type Compiled struct {
	Expr    algebra.Expr
	Columns []string
}

// Compile translates q over the given schema with the given parameter
// bindings.
func Compile(q *sql.Query, sch *schema.Schema, params Params) (*Compiled, error) {
	c := &compiler{sch: sch, params: params, views: map[string]*Compiled{}}
	return c.compileQuery(q, nil)
}

type compiler struct {
	sch    *schema.Schema
	params Params
	views  map[string]*Compiled
}

// scopeEntry is one FROM item in scope: its visible name, column names,
// and the offset of its first column in the enclosing tuple.
type scopeEntry struct {
	name   string
	attrs  []string
	offset int
}

// scope is a name-resolution environment. outer is the enclosing block's
// scope (for correlated subqueries); when resolving through it, column
// indexes are reported as negative "outer handles" translated by the
// caller — here instead we keep absolute indexes and let the block
// compiler choose offsets, so scope simply records entries.
type scope struct {
	entries []scopeEntry
	outer   *scope
}

// resolve returns the absolute column index for a reference and whether
// it was found in this scope (as opposed to an enclosing one).
func (s *scope) resolve(ref sql.ColRef) (idx int, local bool, err error) {
	for _, e := range s.entries {
		if ref.Qualifier != "" && !strings.EqualFold(ref.Qualifier, e.name) {
			continue
		}
		for i, a := range e.attrs {
			if strings.EqualFold(a, ref.Name) {
				return e.offset + i, true, nil
			}
		}
		if ref.Qualifier != "" {
			return 0, false, fmt.Errorf("compile: column %s not found in %s", ref.Name, e.name)
		}
	}
	if s.outer != nil {
		idx, _, err := s.outer.resolve(ref)
		return idx, false, err
	}
	if ref.Qualifier != "" {
		return 0, false, fmt.Errorf("compile: unknown table or alias %q", ref.Qualifier)
	}
	return 0, false, fmt.Errorf("compile: unknown column %q", ref.Name)
}

func (c *compiler) compileQuery(q *sql.Query, outer *scope) (*Compiled, error) {
	saved := map[string]*Compiled{}
	for name := range c.views {
		saved[name] = c.views[name]
	}
	defer func() { c.views = saved }()
	for _, cte := range q.With {
		v, err := c.compileQueryExpr(cte.Body, nil)
		if err != nil {
			return nil, fmt.Errorf("compile: view %s: %w", cte.Name, err)
		}
		c.views[strings.ToLower(cte.Name)] = v
	}
	return c.compileQueryExpr(q.Body, outer)
}

func (c *compiler) compileQueryExpr(qe sql.QueryExpr, outer *scope) (*Compiled, error) {
	switch qe := qe.(type) {
	case sql.SetOp:
		l, err := c.compileQueryExpr(qe.L, outer)
		if err != nil {
			return nil, err
		}
		r, err := c.compileQueryExpr(qe.R, outer)
		if err != nil {
			return nil, err
		}
		if l.Expr.Arity() != r.Expr.Arity() {
			return nil, fmt.Errorf("compile: %s of arities %d and %d", qe.Op, l.Expr.Arity(), r.Expr.Arity())
		}
		var e algebra.Expr
		switch qe.Op {
		case sql.OpUnion:
			e = algebra.Union{L: l.Expr, R: r.Expr}
		case sql.OpIntersect:
			e = algebra.Intersect{L: l.Expr, R: r.Expr}
		default:
			e = algebra.Diff{L: l.Expr, R: r.Expr}
		}
		return &Compiled{Expr: e, Columns: l.Columns}, nil
	case *sql.SelectStmt:
		expr, cols, err := c.compileSelect(qe, outer, true)
		if err != nil {
			return nil, err
		}
		return &Compiled{Expr: expr, Columns: cols}, nil
	default:
		return nil, fmt.Errorf("compile: unknown query expression %T", qe)
	}
}

// block is the compiled FROM-WHERE part of a select statement, before
// projection: the product of the FROM items with local filters and
// local (anti-)semijoins applied, plus the conjuncts that reference the
// enclosing block (returned to the caller to become semijoin conditions).
type block struct {
	expr      algebra.Expr
	sc        *scope
	crossCond []algebra.Cond // conditions referencing the outer scope
}

// compileSelect compiles a full select statement. When project is false
// the projection and DISTINCT are skipped and the full block is
// returned (used for EXISTS subqueries, whose select list is
// irrelevant).
func (c *compiler) compileSelect(s *sql.SelectStmt, outer *scope, project bool) (algebra.Expr, []string, error) {
	blk, err := c.compileBlock(s, outer, 0)
	if err != nil {
		return nil, nil, err
	}
	if len(blk.crossCond) > 0 {
		return nil, nil, fmt.Errorf("compile: correlated reference outside a subquery")
	}
	if !project {
		cols := make([]string, 0)
		for _, e := range blk.sc.entries {
			cols = append(cols, e.attrs...)
		}
		return blk.expr, cols, nil
	}

	if aggregated(s) {
		return c.compileAggregate(s, blk)
	}

	var cols []int
	var names []string
	if s.Star {
		for i := 0; i < blk.expr.Arity(); i++ {
			cols = append(cols, i)
		}
		for _, e := range blk.sc.entries {
			names = append(names, e.attrs...)
		}
	} else {
		for _, item := range s.Items {
			ref, ok := item.Expr.(sql.ColRef)
			if !ok {
				return nil, nil, fmt.Errorf("compile: select item %T is only supported in scalar subqueries", item.Expr)
			}
			idx, local, err := blk.sc.resolve(ref)
			if err != nil {
				return nil, nil, err
			}
			if !local {
				return nil, nil, fmt.Errorf("compile: select item %s references an outer block", ref.Name)
			}
			cols = append(cols, idx)
			names = append(names, ref.Name)
		}
	}
	var out algebra.Expr = algebra.Project{Child: blk.expr, Cols: cols}
	if s.Distinct {
		out = algebra.Distinct{Child: out}
	}
	return c.applyOrderLimit(s, out, names)
}

// aggregated reports whether the select needs a grouping pipeline.
func aggregated(s *sql.SelectStmt) bool {
	if len(s.GroupBy) > 0 || s.Having != nil {
		return true
	}
	for _, item := range s.Items {
		if _, ok := item.Expr.(sql.AggCall); ok {
			return true
		}
	}
	return false
}

// compileAggregate builds γ over the block, projects the select list,
// and applies ORDER BY / LIMIT. SQL's rule is enforced: non-aggregate
// select items must appear in GROUP BY.
func (c *compiler) compileAggregate(s *sql.SelectStmt, blk *block) (algebra.Expr, []string, error) {
	if s.Star {
		return nil, nil, fmt.Errorf("compile: SELECT * cannot be combined with aggregation")
	}
	var keys []int
	keyPos := map[int]int{} // block column -> key index
	for _, g := range s.GroupBy {
		idx, local, err := blk.sc.resolve(g)
		if err != nil {
			return nil, nil, err
		}
		if !local {
			return nil, nil, fmt.Errorf("compile: GROUP BY column %s references an outer block", g.Name)
		}
		if _, dup := keyPos[idx]; !dup {
			keyPos[idx] = len(keys)
			keys = append(keys, idx)
		}
	}

	var aggs []algebra.AggSpec
	var cols []int // positions in the GroupBy output, per select item
	var names []string
	for _, item := range s.Items {
		switch e := item.Expr.(type) {
		case sql.ColRef:
			idx, local, err := blk.sc.resolve(e)
			if err != nil {
				return nil, nil, err
			}
			if !local {
				return nil, nil, fmt.Errorf("compile: select item %s references an outer block", e.Name)
			}
			pos, ok := keyPos[idx]
			if !ok {
				return nil, nil, fmt.Errorf("compile: column %s must appear in GROUP BY or inside an aggregate", e.Name)
			}
			cols = append(cols, pos)
			names = append(names, e.Name)
		case sql.AggCall:
			spec, err := c.aggSpec(e, blk)
			if err != nil {
				return nil, nil, err
			}
			cols = append(cols, len(keys)+addAggSpec(&aggs, spec))
			names = append(names, strings.ToLower(e.Func))
		default:
			return nil, nil, fmt.Errorf("compile: unsupported select item %T in an aggregate query", item.Expr)
		}
	}

	// HAVING filters the groups; its aggregates may extend the computed
	// list beyond the select items.
	var having algebra.Cond
	if s.Having != nil {
		h, err := c.compileHaving(s.Having, blk, keyPos, &aggs, len(keys))
		if err != nil {
			return nil, nil, err
		}
		having = h
	}

	var grouped algebra.Expr = algebra.GroupBy{Child: blk.expr, Keys: keys, Aggs: aggs}
	if having != nil {
		grouped = algebra.Select{Child: grouped, Cond: having}
	}
	var out algebra.Expr = algebra.Project{Child: grouped, Cols: cols}
	if s.Distinct {
		out = algebra.Distinct{Child: out}
	}
	return c.applyOrderLimit(s, out, names)
}

// aggSpec converts an AggCall into an AggSpec over block columns.
func (c *compiler) aggSpec(e sql.AggCall, blk *block) (algebra.AggSpec, error) {
	spec := algebra.AggSpec{Col: -1}
	switch e.Func {
	case "AVG":
		spec.Func = algebra.AggAvg
	case "SUM":
		spec.Func = algebra.AggSum
	case "COUNT":
		spec.Func = algebra.AggCount
	case "MIN":
		spec.Func = algebra.AggMin
	case "MAX":
		spec.Func = algebra.AggMax
	}
	if e.Arg != nil {
		ref, ok := e.Arg.(sql.ColRef)
		if !ok {
			return spec, fmt.Errorf("compile: aggregate argument must be a column")
		}
		idx, local, err := blk.sc.resolve(ref)
		if err != nil {
			return spec, err
		}
		if !local {
			return spec, fmt.Errorf("compile: aggregate over an outer column")
		}
		spec.Col = idx
	} else if spec.Func != algebra.AggCount {
		return spec, fmt.Errorf("compile: %s(*) is not valid", e.Func)
	}
	return spec, nil
}

// addAggSpec appends spec unless an identical one exists, returning its
// index in the aggregate list.
func addAggSpec(aggs *[]algebra.AggSpec, spec algebra.AggSpec) int {
	for i, a := range *aggs {
		if a == spec {
			return i
		}
	}
	*aggs = append(*aggs, spec)
	return len(*aggs) - 1
}

// compileHaving compiles the HAVING condition over the GroupBy output
// (group keys first, then aggregates).
func (c *compiler) compileHaving(e sql.Expr, blk *block, keyPos map[int]int, aggs *[]algebra.AggSpec, nKeys int) (algebra.Cond, error) {
	operand := func(x sql.Expr) (algebra.Operand, error) {
		switch x := x.(type) {
		case sql.AggCall:
			spec, err := c.aggSpec(x, blk)
			if err != nil {
				return nil, err
			}
			return algebra.Col{Idx: nKeys + addAggSpec(aggs, spec)}, nil
		case sql.ColRef:
			idx, local, err := blk.sc.resolve(x)
			if err != nil {
				return nil, err
			}
			if !local {
				return nil, fmt.Errorf("compile: HAVING references an outer block")
			}
			pos, ok := keyPos[idx]
			if !ok {
				return nil, fmt.Errorf("compile: HAVING column %s must appear in GROUP BY or inside an aggregate", x.Name)
			}
			return algebra.Col{Idx: pos}, nil
		default:
			vals, err := c.operandValues(x)
			if err != nil {
				return nil, err
			}
			if len(vals) != 1 {
				return nil, fmt.Errorf("compile: list parameter in HAVING")
			}
			return algebra.Lit{Val: vals[0]}, nil
		}
	}
	switch e := e.(type) {
	case sql.AndExpr:
		l, err := c.compileHaving(e.L, blk, keyPos, aggs, nKeys)
		if err != nil {
			return nil, err
		}
		r, err := c.compileHaving(e.R, blk, keyPos, aggs, nKeys)
		if err != nil {
			return nil, err
		}
		return algebra.NewAnd(l, r), nil
	case sql.OrExpr:
		l, err := c.compileHaving(e.L, blk, keyPos, aggs, nKeys)
		if err != nil {
			return nil, err
		}
		r, err := c.compileHaving(e.R, blk, keyPos, aggs, nKeys)
		if err != nil {
			return nil, err
		}
		return algebra.NewOr(l, r), nil
	case sql.NotExpr:
		sub, err := c.compileHaving(e.E, blk, keyPos, aggs, nKeys)
		if err != nil {
			return nil, err
		}
		return algebra.Not{C: sub}, nil
	case sql.CmpExpr:
		l, err := operand(e.L)
		if err != nil {
			return nil, err
		}
		r, err := operand(e.R)
		if err != nil {
			return nil, err
		}
		var op algebra.CmpOp
		switch e.Op {
		case "=":
			op = algebra.EQ
		case "<>":
			op = algebra.NE
		case "<":
			op = algebra.LT
		case "<=":
			op = algebra.LE
		case ">":
			op = algebra.GT
		case ">=":
			op = algebra.GE
		}
		return algebra.Cmp{Op: op, L: l, R: r}, nil
	case sql.IsNullExpr:
		o, err := operand(e.E)
		if err != nil {
			return nil, err
		}
		return algebra.NullTest{Operand: o, Negated: e.Negated}, nil
	default:
		return nil, fmt.Errorf("compile: unsupported HAVING condition %T", e)
	}
}

// applyOrderLimit attaches ORDER BY and LIMIT to the projected output.
// ORDER BY keys resolve against the output columns, by name or 1-based
// position.
func (c *compiler) applyOrderLimit(s *sql.SelectStmt, out algebra.Expr, names []string) (algebra.Expr, []string, error) {
	if len(s.OrderBy) > 0 {
		var keys []algebra.SortKey
		for _, o := range s.OrderBy {
			col := -1
			if o.Pos > 0 {
				if o.Pos > len(names) {
					return nil, nil, fmt.Errorf("compile: ORDER BY position %d out of range (%d output columns)", o.Pos, len(names))
				}
				col = o.Pos - 1
			} else {
				for i, n := range names {
					if strings.EqualFold(n, o.Ref.Name) && o.Ref.Qualifier == "" {
						col = i
						break
					}
				}
				if col < 0 {
					return nil, nil, fmt.Errorf("compile: ORDER BY column %q is not in the select list", o.Ref.Name)
				}
			}
			keys = append(keys, algebra.SortKey{Col: col, Desc: o.Desc})
		}
		out = algebra.Sort{Child: out, Keys: keys}
	}
	if s.Limit != nil {
		out = algebra.Limit{Child: out, N: *s.Limit}
	}
	return out, names, nil
}

// compileBlock compiles FROM + WHERE of a select. offset is the column
// position at which this block's product begins in the coordinate system
// of the enclosing semijoin (0 for top-level blocks, nL for subqueries).
//
// Internally the block's own columns are numbered from offset; outer
// references resolve through the outer scope at their own (absolute)
// positions. The returned crossCond conditions are therefore directly
// usable as the semijoin condition over the concatenated outer+inner
// tuple.
func (c *compiler) compileBlock(s *sql.SelectStmt, outer *scope, offset int) (*block, error) {
	sc := &scope{outer: outer}
	var leaves []algebra.Expr
	pos := offset
	for _, ref := range s.From {
		leafExpr, attrs, err := c.fromItem(ref)
		if err != nil {
			return nil, err
		}
		sc.entries = append(sc.entries, scopeEntry{name: ref.Name(), attrs: attrs, offset: pos})
		leaves = append(leaves, leafExpr)
		pos += leafExpr.Arity()
	}
	expr := productOf(leaves)
	arity := pos - offset

	// Split WHERE into plain conjuncts and subquery conjuncts.
	var plain []algebra.Cond
	var cross []algebra.Cond
	type subJoin struct {
		inner algebra.Expr
		cond  algebra.Cond // over concatenated (this block ++ inner) columns
		anti  bool
	}
	var joins []subJoin

	for _, conj := range conjuncts(s.Where) {
		switch e := stripDoubleNot(conj).(type) {
		case sql.ExistsExpr:
			inner, innerCross, err := c.compileSub(e.Sub, sc, offset+arity)
			if err != nil {
				return nil, err
			}
			joins = append(joins, subJoin{inner: inner, cond: algebra.NewAnd(innerCross...), anti: e.Negated})
		case sql.NotExpr:
			sub, ok := stripDoubleNot(e.E).(sql.ExistsExpr)
			if ok {
				inner, innerCross, err := c.compileSub(sub.Sub, sc, offset+arity)
				if err != nil {
					return nil, err
				}
				joins = append(joins, subJoin{inner: inner, cond: algebra.NewAnd(innerCross...), anti: !sub.Negated})
				continue
			}
			if in, ok := stripDoubleNot(e.E).(sql.InExpr); ok && in.Sub != nil {
				j, err := c.compileInSub(in, !in.Negated, sc, offset+arity)
				if err != nil {
					return nil, err
				}
				joins = append(joins, subJoin{inner: j.inner, cond: j.cond, anti: j.anti})
				continue
			}
			cond, err := c.compileCond(conj, sc)
			if err != nil {
				return nil, err
			}
			c.splitLocal(cond, offset, arity, &plain, &cross)
		case sql.InExpr:
			if e.Sub == nil {
				cond, err := c.compileCond(conj, sc)
				if err != nil {
					return nil, err
				}
				c.splitLocal(cond, offset, arity, &plain, &cross)
				continue
			}
			j, err := c.compileInSub(e, e.Negated, sc, offset+arity)
			if err != nil {
				return nil, err
			}
			joins = append(joins, subJoin{inner: j.inner, cond: j.cond, anti: j.anti})
		default:
			cond, err := c.compileCond(conj, sc)
			if err != nil {
				return nil, err
			}
			c.splitLocal(cond, offset, arity, &plain, &cross)
		}
	}

	// Shift this block's columns down to a 0-based local coordinate
	// system for the Select node, then apply subquery joins; semijoin
	// conditions need the block at positions 0..arity-1 and the inner at
	// arity.., so inner compilation used offset+arity already — but the
	// block itself is local, so cross conditions from *this* block's
	// subqueries must shift outer references... To keep coordinates
	// simple, blocks are compiled with offset-based columns and
	// normalized here.
	shift := func(col int) int { return col - offset }
	for _, j := range joins {
		for _, col := range algebra.ColsUsed(j.cond) {
			if col < offset {
				return nil, fmt.Errorf("compile: subquery correlates across more than one block level (column #%d)", col)
			}
		}
	}
	if len(plain) > 0 {
		local := algebra.MapCols(algebra.NewAnd(plain...), shift)
		expr = algebra.Select{Child: expr, Cond: local}
	}
	for _, j := range joins {
		// j.cond uses: this block at offset..offset+arity-1, inner at
		// offset+arity... Normalize to 0-based for the SemiJoin node.
		cond := algebra.MapCols(j.cond, shift)
		expr = algebra.SemiJoin{L: expr, R: j.inner, Cond: cond, Anti: j.anti}
	}
	return &block{expr: expr, sc: sc, crossCond: cross}, nil
}

// splitLocal routes a compiled condition either to the block's local
// selection or to the cross-condition list handed to the enclosing
// semijoin, depending on whether it references outer columns.
func (c *compiler) splitLocal(cond algebra.Cond, offset, arity int, plain, cross *[]algebra.Cond) {
	local := true
	for _, col := range algebra.ColsUsed(cond) {
		if col < offset || col >= offset+arity {
			local = false
			break
		}
	}
	if local {
		*plain = append(*plain, cond)
	} else {
		*cross = append(*cross, cond)
	}
}

// compileSub compiles an EXISTS subquery body. innerOffset is where the
// subquery's columns start in the semijoin coordinate system. It
// returns the inner expression (self-contained, 0-based) and the cross
// conditions (in semijoin coordinates: outer block columns as resolved
// by the outer scope, inner columns from innerOffset).
func (c *compiler) compileSub(q *sql.Query, outer *scope, innerOffset int) (algebra.Expr, []algebra.Cond, error) {
	if len(q.With) > 0 {
		return nil, nil, fmt.Errorf("compile: WITH inside a subquery is not supported")
	}
	sel, ok := q.Body.(*sql.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("compile: set operations inside EXISTS are not supported")
	}
	if err := noDecoration(sel, "EXISTS subquery"); err != nil {
		return nil, nil, err
	}
	blk, err := c.compileBlock(sel, outer, innerOffset)
	if err != nil {
		return nil, nil, err
	}
	// The inner expression was compiled with local columns normalized to
	// 0-based inside compileBlock; blk.crossCond still references outer
	// scopes absolutely and the inner block from innerOffset — exactly
	// the semijoin coordinate system when the enclosing block sits at
	// offset 0. For deeper nesting the caller's own shift handles it.
	return blk.expr, blk.crossCond, nil
}

type inJoin struct {
	inner algebra.Expr
	cond  algebra.Cond
	anti  bool
}

// compileInSub compiles E [NOT] IN (subquery) into an (anti-)semijoin.
func (c *compiler) compileInSub(in sql.InExpr, negated bool, outer *scope, innerOffset int) (*inJoin, error) {
	if len(in.Sub.With) > 0 {
		return nil, fmt.Errorf("compile: WITH inside an IN subquery is not supported")
	}
	sel, ok := in.Sub.Body.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("compile: set operations inside IN are not supported")
	}
	if sel.Star || len(sel.Items) != 1 {
		return nil, fmt.Errorf("compile: IN subquery must select exactly one column")
	}
	if err := noDecoration(sel, "IN subquery"); err != nil {
		return nil, err
	}
	itemRef, ok := sel.Items[0].Expr.(sql.ColRef)
	if !ok {
		return nil, fmt.Errorf("compile: IN subquery must select a plain column")
	}
	blk, err := c.compileBlock(sel, outer, innerOffset)
	if err != nil {
		return nil, err
	}
	innerIdx, local, err := blk.sc.resolve(itemRef)
	if err != nil {
		return nil, err
	}
	if !local {
		return nil, fmt.Errorf("compile: IN subquery selects an outer column")
	}
	lhs, err := c.compileOperand(in.E, outer)
	if err != nil {
		return nil, err
	}
	rhs := algebra.Col{Idx: innerIdx}
	eq := algebra.Cond(algebra.Cmp{Op: algebra.EQ, L: lhs, R: rhs})
	if negated {
		// SQL semantics: NOT IN keeps the row only if every comparison
		// is false; a true-or-unknown match must discard it.
		eq = algebra.NewOr(eq, algebra.NullTest{Operand: lhs}, algebra.NullTest{Operand: rhs})
	}
	cond := algebra.NewAnd(append([]algebra.Cond{eq}, blk.crossCond...)...)
	return &inJoin{inner: blk.expr, cond: cond, anti: negated}, nil
}

// noDecoration rejects GROUP BY / ORDER BY / LIMIT in subquery
// positions, where they are either meaningless or unsupported.
func noDecoration(sel *sql.SelectStmt, where string) error {
	switch {
	case len(sel.GroupBy) > 0:
		return fmt.Errorf("compile: GROUP BY is not supported in a %s", where)
	case sel.Having != nil:
		return fmt.Errorf("compile: HAVING is not supported in a %s", where)
	case len(sel.OrderBy) > 0:
		return fmt.Errorf("compile: ORDER BY is not supported in a %s", where)
	case sel.Limit != nil:
		return fmt.Errorf("compile: LIMIT is not supported in a %s", where)
	}
	return nil
}

func productOf(leaves []algebra.Expr) algebra.Expr {
	if len(leaves) == 0 {
		panic("compile: empty FROM")
	}
	e := leaves[0]
	for _, l := range leaves[1:] {
		e = algebra.Product{L: e, R: l}
	}
	return e
}

// fromItem resolves a FROM entry to a base relation or a compiled view.
func (c *compiler) fromItem(ref sql.TableRef) (algebra.Expr, []string, error) {
	if v, ok := c.views[strings.ToLower(ref.Table)]; ok {
		return v.Expr, v.Columns, nil
	}
	rel, ok := c.sch.Relation(ref.Table)
	if !ok {
		return nil, nil, fmt.Errorf("compile: unknown table %q", ref.Table)
	}
	attrs := make([]string, rel.Arity())
	for i, a := range rel.Attrs {
		attrs[i] = a.Name
	}
	return algebra.Base{Name: strings.ToLower(rel.Name), Cols: rel.Arity()}, attrs, nil
}

func conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(sql.AndExpr); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []sql.Expr{e}
}

func stripDoubleNot(e sql.Expr) sql.Expr {
	for {
		n, ok := e.(sql.NotExpr)
		if !ok {
			return e
		}
		inner, ok := n.E.(sql.NotExpr)
		if !ok {
			return e
		}
		e = inner.E
	}
}

// compileCond compiles a Boolean expression with no (non-scalar)
// subqueries into an algebra condition.
func (c *compiler) compileCond(e sql.Expr, sc *scope) (algebra.Cond, error) {
	switch e := e.(type) {
	case sql.AndExpr:
		l, err := c.compileCond(e.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := c.compileCond(e.R, sc)
		if err != nil {
			return nil, err
		}
		return algebra.NewAnd(l, r), nil
	case sql.OrExpr:
		l, err := c.compileCond(e.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := c.compileCond(e.R, sc)
		if err != nil {
			return nil, err
		}
		return algebra.NewOr(l, r), nil
	case sql.NotExpr:
		sub, err := c.compileCond(e.E, sc)
		if err != nil {
			return nil, err
		}
		return algebra.Not{C: sub}, nil
	case sql.CmpExpr:
		l, err := c.compileOperand(e.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := c.compileOperand(e.R, sc)
		if err != nil {
			return nil, err
		}
		var op algebra.CmpOp
		switch e.Op {
		case "=":
			op = algebra.EQ
		case "<>":
			op = algebra.NE
		case "<":
			op = algebra.LT
		case "<=":
			op = algebra.LE
		case ">":
			op = algebra.GT
		case ">=":
			op = algebra.GE
		default:
			return nil, fmt.Errorf("compile: unknown comparison %q", e.Op)
		}
		return algebra.Cmp{Op: op, L: l, R: r}, nil
	case sql.LikeExpr:
		l, err := c.compileOperand(e.L, sc)
		if err != nil {
			return nil, err
		}
		p, err := c.compileOperand(e.Pattern, sc)
		if err != nil {
			return nil, err
		}
		return algebra.Like{Operand: l, Pattern: p, Negated: e.Negated}, nil
	case sql.IsNullExpr:
		o, err := c.compileOperand(e.E, sc)
		if err != nil {
			return nil, err
		}
		return algebra.NullTest{Operand: o, Negated: e.Negated}, nil
	case sql.InExpr:
		if e.Sub != nil {
			return nil, fmt.Errorf("compile: IN subquery is supported only as a top-level WHERE conjunct")
		}
		lhs, err := c.compileOperand(e.E, sc)
		if err != nil {
			return nil, err
		}
		var alts []algebra.Cond
		for _, item := range e.List {
			vals, err := c.operandValues(item)
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				alts = append(alts, algebra.Cmp{Op: algebra.EQ, L: lhs, R: algebra.Lit{Val: v}})
			}
		}
		cond := algebra.NewOr(alts...)
		if e.Negated {
			cond = algebra.NNF(algebra.Not{C: cond})
		}
		return cond, nil
	case sql.ExistsExpr:
		return nil, fmt.Errorf("compile: EXISTS is supported only as a top-level WHERE conjunct (possibly negated)")
	default:
		return nil, fmt.Errorf("compile: unsupported condition %T", e)
	}
}

// compileOperand compiles a scalar operand.
func (c *compiler) compileOperand(e sql.Expr, sc *scope) (algebra.Operand, error) {
	switch e := e.(type) {
	case sql.ColRef:
		idx, _, err := sc.resolve(e)
		if err != nil {
			return nil, err
		}
		return algebra.Col{Idx: idx}, nil
	case sql.NumLit, sql.StrLit, sql.NullLit, sql.Param, sql.Concat:
		vals, err := c.operandValues(e)
		if err != nil {
			return nil, err
		}
		if len(vals) != 1 {
			return nil, fmt.Errorf("compile: list-valued parameter used in scalar position")
		}
		return algebra.Lit{Val: vals[0]}, nil
	case sql.SubqueryExpr:
		return c.compileScalarSub(e.Q)
	default:
		return nil, fmt.Errorf("compile: unsupported operand %T", e)
	}
}

// compileScalarSub compiles an uncorrelated scalar aggregate subquery,
// treated as a black-box constant per Section 7 of the paper.
func (c *compiler) compileScalarSub(q *sql.Query) (algebra.Operand, error) {
	if len(q.With) > 0 {
		return nil, fmt.Errorf("compile: WITH inside a scalar subquery is not supported")
	}
	sel, ok := q.Body.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("compile: set operations inside a scalar subquery are not supported")
	}
	if sel.Star || len(sel.Items) != 1 {
		return nil, fmt.Errorf("compile: scalar subquery must select exactly one aggregate")
	}
	agg, ok := sel.Items[0].Expr.(sql.AggCall)
	if !ok {
		return nil, fmt.Errorf("compile: scalar subquery must select an aggregate (AVG, SUM, COUNT, MIN, MAX)")
	}
	if err := noDecoration(sel, "scalar subquery"); err != nil {
		return nil, err
	}
	blk, err := c.compileBlock(sel, nil, 0)
	if err != nil {
		return nil, err
	}
	if len(blk.crossCond) > 0 {
		return nil, fmt.Errorf("compile: correlated scalar subqueries are not supported")
	}
	var fn algebra.AggFunc
	switch agg.Func {
	case "AVG":
		fn = algebra.AggAvg
	case "SUM":
		fn = algebra.AggSum
	case "COUNT":
		fn = algebra.AggCount
	case "MIN":
		fn = algebra.AggMin
	case "MAX":
		fn = algebra.AggMax
	}
	// COUNT(*) counts rows, nulls included; Col = -1 tells the evaluator
	// not to project (and skip nulls in) any particular column.
	col := -1
	if agg.Arg != nil {
		ref, ok := agg.Arg.(sql.ColRef)
		if !ok {
			return nil, fmt.Errorf("compile: aggregate argument must be a column")
		}
		idx, local, err := blk.sc.resolve(ref)
		if err != nil {
			return nil, err
		}
		if !local {
			return nil, fmt.Errorf("compile: aggregate over an outer column")
		}
		col = idx
	} else if fn != algebra.AggCount {
		return nil, fmt.Errorf("compile: %s(*) is not valid", agg.Func)
	}
	return algebra.Scalar{Sub: blk.expr, Agg: fn, Col: col}, nil
}

// operandValues evaluates a constant operand (literal, parameter, or
// concatenation thereof) to one or more values.
func (c *compiler) operandValues(e sql.Expr) ([]value.Value, error) {
	switch e := e.(type) {
	case sql.NumLit:
		if i, err := strconv.ParseInt(e.Text, 10, 64); err == nil {
			return []value.Value{value.Int(i)}, nil
		}
		f, err := strconv.ParseFloat(e.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("compile: bad numeric literal %q", e.Text)
		}
		return []value.Value{value.Float(f)}, nil
	case sql.StrLit:
		return []value.Value{value.Str(e.Text)}, nil
	case sql.NullLit:
		return []value.Value{value.Null(0)}, nil
	case sql.Param:
		raw, ok := c.params[e.Name]
		if !ok {
			return nil, fmt.Errorf("compile: unbound parameter $%s", e.Name)
		}
		return coerceParam(e.Name, raw)
	case sql.Concat:
		var b strings.Builder
		for _, p := range e.Parts {
			vals, err := c.operandValues(p)
			if err != nil {
				return nil, err
			}
			if len(vals) != 1 {
				return nil, fmt.Errorf("compile: list parameter inside a concatenation")
			}
			v := vals[0]
			switch v.Kind() {
			case value.KindString:
				b.WriteString(v.AsString())
			case value.KindInt:
				b.WriteString(strconv.FormatInt(v.AsInt(), 10))
			default:
				return nil, fmt.Errorf("compile: cannot concatenate %s value", v.Kind())
			}
		}
		return []value.Value{value.Str(b.String())}, nil
	default:
		return nil, fmt.Errorf("compile: expected a constant expression, found %T", e)
	}
}

func coerceParam(name string, raw any) ([]value.Value, error) {
	switch raw := raw.(type) {
	case value.Value:
		return []value.Value{raw}, nil
	case []value.Value:
		return raw, nil
	case string:
		return []value.Value{value.Str(raw)}, nil
	case int:
		return []value.Value{value.Int(int64(raw))}, nil
	case int64:
		return []value.Value{value.Int(raw)}, nil
	case float64:
		return []value.Value{value.Float(raw)}, nil
	case bool:
		return []value.Value{value.Bool(raw)}, nil
	case []int64:
		out := make([]value.Value, len(raw))
		for i, v := range raw {
			out[i] = value.Int(v)
		}
		return out, nil
	case []int:
		out := make([]value.Value, len(raw))
		for i, v := range raw {
			out[i] = value.Int(int64(v))
		}
		return out, nil
	case []string:
		out := make([]value.Value, len(raw))
		for i, v := range raw {
			out[i] = value.Str(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("compile: parameter $%s has unsupported type %T", name, raw)
	}
}
