package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"certsql/internal/algebra"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/guard"
	"certsql/internal/sql"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// AblationConfig configures the design-decision ablation study: each of
// the optimizations DESIGN.md §5 calls out is disabled in turn and the
// translated queries re-timed against the fully optimized pipeline.
type AblationConfig struct {
	Scale    float64
	NullRate float64
	Seed     int64
	// Repeats per measurement.
	Repeats int
	// Queries to run; nil means Q1–Q4.
	Queries []tpch.QueryID
	// Parallelism is the executor worker count used by every variant
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
	// Limits is the per-run resource budget (zero = DefaultLimits).
	// Variants that trip it are reported OVERBUDGET, which is the
	// study's point for some of them, so there is no TolerateBudget
	// knob here — only the base pipeline tripping is fatal.
	Limits guard.Limits
}

func (c *AblationConfig) defaults() {
	if c.Scale == 0 {
		c.Scale = 0.002
	}
	if c.NullRate == 0 {
		c.NullRate = 0.03
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	if c.Queries == nil {
		c.Queries = tpch.AllQueries
	}
}

// AblationRow reports, for one query, the slowdown factor each disabled
// optimization causes relative to the full pipeline (1.0 = no effect;
// Failed marks variants that exceeded the row budget).
type AblationRow struct {
	Query    tpch.QueryID
	BaseTime time.Duration
	// Factor maps variant name -> time(variant)/time(base).
	Factor map[string]float64
	Failed map[string]bool
}

// ablationVariants lists the translator/executor knobs under study.
var ablationVariants = []struct {
	name string
	tr   func(*certain.Translator)
	opts func(*eval.Options)
}{
	{"no-orsplit", func(t *certain.Translator) { t.SplitOrs = false }, nil},
	{"no-simplify", func(t *certain.Translator) { t.SimplifyNulls = false }, nil},
	{"no-keysimplify", func(t *certain.Translator) { t.KeySimplify = false }, nil},
	{"no-viewcache", nil, func(o *eval.Options) { o.NoSubplanCache = true }},
	{"no-shortcircuit", nil, func(o *eval.Options) { o.NoShortCircuit = true }},
	{"no-hashjoin", nil, func(o *eval.Options) { o.NoHashJoin = true }},
}

// Ablation measures the cost of disabling each optimization on the
// translated queries Q⁺1–Q⁺4. Cancellation or deadline expiry of ctx
// aborts with a typed error.
func Ablation(ctx context.Context, cfg AblationConfig) ([]AblationRow, error) {
	cfg.defaults()
	db := tpch.Generate(tpch.Config{ScaleFactor: cfg.Scale, Seed: cfg.Seed, NullRate: cfg.NullRate})
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := tpch.Config{ScaleFactor: cfg.Scale}.Sizes()

	var out []AblationRow
	for _, qid := range cfg.Queries {
		params := qid.Params(rng, sizes)
		q, err := sql.Parse(qid.SQL())
		if err != nil {
			return nil, err
		}
		compiled, err := compile.Compile(q, db.Schema, params)
		if err != nil {
			return nil, err
		}

		// Build all plans up front, then interleave the timed runs
		// round-robin and keep per-variant minima: temporal noise (GC,
		// CPU steal on shared machines) then hits all variants alike
		// instead of whichever happened to run first.
		type plan struct {
			name string
			expr algebra.Expr
			opts eval.Options
		}
		plans := []plan{{name: "base", expr: DefaultTranslator(db).Plus(compiled.Expr),
			opts: eval.Options{Semantics: value.SQL3VL, Parallelism: cfg.Parallelism}}}
		for _, v := range ablationVariants {
			tr := DefaultTranslator(db)
			if v.tr != nil {
				v.tr(tr)
			}
			opts := eval.Options{Semantics: value.SQL3VL, Parallelism: cfg.Parallelism}
			if v.opts != nil {
				v.opts(&opts)
			}
			plans = append(plans, plan{name: v.name, expr: tr.Plus(compiled.Expr), opts: opts})
		}

		best := map[string]time.Duration{}
		failed := map[string]bool{}
		for round := 0; round <= cfg.Repeats; round++ {
			for _, p := range plans {
				if failed[p.name] {
					continue
				}
				runtime.GC()
				// A fresh governor per timed run: budgets are per
				// evaluation, and the shared ctx still cancels them all.
				p.opts.Governor = guard.New(ctx, limitsOrDefault(cfg.Limits))
				ev := eval.New(db, p.opts)
				start := time.Now()
				if _, err := ev.Eval(p.expr); err != nil {
					if budgetTripped(err) {
						failed[p.name] = true
						continue
					}
					return nil, fmt.Errorf("ablation %s %s: %w", qid, p.name, err)
				}
				elapsed := time.Since(start)
				if round == 0 {
					continue // warmup round, untimed
				}
				if cur, ok := best[p.name]; !ok || elapsed < cur {
					best[p.name] = elapsed
				}
			}
		}
		if failed["base"] {
			return nil, fmt.Errorf("ablation %s: base pipeline exceeded the budget", qid)
		}
		base := best["base"]
		row := AblationRow{Query: qid, BaseTime: base, Factor: map[string]float64{}, Failed: failed}
		for _, v := range ablationVariants {
			if failed[v.name] {
				continue
			}
			if base > 0 {
				row.Factor[v.name] = float64(best[v.name]) / float64(base)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderAblation renders the ablation study as a text table.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablations — slowdown of Q+ when one optimization is disabled (1.0 = no effect)\n")
	b.WriteString("query   base-time   ")
	for _, v := range ablationVariants {
		fmt.Fprintf(&b, "%16s", v.name)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s%10s   ", r.Query, r.BaseTime.Round(time.Microsecond))
		for _, v := range ablationVariants {
			if r.Failed[v.name] {
				b.WriteString("      OVERBUDGET")
				continue
			}
			fmt.Fprintf(&b, "%16.2f", r.Factor[v.name])
		}
		b.WriteString("\n")
	}
	return b.String()
}
