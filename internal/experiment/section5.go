package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"certsql/internal/algebra"
	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/guard"
	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// LegacyPoint is one measurement of the Section 5 experiment: the
// legacy Qt translation of [Libkin, TODS 2016] versus the Q⁺
// translation on a growing synthetic instance.
type LegacyPoint struct {
	// Rows is the per-relation instance size.
	Rows int
	// AdomSize is |adom(D)|, which the legacy translation exponentiates.
	AdomSize int
	// LegacyTime is the legacy Qt evaluation time; LegacyFailed is set
	// when it exceeded the row budget (the analogue of the paper's
	// out-of-memory failures below 10³ tuples).
	LegacyTime   time.Duration
	LegacyFailed bool
	LegacyCost   int64
	// PlusTime is the Q⁺ evaluation time on the same instance.
	PlusTime time.Duration
	PlusCost int64
}

// LegacyConfig configures the Section 5 experiment.
type LegacyConfig struct {
	// Sizes are the per-relation row counts to test.
	Sizes []int
	// NullRate for the synthetic instance.
	NullRate float64
	// MaxRows is the evaluator's row budget (the "memory" limit); zero
	// means the governed DefaultLimits row budget.
	MaxRows int
	// Seed makes the experiment deterministic.
	Seed int64
}

func (c *LegacyConfig) defaults() {
	if c.Sizes == nil {
		c.Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024}
	}
	if c.NullRate == 0 {
		c.NullRate = 0.05
	}
	if c.MaxRows == 0 {
		c.MaxRows = DefaultLimits.MaxRows
	}
}

// syntheticSchema builds the two-column difference workload
// R(a, b) − S(a, b) used to chart the legacy translation's blow-up
// (the full TPC-H Q3 is hopeless for it from the first row: its Qf side
// needs adom^9 for the orders relation — see LegacyOnQ3).
func syntheticSchema() *schema.Schema {
	s := schema.New()
	for _, name := range []string{"r", "s"} {
		s.MustAdd(&schema.Relation{Name: name, Attrs: []schema.Attribute{
			{Name: "a", Type: value.KindInt, Nullable: true},
			{Name: "b", Type: value.KindInt, Nullable: true},
		}})
	}
	return s
}

// LegacyBlowup measures the legacy translation against Q⁺ on the
// difference query R − S as the instance grows (Section 5).
// Cancellation or deadline expiry of ctx aborts with a typed error.
func LegacyBlowup(ctx context.Context, cfg LegacyConfig) ([]LegacyPoint, error) {
	cfg.defaults()
	var out []LegacyPoint
	for _, n := range cfg.Sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		db := table.NewDatabase(syntheticSchema())
		for i := 0; i < n; i++ {
			for _, rel := range []string{"r", "s"} {
				row := table.Row{value.Int(int64(rng.Intn(2 * n))), value.Int(int64(rng.Intn(2 * n)))}
				for j := range row {
					if rng.Float64() < cfg.NullRate {
						row[j] = db.FreshNull()
					}
				}
				if err := db.Insert(rel, row); err != nil {
					return nil, err
				}
			}
		}

		q := algebra.Diff{
			L: algebra.Base{Name: "r", Cols: 2},
			R: algebra.Base{Name: "s", Cols: 2},
		}
		tr := &certain.Translator{Sch: db.Schema, Mode: certain.ModeNaive}

		pt := LegacyPoint{Rows: n, AdomSize: len(db.ActiveDomain())}

		legacy := tr.LegacyTrue(certain.Primitive(q))
		ev := eval.New(db, eval.Options{Semantics: value.Naive,
			Governor: guard.New(ctx, guard.Limits{MaxRows: cfg.MaxRows})})
		start := time.Now()
		_, err := ev.Eval(legacy)
		pt.LegacyTime = time.Since(start)
		pt.LegacyCost = ev.Stats().CostUnits
		if err != nil {
			if !budgetTripped(err) {
				return nil, fmt.Errorf("legacy eval: %w", err)
			}
			pt.LegacyFailed = true
		}

		plus := tr.Plus(q)
		ev2 := eval.New(db, eval.Options{Semantics: value.Naive,
			Governor: guard.New(ctx, guard.Limits{MaxRows: cfg.MaxRows})})
		start = time.Now()
		if _, err := ev2.Eval(plus); err != nil {
			return nil, fmt.Errorf("plus eval: %w", err)
		}
		pt.PlusTime = time.Since(start)
		pt.PlusCost = ev2.Stats().CostUnits
		out = append(out, pt)
	}
	return out, nil
}

// LegacyOnQ3 demonstrates that the legacy translation of the real query
// Q3 is infeasible outright: its Qf side requires adom^9 (the arity of
// orders), which exceeds any realistic budget on even the smallest
// instance. It returns the error the evaluator reports.
func LegacyOnQ3(ctx context.Context, scale float64, seed int64) (adomSize int, err error) {
	db := tpch.Generate(tpch.Config{ScaleFactor: scale, Seed: seed, NullRate: 0.02})
	rng := rand.New(rand.NewSource(seed))
	params := tpch.Q3.Params(rng, tpch.Config{ScaleFactor: scale}.Sizes())
	q, err := sql.Parse(tpch.Q3.SQL())
	if err != nil {
		return 0, err
	}
	compiled, err := compile.Compile(q, db.Schema, params)
	if err != nil {
		return 0, err
	}
	tr := &certain.Translator{Sch: db.Schema, Mode: certain.ModeNaive}
	legacy := tr.LegacyTrue(certain.Primitive(compiled.Expr))
	ev := eval.New(db, eval.Options{Semantics: value.Naive, Governor: guard.New(ctx, guard.Limits{})})
	_, err = ev.Eval(legacy)
	return len(db.ActiveDomain()), err
}

// OrSplitReport compares plans of a translated query with and without
// the OR-splitting rewrite (the Section 7 optimizer discussion): the
// unsplit translation forces nested-loop anti-joins with "astronomical"
// costs, while splitting restores hash strategies.
type OrSplitReport struct {
	Query                 tpch.QueryID
	UnsplitStats          eval.Stats
	SplitStats            eval.Stats
	UnsplitTime           time.Duration
	SplitTime             time.Duration
	UnsplitRows, SplitRow int
	// UnsplitFailed is set when the unsplit plan exceeded the row
	// budget — the in-memory analogue of the paper's "astronomical"
	// plan costs for the direct translation of Q4.
	UnsplitFailed bool
}

// OrSplit runs the comparison for one query on one instance.
// Cancellation or deadline expiry of ctx aborts with a typed error.
func OrSplit(ctx context.Context, qid tpch.QueryID, scale, nullRate float64, seed int64) (*OrSplitReport, error) {
	db := tpch.Generate(tpch.Config{ScaleFactor: scale, Seed: seed, NullRate: nullRate})
	rng := rand.New(rand.NewSource(seed))
	params := qid.Params(rng, tpch.Config{ScaleFactor: scale}.Sizes())
	q, err := sql.Parse(qid.SQL())
	if err != nil {
		return nil, err
	}
	compiled, err := compile.Compile(q, db.Schema, params)
	if err != nil {
		return nil, err
	}

	report := &OrSplitReport{Query: qid}
	for _, split := range []bool{false, true} {
		tr := &certain.Translator{
			Sch: db.Schema, Mode: certain.ModeSQL,
			SimplifyNulls: true, SplitOrs: split, KeySimplify: true,
		}
		plus := tr.Plus(compiled.Expr)
		ev := eval.New(db, eval.Options{Semantics: value.SQL3VL, Governor: guard.New(ctx, guard.Limits{})})
		start := time.Now()
		res, err := ev.Eval(plus)
		if err != nil {
			if !split && budgetTripped(err) {
				report.UnsplitFailed = true
				report.UnsplitStats = ev.Stats()
				report.UnsplitTime = time.Since(start)
				continue
			}
			return nil, err
		}
		if split {
			report.SplitStats = ev.Stats()
			report.SplitTime = time.Since(start)
			report.SplitRow = res.Len()
		} else {
			report.UnsplitStats = ev.Stats()
			report.UnsplitTime = time.Since(start)
			report.UnsplitRows = res.Len()
		}
	}
	return report, nil
}
