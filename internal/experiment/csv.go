package experiment

import (
	"encoding/csv"
	"fmt"
	"io"

	"certsql/internal/tpch"
)

// CSV writers for the experiment series, so the figures can be re-drawn
// with any plotting tool. Columns mirror the paper's axes.

// WriteFigure1CSV writes null_rate_percent, q1..q4 false-positive
// percentages (empty cell when a query had no non-empty answers).
func WriteFigure1CSV(w io.Writer, rows []Figure1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"null_rate_percent", "q1_fp_percent", "q2_fp_percent", "q3_fp_percent", "q4_fp_percent"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{fmt.Sprintf("%.1f", 100*r.NullRate)}
		for _, q := range tpch.AllQueries {
			if r.Samples[q] == 0 {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, fmt.Sprintf("%.2f", r.FPPercent[q]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV writes null_rate_percent, q1..q4 relative performance
// ratios t⁺/t.
func WriteFigure4CSV(w io.Writer, rows []Figure4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"null_rate_percent", "q1_relperf", "q2_relperf", "q3_relperf", "q4_relperf"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{fmt.Sprintf("%.1f", 100*r.NullRate)}
		for _, q := range tpch.AllQueries {
			v, ok := r.RelPerf[q]
			if !ok {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, fmt.Sprintf("%.6f", v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable1CSV writes one row per (size multiplier, query) with the
// min and max relative performance.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"size_multiplier", "query", "relperf_min", "relperf_max"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, q := range tpch.AllQueries {
			rec := []string{
				fmt.Sprintf("%g", r.Multiplier),
				q.String(),
				fmt.Sprintf("%.6f", r.Min[q]),
				fmt.Sprintf("%.6f", r.Max[q]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLegacyCSV writes the Section 5 blow-up series.
func WriteLegacyCSV(w io.Writer, points []LegacyPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rows_per_relation", "adom_size", "legacy_cost", "legacy_ns", "legacy_failed", "plus_cost", "plus_ns"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			fmt.Sprintf("%d", p.Rows),
			fmt.Sprintf("%d", p.AdomSize),
			fmt.Sprintf("%d", p.LegacyCost),
			fmt.Sprintf("%d", p.LegacyTime.Nanoseconds()),
			fmt.Sprintf("%t", p.LegacyFailed),
			fmt.Sprintf("%d", p.PlusCost),
			fmt.Sprintf("%d", p.PlusTime.Nanoseconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRecallCSV writes the precision/recall summary.
func WriteRecallCSV(w io.Writer, results []RecallResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"query", "certain_returned", "recalled", "recall_percent", "false_positives", "leaked_false_positives"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Query.String(),
			fmt.Sprintf("%d", r.CertainReturned),
			fmt.Sprintf("%d", r.Recalled),
			fmt.Sprintf("%.2f", r.Recall()),
			fmt.Sprintf("%d", r.FalsePositives),
			fmt.Sprintf("%d", r.LeakedFalsePositives),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAblationCSV writes the ablation study: one row per (query,
// variant) with the slowdown factor (empty when the variant exceeded
// the row budget).
func WriteAblationCSV(w io.Writer, rows []AblationRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"query", "variant", "slowdown_factor", "overbudget"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, v := range ablationVariants {
			rec := []string{r.Query.String(), v.name, "", "false"}
			if r.Failed[v.name] {
				rec[3] = "true"
			} else {
				rec[2] = fmt.Sprintf("%.4f", r.Factor[v.name])
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
