package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"certsql/internal/compile"
	"certsql/internal/guard"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// Figure4Config configures the price-of-correctness experiment.
type Figure4Config struct {
	// NullRates to test; nil means 1%–5% as in Figure 4.
	NullRates []float64
	// Instances per null rate (the paper uses 10).
	Instances int
	// ParamDraws per instance (the paper uses 5).
	ParamDraws int
	// Repeats per query instance (the paper uses 3).
	Repeats int
	// Scale is the TPC-H scale factor of the "1 GB-equivalent"
	// instance for this reproduction.
	Scale float64
	// Seed makes the experiment deterministic.
	Seed int64
	// Queries to run; nil means Q1–Q4.
	Queries []tpch.QueryID
	// Parallelism is the executor worker count (0 = GOMAXPROCS,
	// 1 = sequential). Both t and t⁺ run at the same setting, so the
	// reported ratios stay comparable.
	Parallelism int
	// Limits is the per-run resource budget (zero = DefaultLimits).
	Limits guard.Limits
	// TolerateBudget makes per-query budget trips non-fatal: the sample
	// is dropped, the trip counted in the output row, and the run
	// continues. Cancellation always aborts.
	TolerateBudget bool
}

func (c *Figure4Config) defaults() {
	if c.NullRates == nil {
		c.NullRates = PaperNullRatesFig4()
	}
	if c.Instances == 0 {
		c.Instances = 3
	}
	if c.ParamDraws == 0 {
		c.ParamDraws = 3
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	if c.Scale == 0 {
		c.Scale = 0.002
	}
	if c.Queries == nil {
		c.Queries = tpch.AllQueries
	}
}

// Figure4Row is one point of Figure 4: the average relative performance
// t⁺/t per query at one null rate (below 1 means the correct query is
// faster).
type Figure4Row struct {
	NullRate float64
	RelPerf  map[tpch.QueryID]float64
	// BudgetTrips counts samples dropped because either side of the
	// t⁺/t pair exceeded the resource budget (only with
	// Figure4Config.TolerateBudget).
	BudgetTrips map[tpch.QueryID]int
}

// Figure4 reproduces Figure 4: run each query and its Q⁺ translation on
// instances with null rates 1%–5% and report the ratio of their running
// times, averaged over instances, parameter draws and repeats.
// Cancellation or deadline expiry of ctx aborts with a typed error.
func Figure4(ctx context.Context, cfg Figure4Config) ([]Figure4Row, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := tpch.Generate(tpch.Config{ScaleFactor: cfg.Scale, Seed: cfg.Seed})
	sizes := tpch.Config{ScaleFactor: cfg.Scale}.Sizes()

	var out []Figure4Row
	for _, rate := range cfg.NullRates {
		row := Figure4Row{NullRate: rate, RelPerf: map[tpch.QueryID]float64{}, BudgetTrips: map[tpch.QueryID]int{}}
		sumRatio := map[tpch.QueryID]float64{}
		samples := map[tpch.QueryID]int{}
		for inst := 0; inst < cfg.Instances; inst++ {
			db := base.Clone()
			tpch.InjectNulls(db, rate, rng)
			tr := DefaultTranslator(db)
			for _, qid := range cfg.Queries {
				for d := 0; d < cfg.ParamDraws; d++ {
					params := qid.Params(rng, sizes)
					orig, plus, err := Prepare(qid, db, params, tr)
					if err != nil {
						return nil, fmt.Errorf("fig4 %s: %w", qid, err)
					}
					var tOrig, tPlus time.Duration
					tripped := false
					for rep := 0; rep < cfg.Repeats && !tripped; rep++ {
						for _, side := range []struct {
							label string
							c     *compile.Compiled
							sum   *time.Duration
						}{{"original", orig, &tOrig}, {"translated", plus, &tPlus}} {
							_, dt, _, err := runOnce(ctx, db, side.c, cfg.Parallelism, cfg.Limits)
							if err != nil {
								if cfg.TolerateBudget && budgetTripped(err) {
									row.BudgetTrips[qid]++
									tripped = true
									break
								}
								return nil, fmt.Errorf("fig4 %s %s: %w", qid, side.label, err)
							}
							*side.sum += dt
						}
					}
					if !tripped && tOrig > 0 {
						sumRatio[qid] += float64(tPlus) / float64(tOrig)
						samples[qid]++
					}
				}
			}
		}
		for _, qid := range cfg.Queries {
			if samples[qid] > 0 {
				row.RelPerf[qid] = sumRatio[qid] / float64(samples[qid])
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Table1Config configures the instance-size scaling experiment.
type Table1Config struct {
	// ScaleMultipliers relative to BaseScale; nil means {1, 3, 6, 10},
	// the paper's 1/3/6/10 GB instances.
	ScaleMultipliers []float64
	// BaseScale is the scale factor of the "1 GB-equivalent" instance.
	BaseScale float64
	// NullRates as in Figure 4 (1%–5%); ranges are taken across them.
	NullRates []float64
	// Seed makes the experiment deterministic.
	Seed int64
	// ParamDraws per size and rate.
	ParamDraws int
	// Queries to run; nil means Q1–Q4.
	Queries []tpch.QueryID
	// Parallelism is the executor worker count, forwarded to the
	// underlying Figure 4 runs.
	Parallelism int
	// Limits is the per-run resource budget (zero = DefaultLimits);
	// TolerateBudget tolerates and counts per-query budget trips. Both
	// forward to the underlying Figure 4 runs.
	Limits         guard.Limits
	TolerateBudget bool
}

func (c *Table1Config) defaults() {
	if c.ScaleMultipliers == nil {
		c.ScaleMultipliers = []float64{1, 3, 6, 10}
	}
	if c.BaseScale == 0 {
		c.BaseScale = 0.002
	}
	if c.NullRates == nil {
		c.NullRates = PaperNullRatesFig4()
	}
	if c.ParamDraws == 0 {
		c.ParamDraws = 2
	}
	if c.Queries == nil {
		c.Queries = tpch.AllQueries
	}
}

// Table1Row is one cell range of Table 1: the min–max of average
// relative performance for one query at one instance size.
type Table1Row struct {
	Multiplier float64
	Min, Max   map[tpch.QueryID]float64
	// BudgetTrips aggregates the dropped samples of the underlying
	// Figure 4 runs (only with Table1Config.TolerateBudget).
	BudgetTrips map[tpch.QueryID]int
}

// Table1 reproduces Table 1: ranges of relative performance t⁺/t as the
// instance grows. Cancellation or deadline expiry of ctx aborts with a
// typed error.
func Table1(ctx context.Context, cfg Table1Config) ([]Table1Row, error) {
	cfg.defaults()
	var out []Table1Row
	for _, mult := range cfg.ScaleMultipliers {
		rows, err := Figure4(ctx, Figure4Config{
			NullRates:      cfg.NullRates,
			Instances:      1,
			ParamDraws:     cfg.ParamDraws,
			Repeats:        2,
			Scale:          cfg.BaseScale * mult,
			Seed:           cfg.Seed + int64(mult*1000),
			Queries:        cfg.Queries,
			Parallelism:    cfg.Parallelism,
			Limits:         cfg.Limits,
			TolerateBudget: cfg.TolerateBudget,
		})
		if err != nil {
			return nil, err
		}
		t1 := Table1Row{Multiplier: mult, Min: map[tpch.QueryID]float64{}, Max: map[tpch.QueryID]float64{}, BudgetTrips: map[tpch.QueryID]int{}}
		for _, qid := range cfg.Queries {
			for i, r := range rows {
				t1.BudgetTrips[qid] += r.BudgetTrips[qid]
				v, ok := r.RelPerf[qid]
				if !ok {
					continue
				}
				if i == 0 || v < t1.Min[qid] {
					t1.Min[qid] = v
				}
				if i == 0 || v > t1.Max[qid] {
					t1.Max[qid] = v
				}
			}
		}
		out = append(out, t1)
	}
	return out, nil
}

// RecallResult reports the recall measurement of Section 7 for one
// query: among the certain answers that standard SQL evaluation
// returned (i.e. its answers minus the detected false positives), the
// fraction also returned by Q⁺. The paper observes 100% everywhere.
type RecallResult struct {
	Query tpch.QueryID
	// CertainReturned is the number of SQL answers not detected as
	// false positives, summed over all runs.
	CertainReturned int
	// Recalled is how many of those Q⁺ returned.
	Recalled int
	// FalsePositives is the number of detected false positives among
	// SQL answers (all of which Q⁺ must avoid).
	FalsePositives int
	// LeakedFalsePositives counts detected false positives that Q⁺
	// returned — must be zero.
	LeakedFalsePositives int
	// BudgetTrips counts samples dropped because either evaluation
	// exceeded the resource budget (only with RecallConfig.TolerateBudget).
	BudgetTrips int
}

// Recall returns CertainReturned == Recalled as a percentage.
func (r RecallResult) Recall() float64 {
	if r.CertainReturned == 0 {
		return 100
	}
	return 100 * float64(r.Recalled) / float64(r.CertainReturned)
}

// RecallConfig configures the recall experiment.
type RecallConfig struct {
	Scale      float64
	NullRate   float64
	Instances  int
	ParamDraws int
	Seed       int64
	Queries    []tpch.QueryID
	// Parallelism is the executor worker count (0 = GOMAXPROCS,
	// 1 = sequential); results are identical at any setting.
	Parallelism int
	// Limits is the per-run resource budget (zero = DefaultLimits).
	Limits guard.Limits
	// TolerateBudget tolerates and counts per-query budget trips
	// instead of aborting the experiment.
	TolerateBudget bool
}

func (c *RecallConfig) defaults() {
	if c.Scale == 0 {
		c.Scale = 0.001
	}
	if c.NullRate == 0 {
		c.NullRate = 0.03
	}
	if c.Instances == 0 {
		c.Instances = 5
	}
	if c.ParamDraws == 0 {
		c.ParamDraws = 5
	}
	if c.Queries == nil {
		c.Queries = tpch.AllQueries
	}
}

// Recall reproduces the Section 7 recall measurement on small
// DataFiller-style instances: Q⁺ must return precisely the SQL answers
// minus the detected false positives. Cancellation or deadline expiry
// of ctx aborts with a typed error.
func Recall(ctx context.Context, cfg RecallConfig) ([]RecallResult, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := tpch.Generate(tpch.Config{ScaleFactor: cfg.Scale, Seed: cfg.Seed})
	sizes := tpch.Config{ScaleFactor: cfg.Scale}.Sizes()

	results := map[tpch.QueryID]*RecallResult{}
	for _, qid := range cfg.Queries {
		results[qid] = &RecallResult{Query: qid}
	}
	for inst := 0; inst < cfg.Instances; inst++ {
		db := base.Clone()
		tpch.InjectNulls(db, cfg.NullRate, rng)
		tr := DefaultTranslator(db)
		for _, qid := range cfg.Queries {
			detect := tpch.DetectorFor(qid)
			for d := 0; d < cfg.ParamDraws; d++ {
				params := qid.Params(rng, sizes)
				orig, plus, err := Prepare(qid, db, params, tr)
				if err != nil {
					return nil, err
				}
				sqlRes, _, _, err := runOnce(ctx, db, orig, cfg.Parallelism, cfg.Limits)
				if err != nil {
					if cfg.TolerateBudget && budgetTripped(err) {
						results[qid].BudgetTrips++
						continue
					}
					return nil, err
				}
				plusRes, _, _, err := runOnce(ctx, db, plus, cfg.Parallelism, cfg.Limits)
				if err != nil {
					if cfg.TolerateBudget && budgetTripped(err) {
						results[qid].BudgetTrips++
						continue
					}
					return nil, err
				}
				plusKeys := plusRes.KeySet()
				r := results[qid]
				for _, row := range sqlRes.Rows() {
					_, inPlus := plusKeys[rowKey(row)]
					if detect(db, params, row) {
						r.FalsePositives++
						if inPlus {
							r.LeakedFalsePositives++
						}
						continue
					}
					r.CertainReturned++
					if inPlus {
						r.Recalled++
					}
				}
			}
		}
	}
	out := make([]RecallResult, 0, len(cfg.Queries))
	for _, qid := range cfg.Queries {
		out = append(out, *results[qid])
	}
	return out, nil
}

func rowKey(row []value.Value) string { return value.RowKey(row) }
