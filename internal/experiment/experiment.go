// Package experiment contains the drivers that regenerate every table
// and figure of the paper's evaluation:
//
//   - Figure 1: average percentage of false positives per query as the
//     null rate grows (Section 4);
//   - the Section 5 observation that the legacy translation of
//     [Libkin, TODS 2016] is infeasible already on tiny instances;
//   - Figure 4: relative performance t⁺/t of the translated queries at
//     null rates 1–5% (Section 7);
//   - Table 1: ranges of relative performance across instance sizes;
//   - the precision and recall measurements of Section 7;
//   - the Section 7 optimizer discussion (plan costs with and without
//     OR-splitting).
//
// Absolute timings obviously differ from the paper's PostgreSQL-on-
// hardware setup; what the drivers reproduce is the *shape* of each
// result: who wins, by what order of magnitude, and how it trends.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/guard"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// DefaultLimits is the single governed budget every experiment runner
// evaluates under (previously a `MaxRows: 2_000_000` literal scattered
// across the drivers): enough headroom for every measured configuration,
// small enough that a runaway plan degrades with a typed budget error
// instead of exhausting memory. Callers override it per run via each
// config's Limits field.
var DefaultLimits = guard.Limits{MaxRows: 2_000_000}

// limitsOrDefault resolves a config's Limits field: the zero value means
// DefaultLimits.
func limitsOrDefault(l guard.Limits) guard.Limits {
	if l == (guard.Limits{}) {
		return DefaultLimits
	}
	return l
}

// budgetTripped reports whether err is a resource-budget trip (and not,
// e.g., cancellation, which never counts as a tolerable trip).
func budgetTripped(err error) bool { return errors.Is(err, guard.ErrBudget) }

// PaperNullRatesFig1 are the null rates of Figure 1: 0.5%–6% in steps
// of 0.5% and 6%–10% in steps of 1%.
func PaperNullRatesFig1() []float64 {
	var out []float64
	for r := 0.005; r < 0.0601; r += 0.005 {
		out = append(out, r)
	}
	for r := 0.07; r < 0.101; r += 0.01 {
		out = append(out, r)
	}
	return out
}

// PaperNullRatesFig4 are the null rates of Figure 4: 1%–5% in steps of 1%.
func PaperNullRatesFig4() []float64 {
	return []float64{0.01, 0.02, 0.03, 0.04, 0.05}
}

// Prepare compiles query qid against db with params and returns the
// original and translated (Q⁺) expressions.
func Prepare(qid tpch.QueryID, db *table.Database, params compile.Params, tr *certain.Translator) (orig, plus *compile.Compiled, err error) {
	q, err := sql.Parse(qid.SQL())
	if err != nil {
		return nil, nil, err
	}
	orig, err = compile.Compile(q, db.Schema, params)
	if err != nil {
		return nil, nil, err
	}
	plus = &compile.Compiled{Expr: tr.Plus(orig.Expr), Columns: orig.Columns}
	return orig, plus, nil
}

// DefaultTranslator returns the paper's recommended translation
// pipeline for SQL-mode evaluation over db.
func DefaultTranslator(db *table.Database) *certain.Translator {
	return &certain.Translator{
		Sch:           db.Schema,
		Mode:          certain.ModeSQL,
		SimplifyNulls: true,
		SplitOrs:      true,
		KeySimplify:   true,
	}
}

// runOnce evaluates an expression with a fresh evaluator (no caches
// shared across timed runs) under a fresh governor — one budget per
// measured run, honoring ctx — and returns the result and wall time.
// par is the executor worker count (0 = GOMAXPROCS, 1 = sequential);
// results are identical at any setting.
func runOnce(ctx context.Context, db *table.Database, c *compile.Compiled, par int, limits guard.Limits) (*table.Table, time.Duration, eval.Stats, error) {
	ev := eval.New(db, eval.Options{
		Semantics:   value.SQL3VL,
		Governor:    guard.New(ctx, limitsOrDefault(limits)),
		Parallelism: par,
	})
	start := time.Now()
	t, err := ev.Eval(c.Expr)
	return t, time.Since(start), ev.Stats(), err
}

// Figure1Config configures the false-positive experiment.
type Figure1Config struct {
	// NullRates to test; nil means the paper's Figure 1 rates.
	NullRates []float64
	// Instances per null rate (the paper uses 100).
	Instances int
	// ParamDraws per instance (the paper uses 5).
	ParamDraws int
	// Scale is the TPC-H scale factor; the paper scales the 1 GB
	// instance down by 10³ for this experiment.
	Scale float64
	// Seed makes the experiment deterministic.
	Seed int64
	// Queries to run; nil means Q1–Q4.
	Queries []tpch.QueryID
	// Parallelism is the executor worker count (0 = GOMAXPROCS,
	// 1 = sequential); measurements are over identical results.
	Parallelism int
	// Limits is the per-run resource budget (zero = DefaultLimits).
	Limits guard.Limits
	// TolerateBudget makes per-query budget trips non-fatal: the sample
	// is dropped, the trip is counted in the output row, and the
	// experiment continues. Without it a trip aborts the whole run with
	// a typed budget error. Cancellation always aborts.
	TolerateBudget bool
}

func (c *Figure1Config) defaults() {
	if c.NullRates == nil {
		c.NullRates = PaperNullRatesFig1()
	}
	if c.Instances == 0 {
		c.Instances = 5
	}
	if c.ParamDraws == 0 {
		c.ParamDraws = 5
	}
	if c.Scale == 0 {
		c.Scale = 0.001
	}
	if c.Queries == nil {
		c.Queries = tpch.AllQueries
	}
}

// Figure1Row is one point of Figure 1: the average percentage of
// detected false positives per query at one null rate.
type Figure1Row struct {
	NullRate  float64
	FPPercent map[tpch.QueryID]float64
	// Executions with a non-empty answer, per query (the denominator).
	Samples map[tpch.QueryID]int
	// BudgetTrips counts runs dropped because they exceeded the
	// resource budget (only with Figure1Config.TolerateBudget).
	BudgetTrips map[tpch.QueryID]int
}

// Figure1 reproduces Figure 1: SQL-evaluate Q1–Q4 on instances with
// increasing null rates and measure, via the detection algorithms of
// Section 4, the fraction of answers that are provably false positives.
// Cancellation or deadline expiry of ctx aborts with a typed error.
func Figure1(ctx context.Context, cfg Figure1Config) ([]Figure1Row, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := tpch.Generate(tpch.Config{ScaleFactor: cfg.Scale, Seed: cfg.Seed})
	sizes := tpch.Config{ScaleFactor: cfg.Scale}.Sizes()

	var out []Figure1Row
	for _, rate := range cfg.NullRates {
		row := Figure1Row{
			NullRate:    rate,
			FPPercent:   map[tpch.QueryID]float64{},
			Samples:     map[tpch.QueryID]int{},
			BudgetTrips: map[tpch.QueryID]int{},
		}
		sum := map[tpch.QueryID]float64{}
		for inst := 0; inst < cfg.Instances; inst++ {
			db := base.Clone()
			tpch.InjectNulls(db, rate, rng)
			for _, qid := range cfg.Queries {
				detect := tpch.DetectorFor(qid)
				for d := 0; d < cfg.ParamDraws; d++ {
					params := qid.Params(rng, sizes)
					q, err := sql.Parse(qid.SQL())
					if err != nil {
						return nil, err
					}
					compiled, err := compile.Compile(q, db.Schema, params)
					if err != nil {
						return nil, err
					}
					res, _, _, err := runOnce(ctx, db, compiled, cfg.Parallelism, cfg.Limits)
					if err != nil {
						if cfg.TolerateBudget && budgetTripped(err) {
							row.BudgetTrips[qid]++
							continue
						}
						return nil, fmt.Errorf("fig1 %s: %w", qid, err)
					}
					if res.Len() == 0 {
						continue
					}
					fp := 0
					for _, r := range res.Rows() {
						if detect(db, params, r) {
							fp++
						}
					}
					sum[qid] += 100 * float64(fp) / float64(res.Len())
					row.Samples[qid]++
				}
			}
		}
		for _, qid := range cfg.Queries {
			if n := row.Samples[qid]; n > 0 {
				row.FPPercent[qid] = sum[qid] / float64(n)
			}
		}
		out = append(out, row)
	}
	return out, nil
}
