package experiment_test

import (
	"context"
	"errors"
	"testing"

	"certsql/internal/eval"
	"certsql/internal/experiment"
	"certsql/internal/tpch"
)

// TestFigure1Shape runs a miniature Figure 1 and checks the paper's
// qualitative findings: every query produces false positives at modest
// null rates, Q2 is close to 100%, and Q3's rate grows with the null
// rate.
func TestFigure1Shape(t *testing.T) {
	rows, err := experiment.Figure1(context.Background(), experiment.Figure1Config{
		NullRates:  []float64{0.02, 0.08},
		Instances:  3,
		ParamDraws: 4,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	low, high := rows[0], rows[1]

	if low.Samples[tpch.Q2] > 0 && low.FPPercent[tpch.Q2] < 50 {
		t.Errorf("Q2 FP rate at 2%% nulls = %.1f%%, paper reports near 100%%", low.FPPercent[tpch.Q2])
	}
	if high.Samples[tpch.Q3] > 0 && low.Samples[tpch.Q3] > 0 &&
		high.FPPercent[tpch.Q3] < low.FPPercent[tpch.Q3] {
		t.Errorf("Q3 FP rate should grow with the null rate: %.1f%% at 2%% vs %.1f%% at 8%%",
			low.FPPercent[tpch.Q3], high.FPPercent[tpch.Q3])
	}
	anyFP := false
	for _, q := range tpch.AllQueries {
		if high.FPPercent[q] > 0 {
			anyFP = true
		}
	}
	if !anyFP {
		t.Error("no query produced false positives at 8% nulls")
	}
	t.Log("\n" + experiment.RenderFigure1(rows))
}

// TestFigure4Shape runs a miniature Figure 4 and checks the paper's
// three behaviours: Q1/Q3 cheap, Q2 dramatically faster, Q4 slower but
// bounded.
func TestFigure4Shape(t *testing.T) {
	rows, err := experiment.Figure4(context.Background(), experiment.Figure4Config{
		NullRates:  []float64{0.02, 0.04},
		Instances:  1,
		ParamDraws: 2,
		Repeats:    2,
		Scale:      0.002,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if v := r.RelPerf[tpch.Q2]; v > 0.8 {
			t.Errorf("Q2 relative perf %.3f at %.0f%%, expected well below 1 (paper: ~10⁻³)", v, 100*r.NullRate)
		}
		for _, q := range []tpch.QueryID{tpch.Q1, tpch.Q3} {
			if v := r.RelPerf[q]; v > 2.5 {
				t.Errorf("%s relative perf %.3f at %.0f%%, expected near 1", q, v, 100*r.NullRate)
			}
		}
		if v := r.RelPerf[tpch.Q4]; v > 25 {
			t.Errorf("Q4 relative perf %.3f, expected bounded overhead", v)
		}
	}
	t.Log("\n" + experiment.RenderFigure4(rows))
}

// TestRecallIs100 checks the paper's headline recall result: Q⁺ returns
// exactly the SQL answers minus the detected false positives, and never
// leaks a detected false positive.
func TestRecallIs100(t *testing.T) {
	results, err := experiment.Recall(context.Background(), experiment.RecallConfig{
		Instances:  3,
		ParamDraws: 4,
		NullRate:   0.04,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.LeakedFalsePositives != 0 {
			t.Errorf("%s: Q+ leaked %d detected false positives", r.Query, r.LeakedFalsePositives)
		}
		if r.Recall() < 100 {
			t.Errorf("%s: recall %.1f%%, paper reports 100%%", r.Query, r.Recall())
		}
	}
	t.Log("\n" + experiment.RenderRecall(results))
}

// TestLegacyBlowup checks the Section 5 result: the legacy translation's
// cost grows superlinearly and exceeds the budget well before 10³ rows,
// while Q⁺ keeps up easily.
func TestLegacyBlowup(t *testing.T) {
	points, err := experiment.LegacyBlowup(context.Background(), experiment.LegacyConfig{
		Sizes:   []int{8, 32, 128, 512},
		MaxRows: 500_000,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if !last.LegacyFailed {
		t.Errorf("legacy translation survived %d rows within budget; expected blow-up", last.Rows)
	}
	for _, p := range points {
		if p.PlusCost >= p.LegacyCost && !p.LegacyFailed {
			t.Errorf("Q+ cost %d not below legacy cost %d at %d rows", p.PlusCost, p.LegacyCost, p.Rows)
		}
	}
	t.Log("\n" + experiment.RenderLegacy(points))
}

// TestLegacyOnQ3 checks that the legacy translation of the real Q3 is
// infeasible outright (adom^9 for the orders relation).
func TestLegacyOnQ3(t *testing.T) {
	adom, err := experiment.LegacyOnQ3(context.Background(), 0.001, 5)
	if err == nil {
		t.Fatal("legacy translation of Q3 unexpectedly evaluated within budget")
	}
	if !errors.Is(err, eval.ErrTooLarge) {
		t.Fatalf("unexpected error: %v", err)
	}
	t.Logf("legacy Q3 with |adom| = %d: %v", adom, err)
}

// TestOrSplitQ2 checks the Section 7 optimizer story on Q2: without
// splitting, the translated NOT EXISTS condition contains OR … IS NULL
// and forces a nested loop; with splitting, the plan short-circuits and
// wins once the instance is non-trivial.
func TestOrSplitQ2(t *testing.T) {
	r, err := experiment.OrSplit(context.Background(), tpch.Q2, 0.005, 0.03, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.UnsplitRows != r.SplitRow {
		t.Errorf("split changed the result: %d vs %d rows", r.UnsplitRows, r.SplitRow)
	}
	if r.UnsplitStats.NestedLoopJoins == 0 {
		t.Error("unsplit Q2+ used no nested loops; expected the confused-optimizer path")
	}
	if r.SplitStats.ShortCircuits == 0 {
		t.Error("split Q2+ performed no short circuits; expected the decorrelated IS NULL branch")
	}
	t.Log("\n" + experiment.RenderOrSplit(r))
}

// TestOrSplitQ4 checks the harder half of the Section 7 story: the
// unsplit Q4+ plan has "astronomical" cost (here: it exceeds the row
// budget via Cartesian fallbacks), while the split plan completes.
func TestOrSplitQ4(t *testing.T) {
	r, err := experiment.OrSplit(context.Background(), tpch.Q4, 0.002, 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.UnsplitFailed && r.UnsplitStats.CostUnits < 4*r.SplitStats.CostUnits {
		t.Errorf("unsplit Q4+ cost %d not dramatically above split cost %d",
			r.UnsplitStats.CostUnits, r.SplitStats.CostUnits)
	}
	if r.SplitRow == 0 {
		t.Log("note: split Q4+ returned no rows on this draw")
	}
	t.Log("\n" + experiment.RenderOrSplit(r))
}

// TestAblationShape runs the design-decision ablation study and checks
// the headline effects: losing OR-splitting cripples Q4 (or busts the
// budget), losing the short circuit slows Q2 severely, and losing hash
// joins makes Q3's anti-join quadratic.
func TestAblationShape(t *testing.T) {
	rows, err := experiment.Ablation(context.Background(), experiment.AblationConfig{Seed: 7, Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	byQuery := map[tpch.QueryID]experiment.AblationRow{}
	for _, r := range rows {
		byQuery[r.Query] = r
	}
	if r := byQuery[tpch.Q4]; !r.Failed["no-orsplit"] && r.Factor["no-orsplit"] < 5 {
		t.Errorf("Q4 without OR-split: factor %.2f, expected severe slowdown", r.Factor["no-orsplit"])
	}
	if r := byQuery[tpch.Q2]; r.Factor["no-shortcircuit"] < 2 {
		t.Errorf("Q2 without short circuit: factor %.2f, expected a large slowdown", r.Factor["no-shortcircuit"])
	}
	if r := byQuery[tpch.Q3]; !r.Failed["no-hashjoin"] && r.Factor["no-hashjoin"] < 5 {
		t.Errorf("Q3 without hash joins: factor %.2f, expected quadratic blow-up", r.Factor["no-hashjoin"])
	}
	t.Log("\n" + experiment.RenderAblation(rows))
}
