package experiment

import (
	"strings"
	"testing"
	"time"

	"certsql/internal/tpch"
)

func TestWriteFigure1CSV(t *testing.T) {
	rows := []Figure1Row{{
		NullRate:  0.02,
		FPPercent: map[tpch.QueryID]float64{tpch.Q1: 12.5, tpch.Q2: 100},
		Samples:   map[tpch.QueryID]int{tpch.Q1: 3, tpch.Q2: 3},
	}}
	var b strings.Builder
	if err := WriteFigure1CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", out)
	}
	if !strings.HasPrefix(lines[0], "null_rate_percent,") {
		t.Errorf("header: %q", lines[0])
	}
	// Q3/Q4 had no samples: empty cells.
	if lines[1] != "2.0,12.50,100.00,," {
		t.Errorf("row: %q", lines[1])
	}
}

func TestWriteFigure4AndTable1CSV(t *testing.T) {
	var b strings.Builder
	err := WriteFigure4CSV(&b, []Figure4Row{{
		NullRate: 0.01,
		RelPerf:  map[tpch.QueryID]float64{tpch.Q1: 1.02, tpch.Q2: 0.001, tpch.Q3: 1, tpch.Q4: 1.8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1.0,1.020000,0.001000,1.000000,1.800000") {
		t.Errorf("figure4 csv: %q", b.String())
	}

	b.Reset()
	err = WriteTable1CSV(&b, []Table1Row{{
		Multiplier: 3,
		Min:        map[tpch.QueryID]float64{tpch.Q1: 1, tpch.Q2: 0.1, tpch.Q3: 1, tpch.Q4: 2},
		Max:        map[tpch.QueryID]float64{tpch.Q1: 1.1, tpch.Q2: 0.2, tpch.Q3: 1.2, tpch.Q4: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != 5 { // header + 4 queries
		t.Errorf("table1 csv lines = %d:\n%s", got, b.String())
	}
}

func TestWriteLegacyAndRecallCSV(t *testing.T) {
	var b strings.Builder
	err := WriteLegacyCSV(&b, []LegacyPoint{{
		Rows: 64, AdomSize: 100, LegacyCost: 1000, LegacyTime: time.Millisecond,
		PlusCost: 10, PlusTime: time.Microsecond,
	}, {
		Rows: 1024, AdomSize: 2000, LegacyFailed: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "64,100,1000,1000000,false,10,1000") {
		t.Errorf("legacy csv: %q", b.String())
	}
	if !strings.Contains(b.String(), "1024,2000,0,0,true,0,0") {
		t.Errorf("legacy csv failure row: %q", b.String())
	}

	b.Reset()
	err = WriteRecallCSV(&b, []RecallResult{{
		Query: tpch.Q3, CertainReturned: 10, Recalled: 10, FalsePositives: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Q3,10,10,100.00,4,0") {
		t.Errorf("recall csv: %q", b.String())
	}
}

func TestWriteAblationCSV(t *testing.T) {
	var b strings.Builder
	err := WriteAblationCSV(&b, []AblationRow{{
		Query:  tpch.Q4,
		Factor: map[string]float64{"no-orsplit": 110.5},
		Failed: map[string]bool{"no-hashjoin": true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Q4,no-orsplit,110.5000,false") {
		t.Errorf("ablation csv: %q", b.String())
	}
	if !strings.Contains(b.String(), "Q4,no-hashjoin,,true") {
		t.Errorf("ablation csv overbudget row: %q", b.String())
	}
}
