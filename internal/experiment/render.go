package experiment

import (
	"fmt"
	"strings"

	"certsql/internal/tpch"
)

// renderTrips appends a budget-trip footer when any samples were
// dropped over budget (see the TolerateBudget config knobs): governed
// experiments degrade loudly, never silently.
func renderTrips(b *strings.Builder, trips map[tpch.QueryID]int) {
	total := 0
	for _, n := range trips {
		total += n
	}
	if total == 0 {
		return
	}
	b.WriteString("budget trips (samples dropped over the resource budget):")
	for _, q := range tpch.AllQueries {
		if trips[q] > 0 {
			fmt.Fprintf(b, " %s=%d", q, trips[q])
		}
	}
	b.WriteString("\n")
}

// sumTrips merges per-row trip counts into one per-query total.
func sumTrips(rows []map[tpch.QueryID]int) map[tpch.QueryID]int {
	out := map[tpch.QueryID]int{}
	for _, m := range rows {
		for q, n := range m {
			out[q] += n
		}
	}
	return out
}

// RenderFigure1 renders the Figure 1 series as a text table comparable
// to the paper's chart: null rate versus average % of false positives
// per query.
func RenderFigure1(rows []Figure1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1 — average % of false positives per query (lower bounds)\n")
	b.WriteString("null%   ")
	for _, q := range tpch.AllQueries {
		fmt.Fprintf(&b, "%8s", q)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5.1f   ", 100*r.NullRate)
		for _, q := range tpch.AllQueries {
			if r.Samples[q] == 0 {
				b.WriteString("       –")
				continue
			}
			fmt.Fprintf(&b, "%8.1f", r.FPPercent[q])
		}
		b.WriteString("\n")
	}
	trips := make([]map[tpch.QueryID]int, 0, len(rows))
	for _, r := range rows {
		trips = append(trips, r.BudgetTrips)
	}
	renderTrips(&b, sumTrips(trips))
	return b.String()
}

// RenderFigure4 renders the Figure 4 series: null rate versus relative
// performance t⁺/t per query.
func RenderFigure4(rows []Figure4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4 — average relative performance t⁺/t (1 = no overhead)\n")
	b.WriteString("null%   ")
	for _, q := range tpch.AllQueries {
		fmt.Fprintf(&b, "%12s", q)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5.1f   ", 100*r.NullRate)
		for _, q := range tpch.AllQueries {
			v, ok := r.RelPerf[q]
			if !ok {
				b.WriteString("           –")
				continue
			}
			fmt.Fprintf(&b, "%12.4f", v)
		}
		b.WriteString("\n")
	}
	trips := make([]map[tpch.QueryID]int, 0, len(rows))
	for _, r := range rows {
		trips = append(trips, r.BudgetTrips)
	}
	renderTrips(&b, sumTrips(trips))
	return b.String()
}

// RenderTable1 renders Table 1: ranges of relative performance per
// query and instance size.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 — ranges of average relative performance t⁺/t per instance size\n")
	b.WriteString("query   ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%19s", fmt.Sprintf("%gx", r.Multiplier))
	}
	b.WriteString("\n")
	for _, q := range tpch.AllQueries {
		fmt.Fprintf(&b, "%-8s", q)
		for _, r := range rows {
			fmt.Fprintf(&b, "%19s", fmt.Sprintf("%.4f – %.4f", r.Min[q], r.Max[q]))
		}
		b.WriteString("\n")
	}
	trips := make([]map[tpch.QueryID]int, 0, len(rows))
	for _, r := range rows {
		trips = append(trips, r.BudgetTrips)
	}
	renderTrips(&b, sumTrips(trips))
	return b.String()
}

// RenderRecall renders the precision/recall summary of Section 7.
func RenderRecall(results []RecallResult) string {
	var b strings.Builder
	b.WriteString("Precision & recall (Section 7)\n")
	b.WriteString("query   answers-certain   recalled   recall%   FPs-in-SQL   FPs-leaked-by-Q+\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-8s%16d %10d %9.1f %12d %18d\n",
			r.Query, r.CertainReturned, r.Recalled, r.Recall(), r.FalsePositives, r.LeakedFalsePositives)
	}
	trips := map[tpch.QueryID]int{}
	for _, r := range results {
		trips[r.Query] = r.BudgetTrips
	}
	renderTrips(&b, trips)
	return b.String()
}

// RenderLegacy renders the Section 5 blow-up measurements.
func RenderLegacy(points []LegacyPoint) string {
	var b strings.Builder
	b.WriteString("Section 5 — legacy translation [Libkin TODS'16] vs Q+ on R − S\n")
	b.WriteString("rows/rel   |adom|   legacy-cost      legacy-time     Q+-cost     Q+-time\n")
	for _, p := range points {
		legacyTime := p.LegacyTime.String()
		if p.LegacyFailed {
			legacyTime = "OUT OF BUDGET"
		}
		fmt.Fprintf(&b, "%8d %8d %13d %16s %11d %11s\n",
			p.Rows, p.AdomSize, p.LegacyCost, legacyTime, p.PlusCost, p.PlusTime)
	}
	return b.String()
}

// RenderOrSplit renders the optimizer-confusion comparison.
func RenderOrSplit(r *OrSplitReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OR-splitting on %s (Section 7 optimizer discussion)\n", r.Query)
	if r.UnsplitFailed {
		fmt.Fprintf(&b, "  without split: EXCEEDED ROW BUDGET after %s, %s\n", r.UnsplitTime, r.UnsplitStats.Summary())
	} else {
		fmt.Fprintf(&b, "  without split: %d rows, %s, %s\n", r.UnsplitRows, r.UnsplitTime, r.UnsplitStats.Summary())
	}
	fmt.Fprintf(&b, "  with split:    %d rows, %s, %s\n", r.SplitRow, r.SplitTime, r.SplitStats.Summary())
	if r.UnsplitStats.CostUnits > 0 {
		fmt.Fprintf(&b, "  cost ratio unsplit/split: %.1f\n",
			float64(r.UnsplitStats.CostUnits)/float64(maxInt64(1, r.SplitStats.CostUnits)))
	}
	return b.String()
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
