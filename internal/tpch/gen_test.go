package tpch_test

import (
	"strings"
	"testing"

	"certsql/internal/tpch"
	"certsql/internal/value"
)

// Realism checks on the generator: the four queries' behaviour depends
// on these distributional properties, so they are pinned here.

func TestGeneratorReferentialIntegrity(t *testing.T) {
	db := genDB(t, 0, 21)
	sizes := tpch.Config{ScaleFactor: 0.001}.Sizes()

	keys := func(rel string, col int) map[int64]bool {
		out := map[int64]bool{}
		for _, r := range db.MustTable(rel).Rows() {
			out[r[col].AsInt()] = true
		}
		return out
	}
	suppliers := keys("supplier", tpch.SSuppKey)
	parts := keys("part", tpch.PPartKey)
	orders := keys("orders", tpch.OOrderKey)
	customers := keys("customer", tpch.CCustKey)
	nations := keys("nation", tpch.NNationKey)

	if len(suppliers) != sizes.Suppliers || len(parts) != sizes.Parts ||
		len(customers) != sizes.Customers || len(orders) != sizes.Orders {
		t.Fatalf("key cardinalities: s=%d p=%d c=%d o=%d, want %+v",
			len(suppliers), len(parts), len(customers), len(orders), sizes)
	}
	if len(nations) != 25 {
		t.Fatalf("nations: %d", len(nations))
	}

	for _, r := range db.MustTable("lineitem").Rows() {
		if !orders[r[tpch.LOrderKey].AsInt()] {
			t.Fatal("lineitem references a missing order")
		}
		if !parts[r[tpch.LPartKey].AsInt()] {
			t.Fatal("lineitem references a missing part")
		}
		if !suppliers[r[tpch.LSuppKey].AsInt()] {
			t.Fatal("lineitem references a missing supplier")
		}
	}
	for _, r := range db.MustTable("orders").Rows() {
		if !customers[r[tpch.OCustKey].AsInt()] {
			t.Fatal("order references a missing customer")
		}
	}
	for _, r := range db.MustTable("supplier").Rows() {
		if !nations[r[tpch.SNationKey].AsInt()] {
			t.Fatal("supplier references a missing nation")
		}
	}
	for _, r := range db.MustTable("partsupp").Rows() {
		if !parts[r[0].AsInt()] || !suppliers[r[1].AsInt()] {
			t.Fatal("partsupp references a missing part or supplier")
		}
	}
}

func TestGeneratorDatesAndStatus(t *testing.T) {
	db := genDB(t, 0, 22)
	lo, hi := value.MustDate("1992-01-01").AsDate(), value.MustDate("1998-08-02").AsDate()

	orderDates := map[int64]int64{}
	statuses := map[string]int{}
	for _, r := range db.MustTable("orders").Rows() {
		d := r[4].AsDate()
		if d < lo || d > hi {
			t.Fatalf("order date %v out of the TPC-H range", r[4])
		}
		orderDates[r[tpch.OOrderKey].AsInt()] = d
		statuses[r[tpch.OStatus].AsString()]++
	}
	for _, s := range []string{"F", "O"} {
		if statuses[s] == 0 {
			t.Errorf("no orders with status %q (distribution: %v)", s, statuses)
		}
	}

	lineCounts := map[int64]int{}
	lateSeen := false
	for _, r := range db.MustTable("lineitem").Rows() {
		o := r[tpch.LOrderKey].AsInt()
		lineCounts[o]++
		ship := r[10].AsDate()
		commit := r[tpch.LCommitDate].AsDate()
		receipt := r[tpch.LReceiptDate].AsDate()
		if ship <= orderDates[o] {
			t.Fatal("shipped before ordered")
		}
		if receipt <= ship {
			t.Fatal("received before shipped")
		}
		if commit <= orderDates[o] {
			t.Fatal("committed before ordered")
		}
		if receipt > commit {
			lateSeen = true
		}
	}
	if !lateSeen {
		t.Error("no late lineitems at all — Q1 would be vacuous")
	}
	for o, n := range lineCounts {
		if n < 1 || n > 7 {
			t.Fatalf("order %d has %d lineitems, want 1–7", o, n)
		}
	}
}

func TestGeneratorPartNames(t *testing.T) {
	db := genDB(t, 0, 23)
	colorSet := map[string]bool{}
	for _, c := range tpch.Colors {
		colorSet[c] = true
	}
	for _, r := range db.MustTable("part").Rows() {
		words := strings.Fields(r[tpch.PName].AsString())
		if len(words) != 5 {
			t.Fatalf("part name %q has %d words, want 5", r[tpch.PName], len(words))
		}
		seen := map[string]bool{}
		for _, w := range words {
			if !colorSet[w] {
				t.Fatalf("part name word %q is not a color", w)
			}
			if seen[w] {
				t.Fatalf("part name %q repeats a color", r[tpch.PName])
			}
			seen[w] = true
		}
	}
}

func TestGeneratorSomeCustomersNeverOrder(t *testing.T) {
	db := genDB(t, 0, 24)
	ordered := map[int64]bool{}
	for _, r := range db.MustTable("orders").Rows() {
		ordered[r[tpch.OCustKey].AsInt()] = true
	}
	n := db.MustTable("customer").Len()
	without := n - len(ordered)
	// The spec says a third of customers place no orders; allow slack.
	if without < n/6 || without > n/2 {
		t.Errorf("%d of %d customers have no orders; expected roughly a third", without, n)
	}
}

func TestNullInjectionRespectsSchema(t *testing.T) {
	db := genDB(t, 0.2, 25)
	marks := map[int64]bool{}
	for _, name := range db.Schema.Names() {
		rel, _ := db.Schema.Relation(name)
		for _, r := range db.MustTable(name).Rows() {
			for i, v := range r {
				if !v.IsNull() {
					continue
				}
				if !rel.Attrs[i].Nullable {
					t.Fatalf("%s.%s is NOT NULL but contains %v", name, rel.Attrs[i].Name, v)
				}
				if marks[v.NullID()] {
					t.Fatalf("mark ⊥%d repeated — injection must use Codd nulls", v.NullID())
				}
				marks[v.NullID()] = true
			}
		}
	}
	if len(marks) == 0 {
		t.Fatal("no nulls injected at 20% rate")
	}
	// Roughly the right volume: 20% of nullable positions.
	nullable := 0
	for _, name := range db.Schema.Names() {
		rel, _ := db.Schema.Relation(name)
		perRow := 0
		for _, a := range rel.Attrs {
			if a.Nullable {
				perRow++
			}
		}
		nullable += perRow * db.MustTable(name).Len()
	}
	rate := float64(len(marks)) / float64(nullable)
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("observed null rate %.3f, want ≈ 0.20", rate)
	}
}
