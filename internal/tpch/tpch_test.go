package tpch_test

import (
	"math/rand"
	"testing"

	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

func genDB(t testing.TB, nullRate float64, seed int64) *table.Database {
	t.Helper()
	return tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: seed, NullRate: nullRate})
}

func TestGenerateShape(t *testing.T) {
	db := genDB(t, 0, 1)
	for _, want := range []struct {
		rel string
		min int
	}{
		{"region", 5}, {"nation", 25}, {"supplier", 5}, {"part", 20},
		{"customer", 10}, {"orders", 100}, {"lineitem", 100},
	} {
		tab := db.MustTable(want.rel)
		if tab.Len() < want.min {
			t.Errorf("%s: %d rows, want at least %d", want.rel, tab.Len(), want.min)
		}
	}
	if n := db.NullCount(); n != 0 {
		t.Errorf("complete instance has %d nulls", n)
	}
	db2 := genDB(t, 0.05, 2)
	if n := db2.NullCount(); n == 0 {
		t.Error("instance with null rate 0.05 has no nulls")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genDB(t, 0.02, 7)
	b := genDB(t, 0.02, 7)
	for _, rel := range []string{"orders", "lineitem", "customer"} {
		ra, rb := a.MustTable(rel), b.MustTable(rel)
		if ra.Len() != rb.Len() {
			t.Fatalf("%s: lengths differ: %d vs %d", rel, ra.Len(), rb.Len())
		}
		for i := 0; i < ra.Len(); i++ {
			if value.RowKey(ra.Row(i)) != value.RowKey(rb.Row(i)) {
				t.Fatalf("%s: row %d differs", rel, i)
			}
		}
	}
}

// TestQueriesRun parses, compiles, translates and executes all four
// queries on a small instance with nulls, under both the original query
// and its Q⁺ translation, checking the correctness containment
// Q⁺(D) ⊆ Q(D) that the paper observes on all its scenarios (recall
// experiments) — and, more fundamentally, that Q⁺ never returns a
// detected false positive.
func TestQueriesRun(t *testing.T) {
	db := genDB(t, 0.04, 3)
	rng := rand.New(rand.NewSource(42))
	sizes := tpch.Config{ScaleFactor: 0.001}.Sizes()

	for _, qid := range tpch.AllQueries {
		qid := qid
		t.Run(qid.String(), func(t *testing.T) {
			q, err := sql.Parse(qid.SQL())
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			params := qid.Params(rng, sizes)
			compiled, err := compile.Compile(q, db.Schema, params)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			orig, err := eval.New(db, eval.Options{Semantics: value.SQL3VL}).Eval(compiled.Expr)
			if err != nil {
				t.Fatalf("eval original: %v", err)
			}

			tr := &certain.Translator{Sch: db.Schema, Mode: certain.ModeSQL, SimplifyNulls: true, SplitOrs: true}
			plus := tr.Plus(compiled.Expr)
			correct, err := eval.New(db, eval.Options{Semantics: value.SQL3VL}).Eval(plus)
			if err != nil {
				t.Fatalf("eval Q+: %v", err)
			}

			// Q⁺ answers must all be answers of Q (the translation only
			// strengthens conditions of this query class).
			origKeys := orig.KeySet()
			for _, r := range correct.Rows() {
				if _, ok := origKeys[value.RowKey(r)]; !ok {
					t.Errorf("Q+ returned %v not in Q's answers", r)
				}
			}

			// No Q⁺ answer may be a detected false positive.
			detect := tpch.DetectorFor(qid)
			for _, r := range correct.Rows() {
				if detect(db, params, r) {
					t.Errorf("Q+ returned detected false positive %v", r)
				}
			}
			t.Logf("%s: |Q| = %d, |Q+| = %d", qid, orig.Len(), correct.Len())
		})
	}
}

// TestFullQueriesRun runs the aggregate-bearing full forms of the four
// queries in standard mode and checks consistency with the aggregate-
// free forms the experiments use: e.g. Q3's COUNT(*) must equal the
// number of rows the bare form returns.
func TestFullQueriesRun(t *testing.T) {
	db := genDB(t, 0.03, 9)
	rng := rand.New(rand.NewSource(99))
	sizes := tpch.Config{ScaleFactor: 0.001}.Sizes()

	for _, qid := range tpch.AllQueries {
		params := qid.Params(rng, sizes)

		run := func(src string) *table.Table {
			t.Helper()
			q, err := sql.Parse(src)
			if err != nil {
				t.Fatalf("%s: parse: %v", qid, err)
			}
			compiled, err := compile.Compile(q, db.Schema, params)
			if err != nil {
				t.Fatalf("%s: compile: %v", qid, err)
			}
			res, err := eval.New(db, eval.Options{Semantics: value.SQL3VL}).Eval(compiled.Expr)
			if err != nil {
				t.Fatalf("%s: eval: %v", qid, err)
			}
			return res
		}
		bare := run(qid.SQL())
		full := run(qid.FullSQL())

		switch qid {
		case tpch.Q3, tpch.Q4:
			if full.Len() != 1 {
				t.Fatalf("%s full: %d rows", qid, full.Len())
			}
			if got := full.Row(0)[0].AsInt(); got != int64(bare.Len()) {
				t.Errorf("%s: COUNT(*) = %d but bare form has %d rows", qid, got, bare.Len())
			}
		case tpch.Q1:
			// Sum of per-supplier counts equals the bare row count.
			var sum int64
			for _, r := range full.Rows() {
				sum += r[1].AsInt()
			}
			if sum != int64(bare.Len()) {
				t.Errorf("Q1: counts sum to %d, bare form has %d rows", sum, bare.Len())
			}
		case tpch.Q2:
			var sum int64
			for _, r := range full.Rows() {
				sum += r[1].AsInt()
			}
			if sum != int64(bare.Len()) {
				t.Errorf("Q2: counts sum to %d, bare form has %d rows", sum, bare.Len())
			}
		}
	}
}

// TestSizesProportions checks the TPC-H table proportions.
func TestSizesProportions(t *testing.T) {
	sz := tpch.Config{ScaleFactor: 0.01}.Sizes()
	if sz.Orders != sz.Customers*10 {
		t.Errorf("orders = %d, want 10 × customers = %d", sz.Orders, sz.Customers*10)
	}
	if sz.PartSupps != sz.Parts*4 {
		t.Errorf("partsupps = %d, want 4 × parts = %d", sz.PartSupps, sz.Parts*4)
	}
}
