// Package tpch provides the TPC-H substrate of the reproduction: the
// benchmark schema, a DBGen-like deterministic data generator, null
// injection at a configurable null rate, the four experiment queries
// Q1–Q4 of the paper, and the paper's false-positive detection
// algorithms (Section 4).
package tpch

import (
	"certsql/internal/schema"
	"certsql/internal/value"
)

// Column positions used by the false-positive detectors. They must
// match the attribute order in Schema.
const (
	LOrderKey    = 0
	LPartKey     = 1
	LSuppKey     = 2
	LLineNumber  = 3
	LQuantity    = 4
	LCommitDate  = 11
	LReceiptDate = 12

	OOrderKey = 0
	OCustKey  = 1
	OStatus   = 2

	PPartKey = 0
	PName    = 1

	SSuppKey    = 0
	SNationKey  = 3
	CCustKey    = 0
	CNationKey  = 3
	CAcctBal    = 5
	NNationKey  = 0
	NName       = 1
	NRegionKey  = 2
	RRegionKey  = 0
	RName       = 1
	PSPartKey   = 0
	PSSuppKey   = 1
	PSAvailQty  = 2
	PSSupplyCst = 3
)

// Schema returns the TPC-H schema. Following the paper's setup
// (Section 3), every attribute that is not part of a primary key is
// nullable; nulls are injected only into nullable attributes.
func Schema() *schema.Schema {
	s := schema.New()
	add := func(name string, key []int, attrs ...schema.Attribute) {
		keySet := map[int]bool{}
		for _, k := range key {
			keySet[k] = true
		}
		for i := range attrs {
			attrs[i].Nullable = !keySet[i]
		}
		s.MustAdd(&schema.Relation{Name: name, Attrs: attrs, Key: key})
	}

	at := func(name string, kind value.Kind) schema.Attribute {
		return schema.Attribute{Name: name, Type: kind}
	}

	add("region", []int{0},
		at("r_regionkey", value.KindInt),
		at("r_name", value.KindString),
		at("r_comment", value.KindString),
	)
	add("nation", []int{0},
		at("n_nationkey", value.KindInt),
		at("n_name", value.KindString),
		at("n_regionkey", value.KindInt),
		at("n_comment", value.KindString),
	)
	add("supplier", []int{0},
		at("s_suppkey", value.KindInt),
		at("s_name", value.KindString),
		at("s_address", value.KindString),
		at("s_nationkey", value.KindInt),
		at("s_phone", value.KindString),
		at("s_acctbal", value.KindFloat),
		at("s_comment", value.KindString),
	)
	add("part", []int{0},
		at("p_partkey", value.KindInt),
		at("p_name", value.KindString),
		at("p_mfgr", value.KindString),
		at("p_brand", value.KindString),
		at("p_type", value.KindString),
		at("p_size", value.KindInt),
		at("p_container", value.KindString),
		at("p_retailprice", value.KindFloat),
		at("p_comment", value.KindString),
	)
	add("partsupp", []int{0, 1},
		at("ps_partkey", value.KindInt),
		at("ps_suppkey", value.KindInt),
		at("ps_availqty", value.KindInt),
		at("ps_supplycost", value.KindFloat),
		at("ps_comment", value.KindString),
	)
	add("customer", []int{0},
		at("c_custkey", value.KindInt),
		at("c_name", value.KindString),
		at("c_address", value.KindString),
		at("c_nationkey", value.KindInt),
		at("c_phone", value.KindString),
		at("c_acctbal", value.KindFloat),
		at("c_mktsegment", value.KindString),
		at("c_comment", value.KindString),
	)
	add("orders", []int{0},
		at("o_orderkey", value.KindInt),
		at("o_custkey", value.KindInt),
		at("o_orderstatus", value.KindString),
		at("o_totalprice", value.KindFloat),
		at("o_orderdate", value.KindDate),
		at("o_orderpriority", value.KindString),
		at("o_clerk", value.KindString),
		at("o_shippriority", value.KindInt),
		at("o_comment", value.KindString),
	)
	add("lineitem", []int{0, 3},
		at("l_orderkey", value.KindInt),
		at("l_partkey", value.KindInt),
		at("l_suppkey", value.KindInt),
		at("l_linenumber", value.KindInt),
		at("l_quantity", value.KindInt),
		at("l_extendedprice", value.KindFloat),
		at("l_discount", value.KindFloat),
		at("l_tax", value.KindFloat),
		at("l_returnflag", value.KindString),
		at("l_linestatus", value.KindString),
		at("l_shipdate", value.KindDate),
		at("l_commitdate", value.KindDate),
		at("l_receiptdate", value.KindDate),
		at("l_shipinstruct", value.KindString),
		at("l_shipmode", value.KindString),
		at("l_comment", value.KindString),
	)
	return s
}
