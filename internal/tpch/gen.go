package tpch

import (
	"fmt"
	"math/rand"
	"strings"

	"certsql/internal/table"
	"certsql/internal/value"
)

// Config controls instance generation.
//
// The paper uses DBGen instances from 1 GB (scale factor 1, about
// 8.7 · 10⁶ tuples) up to 10 GB for the performance experiments, and
// DataFiller instances scaled down by 10³ for the false-positive
// experiments. This in-memory reproduction uses the same proportions at
// micro scale: ScaleFactor 0.001 corresponds to the paper's scaled-down
// DataFiller instances; the relative row counts between tables follow
// the TPC-H specification (customer : orders : lineitem ≈ 1 : 10 : 40).
type Config struct {
	// ScaleFactor scales all row counts; 1.0 is the TPC-H 1 GB scale.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
	// NullRate, when positive, injects nulls into nullable attributes
	// with this probability (the paper's "null rate", Section 3).
	NullRate float64
}

// Sizes reports the row counts a configuration produces.
type Sizes struct {
	Suppliers, Parts, PartSupps, Customers, Orders, Lineitems int
}

// Sizes computes row counts from the scale factor, with small-instance
// floors so that the schema's join structure is always exercised.
func (c Config) Sizes() Sizes {
	n := func(base int, min int) int {
		v := int(float64(base) * c.ScaleFactor)
		if v < min {
			return min
		}
		return v
	}
	s := Sizes{
		Suppliers: n(10_000, 5),
		Parts:     n(200_000, 20),
		Customers: n(150_000, 10),
	}
	s.PartSupps = s.Parts * 4
	s.Orders = s.Customers * 10
	return s
}

// Generate produces a complete (null-free) TPC-H instance, then injects
// nulls if Config.NullRate is positive. Generation is deterministic in
// the seed.
func Generate(cfg Config) *table.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := table.NewDatabase(Schema())
	sz := cfg.Sizes()
	g := &generator{rng: rng, db: db}

	g.regions()
	g.nations()
	g.suppliers(sz.Suppliers)
	g.parts(sz.Parts)
	g.partsupps(sz.Parts, sz.Suppliers)
	g.customers(sz.Customers)
	g.ordersAndLineitems(sz.Orders, sz.Customers, sz.Parts, sz.Suppliers)

	if cfg.NullRate > 0 {
		InjectNulls(db, cfg.NullRate, rng)
	}
	return db
}

type generator struct {
	rng *rand.Rand
	db  *table.Database
}

func (g *generator) insert(rel string, row table.Row) {
	if err := g.db.Insert(rel, row); err != nil {
		panic(fmt.Sprintf("tpch: generator bug: %v", err))
	}
}

func (g *generator) comment() value.Value {
	n := 3 + g.rng.Intn(5)
	words := make([]string, n)
	for i := range words {
		words[i] = commentWords[g.rng.Intn(len(commentWords))]
	}
	return value.Str(strings.Join(words, " "))
}

func (g *generator) phone(nationKey int64) value.Value {
	return value.Str(fmt.Sprintf("%d-%03d-%03d-%04d",
		10+nationKey, g.rng.Intn(900)+100, g.rng.Intn(900)+100, g.rng.Intn(9000)+1000))
}

func (g *generator) money(lo, hi float64) value.Value {
	cents := int64((lo + g.rng.Float64()*(hi-lo)) * 100)
	return value.Float(float64(cents) / 100)
}

var (
	startDate = value.MustDate("1992-01-01").AsDate()
	endDate   = value.MustDate("1998-08-02").AsDate()
)

func (g *generator) regions() {
	for i, name := range Regions {
		g.insert("region", table.Row{value.Int(int64(i)), value.Str(name), g.comment()})
	}
}

func (g *generator) nations() {
	for i, n := range Nations {
		g.insert("nation", table.Row{
			value.Int(int64(i)), value.Str(n.Name), value.Int(n.RegionKey), g.comment(),
		})
	}
}

func (g *generator) suppliers(n int) {
	for i := 1; i <= n; i++ {
		nat := int64(g.rng.Intn(len(Nations)))
		g.insert("supplier", table.Row{
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("Supplier#%09d", i)),
			value.Str(fmt.Sprintf("%d %s Way", g.rng.Intn(999)+1, commentWords[g.rng.Intn(len(commentWords))])),
			value.Int(nat),
			g.phone(nat),
			g.money(-999.99, 9999.99),
			g.comment(),
		})
	}
}

// partName composes p_name from five distinct color words, per the
// TPC-H specification; Q4's LIKE '%color%' predicate selects on it.
func (g *generator) partName() value.Value {
	idx := g.rng.Perm(len(Colors))[:5]
	words := make([]string, 5)
	for i, j := range idx {
		words[i] = Colors[j]
	}
	return value.Str(strings.Join(words, " "))
}

func (g *generator) parts(n int) {
	for i := 1; i <= n; i++ {
		g.insert("part", table.Row{
			value.Int(int64(i)),
			g.partName(),
			value.Str(fmt.Sprintf("Manufacturer#%d", g.rng.Intn(5)+1)),
			value.Str(fmt.Sprintf("Brand#%d%d", g.rng.Intn(5)+1, g.rng.Intn(5)+1)),
			value.Str(typeSyllable1[g.rng.Intn(len(typeSyllable1))] + " " +
				typeSyllable2[g.rng.Intn(len(typeSyllable2))] + " " +
				typeSyllable3[g.rng.Intn(len(typeSyllable3))]),
			value.Int(int64(g.rng.Intn(50) + 1)),
			value.Str(containerSizes[g.rng.Intn(len(containerSizes))] + " " +
				containerKinds[g.rng.Intn(len(containerKinds))]),
			g.money(900, 2000),
			g.comment(),
		})
	}
}

func (g *generator) partsupps(parts, suppliers int) {
	for p := 1; p <= parts; p++ {
		for k := 0; k < 4; k++ {
			s := (p+k*(suppliers/4+1))%suppliers + 1
			g.insert("partsupp", table.Row{
				value.Int(int64(p)),
				value.Int(int64(s)),
				value.Int(int64(g.rng.Intn(9999) + 1)),
				g.money(1, 1000),
				g.comment(),
			})
		}
	}
}

func (g *generator) customers(n int) {
	for i := 1; i <= n; i++ {
		nat := int64(g.rng.Intn(len(Nations)))
		g.insert("customer", table.Row{
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("Customer#%09d", i)),
			value.Str(fmt.Sprintf("%d %s Street", g.rng.Intn(999)+1, commentWords[g.rng.Intn(len(commentWords))])),
			value.Int(nat),
			g.phone(nat),
			g.money(-999.99, 9999.99),
			value.Str(Segments[g.rng.Intn(len(Segments))]),
			g.comment(),
		})
	}
}

// ordersAndLineitems generates orders with 1–7 lineitems each. A third
// of customers place no orders (per the TPC-H spec), which matters for
// Q2 (customers without recent orders). Order status is 'F' (finalized)
// when every lineitem has been received, mirroring DBGen's derivation.
func (g *generator) ordersAndLineitems(orders, customers, parts, suppliers int) {
	today := endDate - 100
	for o := 1; o <= orders; o++ {
		// Customers with custkey ≡ 0 (mod 3) never place orders.
		cust := int64(g.rng.Intn(customers) + 1)
		for cust%3 == 0 {
			cust = int64(g.rng.Intn(customers) + 1)
		}
		orderDate := startDate + int64(g.rng.Intn(int(endDate-startDate-121)))
		nItems := 1 + g.rng.Intn(7)
		allReceived := true
		var total float64

		type item struct {
			part, supp          int64
			qty                 int64
			price               float64
			ship, commit, recpt int64
		}
		items := make([]item, nItems)
		for i := range items {
			it := &items[i]
			it.part = int64(g.rng.Intn(parts) + 1)
			it.supp = int64(g.rng.Intn(suppliers) + 1)
			it.qty = int64(g.rng.Intn(50) + 1)
			it.price = float64(it.qty) * (900 + g.rng.Float64()*1100)
			it.ship = orderDate + int64(g.rng.Intn(121)+1)
			it.commit = orderDate + int64(g.rng.Intn(91)+30)
			it.recpt = it.ship + int64(g.rng.Intn(30)+1)
			if it.recpt > today {
				allReceived = false
			}
			total += it.price
		}
		status := "O"
		if allReceived {
			status = "F"
		} else if g.rng.Intn(2) == 0 {
			status = "P"
		}

		g.insert("orders", table.Row{
			value.Int(int64(o)),
			value.Int(cust),
			value.Str(status),
			value.Float(float64(int64(total*100)) / 100),
			value.Date(orderDate),
			value.Str(Priorities[g.rng.Intn(len(Priorities))]),
			value.Str(fmt.Sprintf("Clerk#%09d", g.rng.Intn(1000)+1)),
			value.Int(0),
			g.comment(),
		})
		for i, it := range items {
			flag := "N"
			if it.recpt <= today && g.rng.Intn(2) == 0 {
				flag = "R"
			} else if it.recpt <= today {
				flag = "A"
			}
			lineStatus := "O"
			if it.ship <= today {
				lineStatus = "F"
			}
			g.insert("lineitem", table.Row{
				value.Int(int64(o)),
				value.Int(it.part),
				value.Int(it.supp),
				value.Int(int64(i + 1)),
				value.Int(it.qty),
				value.Float(float64(int64(it.price*100)) / 100),
				value.Float(float64(g.rng.Intn(11)) / 100),
				value.Float(float64(g.rng.Intn(9)) / 100),
				value.Str(flag),
				value.Str(lineStatus),
				value.Date(it.ship),
				value.Date(it.commit),
				value.Date(it.recpt),
				value.Str(ShipInstructs[g.rng.Intn(len(ShipInstructs))]),
				value.Str(ShipModes[g.rng.Intn(len(ShipModes))]),
				g.comment(),
			})
		}
	}
}

// InjectNulls replaces each nullable attribute value with a fresh
// marked null with probability rate — the coin-flip procedure of
// Section 3 of the paper. Key attributes and other non-nullable
// attributes are never nulled. Rows are replaced rather than mutated,
// so injecting into a Clone leaves the original database intact.
func InjectNulls(db *table.Database, rate float64, rng *rand.Rand) {
	InjectNullsInto(db, rate, rng)
}

// InjectNullsInto is InjectNulls restricted to the named tables (all
// tables when none are named). The paper's experiments choose which
// attributes receive nulls per scenario; restricting injection leaves
// the remaining tables complete, so their nullable columns stay
// null-free in the data — the case a statistics-driven planner can
// prove and exploit.
func InjectNullsInto(db *table.Database, rate float64, rng *rand.Rand, tables ...string) {
	names := db.Schema.Names()
	if len(tables) > 0 {
		names = tables
	}
	for _, name := range names {
		rel, _ := db.Schema.Relation(name)
		t := db.MustTable(name)
		for ri := 0; ri < t.Len(); ri++ {
			row := t.Row(ri)
			var replaced table.Row
			for i, a := range rel.Attrs {
				if !a.Nullable || rng.Float64() >= rate {
					continue
				}
				if replaced == nil {
					replaced = make(table.Row, len(row))
					copy(replaced, row)
				}
				replaced[i] = db.FreshNull()
			}
			if replaced != nil {
				// Route through the database so the NOT NULL
				// accounting behind ConformsNonNull stays exact.
				if err := db.ReplaceRow(name, ri, replaced); err != nil {
					panic(err) // only nullable attrs are touched
				}
			}
		}
	}
}
