package tpch

import (
	"math/rand"

	"certsql/internal/compile"
)

// QueryID identifies one of the four experiment queries.
type QueryID int

// The four queries of Section 3 of the paper: two TPC-H queries with
// NOT EXISTS (21 and 22, here Q1 and Q2) and two textbook queries
// (Q3 and Q4).
const (
	Q1 QueryID = iota + 1
	Q2
	Q3
	Q4
)

// String names the query.
func (q QueryID) String() string {
	return [...]string{"", "Q1", "Q2", "Q3", "Q4"}[q]
}

// AllQueries lists Q1–Q4.
var AllQueries = []QueryID{Q1, Q2, Q3, Q4}

// SQL returns the query text, verbatim from Section 3 of the paper
// (aggregates in the outer select list dropped, as the paper does,
// since they are irrelevant to false positives and relative timing).
func (q QueryID) SQL() string {
	switch q {
	case Q1:
		// TPC-H query 21: suppliers who kept orders waiting — the only
		// supplier in a multi-supplier finalized order who missed the
		// committed delivery date.
		return `
SELECT s_suppkey, o_orderkey
FROM supplier, lineitem l1, orders, nation
WHERE s_suppkey = l1.l_suppkey
  AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
        SELECT *
        FROM lineitem l2
        WHERE l2.l_orderkey = l1.l_orderkey
          AND l2.l_suppkey <> l1.l_suppkey )
  AND NOT EXISTS (
        SELECT *
        FROM lineitem l3
        WHERE l3.l_orderkey = l1.l_orderkey
          AND l3.l_suppkey <> l1.l_suppkey
          AND l3.l_receiptdate > l3.l_commitdate )
  AND s_nationkey = n_nationkey
  AND n_name = $nation`
	case Q2:
		// TPC-H query 22: customers in given countries with above-
		// average positive balance and no orders.
		return `
SELECT c_custkey, c_nationkey
FROM customer
WHERE c_nationkey IN ($countries)
  AND c_acctbal > (
        SELECT AVG(c_acctbal)
        FROM customer
        WHERE c_acctbal > 0.00
          AND c_nationkey IN ($countries) )
  AND NOT EXISTS (
        SELECT *
        FROM orders
        WHERE o_custkey = c_custkey )`
	case Q3:
		// Textbook: orders supplied entirely by one given supplier.
		return `
SELECT o_orderkey
FROM orders
WHERE NOT EXISTS (
        SELECT *
        FROM lineitem
        WHERE l_orderkey = o_orderkey
          AND l_suppkey <> $supp_key )`
	case Q4:
		// Textbook: orders not supplied with any part of a given color
		// by any supplier from a given nation.
		return `
SELECT o_orderkey
FROM orders
WHERE NOT EXISTS (
        SELECT *
        FROM lineitem, part, supplier, nation
        WHERE l_orderkey = o_orderkey
          AND l_partkey = p_partkey
          AND l_suppkey = s_suppkey
          AND p_name LIKE '%'||$color||'%'
          AND s_nationkey = n_nationkey
          AND n_name = $nation )`
	default:
		panic("tpch: unknown query")
	}
}

// FullSQL returns the aggregate-bearing form of the query, closest to
// the original TPC-H text (query 21's numwait count, query 22's
// per-country count and balance sum). The paper drops the aggregates
// because they do not affect false positives or relative timings; the
// engine runs these full forms in *standard* mode (certain answers
// under aggregation are future work — paper Section 8). The textbook
// queries Q3/Q4 gain a result count. Item aliases are not part of the
// dialect, so ORDER BY uses output positions.
func (q QueryID) FullSQL() string {
	switch q {
	case Q1:
		return `
SELECT s_suppkey, COUNT(*)
FROM supplier, lineitem l1, orders, nation
WHERE s_suppkey = l1.l_suppkey
  AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
        SELECT *
        FROM lineitem l2
        WHERE l2.l_orderkey = l1.l_orderkey
          AND l2.l_suppkey <> l1.l_suppkey )
  AND NOT EXISTS (
        SELECT *
        FROM lineitem l3
        WHERE l3.l_orderkey = l1.l_orderkey
          AND l3.l_suppkey <> l1.l_suppkey
          AND l3.l_receiptdate > l3.l_commitdate )
  AND s_nationkey = n_nationkey
  AND n_name = $nation
GROUP BY s_suppkey
ORDER BY 2 DESC, 1
LIMIT 100`
	case Q2:
		return `
SELECT c_nationkey, COUNT(*), SUM(c_acctbal)
FROM customer
WHERE c_nationkey IN ($countries)
  AND c_acctbal > (
        SELECT AVG(c_acctbal)
        FROM customer
        WHERE c_acctbal > 0.00
          AND c_nationkey IN ($countries) )
  AND NOT EXISTS (
        SELECT *
        FROM orders
        WHERE o_custkey = c_custkey )
GROUP BY c_nationkey
ORDER BY c_nationkey`
	case Q3:
		return `
SELECT COUNT(*)
FROM orders
WHERE NOT EXISTS (
        SELECT *
        FROM lineitem
        WHERE l_orderkey = o_orderkey
          AND l_suppkey <> $supp_key )`
	case Q4:
		return `
SELECT COUNT(*)
FROM orders
WHERE NOT EXISTS (
        SELECT *
        FROM lineitem, part, supplier, nation
        WHERE l_orderkey = o_orderkey
          AND l_partkey = p_partkey
          AND l_suppkey = s_suppkey
          AND p_name LIKE '%'||$color||'%'
          AND s_nationkey = n_nationkey
          AND n_name = $nation )`
	default:
		panic("tpch: unknown query")
	}
}

// Params draws random parameter bindings for the query, following
// Section 3: $nation is a random nation, $countries a list of 7
// distinct nation keys, $supp_key a random supplier key, $color a
// random color word.
func (q QueryID) Params(rng *rand.Rand, sz Sizes) compile.Params {
	switch q {
	case Q1:
		return compile.Params{"nation": Nations[rng.Intn(len(Nations))].Name}
	case Q2:
		perm := rng.Perm(len(Nations))[:7]
		keys := make([]int64, len(perm))
		for i, p := range perm {
			keys[i] = int64(p)
		}
		return compile.Params{"countries": keys}
	case Q3:
		return compile.Params{"supp_key": int64(rng.Intn(sz.Suppliers) + 1)}
	case Q4:
		return compile.Params{
			"color":  Colors[rng.Intn(len(Colors))],
			"nation": Nations[rng.Intn(len(Nations))].Name,
		}
	default:
		panic("tpch: unknown query")
	}
}
