package tpch_test

import (
	"testing"

	"certsql/internal/certain"
	"certsql/internal/compile"
	"certsql/internal/eval"
	"certsql/internal/sql"
	"certsql/internal/table"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// These tests validate the paper's false-positive detection algorithms
// (Section 4) against the brute-force certain-answer ground truth on
// hand-crafted mini instances: every tuple a detector flags must indeed
// not be a certain answer, and the crafted certain answers must never
// be flagged.

// miniDB builds an empty TPC-H database plus row-construction helpers
// with constant filler for the columns irrelevant to the queries.
type miniDB struct {
	t  *testing.T
	db *table.Database
}

func newMini(t *testing.T) *miniDB {
	m := &miniDB{t: t, db: table.NewDatabase(tpch.Schema())}
	// Minimal geography: region 0, nations FRANCE(0) and CHINA(1).
	m.insert("region", value.Int(0), value.Str("EUROPE"), value.Str("c"))
	m.insert("nation", value.Int(0), value.Str("FRANCE"), value.Int(0), value.Str("c"))
	m.insert("nation", value.Int(1), value.Str("CHINA"), value.Int(0), value.Str("c"))
	return m
}

func (m *miniDB) insert(rel string, vals ...value.Value) {
	m.t.Helper()
	if err := m.db.Insert(rel, vals); err != nil {
		m.t.Fatal(err)
	}
}

func (m *miniDB) null() value.Value { return m.db.FreshNull() }

func (m *miniDB) supplier(key, nation value.Value) {
	m.insert("supplier", key, value.Str("S"), value.Str("addr"), nation,
		value.Str("11-111-111-1111"), value.Float(100), value.Str("c"))
}

func (m *miniDB) part(key, name value.Value) {
	m.insert("part", key, name, value.Str("M"), value.Str("B"), value.Str("T"),
		value.Int(1), value.Str("BOX"), value.Float(10), value.Str("c"))
}

func (m *miniDB) customer(key, nation, acctbal value.Value) {
	m.insert("customer", key, value.Str("C"), value.Str("addr"), nation,
		value.Str("11-111-111-1111"), acctbal, value.Str("BUILDING"), value.Str("c"))
}

func (m *miniDB) order(key, cust, status value.Value) {
	m.insert("orders", key, cust, status, value.Float(100),
		value.MustDate("1995-01-01"), value.Str("1-URGENT"), value.Str("Clerk#1"),
		value.Int(0), value.Str("c"))
}

func (m *miniDB) lineitem(order, part, supp, line, commit, receipt value.Value) {
	ship := value.MustDate("1995-02-01")
	m.insert("lineitem", order, part, supp, line, value.Int(1), value.Float(10),
		value.Float(0), value.Float(0), value.Str("N"), value.Str("O"),
		ship, commit, receipt,
		value.Str("NONE"), value.Str("MAIL"), value.Str("c"))
}

// runQuery evaluates a query under SQL semantics and returns the result
// and the compiled expression.
func runQuery(t *testing.T, db *table.Database, qid tpch.QueryID, params compile.Params) (*table.Table, *compile.Compiled) {
	t.Helper()
	q, err := sql.Parse(qid.SQL())
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := compile.Compile(q, db.Schema, params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.New(db, eval.Options{Semantics: value.SQL3VL}).Eval(compiled.Expr)
	if err != nil {
		t.Fatal(err)
	}
	return res, compiled
}

// checkDetectorSound verifies the detector's verdicts against the
// brute-force ground truth: flagged ⟹ not certain.
func checkDetectorSound(t *testing.T, db *table.Database, qid tpch.QueryID, params compile.Params) (flagged, kept int) {
	t.Helper()
	answers, compiled := runQuery(t, db, qid, params)
	cert, err := certain.CertainAnswers(compiled.Expr, db, certain.BruteForceOptions{})
	if err != nil {
		t.Fatalf("brute force: %v", err)
	}
	certKeys := cert.KeySet()
	detect := tpch.DetectorFor(qid)
	for _, row := range answers.Rows() {
		_, isCertain := certKeys[value.RowKey(row)]
		if detect(db, params, row) {
			flagged++
			if isCertain {
				t.Errorf("%s: detector flagged certain answer %v", qid, row)
			}
		} else {
			kept++
		}
	}
	return flagged, kept
}

func TestDetectorQ3(t *testing.T) {
	m := newMini(t)
	for _, k := range []int64{5, 7} {
		m.supplier(value.Int(k), value.Int(0))
	}
	// Order 1: fully supplied by 5 — a certain answer.
	m.order(value.Int(1), value.Int(1), value.Str("F"))
	m.lineitem(value.Int(1), value.Int(1), value.Int(5), value.Int(1),
		value.MustDate("1995-03-01"), value.MustDate("1995-02-20"))
	// Order 2: a lineitem with unknown supplier — SQL answer, false positive.
	m.order(value.Int(2), value.Int(1), value.Str("F"))
	m.lineitem(value.Int(2), value.Int(1), m.null(), value.Int(1),
		value.MustDate("1995-03-01"), value.MustDate("1995-02-20"))
	// Order 3: supplied by 7 — not an answer at all.
	m.order(value.Int(3), value.Int(1), value.Str("F"))
	m.lineitem(value.Int(3), value.Int(1), value.Int(7), value.Int(1),
		value.MustDate("1995-03-01"), value.MustDate("1995-02-20"))
	m.part(value.Int(1), value.Str("azure plain"))
	m.customer(value.Int(1), value.Int(0), value.Float(50))

	params := compile.Params{"supp_key": int64(5)}
	answers, _ := runQuery(t, m.db, tpch.Q3, params)
	if answers.Len() != 2 {
		t.Fatalf("SQL answers: %v, want orders 1 and 2", answers.SortedStrings())
	}
	flagged, kept := checkDetectorSound(t, m.db, tpch.Q3, params)
	if flagged != 1 || kept != 1 {
		t.Errorf("Q3 detector: flagged %d, kept %d; want 1 and 1", flagged, kept)
	}
}

func TestDetectorQ2(t *testing.T) {
	m := newMini(t)
	// Customers 1 (rich, no orders) and 2 (poor).
	m.customer(value.Int(1), value.Int(0), value.Float(900))
	m.customer(value.Int(2), value.Int(0), value.Float(10))
	// One order with an unknown customer: it could be customer 1's.
	m.order(value.Int(1), m.null(), value.Str("F"))

	params := compile.Params{"countries": []int64{0, 1}}
	answers, _ := runQuery(t, m.db, tpch.Q2, params)
	if answers.Len() != 1 {
		t.Fatalf("SQL answers: %v, want just customer 1", answers.SortedStrings())
	}
	flagged, kept := checkDetectorSound(t, m.db, tpch.Q2, params)
	if flagged != 1 || kept != 0 {
		t.Errorf("Q2 detector: flagged %d, kept %d; want 1 and 0", flagged, kept)
	}

	// Control: without the anonymous order, customer 1 is certain and
	// the detector stays silent.
	m2 := newMini(t)
	m2.customer(value.Int(1), value.Int(0), value.Float(900))
	m2.customer(value.Int(2), value.Int(0), value.Float(10))
	m2.order(value.Int(1), value.Int(2), value.Str("F"))
	flagged2, kept2 := checkDetectorSound(t, m2.db, tpch.Q2, params)
	if flagged2 != 0 || kept2 != 1 {
		t.Errorf("Q2 control: flagged %d, kept %d; want 0 and 1", flagged2, kept2)
	}
}

func TestDetectorQ1(t *testing.T) {
	m := newMini(t)
	m.supplier(value.Int(1), value.Int(0)) // FRANCE
	m.supplier(value.Int(2), value.Int(0))
	m.part(value.Int(1), value.Str("plain"))
	m.customer(value.Int(1), value.Int(0), value.Float(50))

	late := func() (commit, receipt value.Value) {
		return value.MustDate("1995-02-10"), value.MustDate("1995-03-01")
	}
	onTime := func() (commit, receipt value.Value) {
		return value.MustDate("1995-03-10"), value.MustDate("1995-03-01")
	}

	// Order 10: supplier 1 late; supplier 2's commit date unknown — the
	// answer (1, 10) is a potential false positive.
	m.order(value.Int(10), value.Int(1), value.Str("F"))
	c, r := late()
	m.lineitem(value.Int(10), value.Int(1), value.Int(1), value.Int(1), c, r)
	m.lineitem(value.Int(10), value.Int(1), value.Int(2), value.Int(2), m.null(), value.MustDate("1995-03-01"))

	// Order 20: supplier 1 late, supplier 2 cleanly on time — the
	// answer (1, 20) is certain.
	m.order(value.Int(20), value.Int(1), value.Str("F"))
	c, r = late()
	m.lineitem(value.Int(20), value.Int(1), value.Int(1), value.Int(1), c, r)
	c, r = onTime()
	m.lineitem(value.Int(20), value.Int(1), value.Int(2), value.Int(2), c, r)

	params := compile.Params{"nation": "FRANCE"}
	answers, _ := runQuery(t, m.db, tpch.Q1, params)
	if answers.Len() != 2 {
		t.Fatalf("SQL answers: %v, want (1,10) and (1,20)", answers.SortedStrings())
	}
	flagged, kept := checkDetectorSound(t, m.db, tpch.Q1, params)
	if flagged != 1 || kept != 1 {
		t.Errorf("Q1 detector: flagged %d, kept %d; want 1 and 1", flagged, kept)
	}
}

func TestDetectorQ4(t *testing.T) {
	m := newMini(t)
	m.supplier(value.Int(1), value.Int(0)) // FRANCE
	m.part(value.Int(1), value.Str("azure shiny"))
	m.part(value.Int(2), value.Str("plain"))
	m.customer(value.Int(1), value.Int(0), value.Float(50))
	dates := func() (commit, receipt value.Value) {
		return value.MustDate("1995-03-10"), value.MustDate("1995-03-01")
	}

	// Order 1: a lineitem with unknown part from a FRANCE supplier — it
	// might be the azure part, so the answer is a false positive.
	m.order(value.Int(1), value.Int(1), value.Str("F"))
	c, r := dates()
	m.lineitem(value.Int(1), m.null(), value.Int(1), value.Int(1), c, r)

	// Order 2: plainly non-azure — a certain answer.
	m.order(value.Int(2), value.Int(1), value.Str("F"))
	c, r = dates()
	m.lineitem(value.Int(2), value.Int(2), value.Int(1), value.Int(1), c, r)

	params := compile.Params{"color": "azure", "nation": "FRANCE"}
	answers, _ := runQuery(t, m.db, tpch.Q4, params)
	if answers.Len() != 2 {
		t.Fatalf("SQL answers: %v, want orders 1 and 2", answers.SortedStrings())
	}
	flagged, kept := checkDetectorSound(t, m.db, tpch.Q4, params)
	if flagged != 1 || kept != 1 {
		t.Errorf("Q4 detector: flagged %d, kept %d; want 1 and 1", flagged, kept)
	}

	// Unknown supplier variant: the part is azure-free but the supplier
	// is unknown and might be French... the part doesn't match, so the
	// answer is still certain: supplier nationality alone cannot create
	// a witness. Detector must stay silent on order 3.
	m.order(value.Int(3), value.Int(1), value.Str("F"))
	c, r = dates()
	m.lineitem(value.Int(3), value.Int(2), m.null(), value.Int(1), c, r)
	flagged2, _ := checkDetectorSound(t, m.db, tpch.Q4, params)
	if flagged2 != 1 {
		t.Errorf("Q4 with unknown supplier on a plain part: flagged %d, want 1 (only order 1)", flagged2)
	}
}

// TestDetectorSoundnessRandom fuzzes all four detectors against the
// ground truth on small random instances.
func TestDetectorSoundnessRandom(t *testing.T) {
	// Rather than the full generator (whose instances are too large for
	// brute force), assemble small random scenarios.
	for seed := int64(0); seed < int64(iterations(t)); seed++ {
		m := newMini(t)
		rng := newRand(seed)
		nulls := 0
		maybeNull := func(v value.Value) value.Value {
			if nulls < 3 && rng.Intn(5) == 0 {
				nulls++
				return m.null()
			}
			return v
		}
		for s := int64(1); s <= 2; s++ {
			m.supplier(value.Int(s), maybeNull(value.Int(rng.Int63n(2))))
		}
		names := []string{"azure shiny", "plain", "dark azure"}
		for p := int64(1); p <= 2; p++ {
			m.part(value.Int(p), maybeNull(value.Str(names[rng.Intn(len(names))])))
		}
		m.customer(value.Int(1), value.Int(0), value.Float(900))
		m.customer(value.Int(2), value.Int(1), value.Float(10))
		dates := []string{"1995-02-10", "1995-03-01", "1995-03-10"}
		for o := int64(1); o <= 3; o++ {
			m.order(value.Int(o), maybeNull(value.Int(rng.Int63n(2)+1)), value.Str("F"))
			for l := int64(1); l <= rng.Int63n(2)+1; l++ {
				m.lineitem(value.Int(o),
					maybeNull(value.Int(rng.Int63n(2)+1)),
					maybeNull(value.Int(rng.Int63n(2)+1)),
					value.Int(l),
					maybeNull(value.MustDate(dates[rng.Intn(3)])),
					maybeNull(value.MustDate(dates[rng.Intn(3)])))
			}
		}
		for _, qid := range tpch.AllQueries {
			params := compile.Params{
				"supp_key": int64(1), "nation": "FRANCE", "color": "azure",
				"countries": []int64{0, 1},
			}
			checkDetectorSound(t, m.db, qid, params)
		}
	}
}

func iterations(t *testing.T) int {
	if testing.Short() {
		return 4
	}
	return 20
}

func newRand(seed int64) *prng { return &prng{state: uint64(seed)*2862933555777941757 + 3037000493} }

// prng is a tiny deterministic generator so this test does not depend
// on math/rand ordering guarantees across Go versions.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return p.state
}

func (p *prng) Intn(n int) int       { return int(p.next() % uint64(n)) }
func (p *prng) Int63n(n int64) int64 { return int64(p.next() % uint64(n)) }
