package tpch

// The fixed vocabularies of the TPC-H specification, used by the data
// generator and the query parameter generators.

// Nations lists the 25 TPC-H nations with their region keys.
var Nations = []struct {
	Name      string
	RegionKey int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

// Regions lists the 5 TPC-H regions.
var Regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// Colors is the palette of words from which part names (p_name) are
// composed, and from which Q4's $color parameter is drawn. The TPC-H
// specification lists 92 words; this reconstruction carries 89 of them,
// which preserves the LIKE-substring selectivity that Q4 exercises.
var Colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished",
	"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
	"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
	"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
	"green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace",
	"lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
	"maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin",
	"navajo", "navy", "olive", "orange", "orchid", "pale", "papaya",
	"peach", "peru", "pink", "plum", "powder", "puff", "purple", "red",
	"rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
	"sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
	"thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
}

// Segments are the customer market segments.
var Segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

// Priorities are the order priorities.
var Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

// ShipModes are the lineitem shipping modes.
var ShipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

// ShipInstructs are the lineitem shipping instructions.
var ShipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

// Containers and types compose part descriptions.
var (
	containerSizes = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerKinds = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	typeSyllable1  = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2  = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3  = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
)

// commentWords supplies filler for the comment columns.
var commentWords = []string{
	"carefully", "quickly", "furiously", "slyly", "blithely", "final",
	"special", "pending", "express", "regular", "ironic", "even", "bold",
	"silent", "deposits", "requests", "packages", "accounts", "theodolites",
	"instructions", "foxes", "pinto", "beans", "dependencies", "platelets",
	"sleep", "nag", "haggle", "cajole", "integrate", "wake", "above",
	"against", "along", "around",
}
