package tpch

import (
	"strings"

	"certsql/internal/compile"
	"certsql/internal/table"
	"certsql/internal/value"
)

// This file implements the false-positive detection algorithms of
// Section 4 of the paper. Each takes the parameter bindings, the
// database and one answer tuple, and returns true when the tuple is
// provably a false positive (not a certain answer), giving a lower
// bound on the number of false positives. The shared idea: a null in a
// relevant comparison can be valued so as to falsify the answer.

// Detector checks one answer tuple of one query for being a false
// positive.
type Detector func(db *table.Database, params compile.Params, answer table.Row) bool

// DetectorFor returns the detector for the given query.
func DetectorFor(q QueryID) Detector {
	switch q {
	case Q1:
		return DetectQ1
	case Q2:
		return DetectQ2
	case Q3:
		return DetectQ3
	case Q4:
		return DetectQ4
	default:
		panic("tpch: unknown query")
	}
}

// DetectQ1 is Algorithm 1 of the paper. The answer tuple is
// (s_suppkey, o_orderkey). If some other lineitem of the order has an
// unknown supplier or an unknown/late delivery, the NOT EXISTS branch
// can be falsified.
func DetectQ1(db *table.Database, params compile.Params, answer table.Row) bool {
	suppKey := answer[0]
	orderKey := answer[1]
	li := db.MustTable("lineitem")
	for _, t := range li.Rows() {
		if !sameConst(t[LOrderKey], orderKey) {
			continue
		}
		x := t[LSuppKey]
		if !x.IsNull() && sameConst(x, suppKey) {
			continue
		}
		d1, d2 := t[LCommitDate], t[LReceiptDate]
		if d1.IsNull() || d2.IsNull() || laterDate(d2, d1) {
			return true
		}
	}
	return false
}

// DetectQ2 implements the paper's check for Q2: if any order has an
// unknown customer, that customer could be anybody — including the one
// in the answer tuple — so every answer is a false positive.
func DetectQ2(db *table.Database, params compile.Params, answer table.Row) bool {
	for _, t := range db.MustTable("orders").Rows() {
		if t[OCustKey].IsNull() {
			return true
		}
	}
	return false
}

// DetectQ3 implements the paper's check for Q3: an order id k in the
// answer is falsified by a lineitem of order k whose supplier is
// unknown (it may well differ from $supp_key).
func DetectQ3(db *table.Database, params compile.Params, answer table.Row) bool {
	orderKey := answer[0]
	for _, t := range db.MustTable("lineitem").Rows() {
		if sameConst(t[LOrderKey], orderKey) && t[LSuppKey].IsNull() {
			return true
		}
	}
	return false
}

// DetectQ4 is Algorithm 2 of the paper: an answer order is falsified by
// a lineitem of the order whose part could have the color (unknown part
// or unknown/matching name) and whose supplier could be from the nation
// (unknown supplier, unknown nation key, or the nation itself).
func DetectQ4(db *table.Database, params compile.Params, answer table.Row) bool {
	orderKey := answer[0]
	color, _ := params["color"].(string)
	nation, _ := params["nation"].(string)
	parts := db.MustTable("part")
	supps := db.MustTable("supplier")
	nations := db.MustTable("nation")

	for _, t := range db.MustTable("lineitem").Rows() {
		if !sameConst(t[LOrderKey], orderKey) {
			continue
		}
		partOK, suppOK := false, false
		for _, p := range parts.Rows() {
			if !t[LPartKey].IsNull() && !sameConst(t[LPartKey], p[PPartKey]) {
				continue
			}
			name := p[PName]
			if name.IsNull() || strings.Contains(name.AsString(), color) {
				partOK = true
				break
			}
		}
		if !partOK {
			continue
		}
		for _, s := range supps.Rows() {
			if !t[LSuppKey].IsNull() && !sameConst(t[LSuppKey], s[SSuppKey]) {
				continue
			}
			x := s[SNationKey]
			if x.IsNull() {
				suppOK = true
				break
			}
			for _, n := range nations.Rows() {
				if !sameConst(n[NNationKey], x) {
					continue
				}
				if n[NName].IsNull() || n[NName].AsString() == nation {
					suppOK = true
				}
				break
			}
			if suppOK {
				break
			}
		}
		if partOK && suppOK {
			return true
		}
	}
	return false
}

// sameConst reports constant equality, false when either side is null.
func sameConst(a, b value.Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return value.ConstEqual(a, b)
}

// laterDate reports a > b on non-null dates.
func laterDate(a, b value.Value) bool {
	c, ok := value.Compare(a, b)
	return ok && c > 0
}
