package value

import (
	"math/rand"
	"testing"

	"certsql/internal/tvl"
)

// TestTotalOrderIsTotal property-checks antisymmetry, transitivity and
// totality of the deterministic order backing naive comparisons and
// ORDER BY.
func TestTotalOrderIsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := make([]Value, 0, 64)
	for i := 0; i < 64; i++ {
		pool = append(pool, randomValue(rng))
	}
	for i := 0; i < 5000; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		ab, ba := TotalOrder(a, b), TotalOrder(b, a)
		if sign(ab) != -sign(ba) {
			t.Fatalf("not antisymmetric: %v vs %v: %d, %d", a, b, ab, ba)
		}
		if TotalOrder(a, a) != 0 {
			t.Fatalf("not reflexive: %v", a)
		}
		if ab <= 0 && TotalOrder(b, c) <= 0 && TotalOrder(a, c) > 0 {
			t.Fatalf("not transitive: %v ≤ %v ≤ %v but a > c (%v, %v)", a, b, c, a, c)
		}
	}
}

// TestTotalOrderConventions pins the documented conventions.
func TestTotalOrderConventions(t *testing.T) {
	if TotalOrder(Int(5), Null(1)) >= 0 {
		t.Error("constants must sort before nulls")
	}
	if TotalOrder(Null(1), Null(2)) >= 0 {
		t.Error("nulls sort by mark")
	}
	if TotalOrder(Int(2), Float(2)) != 0 {
		t.Error("numeric kinds compare by value")
	}
	if TotalOrder(Int(1), Str("a")) == 0 {
		t.Error("distinct incomparable kinds must not tie")
	}
}

// TestOrderComplementarity: under both semantics, an order atom and its
// complement never agree — the property NNF's atom negation relies on.
// Under SQL3VL both may be unknown (on nulls); under naive semantics
// exactly one of a < b and a ≥ b holds.
func TestOrderComplementarity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lt := func(c int) bool { return c < 0 }
	ge := func(c int) bool { return c >= 0 }
	for i := 0; i < 3000; i++ {
		a, b := randomValue(rng), randomValue(rng)
		for _, sem := range []Semantics{SQL3VL, Naive} {
			x := OrderCmp(sem, a, b, lt)
			y := OrderCmp(sem, a, b, ge)
			if x.IsUnknown() != y.IsUnknown() {
				t.Fatalf("%v: unknownness differs for %v, %v", sem, a, b)
			}
			if !x.IsUnknown() && x == y {
				t.Fatalf("%v: a<b and a>=b both %v for %v, %v", sem, x, a, b)
			}
		}
	}
	// Naive mode is two-valued.
	if OrderCmp(Naive, Null(1), Int(0), lt).IsUnknown() {
		t.Error("naive order comparison returned unknown")
	}
}

// TestEqualComplementarity: same for equality atoms.
func TestEqualComplementarity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		a, b := randomValue(rng), randomValue(rng)
		for _, sem := range []Semantics{SQL3VL, Naive} {
			eq := Equal(sem, a, b)
			ne := eq.Not()
			if eq == tvl.True && ne != tvl.False {
				t.Fatalf("%v: negation broken for %v, %v", sem, a, b)
			}
		}
		// Symmetric.
		if Equal(Naive, a, b) != Equal(Naive, b, a) || Equal(SQL3VL, a, b) != Equal(SQL3VL, b, a) {
			t.Fatalf("equality not symmetric for %v, %v", a, b)
		}
	}
}

func TestSemanticsString(t *testing.T) {
	if SQL3VL.String() != "sql3vl" || Naive.String() != "naive" {
		t.Error("Semantics.String")
	}
}
