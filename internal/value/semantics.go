package value

import "certsql/internal/tvl"

// Semantics selects how comparisons treat nulls.
type Semantics uint8

const (
	// SQL3VL is SQL's behaviour: any comparison touching a null is
	// unknown, even ⊥ᵢ = ⊥ᵢ (SQL nulls cannot be compared with
	// themselves — see Section 7 of the paper).
	SQL3VL Semantics = iota
	// Naive is naive evaluation over marked nulls: nulls behave as
	// ordinary values, so ⊥ᵢ = ⊥ⱼ is true iff i = j and ⊥ᵢ = c is
	// false for every constant c. Comparisons are two-valued.
	Naive
)

// String names the semantics.
func (s Semantics) String() string {
	if s == Naive {
		return "naive"
	}
	return "sql3vl"
}

// Equal evaluates a = b under the given semantics.
func Equal(sem Semantics, a, b Value) tvl.TV {
	if a.kind == KindNull || b.kind == KindNull {
		if sem == SQL3VL {
			return tvl.Unknown
		}
		// Naive: nulls are ordinary values compared by mark.
		if a.kind == KindNull && b.kind == KindNull {
			return tvl.FromBool(a.i == b.i)
		}
		return tvl.False
	}
	return tvl.FromBool(ConstEqual(a, b))
}

// Less evaluates a < b under the given semantics; see OrderCmp.
func Less(sem Semantics, a, b Value) tvl.TV {
	return OrderCmp(sem, a, b, func(c int) bool { return c < 0 })
}

// OrderCmp evaluates an order comparison: keep receives the three-way
// comparison result (e.g. keep(c) = c < 0 for <).
//
// Under SQL3VL an order comparison touching a null is unknown. Under
// naive semantics values are *totally* ordered — marked nulls sort
// after all constants and among themselves by mark, and constants of
// incomparable kinds order deterministically by kind — so that the
// condition language stays closed under negation (¬(A > B) ≡ A ≤ B
// must hold atom-wise for the paper's NNF propagation). The translation
// layer never relies on the order of a null: θ* guards order atoms with
// const() and θ** weakens them with null() disjuncts.
func OrderCmp(sem Semantics, a, b Value, keep func(int) bool) tvl.TV {
	if sem == SQL3VL && (a.kind == KindNull || b.kind == KindNull) {
		return tvl.Unknown
	}
	return tvl.FromBool(keep(totalOrder(a, b)))
}

// TotalOrder is a deterministic total order on all values: comparable
// constants by Compare, incomparable constants by kind then rendering,
// nulls after constants and among themselves by mark. It backs naive-
// mode order comparisons and ORDER BY (nulls last).
func TotalOrder(a, b Value) int { return totalOrder(a, b) }

// totalOrder is a deterministic total order on all values: comparable
// constants by Compare, incomparable constants by kind then rendering,
// nulls after constants and among themselves by mark.
func totalOrder(a, b Value) int {
	aNull, bNull := a.kind == KindNull, b.kind == KindNull
	switch {
	case aNull && bNull:
		return cmpInt64(a.i, b.i)
	case aNull:
		return 1
	case bNull:
		return -1
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	if a.kind != b.kind {
		return cmpInt64(int64(a.kind), int64(b.kind))
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

// Like evaluates a LIKE pattern match under the given semantics.
// The pattern uses SQL wildcards: % matches any (possibly empty)
// substring, _ matches exactly one character. Non-string operands
// make the match false; null operands make it unknown (SQL) or false
// (naive).
func Like(sem Semantics, a, pattern Value) tvl.TV {
	if a.kind == KindNull || pattern.kind == KindNull {
		if sem == SQL3VL {
			return tvl.Unknown
		}
		return tvl.False
	}
	if a.kind != KindString || pattern.kind != KindString {
		return tvl.False
	}
	return tvl.FromBool(likeMatch(a.s, pattern.s))
}

// likeMatch matches s against a SQL LIKE pattern with % and _ wildcards,
// using an iterative two-pointer algorithm with backtracking on the last
// % seen (linear in practice).
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		// '%' is always a wildcard, even when the subject also contains
		// a literal '%' — the wildcard case must win the tie.
		case pi < len(pat) && pat[pi] == '%':
			starP = pi
			starS = si
			pi++
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}
