package value

import (
	"encoding/binary"
	"math"
)

// AppendKey appends a canonical binary encoding of v to b, suitable for
// use as a hash-join or grouping key. The encoding is injective on
// constants up to numeric equality (integers and integral floats that
// compare equal encode identically) and distinguishes nulls by mark, so
// that under naive semantics nulls can participate in hash joins.
func AppendKey(b []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		b = append(b, 0)
		b = binary.BigEndian.AppendUint64(b, uint64(v.i))
	case KindInt:
		b = append(b, 1)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(float64(v.i)))
	case KindFloat:
		b = append(b, 1) // same tag as int: numeric values join across kinds
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.f))
	case KindString:
		b = append(b, 2)
		b = binary.BigEndian.AppendUint32(b, uint32(len(v.s)))
		b = append(b, v.s...)
	case KindDate:
		b = append(b, 3)
		b = binary.BigEndian.AppendUint64(b, uint64(v.i))
	case KindBool:
		b = append(b, 4, byte(v.i))
	}
	return b
}

// TupleKey builds a canonical string key for the projection of row onto
// cols, for use in hash tables. Using string keys lets Go's map do the
// hashing and equality.
func TupleKey(row []Value, cols []int) string {
	b := make([]byte, 0, 16*len(cols))
	for _, c := range cols {
		b = AppendKey(b, row[c])
	}
	return string(b)
}

// RowKey builds a canonical string key for an entire row.
func RowKey(row []Value) string {
	b := make([]byte, 0, 16*len(row))
	for _, v := range row {
		b = AppendKey(b, v)
	}
	return string(b)
}
