package value

import (
	"encoding/binary"
	"math"
)

// AppendKey appends a canonical binary encoding of v to b, suitable for
// use as a hash-join or grouping key. The encoding is injective on
// constants up to numeric equality (integers and integral floats that
// compare equal encode identically) and distinguishes nulls by mark, so
// that under naive semantics nulls can participate in hash joins.
func AppendKey(b []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		b = append(b, 0)
		b = binary.BigEndian.AppendUint64(b, uint64(v.i))
	case KindInt:
		b = append(b, 1)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(float64(v.i)))
	case KindFloat:
		b = append(b, 1) // same tag as int: numeric values join across kinds
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.f))
	case KindString:
		b = append(b, 2)
		b = binary.BigEndian.AppendUint32(b, uint32(len(v.s)))
		b = append(b, v.s...)
	case KindDate:
		b = append(b, 3)
		b = binary.BigEndian.AppendUint64(b, uint64(v.i))
	case KindBool:
		b = append(b, 4, byte(v.i))
	}
	return b
}

// TupleKey builds a canonical string key for the projection of row onto
// cols, for use in hash tables. Using string keys lets Go's map do the
// hashing and equality.
func TupleKey(row []Value, cols []int) string {
	b := make([]byte, 0, 16*len(cols))
	for _, c := range cols {
		b = AppendKey(b, row[c])
	}
	return string(b)
}

// RowKey builds a canonical string key for an entire row.
func RowKey(row []Value) string {
	b := make([]byte, 0, 16*len(row))
	for _, v := range row {
		b = AppendKey(b, v)
	}
	return string(b)
}

// KeySeed is the 64-bit FNV-1a offset basis, the initial state for
// FoldKey chains.
const KeySeed uint64 = 14695981039346656037

const keyPrime uint64 = 1099511628211

// FoldKey folds v's canonical encoding into the running FNV-1a state h,
// byte for byte, without materializing the encoding: folding a row's
// values in order yields exactly FNV-1a over AppendKey's concatenated
// bytes (a property test pins this). The shard router hashes every
// probe row of every scattered operator, so the per-row allocation
// RowKey pays is the difference between routing being noise and routing
// dominating the profile.
func FoldKey(h uint64, v Value) uint64 {
	switch v.kind {
	case KindNull:
		h = (h ^ 0) * keyPrime
		h = fold64(h, uint64(v.i))
	case KindInt:
		h = (h ^ 1) * keyPrime
		h = fold64(h, math.Float64bits(float64(v.i)))
	case KindFloat:
		h = (h ^ 1) * keyPrime // same tag as int: numeric values hash across kinds
		h = fold64(h, math.Float64bits(v.f))
	case KindString:
		h = (h ^ 2) * keyPrime
		h = fold32(h, uint32(len(v.s)))
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * keyPrime
		}
	case KindDate:
		h = (h ^ 3) * keyPrime
		h = fold64(h, uint64(v.i))
	case KindBool:
		h = (h ^ 4) * keyPrime
		h = (h ^ uint64(byte(v.i))) * keyPrime
	}
	return h
}

// fold64 folds x's big-endian bytes into the FNV-1a state h.
func fold64(h, x uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (x >> uint(shift) & 0xff)) * keyPrime
	}
	return h
}

// fold32 folds x's big-endian bytes into the FNV-1a state h.
func fold32(h uint64, x uint32) uint64 {
	for shift := 24; shift >= 0; shift -= 8 {
		h = (h ^ uint64(x>>uint(shift)&0xff)) * keyPrime
	}
	return h
}
