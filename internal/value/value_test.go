package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"certsql/internal/tvl"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 || Int(7).Kind() != KindInt {
		t.Error("Int")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float")
	}
	if Str("x").AsString() != "x" {
		t.Error("Str")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool")
	}
	if Null(3).NullID() != 3 || !Null(3).IsNull() {
		t.Error("Null")
	}
	if Int(1).IsNull() {
		t.Error("Int considered null")
	}
}

func TestAccessorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"AsInt on string":    func() { Str("x").AsInt() },
		"AsString on int":    func() { Int(1).AsString() },
		"AsBool on int":      func() { Int(1).AsBool() },
		"AsDate on int":      func() { Int(1).AsDate() },
		"NullID on constant": func() { Int(1).NullID() },
		"AsFloat on string":  func() { Str("x").AsFloat() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDates(t *testing.T) {
	d, err := ParseDate("1992-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind() != KindDate {
		t.Fatal("kind")
	}
	d2 := MustDate("1992-01-02")
	if d2.AsDate()-d.AsDate() != 1 {
		t.Errorf("consecutive dates differ by %d days", d2.AsDate()-d.AsDate())
	}
	if d.String() != "1992-01-01" {
		t.Errorf("String = %q", d.String())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate accepted garbage")
	}
	epoch := MustDate("1970-01-01")
	if epoch.AsDate() != 0 {
		t.Errorf("epoch = %d days", epoch.AsDate())
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(2), Float(2.0), 0, true}, // numeric coercion
		{Float(1.5), Int(2), -1, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{MustDate("1995-01-01"), MustDate("1996-01-01"), -1, true},
		{Bool(false), Bool(true), -1, true},
		{Int(1), Str("1"), 0, false}, // incomparable kinds
		{Null(1), Int(1), 0, false},  // nulls are not constants
		{Str("x"), Bool(true), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && sign(cmp) != c.cmp) {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d, %v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestEqualSemantics(t *testing.T) {
	// SQL 3VL: any null makes equality unknown — even the same mark.
	if Equal(SQL3VL, Null(1), Null(1)) != tvl.Unknown {
		t.Error("SQL: ⊥1 = ⊥1 should be unknown")
	}
	if Equal(SQL3VL, Null(1), Int(1)) != tvl.Unknown {
		t.Error("SQL: ⊥1 = 1 should be unknown")
	}
	if Equal(SQL3VL, Int(1), Int(1)) != tvl.True {
		t.Error("SQL: 1 = 1 should be true")
	}
	// Naive: marks compare by identity.
	if Equal(Naive, Null(1), Null(1)) != tvl.True {
		t.Error("naive: ⊥1 = ⊥1 should be true")
	}
	if Equal(Naive, Null(1), Null(2)) != tvl.False {
		t.Error("naive: ⊥1 = ⊥2 should be false")
	}
	if Equal(Naive, Null(1), Int(1)) != tvl.False {
		t.Error("naive: ⊥1 = 1 should be false")
	}
}

func TestOrderSemantics(t *testing.T) {
	lt := func(c int) bool { return c < 0 }
	if OrderCmp(SQL3VL, Null(1), Int(5), lt) != tvl.Unknown {
		t.Error("SQL: ⊥ < 5 should be unknown")
	}
	if OrderCmp(Naive, Null(1), Int(5), lt) != tvl.False {
		t.Error("naive: ⊥ < 5 should be false")
	}
	if OrderCmp(SQL3VL, Int(1), Int(5), lt) != tvl.True {
		t.Error("1 < 5 should be true")
	}
	if Less(SQL3VL, Int(5), Int(1)) != tvl.False {
		t.Error("5 < 1 should be false")
	}
	if Less(SQL3VL, Str("a"), Int(1)) != tvl.False {
		t.Error("incomparable kinds should order false")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%a%b%c%", true},
		{"mississippi", "%iss%ipp%", true},
		{"mississippi", "%iss%issi%", true},     // backtracking finds both
		{"mississippi", "%issip%issip%", false}, // only one occurrence exists
		{"green almond ivory", "%almond%", true},
		{"green almond ivory", "%azure%", false},
		{"a%b", "a%b", true}, // literal traversal via wildcard
		// Regression (found by FuzzLike): '%' in the pattern is a
		// wildcard even when the subject contains literal '%'s.
		{"%%0", "%%", true},
		{"%", "%x", false},
		{"x%y", "%" + "%" + "%", true},
	}
	for _, c := range cases {
		got := Like(SQL3VL, Str(c.s), Str(c.pat))
		if got.IsTrue() != c.want {
			t.Errorf("LIKE(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	if Like(SQL3VL, Null(1), Str("%")) != tvl.Unknown {
		t.Error("SQL: NULL LIKE should be unknown")
	}
	if Like(Naive, Null(1), Str("%")) != tvl.False {
		t.Error("naive: NULL LIKE should be false")
	}
	if Like(SQL3VL, Int(5), Str("%")) != tvl.False {
		t.Error("LIKE on non-string should be false")
	}
}

func TestUnifies(t *testing.T) {
	if !Unifies(Null(1), Int(5)) || !Unifies(Int(5), Null(1)) || !Unifies(Null(1), Null(2)) {
		t.Error("nulls must unify with anything")
	}
	if !Unifies(Int(5), Int(5)) || Unifies(Int(5), Int(6)) {
		t.Error("constants unify iff equal")
	}
	if !Unifies(Int(5), Float(5)) {
		t.Error("numeric coercion in unification")
	}
}

func TestUnifyTuples(t *testing.T) {
	n1, n2, n3 := Null(1), Null(2), Null(3)
	cases := []struct {
		r, s []Value
		want bool
	}{
		{[]Value{Int(1)}, []Value{Int(1)}, true},
		{[]Value{Int(1)}, []Value{Int(2)}, false},
		{[]Value{n1}, []Value{Int(2)}, true},
		{[]Value{n1, n1}, []Value{Int(1), Int(2)}, false}, // ⊥1 cannot be 1 and 2
		{[]Value{n1, n1}, []Value{Int(1), Int(1)}, true},
		{[]Value{n1, n2}, []Value{Int(1), Int(2)}, true},
		{[]Value{n1, n1}, []Value{n2, Int(3)}, true},              // ⊥1=⊥2=3
		{[]Value{n1, Int(1)}, []Value{Int(2), n1}, false},         // ⊥1=2 and ⊥1=1 clash
		{[]Value{n1, n2, n1}, []Value{n2, Int(5), Int(6)}, false}, // chain forces 5=6
		{[]Value{n1, n2, n1}, []Value{n2, Int(5), Int(5)}, true},
		{[]Value{n1, n2}, []Value{n2, n1}, true},
		{[]Value{n3, n3}, []Value{n1, n2}, true}, // merges ⊥1 and ⊥2
		{nil, nil, true},
	}
	for _, c := range cases {
		if got := UnifyTuples(c.r, c.s); got != c.want {
			t.Errorf("UnifyTuples(%v, %v) = %v, want %v", c.r, c.s, got, c.want)
		}
	}
}

func TestUnifyTuplesPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on arity mismatch")
		}
	}()
	UnifyTuples([]Value{Int(1)}, []Value{Int(1), Int(2)})
}

// randomValue draws from a small pool so that collisions are common.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Int(int64(rng.Intn(4)))
	case 1:
		return Str([]string{"a", "b"}[rng.Intn(2)])
	case 2:
		return Float(float64(rng.Intn(3)))
	case 3:
		return Null(int64(rng.Intn(3)))
	default:
		return Date(int64(rng.Intn(3)))
	}
}

// TestUnifyTuplesProperties property-checks symmetry, reflexivity, and
// soundness: if the tuples unify, applying the unifying pattern of a
// common valuation must be consistent — approximated here by checking
// that unifiable tuples remain unifiable after consistently renaming
// marks, and that constant-only tuples unify iff equal.
func TestUnifyTuplesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		k := 1 + rng.Intn(4)
		r := make([]Value, k)
		s := make([]Value, k)
		for j := range r {
			r[j] = randomValue(rng)
			s[j] = randomValue(rng)
		}
		if UnifyTuples(r, s) != UnifyTuples(s, r) {
			t.Fatalf("unification not symmetric on %v, %v", r, s)
		}
		if !UnifyTuples(r, r) {
			t.Fatalf("unification not reflexive on %v", r)
		}
		// Renaming marks uniformly (id -> id+10) preserves unifiability.
		shift := func(vs []Value) []Value {
			out := make([]Value, len(vs))
			for j, v := range vs {
				if v.IsNull() {
					out[j] = Null(v.NullID() + 10)
				} else {
					out[j] = v
				}
			}
			return out
		}
		if UnifyTuples(r, s) != UnifyTuples(shift(r), shift(s)) {
			t.Fatalf("unification not invariant under mark renaming on %v, %v", r, s)
		}
	}
}

func TestKeys(t *testing.T) {
	// Numeric coercion: equal int and float values share a key.
	if TupleKey([]Value{Int(2)}, []int{0}) != TupleKey([]Value{Float(2)}, []int{0}) {
		t.Error("int and float keys differ for equal values")
	}
	// Distinct marks get distinct keys; same marks match.
	if RowKey([]Value{Null(1)}) == RowKey([]Value{Null(2)}) {
		t.Error("distinct marks share a key")
	}
	if RowKey([]Value{Null(1)}) != RowKey([]Value{Null(1)}) {
		t.Error("same mark, different keys")
	}
	// Strings with embedded separators don't collide.
	if RowKey([]Value{Str("a"), Str("b")}) == RowKey([]Value{Str("ab"), Str("")}) {
		t.Error(`("a","b") collides with ("ab","")`)
	}
	// Kinds are tagged: 1 (int) vs "1" vs true vs date(1).
	keys := map[string]Value{}
	for _, v := range []Value{Int(1), Str("1"), Bool(true), Date(1)} {
		k := RowKey([]Value{v})
		if prev, dup := keys[k]; dup {
			t.Errorf("%v and %v share a key", prev, v)
		}
		keys[k] = v
	}
}

// TestKeyAgreesWithConstEqual property-checks that RowKey equality
// coincides with constant equality for single constants.
func TestKeyAgreesWithConstEqual(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000, Values: func(vs []reflect.Value, rng *rand.Rand) {
		vs[0] = reflect.ValueOf(randomValue(rng))
		vs[1] = reflect.ValueOf(randomValue(rng))
	}}
	if err := quick.Check(func(a, b Value) bool {
		if a.IsNull() || b.IsNull() {
			return true
		}
		sameKey := RowKey([]Value{a}) == RowKey([]Value{b})
		return sameKey == ConstEqual(a, b)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestFoldKeyMatchesAppendKey property-checks that folding a row's
// values through FoldKey equals FNV-1a over the concatenated AppendKey
// encodings — the allocation-free fold must hash exactly the canonical
// bytes, or shard routing would disagree with key equality.
func TestFoldKeyMatchesAppendKey(t *testing.T) {
	const prime = 1099511628211
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		row := make([]Value, rng.Intn(6))
		for i := range row {
			row[i] = randomValue(rng)
		}
		h := KeySeed
		for _, v := range row {
			h = FoldKey(h, v)
		}
		want := KeySeed
		for _, b := range []byte(RowKey(row)) {
			want = (want ^ uint64(b)) * prime
		}
		if h != want {
			t.Fatalf("FoldKey state %#x != FNV over AppendKey %#x for %v", h, want, row)
		}
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]Value{
		"⊥7":   Null(7),
		"42":   Int(42),
		"'hi'": Str("hi"),
		"true": Bool(true),
		"2.5":  Float(2.5),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("String(%#v) = %q, want %q", v, v.String(), want)
		}
	}
	if Null(1).SQLString() != "NULL" {
		t.Error("SQLString of null")
	}
	if Int(3).SQLString() != "3" {
		t.Error("SQLString of int")
	}
	if KindInt.String() != "int" || KindNull.String() != "null" {
		t.Error("Kind.String")
	}
}
