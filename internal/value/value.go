// Package value defines the values stored in incomplete databases:
// typed constants and marked nulls.
//
// Following the model in Section 2 of Guagliardo & Libkin (PODS 2016),
// database entries come from Const ∪ Null. Constants are typed (integer,
// float, string, date, boolean); nulls are *marked* (labelled): each null
// carries an identifier ⊥ᵢ. Codd nulls — the usual model of SQL nulls —
// are the special case in which no identifier repeats.
//
// The package provides the two comparison semantics the paper studies:
//
//   - SQL 3VL semantics: any comparison involving a null is unknown.
//   - Naive (marked-null) semantics: ⊥ᵢ = ⊥ⱼ is true iff i = j, and
//     ⊥ᵢ = c is false for every constant c.
//
// It also implements unifiability (Definition 2 of the paper): two values
// unify when some valuation of nulls makes them equal.
package value

import (
	"fmt"
	"strconv"
	"time"
)

// Kind identifies the type of a Value.
type Kind uint8

// The kinds of values. KindNull is the zero value, so a zero Value is a
// null with identifier 0.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate
	KindBool
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single database entry: a typed constant or a marked null.
// Values are comparable with == (all fields are comparable), which makes
// them directly usable as map keys; note that == is *identity* of the
// representation, not SQL equality.
type Value struct {
	kind Kind
	i    int64 // int payload, date (days since 1970-01-01), bool (0/1), null id
	f    float64
	s    string
}

// Int returns an integer constant.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point constant.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string constant.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean constant.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Date returns a date constant, represented as days since 1970-01-01.
func Date(days int64) Value { return Value{kind: KindDate, i: days} }

// Null returns the marked null ⊥id.
func Null(id int64) Value { return Value{kind: KindNull, i: id} }

// Kind returns the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is a null (of any mark).
func (v Value) IsNull() bool { return v.kind == KindNull }

// NullID returns the mark of a null value. It panics if v is not null.
func (v Value) NullID() int64 {
	if v.kind != KindNull {
		panic("value: NullID on non-null " + v.String())
	}
	return v.i
}

// AsInt returns the integer payload. It panics on a non-int value.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("value: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the value as a float64, coercing integers.
// It panics on non-numeric values.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic("value: AsFloat on " + v.kind.String())
	}
}

// AsString returns the string payload. It panics on a non-string value.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("value: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBool returns the boolean payload. It panics on a non-bool value.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("value: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// AsDate returns the date payload in days since 1970-01-01.
// It panics on a non-date value.
func (v Value) AsDate() int64 {
	if v.kind != KindDate {
		panic("value: AsDate on " + v.kind.String())
	}
	return v.i
}

// ParseDate parses a date in "YYYY-MM-DD" form into a date Value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Value{}, err
	}
	return Date(t.Unix() / 86400), nil
}

// MustDate is like ParseDate but panics on error; for tests and fixtures.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the value for display: nulls as ⊥id, dates in ISO form,
// strings single-quoted.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "⊥" + strconv.FormatInt(v.i, 10)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + v.s + "'"
	case KindDate:
		return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("value(%d)", uint8(v.kind))
	}
}

// SQLString renders the value as a SQL literal, with NULL for nulls.
func (v Value) SQLString() string {
	if v.kind == KindNull {
		return "NULL"
	}
	return v.String()
}

// Comparable reports whether two constant kinds can be ordered against
// each other. Numeric kinds (int, float) are mutually comparable.
func Comparable(a, b Kind) bool {
	if a == b {
		return a != KindNull
	}
	return numeric(a) && numeric(b)
}

func numeric(k Kind) bool { return k == KindInt || k == KindFloat }

// Compare orders two constants. It returns a negative number, zero, or a
// positive number as a sorts before, equal to, or after b, and ok=false
// when the kinds are incomparable (including when either is a null:
// constant comparison is undefined on nulls — use the Equal*/Less*
// functions in this package for null-aware semantics).
func Compare(a, b Value) (cmp int, ok bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if numeric(a.kind) && numeric(b.kind) {
		if a.kind == KindInt && b.kind == KindInt {
			return cmpInt64(a.i, b.i), true
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind != b.kind {
		return 0, false
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, true
		case a.s > b.s:
			return 1, true
		default:
			return 0, true
		}
	case KindDate, KindBool:
		return cmpInt64(a.i, b.i), true
	default:
		return 0, false
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// ConstEqual reports whether two constants are equal under Compare.
// Both arguments must be non-null; incomparable kinds are unequal.
func ConstEqual(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Unifies reports whether values a and b are unifiable at a single
// position: some valuation of nulls makes them equal. A null unifies
// with anything; two constants unify iff they are equal.
//
// For tuple-level unification with repeated marked nulls — where the
// same null must be mapped consistently across positions — use
// UnifyTuples.
func Unifies(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return true
	}
	return ConstEqual(a, b)
}

// UnifyTuples reports whether tuples r and s are unifiable (r ⇑ s,
// Definition 2 of the paper): there is a single valuation v of nulls with
// v(r) = v(s). Repeated marked nulls must map consistently: for example
// (⊥₁, ⊥₁) does not unify with (1, 2), although it unifies with (1, 1)
// and with (⊥₂, 3).
//
// The check runs a union-find over the null marks occurring in r and s,
// merging classes position by position and rejecting when a class would
// be bound to two distinct constants. It panics if the tuples have
// different lengths.
func UnifyTuples(r, s []Value) bool {
	if len(r) != len(s) {
		panic(fmt.Sprintf("value: UnifyTuples on tuples of different arity %d vs %d", len(r), len(s)))
	}
	u := unifier{parent: map[int64]int64{}, binding: map[int64]Value{}}
	for i := range r {
		if !u.merge(r[i], s[i]) {
			return false
		}
	}
	return true
}

// unifier is a union-find over null marks, each class optionally bound to
// a constant.
type unifier struct {
	parent  map[int64]int64
	binding map[int64]Value // root mark -> bound constant
}

func (u *unifier) find(id int64) int64 {
	p, ok := u.parent[id]
	if !ok {
		u.parent[id] = id
		return id
	}
	if p == id {
		return id
	}
	root := u.find(p)
	u.parent[id] = root
	return root
}

// merge enforces a = b under the current substitution.
func (u *unifier) merge(a, b Value) bool {
	switch {
	case a.kind == KindNull && b.kind == KindNull:
		ra, rb := u.find(a.i), u.find(b.i)
		if ra == rb {
			return true
		}
		ca, okA := u.binding[ra]
		cb, okB := u.binding[rb]
		if okA && okB && !ConstEqual(ca, cb) {
			return false
		}
		u.parent[ra] = rb
		if okA && !okB {
			u.binding[rb] = ca
		}
		delete(u.binding, ra)
		return true
	case a.kind == KindNull:
		return u.bind(a.i, b)
	case b.kind == KindNull:
		return u.bind(b.i, a)
	default:
		return ConstEqual(a, b)
	}
}

func (u *unifier) bind(id int64, c Value) bool {
	r := u.find(id)
	if prev, ok := u.binding[r]; ok {
		return ConstEqual(prev, c)
	}
	u.binding[r] = c
	return true
}
