package value

import (
	"strings"
	"testing"
)

// FuzzLike checks the LIKE matcher never panics, agrees with a simple
// containment oracle for %x% patterns, and satisfies the negation
// duality under both semantics.
func FuzzLike(f *testing.F) {
	f.Add("mississippi", "%iss%")
	f.Add("", "%")
	f.Add("abc", "a_c")
	f.Add("a%b", "a\\%b")
	f.Add(strings.Repeat("ab", 50), "%"+strings.Repeat("a%", 20))
	f.Fuzz(func(t *testing.T, s, pat string) {
		res := Like(SQL3VL, Str(s), Str(pat))
		if res.IsUnknown() {
			t.Fatal("LIKE on constants cannot be unknown")
		}
		// Oracle for pure substring patterns.
		if strings.HasPrefix(pat, "%") && strings.HasSuffix(pat, "%") && len(pat) >= 2 {
			inner := pat[1 : len(pat)-1]
			if !strings.ContainsAny(inner, "%_") {
				want := strings.Contains(s, inner)
				if res.IsTrue() != want {
					t.Fatalf("LIKE(%q, %q) = %v, substring oracle says %v", s, pat, res, want)
				}
			}
		}
		// A pattern always matches itself when wildcard-free.
		if !strings.ContainsAny(pat, "%_") {
			if got := Like(SQL3VL, Str(pat), Str(pat)); !got.IsTrue() {
				t.Fatalf("wildcard-free pattern %q does not match itself", pat)
			}
		}
	})
}

// FuzzUnifyTuples checks unification is symmetric and never panics on
// equal-length tuples.
func FuzzUnifyTuples(f *testing.F) {
	f.Add(int64(1), int64(1), int64(-1), int64(2), true, false)
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2 int64, n1, n2 bool) {
		mk := func(x int64, isNull bool) Value {
			if isNull {
				return Null(x % 3)
			}
			return Int(x % 3)
		}
		r := []Value{mk(a1, n1), mk(a2, n2)}
		s := []Value{mk(b1, n2), mk(b2, n1)}
		if UnifyTuples(r, s) != UnifyTuples(s, r) {
			t.Fatalf("unification not symmetric: %v vs %v", r, s)
		}
		if !UnifyTuples(r, r) {
			t.Fatalf("unification not reflexive: %v", r)
		}
	})
}
