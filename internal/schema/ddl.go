package schema

import (
	"fmt"
	"strings"

	"certsql/internal/sql"
	"certsql/internal/value"
)

// ParseDDL parses a script of CREATE TABLE statements into a Schema, so
// tools like certlint can take the catalog as a plain .sql file:
//
//	CREATE TABLE orders (
//	    id   INT PRIMARY KEY,
//	    cust INT,
//	    memo VARCHAR(80) NOT NULL
//	);
//
// Columns are nullable unless declared NOT NULL or part of the primary
// key (inline or via a trailing PRIMARY KEY (a, b) item). Types map onto
// the engine's kinds: INT/INTEGER/BIGINT/SMALLINT → int, FLOAT/REAL/
// DOUBLE [PRECISION]/DECIMAL/NUMERIC → float, CHAR/VARCHAR/TEXT/STRING →
// string, BOOL/BOOLEAN → bool, DATE → date. Length and precision
// arguments are accepted and ignored — nullability is the only column
// metadata the certainty analysis consumes.
func ParseDDL(src string) (*Schema, error) {
	toks, err := sql.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &ddlParser{src: src, toks: toks}
	sch := New()
	for !p.atEOF() {
		if p.isSymbol(";") {
			p.i++
			continue
		}
		rel, err := p.createTable()
		if err != nil {
			return nil, err
		}
		if err := sch.Add(rel); err != nil {
			return nil, err
		}
	}
	return sch, nil
}

type ddlParser struct {
	src  string
	toks []sql.Token
	i    int
}

func (p *ddlParser) peek() sql.Token { return p.toks[p.i] }

func (p *ddlParser) atEOF() bool { return p.peek().Kind == sql.TokEOF }

func (p *ddlParser) isSymbol(s string) bool {
	t := p.peek()
	return t.Kind == sql.TokSymbol && t.Text == s
}

func (p *ddlParser) isKeyword(w string) bool {
	t := p.peek()
	return t.Kind == sql.TokIdent && strings.EqualFold(t.Text, w)
}

func (p *ddlParser) expectSymbol(s string) error {
	if !p.isSymbol(s) {
		return p.errf(p.peek().Pos, "expected %q, found %s", s, p.peek())
	}
	p.i++
	return nil
}

func (p *ddlParser) expectKeyword(w string) error {
	if !p.isKeyword(w) {
		return p.errf(p.peek().Pos, "expected %s, found %s", strings.ToUpper(w), p.peek())
	}
	p.i++
	return nil
}

func (p *ddlParser) ident(what string) (string, error) {
	t := p.peek()
	if t.Kind != sql.TokIdent {
		return "", p.errf(t.Pos, "expected %s, found %s", what, t)
	}
	p.i++
	return t.Text, nil
}

func (p *ddlParser) errf(pos int, format string, args ...any) error {
	line, col := sql.LineCol(p.src, pos)
	return fmt.Errorf("ddl: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (p *ddlParser) createTable() (*Relation, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	rel := &Relation{Name: name}
	var keyNames []string
	keyPos := -1
	for {
		if p.isKeyword("PRIMARY") {
			keyPos = p.peek().Pos
			p.i++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				kn, err := p.ident("key column name")
				if err != nil {
					return nil, err
				}
				keyNames = append(keyNames, kn)
				if p.isSymbol(",") {
					p.i++
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			attr, inlineKey, err := p.column()
			if err != nil {
				return nil, err
			}
			rel.Attrs = append(rel.Attrs, attr)
			if inlineKey {
				rel.Key = append(rel.Key, len(rel.Attrs)-1)
			}
		}
		if p.isSymbol(",") {
			p.i++
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.isSymbol(";") {
		p.i++
	}
	for _, kn := range keyNames {
		idx := rel.AttrIndex(kn)
		if idx < 0 {
			return nil, p.errf(keyPos, "primary key names unknown column %q in table %q", kn, rel.Name)
		}
		rel.Attrs[idx].Nullable = false
		rel.Key = append(rel.Key, idx)
	}
	return rel, nil
}

func (p *ddlParser) column() (Attribute, bool, error) {
	name, err := p.ident("column name")
	if err != nil {
		return Attribute{}, false, err
	}
	tn, err := p.ident("column type")
	if err != nil {
		return Attribute{}, false, err
	}
	kind, ok := kindOf(tn)
	if !ok {
		return Attribute{}, false, p.errf(p.toks[p.i-1].Pos, "unsupported column type %q", tn)
	}
	if strings.EqualFold(tn, "DOUBLE") && p.isKeyword("PRECISION") {
		p.i++
	}
	// Length / precision arguments: VARCHAR(80), DECIMAL(12, 2).
	if p.isSymbol("(") {
		p.i++
		for !p.isSymbol(")") {
			if p.atEOF() {
				return Attribute{}, false, p.errf(p.peek().Pos, "unterminated type argument list")
			}
			p.i++
		}
		p.i++
	}
	attr := Attribute{Name: name, Type: kind, Nullable: true}
	inlineKey := false
	for {
		switch {
		case p.isKeyword("NOT"):
			p.i++
			if err := p.expectKeyword("NULL"); err != nil {
				return Attribute{}, false, err
			}
			attr.Nullable = false
		case p.isKeyword("NULL"):
			p.i++
			attr.Nullable = true
		case p.isKeyword("PRIMARY"):
			p.i++
			if err := p.expectKeyword("KEY"); err != nil {
				return Attribute{}, false, err
			}
			attr.Nullable = false
			inlineKey = true
		default:
			return attr, inlineKey, nil
		}
	}
}

func kindOf(typeName string) (value.Kind, bool) {
	switch strings.ToUpper(typeName) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return value.KindInt, true
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return value.KindFloat, true
	case "CHAR", "VARCHAR", "TEXT", "STRING":
		return value.KindString, true
	case "BOOL", "BOOLEAN":
		return value.KindBool, true
	case "DATE":
		return value.KindDate, true
	}
	return 0, false
}
