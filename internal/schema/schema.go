// Package schema describes relational schemas: relations, attributes,
// types, primary keys and nullability.
//
// Nullability matters twice in this reproduction: the data generator
// injects nulls only into nullable attributes (Section 3 of the paper),
// and the key-based simplification of the certain-answer translation
// (Section 7: R ⋉̸⇑ S = R − S when S ⊆ R and R has a key) consults
// primary-key information.
package schema

import (
	"fmt"
	"strings"

	"certsql/internal/value"
)

// Attribute is a named, typed column of a relation.
type Attribute struct {
	Name     string
	Type     value.Kind
	Nullable bool
}

// Relation is the schema of one relation: its name and attributes, plus
// the positions of its primary key (empty when no key is declared).
type Relation struct {
	Name  string
	Attrs []Attribute
	Key   []int // attribute positions forming the primary key
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the attribute with the given name,
// or -1 when absent. Lookup is case-insensitive, matching SQL.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if strings.EqualFold(a.Name, name) {
			return i
		}
	}
	return -1
}

// HasKey reports whether the relation declares a primary key.
func (r *Relation) HasKey() bool { return len(r.Key) > 0 }

// String renders the schema in CREATE TABLE-like form.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", r.Name)
	for i, a := range r.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Type)
		if !a.Nullable {
			b.WriteString(" not null")
		}
	}
	b.WriteString(")")
	return b.String()
}

// Schema is a catalog of relations, keyed by lower-cased name.
type Schema struct {
	rels  map[string]*Relation
	order []string // insertion order, for deterministic listing
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{rels: map[string]*Relation{}}
}

// Add registers a relation. It returns an error on duplicate names or on
// key positions out of range.
func (s *Schema) Add(r *Relation) error {
	name := strings.ToLower(r.Name)
	if _, dup := s.rels[name]; dup {
		return fmt.Errorf("schema: duplicate relation %q", r.Name)
	}
	for _, k := range r.Key {
		if k < 0 || k >= len(r.Attrs) {
			return fmt.Errorf("schema: relation %q: key position %d out of range", r.Name, k)
		}
		if r.Attrs[k].Nullable {
			return fmt.Errorf("schema: relation %q: key attribute %q cannot be nullable", r.Name, r.Attrs[k].Name)
		}
	}
	s.rels[name] = r
	s.order = append(s.order, name)
	return nil
}

// MustAdd is Add that panics on error; for static catalogs.
func (s *Schema) MustAdd(r *Relation) {
	if err := s.Add(r); err != nil {
		panic(err)
	}
}

// Relation looks up a relation by name (case-insensitive).
func (s *Schema) Relation(name string) (*Relation, bool) {
	r, ok := s.rels[strings.ToLower(name)]
	return r, ok
}

// Names returns the relation names in insertion order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}
