package schema

import (
	"strings"
	"testing"

	"certsql/internal/value"
)

func rel() *Relation {
	return &Relation{
		Name: "Orders",
		Attrs: []Attribute{
			{Name: "o_orderkey", Type: value.KindInt},
			{Name: "o_custkey", Type: value.KindInt, Nullable: true},
			{Name: "o_status", Type: value.KindString, Nullable: true},
		},
		Key: []int{0},
	}
}

func TestRelationBasics(t *testing.T) {
	r := rel()
	if r.Arity() != 3 {
		t.Errorf("arity %d", r.Arity())
	}
	if !r.HasKey() {
		t.Error("HasKey")
	}
	if i := r.AttrIndex("O_CUSTKEY"); i != 1 {
		t.Errorf("case-insensitive AttrIndex = %d", i)
	}
	if i := r.AttrIndex("nope"); i != -1 {
		t.Errorf("missing attr index = %d", i)
	}
	s := r.String()
	for _, want := range []string{"Orders(", "o_orderkey int not null", "o_custkey int,"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q misses %q", s, want)
		}
	}
}

func TestSchemaAdd(t *testing.T) {
	s := New()
	if err := s.Add(rel()); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rel()); err == nil {
		t.Error("duplicate relation accepted")
	}
	got, ok := s.Relation("ORDERS")
	if !ok || got.Name != "Orders" {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := s.Relation("nope"); ok {
		t.Error("lookup of unknown relation succeeded")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "orders" {
		t.Errorf("Names() = %v", names)
	}
}

func TestSchemaKeyValidation(t *testing.T) {
	s := New()
	bad := rel()
	bad.Name = "bad1"
	bad.Key = []int{9}
	if err := s.Add(bad); err == nil {
		t.Error("out-of-range key accepted")
	}
	bad2 := rel()
	bad2.Name = "bad2"
	bad2.Key = []int{1} // o_custkey is nullable
	if err := s.Add(bad2); err == nil {
		t.Error("nullable key attribute accepted")
	}
}

func TestMustAddPanics(t *testing.T) {
	s := New()
	s.MustAdd(rel())
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on duplicate")
		}
	}()
	s.MustAdd(rel())
}
