package schema

import (
	"strings"
	"testing"

	"certsql/internal/value"
)

func TestParseDDL(t *testing.T) {
	sch, err := ParseDDL(`
-- catalog for the running example
CREATE TABLE orders (
    id   INT PRIMARY KEY,
    cust INT,
    memo VARCHAR(80) NOT NULL,
    paid BOOLEAN,
    due  DATE NULL
);

CREATE TABLE lineitem (
    oid   BIGINT,
    part  SMALLINT,
    price DECIMAL(12, 2) NOT NULL,
    PRIMARY KEY (oid, part)
)
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.Names(); len(got) != 2 || got[0] != "orders" || got[1] != "lineitem" {
		t.Fatalf("Names = %v", got)
	}

	orders, _ := sch.Relation("orders")
	wantOrders := []Attribute{
		{Name: "id", Type: value.KindInt},
		{Name: "cust", Type: value.KindInt, Nullable: true},
		{Name: "memo", Type: value.KindString},
		{Name: "paid", Type: value.KindBool, Nullable: true},
		{Name: "due", Type: value.KindDate, Nullable: true},
	}
	for i, want := range wantOrders {
		if orders.Attrs[i] != want {
			t.Errorf("orders.Attrs[%d] = %+v, want %+v", i, orders.Attrs[i], want)
		}
	}
	if len(orders.Key) != 1 || orders.Key[0] != 0 {
		t.Errorf("orders.Key = %v", orders.Key)
	}

	li, _ := sch.Relation("lineitem")
	if li.Attrs[0].Nullable || li.Attrs[1].Nullable {
		t.Error("trailing PRIMARY KEY must force its columns NOT NULL")
	}
	if !li.Attrs[0].Nullable && li.Attrs[2].Nullable {
		t.Error("price declared NOT NULL")
	}
	if len(li.Key) != 2 || li.Key[0] != 0 || li.Key[1] != 1 {
		t.Errorf("lineitem.Key = %v", li.Key)
	}
}

func TestParseDDLDoublePrecision(t *testing.T) {
	sch, err := ParseDDL(`CREATE TABLE m (x DOUBLE PRECISION NOT NULL, y REAL)`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sch.Relation("m")
	if m.Attrs[0].Type != value.KindFloat || m.Attrs[0].Nullable {
		t.Errorf("x = %+v", m.Attrs[0])
	}
	if m.Attrs[1].Type != value.KindFloat || !m.Attrs[1].Nullable {
		t.Errorf("y = %+v", m.Attrs[1])
	}
}

func TestParseDDLErrors(t *testing.T) {
	cases := map[string]string{
		"CREATE TABLE t (a BLOB)":                        "unsupported column type",
		"CREATE TABLE t (a INT, PRIMARY KEY (zzz))":      "unknown column",
		"CREATE TABLE t (a INT":                          "expected",
		"DROP TABLE t":                                   "expected CREATE",
		"CREATE TABLE t (a INT); CREATE TABLE t (b INT)": "duplicate relation",
	}
	for src, want := range cases {
		if _, err := ParseDDL(src); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("ParseDDL(%q) err = %v, want containing %q", src, err, want)
		}
	}
}

func TestParseDDLPositions(t *testing.T) {
	_, err := ParseDDL("CREATE TABLE t (\n  a BLOB\n)")
	if err == nil || !strings.Contains(err.Error(), "2:5") {
		t.Errorf("err = %v, want line:col 2:5", err)
	}
}
