// Package shard partitions relations and probe streams across N
// in-process engine shards for scatter-gather execution (DESIGN.md
// §16). It supplies the three primitives the sharded executor and the
// serving layer build on:
//
//   - HashRow / Partition: deterministic content hashing of rows and
//     hash-partitioning of a probe stream's row indices, the routing a
//     cross-process deployment would perform on the wire;
//   - BuildUnify: the wild-bucket co-partitioning of a unification
//     semijoin's build side — null-free build rows are bucketed by
//     full-row hash, rows containing a marked null go to a "wild"
//     bucket every shard scans, because a null unifies with anything
//     (paper Section 7). The scheme is unconditionally sound: the
//     planner's statistics only gate whether co-partitioning is
//     worth it, never whether it is correct;
//   - PartitionedStore: a snapshot-store wrapper satisfying the
//     server.Catalog seam that reports per-shard partition row counts
//     for /metrics, cached by table content generation.
//
// Determinism is the package's contract: every function here is a pure
// function of row content and the shard count, so a sharded execution
// can be replayed — and byte-compared against Shards: 1 — from a seed
// alone.
package shard

import (
	"sync"

	"certsql/internal/table"
	"certsql/internal/value"
)

// HashRow returns a deterministic 64-bit FNV-1a hash of a row's
// canonical key. Values that compare equal render identical keys
// (value.RowKey's property test pins this), so equal rows always land
// in the same partition — the fact the wild-bucket soundness argument
// leans on. The fold never materializes the key: the router hashes
// every probe row of every scattered operator, and value.FoldKey's
// property test pins the result to FNV-1a over value.RowKey's bytes.
func HashRow(row table.Row) uint64 {
	h := value.KeySeed
	for _, v := range row {
		h = value.FoldKey(h, v)
	}
	return h
}

// HashValue hashes a single attribute the same way HashRow hashes a
// row: values that compare equal (including int/float numeric
// cross-kind equality, and naive-mode nulls by mark) hash identically.
func HashValue(v value.Value) uint64 {
	return value.FoldKey(value.KeySeed, v)
}

// Partition splits the row indices 0..len(rows)-1 across k shards by
// content hash. Contiguous chunking would be cheaper, but hash routing
// is what a distributed deployment performs, and exercising it here is
// the point: the gather side must reassemble global input order from
// arbitrary interleavings, not from convenient contiguous ranges.
func Partition(rows []table.Row, k int) [][]int {
	parts := make([][]int, k)
	if k <= 0 {
		return parts
	}
	for i, r := range rows {
		s := int(HashRow(r) % uint64(k))
		parts[s] = append(parts[s], i)
	}
	return parts
}

// RowHasNull reports whether any attribute of the row is a marked
// null. Such a row unifies with arbitrary values, so partitioning by
// content hash cannot confine it to one shard.
func RowHasNull(row table.Row) bool {
	for _, v := range row {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// UnifyBuild is a unification-semijoin build side co-partitioned for k
// shards: null-free rows bucketed by full-row hash, null-containing
// rows in the wild bucket every probe consults.
//
// Soundness: value.UnifyTuples(lr, rr) with a null-free lr holds only
// when rr either equals lr value-for-value (then HashRow(rr) ==
// HashRow(lr), so rr is in lr's bucket) or contains a null (then rr is
// in Wild). A probe row that itself contains a null can unify across
// buckets and must scan the full build side — the executor keeps the
// original slice for that.
type UnifyBuild struct {
	// Shards is the partition count k.
	Shards int
	// Buckets holds the null-free build rows, indexed by
	// HashRow % Shards.
	Buckets [][]table.Row
	// Wild holds the build rows containing at least one marked null.
	Wild []table.Row
}

// BuildUnify co-partitions a build side for k shards.
func BuildUnify(rows []table.Row, k int) *UnifyBuild {
	b := &UnifyBuild{Shards: k, Buckets: make([][]table.Row, k)}
	for _, r := range rows {
		if RowHasNull(r) {
			b.Wild = append(b.Wild, r)
			continue
		}
		s := int(HashRow(r) % uint64(k))
		b.Buckets[s] = append(b.Buckets[s], r)
	}
	return b
}

// EstimatedBytes is the coarse per-row overhead estimate of the
// co-partition structure, mirroring table.Table's accounting: the
// structure re-slices existing rows, so only the slice headers are
// new.
func (b *UnifyBuild) EstimatedBytes() int64 {
	n := int64(len(b.Wild))
	for _, bk := range b.Buckets {
		n += int64(len(bk))
	}
	return n * 24 // slice-header bytes per referenced row
}

// KeyedBuild is the keyed counterpart of UnifyBuild, co-partitioning a
// build side on one column for a unification *edge* — a join condition
// of the shape `a = b OR a IS NULL OR b IS NULL` (any subset of the
// null tests), the pattern the certain-answer translation emits and
// real optimizers refuse to hash (paper Section 7). Build rows whose
// key column is null go to Wild: a null key can satisfy the edge
// against any probe (the null test, or mark equality under naive
// semantics). Null-free keys go to the bucket their hash routes to: if
// the probe key is also non-null, every null test is false, so the edge
// holds only under a = b — and equal-comparing values hash identically
// (HashValue), putting any matching build row in the probe's bucket.
//
// Buckets and Wild hold row *indexes*, in ascending order, so consumers
// can re-emit candidate pairs in exactly the order the unsharded
// product-then-filter pipeline visits them — the byte-identity the
// shard-ablation invariant demands. The pruning is a pure superset
// filter: the full join condition is still evaluated per candidate, so
// a wrong bucket guess is impossible, only a useless one.
type KeyedBuild struct {
	// Shards is the partition count k.
	Shards int
	// Col is the build-side key column the index is keyed on.
	Col int
	// Buckets holds indexes of rows with a non-null key, by
	// HashValue % Shards, each ascending.
	Buckets [][]int
	// Wild holds indexes of rows whose key is null, ascending.
	Wild []int
}

// BuildKeyed co-partitions a build side on column col for k shards.
func BuildKeyed(rows []table.Row, col, k int) *KeyedBuild {
	b := &KeyedBuild{Shards: k, Col: col, Buckets: make([][]int, k)}
	for i, r := range rows {
		if r[col].IsNull() {
			b.Wild = append(b.Wild, i)
			continue
		}
		s := int(HashValue(r[col]) % uint64(k))
		b.Buckets[s] = append(b.Buckets[s], i)
	}
	return b
}

// EstimatedBytes is the coarse memory estimate of the index: one int
// per referenced row.
func (b *KeyedBuild) EstimatedBytes() int64 {
	n := int64(len(b.Wild))
	for _, bk := range b.Buckets {
		n += int64(len(bk))
	}
	return n * 8
}

// EachCandidate visits, in ascending row order, every build row index
// that could satisfy a unification edge against the non-null probe key
// v: the rows of v's hash bucket merged with the wild rows. visit
// returning false stops the scan (the semijoin short-circuit). Callers
// must scan the full build side themselves when the probe key is null —
// such a probe can satisfy the edge against any build row.
func (b *KeyedBuild) EachCandidate(v value.Value, visit func(i int) bool) {
	bucket := b.Buckets[int(HashValue(v)%uint64(b.Shards))]
	wild := b.Wild
	for len(bucket) > 0 && len(wild) > 0 {
		if bucket[0] < wild[0] {
			if !visit(bucket[0]) {
				return
			}
			bucket = bucket[1:]
		} else {
			if !visit(wild[0]) {
				return
			}
			wild = wild[1:]
		}
	}
	for _, i := range bucket {
		if !visit(i) {
			return
		}
	}
	for _, i := range wild {
		if !visit(i) {
			return
		}
	}
}

// Catalog is the snapshot-store seam PartitionedStore wraps: the same
// method set as server.Catalog, redeclared here so the dependency
// points store-ward (the server imports shard, not the reverse). Both
// table.Store and persist.Store satisfy it.
type Catalog interface {
	Snapshot() *table.Snapshot
	Version() uint64
	Update(mutate func(db *table.Database) error) (uint64, error)
}

// PartitionedStore wraps a snapshot store with shard-partition
// bookkeeping: reads and updates delegate to the inner store (the
// partitioning is virtual — rows are routed at execution time, never
// physically moved), while PartitionCounts exposes how each relation's
// rows spread across the shards, cached by table content generation so
// republished snapshots only pay for the tables that changed.
type PartitionedStore struct {
	inner  Catalog
	shards int

	mu    sync.Mutex
	cache map[string]partEntry
}

type partEntry struct {
	gen    uint64
	counts []int64
}

// NewPartitionedStore wraps inner for k shards (k < 1 is pinned to 1).
func NewPartitionedStore(inner Catalog, k int) *PartitionedStore {
	if k < 1 {
		k = 1
	}
	return &PartitionedStore{inner: inner, shards: k, cache: map[string]partEntry{}}
}

// Shards returns the configured shard count.
func (p *PartitionedStore) Shards() int { return p.shards }

// Snapshot returns the inner store's current snapshot.
func (p *PartitionedStore) Snapshot() *table.Snapshot { return p.inner.Snapshot() }

// Version returns the inner store's current version.
func (p *PartitionedStore) Version() uint64 { return p.inner.Version() }

// Update delegates to the inner store; the partition cache needs no
// invalidation because entries are keyed by content generation.
func (p *PartitionedStore) Update(mutate func(db *table.Database) error) (uint64, error) {
	return p.inner.Update(mutate)
}

// PartitionCounts returns, for each relation of the current snapshot,
// the number of rows each shard owns under hash partitioning. The
// result is freshly allocated per call at the map level; the count
// slices are cached and must not be mutated.
func (p *PartitionedStore) PartitionCounts() map[string][]int64 {
	snap := p.inner.Snapshot()
	out := make(map[string][]int64)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, name := range snap.DB.Schema.Names() {
		t := snap.DB.MustTable(name)
		if e, ok := p.cache[name]; ok && e.gen == t.Generation() {
			out[name] = e.counts
			continue
		}
		counts := make([]int64, p.shards)
		for _, r := range t.Rows() {
			counts[int(HashRow(r)%uint64(p.shards))]++
		}
		p.cache[name] = partEntry{gen: t.Generation(), counts: counts}
		out[name] = counts
	}
	return out
}
