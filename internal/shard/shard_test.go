package shard

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"certsql/internal/table"
	"certsql/internal/value"
)

func randomRow(rng *rand.Rand) table.Row {
	row := make(table.Row, 1+rng.Intn(5))
	for i := range row {
		switch rng.Intn(5) {
		case 0:
			row[i] = value.Int(rng.Int63n(50))
		case 1:
			row[i] = value.Float(float64(rng.Int63n(50)))
		case 2:
			row[i] = value.Str(string(rune('a' + rng.Intn(26))))
		case 3:
			row[i] = value.Null(rng.Int63n(10))
		default:
			row[i] = value.Bool(rng.Intn(2) == 0)
		}
	}
	return row
}

// TestHashRowIsFNVOverRowKey pins the allocation-free fold to the
// reference definition: 64-bit FNV-1a over value.RowKey's canonical
// bytes. Partition placement everywhere (scatter routing, the
// partitioned store's /metrics counts) derives from this hash.
func TestHashRowIsFNVOverRowKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		row := randomRow(rng)
		h := fnv.New64a()
		h.Write([]byte(value.RowKey(row)))
		if got, want := HashRow(row), h.Sum64(); got != want {
			t.Fatalf("HashRow(%v) = %#x, want FNV-1a over RowKey %#x", row, got, want)
		}
	}
}

// TestPartitionCoversEveryRow checks the routing is a partition in the
// mathematical sense: every row index appears in exactly one shard.
func TestPartitionCoversEveryRow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([]table.Row, 200)
	for i := range rows {
		rows[i] = randomRow(rng)
	}
	for _, k := range []int{1, 2, 3, 8} {
		seen := make([]bool, len(rows))
		for _, part := range Partition(rows, k) {
			for _, i := range part {
				if seen[i] {
					t.Fatalf("k=%d: row %d routed twice", k, i)
				}
				seen[i] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("k=%d: row %d routed nowhere", k, i)
			}
		}
	}
}

// TestKeyedBuildCandidates property-checks the keyed co-partition: for
// any probe key, EachCandidate visits an ascending sequence that
// includes every build row the unification edge could accept — every
// row whose key is null, and every row whose key compares equal to the
// probe's (including int/float cross-kind equality).
func TestKeyedBuildCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		rows := make([]table.Row, rng.Intn(60))
		for i := range rows {
			rows[i] = table.Row{value.Int(rng.Int63n(8)), randomRow(rng)[0]}
		}
		col := rng.Intn(2)
		k := 2 + rng.Intn(7)
		b := BuildKeyed(rows, col, k)
		if n := b.EstimatedBytes(); n != int64(8*len(rows)) {
			t.Fatalf("EstimatedBytes = %d for %d rows", n, len(rows))
		}
		probe := randomRow(rng)[0]
		if probe.IsNull() {
			continue // null probes scan the full build side by contract
		}
		got := map[int]bool{}
		last := -1
		b.EachCandidate(probe, func(i int) bool {
			if i <= last {
				t.Fatalf("candidates out of order: %d after %d", i, last)
			}
			last = i
			got[i] = true
			return true
		})
		for i, r := range rows {
			mustSee := r[col].IsNull() || value.ConstEqual(r[col], probe)
			if mustSee && !got[i] {
				t.Fatalf("row %d (%v) can satisfy the edge against %v but was not visited", i, r[col], probe)
			}
		}
	}
}

// TestKeyedBuildShortCircuit checks a false-returning visit stops the
// scan — the semijoin probe relies on it.
func TestKeyedBuildShortCircuit(t *testing.T) {
	rows := []table.Row{{value.Int(1)}, {value.Null(1)}, {value.Int(1)}}
	b := BuildKeyed(rows, 0, 2)
	visits := 0
	b.EachCandidate(value.Int(1), func(i int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("visit returning false did not stop the scan: %d visits", visits)
	}
}
