package table

import (
	"sync"
	"sync/atomic"
)

// Snapshot is one published, immutable version of a database. The
// version is a monotonically increasing catalog/data version: every
// publish — a load, a DDL change, any mutation — produces a new
// snapshot under a new version, and plan caches key on the version so
// stale plans miss instead of serving against a schema or dataset they
// were not compiled for.
type Snapshot struct {
	// DB is the database at this version. It is immutable by contract:
	// neither the publisher nor any reader may mutate it after publish.
	DB *Database
	// Version is the snapshot's catalog/data version (≥ 1).
	Version uint64
}

// Store publishes copy-on-write database snapshots for concurrent
// readers. Readers call Snapshot and evaluate against the returned
// database with no locking at all — the pointer swap is atomic, and a
// published database is never mutated. Writers serialize among
// themselves on the store's mutex and swap in whole new versions:
//
//	store.Update(func(db *Database) error {
//	    return db.Insert("orders", row) // mutates a private clone
//	})
//
// A reader that loaded version N mid-update keeps evaluating against
// version N's tables; it sees exactly the old or exactly the new
// version, never a mix.
type Store struct {
	mu         sync.Mutex // serializes publishers
	cur        atomic.Pointer[Snapshot]
	onPublish  []func(*Snapshot)
	hookPanics atomic.Uint64
}

// OnPublish registers fn to run after every subsequent publish (Publish
// or successful Update), under the publisher mutex and in registration
// order, with the just-published snapshot. Hooks therefore observe
// every version exactly once and in order; a slow hook delays later
// publishers but never readers. The statistics collector uses this to
// keep per-table statistics fresh incrementally.
func (s *Store) OnPublish(fn func(*Snapshot)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onPublish = append(s.onPublish, fn)
}

// notify runs the publish hooks; the caller holds s.mu. Each hook runs
// under its own panic containment: a subscriber that panics (a buggy
// statistics collector, a broken replication hook) must not kill the
// writer whose Update triggered the publish, and must not starve the
// hooks registered after it — the snapshot is already published at
// this point, so aborting mid-notify would leave later subscribers
// permanently behind the version sequence. Contained panics are
// counted (HookPanics) so tests and operators can see them.
func (s *Store) notify(snap *Snapshot) {
	for _, fn := range s.onPublish {
		s.notifyOne(fn, snap)
	}
}

// notifyOne runs one hook, converting a panic into a counter bump.
func (s *Store) notifyOne(fn func(*Snapshot), snap *Snapshot) {
	defer func() {
		if recover() != nil {
			s.hookPanics.Add(1)
		}
	}()
	fn(snap)
}

// HookPanics reports how many OnPublish hook invocations panicked and
// were contained since the store was created.
func (s *Store) HookPanics() uint64 { return s.hookPanics.Load() }

// NewStore returns a store whose first published snapshot is db, at
// version 1. The caller hands over ownership: db must not be mutated
// after this call.
func NewStore(db *Database) *Store { return NewStoreAt(db, 1) }

// NewStoreAt returns a store whose first published snapshot is db at
// the given version (≥ 1). The persistent store uses it after
// recovery, so the version sequence continues where the previous
// process stopped instead of restarting from 1 — plan caches and
// clients key on the version, and a restart must never reissue an
// already-published version number for different data.
func NewStoreAt(db *Database, version uint64) *Store {
	if version < 1 {
		version = 1
	}
	s := &Store{}
	s.cur.Store(&Snapshot{DB: db, Version: version})
	return s
}

// Snapshot returns the current published snapshot. It never returns
// nil and never blocks, regardless of concurrent publishers.
func (s *Store) Snapshot() *Snapshot { return s.cur.Load() }

// Version returns the current snapshot's version.
func (s *Store) Version() uint64 { return s.cur.Load().Version }

// Publish swaps in db as the next version and returns that version.
// The caller hands over ownership: db must not be mutated afterwards.
// Use Publish for wholesale replacement (a fresh load); use Update for
// incremental copy-on-write mutation.
func (s *Store) Publish(db *Database) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load().Version + 1
	snap := &Snapshot{DB: db, Version: v}
	s.cur.Store(snap)
	s.notify(snap)
	return v
}

// Update clones the current database, applies mutate to the private
// clone, and publishes the result as the next version. When mutate
// returns an error nothing is published and the current version is
// returned unchanged. Concurrent Updates serialize; readers are never
// blocked and never observe the clone mid-mutation.
func (s *Store) Update(mutate func(db *Database) error) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	clone := cur.DB.Clone()
	if err := mutate(clone); err != nil {
		return cur.Version, err
	}
	v := cur.Version + 1
	snap := &Snapshot{DB: clone, Version: v}
	s.cur.Store(snap)
	s.notify(snap)
	return v, nil
}
