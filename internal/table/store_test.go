package table

import (
	"sync"
	"sync/atomic"
	"testing"

	"certsql/internal/schema"
	"certsql/internal/value"
)

func storeSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.ParseDDL("CREATE TABLE t (a INT NOT NULL, b INT)")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreVersioning(t *testing.T) {
	db := NewDatabase(storeSchema(t))
	st := NewStore(db)
	if got := st.Version(); got != 1 {
		t.Fatalf("initial version = %d, want 1", got)
	}
	v, err := st.Update(func(d *Database) error {
		return d.Insert("t", Row{value.Int(1), value.Int(2)})
	})
	if err != nil || v != 2 {
		t.Fatalf("update: version %d, err %v", v, err)
	}
	if n := st.Snapshot().DB.MustTable("t").Len(); n != 1 {
		t.Fatalf("new snapshot has %d rows, want 1", n)
	}
	// The original database handed to NewStore was cloned, not mutated.
	if n := db.MustTable("t").Len(); n != 0 {
		t.Fatalf("version-1 database mutated: %d rows", n)
	}

	v = st.Publish(NewDatabase(storeSchema(t)))
	if v != 3 || st.Version() != 3 {
		t.Fatalf("publish: version %d, store version %d, want 3", v, st.Version())
	}
}

func TestStoreUpdateErrorPublishesNothing(t *testing.T) {
	st := NewStore(NewDatabase(storeSchema(t)))
	before := st.Snapshot()
	v, err := st.Update(func(d *Database) error {
		if err := d.Insert("t", Row{value.Int(1), value.Int(1)}); err != nil {
			return err
		}
		return d.Insert("t", Row{value.Str("wrong kind")}) // arity error
	})
	if err == nil {
		t.Fatal("update with failing mutate returned nil error")
	}
	if v != before.Version || st.Snapshot() != before {
		t.Fatalf("failed update published a snapshot: version %d → %d", before.Version, v)
	}
	if n := st.Snapshot().DB.MustTable("t").Len(); n != 0 {
		t.Fatalf("failed update leaked %d rows into the published snapshot", n)
	}
}

// TestStoreSnapshotIsolation hammers the store with writers that
// republish while readers scan: under -race this proves the reader
// side needs no locks, and the row-count assertion proves a reader
// never observes a half-applied update (each update inserts two rows
// atomically, so every snapshot must hold an even row count).
func TestStoreSnapshotIsolation(t *testing.T) {
	st := NewStore(NewDatabase(storeSchema(t)))
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; !stop.Load(); i++ {
				_, err := st.Update(func(d *Database) error {
					if err := d.Insert("t", Row{value.Int(int64(i)), value.Int(0)}); err != nil {
						return err
					}
					return d.Insert("t", Row{value.Int(int64(i)), value.Int(1)})
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	var lastSeen atomic.Uint64
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			prev := uint64(0)
			for i := 0; i < 2000; i++ {
				snap := st.Snapshot()
				if snap.Version < prev {
					t.Errorf("version went backwards: %d after %d", snap.Version, prev)
					return
				}
				prev = snap.Version
				tab := snap.DB.MustTable("t")
				if tab.Len()%2 != 0 {
					t.Errorf("torn snapshot: %d rows at version %d", tab.Len(), snap.Version)
					return
				}
				// Touch every row: the race detector flags any write
				// into a published snapshot.
				for _, row := range tab.Rows() {
					_ = row[0].IsNull()
				}
				lastSeen.Store(snap.Version)
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	if lastSeen.Load() < 2 {
		t.Fatalf("readers never observed a published update (last version %d)", lastSeen.Load())
	}
}

// TestNotifyPanicContainment: one bad OnPublish subscriber must not
// kill the writer whose Update triggered the publish, must not starve
// subscribers registered after it, and must be visible in HookPanics.
func TestNotifyPanicContainment(t *testing.T) {
	st := NewStore(NewDatabase(storeSchema(t)))
	var after atomic.Uint64
	st.OnPublish(func(snap *Snapshot) { panic("buggy subscriber") })
	st.OnPublish(func(snap *Snapshot) { after.Store(snap.Version) })

	v, err := st.Update(func(d *Database) error {
		return d.Insert("t", Row{value.Int(1), value.Int(2)})
	})
	if err != nil || v != 2 {
		t.Fatalf("update through a panicking hook: version %d, err %v", v, err)
	}
	if got := after.Load(); got != 2 {
		t.Errorf("hook after the panicking one saw version %d, want 2", got)
	}
	if got := st.HookPanics(); got != 1 {
		t.Errorf("HookPanics = %d, want 1", got)
	}

	// Publish goes through the same notify path.
	if v := st.Publish(NewDatabase(storeSchema(t))); v != 3 {
		t.Fatalf("publish: version %d, want 3", v)
	}
	if got, want := after.Load(), uint64(3); got != want {
		t.Errorf("after publish, second hook saw version %d, want %d", got, want)
	}
	if got := st.HookPanics(); got != 2 {
		t.Errorf("HookPanics after publish = %d, want 2", got)
	}
}
