// Package table provides in-memory relation instances: row storage,
// hash indexes, set operations, and the incomplete database (a catalog
// of named tables over a schema).
package table

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"certsql/internal/schema"
	"certsql/internal/value"
)

// Row is one tuple. Rows are never mutated after insertion.
type Row = []value.Value

// genCounter mints globally unique table generations. Every mutation of
// any table assigns a fresh generation, so two tables with the same
// generation are guaranteed to hold identical rows — the property the
// statistics collector's cache keys on. Clone deliberately copies the
// generation: a clone has the same content, so sharing cached per-table
// statistics across copy-on-write publishes is sound.
var genCounter atomic.Uint64

// Table is a bag of rows of a fixed arity.
type Table struct {
	arity int
	gen   uint64
	rows  []Row
}

// New returns an empty table of the given arity.
func New(arity int) *Table { return &Table{arity: arity, gen: genCounter.Add(1)} }

// FromRows builds a table from rows, all of which must share the arity.
func FromRows(arity int, rows []Row) *Table {
	t := New(arity)
	for _, r := range rows {
		t.Append(r)
	}
	return t
}

// Arity returns the number of columns.
func (t *Table) Arity() int { return t.arity }

// Len returns the number of rows (bag cardinality).
func (t *Table) Len() int { return len(t.rows) }

// Rows exposes the backing rows. Callers must not mutate them.
func (t *Table) Rows() []Row { return t.rows }

// Generation returns the table's content generation: a globally unique
// id reassigned on every mutation. Equal generations imply identical
// content (Clone preserves the generation; mutation always changes it),
// so caches of content-derived artifacts — per-table statistics — can
// key on (relation name, generation).
func (t *Table) Generation() uint64 { return t.gen }

// Row returns the i-th row.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Append adds a row. It panics on arity mismatch — a programming error.
func (t *Table) Append(r Row) {
	if len(r) != t.arity {
		panic(fmt.Sprintf("table: appending row of arity %d to table of arity %d", len(r), t.arity))
	}
	t.rows = append(t.rows, r)
	t.gen = genCounter.Add(1)
}

// SetRow replaces the i-th row. It panics on arity mismatch. Replacing
// (rather than mutating) rows keeps clones of the table independent:
// Clone copies the row-pointer slice, so replacement is not visible
// through other clones while in-place mutation would be.
func (t *Table) SetRow(i int, r Row) {
	if len(r) != t.arity {
		panic(fmt.Sprintf("table: setting row of arity %d in table of arity %d", len(r), t.arity))
	}
	t.rows[i] = r
	t.gen = genCounter.Add(1)
}

// Value and row-header sizes used by EstimatedBytes. A value.Value is
// a 40-byte struct (kind + three payload fields); each row adds a
// slice header. String payloads are not counted — the estimate is
// deliberately coarse and monotone in row count and arity.
const (
	valueBytes     = 40
	rowHeaderBytes = 24
)

// EstimatedBytes returns a coarse estimate of the table's in-memory
// size, used by the resource governor for memory accounting at
// operator boundaries.
func (t *Table) EstimatedBytes() int64 {
	return int64(t.Len()) * (rowHeaderBytes + valueBytes*int64(t.arity))
}

// Grow pre-allocates capacity for n additional rows.
func (t *Table) Grow(n int) {
	if cap(t.rows)-len(t.rows) < n {
		rows := make([]Row, len(t.rows), len(t.rows)+n)
		copy(rows, t.rows)
		t.rows = rows
	}
}

// Distinct returns a new table with duplicate rows removed (set
// semantics). Duplicate detection uses the canonical row key, so marked
// nulls are distinct unless their marks coincide.
func (t *Table) Distinct() *Table {
	out := New(t.arity)
	seen := make(map[string]struct{}, len(t.rows))
	for _, r := range t.rows {
		k := value.RowKey(r)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Append(r)
	}
	return out
}

// Contains reports whether the table contains a row identical to r.
func (t *Table) Contains(r Row) bool {
	k := value.RowKey(r)
	for _, s := range t.rows {
		if value.RowKey(s) == k {
			return true
		}
	}
	return false
}

// KeySet returns the set of canonical row keys, for set operations.
func (t *Table) KeySet() map[string]struct{} {
	s := make(map[string]struct{}, len(t.rows))
	for _, r := range t.rows {
		s[value.RowKey(r)] = struct{}{}
	}
	return s
}

// SortedStrings renders each row as a string and sorts them; used by
// tests and examples to compare results deterministically.
func (t *Table) SortedStrings() []string {
	out := make([]string, 0, len(t.rows))
	for _, r := range t.rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		out = append(out, "("+strings.Join(parts, ", ")+")")
	}
	sort.Strings(out)
	return out
}

// String renders the table, one row per line, in insertion order.
func (t *Table) String() string {
	var b strings.Builder
	for _, r := range t.rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		b.WriteString("(" + strings.Join(parts, ", ") + ")\n")
	}
	return b.String()
}

// Index is a hash index on a projection of a table's columns.
type Index struct {
	cols    []int
	buckets map[string][]int // key -> row positions
}

// BuildIndex builds a hash index on the given column positions.
func (t *Table) BuildIndex(cols []int) *Index {
	idx := &Index{cols: cols, buckets: make(map[string][]int, len(t.rows))}
	for i, r := range t.rows {
		k := value.TupleKey(r, cols)
		idx.buckets[k] = append(idx.buckets[k], i)
	}
	return idx
}

// Lookup returns the positions of rows whose indexed columns match the
// projection of probe onto probeCols.
func (idx *Index) Lookup(probe Row, probeCols []int) []int {
	return idx.buckets[value.TupleKey(probe, probeCols)]
}

// NotNullViolation reports a null stored in (or offered to) an
// attribute the schema declares NOT NULL.
type NotNullViolation struct {
	Relation  string
	Attribute string
	Col       int
}

func (e *NotNullViolation) Error() string {
	return fmt.Sprintf("table: relation %q attribute %q (column %d): null in NOT NULL attribute",
		e.Relation, e.Attribute, e.Col)
}

// Database is an incomplete database instance: a schema plus one table
// per relation. It also tracks the next fresh null mark, so loaders and
// generators can mint globally unique marked nulls.
//
// The database keeps an incremental count of NOT NULL violations —
// nulls stored in attributes the schema declares non-nullable — so
// ConformsNonNull is O(1). The count stays exact as long as all
// mutations go through Insert and ReplaceRow; mutating a Table
// obtained from the catalog directly bypasses the accounting.
type Database struct {
	Schema   *schema.Schema
	tables   map[string]*Table
	nextNull int64

	enforceNonNull    bool
	nonNullViolations int

	// recorder, when set, observes every successful Insert and
	// ReplaceRow — the delta capture the persistent store's write-ahead
	// log is built on. Clone deliberately does not copy it: a recorder
	// is attached to one private clone for the duration of one
	// Store.Update and must never leak into published snapshots.
	recorder func(Op)
}

// OpKind distinguishes the recorded catalog mutations.
type OpKind uint8

const (
	// OpInsert records a row appended to a relation.
	OpInsert OpKind = iota
	// OpReplace records a row replaced in place.
	OpReplace
)

// Op is one recorded catalog mutation: the exact, replayable effect of
// a successful Insert or ReplaceRow. Replaying a sequence of Ops
// against a clone of the pre-state database reproduces the post-state
// byte for byte, which is the contract the write-ahead log depends on.
type Op struct {
	Kind  OpKind
	Table string
	// Index is the replaced row's position (OpReplace only).
	Index int
	Row   Row
}

// SetRecorder installs fn to observe every subsequent successful
// mutation (nil uninstalls). The recorder sees each op after it has
// been applied, in application order.
func (db *Database) SetRecorder(fn func(Op)) { db.recorder = fn }

// NextNullMark returns the mark the next FreshNull call would mint.
// Together with the recorded ops this makes a mutation fully
// replayable: apply the ops, then SetNextNullMark to the captured
// post-state value.
func (db *Database) NextNullMark() int64 { return db.nextNull }

// NewDatabase returns an empty database over the given schema, with an
// empty table pre-created for every relation.
func NewDatabase(s *schema.Schema) *Database {
	db := &Database{Schema: s, tables: map[string]*Table{}, nextNull: 1}
	for _, name := range s.Names() {
		r, _ := s.Relation(name)
		db.tables[name] = New(r.Arity())
	}
	return db
}

// Table returns the instance of the named relation (case-insensitive),
// or an error when the relation is not in the schema.
func (db *Database) Table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("table: unknown relation %q", name)
	}
	return t, nil
}

// MustTable is Table that panics on unknown relations.
func (db *Database) MustTable(name string) *Table {
	t, err := db.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// EnforceNonNull toggles strict NOT NULL enforcement: when on,
// Insert and ReplaceRow reject rows carrying a null in a non-nullable
// attribute with a *NotNullViolation instead of recording the
// violation. By default enforcement is off (nullability is a
// generator-side concern, as in the paper's setup) and violations are
// only counted, for ConformsNonNull.
func (db *Database) EnforceNonNull(on bool) { db.enforceNonNull = on }

// ConformsNonNull reports whether the data honours every NOT NULL
// declaration in the schema. O(1): the violation count is maintained
// incrementally by Insert and ReplaceRow.
func (db *Database) ConformsNonNull() bool { return db.nonNullViolations == 0 }

// nonNullCheck counts the NOT NULL violations in r (against rel), or
// returns the first one as an error when enforcement is on.
func (db *Database) nonNullCheck(rel *schema.Relation, r Row) (int, error) {
	viol := 0
	for i, v := range r {
		if v.IsNull() && !rel.Attrs[i].Nullable {
			if db.enforceNonNull {
				return 0, &NotNullViolation{Relation: rel.Name, Attribute: rel.Attrs[i].Name, Col: i}
			}
			viol++
		}
	}
	return viol, nil
}

// Insert appends a row to the named relation, validating arity and
// column types. Nulls in NOT NULL attributes are counted (for
// ConformsNonNull) or, with EnforceNonNull(true), rejected with a
// *NotNullViolation.
func (db *Database) Insert(name string, r Row) error {
	rel, ok := db.Schema.Relation(name)
	if !ok {
		return fmt.Errorf("table: unknown relation %q", name)
	}
	if len(r) != rel.Arity() {
		return fmt.Errorf("table: relation %q: row arity %d, want %d", name, len(r), rel.Arity())
	}
	for i, v := range r {
		if v.IsNull() {
			continue
		}
		want := rel.Attrs[i].Type
		if v.Kind() != want && !(numericKind(v.Kind()) && numericKind(want)) {
			return fmt.Errorf("table: relation %q attribute %q: value %s has kind %s, want %s",
				name, rel.Attrs[i].Name, v, v.Kind(), want)
		}
	}
	viol, err := db.nonNullCheck(rel, r)
	if err != nil {
		return err
	}
	db.nonNullViolations += viol
	db.tables[strings.ToLower(name)].Append(r)
	if db.recorder != nil {
		db.recorder(Op{Kind: OpInsert, Table: strings.ToLower(name), Row: r})
	}
	return nil
}

// ReplaceRow replaces row i of the named relation, keeping the NOT
// NULL accounting exact. Mutators (null injectors, minimizers) must
// use this instead of Table.SetRow so ConformsNonNull stays O(1).
func (db *Database) ReplaceRow(name string, i int, r Row) error {
	rel, ok := db.Schema.Relation(name)
	if !ok {
		return fmt.Errorf("table: unknown relation %q", name)
	}
	if len(r) != rel.Arity() {
		return fmt.Errorf("table: relation %q: row arity %d, want %d", name, len(r), rel.Arity())
	}
	t := db.tables[strings.ToLower(name)]
	if i < 0 || i >= t.Len() {
		return fmt.Errorf("table: relation %q: row index %d out of range [0, %d)", name, i, t.Len())
	}
	newViol, err := db.nonNullCheck(rel, r)
	if err != nil {
		return err
	}
	oldViol := 0
	for c, v := range t.Row(i) {
		if v.IsNull() && !rel.Attrs[c].Nullable {
			oldViol++
		}
	}
	db.nonNullViolations += newViol - oldViol
	t.SetRow(i, r)
	if db.recorder != nil {
		db.recorder(Op{Kind: OpReplace, Table: strings.ToLower(name), Index: i, Row: r})
	}
	return nil
}

func numericKind(k value.Kind) bool { return k == value.KindInt || k == value.KindFloat }

// FreshNull mints a marked null with a previously unused mark.
func (db *Database) FreshNull() value.Value {
	id := db.nextNull
	db.nextNull++
	return value.Null(id)
}

// SetNextNullMark makes subsequent FreshNull calls start from mark id.
func (db *Database) SetNextNullMark(id int64) { db.nextNull = id }

// NullCount returns the total number of null entries across all tables.
func (db *Database) NullCount() int {
	n := 0
	for _, t := range db.tables {
		for _, r := range t.rows {
			for _, v := range r {
				if v.IsNull() {
					n++
				}
			}
		}
	}
	return n
}

// Nulls returns the distinct null marks occurring in the database, in
// ascending order.
func (db *Database) Nulls() []int64 {
	seen := map[int64]struct{}{}
	for _, t := range db.tables {
		for _, r := range t.rows {
			for _, v := range r {
				if v.IsNull() {
					seen[v.NullID()] = struct{}{}
				}
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Constants returns the distinct constants occurring in the database
// (the constant part of the active domain), in a deterministic order.
func (db *Database) Constants() []value.Value {
	seen := map[value.Value]struct{}{}
	for _, t := range db.tables {
		for _, r := range t.rows {
			for _, v := range r {
				if !v.IsNull() {
					seen[v] = struct{}{}
				}
			}
		}
	}
	out := make([]value.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ActiveDomain returns all elements (constants and nulls) occurring in
// the database, constants first, in a deterministic order.
func (db *Database) ActiveDomain() []value.Value {
	out := db.Constants()
	for _, id := range db.Nulls() {
		out = append(out, value.Null(id))
	}
	return out
}

// Clone returns a deep-enough copy of the database: tables are copied,
// rows are shared (rows are immutable by convention).
func (db *Database) Clone() *Database {
	out := &Database{
		Schema: db.Schema, tables: map[string]*Table{}, nextNull: db.nextNull,
		enforceNonNull: db.enforceNonNull, nonNullViolations: db.nonNullViolations,
	}
	for name, t := range db.tables {
		nt := New(t.arity)
		nt.rows = append(nt.rows, t.rows...)
		nt.gen = t.gen // same content ⇒ same generation (see genCounter)
		out.tables[name] = nt
	}
	return out
}

// Apply returns the complete database v(D) obtained by replacing every
// null ⊥ᵢ with valuation[i]. Marks missing from the valuation map are
// left untouched (callers building full valuations must cover all marks).
func (db *Database) Apply(valuation map[int64]value.Value) *Database {
	out := &Database{Schema: db.Schema, tables: map[string]*Table{}, nextNull: db.nextNull,
		enforceNonNull: db.enforceNonNull}
	for name, t := range db.tables {
		rel, _ := db.Schema.Relation(name)
		nt := New(t.arity)
		nt.Grow(t.Len())
		for _, r := range t.rows {
			nr := make(Row, len(r))
			for i, v := range r {
				if v.IsNull() {
					if c, ok := valuation[v.NullID()]; ok {
						nr[i] = c
						continue
					}
				}
				nr[i] = v
				// Nulls the valuation misses stay; recount them so
				// ConformsNonNull stays exact on the applied database.
				if v.IsNull() && rel != nil && !rel.Attrs[i].Nullable {
					out.nonNullViolations++
				}
			}
			nt.Append(nr)
		}
		out.tables[name] = nt
	}
	return out
}
