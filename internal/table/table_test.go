package table

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"certsql/internal/schema"
	"certsql/internal/value"
)

func testSchema() *schema.Schema {
	s := schema.New()
	s.MustAdd(&schema.Relation{Name: "t", Attrs: []schema.Attribute{
		{Name: "a", Type: value.KindInt, Nullable: true},
		{Name: "b", Type: value.KindString, Nullable: true},
	}})
	s.MustAdd(&schema.Relation{Name: "u", Attrs: []schema.Attribute{
		{Name: "x", Type: value.KindDate, Nullable: true},
	}})
	return s
}

func TestTableBasics(t *testing.T) {
	tab := New(2)
	tab.Append(Row{value.Int(1), value.Str("a")})
	tab.Append(Row{value.Int(1), value.Str("a")})
	tab.Append(Row{value.Int(2), value.Str("b")})
	if tab.Len() != 3 || tab.Arity() != 2 {
		t.Fatalf("len %d arity %d", tab.Len(), tab.Arity())
	}
	d := tab.Distinct()
	if d.Len() != 2 {
		t.Errorf("distinct: %d rows", d.Len())
	}
	if !tab.Contains(Row{value.Int(2), value.Str("b")}) {
		t.Error("Contains missed a row")
	}
	if tab.Contains(Row{value.Int(3), value.Str("b")}) {
		t.Error("Contains found a missing row")
	}
	got := tab.SortedStrings()
	if got[0] != "(1, 'a')" {
		t.Errorf("SortedStrings[0] = %q", got[0])
	}
	if !strings.Contains(tab.String(), "(2, 'b')") {
		t.Errorf("String() = %q", tab.String())
	}
}

func TestDistinctMarkedNulls(t *testing.T) {
	tab := New(1)
	tab.Append(Row{value.Null(1)})
	tab.Append(Row{value.Null(1)})
	tab.Append(Row{value.Null(2)})
	d := tab.Distinct()
	if d.Len() != 2 {
		t.Errorf("marked nulls dedupe to %d rows, want 2 (⊥1, ⊥2 distinct)", d.Len())
	}
}

func TestAppendPanics(t *testing.T) {
	tab := New(2)
	defer func() {
		if recover() == nil {
			t.Error("no panic on arity mismatch")
		}
	}()
	tab.Append(Row{value.Int(1)})
}

func TestSetRow(t *testing.T) {
	tab := New(1)
	tab.Append(Row{value.Int(1)})
	tab.SetRow(0, Row{value.Int(2)})
	if tab.Row(0)[0] != value.Int(2) {
		t.Error("SetRow did not replace")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on SetRow arity mismatch")
		}
	}()
	tab.SetRow(0, Row{value.Int(1), value.Int(2)})
}

func TestIndex(t *testing.T) {
	tab := New(2)
	for i := 0; i < 10; i++ {
		tab.Append(Row{value.Int(int64(i % 3)), value.Str("x")})
	}
	idx := tab.BuildIndex([]int{0})
	hits := idx.Lookup(Row{value.Int(1)}, []int{0})
	if len(hits) != 3 {
		t.Errorf("index lookup found %d rows, want 3", len(hits))
	}
	for _, h := range hits {
		if tab.Row(h)[0] != value.Int(1) {
			t.Errorf("row %d has wrong key", h)
		}
	}
	if got := idx.Lookup(Row{value.Int(9)}, []int{0}); len(got) != 0 {
		t.Errorf("lookup of missing key found %d rows", len(got))
	}
}

func TestDatabaseInsertValidation(t *testing.T) {
	db := NewDatabase(testSchema())
	if err := db.Insert("t", Row{value.Int(1), value.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", Row{db.FreshNull(), db.FreshNull()}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("nope", Row{}); err == nil {
		t.Error("insert into unknown relation accepted")
	}
	if err := db.Insert("t", Row{value.Int(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := db.Insert("t", Row{value.Str("wrong"), value.Str("x")}); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("Table() of unknown relation succeeded")
	}
}

func TestDatabaseNullsAndDomain(t *testing.T) {
	db := NewDatabase(testSchema())
	n1 := db.FreshNull()
	n2 := db.FreshNull()
	if n1.NullID() == n2.NullID() {
		t.Fatal("FreshNull repeated a mark")
	}
	if err := db.Insert("t", Row{n1, value.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", Row{n1, value.Str("y")}); err != nil { // repeated mark
		t.Fatal(err)
	}
	if err := db.Insert("u", Row{n2}); err != nil {
		t.Errorf("null rejected in a date column: %v", err)
	}
	if db.NullCount() != 3 {
		t.Errorf("NullCount = %d, want 3 occurrences", db.NullCount())
	}
	if got := db.Nulls(); len(got) != 2 || got[0] != n1.NullID() || got[1] != n2.NullID() {
		t.Errorf("Nulls() = %v", got)
	}
	consts := db.Constants()
	if len(consts) != 2 {
		t.Errorf("Constants() = %v", consts)
	}
	dom := db.ActiveDomain()
	if len(dom) != 4 {
		t.Errorf("ActiveDomain has %d elements, want 4", len(dom))
	}
}

func TestApplyValuation(t *testing.T) {
	db := NewDatabase(testSchema())
	n1 := db.FreshNull()
	if err := db.Insert("t", Row{n1, value.Str("x")}); err != nil {
		t.Fatal(err)
	}
	v := map[int64]value.Value{n1.NullID(): value.Int(42)}
	complete := db.Apply(v)
	if complete.NullCount() != 0 {
		t.Error("Apply left nulls behind")
	}
	if got := complete.MustTable("t").Row(0)[0]; got != value.Int(42) {
		t.Errorf("applied value = %v", got)
	}
	// The original is untouched.
	if db.MustTable("t").Row(0)[0] != n1 {
		t.Error("Apply mutated the original database")
	}
}

func TestCloneIndependence(t *testing.T) {
	db := NewDatabase(testSchema())
	if err := db.Insert("t", Row{value.Int(1), value.Str("x")}); err != nil {
		t.Fatal(err)
	}
	clone := db.Clone()
	clone.MustTable("t").SetRow(0, Row{value.Int(2), value.Str("y")})
	clone.MustTable("t").Append(Row{value.Int(3), value.Str("z")})
	if db.MustTable("t").Len() != 1 {
		t.Error("clone append leaked into original")
	}
	if db.MustTable("t").Row(0)[0] != value.Int(1) {
		t.Error("clone SetRow leaked into original")
	}
	// Fresh nulls in the clone do not collide with the original's.
	a := clone.FreshNull()
	b := db.FreshNull()
	if a.NullID() != b.NullID() {
		// Clones share the counter value at clone time; both minting is
		// fine as long as each database is internally consistent.
		t.Logf("clone mark %d, original mark %d", a.NullID(), b.NullID())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := NewDatabase(testSchema())
	n := db.FreshNull()
	rows := []Row{
		{value.Int(1), value.Str("hello, world")},
		{n, value.Str(`quote"and,comma`)},
		{value.Int(3), n}, // repeated mark across columns
	}
	for _, r := range rows {
		if err := db.Insert("t", r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.MustTable("t").WriteCSVWithMarks(&buf); err != nil {
		t.Fatal(err)
	}

	db2 := NewDatabase(testSchema())
	if err := ReadCSVInto(db2, "t", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := db2.MustTable("t")
	if got.Len() != 3 {
		t.Fatalf("round trip lost rows: %d", got.Len())
	}
	// The repeated mark must survive.
	if got.Row(1)[0] != got.Row(2)[1] {
		t.Errorf("marked null identity lost: %v vs %v", got.Row(1)[0], got.Row(2)[1])
	}
	if got.Row(0)[1] != value.Str("hello, world") {
		t.Errorf("string mangled: %v", got.Row(0)[1])
	}

	// Plain WriteCSV: nulls become \N and fresh marks on load.
	var buf2 bytes.Buffer
	if err := db.MustTable("t").WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `\N`) {
		t.Errorf("plain CSV misses \\N: %s", buf2.String())
	}
	db3 := NewDatabase(testSchema())
	if err := ReadCSVInto(db3, "t", bytes.NewReader(buf2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if db3.NullCount() != 2 {
		t.Errorf("null count after plain round trip = %d, want 2", db3.NullCount())
	}
}

func TestCSVAllKinds(t *testing.T) {
	s := schema.New()
	s.MustAdd(&schema.Relation{Name: "k", Attrs: []schema.Attribute{
		{Name: "i", Type: value.KindInt, Nullable: true},
		{Name: "f", Type: value.KindFloat, Nullable: true},
		{Name: "s", Type: value.KindString, Nullable: true},
		{Name: "d", Type: value.KindDate, Nullable: true},
		{Name: "b", Type: value.KindBool, Nullable: true},
	}})
	db := NewDatabase(s)
	if err := db.Insert("k", Row{
		value.Int(-5), value.Float(2.25), value.Str("x"), value.MustDate("1997-06-15"), value.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.MustTable("k").WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase(s)
	if err := ReadCSVInto(db2, "k", &buf); err != nil {
		t.Fatal(err)
	}
	want := db.MustTable("k").Row(0)
	got := db2.MustTable("k").Row(0)
	for i := range want {
		if value.RowKey(Row{got[i]}) != value.RowKey(Row{want[i]}) {
			t.Errorf("column %d: %v != %v", i, got[i], want[i])
		}
	}
	if err := ReadCSVInto(db2, "missing", &buf); err == nil {
		t.Error("ReadCSVInto accepted unknown relation")
	}
	if err := ReadCSVInto(db2, "k", strings.NewReader("notanint,1,x,1997-01-01,true\n")); err == nil {
		t.Error("ReadCSVInto accepted a bad int")
	}
}

func TestFromRowsAndGrow(t *testing.T) {
	rows := make([]Row, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range rows {
		rows[i] = Row{value.Int(rng.Int63n(10))}
	}
	tab := FromRows(1, rows)
	if tab.Len() != 100 {
		t.Fatalf("len %d", tab.Len())
	}
	tab.Grow(1000)
	if tab.Len() != 100 {
		t.Fatalf("Grow changed length: %d", tab.Len())
	}
	tab.Append(Row{value.Int(5)})
	if tab.Len() != 101 {
		t.Fatal("append after grow")
	}
}

// TestTableQuickProperties uses testing/quick on the core set
// operations: Distinct is idempotent, KeySet size matches Distinct
// length, and Contains agrees with KeySet membership.
func TestTableQuickProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vs []reflect.Value, rng *rand.Rand) {
		n := rng.Intn(12)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{randVal(rng), randVal(rng)}
		}
		vs[0] = reflect.ValueOf(rows)
	}}
	if err := quick.Check(func(rows []Row) bool {
		tab := FromRows(2, rows)
		d1 := tab.Distinct()
		d2 := d1.Distinct()
		if d1.Len() != d2.Len() {
			return false
		}
		if len(tab.KeySet()) != d1.Len() {
			return false
		}
		for _, r := range rows {
			if !tab.Contains(r) {
				return false
			}
			if _, ok := tab.KeySet()[value.RowKey(r)]; !ok {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func randVal(rng *rand.Rand) value.Value {
	switch rng.Intn(4) {
	case 0:
		return value.Int(int64(rng.Intn(3)))
	case 1:
		return value.Str([]string{"x", "y"}[rng.Intn(2)])
	case 2:
		return value.Null(int64(rng.Intn(3)))
	default:
		return value.Float(float64(rng.Intn(2)))
	}
}
