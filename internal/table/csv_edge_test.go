package table

import (
	"strings"
	"testing"

	"certsql/internal/schema"
	"certsql/internal/value"
)

// Edge cases for the CSV loader: quoting, embedded newlines, both null
// conventions, and malformed input. Every malformed case must surface
// as an error, never a panic — CSV is the user-facing ingestion path.

func csvSchema() *schema.Schema {
	s := schema.New()
	s.MustAdd(&schema.Relation{Name: "t", Attrs: []schema.Attribute{
		{Name: "a", Type: value.KindInt, Nullable: true},
		{Name: "b", Type: value.KindString, Nullable: true},
	}})
	return s
}

func loadCSV(t *testing.T, input string) (*Database, error) {
	t.Helper()
	db := NewDatabase(csvSchema())
	return db, ReadCSVInto(db, "t", strings.NewReader(input))
}

func TestReadCSVEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		want    []string // SortedStrings of t, nil when an error is expected
		wantErr string   // substring of the expected error
	}{
		{
			name:  "quoted comma",
			input: "1,\"x, y\"\n",
			want:  []string{"(1, 'x, y')"},
		},
		{
			name:  "embedded newline in quoted field",
			input: "1,\"line one\nline two\"\n",
			want:  []string{"(1, 'line one\nline two')"},
		},
		{
			name:  "quoted quotes",
			input: "1,\"she said \"\"hi\"\"\"\n",
			want:  []string{"(1, 'she said \"hi\"')"},
		},
		{
			name:  "postgres null token",
			input: "\\N,x\n",
			want:  []string{"(⊥1, 'x')"},
		},
		{
			name:  "explicit marks preserved",
			input: "⊥7,first\n⊥7,second\n",
			want:  []string{"(⊥7, 'first')", "(⊥7, 'second')"},
		},
		{
			name:  "whitespace not trimmed",
			input: "1, padded\n",
			want:  []string{"(1, ' padded')"},
		},
		{
			name:  "empty input is an empty table",
			input: "",
			want:  []string{},
		},
		{
			name:    "too few fields",
			input:   "1\n",
			wantErr: "wrong number of fields",
		},
		{
			name:    "too many fields",
			input:   "1,x,extra\n",
			wantErr: "wrong number of fields",
		},
		{
			name:    "non-numeric int",
			input:   "notanint,x\n",
			wantErr: "t.a",
		},
		{
			name:    "malformed null mark",
			input:   "⊥xyz,x\n",
			wantErr: "bad null mark",
		},
		{
			name:    "unterminated quote",
			input:   "1,\"never closed\n",
			wantErr: "quote",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := loadCSV(t, tc.input)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got rows %v", tc.wantErr, db.MustTable("t").SortedStrings())
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			got := db.MustTable("t").SortedStrings()
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestReadCSVFreshNullTokens: each \N becomes its own fresh mark — two
// tokens never alias, matching the semantics of unknown values.
func TestReadCSVFreshNullTokens(t *testing.T) {
	db, err := loadCSV(t, "\\N,x\n\\N,y\n")
	if err != nil {
		t.Fatal(err)
	}
	rows := db.MustTable("t").Rows()
	if rows[0][0].NullID() == rows[1][0].NullID() {
		t.Errorf("two \\N tokens share mark ⊥%d", rows[0][0].NullID())
	}
}

// TestReadCSVAdvancesMarkCounter: after loading explicit ⊥id marks,
// FreshNull must not mint a colliding mark.
func TestReadCSVAdvancesMarkCounter(t *testing.T) {
	db, err := loadCSV(t, "⊥41,x\n")
	if err != nil {
		t.Fatal(err)
	}
	if fresh := db.FreshNull(); fresh.NullID() <= 41 {
		t.Errorf("FreshNull after loading ⊥41 returned ⊥%d", fresh.NullID())
	}
}

// TestCSVRoundTripWithMarks: WriteCSVWithMarks → ReadCSVInto preserves
// values, repeated marks and mark identity.
func TestCSVRoundTripWithMarks(t *testing.T) {
	db := NewDatabase(csvSchema())
	n := db.FreshNull()
	for _, r := range []Row{
		{value.Int(1), value.Str("plain")},
		{n, value.Str("a, quoted\nnewline")},
		{value.Int(2), n},
	} {
		if err := db.Insert("t", r); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := db.MustTable("t").WriteCSVWithMarks(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase(csvSchema())
	if err := ReadCSVInto(db2, "t", strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	a, b := db.MustTable("t").SortedStrings(), db2.MustTable("t").SortedStrings()
	if len(a) != len(b) {
		t.Fatalf("round trip changed the table:\n%v\n%v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip changed row %d: %q vs %q", i, a[i], b[i])
		}
	}
}
