package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"certsql/internal/value"
)

// NullToken is the CSV representation of a null, following PostgreSQL's
// COPY convention. When marks matter (repeated marked nulls), use
// WriteCSVWithMarks, which writes ⊥id tokens instead.
const NullToken = `\N`

// WriteCSV writes a table to w in CSV form, nulls as NullToken.
func (t *Table) WriteCSV(w io.Writer) error { return t.writeCSV(w, false) }

// WriteCSVWithMarks writes a table to w in CSV form, nulls as ⊥id so
// that repeated marks survive a round trip.
func (t *Table) WriteCSVWithMarks(w io.Writer) error { return t.writeCSV(w, true) }

func (t *Table) writeCSV(w io.Writer, marks bool) error {
	cw := csv.NewWriter(w)
	rec := make([]string, t.arity)
	for _, r := range t.rows {
		for i, v := range r {
			rec[i] = csvField(v, marks)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func csvField(v value.Value, marks bool) string {
	switch v.Kind() {
	case value.KindNull:
		if marks {
			return fmt.Sprintf("⊥%d", v.NullID())
		}
		return NullToken
	case value.KindString:
		return v.AsString()
	case value.KindInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case value.KindFloat:
		return strconv.FormatFloat(v.AsFloat(), 'f', -1, 64)
	case value.KindDate:
		return time.Unix(v.AsDate()*86400, 0).UTC().Format("2006-01-02")
	case value.KindBool:
		if v.AsBool() {
			return "true"
		}
		return "false"
	default:
		return v.String()
	}
}

// ReadCSVInto reads CSV records from r into the named relation of db,
// parsing fields according to the relation's attribute types. NullToken
// fields become fresh marked nulls; ⊥id fields reuse the given mark,
// and the database's fresh-mark counter is advanced past every mark
// read, so later FreshNull calls cannot collide.
func ReadCSVInto(db *Database, relName string, r io.Reader) error {
	rel, ok := db.Schema.Relation(relName)
	if !ok {
		return fmt.Errorf("table: unknown relation %q", relName)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = rel.Arity()
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		row := make(Row, len(rec))
		for i, f := range rec {
			v, err := parseCSVField(db, f, rel.Attrs[i].Type)
			if err != nil {
				return fmt.Errorf("table: %s.%s: %w", relName, rel.Attrs[i].Name, err)
			}
			if v.IsNull() && v.NullID() >= db.nextNull {
				db.nextNull = v.NullID() + 1
			}
			row[i] = v
		}
		if err := db.Insert(relName, row); err != nil {
			return err
		}
	}
}

func parseCSVField(db *Database, f string, kind value.Kind) (value.Value, error) {
	if f == NullToken {
		return db.FreshNull(), nil
	}
	if strings.HasPrefix(f, "⊥") {
		id, err := strconv.ParseInt(strings.TrimPrefix(f, "⊥"), 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad null mark %q", f)
		}
		return value.Null(id), nil
	}
	switch kind {
	case value.KindInt:
		i, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(i), nil
	case value.KindFloat:
		fl, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.Float(fl), nil
	case value.KindString:
		return value.Str(f), nil
	case value.KindDate:
		return value.ParseDate(f)
	case value.KindBool:
		b, err := strconv.ParseBool(f)
		if err != nil {
			return value.Value{}, err
		}
		return value.Bool(b), nil
	default:
		return value.Value{}, fmt.Errorf("unsupported kind %s", kind)
	}
}
