package table

import (
	"errors"
	"testing"

	"certsql/internal/schema"
	"certsql/internal/value"
)

func conformSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	err := s.Add(&schema.Relation{
		Name: "r",
		Attrs: []schema.Attribute{
			{Name: "a", Type: value.KindInt},
			{Name: "b", Type: value.KindInt, Nullable: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConformsNonNullIncremental(t *testing.T) {
	db := NewDatabase(conformSchema(t))
	if !db.ConformsNonNull() {
		t.Fatal("empty database should conform")
	}
	if err := db.Insert("r", Row{value.Int(1), value.Null(1)}); err != nil {
		t.Fatal(err)
	}
	if !db.ConformsNonNull() {
		t.Fatal("null in nullable attribute should conform")
	}
	if err := db.Insert("r", Row{value.Null(2), value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if db.ConformsNonNull() {
		t.Fatal("null in NOT NULL attribute should break conformance")
	}
	// Repairing the offending row through ReplaceRow restores O(1)
	// conformance.
	if err := db.ReplaceRow("r", 1, Row{value.Int(7), value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if !db.ConformsNonNull() {
		t.Fatal("repaired database should conform again")
	}
	// And breaking it again via ReplaceRow is tracked too.
	if err := db.ReplaceRow("r", 0, Row{value.Null(3), value.Null(4)}); err != nil {
		t.Fatal(err)
	}
	if db.ConformsNonNull() {
		t.Fatal("ReplaceRow introducing a violation must be counted")
	}
}

func TestEnforceNonNull(t *testing.T) {
	db := NewDatabase(conformSchema(t))
	db.EnforceNonNull(true)
	err := db.Insert("r", Row{value.Null(1), value.Int(1)})
	var nv *NotNullViolation
	if !errors.As(err, &nv) {
		t.Fatalf("expected *NotNullViolation, got %v", err)
	}
	if nv.Relation != "r" || nv.Attribute != "a" || nv.Col != 0 {
		t.Fatalf("violation fields: %+v", nv)
	}
	if tab := db.MustTable("r"); tab.Len() != 0 {
		t.Fatal("rejected row must not be stored")
	}
	if !db.ConformsNonNull() {
		t.Fatal("rejected row must not count as a violation")
	}
	// Nullable attributes still accept nulls under enforcement.
	if err := db.Insert("r", Row{value.Int(1), value.Null(2)}); err != nil {
		t.Fatal(err)
	}
	// ReplaceRow enforces too.
	if err := db.ReplaceRow("r", 0, Row{value.Null(3), value.Int(1)}); !errors.As(err, &nv) {
		t.Fatalf("ReplaceRow should enforce: %v", err)
	}
}

func TestCloneAndApplyKeepConformance(t *testing.T) {
	db := NewDatabase(conformSchema(t))
	if err := db.Insert("r", Row{value.Null(1), value.Null(2)}); err != nil {
		t.Fatal(err)
	}
	if db.Clone().ConformsNonNull() {
		t.Fatal("clone must inherit the violation count")
	}
	// A valuation covering the offending mark repairs conformance in
	// the applied (completed) database.
	applied := db.Apply(map[int64]value.Value{1: value.Int(9), 2: value.Int(8)})
	if !applied.ConformsNonNull() {
		t.Fatal("fully applied database should conform")
	}
	// A partial valuation leaving the NOT NULL mark unset does not.
	partial := db.Apply(map[int64]value.Value{2: value.Int(8)})
	if partial.ConformsNonNull() {
		t.Fatal("partially applied database keeps its violation")
	}
}

func TestReplaceRowBounds(t *testing.T) {
	db := NewDatabase(conformSchema(t))
	if err := db.ReplaceRow("r", 0, Row{value.Int(1), value.Int(2)}); err == nil {
		t.Fatal("out-of-range index should error")
	}
	if err := db.ReplaceRow("nope", 0, Row{value.Int(1)}); err == nil {
		t.Fatal("unknown relation should error")
	}
	if err := db.Insert("r", Row{value.Int(1), value.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if err := db.ReplaceRow("r", 0, Row{value.Int(1)}); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestEstimatedBytes(t *testing.T) {
	tab := New(3)
	if tab.EstimatedBytes() != 0 {
		t.Fatal("empty table estimates 0 bytes")
	}
	tab.Append(Row{value.Int(1), value.Int(2), value.Int(3)})
	tab.Append(Row{value.Int(4), value.Int(5), value.Int(6)})
	want := int64(2 * (rowHeaderBytes + 3*valueBytes))
	if got := tab.EstimatedBytes(); got != want {
		t.Fatalf("EstimatedBytes = %d, want %d", got, want)
	}
}
