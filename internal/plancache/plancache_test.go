package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func key(i int) Key { return Key{SQL: fmt.Sprintf("SELECT %d", i), CatalogVersion: 1} }

func TestHitMissAndLRUEviction(t *testing.T) {
	c := New(2)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key(1), &Plan{})
	c.Put(key(2), &Plan{})
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	// Key 2 is now least recently used; inserting key 3 must evict it.
	c.Put(key(3), &Plan{})
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("LRU entry (key 2) survived eviction")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("recently used entry (key 1) was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 2 || st.Cap != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestKeyComponentsDistinguishPlans(t *testing.T) {
	c := New(0)
	base := Key{SQL: "SELECT a FROM t", CatalogVersion: 1, Params: "", Options: ""}
	c.Put(base, &Plan{AnalyzerSafe: true})
	for name, k := range map[string]Key{
		"catalog version": {SQL: base.SQL, CatalogVersion: 2},
		"params":          {SQL: base.SQL, CatalogVersion: 1, Params: "x=1"},
		"options":         {SQL: base.SQL, CatalogVersion: 1, Options: "naive"},
		"sql":             {SQL: "SELECT b FROM t", CatalogVersion: 1},
	} {
		if _, ok := c.Get(k); ok {
			t.Errorf("key differing in %s hit the cached plan", name)
		}
	}
	if p, ok := c.Get(base); !ok || !p.AnalyzerSafe {
		t.Fatal("exact key lookup failed")
	}
}

func TestPutReplacesAndPurge(t *testing.T) {
	c := New(4)
	c.Put(key(1), &Plan{RewriteSQL: "old"})
	c.Put(key(1), &Plan{RewriteSQL: "new"})
	if c.Len() != 1 {
		t.Fatalf("replace grew the cache to %d entries", c.Len())
	}
	if p, _ := c.Get(key(1)); p.RewriteSQL != "new" {
		t.Fatalf("replace kept the old plan: %q", p.RewriteSQL)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries behind")
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("purged entry still hits")
	}
}

func TestHitRatio(t *testing.T) {
	if r := (Stats{}).HitRatio(); r != 0 {
		t.Fatalf("zero stats hit ratio = %g", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRatio(); r != 0.75 {
		t.Fatalf("hit ratio = %g, want 0.75", r)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(i % 16)
				if _, ok := c.Get(k); !ok {
					c.Put(k, &Plan{})
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Len > 8 {
		t.Fatalf("cache exceeded its bound: %d entries", st.Len)
	}
}
