// Package plancache is a fingerprint-keyed, size-bounded LRU cache of
// compiled query plans, the prepared-execution heart of the serving
// layer.
//
// The expensive part of a certain-answer query is everything *before*
// evaluation: parsing, compilation to the algebra, the static
// nullability analysis, and the Q⁺/Q⋆ translations. None of that work
// depends on the data — only on the query text, its parameters, the
// catalog (schema) version, and the translation options. The cache
// keys a plan by exactly those four components, so Prepare-once /
// Execute-many workloads skip straight to evaluation, and a catalog
// swap (a new published snapshot) implicitly invalidates every older
// plan: its entries key under the old version, never hit again, and
// age out of the LRU.
//
// The cache is safe for concurrent use; all operations are O(1).
package plancache

import (
	"container/list"
	"sync"

	"certsql/internal/algebra"
	"certsql/internal/eval"
	"certsql/internal/plan"
)

// DefaultSize is the entry bound used when New is given max <= 0.
const DefaultSize = 256

// Mode is the evaluation mode a plan was compiled for, mirroring the
// facade's SELECT / SELECT CERTAIN / SELECT POSSIBLE forms.
type Mode uint8

// The evaluation modes.
const (
	ModeStandard Mode = iota
	ModeCertain
	ModePossible
)

// String names the mode for metrics and logs.
func (m Mode) String() string {
	switch m {
	case ModeStandard:
		return "standard"
	case ModeCertain:
		return "certain"
	case ModePossible:
		return "possible"
	default:
		return "mode(?)"
	}
}

// Key identifies one compiled plan. Two executions share a plan iff
// all four components agree.
type Key struct {
	// SQL is the canonical query text: the parse → render fixpoint,
	// which normalizes whitespace, comments, and keyword case.
	SQL string
	// CatalogVersion is the published snapshot version the plan was
	// compiled against. Version bumps make stale plans unreachable.
	CatalogVersion uint64
	// Params is the canonical fingerprint of the bound parameters
	// (they are folded into the compiled algebra, e.g. IN-lists).
	Params string
	// Options fingerprints the translation-affecting options (naive
	// mode and the ablation toggles). Executor-only options do not
	// change the plan and are excluded deliberately.
	Options string
}

// Plan is the cached unit of work: everything the facade computes
// between the query text and the first row.
type Plan struct {
	// Mode is the evaluation mode baked into the canonical text.
	Mode Mode
	// Columns names the output columns.
	Columns []string
	// Orig is the compiled original query.
	Orig algebra.Expr
	// Plus is the certain-answer translation Q⁺, present for
	// ModeCertain and (for the degradation ladder) ModePossible.
	Plus algebra.Expr
	// Star is the potential-answer translation Q⋆ (ModePossible).
	Star algebra.Expr
	// AnalyzerSafe is the static analyzer's verdict on Orig: safe
	// means plain evaluation returns exactly the certain answers on
	// NOT NULL-conforming data. The data-side conformance check runs
	// at execute time — it is O(1) and the data may change between
	// executions of one cached plan.
	AnalyzerSafe bool
	// RewriteSQL is the SQL rendering of the executed certain
	// translation, when one was requested ("" otherwise).
	RewriteSQL string
	// OrigShape, PlusShape and StarShape are the streaming executor's
	// iterator-tree annotations for the corresponding expressions,
	// captured at compile time so prepared executions skip re-deriving
	// pipeline boundaries. Purely advisory: the evaluator validates
	// them and falls back to on-the-fly derivation on any mismatch.
	OrigShape *eval.Shape
	PlusShape *eval.Shape
	StarShape *eval.Shape
	// OrigOpt, PlusOpt and StarOpt are the cost-based planner's
	// optimized variants of the corresponding expressions (nil when the
	// planner produced no change worth caching). An execution uses a
	// variant only when its premises still hold under the current
	// statistics and Options.NaivePlanner is off; otherwise it falls
	// back to the baseline expression above, so a cached variant can go
	// stale but never wrong.
	OrigOpt *Optimized
	PlusOpt *Optimized
	StarOpt *Optimized
}

// Optimized is one cost-based-planner output cached alongside its
// baseline expression: the rewritten plan, its iterator shape, the
// executor hints, the data-dependent premises the rewrites rely on,
// and the rendered EXPLAIN for serving-layer introspection.
type Optimized struct {
	Expr     algebra.Expr
	Shape    *eval.Shape
	Hints    *eval.PlanHints
	Premises []plan.Premise
	Explain  string
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Len       int
	Cap       int
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key  Key
	plan *Plan
}

// Cache is the LRU itself.
type Cache struct {
	mu        sync.Mutex
	max       int
	order     *list.List // front = most recently used
	byKey     map[Key]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// New returns a cache bounded to max entries (DefaultSize when
// max <= 0).
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultSize
	}
	return &Cache{max: max, order: list.New(), byKey: make(map[Key]*list.Element)}
}

// Get returns the plan cached under k and marks it most recently used.
func (c *Cache) Get(k Key) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).plan, true
}

// Put stores a plan under k, evicting the least recently used entry
// when the cache is full. Storing under an existing key replaces the
// plan.
func (c *Cache) Put(k Key, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*entry).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&entry{key: k, plan: p})
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Purge drops every entry, keeping the counters.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = make(map[Key]*list.Element)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.order.Len(), Cap: c.max}
}
