// Package analyze implements the static analyses behind the
// certain-answer fast path: per-column nullability inference over
// algebra plans, a plan-level safety verdict ("on this query, plain
// evaluation already computes exactly the certain answers"), and an
// AST-level certainty-hazard detector with source positions for
// certlint diagnostics.
//
// The analyses are conservative: a "safe" verdict is a proof sketch
// that SQL evaluation, naive evaluation and the certain answers all
// coincide (see DESIGN.md, "Static analysis"), while a hazard is only
// a warning that the proof does not go through.
package analyze

import (
	"certsql/internal/algebra"
	"certsql/internal/schema"
)

// Strength selects how aggressively selection conditions strengthen
// nullability facts. The difference mirrors certain.CondMode: under SQL
// 3VL a true comparison has constant operands, but under naive
// evaluation A = B also holds between equal marks and A ≠ B between
// distinct marks, so only order comparisons (false on nulls either
// way) may strengthen.
type Strength uint8

// Strength values.
const (
	// StrengthNaive keeps only inferences valid under naive evaluation
	// (and hence under both semantics); the safety verdict uses this.
	StrengthNaive Strength = iota
	// StrengthSQL additionally uses 3VL facts: a surviving row
	// satisfied every conjunct with non-null operands.
	StrengthSQL
)

// NonNullCols computes, per output column of e, whether the column
// provably never contains a null. The base facts come from schema
// nullability; they propagate through every operator and are
// strengthened by selection conditions whose truth forces an operand
// to be non-null.
//
// This is what lets the certain-answer translator drop the IS NULL
// disjuncts that the θ** translation would otherwise introduce on key
// columns (the appendix Q⁺1 has no `l_orderkey IS NULL` disjunct
// because l_orderkey is part of a key), and what the safety verdict
// consults to decide that negation over NOT NULL attributes is
// harmless.
func NonNullCols(e algebra.Expr, sch *schema.Schema, st Strength) []bool {
	switch e := e.(type) {
	case algebra.Base:
		if sch == nil {
			return make([]bool, e.Cols)
		}
		rel, ok := sch.Relation(e.Name)
		if !ok {
			return make([]bool, e.Cols)
		}
		out := make([]bool, rel.Arity())
		for i, a := range rel.Attrs {
			out[i] = !a.Nullable
		}
		return out
	case algebra.AdomPower:
		return make([]bool, e.K)
	case algebra.Select:
		out := cloneBools(NonNullCols(e.Child, sch, st))
		strengthen(out, 0, e.Cond, st)
		return out
	case algebra.Project:
		child := NonNullCols(e.Child, sch, st)
		out := make([]bool, len(e.Cols))
		for i, c := range e.Cols {
			out[i] = child[c]
		}
		return out
	case algebra.Product:
		return append(cloneBools(NonNullCols(e.L, sch, st)), NonNullCols(e.R, sch, st)...)
	case algebra.Union:
		l, r := NonNullCols(e.L, sch, st), NonNullCols(e.R, sch, st)
		out := make([]bool, len(l))
		for i := range out {
			out[i] = l[i] && r[i]
		}
		return out
	case algebra.Intersect:
		// Rows appear identically in both inputs, so either guarantee
		// applies.
		l, r := NonNullCols(e.L, sch, st), NonNullCols(e.R, sch, st)
		out := make([]bool, len(l))
		for i := range out {
			out[i] = l[i] || r[i]
		}
		return out
	case algebra.Diff:
		return NonNullCols(e.L, sch, st)
	case algebra.SemiJoin:
		out := cloneBools(NonNullCols(e.L, sch, st))
		if !e.Anti {
			// Surviving rows satisfied the condition with some inner
			// row; conjuncts over L columns strengthen them.
			strengthen(out, 0, e.Cond, st)
		}
		return out
	case algebra.UnifySemi:
		return NonNullCols(e.L, sch, st)
	case algebra.Distinct:
		return NonNullCols(e.Child, sch, st)
	case algebra.Division:
		return NonNullCols(e.L, sch, st)[:e.Arity()]
	case algebra.GroupBy:
		child := NonNullCols(e.Child, sch, st)
		out := make([]bool, 0, len(e.Keys)+len(e.Aggs))
		for _, k := range e.Keys {
			out = append(out, child[k])
		}
		for _, a := range e.Aggs {
			out = append(out, aggNonNull(a, e.Keys, child))
		}
		return out
	case algebra.Sort:
		return NonNullCols(e.Child, sch, st)
	case algebra.Limit:
		return NonNullCols(e.Child, sch, st)
	default:
		return make([]bool, e.Arity())
	}
}

// aggNonNull reports whether one aggregate output column is provably
// non-null. COUNT never is null. Every other aggregate is NULL over
// empty input, and a *global* aggregate (no grouping keys) produces
// its one row even when the input is empty — the empty-group NULL the
// evaluator models with a fresh mark — so MIN/MAX/SUM/AVG are non-null
// only under grouping (groups are non-empty by construction) over a
// non-null argument.
func aggNonNull(a algebra.AggSpec, keys []int, childNonNull []bool) bool {
	if a.Func == algebra.AggCount {
		return true
	}
	if len(keys) == 0 {
		return false
	}
	return a.Col >= 0 && a.Col < len(childNonNull) && childNonNull[a.Col]
}

func cloneBools(b []bool) []bool {
	out := make([]bool, len(b))
	copy(out, b)
	return out
}

// strengthen marks columns of nonNull (offset by off) that must be
// non-null whenever cond is true. Only top-level conjunct atoms are
// considered.
func strengthen(nonNull []bool, off int, cond algebra.Cond, st Strength) {
	for _, c := range algebra.Conjuncts(algebra.NNF(cond)) {
		// astlint:partial — only atoms strengthen nullability; nested
		// connectives (Or under a conjunct) and True/False add nothing.
		switch c := c.(type) {
		case algebra.Cmp:
			if st == StrengthSQL || (c.Op != algebra.EQ && c.Op != algebra.NE) {
				markNonNull(nonNull, off, c.L)
				markNonNull(nonNull, off, c.R)
			}
		case algebra.Like:
			if !c.Negated {
				markNonNull(nonNull, off, c.Operand)
			}
		case algebra.NullTest:
			if c.Negated {
				markNonNull(nonNull, off, c.Operand)
			}
		}
	}
}

func markNonNull(nonNull []bool, off int, o algebra.Operand) {
	if col, ok := o.(algebra.Col); ok {
		i := col.Idx - off
		if i >= 0 && i < len(nonNull) {
			nonNull[i] = true
		}
	}
}

// NullFree reports whether no base relation reachable from e has a
// nullable attribute (unknown relations and a nil schema count as
// nullable). A null-free expression is rigid: no valuation of the
// database can change what it computes, so every operator over it is
// trivially exact.
func NullFree(e algebra.Expr, sch *schema.Schema) bool {
	ok := true
	algebra.Walk(e, func(sub algebra.Expr) {
		b, isBase := sub.(algebra.Base)
		if !isBase {
			return
		}
		if sch == nil {
			ok = false
			return
		}
		rel, found := sch.Relation(b.Name)
		if !found {
			ok = false
			return
		}
		for _, a := range rel.Attrs {
			if a.Nullable {
				ok = false
			}
		}
	})
	return ok
}
