package analyze

import (
	"strings"
	"testing"

	"certsql/internal/sql"
)

// queryFor parses src and runs the AST-level analysis against
// testSchema.
func queryFor(t *testing.T, src string) *QueryReport {
	t.Helper()
	q, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Query(src, q, testSchema())
}

func diagCodes(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

func TestQuerySafe(t *testing.T) {
	safe := []string{
		`SELECT id FROM o WHERE id > 3`,
		`SELECT o.id, l.oid FROM o, l WHERE o.id = l.oid`,
		`SELECT id FROM o WHERE cust = 7`,
		`SELECT id FROM o WHERE EXISTS (SELECT * FROM l WHERE l.oid = o.id)`,
		`SELECT a FROM solid WHERE NOT EXISTS (SELECT * FROM solid s2 WHERE s2.a = solid.a)`,
		`SELECT a FROM solid WHERE a NOT IN (1, 2, 3)`,
		`SELECT a FROM solid WHERE a NOT IN (SELECT a FROM solid s2)`,
		`SELECT a, b FROM solid EXCEPT SELECT a, b FROM solid`,
		`SELECT id FROM o WHERE cust IN (1, 2)`,
		`SELECT id FROM o WHERE id > (SELECT COUNT(*) FROM solid)`,
		`WITH v AS (SELECT a FROM solid) SELECT a FROM v WHERE NOT EXISTS (SELECT * FROM v v2 WHERE v2.a = v.a)`,
	}
	for _, src := range safe {
		rep := queryFor(t, src)
		if !rep.Safe {
			t.Errorf("%s\n  want safe, got %v", src, diagCodes(rep.Diagnostics))
		}
	}
}

// TestQueryDiagnosticsPositioned checks both the hazard code and that
// the reported byte offset points at the offending operator text.
func TestQueryDiagnosticsPositioned(t *testing.T) {
	cases := []struct {
		src  string
		code string
		at   string // src[Pos:] must start with this
	}{
		{`SELECT id FROM o WHERE NOT EXISTS (SELECT * FROM l WHERE l.oid = o.id)`,
			"not-exists-nullable", "NOT EXISTS"},
		// Outer nullable correlation makes the inner block non-rigid.
		{`SELECT cust FROM o WHERE NOT EXISTS (SELECT * FROM solid WHERE a = o.cust)`,
			"not-exists-nullable", "NOT EXISTS"},
		// NOT pushed through EXISTS.
		{`SELECT id FROM o WHERE NOT (EXISTS (SELECT * FROM l WHERE l.oid = o.id))`,
			"not-exists-nullable", "EXISTS"},
		{`SELECT a FROM solid WHERE a NOT IN (SELECT oid FROM l)`,
			"not-in-nullable", "NOT IN"},
		{`SELECT id FROM o WHERE cust NOT IN (1, 2)`,
			"not-in-nullable", "NOT IN"},
		{`SELECT id FROM o WHERE cust <> 3`, "cmp-nullable", "<>"},
		{`SELECT id FROM o WHERE cust < 3`, "cmp-nullable", "<"},
		// Negation turns = into <> for hazard purposes.
		{`SELECT id FROM o WHERE NOT (cust = 3)`, "cmp-nullable", "="},
		{`SELECT o.id FROM o, l WHERE o.cust = l.supp`, "eq-nullable-pair", "="},
		{`SELECT o.id FROM o, l WHERE o.cust IN (SELECT supp FROM l)`, "eq-nullable-pair", "IN"},
		{`SELECT id FROM o WHERE cust IS NULL`, "null-test-nullable", "IS NULL"},
		{`SELECT id FROM o WHERE cust IS NOT NULL`, "null-test-nullable", "IS NOT NULL"},
		{`SELECT id FROM o WHERE cust = NULL`, "null-literal", "="},
		{`SELECT id FROM o WHERE cust LIKE 'a%'`, "like-nullable", "LIKE"},
		{`SELECT id FROM o WHERE cust NOT LIKE 'a%'`, "like-nullable", "NOT LIKE"},
		{`SELECT id FROM o WHERE cust BETWEEN 1 AND 3`, "cmp-nullable", "BETWEEN"},
		{`SELECT id FROM o WHERE id > (SELECT AVG(cust) FROM o o2)`, "scalar-subquery", ">"},
		{`SELECT id FROM o WHERE id > (SELECT MIN(a) FROM solid)`, "scalar-subquery", ">"},
		{`SELECT id, cust FROM o EXCEPT SELECT a, a FROM solid`, "except-nullable", "EXCEPT"},
		{`SELECT a, b FROM solid EXCEPT SELECT id, cust FROM o`, "except-nullable", "EXCEPT"},
		{`SELECT id FROM flags WHERE ok = seen`, "eq-finite", "="},
	}
	for _, tc := range cases {
		rep := queryFor(t, tc.src)
		found := false
		for _, d := range rep.Diagnostics {
			if d.Code != tc.code {
				continue
			}
			found = true
			if d.Pos < 0 || !strings.HasPrefix(tc.src[d.Pos:], tc.at) {
				t.Errorf("%s\n  [%s] at offset %d points at %q, want %q",
					tc.src, d.Code, d.Pos, snippet(tc.src, d.Pos), tc.at)
			}
			line, col := sql.LineCol(tc.src, d.Pos)
			if d.Line != line || d.Col != col {
				t.Errorf("%s\n  [%s] line:col %d:%d, want %d:%d", tc.src, d.Code, d.Line, d.Col, line, col)
			}
			break
		}
		if !found {
			t.Errorf("%s\n  want %s, got %v", tc.src, tc.code, diagCodes(rep.Diagnostics))
		}
	}
}

func snippet(src string, pos int) string {
	if pos < 0 || pos >= len(src) {
		return ""
	}
	end := pos + 12
	if end > len(src) {
		end = len(src)
	}
	return src[pos:end]
}

func TestQueryUnknownRelation(t *testing.T) {
	rep := queryFor(t, `SELECT x FROM nosuch`)
	if rep.Safe {
		t.Fatal("unknown relation cannot be safe")
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == "unknown-relation" {
			found = true
			if d.Pos != -1 || d.Line != 0 {
				t.Errorf("unpositioned diagnostic rendered at %d (%d:%d)", d.Pos, d.Line, d.Col)
			}
			if got := d.String(); !strings.HasPrefix(got, "[unknown-relation]") {
				t.Errorf("String() = %q", got)
			}
		}
	}
	if !found {
		t.Errorf("got %v", diagCodes(rep.Diagnostics))
	}
}

func TestQueryDiagnosticString(t *testing.T) {
	src := "SELECT id\nFROM o\nWHERE cust IS NULL"
	rep := queryFor(t, src)
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("diagnostics: %v", diagCodes(rep.Diagnostics))
	}
	if got := rep.Diagnostics[0].String(); got != "3:12: [null-test-nullable] IS [NOT] NULL on column cust (which can be NULL); the test's outcome differs between the marked row and its valuations" {
		t.Errorf("String() = %q", got)
	}
}

// TestQueryNullableView checks that WITH views carry their inferred
// nullability into the blocks that use them.
func TestQueryNullableView(t *testing.T) {
	src := `WITH v AS (SELECT cust FROM o) SELECT a FROM solid WHERE NOT EXISTS (SELECT * FROM v WHERE v.cust = solid.a)`
	rep := queryFor(t, src)
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == "not-exists-nullable" {
			found = true
		}
	}
	if !found {
		t.Errorf("nullable view inside NOT EXISTS: got %v", diagCodes(rep.Diagnostics))
	}
}
