package analyze

import (
	"fmt"

	"certsql/internal/algebra"
	"certsql/internal/schema"
	"certsql/internal/value"
)

// Hazard is one reason a query may return non-certain answers (or miss
// certain ones) under plain SQL evaluation. Plan-level hazards carry no
// source position (the algebra is positional); Pos is -1 there, and a
// byte offset in AST-level diagnostics.
type Hazard struct {
	Code string `json:"code"`
	Pos  int    `json:"offset"`
	Msg  string `json:"message"`
}

// PlanReport is the result of analyzing a compiled algebra plan.
type PlanReport struct {
	// Safe means plain SQL evaluation of the plan returns exactly the
	// certain answers on every database conforming to the schema — the
	// identity translation is correct and the θ*/θ** machinery can be
	// skipped entirely.
	Safe bool
	// Hazards lists everything that blocks the safe verdict.
	Hazards []Hazard
	// NonNull is the inferred per-output-column nullability (under
	// StrengthNaive, valid for both semantics).
	NonNull []bool
}

// Plan analyzes a compiled plan for certainty hazards.
//
// The verdict is a conservative proof that for every database D with
// nulls confined to schema-nullable attributes,
//
//	SQL-eval(Q, D) = naive-eval(Q, D) = cert(Q, D).
//
// The proof shape (spelled out in DESIGN.md): on a safe plan every
// condition atom has the same truth value under SQL 3VL, under naive
// evaluation, and under a generic valuation sending marks to pairwise
// distinct fresh constants; negation-shaped operators (anti-semijoin,
// EXCEPT, division, unification joins) are only admitted when their
// inputs are rigid (null-free), so no valuation can create or destroy
// a match. The differential-testing oracle re-verifies the claim on
// every fuzzed case (safe verdict ⇒ naive result == brute-force
// certain answers).
func Plan(e algebra.Expr, sch *schema.Schema) *PlanReport {
	a := &planAnalyzer{sch: sch}
	a.finiteKinds(e)
	a.expr(e)
	return &PlanReport{
		Safe:    len(a.hazards) == 0,
		Hazards: a.hazards,
		NonNull: NonNullCols(e, sch, StrengthNaive),
	}
}

type planAnalyzer struct {
	sch     *schema.Schema
	hazards []Hazard
}

func (a *planAnalyzer) hazard(code, format string, args ...any) {
	a.hazards = append(a.hazards, Hazard{Code: code, Pos: -1, Msg: fmt.Sprintf(format, args...)})
}

// finiteKinds flags nullable attributes of finite kinds (boolean)
// anywhere in the plan. A mark over a finite domain breaks the
// generic-valuation argument — there is no fresh constant to send it
// to — and certainty can then arise from a case split the naive result
// misses (e.g. σ[a=true](R) ∪ σ[a=false](R) over a nullable boolean a
// certainly contains every row of R, while naive evaluation keeps
// none of the marked ones).
func (a *planAnalyzer) finiteKinds(e algebra.Expr) {
	seen := map[string]bool{}
	algebra.Walk(e, func(sub algebra.Expr) {
		b, ok := sub.(algebra.Base)
		if !ok || seen[b.Name] {
			return
		}
		seen[b.Name] = true
		if a.sch == nil {
			return // reported as unknown-relation by expr
		}
		rel, found := a.sch.Relation(b.Name)
		if !found {
			return
		}
		for _, attr := range rel.Attrs {
			if attr.Nullable && (attr.Type == value.KindBool || attr.Type == value.KindNull) {
				a.hazard("finite-domain-null",
					"nullable %s column %s.%s ranges over a finite domain; certainty can arise from a case split that plain evaluation misses",
					attr.Type, rel.Name, attr.Name)
			}
		}
	})
}

func (a *planAnalyzer) expr(e algebra.Expr) {
	switch e := e.(type) {
	case algebra.Base:
		if a.sch == nil {
			a.hazard("unknown-relation", "no schema available for relation %s; nullability unknown", e.Name)
			return
		}
		if _, ok := a.sch.Relation(e.Name); !ok {
			a.hazard("unknown-relation", "relation %s not in schema; nullability unknown", e.Name)
		}
	case algebra.AdomPower:
		a.hazard("active-domain", "active-domain powers depend on the valuation of every null in the database")
	case algebra.Select:
		a.expr(e.Child)
		a.cond(e.Cond, NonNullCols(e.Child, a.sch, StrengthNaive))
	case algebra.Project:
		a.expr(e.Child)
	case algebra.Distinct:
		a.expr(e.Child)
	case algebra.Sort:
		a.expr(e.Child)
	case algebra.Product:
		a.expr(e.L)
		a.expr(e.R)
	case algebra.Union:
		a.expr(e.L)
		a.expr(e.R)
	case algebra.Intersect:
		a.expr(e.L)
		a.expr(e.R)
	case algebra.Diff:
		// L − R excludes by membership in R: a null on either side lets
		// a valuation create or destroy an exclusion.
		a.expr(e.L)
		if !NullFree(e.R, a.sch) {
			a.hazard("except-nullable",
				"EXCEPT excludes rows by matches in a subquery that can contain NULLs; a possible match is not a certain exclusion")
		}
		if !allTrue(NonNullCols(e.L, a.sch, StrengthNaive)) {
			a.hazard("except-nullable",
				"EXCEPT over left-side columns that can be NULL; a marked row's exclusion depends on how its nulls are interpreted")
		}
	case algebra.SemiJoin:
		if !e.Anti {
			a.expr(e.L)
			a.expr(e.R)
			nn := append(cloneBools(NonNullCols(e.L, a.sch, StrengthNaive)), NonNullCols(e.R, a.sch, StrengthNaive)...)
			a.cond(e.Cond, nn)
			return
		}
		// Anti-semijoin (NOT EXISTS / NOT IN): exclusion must be rigid.
		a.expr(e.L)
		if !NullFree(e.R, a.sch) {
			a.hazard("not-exists-nullable",
				"NOT EXISTS / NOT IN over a subquery that can contain NULLs; a possible match must block the outer row, so plain evaluation may keep non-certain answers")
		}
		nn := append(cloneBools(NonNullCols(e.L, a.sch, StrengthNaive)), trues(e.R.Arity())...)
		a.rigidCond(e.Cond, nn)
	case algebra.UnifySemi:
		if !NullFree(e.L, a.sch) || !NullFree(e.R, a.sch) {
			a.hazard("unify-nullable",
				"unification semijoin over inputs that can contain NULLs is valuation-dependent by construction")
		}
	case algebra.Division:
		a.expr(e.L)
		if !NullFree(e.R, a.sch) {
			a.hazard("division-nullable",
				"division by a divisor that can contain NULLs; which rows must be covered depends on the valuation")
		}
	case algebra.GroupBy:
		if !NullFree(e.Child, a.sch) {
			a.hazard("aggregate-nullable",
				"aggregation over input that can contain NULLs has no certain-answer semantics (paper §8)")
		}
	case algebra.Limit:
		if !NullFree(e.Child, a.sch) {
			a.hazard("limit-nullable", "LIMIT over input that can contain NULLs truncates a valuation-dependent row set")
		}
	default:
		a.hazard("unknown-operator", "operator %T is outside the analyzed fragment", e)
	}
}

// operand classes for atom analysis.
type opClass uint8

const (
	// classConst: the operand is a non-null constant on every database
	// row — a non-null column, a non-null literal, or a rigid COUNT
	// scalar. Its value does not change under valuations.
	classConst opClass = iota
	// classNullableCol: a column that may hold a mark (of an infinite
	// kind — finite kinds are flagged globally by finiteKinds).
	classNullableCol
	// classHazard: anything whose value can silently depend on the
	// valuation — NULL literals, non-rigid scalar subqueries.
	classHazard
)

func (a *planAnalyzer) classify(o algebra.Operand, nonNull []bool) (opClass, string) {
	switch o := o.(type) {
	case algebra.Col:
		if o.Idx >= 0 && o.Idx < len(nonNull) && nonNull[o.Idx] {
			return classConst, ""
		}
		return classNullableCol, ""
	case algebra.Lit:
		if o.Val.IsNull() {
			return classHazard, "a NULL literal never compares as certainly true or certainly false"
		}
		return classConst, ""
	case algebra.Scalar:
		// A scalar subquery is a constant only when nothing it reads can
		// be null *and* it cannot be NULL itself. Only COUNT is non-null
		// over empty input; MIN/MAX/SUM/AVG over an empty (even
		// null-free) table yield NULL, which the evaluator models as a
		// fresh mark.
		if !NullFree(o.Sub, a.sch) {
			return classHazard, "scalar subquery over data that can contain NULLs is not a rigid constant"
		}
		if o.Agg != algebra.AggCount {
			return classHazard, fmt.Sprintf("scalar %s can be NULL over an empty input even on null-free data", o.Agg)
		}
		return classConst, ""
	default:
		return classHazard, fmt.Sprintf("unknown operand %T", o)
	}
}

// cond checks every atom of c (in NNF, so connectives are monotone and
// atom-level exactness lifts to the whole condition).
func (a *planAnalyzer) cond(c algebra.Cond, nonNull []bool) {
	for _, atom := range flattenNNF(algebra.NNF(c)) {
		switch atom := atom.(type) {
		case algebra.TrueCond, algebra.FalseCond:
		case algebra.Cmp:
			lc, lmsg := a.classify(atom.L, nonNull)
			rc, rmsg := a.classify(atom.R, nonNull)
			if lc == classHazard {
				a.hazard(hazardCodeFor(atom.L), "in %s: %s", atom, lmsg)
				continue
			}
			if rc == classHazard {
				a.hazard(hazardCodeFor(atom.R), "in %s: %s", atom, rmsg)
				continue
			}
			if atom.Op == algebra.EQ {
				// Equality tolerates one nullable side: a mark compares
				// false to any constant under SQL, naive and generic
				// valuations alike. Two nullable sides can share a mark,
				// which naive evaluation accepts and SQL rejects.
				if lc == classNullableCol && rc == classNullableCol {
					a.hazard("eq-nullable-pair",
						"%s compares two columns that can both be NULL; equal marks are certainly equal but never SQL-equal", atom)
				}
				continue
			}
			// ≠, <, ≤, >, ≥ over a nullable operand: tautological
			// disjunctions (a < 3 OR a >= 3) make marked rows certain
			// while plain evaluation drops them.
			if lc == classNullableCol || rc == classNullableCol {
				a.hazard("cmp-nullable",
					"%s over a column that can be NULL; the comparison is neither certainly true nor certainly false on marked rows", atom)
			}
		case algebra.Like:
			lc, lmsg := a.classify(atom.Operand, nonNull)
			pc, pmsg := a.classify(atom.Pattern, nonNull)
			if lc == classHazard {
				a.hazard(hazardCodeFor(atom.Operand), "in %s: %s", atom, lmsg)
			} else if lc == classNullableCol {
				a.hazard("like-nullable", "%s over a column that can be NULL (every value matches '%%' under some valuation)", atom)
			}
			if pc == classHazard {
				a.hazard(hazardCodeFor(atom.Pattern), "in %s: %s", atom, pmsg)
			} else if pc == classNullableCol {
				a.hazard("like-nullable", "%s with a pattern that can be NULL", atom)
			}
		case algebra.NullTest:
			oc, msg := a.classify(atom.Operand, nonNull)
			switch oc {
			case classConst:
				// rigid constant — nothing to flag
			case classHazard:
				a.hazard(hazardCodeFor(atom.Operand), "in %s: %s", atom, msg)
			case classNullableCol:
				// IS NULL keeps marked rows that no valuation keeps;
				// IS NOT NULL drops marked rows that every valuation
				// keeps. Both polarities break exactness.
				a.hazard("null-test-nullable",
					"%s on a column that can be NULL; the test's outcome differs between the marked row and its valuations", atom)
			}
		default:
			a.hazard("unknown-atom", "condition %T is outside the analyzed fragment", atom)
		}
	}
}

// rigidCond requires every operand of every atom to be a rigid
// constant — the anti-semijoin criterion: with both sides of the
// exclusion rigid, no valuation can create or destroy a match.
func (a *planAnalyzer) rigidCond(c algebra.Cond, nonNull []bool) {
	for _, atom := range flattenNNF(algebra.NNF(c)) {
		operands := atomOperands(atom)
		for _, o := range operands {
			oc, msg := a.classify(o, nonNull)
			switch oc {
			case classConst:
				// rigid constant — nothing to flag
			case classHazard:
				a.hazard(hazardCodeFor(o), "in %s: %s", atom, msg)
			case classNullableCol:
				a.hazard("not-exists-nullable",
					"anti-join condition %s references a column that can be NULL; whether the match blocks the outer row depends on the valuation", atom)
			}
		}
	}
}

func hazardCodeFor(o algebra.Operand) string {
	switch o := o.(type) {
	case algebra.Lit:
		if o.Val.IsNull() {
			return "null-literal"
		}
	case algebra.Scalar:
		return "scalar-subquery"
	case algebra.Col:
		// classify never labels a bare column classHazard (nullable
		// columns get classNullableCol); reaching here is a bug upstream.
	}
	return "unknown-operand"
}

func atomOperands(c algebra.Cond) []algebra.Operand {
	switch c := c.(type) {
	case algebra.Cmp:
		return []algebra.Operand{c.L, c.R}
	case algebra.Like:
		return []algebra.Operand{c.Operand, c.Pattern}
	case algebra.NullTest:
		return []algebra.Operand{c.Operand}
	default:
		return nil
	}
}

// flattenNNF returns the atoms of an NNF condition (And/Or flattened;
// no Not nodes remain after NNF).
func flattenNNF(c algebra.Cond) []algebra.Cond {
	switch c := c.(type) {
	case algebra.And:
		var out []algebra.Cond
		for _, sub := range c.Conds {
			out = append(out, flattenNNF(sub)...)
		}
		return out
	case algebra.Or:
		var out []algebra.Cond
		for _, sub := range c.Conds {
			out = append(out, flattenNNF(sub)...)
		}
		return out
	case algebra.Not:
		return flattenNNF(algebra.NNF(c))
	default:
		return []algebra.Cond{c}
	}
}

func allTrue(b []bool) bool {
	for _, v := range b {
		if !v {
			return false
		}
	}
	return true
}

func trues(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}
