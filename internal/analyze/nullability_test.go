package analyze

import (
	"testing"

	"certsql/internal/algebra"
	"certsql/internal/schema"
	"certsql/internal/value"
)

// testSchema has two relations with one key (NOT NULL) and one nullable
// column each, plus a fully null-free relation and one with a nullable
// boolean.
func testSchema() *schema.Schema {
	s := schema.New()
	s.MustAdd(&schema.Relation{Name: "o", Attrs: []schema.Attribute{
		{Name: "id", Type: value.KindInt},
		{Name: "cust", Type: value.KindInt, Nullable: true},
	}, Key: []int{0}})
	s.MustAdd(&schema.Relation{Name: "l", Attrs: []schema.Attribute{
		{Name: "oid", Type: value.KindInt},
		{Name: "supp", Type: value.KindInt, Nullable: true},
	}, Key: []int{0}})
	s.MustAdd(&schema.Relation{Name: "solid", Attrs: []schema.Attribute{
		{Name: "a", Type: value.KindInt},
		{Name: "b", Type: value.KindString},
	}, Key: []int{0}})
	s.MustAdd(&schema.Relation{Name: "flags", Attrs: []schema.Attribute{
		{Name: "id", Type: value.KindInt},
		{Name: "ok", Type: value.KindBool, Nullable: true},
		{Name: "seen", Type: value.KindBool},
	}, Key: []int{0}})
	return s
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNonNullColsOperators(t *testing.T) {
	sch := testSchema()
	o := algebra.Base{Name: "o", Cols: 2}
	l := algebra.Base{Name: "l", Cols: 2}
	notNull1 := algebra.NullTest{Operand: algebra.Col{Idx: 1}, Negated: true}
	sel := algebra.Select{Child: o, Cond: notNull1}

	cases := []struct {
		name string
		e    algebra.Expr
		st   Strength
		want []bool
	}{
		{"base", o, StrengthNaive, []bool{true, false}},
		{"product", algebra.Product{L: o, R: l}, StrengthNaive, []bool{true, false, true, false}},
		{"project", algebra.Project{Child: o, Cols: []int{1, 0}}, StrengthNaive, []bool{false, true}},
		{"select IS NOT NULL", sel, StrengthNaive, []bool{true, true}},
		{"union weakens", algebra.Union{L: o, R: sel}, StrengthNaive, []bool{true, false}},
		{"intersect strengthens", algebra.Intersect{L: o, R: sel}, StrengthNaive, []bool{true, true}},
		{"diff keeps left", algebra.Diff{L: sel, R: o}, StrengthNaive, []bool{true, true}},
		{"semijoin strengthens", algebra.SemiJoin{L: o, R: l,
			Cond: algebra.Cmp{Op: algebra.LT, L: algebra.Col{Idx: 1}, R: algebra.Col{Idx: 2}}},
			StrengthNaive, []bool{true, true}},
		{"antijoin must not strengthen", algebra.SemiJoin{L: o, R: l, Anti: true,
			Cond: algebra.Cmp{Op: algebra.LT, L: algebra.Col{Idx: 1}, R: algebra.Col{Idx: 2}}},
			StrengthNaive, []bool{true, false}},
		{"division", algebra.Division{L: algebra.Product{L: o, R: l}, R: l}, StrengthNaive, []bool{true, false}},
		{"sort passes through", algebra.Sort{Child: sel}, StrengthNaive, []bool{true, true}},
		{"limit passes through", algebra.Limit{Child: sel, N: 3}, StrengthNaive, []bool{true, true}},
		// Equality strengthens only under SQL 3VL: ⊥ᵢ = ⊥ᵢ is
		// naive-true, so naive mode must keep the column nullable.
		{"eq strengthens under SQL", algebra.Select{Child: algebra.Product{L: o, R: l},
			Cond: algebra.Cmp{Op: algebra.EQ, L: algebra.Col{Idx: 1}, R: algebra.Col{Idx: 3}}},
			StrengthSQL, []bool{true, true, true, true}},
		{"eq must not strengthen naively", algebra.Select{Child: algebra.Product{L: o, R: l},
			Cond: algebra.Cmp{Op: algebra.EQ, L: algebra.Col{Idx: 1}, R: algebra.Col{Idx: 3}}},
			StrengthNaive, []bool{true, false, true, false}},
		{"order cmp strengthens naively", algebra.Select{Child: algebra.Product{L: o, R: l},
			Cond: algebra.Cmp{Op: algebra.GE, L: algebra.Col{Idx: 1}, R: algebra.Col{Idx: 3}}},
			StrengthNaive, []bool{true, true, true, true}},
		{"like strengthens its operand", algebra.Select{Child: o,
			Cond: algebra.Like{Operand: algebra.Col{Idx: 1}, Pattern: algebra.Lit{Val: value.Str("x%")}}},
			StrengthNaive, []bool{true, true}},
	}
	for _, tc := range cases {
		if got := NonNullCols(tc.e, sch, tc.st); !boolsEq(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestNonNullColsGroupBy(t *testing.T) {
	sch := testSchema()
	o := algebra.Base{Name: "o", Cols: 2}

	// Global aggregates (no keys): COUNT is never NULL, but MIN/SUM/AVG
	// over a possibly-empty input yield the empty-group NULL even when
	// the argument column is NOT NULL.
	global := algebra.GroupBy{Child: o, Aggs: []algebra.AggSpec{
		{Func: algebra.AggCount, Col: -1},
		{Func: algebra.AggMin, Col: 0},
		{Func: algebra.AggSum, Col: 0},
		{Func: algebra.AggAvg, Col: 1},
	}}
	if got := NonNullCols(global, sch, StrengthNaive); !boolsEq(got, []bool{true, false, false, false}) {
		t.Errorf("global aggregates: %v", got)
	}

	// Keyed aggregates: groups are non-empty by construction, so an
	// aggregate over a NOT NULL argument is NOT NULL; over a nullable
	// argument it stays nullable. Keys inherit the child's facts.
	keyed := algebra.GroupBy{Child: o, Keys: []int{0}, Aggs: []algebra.AggSpec{
		{Func: algebra.AggMax, Col: 0},
		{Func: algebra.AggMax, Col: 1},
		{Func: algebra.AggCount, Col: -1},
	}}
	if got := NonNullCols(keyed, sch, StrengthNaive); !boolsEq(got, []bool{true, true, false, true}) {
		t.Errorf("keyed aggregates: %v", got)
	}
	nullableKey := algebra.GroupBy{Child: o, Keys: []int{1}, Aggs: []algebra.AggSpec{
		{Func: algebra.AggMin, Col: 0},
	}}
	if got := NonNullCols(nullableKey, sch, StrengthNaive); !boolsEq(got, []bool{false, true}) {
		t.Errorf("nullable grouping key: %v", got)
	}
}

func TestNonNullColsNoSchema(t *testing.T) {
	o := algebra.Base{Name: "o", Cols: 2}
	if got := NonNullCols(o, nil, StrengthNaive); !boolsEq(got, []bool{false, false}) {
		t.Errorf("nil schema must assume nullable: %v", got)
	}
	unknown := algebra.Base{Name: "nosuch", Cols: 3}
	if got := NonNullCols(unknown, testSchema(), StrengthNaive); !boolsEq(got, []bool{false, false, false}) {
		t.Errorf("unknown relation must assume nullable: %v", got)
	}
}

func TestNullFree(t *testing.T) {
	sch := testSchema()
	solid := algebra.Base{Name: "solid", Cols: 2}
	o := algebra.Base{Name: "o", Cols: 2}

	if !NullFree(solid, sch) {
		t.Error("solid is null-free")
	}
	if NullFree(o, sch) {
		t.Error("o has a nullable column")
	}
	if NullFree(algebra.Product{L: solid, R: o}, sch) {
		t.Error("product inherits o's nullability")
	}
	if NullFree(solid, nil) {
		t.Error("nil schema counts as nullable")
	}
	if NullFree(algebra.Base{Name: "nosuch", Cols: 1}, sch) {
		t.Error("unknown relation counts as nullable")
	}
	// Walk descends into scalar subqueries inside conditions.
	scalar := algebra.Scalar{Sub: o, Agg: algebra.AggCount, Col: -1}
	sel := algebra.Select{Child: solid, Cond: algebra.Cmp{
		Op: algebra.GT, L: algebra.Col{Idx: 0}, R: scalar}}
	if NullFree(sel, sch) {
		t.Error("scalar subquery over o makes the expression non-null-free")
	}
}
