package analyze

import (
	"fmt"
	"strings"

	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/value"
)

// Diagnostic is one positioned certainty-hazard warning over SQL
// source text, for certlint.
type Diagnostic struct {
	Code string `json:"code"`
	Pos  int    `json:"offset"` // byte offset into the source; -1 when unknown
	Line int    `json:"line"`   // 1-based; 0 when Pos is unknown
	Col  int    `json:"col"`
	Msg  string `json:"message"`
}

// String renders the diagnostic in file:line:col style (without the
// file, which the caller prepends).
func (d Diagnostic) String() string {
	if d.Pos < 0 {
		return fmt.Sprintf("[%s] %s", d.Code, d.Msg)
	}
	return fmt.Sprintf("%d:%d: [%s] %s", d.Line, d.Col, d.Code, d.Msg)
}

// QueryReport is the result of the AST-level hazard analysis.
type QueryReport struct {
	// Safe reports that the walk found no hazards. The plan-level
	// verdict (Plan) is the authoritative one for the evaluation fast
	// path; this AST-level walk exists to attach source positions and
	// may be marginally more conservative.
	Safe        bool
	Diagnostics []Diagnostic
}

// Query walks the parsed query and reports every construct where SQL's
// three-valued logic can produce non-certain answers (or miss certain
// ones), with byte positions pointing at the offending operator. src
// must be the text q was parsed from (for line:col rendering).
func Query(src string, q *sql.Query, sch *schema.Schema) *QueryReport {
	a := &queryAnalyzer{src: src, sch: sch, views: map[string]*viewInfo{}}
	a.analyzeQuery(q, nil)
	return &QueryReport{Safe: len(a.diags) == 0, Diagnostics: a.diags}
}

type colInfo struct {
	name    string
	nonNull bool
	kind    value.Kind
}

type viewInfo struct {
	cols  []colInfo
	rigid bool
}

type tableInScope struct {
	name  string
	cols  []colInfo
	rigid bool // the source relation/view cannot contain nulls
}

// frame is one block's name-resolution scope; outer chains to the
// enclosing block for correlated subqueries.
type frame struct {
	tables []tableInScope
	outer  *frame
}

// resolve finds ref in the frame chain; local reports whether it was
// found in f itself rather than an enclosing frame.
func (f *frame) resolve(ref sql.ColRef) (colInfo, bool, bool) {
	for cur := f; cur != nil; cur = cur.outer {
		for _, t := range cur.tables {
			if ref.Qualifier != "" && !strings.EqualFold(ref.Qualifier, t.name) {
				continue
			}
			for _, c := range t.cols {
				if strings.EqualFold(c.name, ref.Name) {
					return c, cur == f, true
				}
			}
			if ref.Qualifier != "" {
				return colInfo{}, false, false
			}
		}
	}
	return colInfo{}, false, false
}

type queryAnalyzer struct {
	src   string
	sch   *schema.Schema
	views map[string]*viewInfo
	diags []Diagnostic
}

func (a *queryAnalyzer) diag(pos int, code, format string, args ...any) {
	d := Diagnostic{Code: code, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	if pos >= 0 {
		d.Line, d.Col = sql.LineCol(a.src, pos)
	}
	a.diags = append(a.diags, d)
}

// analyzeQuery analyzes q (registering its WITH views) and returns the
// output column info of its body.
func (a *queryAnalyzer) analyzeQuery(q *sql.Query, outer *frame) []colInfo {
	saved := map[string]*viewInfo{}
	for _, cte := range q.With {
		name := strings.ToLower(cte.Name)
		saved[name] = a.views[name]
		cols := a.queryExpr(cte.Body, nil)
		a.views[name] = &viewInfo{cols: cols, rigid: a.rigidQueryExpr(cte.Body, nil)}
	}
	out := a.queryExpr(q.Body, outer)
	for name, prev := range saved {
		if prev == nil {
			delete(a.views, name)
		} else {
			a.views[name] = prev
		}
	}
	return out
}

func (a *queryAnalyzer) queryExpr(qe sql.QueryExpr, outer *frame) []colInfo {
	switch qe := qe.(type) {
	case sql.SetOp:
		l := a.queryExpr(qe.L, outer)
		r := a.queryExpr(qe.R, outer)
		switch qe.Op {
		case sql.OpExcept:
			if !a.rigidQueryExpr(qe.R, outer) {
				a.diag(qe.Pos, "except-nullable",
					"EXCEPT excludes rows by matches in a subquery that can contain NULLs; a possible match is not a certain exclusion")
			}
			for _, c := range l {
				if !c.nonNull {
					a.diag(qe.Pos, "except-nullable",
						"EXCEPT over a left side whose column %s can be NULL; a marked row's exclusion depends on how its nulls are interpreted", nameOr(c.name, "?"))
					break
				}
			}
			return l
		case sql.OpIntersect:
			out := mergeCols(l, r, func(x, y bool) bool { return x || y })
			return out
		default: // union
			return mergeCols(l, r, func(x, y bool) bool { return x && y })
		}
	case *sql.SelectStmt:
		return a.selectStmt(qe, outer)
	default:
		return nil
	}
}

func mergeCols(l, r []colInfo, nonNull func(a, b bool) bool) []colInfo {
	out := make([]colInfo, len(l))
	copy(out, l)
	for i := range out {
		if i < len(r) {
			out[i].nonNull = nonNull(l[i].nonNull, r[i].nonNull)
			if r[i].kind != l[i].kind {
				out[i].kind = value.KindNull // kinds disagree: unknown
			}
		}
	}
	return out
}

func nameOr(name, alt string) string {
	if name == "" {
		return alt
	}
	return name
}

func (a *queryAnalyzer) selectStmt(s *sql.SelectStmt, outer *frame) []colInfo {
	f := &frame{outer: outer}
	for _, t := range s.From {
		f.tables = append(f.tables, a.tableScope(t))
	}
	if s.Where != nil {
		a.cond(s.Where, f, false)
	}
	if s.Having != nil {
		a.cond(s.Having, f, false)
	}

	var out []colInfo
	if s.Star {
		for _, t := range f.tables {
			out = append(out, t.cols...)
		}
		return out
	}
	for _, it := range s.Items {
		cl := a.classifyExpr(it.Expr, f)
		name := ""
		if ref, ok := it.Expr.(sql.ColRef); ok {
			name = ref.Name
		}
		out = append(out, colInfo{name: name, nonNull: cl.class == classConst, kind: cl.kind})
	}
	return out
}

// tableScope resolves one FROM item against the schema or the WITH
// views in scope.
func (a *queryAnalyzer) tableScope(t sql.TableRef) tableInScope {
	if v, ok := a.views[strings.ToLower(t.Table)]; ok {
		return tableInScope{name: t.Name(), cols: v.cols, rigid: v.rigid}
	}
	if a.sch != nil {
		if rel, ok := a.sch.Relation(t.Table); ok {
			ts := tableInScope{name: t.Name(), rigid: true}
			for _, attr := range rel.Attrs {
				ts.cols = append(ts.cols, colInfo{name: attr.Name, nonNull: !attr.Nullable, kind: attr.Type})
				if attr.Nullable {
					ts.rigid = false
				}
			}
			return ts
		}
	}
	a.diag(-1, "unknown-relation", "relation %s is not in the schema; its nullability is unknown", t.Table)
	return tableInScope{name: t.Name()}
}

// classification carries the operand class plus rendering context.
type classification struct {
	class opClass
	kind  value.Kind
	code  string // hazard code when class == classHazard
	msg   string
}

func (a *queryAnalyzer) classifyExpr(e sql.Expr, f *frame) classification {
	switch e := e.(type) {
	case sql.ColRef:
		c, _, ok := f.resolve(e)
		if !ok {
			return classification{class: classHazard, code: "unresolved-column", msg: fmt.Sprintf("column %s cannot be resolved", refString(e))}
		}
		if c.nonNull {
			return classification{class: classConst, kind: c.kind}
		}
		return classification{class: classNullableCol, kind: c.kind, msg: fmt.Sprintf("column %s can be NULL", refString(e))}
	case sql.NumLit, sql.StrLit:
		return classification{class: classConst}
	case sql.NullLit:
		return classification{class: classHazard, code: "null-literal", msg: "a NULL literal never compares as certainly true or certainly false"}
	case sql.Param:
		// Parameters bind to constants at execution time; binding NULL
		// through a parameter is outside what the analysis models.
		return classification{class: classConst}
	case sql.Concat:
		for _, p := range e.Parts {
			if cl := a.classifyExpr(p, f); cl.class != classConst {
				cl.msg = "string concatenation over an operand that can be NULL"
				if cl.class == classNullableCol {
					return classification{class: classHazard, code: "cmp-nullable", msg: cl.msg}
				}
				return cl
			}
		}
		return classification{class: classConst, kind: value.KindString}
	case sql.AggCall:
		if e.Func == "COUNT" {
			return classification{class: classConst, kind: value.KindInt}
		}
		return classification{class: classHazard, code: "aggregate-nullable",
			msg: fmt.Sprintf("%s can be NULL over an empty input", e.Func)}
	case sql.SubqueryExpr:
		rigid := a.scalarRigid(e.Q, f)
		a.analyzeSubquery(e.Q, f) // surface the subquery's own hazards too
		if rigid {
			return classification{class: classConst, kind: value.KindInt}
		}
		return classification{class: classHazard, code: "scalar-subquery",
			msg: "scalar subquery is not a rigid constant (it reads nullable data or can itself be NULL)"}
	default:
		return classification{class: classHazard, code: "unknown-operand", msg: fmt.Sprintf("unsupported operand %T", e)}
	}
}

func refString(e sql.ColRef) string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

func kindFinite(k value.Kind) bool {
	return k == value.KindBool || k == value.KindNull
}

// cond walks a condition; neg tracks whether the context negates it
// (an odd number of enclosing NOTs), which turns = into <> and IN into
// NOT IN for hazard purposes.
func (a *queryAnalyzer) cond(e sql.Expr, f *frame, neg bool) {
	switch e := e.(type) {
	case sql.AndExpr:
		a.cond(e.L, f, neg)
		a.cond(e.R, f, neg)
	case sql.OrExpr:
		a.cond(e.L, f, neg)
		a.cond(e.R, f, neg)
	case sql.NotExpr:
		a.cond(e.E, f, !neg)
	case sql.CmpExpr:
		a.cmp(e.Pos, e.Op, e.L, e.R, f, neg)
	case sql.LikeExpr:
		a.likeAtom(e, f)
	case sql.IsNullExpr:
		cl := a.classifyExpr(e.E, f)
		switch cl.class {
		case classConst:
			// rigid constant — nothing to flag
		case classHazard:
			a.diag(e.Pos, cl.code, "%s", cl.msg)
		case classNullableCol:
			a.diag(e.Pos, "null-test-nullable",
				"IS [NOT] NULL on %s; the test's outcome differs between the marked row and its valuations", nullableWhat(cl))
		}
	case sql.InExpr:
		a.inAtom(e, f, neg)
	case sql.ExistsExpr:
		effNeg := neg != e.Negated
		if effNeg && !a.rigidQuery(e.Sub, f) {
			a.diag(e.Pos, "not-exists-nullable",
				"NOT EXISTS over a subquery that can contain NULLs (or that reads nullable outer columns); a possible match must block the outer row, so plain evaluation may keep non-certain answers")
		}
		a.analyzeSubquery(e.Sub, f)
	default:
		// A value-shaped expression (column, literal, …) in condition
		// position — the parser does not produce these today, so flag
		// conservatively rather than vouch for an unknown shape.
		a.diag(-1, "unknown-atom", "unsupported condition %T; treated as a certainty hazard", e)
	}
}

func nullableWhat(cl classification) string {
	if cl.msg != "" {
		return strings.TrimSuffix(cl.msg, " can be NULL") + " (which can be NULL)"
	}
	return "a nullable operand"
}

func (a *queryAnalyzer) cmp(pos int, op string, l, r sql.Expr, f *frame, neg bool) {
	if neg {
		op = negateCmpOp(op)
	}
	lc := a.classifyExpr(l, f)
	rc := a.classifyExpr(r, f)
	for _, cl := range []classification{lc, rc} {
		if cl.class == classHazard {
			a.diag(pos, cl.code, "in comparison: %s", cl.msg)
		}
	}
	if lc.class == classHazard || rc.class == classHazard {
		return
	}
	if op == "=" {
		if lc.class == classNullableCol && rc.class == classNullableCol {
			a.diag(pos, "eq-nullable-pair",
				"= compares two operands that can both be NULL; equal marks are certainly equal but never SQL-equal")
			return
		}
		for _, cl := range []classification{lc, rc} {
			if cl.class == classNullableCol && kindFinite(cl.kind) {
				a.diag(pos, "eq-finite",
					"= over a nullable %s operand; its finite domain lets certainty arise from a case split plain evaluation misses", cl.kind)
			}
		}
		return
	}
	for _, cl := range []classification{lc, rc} {
		if cl.class == classNullableCol {
			a.diag(pos, "cmp-nullable",
				"%s over %s; the comparison is neither certainly true nor certainly false on marked rows", op, nullableWhat(cl))
		}
	}
}

func negateCmpOp(op string) string {
	switch op {
	case "=":
		return "<>"
	case "<>":
		return "="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<"
	default: // >=
		return "<"
	}
}

func (a *queryAnalyzer) likeAtom(e sql.LikeExpr, f *frame) {
	lc := a.classifyExpr(e.L, f)
	pc := a.classifyExpr(e.Pattern, f)
	switch lc.class {
	case classConst:
		// rigid constant — nothing to flag
	case classHazard:
		a.diag(e.Pos, lc.code, "in LIKE: %s", lc.msg)
	case classNullableCol:
		a.diag(e.Pos, "like-nullable",
			"LIKE over %s (every value matches '%%' under some valuation)", nullableWhat(lc))
	}
	switch pc.class {
	case classConst:
		// rigid constant — nothing to flag
	case classHazard:
		a.diag(e.Pos, pc.code, "in LIKE pattern: %s", pc.msg)
	case classNullableCol:
		a.diag(e.Pos, "like-nullable", "LIKE with a pattern that can be NULL")
	}
}

func (a *queryAnalyzer) inAtom(e sql.InExpr, f *frame, neg bool) {
	effNeg := neg != e.Negated
	if e.Sub != nil {
		cl := a.classifyExpr(e.E, f)
		if effNeg {
			if cl.class != classConst || !a.rigidQuery(e.Sub, f) {
				a.diag(e.Pos, "not-in-nullable",
					"NOT IN over a tested value or subquery that can contain NULLs; a possible match must block the outer row")
			}
		} else {
			sub := a.analyzeSubquery(e.Sub, f)
			var subCol classification
			if len(sub) > 0 {
				subCol = classification{class: classNullableCol, kind: sub[0].kind, msg: "the subquery's output column can be NULL"}
				if sub[0].nonNull {
					subCol = classification{class: classConst, kind: sub[0].kind}
				}
				a.eqPair(e.Pos, cl, subCol)
			}
			return
		}
		a.analyzeSubquery(e.Sub, f)
		return
	}
	// IN (list) is a disjunction of equalities (a conjunction of
	// inequalities when negated).
	cl := a.classifyExpr(e.E, f)
	for _, item := range e.List {
		ic := a.classifyExpr(item, f)
		if effNeg {
			for _, c := range []classification{cl, ic} {
				switch c.class {
				case classConst:
					// rigid constant — nothing to flag
				case classHazard:
					a.diag(e.Pos, c.code, "in NOT IN list: %s", c.msg)
				case classNullableCol:
					a.diag(e.Pos, "not-in-nullable",
						"NOT IN over %s; the exclusion depends on how its nulls are interpreted", nullableWhat(c))
				}
			}
			continue
		}
		a.eqPair(e.Pos, cl, ic)
	}
}

// eqPair applies the equality-atom rule to a classified pair.
func (a *queryAnalyzer) eqPair(pos int, lc, rc classification) {
	for _, cl := range []classification{lc, rc} {
		if cl.class == classHazard {
			a.diag(pos, cl.code, "in comparison: %s", cl.msg)
		}
	}
	if lc.class == classHazard || rc.class == classHazard {
		return
	}
	if lc.class == classNullableCol && rc.class == classNullableCol {
		a.diag(pos, "eq-nullable-pair",
			"equality between two operands that can both be NULL; equal marks are certainly equal but never SQL-equal")
		return
	}
	for _, cl := range []classification{lc, rc} {
		if cl.class == classNullableCol && kindFinite(cl.kind) {
			a.diag(pos, "eq-finite",
				"equality over a nullable %s operand; its finite domain lets certainty arise from a case split plain evaluation misses", cl.kind)
		}
	}
}

// analyzeSubquery analyzes a subquery in a fresh frame chained to the
// enclosing one (for correlated references) and returns its output
// columns.
func (a *queryAnalyzer) analyzeSubquery(q *sql.Query, f *frame) []colInfo {
	return a.analyzeQuery(q, f)
}

// scalarRigid reports whether a scalar subquery is a rigid non-null
// constant: a COUNT over null-free data with no nullable outer
// references.
func (a *queryAnalyzer) scalarRigid(q *sql.Query, f *frame) bool {
	sel, ok := q.Body.(*sql.SelectStmt)
	if !ok || len(sel.Items) != 1 {
		return false
	}
	agg, ok := sel.Items[0].Expr.(sql.AggCall)
	if !ok || agg.Func != "COUNT" {
		return false
	}
	return a.rigidQuery(q, f)
}

// rigidQuery reports whether the subquery's result is the same on
// every valuation of the database's nulls: all relations it reads are
// null-free, every correlated outer column it references is non-null,
// and its conditions contain no NULL literals or non-rigid scalars.
func (a *queryAnalyzer) rigidQuery(q *sql.Query, outer *frame) bool {
	saved := map[string]*viewInfo{}
	rigid := true
	for _, cte := range q.With {
		name := strings.ToLower(cte.Name)
		saved[name] = a.views[name]
		cols := a.silently(func() []colInfo { return a.queryExpr(cte.Body, nil) })
		a.views[name] = &viewInfo{cols: cols, rigid: a.rigidQueryExpr(cte.Body, nil)}
	}
	rigid = a.rigidQueryExpr(q.Body, outer)
	for name, prev := range saved {
		if prev == nil {
			delete(a.views, name)
		} else {
			a.views[name] = prev
		}
	}
	return rigid
}

// silently runs fn while discarding any diagnostics it would add
// (rigidity probing must not duplicate the main walk's output).
func (a *queryAnalyzer) silently(fn func() []colInfo) []colInfo {
	n := len(a.diags)
	out := fn()
	a.diags = a.diags[:n]
	return out
}

func (a *queryAnalyzer) rigidQueryExpr(qe sql.QueryExpr, outer *frame) bool {
	switch qe := qe.(type) {
	case sql.SetOp:
		return a.rigidQueryExpr(qe.L, outer) && a.rigidQueryExpr(qe.R, outer)
	case *sql.SelectStmt:
		f := &frame{outer: outer}
		for _, t := range qe.From {
			ts := a.silentTableScope(t)
			if !ts.rigid {
				return false
			}
			f.tables = append(f.tables, ts)
		}
		for _, w := range []sql.Expr{qe.Where, qe.Having} {
			if w != nil && !a.rigidCondExpr(w, f) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// silentTableScope is tableScope without the unknown-relation
// diagnostic (rigidity probing treats unknown relations as nullable).
func (a *queryAnalyzer) silentTableScope(t sql.TableRef) tableInScope {
	n := len(a.diags)
	ts := a.tableScope(t)
	if len(a.diags) > n {
		a.diags = a.diags[:n]
		ts.rigid = false
	}
	return ts
}

func (a *queryAnalyzer) rigidCondExpr(e sql.Expr, f *frame) bool {
	switch e := e.(type) {
	case nil:
		return true
	case sql.AndExpr:
		return a.rigidCondExpr(e.L, f) && a.rigidCondExpr(e.R, f)
	case sql.OrExpr:
		return a.rigidCondExpr(e.L, f) && a.rigidCondExpr(e.R, f)
	case sql.NotExpr:
		return a.rigidCondExpr(e.E, f)
	case sql.CmpExpr:
		return a.rigidOperand(e.L, f) && a.rigidOperand(e.R, f)
	case sql.LikeExpr:
		return a.rigidOperand(e.L, f) && a.rigidOperand(e.Pattern, f)
	case sql.IsNullExpr:
		return a.rigidOperand(e.E, f)
	case sql.InExpr:
		if !a.rigidOperand(e.E, f) {
			return false
		}
		for _, item := range e.List {
			if !a.rigidOperand(item, f) {
				return false
			}
		}
		if e.Sub != nil {
			return a.rigidQuery(e.Sub, f)
		}
		return true
	case sql.ExistsExpr:
		return a.rigidQuery(e.Sub, f)
	default:
		return false
	}
}

func (a *queryAnalyzer) rigidOperand(e sql.Expr, f *frame) bool {
	switch e := e.(type) {
	case sql.ColRef:
		// Local columns are non-null already (the FROM sources are
		// null-free); outer references must be provably non-null too.
		c, local, ok := f.resolve(e)
		if !ok {
			return false
		}
		return local || c.nonNull
	case sql.NumLit, sql.StrLit, sql.Param:
		return true
	case sql.NullLit:
		return false
	case sql.Concat:
		for _, p := range e.Parts {
			if !a.rigidOperand(p, f) {
				return false
			}
		}
		return true
	case sql.AggCall:
		// Inside a rigid (null-free) block an aggregate is a fixed
		// value; COUNT is additionally never NULL, which is all the
		// EXISTS-style rigidity needs.
		if e.Arg != nil {
			return a.rigidOperand(e.Arg, f)
		}
		return true
	case sql.SubqueryExpr:
		return a.rigidQuery(e.Q, f)
	default:
		return false
	}
}
