package analyze

import (
	"strings"
	"testing"

	"certsql/internal/algebra"
	"certsql/internal/compile"
	"certsql/internal/schema"
	"certsql/internal/sql"
	"certsql/internal/value"
)

// planFor compiles src against testSchema and analyzes the plan.
func planFor(t *testing.T, src string) *PlanReport {
	t.Helper()
	q, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := compile.Compile(q, testSchema(), nil)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return Plan(c.Expr, testSchema())
}

func hazardCodes(hs []Hazard) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.Code
	}
	return out
}

func hasCode(hs []Hazard, code string) bool {
	for _, h := range hs {
		if h.Code == code {
			return true
		}
	}
	return false
}

func TestPlanSafeQueries(t *testing.T) {
	safe := []string{
		// Selections and joins over NOT NULL columns only.
		`SELECT id FROM o WHERE id > 3`,
		`SELECT o.id, l.oid FROM o, l WHERE o.id = l.oid`,
		// Equality tolerates exactly one nullable side.
		`SELECT id FROM o WHERE cust = 7`,
		`SELECT o.id FROM o, l WHERE o.cust = l.oid`,
		// Negation over rigid (null-free) data is exact.
		`SELECT a FROM solid WHERE NOT EXISTS (SELECT * FROM solid s2 WHERE s2.a = solid.a AND s2.b <> solid.b)`,
		`SELECT a FROM solid WHERE a NOT IN (SELECT a FROM solid s2 WHERE s2.b = 'x')`,
		`SELECT a, b FROM solid EXCEPT SELECT a, b FROM solid`,
		// Positive EXISTS over nullable data with safe atoms.
		`SELECT id FROM o WHERE EXISTS (SELECT * FROM l WHERE l.oid = o.id)`,
		`SELECT a FROM solid INTERSECT SELECT a FROM solid WHERE b = 'x'`,
	}
	for _, src := range safe {
		rep := planFor(t, src)
		if !rep.Safe {
			t.Errorf("%s\n  want safe, got hazards %v", src, hazardCodes(rep.Hazards))
		}
	}
}

func TestPlanHazards(t *testing.T) {
	cases := []struct {
		src  string
		code string
	}{
		// NOT EXISTS / NOT IN over nullable data.
		{`SELECT id FROM o WHERE NOT EXISTS (SELECT * FROM l WHERE l.oid = o.id)`, "not-exists-nullable"},
		{`SELECT a FROM solid WHERE a NOT IN (SELECT oid FROM l)`, "not-exists-nullable"},
		// Anti-join condition referencing a nullable outer column.
		{`SELECT cust FROM o WHERE NOT EXISTS (SELECT * FROM solid WHERE a = o.cust)`, "not-exists-nullable"},
		// EXCEPT with nulls on either side.
		{`SELECT id, cust FROM o EXCEPT SELECT a, a FROM solid`, "except-nullable"},
		{`SELECT a, b FROM solid EXCEPT SELECT id, cust FROM o`, "except-nullable"},
		// Comparisons over nullable columns.
		{`SELECT id FROM o WHERE cust <> 3`, "cmp-nullable"},
		{`SELECT id FROM o WHERE cust < 3`, "cmp-nullable"},
		{`SELECT o.id FROM o, l WHERE o.cust = l.supp`, "eq-nullable-pair"},
		{`SELECT id FROM o WHERE cust = cust`, "eq-nullable-pair"},
		// Null tests break exactness in both polarities.
		{`SELECT id FROM o WHERE cust IS NULL`, "null-test-nullable"},
		{`SELECT id FROM o WHERE cust IS NOT NULL`, "null-test-nullable"},
		// NULL literals and non-rigid or non-COUNT scalars.
		{`SELECT id FROM o WHERE cust = NULL`, "null-literal"},
		{`SELECT id FROM o WHERE id > (SELECT MIN(a) FROM solid)`, "scalar-subquery"},
		{`SELECT id FROM o WHERE id > (SELECT COUNT(*) FROM l)`, "scalar-subquery"},
		// LIKE over a nullable operand (⊥ LIKE '%').
		{`SELECT id FROM o WHERE cust LIKE '%7%'`, "like-nullable"},
		// A nullable finite-domain (boolean) column anywhere in the plan.
		{`SELECT id FROM flags WHERE id > 0`, "finite-domain-null"},
		// Aggregation / LIMIT over nullable input.
		{`SELECT COUNT(*) FROM o`, "aggregate-nullable"},
		{`SELECT id FROM o LIMIT 5`, "limit-nullable"},
	}
	for _, tc := range cases {
		rep := planFor(t, tc.src)
		if rep.Safe {
			t.Errorf("%s\n  want hazard %s, got safe", tc.src, tc.code)
			continue
		}
		if !hasCode(rep.Hazards, tc.code) {
			t.Errorf("%s\n  want hazard %s, got %v", tc.src, tc.code, hazardCodes(rep.Hazards))
		}
	}
}

func TestPlanHazardShape(t *testing.T) {
	rep := planFor(t, `SELECT id FROM o WHERE cust <> 3`)
	if len(rep.Hazards) == 0 {
		t.Fatal("expected a hazard")
	}
	h := rep.Hazards[0]
	if h.Pos != -1 {
		t.Errorf("plan hazards carry no position, got %d", h.Pos)
	}
	if h.Msg == "" || !strings.Contains(h.Msg, "NULL") {
		t.Errorf("hazard message should explain the null dependence: %q", h.Msg)
	}
	if !boolsEq(rep.NonNull, []bool{true}) {
		t.Errorf("NonNull for SELECT id: %v", rep.NonNull)
	}
}

func TestPlanDirectOperators(t *testing.T) {
	sch := testSchema()
	o := algebra.Base{Name: "o", Cols: 2}
	solid := algebra.Base{Name: "solid", Cols: 2}

	cases := []struct {
		name string
		e    algebra.Expr
		code string // "" means safe
	}{
		{"base", o, ""},
		{"unknown relation", algebra.Base{Name: "nosuch", Cols: 1}, "unknown-relation"},
		{"adom power", algebra.AdomPower{K: 2}, "active-domain"},
		{"unify over nullable", algebra.UnifySemi{L: o, R: o}, "unify-nullable"},
		{"unify over rigid", algebra.UnifySemi{L: solid, R: solid}, ""},
		{"division by nullable", algebra.Division{L: algebra.Product{L: solid, R: o}, R: o}, "division-nullable"},
		{"division by rigid", algebra.Division{L: algebra.Product{L: o, R: solid}, R: solid}, ""},
		{"groupby over rigid", algebra.GroupBy{Child: solid, Keys: []int{0},
			Aggs: []algebra.AggSpec{{Func: algebra.AggCount, Col: -1}}}, ""},
		{"sort recurses", algebra.Sort{Child: algebra.Select{Child: o,
			Cond: algebra.NullTest{Operand: algebra.Col{Idx: 1}}}}, "null-test-nullable"},
	}
	for _, tc := range cases {
		rep := Plan(tc.e, sch)
		if tc.code == "" {
			if !rep.Safe {
				t.Errorf("%s: want safe, got %v", tc.name, hazardCodes(rep.Hazards))
			}
			continue
		}
		if !hasCode(rep.Hazards, tc.code) {
			t.Errorf("%s: want %s, got %v", tc.name, tc.code, hazardCodes(rep.Hazards))
		}
	}
}

// TestPlanFiniteDomainCounterexample pins the reason for the blanket
// finite-kind rule: over L = {(⊥: bool)} and R = {(true), (false)} the
// intersection certainly contains the marked row (it equals one of the
// two R rows under every valuation) while plain evaluation returns
// nothing — so "both children safe" is not enough for INTERSECT.
func TestPlanFiniteDomainCounterexample(t *testing.T) {
	sch := schema.New()
	sch.MustAdd(&schema.Relation{Name: "lb", Attrs: []schema.Attribute{
		{Name: "x", Type: value.KindBool, Nullable: true}}})
	sch.MustAdd(&schema.Relation{Name: "rb", Attrs: []schema.Attribute{
		{Name: "x", Type: value.KindBool}}})
	e := algebra.Intersect{L: algebra.Base{Name: "lb", Cols: 1}, R: algebra.Base{Name: "rb", Cols: 1}}
	rep := Plan(e, sch)
	if rep.Safe || !hasCode(rep.Hazards, "finite-domain-null") {
		t.Errorf("nullable bool must be flagged, got safe=%v %v", rep.Safe, hazardCodes(rep.Hazards))
	}
}
