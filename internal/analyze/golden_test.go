package analyze

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"certsql/internal/sql"
	"certsql/internal/tpch"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files under testdata")

// TestGoldenAppendixDiagnostics runs the AST-level hazard analysis over
// the four experiment queries of the paper's Section 3 and compares the
// rendered diagnostics against committed goldens. Each of Q1–Q4 must be
// flagged as hazardous through its NOT EXISTS block — the whole point
// of the paper is that plain evaluation of these queries returns
// non-certain answers.
func TestGoldenAppendixDiagnostics(t *testing.T) {
	sch := tpch.Schema()
	for _, id := range tpch.AllQueries {
		src := id.SQL()
		q, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", id, err)
		}
		rep := Query(src, q, sch)

		var b strings.Builder
		verdict := "safe"
		if !rep.Safe {
			verdict = "hazardous"
		}
		fmt.Fprintf(&b, "%s: %s (%d diagnostics)\n", id, verdict, len(rep.Diagnostics))
		for _, d := range rep.Diagnostics {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		got := b.String()

		path := filepath.Join("testdata", strings.ToLower(id.String())+".diag")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatalf("%s: write golden: %v", id, err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run with -update to create): %v", id, err)
		}
		if got != string(want) {
			t.Errorf("%s: diagnostics changed (re-run with -update if intended)\n got:\n%s\nwant:\n%s", id, got, want)
		}

		if rep.Safe {
			t.Errorf("%s must not be certainty-safe", id)
		}
		if !strings.Contains(got, "[not-exists-nullable]") {
			t.Errorf("%s must flag its NOT EXISTS hazard, got:\n%s", id, got)
		}
		// Every position must point into the source at a plausible
		// operator token.
		for _, d := range rep.Diagnostics {
			if d.Pos < 0 {
				continue
			}
			if d.Pos >= len(src) {
				t.Errorf("%s: diagnostic offset %d beyond source", id, d.Pos)
				continue
			}
			line, col := sql.LineCol(src, d.Pos)
			if line != d.Line || col != d.Col {
				t.Errorf("%s: line:col mismatch for offset %d", id, d.Pos)
			}
		}
	}
}
