package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"certsql/internal/guard"
	"certsql/internal/qgen"
	"certsql/internal/value"
)

// FuzzSegmentReader feeds arbitrary (and mutated-valid) bytes to the
// segment reader. The reader must never panic and never return rows
// that differ from what a valid file encodes: any mutation of a valid
// segment either fails the read or — when the mutation is outside the
// checksummed bytes, which the format does not allow — leaves the rows
// identical. Every accepted read is re-verified against the file by
// re-encoding.
func FuzzSegmentReader(f *testing.F) {
	// Seed corpus: a couple of valid segment files plus degenerate
	// prefixes.
	noHit := func(guard.Site) error { return nil }
	dir := f.TempDir()
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tn := qgen.Tuning{MaxRowsPerRelation: 8}
		sch := qgen.Schema(rng, tn)
		db := qgen.Database(rng, sch, tn)
		name := sch.Names()[0]
		if _, err := writeSegment(dir, "seed.seg", name, db.MustTable(name), noHit); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "seed.seg"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("CSG1"))
	f.Add([]byte("CSG1\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		seg, err := readSegment(path)
		if err != nil {
			return // rejected is always acceptable
		}
		// Accepted: the decoded rows must re-encode to content the
		// reader accepts identically — no silently wrong rows.
		for i, row := range seg.Rows {
			if len(row) != seg.Arity {
				t.Fatalf("accepted row %d has arity %d, header declares %d", i, len(row), seg.Arity)
			}
			for _, v := range row {
				switch v.Kind() {
				case value.KindNull, value.KindInt, value.KindFloat, value.KindString, value.KindBool, value.KindDate:
				default:
					t.Fatalf("accepted row %d holds value of invalid kind %d", i, v.Kind())
				}
			}
		}
	})
}

// FuzzWALScanner does the same for the WAL scanner: arbitrary bytes
// must never panic it, and in-file damage must surface as a scan
// problem, not an error or a crash.
func FuzzWALScanner(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CWL1"))
	f.Add(appendFrame([]byte("CWL1"), encodeWALRecord(2, 5, nil)))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		scan, err := scanWAL(path)
		if err != nil {
			t.Fatalf("scanWAL returned an I/O error for in-file bytes: %v", err)
		}
		if scan.GoodEnd > int64(len(data)) {
			t.Fatalf("GoodEnd %d past the file end %d", scan.GoodEnd, len(data))
		}
	})
}
