package persist_test

// Cold-start benchmark: how fast does a certsqld process get a live
// catalog? The CSV path re-parses and re-validates every row on every
// start; the persistent store's warm open reads checksummed columnar
// segments and replays an (empty, post-checkpoint) WAL. EXPERIMENTS.md
// records the measured table. The external test package makes the
// test-only import of the root certsql facade acyclic (persist itself
// never imports it).

import (
	"errors"
	"testing"

	"certsql"
	"certsql/internal/persist"
	"certsql/internal/table"
	"certsql/internal/tpch"
)

// benchConfig is big enough for the open-path difference to dominate
// fixed costs (≈9k rows) while keeping the benchmark setup quick.
var benchConfig = tpch.Config{ScaleFactor: 0.01, Seed: 3, NullRate: 0.03}

// setupColdStart materializes the same instance both ways: a CSV dump
// and a checkpointed data directory.
func setupColdStart(b *testing.B) (csvDir, dataDir string) {
	b.Helper()
	db := tpch.Generate(benchConfig)
	csvDir, dataDir = b.TempDir(), b.TempDir()
	if err := certsql.FromInternal(db).DumpCSV(csvDir); err != nil {
		b.Fatal(err)
	}
	st, err := persist.Open(dataDir, func() (*table.Database, error) { return db, nil }, persist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return csvDir, dataDir
}

func BenchmarkColdStart(b *testing.B) {
	csvDir, dataDir := setupColdStart(b)
	noSeed := func() (*table.Database, error) {
		return nil, errors.New("warm open must not re-seed")
	}

	b.Run("csv-reload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certsql.OpenTPCHDir(csvDir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := persist.Open(dataDir, noSeed, persist.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
