package persist

// fsck.go — offline integrity checking of a data directory. Fsck never
// writes: it walks the manifest, every referenced segment, and the WAL,
// verifying each checksum and every cross-reference, and reports each
// problem with file and offset so an operator can see exactly which
// bytes stopped being trustworthy. A torn WAL tail is reported as
// recoverable (Open truncates it); everything else is damage Open will
// refuse to load.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"certsql/internal/schema"
	"certsql/internal/table"
)

// Finding is one problem fsck found.
type Finding struct {
	// File is the offending file's path relative to the data dir (or
	// "" for directory-level problems).
	File string
	// Offset is the byte offset of the first untrusted byte, or -1
	// when the problem is not positional.
	Offset int64
	Detail string
	// Recoverable marks damage Open repairs on its own (today: a torn
	// WAL tail, the signature of a crash mid-append).
	Recoverable bool
}

func (f Finding) String() string {
	where := f.File
	if where == "" {
		where = "."
	}
	if f.Offset >= 0 {
		where = fmt.Sprintf("%s:%d", where, f.Offset)
	}
	kind := "error"
	if f.Recoverable {
		kind = "recoverable"
	}
	return fmt.Sprintf("%s: %s: %s", where, kind, f.Detail)
}

// Report is the result of one Fsck run.
type Report struct {
	Dir string
	// Version is the version recovery would land on (checkpoint + WAL
	// records), when determinable.
	Version uint64
	// Checkpoint is the manifest's checkpoint version.
	Checkpoint uint64
	// WALRecords counts the verified WAL records.
	WALRecords int
	// Tables and Rows count the relations and rows verified.
	Tables, Rows int
	// Orphans lists unreferenced seg-*/wal-*/*.tmp files — leaked disk,
	// not damage (Open sweeps them).
	Orphans []string
	// Findings lists every problem, in discovery order.
	Findings []Finding
}

// Clean reports whether the directory has no findings at all.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Healthy reports whether Open would succeed: no findings beyond
// recoverable ones.
func (r *Report) Healthy() bool {
	for _, f := range r.Findings {
		if !f.Recoverable {
			return false
		}
	}
	return true
}

// Fsck verifies the data directory and reports every problem it can
// find. It returns an error only when the directory itself cannot be
// examined; in-file damage is reported in the Report, not as an error.
func Fsck(dir string) (*Report, error) {
	r := &Report{Dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	referenced := map[string]bool{manifestName: true}

	// Manifest.
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		r.Findings = append(r.Findings, Finding{File: manifestName, Offset: -1,
			Detail: fmt.Sprintf("cannot read manifest: %v", err)})
		r.noteOrphans(entries, referenced)
		return r, nil
	}
	m, err := decodeManifest(data)
	if err != nil {
		r.Findings = append(r.Findings, Finding{File: manifestName, Offset: -1, Detail: err.Error()})
		r.noteOrphans(entries, referenced)
		return r, nil
	}
	r.Checkpoint = m.Version
	r.Version = m.Version

	// Schema.
	sch, err := schema.ParseDDL(m.SchemaDDL)
	if err != nil {
		r.Findings = append(r.Findings, Finding{File: manifestName, Offset: -1,
			Detail: fmt.Sprintf("manifest schema does not parse: %v", err)})
	}

	// Segments: full read, checksum verification, and (when the schema
	// parsed) kind-vs-schema validation of every row via a scratch
	// database.
	var db *table.Database
	if sch != nil {
		db = table.NewDatabase(sch)
	}
	for _, seg := range m.Segments {
		referenced[seg.File] = true
		path := filepath.Join(dir, seg.File)
		sd, err := readSegment(path)
		if err != nil {
			r.Findings = append(r.Findings, Finding{File: seg.File, Offset: -1,
				Detail: strings.TrimPrefix(err.Error(), "persist: "+path+": ")})
			continue
		}
		if !strings.EqualFold(sd.Rel, seg.Table) {
			r.Findings = append(r.Findings, Finding{File: seg.File, Offset: -1,
				Detail: fmt.Sprintf("segment holds relation %q, manifest expects %q", sd.Rel, seg.Table)})
			continue
		}
		if len(sd.Rows) != seg.Rows {
			r.Findings = append(r.Findings, Finding{File: seg.File, Offset: -1,
				Detail: fmt.Sprintf("segment holds %d rows, manifest expects %d", len(sd.Rows), seg.Rows)})
			continue
		}
		r.Tables++
		r.Rows += len(sd.Rows)
		if db == nil {
			continue
		}
		for i, row := range sd.Rows {
			if err := db.Insert(seg.Table, row); err != nil {
				r.Findings = append(r.Findings, Finding{File: seg.File, Offset: -1,
					Detail: fmt.Sprintf("row %d does not conform to the schema: %v", i, err)})
				break
			}
		}
	}
	if db != nil {
		db.SetNextNullMark(m.NextNull)
	}

	// WAL: frame verification, record decoding, version continuity,
	// and (when the catalog rebuilt) replayability of every op.
	referenced[m.WAL] = true
	walPath := filepath.Join(dir, m.WAL)
	if _, err := os.Stat(walPath); err != nil {
		r.Findings = append(r.Findings, Finding{File: m.WAL, Offset: -1,
			Detail: fmt.Sprintf("manifest references a missing WAL: %v", err)})
	} else if scan, err := scanWAL(walPath); err != nil {
		r.Findings = append(r.Findings, Finding{File: m.WAL, Offset: -1, Detail: err.Error()})
	} else {
		version := m.Version
		for i, rec := range scan.Records {
			if rec.Version != version+1 {
				r.Findings = append(r.Findings, Finding{File: m.WAL, Offset: rec.Off,
					Detail: fmt.Sprintf("record %d publishes version %d, want %d", i, rec.Version, version+1)})
				break
			}
			if db != nil {
				if err := applyOps(db, rec.Ops); err != nil {
					r.Findings = append(r.Findings, Finding{File: m.WAL, Offset: rec.Off,
						Detail: fmt.Sprintf("record %d does not replay: %v", i, err)})
					break
				}
				db.SetNextNullMark(rec.NextNull)
			}
			version = rec.Version
			r.WALRecords++
		}
		r.Version = version
		if scan.Problem != nil {
			r.Findings = append(r.Findings, Finding{File: m.WAL, Offset: scan.Problem.Offset,
				Detail: scan.Problem.Detail, Recoverable: scan.Problem.Kind == frameTorn})
		}
	}

	r.noteOrphans(entries, referenced)
	return r, nil
}

// noteOrphans records unreferenced persistence files.
func (r *Report) noteOrphans(entries []os.DirEntry, referenced map[string]bool) {
	for _, e := range entries {
		name := e.Name()
		if referenced[name] {
			continue
		}
		if strings.HasSuffix(name, ".tmp") || strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "wal-") {
			r.Orphans = append(r.Orphans, name)
		}
	}
}
