package persist

// codec.go — the binary encoding of engine values shared by segment
// files and the write-ahead log. The encoding is self-describing (a
// kind tag per value), so decoding needs no schema; the schema is
// still consulted afterwards to validate what was read.
//
// Wire format of one value:
//
//	tag byte (the value.Kind)
//	null/int/date  varint payload (null mark, integer, epoch days)
//	bool           one byte (0/1)
//	float          8-byte little-endian IEEE 754 bits
//	string         uvarint length + raw bytes
//
// The format never silently tolerates damage: every decode error names
// the offset at which it stopped trusting the bytes, and the block and
// record layers above this one checksum everything with CRC32C before
// a single value is decoded.

import (
	"encoding/binary"
	"fmt"
	"math"

	"certsql/internal/value"
)

// appendValue appends the wire encoding of v to buf.
func appendValue(buf []byte, v value.Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
		return binary.AppendVarint(buf, v.NullID())
	case value.KindInt:
		return binary.AppendVarint(buf, v.AsInt())
	case value.KindDate:
		return binary.AppendVarint(buf, v.AsDate())
	case value.KindBool:
		if v.AsBool() {
			return append(buf, 1)
		}
		return append(buf, 0)
	case value.KindFloat:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.AsFloat()))
	case value.KindString:
		s := v.AsString()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	default:
		panic(fmt.Sprintf("persist: encoding value of unknown kind %s", v.Kind()))
	}
}

// decoder reads wire values from a byte slice, tracking its offset so
// errors can be positioned within the enclosing block or record.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf("byte %d: %s", d.off, fmt.Sprintf(format, args...))
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, d.errf("unexpected end of data")
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.errf("bad varint")
	}
	d.off += n
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.errf("bad uvarint")
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(d.buf)-d.off) {
		return nil, d.errf("declared length %d exceeds remaining %d bytes", n, len(d.buf)-d.off)
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) done() bool { return d.off >= len(d.buf) }

// val decodes one value.
func (d *decoder) val() (value.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return value.Value{}, err
	}
	switch value.Kind(tag) {
	case value.KindNull:
		id, err := d.varint()
		if err != nil {
			return value.Value{}, err
		}
		return value.Null(id), nil
	case value.KindInt:
		i, err := d.varint()
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(i), nil
	case value.KindDate:
		days, err := d.varint()
		if err != nil {
			return value.Value{}, err
		}
		return value.Date(days), nil
	case value.KindBool:
		b, err := d.byte()
		if err != nil {
			return value.Value{}, err
		}
		switch b {
		case 0:
			return value.Bool(false), nil
		case 1:
			return value.Bool(true), nil
		default:
			return value.Value{}, d.errf("bad bool payload %d", b)
		}
	case value.KindFloat:
		if len(d.buf)-d.off < 8 {
			return value.Value{}, d.errf("short float payload")
		}
		bits := binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
		return value.Float(math.Float64frombits(bits)), nil
	case value.KindString:
		s, err := d.str()
		if err != nil {
			return value.Value{}, err
		}
		return value.Str(s), nil
	default:
		return value.Value{}, d.errf("unknown value tag %d", tag)
	}
}
