package persist

// frame.go — the checksummed length-prefixed framing shared by segment
// blocks and WAL records:
//
//	frame := uvarint(len(payload)) crc32c(payload, 4 bytes LE) payload
//
// CRC32C (Castagnoli) is hardware-accelerated on every platform the
// engine targets and is the checksum of choice of the storage layers
// this one is modeled on. A frame is only ever trusted after its
// checksum verifies; a frame that cannot be read to completion is
// "torn" — the signature a crash mid-append leaves behind — and is
// reported distinctly from a checksum mismatch so recovery can
// truncate the one and refuse the other.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxFramePayload bounds a single frame. Segment blocks hold ~2k rows
// and WAL records one update's delta; anything past this is damage
// (e.g. a bit flip in the length prefix), not data.
const maxFramePayload = 1 << 30

// appendFrame appends the framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// frameErrKind distinguishes how reading a frame failed.
type frameErrKind uint8

const (
	// frameTorn: the file ended mid-frame — the shape of a crashed
	// append. Recoverable by truncating at the frame's start.
	frameTorn frameErrKind = iota
	// frameCorrupt: the frame is structurally present but its checksum
	// or length prefix is wrong — bit rot or an overwrite, never a
	// clean crash. Not recoverable.
	frameCorrupt
)

// frameError is a positioned framing failure.
type frameError struct {
	Kind   frameErrKind
	Offset int64 // file offset of the frame's first byte
	Detail string
}

func (e *frameError) Error() string {
	kind := "torn frame"
	if e.Kind == frameCorrupt {
		kind = "corrupt frame"
	}
	return fmt.Sprintf("offset %d: %s: %s", e.Offset, kind, e.Detail)
}

// frameReader reads frames sequentially, tracking the byte offset of
// every frame so failures are reported as file:offset.
type frameReader struct {
	r   *bufio.Reader
	off int64
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// readByte reads one byte, advancing the offset.
func (fr *frameReader) readByte() (byte, error) {
	b, err := fr.r.ReadByte()
	if err == nil {
		fr.off++
	}
	return b, err
}

// next reads one frame. It returns io.EOF (and no frame) at a clean
// end of file; any other failure is a *frameError positioned at the
// frame's start.
func (fr *frameReader) next() ([]byte, error) {
	start := fr.off
	// Length prefix. A clean EOF before the first byte ends the file;
	// an EOF mid-varint is a torn frame.
	first := true
	var length uint64
	var shift uint
	for {
		b, err := fr.readByte()
		if err != nil {
			if first && errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			return nil, &frameError{Kind: frameTorn, Offset: start, Detail: "file ends inside the length prefix"}
		}
		first = false
		if shift >= 64 {
			return nil, &frameError{Kind: frameCorrupt, Offset: start, Detail: "length prefix overflows"}
		}
		length |= uint64(b&0x7f) << shift
		shift += 7
		if b&0x80 == 0 {
			break
		}
	}
	if length > maxFramePayload {
		return nil, &frameError{Kind: frameCorrupt, Offset: start, Detail: fmt.Sprintf("implausible payload length %d", length)}
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(fr.r, crcBuf[:]); err != nil {
		return nil, &frameError{Kind: frameTorn, Offset: start, Detail: "file ends inside the checksum"}
	}
	fr.off += 4
	payload := make([]byte, length)
	n, err := io.ReadFull(fr.r, payload)
	fr.off += int64(n)
	if err != nil {
		return nil, &frameError{Kind: frameTorn, Offset: start,
			Detail: fmt.Sprintf("file ends inside the payload (%d of %d bytes)", n, length)}
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, &frameError{Kind: frameCorrupt, Offset: start,
			Detail: fmt.Sprintf("checksum mismatch: stored %08x, computed %08x", want, got)}
	}
	return payload, nil
}
