package persist

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"certsql/internal/guard"
	"certsql/internal/qgen"
	"certsql/internal/schema"
	"certsql/internal/table"
	"certsql/internal/tpch"
	"certsql/internal/value"
)

// tinyConfig is a TPC-H instance small enough for unit tests but with
// every relation populated and nulls injected.
var tinyConfig = tpch.Config{ScaleFactor: 0.0001, Seed: 7, NullRate: 0.05}

func tinySeed() (*table.Database, error) { return tpch.Generate(tinyConfig), nil }

// noSeed is a seed function that must not be called: the test expects
// recovery, not re-seeding.
func noSeed(t *testing.T) func() (*table.Database, error) {
	return func() (*table.Database, error) {
		t.Fatal("seed called: recovery path was expected")
		return nil, nil
	}
}

// sameDatabases asserts got holds byte-identical tables (row order,
// values, null marks) and the same fresh-null counter as want.
func sameDatabases(t *testing.T, want, got *table.Database) {
	t.Helper()
	for _, name := range want.Schema.Names() {
		w, g := want.MustTable(name), got.MustTable(name)
		if w.Len() != g.Len() {
			t.Fatalf("relation %q: %d rows, want %d", name, g.Len(), w.Len())
		}
		for i, row := range w.Rows() {
			if value.RowKey(row) != value.RowKey(g.Row(i)) {
				t.Fatalf("relation %q row %d: %v, want %v", name, i, g.Row(i), row)
			}
		}
	}
	if w, g := want.NextNullMark(), got.NextNullMark(); w != g {
		t.Fatalf("next null mark %d, want %d", g, w)
	}
}

// insertDup duplicates the relation's first row (bags allow it).
func insertDup(rel string) func(db *table.Database) error {
	return func(db *table.Database) error {
		return db.Insert(rel, db.MustTable(rel).Row(0))
	}
}

// replaceWithNull replaces row 0 of the first relation with a nullable
// attribute, putting a fresh null in that attribute — exercises both
// OpReplace and the fresh-null counter in the WAL.
func replaceWithNull() func(db *table.Database) error {
	return func(db *table.Database) error {
		for _, name := range db.Schema.Names() {
			rel, _ := db.Schema.Relation(name)
			for col, a := range rel.Attrs {
				if !a.Nullable || db.MustTable(name).Len() == 0 {
					continue
				}
				row := append(table.Row{}, db.MustTable(name).Row(0)...)
				row[col] = db.FreshNull()
				return db.ReplaceRow(name, 0, row)
			}
		}
		return fmt.Errorf("no nullable attribute found")
	}
}

func TestStoreFreshOpenReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir, tinySeed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Version(); v != 1 {
		t.Fatalf("fresh store at version %d, want 1", v)
	}
	muts := []func(db *table.Database) error{
		insertDup("region"), replaceWithNull(), insertDup("nation"),
		insertDup("lineitem"), replaceWithNull(),
	}
	for i, m := range muts {
		v, err := s.Update(m)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if want := uint64(i) + 2; v != want {
			t.Fatalf("update %d published version %d, want %d", i, v, want)
		}
	}
	want := s.Snapshot()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(insertDup("region")); err == nil {
		t.Fatal("update after Close succeeded")
	}

	r, err := Open(dir, noSeed(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v := r.Version(); v != want.Version {
		t.Fatalf("recovered to version %d, want %d", v, want.Version)
	}
	sameDatabases(t, want.DB, r.Snapshot().DB)
	if v, err := r.Update(insertDup("customer")); err != nil || v != want.Version+1 {
		t.Fatalf("post-recovery update: version %d, err %v", v, err)
	}
}

func TestStorePublishWholesale(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir, tinySeed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := tpch.Generate(tpch.Config{ScaleFactor: 0.0001, Seed: 99, NullRate: 0.1})
	v, err := s.Publish(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("published version %d, want 2", v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, noSeed(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 2 {
		t.Fatalf("recovered to version %d, want 2", r.Version())
	}
	sameDatabases(t, fresh, r.Snapshot().DB)
}

func TestCheckpointRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir, tinySeed, Options{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Update(insertDup("region")); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Snapshot()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Updates publish versions 2..6; checkpoints fire after the 2nd and
	// 4th record, so the last checkpoint is at version 5 with one
	// record in its WAL.
	if m.Version != 5 {
		t.Fatalf("checkpoint at version %d, want 5", m.Version)
	}
	// The initial checkpoint's files must have been retired.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-0000000000000001") || e.Name() == "wal-0000000000000001.log" {
			t.Fatalf("stale checkpoint file %s survived rotation", e.Name())
		}
	}
	r, err := Open(dir, noSeed(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != want.Version {
		t.Fatalf("recovered to version %d, want %d", r.Version(), want.Version)
	}
	sameDatabases(t, want.DB, r.Snapshot().DB)
}

// currentWAL returns the published WAL's path.
func currentWAL(t *testing.T, dir string) string {
	t.Helper()
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, m.WAL)
}

func TestTornWALTailTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir, tinySeed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Update(insertDup("region")); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Snapshot()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a length prefix promising 64 bytes
	// with only 3 present.
	wal := currentWAL(t, dir)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{64, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var logs []string
	r, err := Open(dir, noSeed(t), Options{Logf: func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != want.Version {
		t.Fatalf("recovered to version %d, want %d", r.Version(), want.Version)
	}
	sameDatabases(t, want.DB, r.Snapshot().DB)
	found := false
	for _, l := range logs {
		found = found || strings.Contains(l, "truncating torn WAL tail")
	}
	if !found {
		t.Fatalf("no truncation log line; logs: %q", logs)
	}
	if _, err := r.Update(insertDup("nation")); err != nil {
		t.Fatalf("post-truncation update: %v", err)
	}
}

// flipByte flips one byte of the file at the given offset.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// openStoreWithUpdates builds a store with a few WAL records and
// returns its dir.
func openStoreWithUpdates(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir, tinySeed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Update(insertDup("region")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCorruptWALInteriorRefused(t *testing.T) {
	dir := openStoreWithUpdates(t)
	wal := currentWAL(t, dir)
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, wal, 4+(info.Size()-4)/2) // inside some record, past the magic

	_, err = Open(dir, noSeed(t), Options{})
	if err == nil || !strings.Contains(err.Error(), "fsck") {
		t.Fatalf("open on corrupt WAL: err = %v, want refusal pointing at fsck", err)
	}
	report, ferr := Fsck(dir)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if report.Healthy() {
		t.Fatalf("fsck calls a corrupt WAL healthy: %+v", report)
	}
	found := false
	for _, f := range report.Findings {
		found = found || (strings.HasPrefix(f.File, "wal-") && !f.Recoverable)
	}
	if !found {
		t.Fatalf("fsck findings miss the WAL corruption: %+v", report.Findings)
	}
}

func TestCorruptSegmentRefused(t *testing.T) {
	dir := openStoreWithUpdates(t)
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := m.Segments[len(m.Segments)/2]
	flipByte(t, filepath.Join(dir, seg.File), seg.Bytes/2)

	if _, err := Open(dir, noSeed(t), Options{}); err == nil {
		t.Fatal("open on corrupt segment succeeded")
	}
	report, ferr := Fsck(dir)
	if ferr != nil {
		t.Fatal(ferr)
	}
	found := false
	for _, f := range report.Findings {
		found = found || (f.File == seg.File && !f.Recoverable)
	}
	if !found {
		t.Fatalf("fsck findings miss the corrupt segment %s: %+v", seg.File, report.Findings)
	}
}

func TestCorruptManifestRefused(t *testing.T) {
	dir := openStoreWithUpdates(t)
	path := filepath.Join(dir, manifestName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, path, info.Size()/2)

	if _, err := Open(dir, noSeed(t), Options{}); err == nil {
		t.Fatal("open on corrupt manifest succeeded")
	}
	report, ferr := Fsck(dir)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if report.Healthy() || len(report.Findings) == 0 || report.Findings[0].File != manifestName {
		t.Fatalf("fsck misses the manifest corruption: %+v", report)
	}
}

func TestFsckCleanAndOrphans(t *testing.T) {
	dir := openStoreWithUpdates(t)
	report, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("healthy dir has findings: %+v", report.Findings)
	}
	if report.Version != 4 || report.Checkpoint != 1 || report.WALRecords != 3 {
		t.Fatalf("report = version %d checkpoint %d records %d, want 4/1/3",
			report.Version, report.Checkpoint, report.WALRecords)
	}
	if report.Tables == 0 || report.Rows == 0 {
		t.Fatalf("report verified %d tables / %d rows", report.Tables, report.Rows)
	}

	// Unreferenced persistence files are orphans, not damage.
	for _, name := range []string{"seg-00000000deadbeef-x.seg", "stray.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	report, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() || len(report.Orphans) != 2 {
		t.Fatalf("orphans misclassified: findings %+v orphans %v", report.Findings, report.Orphans)
	}

	// Open sweeps them.
	s, err := Open(dir, noSeed(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range []string{"seg-00000000deadbeef-x.seg", "stray.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			t.Fatalf("orphan %s survived Open", name)
		}
	}
}

func TestUpdateRejectsRecorderBypass(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir, tinySeed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Update(func(db *table.Database) error {
		db.MustTable("region").Append(db.MustTable("region").Row(0))
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "bypassed the delta recorder") {
		t.Fatalf("bypassing mutation: err = %v, want recorder-bypass rejection", err)
	}
	if s.Version() != 1 {
		t.Fatalf("rejected update still published: version %d", s.Version())
	}
	if _, err := s.Update(insertDup("region")); err != nil {
		t.Fatalf("store unusable after rejected update: %v", err)
	}
}

// faultErr is a FaultHook returning an error at the n-th hit of a site.
type faultErr struct {
	site guard.Site
	n    int
	hits int
}

func (h *faultErr) Hit(site guard.Site) error {
	if site != h.site {
		return nil
	}
	h.hits++
	if h.hits == h.n {
		return fmt.Errorf("injected %s fault", site)
	}
	return nil
}

func TestUpdateFaultRollsBackWAL(t *testing.T) {
	cases := []struct {
		site guard.Site
		n    int
	}{
		{guard.SitePersistWALAppend, 1}, // torn half-record
		{guard.SitePersistWALAppend, 2}, // full record, unsynced
		{guard.SitePersistFsync, 1},     // sync refused
	}
	for _, c := range cases {
		n := c.n
		dir := filepath.Join(t.TempDir(), "data")
		hook := &faultErr{site: c.site, n: 99} // silent during Open
		s, err := Open(dir, tinySeed, Options{Hook: hook})
		if err != nil {
			t.Fatal(err)
		}
		hook.hits, hook.n = 0, c.n
		if _, err := s.Update(insertDup("region")); err == nil {
			t.Fatalf("n=%d: faulted update succeeded", n)
		}
		if s.Version() != 1 {
			t.Fatalf("n=%d: faulted update published version %d", n, s.Version())
		}
		hook.site = "" // disarm
		if v, err := s.Update(insertDup("region")); err != nil || v != 2 {
			t.Fatalf("n=%d: update after rollback: version %d, err %v", n, v, err)
		}
		want := s.Snapshot()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, noSeed(t), Options{})
		if err != nil {
			t.Fatalf("n=%d: reopen after rollback: %v", n, err)
		}
		sameDatabases(t, want.DB, r.Snapshot().DB)
		r.Close()
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	ops := []table.Op{
		{Kind: table.OpInsert, Table: "orders", Row: table.Row{
			value.Int(-42), value.Str("héllo ⊥ world"), value.Null(7),
			value.Float(3.25), value.Bool(true), value.Date(19000),
		}},
		{Kind: table.OpReplace, Table: "lineitem", Index: 12, Row: table.Row{
			value.Null(9223372036854775807), value.Str(""), value.Bool(false),
		}},
		{Kind: table.OpInsert, Table: "x", Row: table.Row{value.Int(0)}},
	}
	payload := encodeWALRecord(901, 1234, ops)
	rec, err := decodeWALRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 901 || rec.NextNull != 1234 || len(rec.Ops) != len(ops) {
		t.Fatalf("decoded header %d/%d/%d ops", rec.Version, rec.NextNull, len(rec.Ops))
	}
	for i, op := range ops {
		got := rec.Ops[i]
		if got.Kind != op.Kind || got.Table != op.Table || got.Index != op.Index {
			t.Fatalf("op %d: %+v, want %+v", i, got, op)
		}
		if value.RowKey(got.Row) != value.RowKey(op.Row) {
			t.Fatalf("op %d row: %v, want %v", i, got.Row, op.Row)
		}
	}
}

// TestSegmentRoundTripQgen is the encode/decode property test over
// randomly generated incomplete databases: every relation of every
// generated instance must round-trip through a segment file with rows,
// row order, and marked nulls preserved exactly.
func TestSegmentRoundTripQgen(t *testing.T) {
	cases := 60
	if testing.Short() {
		cases = 15
	}
	noHit := func(guard.Site) error { return nil }
	tn := qgen.Tuning{MaxRowsPerRelation: 40, MaxNulls: 12, MaxArity: 5, MaxRelations: 4}
	for seed := 0; seed < cases; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		sch := qgen.Schema(rng, tn)
		db := qgen.Database(rng, sch, tn)
		dir := t.TempDir()
		for _, name := range sch.Names() {
			tab := db.MustTable(name)
			if _, err := writeSegment(dir, name+".seg", name, tab, noHit); err != nil {
				t.Fatalf("seed %d relation %s: write: %v", seed, name, err)
			}
			got, err := readSegment(filepath.Join(dir, name+".seg"))
			if err != nil {
				t.Fatalf("seed %d relation %s: read: %v", seed, name, err)
			}
			if got.Rel != name || got.Arity != tab.Arity() || len(got.Rows) != tab.Len() {
				t.Fatalf("seed %d relation %s: shape %s/%d/%d, want %s/%d/%d",
					seed, name, got.Rel, got.Arity, len(got.Rows), name, tab.Arity(), tab.Len())
			}
			for i, row := range tab.Rows() {
				if value.RowKey(row) != value.RowKey(got.Rows[i]) {
					t.Fatalf("seed %d relation %s row %d: %v, want %v", seed, name, i, got.Rows[i], row)
				}
			}
		}
	}
}

// TestSegmentFlipEveryByte flips every single byte of a small segment
// file in turn and asserts the reader rejects every mutation — the
// checksum layer must make single-byte damage fully detectable.
func TestSegmentFlipEveryByte(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tn := qgen.Tuning{MaxRowsPerRelation: 6}
	sch := qgen.Schema(rng, tn)
	db := qgen.Database(rng, sch, tn)
	name := sch.Names()[0]
	dir := t.TempDir()
	noHit := func(guard.Site) error { return nil }
	if _, err := writeSegment(dir, "t.seg", name, db.MustTable(name), noHit); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(filepath.Join(dir, "t.seg"))
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(dir, "mut.seg")
	for off := range orig {
		data := append([]byte{}, orig...)
		data[off] ^= 0xff
		if err := os.WriteFile(mut, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readSegment(mut); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", off, len(orig))
		}
	}
}

func TestRenderDDLRoundTrip(t *testing.T) {
	schemas := []*schema.Schema{tpch.Schema()}
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		schemas = append(schemas, qgen.Schema(rng, qgen.Tuning{}))
	}
	for i, sch := range schemas {
		ddl, err := renderDDL(sch)
		if err != nil {
			t.Fatalf("schema %d: render: %v", i, err)
		}
		back, err := schema.ParseDDL(ddl)
		if err != nil {
			t.Fatalf("schema %d: reparse: %v\n%s", i, err, ddl)
		}
		if len(back.Names()) != len(sch.Names()) {
			t.Fatalf("schema %d: %d relations, want %d", i, len(back.Names()), len(sch.Names()))
		}
		for _, name := range sch.Names() {
			orig, _ := sch.Relation(name)
			got, ok := back.Relation(name)
			if !ok {
				t.Fatalf("schema %d: relation %q lost", i, name)
			}
			if got.Arity() != orig.Arity() || len(got.Key) != len(orig.Key) {
				t.Fatalf("schema %d relation %q: arity %d key %v, want %d / %v",
					i, name, got.Arity(), got.Key, orig.Arity(), orig.Key)
			}
			for c, a := range orig.Attrs {
				b := got.Attrs[c]
				if !strings.EqualFold(a.Name, b.Name) || a.Type != b.Type || a.Nullable != b.Nullable {
					t.Fatalf("schema %d relation %q attr %d: %+v, want %+v", i, name, c, b, a)
				}
			}
			for c, k := range orig.Key {
				if got.Key[c] != k {
					t.Fatalf("schema %d relation %q: key %v, want %v", i, name, got.Key, orig.Key)
				}
			}
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &manifest{
		Format: manifestFormat, Version: 41, NextNull: 17,
		SchemaDDL: "CREATE TABLE r (a INT NOT NULL, PRIMARY KEY (a));\n",
		Segments:  []manifestSegment{{Table: "r", File: "seg-1-r.seg", Rows: 3, Bytes: 99}},
		WAL:       "wal-29.log",
	}
	data, err := encodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != m.Version || back.NextNull != m.NextNull || back.WAL != m.WAL ||
		len(back.Segments) != 1 || back.Segments[0] != m.Segments[0] {
		t.Fatalf("round trip: %+v, want %+v", back, m)
	}
	// Every single-byte flip must be rejected.
	for off := range data {
		mut := append([]byte{}, data...)
		mut[off] ^= 0xff
		if got, err := decodeManifest(mut); err == nil && fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", m) {
			t.Fatalf("flipping byte %d silently changed the manifest", off)
		}
	}
}
