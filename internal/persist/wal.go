package persist

// wal.go — the write-ahead log of Store.Update deltas. One WAL file
// accompanies each checkpoint: it starts empty when the checkpoint is
// published and accumulates one record per published version after it.
//
// File layout:
//
//	magic "CWL1" (4 bytes)
//	record frames (frame.go framing), each with payload:
//	    uvarint version        the version this record publishes
//	    varint  nextNull       Database.NextNullMark after the update
//	    uvarint opCount
//	    ops:    kind byte (0 insert / 1 replace), table name,
//	            [uvarint row index for replace], uvarint arity, values
//
// A record is written and fsynced BEFORE its version is published to
// in-memory readers, so the on-disk state is always a prefix of the
// acknowledged version sequence plus at most one in-flight record. On
// recovery, replaying the WAL past the checkpoint reproduces that
// prefix; a torn tail frame (the signature of a crash mid-append) is
// truncated away, while a checksum mismatch on an interior record is
// refused as corruption — crashes tear tails, they do not rewrite
// middles.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"certsql/internal/guard"
	"certsql/internal/table"
)

var walMagic = []byte("CWL1")

// encodeWALRecord encodes one record payload (unframed).
func encodeWALRecord(version uint64, nextNull int64, ops []table.Op) []byte {
	buf := appendUvarint(nil, version)
	buf = appendVarint(buf, nextNull)
	buf = appendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = append(buf, byte(op.Kind))
		buf = appendString(buf, op.Table)
		if op.Kind == table.OpReplace {
			buf = appendUvarint(buf, uint64(op.Index))
		}
		buf = appendUvarint(buf, uint64(len(op.Row)))
		for _, v := range op.Row {
			buf = appendValue(buf, v)
		}
	}
	return buf
}

// walRecord is one decoded WAL record plus its file offset.
type walRecord struct {
	Version  uint64
	NextNull int64
	Ops      []table.Op
	Off      int64
}

// decodeWALRecord decodes one record payload.
func decodeWALRecord(payload []byte) (*walRecord, error) {
	d := &decoder{buf: payload}
	version, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	nextNull, err := d.varint()
	if err != nil {
		return nil, err
	}
	nops, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nops > uint64(len(payload)) {
		return nil, d.errf("implausible op count %d", nops)
	}
	rec := &walRecord{Version: version, NextNull: nextNull, Ops: make([]table.Op, 0, nops)}
	for i := uint64(0); i < nops; i++ {
		kind, err := d.byte()
		if err != nil {
			return nil, err
		}
		if table.OpKind(kind) != table.OpInsert && table.OpKind(kind) != table.OpReplace {
			return nil, d.errf("op %d: unknown op kind %d", i, kind)
		}
		op := table.Op{Kind: table.OpKind(kind)}
		if op.Table, err = d.str(); err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		if op.Kind == table.OpReplace {
			idx, err := d.uvarint()
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			op.Index = int(idx)
		}
		arity, err := d.uvarint()
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		if arity > 1<<16 {
			return nil, d.errf("op %d: implausible arity %d", i, arity)
		}
		op.Row = make(table.Row, arity)
		for c := range op.Row {
			if op.Row[c], err = d.val(); err != nil {
				return nil, fmt.Errorf("op %d column %d: %w", i, c, err)
			}
		}
		rec.Ops = append(rec.Ops, op)
	}
	if !d.done() {
		return nil, d.errf("%d trailing bytes after the last op", len(payload)-d.off)
	}
	return rec, nil
}

// walScan is the result of scanning one WAL file.
type walScan struct {
	// Records are the verified records, in file order.
	Records []*walRecord
	// GoodEnd is the offset just past the last verified record — the
	// truncation point when the tail is torn.
	GoodEnd int64
	// Problem describes the frame that stopped the scan (nil when the
	// file ends cleanly). Problem.Kind == frameTorn is the recoverable
	// crash signature; frameCorrupt is damage.
	Problem *frameError
	// ProblemDetail carries a decode failure on a structurally sound
	// frame (checksum passed but the payload does not parse) — always
	// corruption, never a crash artifact.
	ProblemDetail string
}

// scanWAL reads a WAL file, verifying every frame and decoding every
// record. It never returns an error for in-file damage — that is
// reported in the scan so recovery and fsck can classify it — only for
// I/O-level failures (unreadable file).
func scanWAL(path string) (*walScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer func() {
		// vetcert:ignore durawrite: read-only handle — close cannot lose data.
		f.Close()
	}()

	scan := &walScan{}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != string(walMagic) {
		scan.Problem = &frameError{Kind: frameCorrupt, Offset: 0, Detail: "not a WAL file (bad magic)"}
		return scan, nil
	}
	fr := newFrameReader(f)
	fr.off = 4
	scan.GoodEnd = 4
	for {
		payload, err := fr.next()
		if errors.Is(err, io.EOF) {
			return scan, nil
		}
		var fe *frameError
		if errors.As(err, &fe) {
			scan.Problem = fe
			return scan, nil
		}
		if err != nil {
			return nil, fmt.Errorf("persist: %s: %w", path, err)
		}
		rec, derr := decodeWALRecord(payload)
		if derr != nil {
			scan.Problem = &frameError{Kind: frameCorrupt, Offset: scan.GoodEnd, Detail: derr.Error()}
			scan.ProblemDetail = derr.Error()
			return scan, nil
		}
		rec.Off = scan.GoodEnd
		scan.Records = append(scan.Records, rec)
		scan.GoodEnd = fr.off
	}
}

// createWAL creates a fresh, empty WAL file (magic only, synced) and
// returns it open for appending.
func createWAL(dir, name string, hit func(guard.Site) error) (*os.File, error) {
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	// Release the handle if a fault (error or simulated-crash panic)
	// aborts the creation; the file itself is left for the orphan sweep,
	// as it would be after a real crash.
	ok := false
	defer func() {
		if !ok {
			// vetcert:ignore durawrite: abort path — the unpublished file is crash debris.
			f.Close()
		}
	}()
	abort := func(cause error) error {
		if rerr := os.Remove(path); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			return errors.Join(cause, rerr)
		}
		return cause
	}
	if _, err := f.Write(walMagic); err != nil {
		return nil, abort(fmt.Errorf("persist: %s: %w", path, err))
	}
	if err := hit(guard.SitePersistFsync); err != nil {
		return nil, abort(err)
	}
	if err := f.Sync(); err != nil {
		return nil, abort(fmt.Errorf("persist: sync %s: %w", path, err))
	}
	ok = true
	return f, nil
}

func appendVarint(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }
