package persist

// segment.go — checksummed columnar segment files, one per table per
// checkpoint. A segment is immutable once published: it is written to
// a temp file, synced, renamed into place, and referenced by name from
// the manifest; it is never appended to or rewritten.
//
// File layout:
//
//	magic "CSG1" (4 bytes)
//	frame 0: header — format uvarint, table name, arity, total rows
//	frame 1..n: row blocks — uvarint row count, then the block's
//	            values column by column (all of column 0, then all of
//	            column 1, …), each value in the codec.go wire format
//
// The columnar in-block layout keeps same-typed bytes adjacent (good
// for scanning and for compression layers a later PR may add) while
// the block granularity keeps decode memory bounded and lets a reader
// verify each CRC32C before trusting a single value. The header's
// total row count lets recovery distinguish a cleanly-ended file from
// one missing tail blocks.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"certsql/internal/guard"
	"certsql/internal/table"
	"certsql/internal/value"
)

var segMagic = []byte("CSG1")

const (
	segFormat = 1
	// segBlockRows is the row capacity of one segment block.
	segBlockRows = 2048
)

// writeSegment writes the table's rows as the named segment file in
// dir, via temp file + fsync + rename, and returns the file's size.
// hit is the durability-seam fault hook (never nil; see Store.hit).
func writeSegment(dir, name, relName string, t *table.Table, hit func(guard.Site) error) (size int64, err error) {
	tmpPath := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmpPath)
	if err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	// On any failure, abandon the temp file: close and remove it. The
	// close error is irrelevant on this path — the bytes are being
	// thrown away — but the primary error must survive. On a panic
	// (the chaos suite's simulated crash) only the handle is released:
	// a killed process leaves its temp file on disk, and recovery must
	// cope with that, so the test harness gets the same debris.
	committed := false
	defer func() {
		if committed {
			return
		}
		// vetcert:ignore durawrite: abort path — the temp file is
		// either removed below or left as crash debris for the sweep.
		f.Close()
		if err != nil {
			if rerr := os.Remove(tmpPath); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				err = errors.Join(err, rerr)
			}
		}
	}()

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, segMagic...)

	// Header frame.
	header := appendUvarint(nil, segFormat)
	header = appendString(header, relName)
	header = appendUvarint(header, uint64(t.Arity()))
	header = appendUvarint(header, uint64(t.Len()))
	buf = appendFrame(buf, header)
	if _, err := f.Write(buf); err != nil {
		return 0, fmt.Errorf("persist: %s: %w", tmpPath, err)
	}
	size = int64(len(buf))

	// Row blocks.
	rows := t.Rows()
	for start := 0; start < len(rows); start += segBlockRows {
		if err := hit(guard.SitePersistSegmentWrite); err != nil {
			return 0, err
		}
		end := min(start+segBlockRows, len(rows))
		block := encodeBlock(rows[start:end], t.Arity())
		frame := appendFrame(nil, block)
		if _, err := f.Write(frame); err != nil {
			return 0, fmt.Errorf("persist: %s: %w", tmpPath, err)
		}
		size += int64(len(frame))
	}

	if err := hit(guard.SitePersistFsync); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("persist: sync %s: %w", tmpPath, err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("persist: close %s: %w", tmpPath, err)
	}
	committed = true
	// The rename is safe to publish: the file's bytes are synced above.
	if err := os.Rename(tmpPath, filepath.Join(dir, name)); err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	return size, nil
}

// encodeBlock encodes rows column by column.
func encodeBlock(rows []table.Row, arity int) []byte {
	buf := appendUvarint(nil, uint64(len(rows)))
	for col := 0; col < arity; col++ {
		for _, r := range rows {
			buf = appendValue(buf, r[col])
		}
	}
	return buf
}

// segmentData is the decoded content of one segment file.
type segmentData struct {
	Rel   string
	Arity int
	Rows  []table.Row
}

// readSegment reads and verifies a segment file. Every failure is
// positioned: the returned error names the file and the offset of the
// frame (or byte within it) that could not be trusted.
func readSegment(path string) (*segmentData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer func() {
		// vetcert:ignore durawrite: read-only handle — close cannot lose data.
		f.Close()
	}()

	fr := newFrameReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(fr.r, magic[:]); err != nil || string(magic[:]) != string(segMagic) {
		return nil, fmt.Errorf("persist: %s: offset 0: not a segment file (bad magic)", path)
	}
	fr.off = 4

	header, err := fr.next()
	if err != nil {
		return nil, fmt.Errorf("persist: %s: header: %w", path, err)
	}
	hd := &decoder{buf: header}
	format, err := hd.uvarint()
	if err == nil && format != segFormat {
		err = fmt.Errorf("unsupported segment format %d", format)
	}
	var rel string
	var arity, total uint64
	if err == nil {
		rel, err = hd.str()
	}
	if err == nil {
		arity, err = hd.uvarint()
	}
	if err == nil {
		total, err = hd.uvarint()
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %s: header: %w", path, err)
	}
	if arity == 0 || arity > 1<<16 {
		return nil, fmt.Errorf("persist: %s: header: implausible arity %d", path, arity)
	}

	seg := &segmentData{Rel: rel, Arity: int(arity), Rows: make([]table.Row, 0, total)}
	for {
		blockOff := fr.off
		payload, err := fr.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("persist: %s: %w", path, err)
		}
		rows, err := decodeBlock(payload, int(arity))
		if err != nil {
			return nil, fmt.Errorf("persist: %s: block at offset %d: %w", path, blockOff, err)
		}
		seg.Rows = append(seg.Rows, rows...)
	}
	if uint64(len(seg.Rows)) != total {
		return nil, fmt.Errorf("persist: %s: row count mismatch: header declares %d rows, file holds %d (missing tail blocks?)",
			path, total, len(seg.Rows))
	}
	return seg, nil
}

// decodeBlock decodes one column-major row block.
func decodeBlock(payload []byte, arity int) ([]table.Row, error) {
	d := &decoder{buf: payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(payload)) { // every row carries ≥ arity ≥ 1 bytes
		return nil, d.errf("implausible block row count %d", n)
	}
	rows := make([]table.Row, n)
	backing := make([]value.Value, int(n)*arity)
	for i := range rows {
		rows[i] = backing[i*arity : (i+1)*arity : (i+1)*arity]
	}
	for col := 0; col < arity; col++ {
		for i := uint64(0); i < n; i++ {
			v, err := d.val()
			if err != nil {
				return nil, fmt.Errorf("column %d row %d: %w", col, i, err)
			}
			rows[i][col] = v
		}
	}
	if !d.done() {
		return nil, d.errf("%d trailing bytes after the last value", len(payload)-d.off)
	}
	return rows, nil
}

// appendUvarint and appendString are tiny codec helpers kept here to
// keep header code readable.
func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}
