// Package persist is the crash-safe durability layer behind
// table.Store. It persists a catalog as checksummed columnar segment
// files (one per table per checkpoint) plus a write-ahead log of
// Store.Update deltas, all referenced from a MANIFEST published by
// atomic rename.
//
// The invariant the layer maintains is: the on-disk state is always a
// prefix of the published version sequence — monotone, never torn.
// Every acknowledged Update is synced to the WAL before its version is
// published to in-memory readers, so a crash at any instant loses at
// most work that was never acknowledged; recovery replays the WAL past
// the last checkpoint, truncates a torn tail record (the only damage a
// clean crash can cause), verifies every checksum, and resumes the
// version sequence exactly where the previous process stopped.
//
// Everything is stdlib-only and append-only: segments and WAL files
// are never rewritten in place, and the manifest rename is the single
// commit point of a checkpoint.
package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"certsql/internal/guard"
	"certsql/internal/schema"
	"certsql/internal/table"
)

// Options configures a Store.
type Options struct {
	// CheckpointEvery is the number of WAL records after which a full
	// checkpoint (fresh segments + empty WAL) is taken. 0 means the
	// default (64); negative disables automatic checkpoints.
	CheckpointEvery int
	// Hook, when non-nil, is consulted at every durability seam
	// (guard.PersistSites) — the crash-recovery chaos suite injects
	// simulated crashes and I/O errors through it.
	Hook guard.FaultHook
	// Logf, when non-nil, receives operational log lines (recovery
	// progress, contained checkpoint failures, orphan sweeps).
	Logf func(format string, args ...any)
}

const defaultCheckpointEvery = 64

func (o Options) checkpointEvery() int {
	if o.CheckpointEvery == 0 {
		return defaultCheckpointEvery
	}
	return o.CheckpointEvery
}

// Store is a durable table.Store: same snapshot/version semantics for
// readers, with every published version backed by synced bytes on
// disk. Readers pay nothing — Snapshot and Version delegate straight
// to the in-memory store; writers pay one WAL append + fsync per
// Update and a full checkpoint every CheckpointEvery updates.
type Store struct {
	dir  string
	opts Options
	mem  *table.Store

	mu         sync.Mutex // serializes durable writers
	wal        *os.File
	walName    string
	walRecords int
	broken     error // a failed WAL rollback left the log in an unknown state
	closed     bool
}

// Open opens (or creates) the data directory. When dir holds a
// published manifest, the catalog is recovered from it: segments are
// read and checksum-verified, the WAL is replayed past the checkpoint,
// and a torn tail record is truncated. Otherwise seed is called for
// the initial database and version 1 is checkpointed before Open
// returns, so a crash after Open can always recover without the seed.
func Open(dir string, seed func() (*table.Database, error), opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); errors.Is(err, os.ErrNotExist) {
		return s, s.openFresh(seed)
	} else if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return s, s.openRecover()
}

// openFresh seeds and checkpoints version 1.
func (s *Store) openFresh(seed func() (*table.Database, error)) error {
	// A crash during a previous first checkpoint may have left temp
	// files or renamed-but-unpublished segments; with no manifest they
	// are all garbage.
	s.sweepOrphans(nil)
	db, err := seed()
	if err != nil {
		return fmt.Errorf("persist: seeding %s: %w", s.dir, err)
	}
	s.mem = table.NewStoreAt(db, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkpointLocked(db, 1); err != nil {
		return err
	}
	s.logf("persist: %s: created at version 1", s.dir)
	return nil
}

// openRecover rebuilds the catalog from the manifest, segments, and
// WAL.
func (s *Store) openRecover() error {
	m, err := readManifest(s.dir)
	if err != nil {
		return fmt.Errorf("%w; run `certsql fsck %s` for a full report", err, s.dir)
	}
	sch, err := schema.ParseDDL(m.SchemaDDL)
	if err != nil {
		return fmt.Errorf("persist: %s: manifest schema does not parse: %w", s.dir, err)
	}
	db := table.NewDatabase(sch)
	keep := map[string]bool{m.WAL: true}
	for _, seg := range m.Segments {
		keep[seg.File] = true
		path := filepath.Join(s.dir, seg.File)
		data, err := readSegment(path)
		if err != nil {
			return fmt.Errorf("%w; run `certsql fsck %s` for a full report", err, s.dir)
		}
		if !strings.EqualFold(data.Rel, seg.Table) {
			return fmt.Errorf("persist: %s: segment holds relation %q, manifest expects %q", path, data.Rel, seg.Table)
		}
		if len(data.Rows) != seg.Rows {
			return fmt.Errorf("persist: %s: segment holds %d rows, manifest expects %d", path, len(data.Rows), seg.Rows)
		}
		for i, r := range data.Rows {
			if err := db.Insert(seg.Table, r); err != nil {
				return fmt.Errorf("persist: %s: row %d does not conform to the schema: %w", path, i, err)
			}
		}
	}
	db.SetNextNullMark(m.NextNull)

	walPath := filepath.Join(s.dir, m.WAL)
	scan, err := scanWAL(walPath)
	if err != nil {
		return err
	}
	if scan.Problem != nil && scan.Problem.Kind != frameTorn {
		return fmt.Errorf("persist: %s: %s; run `certsql fsck %s` for a full report", walPath, scan.Problem, s.dir)
	}
	version := m.Version
	for i, rec := range scan.Records {
		if rec.Version != version+1 {
			return fmt.Errorf("persist: %s: record %d at offset %d publishes version %d, want %d; run `certsql fsck %s`",
				walPath, i, rec.Off, rec.Version, version+1, s.dir)
		}
		if err := applyOps(db, rec.Ops); err != nil {
			return fmt.Errorf("persist: %s: record %d at offset %d does not replay: %w", walPath, i, rec.Off, err)
		}
		db.SetNextNullMark(rec.NextNull)
		version = rec.Version
	}

	// Reopen the WAL for appending, truncating a torn tail first: the
	// torn bytes are the remains of a record that was never
	// acknowledged, so dropping them loses nothing that was promised.
	wal, err := os.OpenFile(walPath, os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if scan.Problem != nil {
		s.logf("persist: %s: truncating torn WAL tail (%s)", walPath, scan.Problem)
		if err := wal.Truncate(scan.GoodEnd); err != nil {
			// vetcert:ignore durawrite: abort path — open failed, handle is dead.
			wal.Close()
			return fmt.Errorf("persist: truncating %s: %w", walPath, err)
		}
		if err := wal.Sync(); err != nil {
			// vetcert:ignore durawrite: abort path — the sync error is reported.
			wal.Close()
			return fmt.Errorf("persist: sync %s: %w", walPath, err)
		}
	}
	s.wal, s.walName, s.walRecords = wal, m.WAL, len(scan.Records)
	s.mem = table.NewStoreAt(db, version)
	s.sweepOrphans(keep)
	s.logf("persist: %s: recovered to version %d (checkpoint %d + %d WAL records)",
		s.dir, version, m.Version, len(scan.Records))
	return nil
}

// Snapshot returns the current published snapshot (see table.Store).
func (s *Store) Snapshot() *table.Snapshot { return s.mem.Snapshot() }

// Version returns the current published version.
func (s *Store) Version() uint64 { return s.mem.Version() }

// OnPublish registers a publish hook (see table.Store.OnPublish).
func (s *Store) OnPublish(fn func(*table.Snapshot)) { s.mem.OnPublish(fn) }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Update clones the current database, applies mutate, syncs the delta
// to the WAL, and only then publishes the new version to in-memory
// readers — an acknowledged update is a durable update. The mutation
// must go through Database.Insert / Database.ReplaceRow (directly or
// via loaders built on them); mutations that bypass the catalog are
// detected and rejected before anything is published.
func (s *Store) Update(mutate func(db *table.Database) error) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("persist: store is closed")
	}
	cur := s.mem.Snapshot()
	if s.broken != nil {
		return cur.Version, fmt.Errorf("persist: store is broken after a failed WAL rollback (%w); reopen the data directory to recover", s.broken)
	}
	clone := cur.DB.Clone()
	var ops []table.Op
	clone.SetRecorder(func(op table.Op) { ops = append(ops, op) })
	err := mutate(clone)
	clone.SetRecorder(nil)
	if err != nil {
		return cur.Version, err
	}
	if err := verifyCaptured(cur.DB, clone, ops); err != nil {
		return cur.Version, err
	}
	version := cur.Version + 1
	if err := s.appendRecord(version, clone.NextNullMark(), ops); err != nil {
		return cur.Version, err
	}
	if v := s.mem.Publish(clone); v != version {
		// All writers serialize on s.mu, so the in-memory version can
		// not have moved under us; if it did, the WAL record we just
		// synced names the wrong version and the store must not
		// continue.
		panic(fmt.Sprintf("persist: version skew: WAL record %d, memory published %d", version, v))
	}
	s.walRecords++
	if every := s.opts.checkpointEvery(); every > 0 && s.walRecords >= every {
		if err := s.checkpointLocked(clone, version); err != nil {
			// The update is already durable in the WAL; a failed
			// checkpoint costs recovery time, not correctness. Keep the
			// store live and retry at the next update.
			s.logf("persist: %s: checkpoint at version %d failed (will retry): %v", s.dir, version, err)
		}
	}
	return version, nil
}

// Publish durably replaces the whole catalog (a fresh load or DDL
// change): the new database is checkpointed in full, then published.
// Unlike Update, a failed checkpoint fails the publish — there is no
// WAL delta that could make the replacement durable.
func (s *Store) Publish(db *table.Database) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("persist: store is closed")
	}
	cur := s.mem.Snapshot()
	version := cur.Version + 1
	if err := s.checkpointLocked(db, version); err != nil {
		return cur.Version, err
	}
	if v := s.mem.Publish(db); v != version {
		panic(fmt.Sprintf("persist: version skew: checkpoint %d, memory published %d", version, v))
	}
	return version, nil
}

// appendRecord writes and syncs one framed WAL record. On a hook-
// injected error the partial write is rolled back by truncation; a
// truncation failure marks the store broken (the WAL tail is in an
// unknown state and only a reopen-with-recovery may trust it again).
func (s *Store) appendRecord(version uint64, nextNull int64, ops []table.Op) error {
	if s.wal == nil {
		return errors.New("persist: store has no open WAL")
	}
	frame := appendFrame(nil, encodeWALRecord(version, nextNull, ops))
	start, err := s.wal.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("persist: %s: %w", s.walName, err)
	}
	rollback := func(cause error) error {
		if terr := s.wal.Truncate(start); terr != nil {
			s.broken = terr
			return errors.Join(cause, fmt.Errorf("persist: rolling back %s to offset %d: %w", s.walName, start, terr))
		}
		return cause
	}
	// The record is written in two halves with a crash seam between
	// them and another before the sync — the exact places a real crash
	// tears a record or loses an unsynced one.
	split := len(frame) / 2
	if _, err := s.wal.Write(frame[:split]); err != nil {
		return rollback(fmt.Errorf("persist: %s: %w", s.walName, err))
	}
	if err := s.hit(guard.SitePersistWALAppend); err != nil {
		return rollback(err)
	}
	if _, err := s.wal.Write(frame[split:]); err != nil {
		return rollback(fmt.Errorf("persist: %s: %w", s.walName, err))
	}
	if err := s.hit(guard.SitePersistWALAppend); err != nil {
		return rollback(err)
	}
	if err := s.hit(guard.SitePersistFsync); err != nil {
		return rollback(err)
	}
	if err := s.wal.Sync(); err != nil {
		return rollback(fmt.Errorf("persist: sync %s: %w", s.walName, err))
	}
	return nil
}

// checkpointLocked writes a full checkpoint of db at version: one
// segment per relation, a fresh empty WAL, then the manifest rename
// that commits it all. The previous checkpoint's files are removed
// only after the new manifest is published. Caller holds s.mu.
func (s *Store) checkpointLocked(db *table.Database, version uint64) error {
	if err := s.hit(guard.SitePersistCheckpoint); err != nil {
		return err
	}
	ddl, err := renderDDL(db.Schema)
	if err != nil {
		return err
	}
	m := &manifest{
		Format:    manifestFormat,
		Version:   version,
		NextNull:  db.NextNullMark(),
		SchemaDDL: ddl,
		WAL:       fmt.Sprintf("wal-%016x.log", version),
	}
	for _, name := range db.Schema.Names() {
		t := db.MustTable(name)
		segName := fmt.Sprintf("seg-%016x-%s.seg", version, name)
		size, err := writeSegment(s.dir, segName, name, t, s.hit)
		if err != nil {
			return err
		}
		m.Segments = append(m.Segments, manifestSegment{Table: name, File: segName, Rows: t.Len(), Bytes: size})
	}
	wal, err := createWAL(s.dir, m.WAL, s.hit)
	if err != nil {
		return err
	}
	// If the manifest publish aborts — by error or by a simulated-crash
	// panic — the new WAL was never referenced and its handle must go.
	published := false
	defer func() {
		if !published {
			// vetcert:ignore durawrite: abort path — the unpublished WAL is discarded.
			wal.Close()
		}
	}()
	if err := writeManifest(s.dir, m, s.hit); err != nil {
		return err
	}
	published = true
	// Committed. Retire the previous checkpoint's files; failures here
	// only leak disk (the sweep at next open reclaims them).
	if s.wal != nil {
		// vetcert:ignore durawrite: superseded WAL — its records are in the new checkpoint's segments.
		s.wal.Close()
	}
	s.wal, s.walName, s.walRecords = wal, m.WAL, 0
	keep := map[string]bool{m.WAL: true}
	for _, seg := range m.Segments {
		keep[seg.File] = true
	}
	s.sweepOrphans(keep)
	return nil
}

// sweepOrphans removes temp files and seg-*/wal-* files not in keep
// (keep nil means "keep none"). Best-effort: failures are logged.
func (s *Store) sweepOrphans(keep map[string]bool) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		s.logf("persist: %s: orphan sweep: %v", s.dir, err)
		return
	}
	for _, e := range entries {
		name := e.Name()
		orphan := strings.HasSuffix(name, ".tmp") ||
			((strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "wal-")) && !keep[name])
		if !orphan {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			s.logf("persist: %s: removing orphan %s: %v", s.dir, name, err)
		} else {
			s.logf("persist: %s: removed orphan %s", s.dir, name)
		}
	}
}

// Close syncs and closes the WAL. The store refuses further updates;
// readers holding snapshots are unaffected. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	serr := s.wal.Sync()
	cerr := s.wal.Close()
	s.wal = nil
	if serr != nil {
		return fmt.Errorf("persist: sync %s: %w", s.walName, serr)
	}
	if cerr != nil {
		return fmt.Errorf("persist: close %s: %w", s.walName, cerr)
	}
	return nil
}

// Abandon drops the store's file handles without syncing anything —
// the in-process equivalent of kill -9, used by the crash-recovery
// suite after an injected panic to guarantee nothing is flushed on the
// way down before the directory is reopened.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.wal != nil {
		// vetcert:ignore durawrite: simulated crash — deliberately dropping unsynced state.
		s.wal.Close()
		s.wal = nil
	}
}

// hit consults the fault hook, if any.
func (s *Store) hit(site guard.Site) error {
	if s.opts.Hook == nil {
		return nil
	}
	return s.opts.Hook.Hit(site)
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// verifyCaptured checks that the recorded ops fully explain the
// difference between the pre-state and the mutated clone: for every
// relation, pre-state length + recorded inserts must equal post-state
// length. A mutation that appended to a Table directly (bypassing
// Database.Insert) would otherwise be published in memory but lost
// from the WAL — exactly the kind of silent divergence this layer
// exists to rule out.
func verifyCaptured(pre, post *table.Database, ops []table.Op) error {
	inserts := map[string]int{}
	for _, op := range ops {
		if op.Kind == table.OpInsert {
			inserts[op.Table]++
		}
	}
	for _, name := range post.Schema.Names() {
		got := post.MustTable(name).Len()
		want := pre.MustTable(name).Len() + inserts[name]
		if got != want {
			return fmt.Errorf("persist: relation %q: mutation bypassed the delta recorder (%d rows appeared, %d recorded); mutate only via Database.Insert/ReplaceRow",
				name, got-pre.MustTable(name).Len(), inserts[name])
		}
	}
	return nil
}

// applyOps replays recorded ops against db.
func applyOps(db *table.Database, ops []table.Op) error {
	for i, op := range ops {
		var err error
		switch op.Kind {
		case table.OpInsert:
			err = db.Insert(op.Table, op.Row)
		case table.OpReplace:
			err = db.ReplaceRow(op.Table, op.Index, op.Row)
		default:
			err = fmt.Errorf("unknown op kind %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	return nil
}
